package openei

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"strings"

	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/tensor"
	"openei/internal/zoo"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"missing node id", Config{Device: "rpi3"}},
		{"unknown device", Config{NodeID: "x", Device: "cray"}},
		{"unknown package", Config{NodeID: "x", Device: "rpi3", Package: "torch"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("New(%+v): err = %v, want ErrBadConfig", tt.cfg, err)
			}
		})
	}
}

func TestNewDefaults(t *testing.T) {
	n, err := New(Config{NodeID: "edge", Device: "rpi3"})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Package().Name != "eipkg" {
		t.Errorf("default package = %s, want eipkg", n.Package().Name)
	}
	if n.Device().Name != "rpi3" {
		t.Errorf("device = %s", n.Device().Name)
	}
}

func TestCatalogsExposed(t *testing.T) {
	if len(Devices()) < 8 {
		t.Errorf("Devices() = %d entries", len(Devices()))
	}
	if len(Packages()) != 5 {
		t.Errorf("Packages() = %d entries", len(Packages()))
	}
}

// TestWalkThrough reproduces the paper's §III.E programming-model
// walk-through end to end on the public API: deploy OpenEI on a Raspberry
// Pi, fetch real-time camera data over /ei_data, invoke object detection
// over /ei_algorithms, with the model chosen by the selector.
func TestWalkThrough(t *testing.T) {
	// Deploy OpenEI on the Pi.
	node, err := New(Config{NodeID: "rpi-demo", Device: "rpi4"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Train candidate models (in reality these come from the cloud zoo).
	cfg := dataset.ShapesConfig{Samples: 600, Size: 16, Classes: 4, Noise: 0.2, Seed: 90}
	train, test, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	lenet, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(lenet, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	mlp, err := zoo.Build("mlp", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(mlp, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	models := map[string]*Model{"lenet": lenet, "mlp": mlp}

	// The selector picks the most suitable model for this Pi (default:
	// accuracy-oriented, per the paper).
	choice, err := node.SelectModel(models, test, DefaultRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if choice.ALEM.Accuracy < 0.6 {
		t.Errorf("selected model accuracy = %v", choice.ALEM.Accuracy)
	}
	if err := node.DeploySelected(models, choice); err != nil {
		t.Fatal(err)
	}

	// Wire the camera and the safety scenario.
	cam, err := sensors.NewCamera("camera1", 16, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sensors.Feed(node.Store, cam, 8, t0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := node.EnableSafety(choice.ModelName, "camera1", dataset.ShapeClassNames[:4], 3); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	client := Dial(ts.URL)

	// §III.E step 1: visit /ei_data/realtime/camera1?timestamp=present.
	frames, err := client.Realtime("camera1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || len(frames[0].Payload) != 256 {
		t.Fatalf("realtime frame = %d samples, dim %d", len(frames), len(frames[0].Payload))
	}

	// §III.E step 2: visit /ei_algorithms/safety/detection?video=camera1.
	var det struct {
		Label      string  `json:"label"`
		Confidence float64 `json:"confidence"`
	}
	if err := client.CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det); err != nil {
		t.Fatal(err)
	}
	if det.Label == "" || det.Confidence <= 0 {
		t.Errorf("detection = %+v", det)
	}

	// The node reports its deployed model over /ei_models.
	ms, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Name != choice.ModelName {
		t.Errorf("models = %+v, want %s", ms, choice.ModelName)
	}
}

func TestTransferLearnOnNode(t *testing.T) {
	node, err := New(Config{NodeID: "edge", Device: "laptop"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	genCfg := dataset.ActivityConfig{Samples: 500, Window: 16, Noise: 0.15, Seed: 91}
	genTrain, _, err := dataset.Activity(genCfg)
	if err != nil {
		t.Fatal(err)
	}
	perCfg := genCfg
	perCfg.Seed = 92
	perCfg.Bias = 0.7
	perTrain, perTest, err := dataset.Activity(perCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.MustModel("act", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: 4},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, genTrain, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if err := node.LoadModel(m, false); err != nil {
		t.Fatal(err)
	}
	before := nodeAccuracy(t, node, "act", perTest)
	if err := node.TransferLearn("act", perTrain, 8, 3); err != nil {
		t.Fatal(err)
	}
	after := nodeAccuracy(t, node, "act", perTest)
	if after <= before {
		t.Errorf("transfer learning did not help: %v -> %v", before, after)
	}
}

func nodeAccuracy(t *testing.T, n *Node, model string, d Dataset) float64 {
	t.Helper()
	classes, _, err := n.Infer(model, d.X)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, c := range classes {
		if c == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(classes))
}

// TestAutopilotWalkThrough is the façade-level adaptive-serving flow:
// DeployTiers profiles candidates and loads the Pareto ladder,
// EnableAutopilot starts the SLO loop, the infer route serves through the
// pilot, and /ei_metrics reports the autopilot block.
func TestAutopilotWalkThrough(t *testing.T) {
	if testing.Short() {
		t.Skip("trains candidate models")
	}
	node, err := New(Config{
		NodeID: "rpi-slo", Device: "rpi4",
		Autopilot: AutopilotPolicy{P95: 50 * time.Millisecond, AccuracyFloor: 0.5, Interval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cfg := dataset.ShapesConfig{Samples: 500, Size: 16, Classes: 4, Noise: 0.2, Seed: 31}
	train, test, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	models := map[string]*Model{}
	for _, name := range []string{"lenet", "mlp"} {
		m, err := zoo.Build(name, 16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
			t.Fatal(err)
		}
		models[name] = m
	}

	tiers, err := node.DeployTiers(models, test, node.slo)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) < 2 {
		t.Fatalf("tier ladder = %+v, want ≥ 2 rungs", tiers)
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i].Accuracy > tiers[i-1].Accuracy {
			t.Fatalf("ladder not accuracy-ordered: %+v", tiers)
		}
	}

	alias := tiers[0].Model
	if _, err := node.EnableAutopilot(alias, tiers, nil); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	client := Dial(ts.URL)
	input := make([]float32, 256)
	res, err := client.Infer(alias, input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != alias {
		t.Errorf("served_by = %q, want top tier %q", res.ServedBy, alias)
	}
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Autopilot == nil || m.Autopilot.Alias != alias || len(m.Autopilot.Tiers) != len(tiers) {
		t.Errorf("metrics autopilot block = %+v", m.Autopilot)
	}
}

// TestInt4TierLadderScenario: the deploy-time Equation-1 machinery must
// offer nibble-packed rungs — a "{model}-int4" tier whose artifact costs
// ≈⅛ the float weight bytes — and the node must actually serve inference
// through the int4 backend when that tier is requested.
func TestInt4TierLadderScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains candidate models")
	}
	node, err := New(Config{NodeID: "int4-ladder", Device: "jetson-tx2"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	train, test, err := dataset.Shapes(dataset.ShapesConfig{Samples: 400, Size: 16, Classes: 4, Noise: 0.2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	m, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	models := map[string]*Model{"lenet": m}

	// No accuracy floor: every variant that makes the Pareto frontier
	// becomes a rung, so the int4 tier's presence is a statement about
	// the selector offering it, not about this run's training luck.
	tiers, err := node.DeployTiers(models, test, AutopilotPolicy{P95: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var int4Tier *AutopilotTier
	for i := range tiers {
		if strings.HasSuffix(tiers[i].Model, "-int4") {
			int4Tier = &tiers[i]
		}
	}
	if int4Tier == nil {
		t.Fatalf("no -int4 rung in ladder %+v", tiers)
	}
	if int4Tier.Backend != string(BackendInt4) {
		t.Fatalf("int4 tier backend = %q, want %q", int4Tier.Backend, BackendInt4)
	}

	// The storage claim behind the rung: the int4 artifact the profiler
	// costed is ≈⅛ the float weight bytes (per-row scales and float
	// biases keep it just above 1/8).
	ratio := float64(m.Int4WeightBytes()) / float64(m.WeightBytes())
	if ratio < 0.115 || ratio > 0.2 {
		t.Fatalf("int4/float weight bytes = %.3f, want ≈ 0.125", ratio)
	}

	// And the rung must serve: an inference against the int4 tier name
	// answers from a replica compiled to the int4 backend.
	x := tensor.New(1, 1, 16, 16)
	res, err := node.Manager.Infer(int4Tier.Model, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 1 {
		t.Fatalf("int4 tier inference returned %d classes", len(res.Classes))
	}
	rep, err := node.Manager.NewReplica(int4Tier.Model)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend() != string(BackendInt4) {
		t.Fatalf("int4 tier replica backend = %q, want %q", rep.Backend(), BackendInt4)
	}
}
