// Command openei-gateway fronts a fleet of openei-server edge nodes with
// one health-routed HTTP entry point: requests to any libei route are
// balanced across live nodes (power-of-two-choices by in-flight count +
// serving queue depth), failed over to a healthy peer on node death, and
// shed at the front door when the whole fleet is saturated.
//
// Usage:
//
//	openei-gateway -addr :8090 \
//	    -node http://edge-1:8080 -node http://edge-2:8080 -node http://edge-3:8080 \
//	    [-hedge 30ms] [-max-inflight 256] [-retries 2] \
//	    [-cache 1024] [-cache-ttl 1s] [-health-interval 2s]
//
// Then:
//
//	curl "http://localhost:8090/ei_algorithms/serving/infer?model=power-net&input=..."
//	curl http://localhost:8090/gw_metrics
//
// Node admission verdicts pass through unchanged (429 = that node's queue
// was full at the picked replica, 408 = deadline expired in its queue);
// transport failures and 5xx answers are retried on a different node, so
// a node dying mid-call is invisible to clients as long as a peer is
// healthy. A request carrying &deadline_ms= has its remaining budget
// re-expressed on every forwarded attempt, retries stop the moment the
// budget is exhausted (the caller gets a prompt 408, never a late 5xx),
// and a node failing -breaker-threshold consecutive requests is
// circuit-broken: no traffic lands on it for -breaker-cooldown, after
// which a single half-open probe decides readmission. GET /gw_metrics
// reports per-node health and breaker state plus the routed / retried /
// shed / hedged / deadline-stopped / cache counters.
//
// With -cluster-seeds the gateway instead joins the gossip mesh that
// openei-server nodes run with -advertise: the fleet is discovered (and
// grown/shrunk) through membership instead of a fixed -node list, every
// zoo model is sharded across the fleet on a consistent-hash ring with
// -replication owners (no node holding more than -max-zoo-fraction of
// the catalog), serving/infer requests route to the model's owner set,
// and a per-model autoscaler widens hot models' owner sets. The shard
// map, member view, and replication overrides appear under "cluster" in
// GET /gw_metrics:
//
//	openei-gateway -addr :8090 -cluster-seeds http://edge-1:8080 \
//	    [-replication 2] [-max-zoo-fraction 0.5]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"openei/internal/gateway"
	"openei/internal/obs"
)

// nodeList collects repeated -node flags, each possibly comma-separated.
type nodeList []string

func (n *nodeList) String() string { return strings.Join(*n, ",") }

func (n *nodeList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*n = append(*n, u)
		}
	}
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("openei-gateway: ")
	var nodes, seeds nodeList
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		hedge       = flag.Duration("hedge", 0, "clone a still-unanswered request to a second node after this delay (0 = off)")
		maxInflight = flag.Int("max-inflight", 0, "fleet-wide cap on concurrent proxied requests; beyond it the gateway sheds with 429 (0 = unlimited)")
		retries     = flag.Int("retries", -1, "extra attempts on other nodes after a transport failure or 5xx (-1 = one per remaining node)")
		interval    = flag.Duration("health-interval", 2*time.Second, "node health-probe period; a node missing probes for 3 intervals stops receiving traffic")
		cacheSize   = flag.Int("cache", 0, "LRU entries for byte-identical serving/infer responses (0 = off)")
		cacheTTL    = flag.Duration("cache-ttl", time.Second, "max age of a cached infer response")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive request failures before a node's circuit breaker opens (0 = default 5, negative = disabled)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker rests before a half-open probe (0 = default 2×health-interval)")
		replication = flag.Int("replication", 0, "cluster mode: owner-set size per sharded zoo model (0 = default 2)")
		maxZooFrac  = flag.Float64("max-zoo-fraction", 0, "cluster mode: cap on one node's share of the zoo catalog (0 = default 0.5)")
		traceRate   = flag.Float64("trace-sample", 0, "head-sampling rate for request traces in [0,1]; errors and p99-tail requests are kept regardless")
		traceRing   = flag.Int("trace-ring", 0, "stored traces retained for /gw_trace (0 = default 256)")
		debugAddr   = flag.String("debug-addr", "", "listen address for the pprof debug server (empty = off)")
		blockRate   = flag.Int("block-profile-rate", -1, "runtime.SetBlockProfileRate value (-1 = leave default)")
		mutexFrac   = flag.Int("mutex-profile-fraction", -1, "runtime.SetMutexProfileFraction value (-1 = leave default)")
	)
	flag.Var(&nodes, "node", "edge node base URL (repeatable, or comma-separated)")
	flag.Var(&seeds, "cluster-seeds", "gossip seed base URL; enables cluster mode with membership-discovered nodes and shard-aware routing (repeatable, or comma-separated)")
	flag.Parse()
	obs.SetProfileRates(*blockRate, *mutexFrac)
	if *debugAddr != "" {
		if _, got, err := obs.StartDebugServer(*debugAddr); err != nil {
			log.Fatalf("debug server: %v", err)
		} else {
			log.Printf("pprof debug server on %s", got)
		}
	}
	if err := run(*addr, gateway.Config{
		Nodes:            nodes,
		Hedge:            *hedge,
		MaxInflight:      *maxInflight,
		Retries:          *retries,
		HealthInterval:   *interval,
		CacheSize:        *cacheSize,
		CacheTTL:         *cacheTTL,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ClusterSeeds:     seeds,
		Replication:      *replication,
		MaxZooFraction:   *maxZooFrac,
		TraceSampleRate:  *traceRate,
		TraceRing:        *traceRing,
	}); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, cfg gateway.Config) error {
	gw, err := gateway.New(cfg)
	if errors.Is(err, gateway.ErrNoNodes) {
		return fmt.Errorf("no nodes given; pass at least one -node URL (or -cluster-seeds for gossip discovery)")
	}
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()
	if len(cfg.ClusterSeeds) > 0 {
		log.Printf("cluster mode: discovering fleet via gossip seeds %s", strings.Join(cfg.ClusterSeeds, ", "))
	} else {
		m := gw.Metrics()
		log.Printf("fronting %d nodes (%d healthy at startup): %s", len(cfg.Nodes), m.HealthyNodes, strings.Join(cfg.Nodes, ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: gw, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("gateway serving on %s", addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	m := gw.Metrics()
	log.Printf("shut down: routed %d, retried %d, shed %d, failed %d, hedged %d, cache hits %d",
		m.Routed, m.Retried, m.Shed, m.Failed, m.Hedged, m.CacheHits)
	return nil
}
