// Command openei-server runs one OpenEI edge node: it deploys the
// framework on a chosen device profile, bootstraps demo sensors and a
// trained model (fetched from a cloud registry when -cloud is given,
// trained locally otherwise), enables the four Section V scenarios, and
// serves the libei REST API.
//
// Usage:
//
//	openei-server -addr :8080 -node kitchen-pi -device rpi3 \
//	    [-cloud http://cloud:9090] [-peers http://other-edge:8081]
//
// Then, per Figure 6:
//
//	curl http://localhost:8080/ei_status
//	curl http://localhost:8080/ei_resources
//	curl http://localhost:8080/ei_metrics
//	curl http://localhost:8080/ei_data/realtime/camera1?n=1
//	curl http://localhost:8080/ei_algorithms/safety/detection?video=camera1
//	curl http://localhost:8080/ei_algorithms/safety/mask?video=camera1
//	curl "http://localhost:8080/ei_algorithms/serving/infer?model=power-net&input=0.1,0.2,...(32 values)"
//
// The serving engine (micro-batching across model replicas with a bounded
// admission queue) is tuned with -serve-max-batch, -serve-batch-wait,
// -serve-replicas and -serve-queue-depth; under overload the infer route
// returns HTTP 429. Multi-tenant admission is declared with -tenants
// (comma-separated name:priority:weight[:rps[:burst]] classes — strict
// priority tiers, weighted fair share within a tier, optional token
// bucket) and -default-tenant; requests pick their class with &tenant=
// and a request whose &deadline_ms= budget lapses in the queue answers
// 408. Per-tenant counters appear under "tenants" in GET /ei_metrics. Serving replicas execute compiled inference plans;
// -backend picks the demo model's kernel set (auto/float32/int8/int4 —
// "auto" takes int8 when the package supports it), and each pipeline
// reports its backend and kernel dispatch in GET /ei_metrics. Recurrent models compile with early-exit
// support: -exit-threshold sets the confidence at which a sample retires
// before consuming the full recurrent window (0 disables), and capable
// pipelines report per-exit-head counts and latency quantiles in the
// "exits" block of GET /ei_metrics. The parallel kernel pool that dense kernels
// shard across is tuned with -procs (width, default all cores) and
// -parallel-grain (serial cutoff in fused ops); its utilization shows up
// under "parallel" in GET /ei_metrics.
//
// With -slo-p95 the node runs the autopilot: the detection model gets a
// Pareto tier ladder (fp32, int8, and a kilobyte-class fallback, filtered
// by -slo-accuracy-floor / -slo-memory-mb), the live p95 is measured every
// -slo-interval, and the serving route is hot-swapped down the ladder when
// the SLO is missed — offloading to the -offload (default -cloud) serving
// endpoint when even the cheapest tier misses it — then back up with
// hysteresis (-slo-upgrade-after, -slo-headroom) once the node recovers.
// Autopilot state (current tier, switch history, offload ratio, SLO
// attainment) appears under "autopilot" in GET /ei_metrics.
//
// With -peers, the node polls each peer's /ei_status every 2 s and logs
// live↔suspect transitions (the §IV.C availability loop).
//
// With -advertise, the node joins the gossip cluster: it rendezvouses
// with -cluster-seeds, advertises its identity and loaded-model set via
// /ei_status, and loads or evicts zoo models as the consistent-hash
// placement plan assigns them (-replication owners per model, no node
// holding more than -max-zoo-fraction of the catalog). Put
// cmd/openei-gateway in front with the same -cluster-seeds and it
// routes each serving/infer request to the model's owner set.
//
// To scale past one box, run several nodes and put cmd/openei-gateway in
// front: it probes each node's /ei_status and /ei_metrics (the
// "queue_depth" field below is its balancing signal), routes requests to
// the least-loaded live node, and fails idempotent calls over to a peer
// when a node dies mid-request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"openei"
	"openei/internal/cloud"
	"openei/internal/cluster"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/obs"
	"openei/internal/parallel"
	"openei/internal/runenv"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

// clusterOpts carries the gossip-membership flags into run.
type clusterOpts struct {
	Advertise      string
	Seeds          []string
	Replication    int
	MaxZooFraction float64
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("openei-server: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		nodeID   = flag.String("node", "edge-1", "node identifier")
		device   = flag.String("device", "rpi3", "hardware profile (see openei.Devices)")
		pkgName  = flag.String("package", "eipkg", "runtime package profile")
		cloudURL = flag.String("cloud", "", "cloud registry base URL; empty trains the demo model locally")
		peers    = flag.String("peers", "", "comma-separated peer base URLs to watch via /ei_status heartbeats")
		seed     = flag.Int64("seed", 1, "seed for demo data and training")

		// Serving-engine knobs (GET /ei_algorithms/serving/infer,
		// GET /ei_metrics). Zero keeps the engine default.
		maxBatch   = flag.Int("serve-max-batch", 0, "largest inference micro-batch (0 = default)")
		maxWait    = flag.Duration("serve-batch-wait", 0, "max wait for a micro-batch to fill (0 = default)")
		replicas   = flag.Int("serve-replicas", 0, "model replicas per serving pipeline (0 = default)")
		queueDepth = flag.Int("serve-queue-depth", 0, "bounded serving queue; full queue returns 429 (0 = default)")

		// Multi-tenant admission and scheduling: each class is
		// name:priority:weight with an optional token-bucket rate.
		tenants       = flag.String("tenants", "", "comma-separated tenant classes as name:priority:weight[:rps[:burst]]; requests pick their class with &tenant=")
		defaultTenant = flag.String("default-tenant", "", "class unattributed requests are accounted to (default \"default\"; name a -tenants entry to rate-limit the catch-all)")

		// Parallel kernel-pool knobs: every dense kernel (matmul, conv,
		// pooling) shards across this process-wide pool.
		procs = flag.Int("procs", 0, "parallel kernel pool width (0 = all cores)")
		grain = flag.Int("parallel-grain", 0, "serial cutoff in fused ops; kernels below it skip the pool (0 = default)")

		// Execution backend of the demo model's serving plan: serving
		// replicas compile loaded models into execution plans, and this
		// picks the kernel set ("auto" = int8 when the package has int8
		// kernels, else float32).
		backendName = flag.String("backend", "auto", "serving backend for the detection model: auto, float32, int8, or int4")

		// Early-exit knob: recurrent models whose plans carry an exit
		// graph retire samples once the per-step classifier reaches this
		// confidence. Feed-forward pipelines ignore it.
		exitThr = flag.Float64("exit-threshold", 0, "early-exit confidence threshold in (0,1] for recurrent serving plans; 0 disables")

		// Autopilot SLO knobs: with -slo-p95 set the node profiles a tier
		// ladder for the detection model at startup and switches tiers /
		// offloads to the cloud at runtime to hold the SLO.
		sloP95      = flag.Duration("slo-p95", 0, "p95 latency SLO for the detection model; 0 disables the autopilot")
		sloFloor    = flag.Float64("slo-accuracy-floor", 0.5, "lowest tier accuracy the autopilot may switch to")
		sloMemMB    = flag.Int64("slo-memory-mb", 0, "tier memory cap in MiB (0 = device limit only)")
		sloInterval = flag.Duration("slo-interval", 0, "autopilot control tick (0 = default 500ms)")
		sloDown     = flag.Int("slo-downgrade-after", 0, "consecutive SLO-missing ticks before a downgrade (0 = default 1)")
		sloUp       = flag.Int("slo-upgrade-after", 0, "consecutive comfortable ticks before an upgrade (0 = default 3)")
		sloHeadroom = flag.Float64("slo-headroom", 0, "upgrade only when p95 ≤ headroom×SLO (0 = default 0.6)")
		sloOffload  = flag.Float64("slo-offload-fraction", 0, "share of requests offloaded while over SLO on the last tier (0 = default 0.5)")
		offloadURL  = flag.String("offload", "", "serving endpoint for edge→cloud offload (default: the -cloud URL)")

		// Cluster-membership knobs: with -advertise set the node gossips
		// with its seeds and shards the zoo catalog across the fleet.
		advertise    = flag.String("advertise", "", "this node's base URL as peers reach it; enables gossip cluster membership")
		clusterSeeds = flag.String("cluster-seeds", "", "comma-separated peer base URLs to rendezvous with")
		replication  = flag.Int("replication", 0, "owner-set size per sharded zoo model (0 = default 2)")
		maxZooFrac   = flag.Float64("max-zoo-fraction", 0, "cap on this node's share of the zoo catalog (0 = default 0.5)")

		// Observability knobs: request tracing (GET /ei_trace) and the
		// pprof debug listener. /metrics (Prometheus) is always on.
		traceRate = flag.Float64("trace-sample", 0, "head-sampling rate for request traces in [0,1]; errors and p99-tail requests are kept regardless")
		traceRing = flag.Int("trace-ring", 0, "stored traces retained for /ei_trace (0 = default 256)")
		debugAddr = flag.String("debug-addr", "", "listen address for the pprof debug server (empty = off)")
		blockRate = flag.Int("block-profile-rate", -1, "runtime.SetBlockProfileRate value (-1 = leave default)")
		mutexFrac = flag.Int("mutex-profile-fraction", -1, "runtime.SetMutexProfileFraction value (-1 = leave default)")
	)
	flag.Parse()
	obs.SetProfileRates(*blockRate, *mutexFrac)
	if *debugAddr != "" {
		if _, got, err := obs.StartDebugServer(*debugAddr); err != nil {
			log.Fatalf("debug server: %v", err)
		} else {
			log.Printf("pprof debug server on %s", got)
		}
	}
	tenantCfgs, err := parseTenants(*tenants)
	if err != nil {
		log.Fatal(err)
	}
	servingCfg := openei.ServingConfig{
		MaxBatch: *maxBatch, MaxWait: *maxWait,
		Replicas: *replicas, QueueDepth: *queueDepth,
		Procs: *procs, ParallelGrain: *grain,
		Tenants: tenantCfgs, DefaultTenant: *defaultTenant,
		ExitThreshold: *exitThr,
	}
	slo := openei.AutopilotPolicy{
		P95:             *sloP95,
		AccuracyFloor:   *sloFloor,
		MemoryCap:       *sloMemMB << 20,
		Interval:        *sloInterval,
		DowngradeAfter:  *sloDown,
		UpgradeAfter:    *sloUp,
		UpgradeHeadroom: *sloHeadroom,
		OffloadFraction: *sloOffload,
	}
	fallback := *offloadURL
	if fallback == "" {
		fallback = *cloudURL
	}
	clu := clusterOpts{
		Advertise:      *advertise,
		Replication:    *replication,
		MaxZooFraction: *maxZooFrac,
	}
	for _, u := range strings.Split(*clusterSeeds, ",") {
		if u = strings.TrimSpace(u); u != "" {
			clu.Seeds = append(clu.Seeds, u)
		}
	}
	if err := run(*addr, *nodeID, *device, *pkgName, *cloudURL, *peers, fallback, *backendName, *seed, servingCfg, slo, clu, *traceRate, *traceRing); err != nil {
		log.Fatal(err)
	}
}

// parseTenants decodes the -tenants flag: comma-separated classes, each
// name:priority:weight with an optional :rps[:burst] token-bucket tail.
func parseTenants(spec string) ([]openei.TenantConfig, error) {
	var out []openei.TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("bad -tenants entry %q: want name:priority:weight[:rps[:burst]]", entry)
		}
		tc := openei.TenantConfig{Name: parts[0]}
		if tc.Name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q: empty name", entry)
		}
		var err error
		if tc.Priority, err = strconv.Atoi(parts[1]); err != nil {
			return nil, fmt.Errorf("bad -tenants entry %q: priority: %v", entry, err)
		}
		if tc.Weight, err = strconv.Atoi(parts[2]); err != nil {
			return nil, fmt.Errorf("bad -tenants entry %q: weight: %v", entry, err)
		}
		if len(parts) > 3 {
			if tc.RatePerSec, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("bad -tenants entry %q: rps: %v", entry, err)
			}
		}
		if len(parts) > 4 {
			if tc.Burst, err = strconv.Atoi(parts[4]); err != nil {
				return nil, fmt.Errorf("bad -tenants entry %q: burst: %v", entry, err)
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

func run(addr, nodeID, device, pkgName, cloudURL, peers, offloadURL, backendName string, seed int64, servingCfg openei.ServingConfig, slo openei.AutopilotPolicy, clu clusterOpts, traceRate float64, traceRing int) error {
	node, err := openei.New(openei.Config{NodeID: nodeID, Device: device, Package: pkgName, Serving: servingCfg, Autopilot: slo})
	if err != nil {
		return err
	}
	defer node.Close()
	node.Server.SetTracer(obs.NewTracer(obs.Config{SampleRate: traceRate, Ring: traceRing, Source: nodeID}))
	eff := node.Serving.Config()
	pool := parallel.Snapshot()
	log.Printf("serving engine: max-batch %d, batch-wait %v, replicas %d, queue-depth %d; kernel pool: %d workers, grain %d",
		eff.MaxBatch, eff.MaxWait, eff.Replicas, eff.QueueDepth, pool.Workers, pool.GrainWork)

	const (
		size    = 16
		classes = 6
	)
	// The shapes corpus backs local training and tier profiling; skip
	// generating it when the model comes from the cloud and no SLO needs
	// an eval split.
	var train, test openei.Dataset
	if cloudURL == "" || slo.P95 > 0 {
		if train, test, err = dataset.Shapes(dataset.ShapesConfig{Samples: 900, Size: size, Classes: classes, Noise: 0.3, Seed: seed}); err != nil {
			return err
		}
	}
	model, err := bootstrapModel(cloudURL, train, size, classes, seed)
	if err != nil {
		return err
	}
	backend := openei.Backend(backendName)
	if backendName == "auto" {
		backend = openei.BackendFloat32
		if node.Package().SupportsInt8 {
			backend = openei.BackendInt8
		}
	}
	if err := node.LoadModelBackend(model, backend); err != nil {
		return err
	}
	log.Printf("loaded model %q on %s/%s (serving backend %s)", model.Name, pkgName, device, backend)

	// With an SLO declared, profile a tier ladder for the detector (its
	// int8 variant plus a locally trained kilobyte-class fallback) and
	// start the autopilot; the cloud (or -offload) endpoint becomes the
	// last-resort rung.
	if slo.P95 > 0 {
		if backendName != "auto" {
			// DeployTiers reloads the detector's tier variants with the
			// backend each Pareto rung earned; a hand-picked -backend
			// does not survive that.
			log.Printf("autopilot enabled: tier ladder backends supersede -backend %s", backendName)
		}
		mini, err := trainMini(train, size, classes, seed)
		if err != nil {
			return err
		}
		cands := map[string]*openei.Model{model.Name: model, mini.Name: mini}
		tiers, err := node.DeployTiers(cands, test, slo)
		if err != nil {
			return err
		}
		var off openei.Offloader
		if offloadURL != "" {
			off = openei.NewRemoteOffloader(offloadURL, "detector")
		}
		if _, err := node.EnableAutopilot(model.Name, tiers, off); err != nil {
			return err
		}
		for i, t := range tiers {
			log.Printf("autopilot tier %d: %s (acc %.3f, profiled %v)", i, t.Model, t.Accuracy, t.Latency)
		}
		log.Printf("autopilot: p95 SLO %v on %q, offload %q", slo.P95, model.Name, offloadURL)
	}

	// Demo sensors: one camera, one power meter, one wearable IMU.
	cam, err := sensors.NewCamera("camera1", size, classes, seed)
	if err != nil {
		return err
	}
	meter, err := sensors.NewPowerMeter("meter1", 32, seed+1)
	if err != nil {
		return err
	}
	imu, err := sensors.NewIMU("imu1", 16, 0, seed+2)
	if err != nil {
		return err
	}
	for _, d := range []sensors.Driver{cam, meter, imu} {
		if err := node.Store.Register(d.Info()); err != nil {
			return err
		}
	}

	// Scenario models for meter and IMU, trained at startup (small nets,
	// a few seconds).
	powerModel, actModel, err := scenarioModels(seed)
	if err != nil {
		return err
	}
	if err := node.LoadModel(powerModel, false); err != nil {
		return err
	}
	if err := node.LoadModel(actModel, false); err != nil {
		return err
	}
	if err := node.EnableSafety(model.Name, "camera1", dataset.ShapeClassNames[:classes], 3); err != nil {
		return err
	}
	if err := node.EnableVehicles("camera1", 8); err != nil {
		return err
	}
	if err := node.EnableHome(powerModel.Name, "meter1", dataset.PowerClassNames); err != nil {
		return err
	}
	if err := node.EnableHealth(actModel.Name, "imu1", dataset.ActivityClassNames, 3); err != nil {
		return err
	}
	if err := node.EnableMask("camera1"); err != nil {
		return err
	}

	// Carve the device between the scenarios (OpenVDAP-style) and expose
	// the allocations at GET /ei_resources.
	vcu := openei.NewVCU(node.Device())
	for _, a := range []openei.VCURequest{
		{App: "safety", ComputeShare: 0.4, MemBytes: 32 << 20},
		{App: "vehicles", ComputeShare: 0.2, MemBytes: 16 << 20},
		{App: "home", ComputeShare: 0.1, MemBytes: 8 << 20},
		{App: "health", ComputeShare: 0.1, MemBytes: 8 << 20},
	} {
		if _, err := vcu.Allocate(a); err != nil {
			return err
		}
	}
	node.AttachVCU(vcu)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Feed the sensors continuously until shutdown.
	go feedLoop(ctx, node, []sensors.Driver{cam, meter, imu})

	// Watch peers via their /ei_status heartbeats (§IV.C availability).
	if peers != "" {
		go watchPeers(ctx, peers)
	}

	// Join the gossip cluster: the agent rendezvouses with its seeds,
	// advertises this node's loaded-model set, and loads/evicts zoo
	// models as the consistent-hash placement plan assigns them. Models
	// this node already serves locally — the detector backing the safety
	// scenario, power-net/activity-net, autopilot tier rungs — are
	// carved out of the sharded namespace: the plan must never evict a
	// model a scenario route depends on.
	if clu.Advertise != "" {
		local := map[string]bool{}
		for _, name := range node.Manager.Models() {
			local[name] = true
		}
		var catalog []string
		for _, name := range zoo.Names() {
			if !local[name] {
				catalog = append(catalog, name)
			}
		}
		agent, err := cluster.NewAgent(node.Manager, node.Serving, node.Server, cluster.AgentConfig{
			Self:           clu.Advertise,
			Seeds:          clu.Seeds,
			Catalog:        catalog,
			Provider:       clusterProvider(cloudURL, size, classes, seed),
			Quantize:       node.Package().SupportsInt8,
			Replication:    clu.Replication,
			MaxZooFraction: clu.MaxZooFraction,
			Logf:           log.Printf,
		})
		if err != nil {
			return err
		}
		agent.Start()
		defer agent.Close()
		log.Printf("cluster: advertising %s, %d seeds", clu.Advertise, len(clu.Seeds))
	}

	srv := &http.Server{Addr: addr, Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("node %q serving libei on %s", nodeID, addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down")
	return nil
}

// bootstrapModel fetches the detection model from the cloud registry, or
// trains one locally when no cloud is configured (edge-autonomy mode).
func bootstrapModel(cloudURL string, train openei.Dataset, size, classes int, seed int64) (*openei.Model, error) {
	if cloudURL != "" {
		c := cloud.NewRegistryClient(cloudURL)
		blob, version, err := c.Fetch("detector")
		if err != nil {
			return nil, err
		}
		log.Printf("fetched detector v%d from %s (%d bytes)", version, cloudURL, len(blob))
		return nn.DecodeModel(blob)
	}
	log.Printf("no cloud registry configured; training detector locally")
	rng := rand.New(rand.NewSource(seed))
	m, err := zoo.Build("lenet", size, classes, rng)
	if err != nil {
		return nil, err
	}
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		return nil, err
	}
	return m, nil
}

// clusterProvider materializes a zoo model the placement plan assigned
// to this node: fetched from the cloud registry when one is configured,
// built locally otherwise. Local builds seed the weights from the model
// name so every node in the fleet materializes identical replicas.
func clusterProvider(cloudURL string, size, classes int, seed int64) func(string) (*nn.Model, error) {
	var reg *cloud.RegistryClient
	if cloudURL != "" {
		reg = cloud.NewRegistryClient(cloudURL)
	}
	return func(name string) (*nn.Model, error) {
		if reg != nil {
			if blob, version, err := reg.Fetch(name); err == nil {
				log.Printf("cluster: fetched %s v%d from registry (%d bytes)", name, version, len(blob))
				return nn.DecodeModel(blob)
			}
		}
		h := seed
		for _, b := range []byte(name) {
			h = h*31 + int64(b)
		}
		return zoo.Build(name, size, classes, rand.New(rand.NewSource(h)))
	}
}

// trainMini trains the kilobyte-class fallback rung of the autopilot's
// tier ladder (a few seconds of local work).
func trainMini(train openei.Dataset, size, classes int, seed int64) (*openei.Model, error) {
	rng := rand.New(rand.NewSource(seed + 20))
	m, err := zoo.Build("bonsai-m", size, classes, rng)
	if err != nil {
		return nil, err
	}
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		return nil, err
	}
	return m, nil
}

func scenarioModels(seed int64) (power, activity *openei.Model, err error) {
	pTrain, _, err := dataset.Power(dataset.PowerConfig{Samples: 600, Window: 32, Noise: 0.08, Seed: seed + 10})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed + 11))
	power = nn.MustModel("power-net", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: len(dataset.PowerClassNames)},
	})
	power.InitParams(rng)
	if _, _, err := nn.Train(power, pTrain, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		return nil, nil, err
	}
	aTrain, _, err := dataset.Activity(dataset.ActivityConfig{Samples: 600, Window: 16, Noise: 0.15, Seed: seed + 12})
	if err != nil {
		return nil, nil, err
	}
	activity = nn.MustModel("activity-net", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: len(dataset.ActivityClassNames)},
	})
	activity.InitParams(rng)
	if _, _, err := nn.Train(activity, aTrain, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		return nil, nil, err
	}
	return power, activity, nil
}

// watchPeers polls each peer's /ei_status every 2 s, records heartbeats
// in a failure detector, and logs live↔suspect transitions — the §IV.C
// availability loop, runnable across real processes.
func watchPeers(ctx context.Context, peerList string) {
	const (
		interval = 2 * time.Second
		timeout  = 3 * interval
	)
	clients := map[string]*libei.Client{}
	for _, u := range strings.Split(peerList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			clients[u] = libei.NewClient(u)
		}
	}
	if len(clients) == 0 {
		return
	}
	mon := runenv.NewMonitor(timeout)
	wasLive := map[string]bool{}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			// Bound each probe round to the poll period: a stuck peer
			// times out instead of stalling the loop past its next tick.
			probeCtx, cancel := context.WithTimeout(ctx, interval)
			alive, errs := collab.PollHeartbeats(probeCtx, mon, clients, now)
			cancel()
			for _, id := range alive {
				if !wasLive[id] {
					log.Printf("peer %q is live", id)
					wasLive[id] = true
				}
			}
			for id := range wasLive {
				if !wasLive[id] {
					continue
				}
				if st, err := mon.State(id, now); err == nil && st == runenv.NodeSuspect {
					log.Printf("peer %q is SUSPECT (no heartbeat for %v)", id, timeout)
					wasLive[id] = false
				}
			}
			// Probe errors for peers never seen are start-order noise;
			// transitions of known peers are already logged above.
			_ = errs
		}
	}
}

// feedLoop appends fresh sensor samples until the context is cancelled.
func feedLoop(ctx context.Context, node *openei.Node, drivers []sensors.Driver) {
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			for _, d := range drivers {
				if err := node.Store.Append(d.Info().ID, d.Next(now)); err != nil {
					log.Printf("feed %s: %v", d.Info().ID, err)
				}
			}
		}
	}
}
