// Command benchdiff compares two bench-smoke snapshots and prints
// per-benchmark deltas, so the BENCH_*.json files committed at the repo
// root form a readable performance trajectory instead of two blobs to
// eyeball.
//
// Each input is either a BENCH_*.json snapshot (the schema committed at
// the repo root) or the raw text a `go test -bench` run prints (the
// bench-output.txt the CI bench-smoke job tees) — the format is sniffed,
// so CI can diff its fresh run against the committed baseline without a
// conversion step:
//
//	go run ./cmd/benchdiff BENCH_2026-08-08.json bench-output.txt
//
// With -emit, benchdiff takes ONE input and prints it as a snapshot
// JSON document to stdout — how the committed snapshots are produced:
//
//	go test -bench=. -benchtime=1x -run='^$' ./internal/... | \
//	  go run ./cmd/benchdiff -emit -note "post-kernel" - > BENCH_$(date +%F).json
//
// Benchmarks are matched on (pkg, name). Output is one line per
// benchmark: old and new ns/op and the signed delta (negative = faster),
// with benchmarks present on only one side flagged as added/removed.
// -max-regress N makes the exit status fail when any common benchmark
// regressed by more than N percent; by default benchdiff only reports,
// since smoke numbers on shared CI runners are trajectory data, not a
// gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the on-disk schema of the committed BENCH_*.json files.
type Snapshot struct {
	Date      string   `json:"date"`
	Go        string   `json:"go"`
	Goos      string   `json:"goos"`
	Goarch    string   `json:"goarch"`
	CPU       string   `json:"cpu"`
	Benchtime string   `json:"benchtime"`
	Note      string   `json:"note,omitempty"`
	Command   string   `json:"command,omitempty"`
	Results   []Result `json:"results"`
}

// Result is one benchmark line: the ns/op plus whatever extra
// value/unit pairs the benchmark reported (MB/s, allocs/op, ...).
type Result struct {
	PkgName    string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

func main() {
	emit := flag.Bool("emit", false, "parse one input and print it as snapshot JSON on stdout")
	note := flag.String("note", "", "note to embed in the emitted snapshot")
	benchtime := flag.String("benchtime", "1x", "benchtime to record in the emitted snapshot")
	command := flag.String("command", "", "command line to record in the emitted snapshot")
	maxRegress := flag.Float64("max-regress", 0, "exit non-zero if any benchmark slowed by more than this percent (0 = report only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD NEW\n       benchdiff -emit [flags] INPUT\n\nInputs are BENCH_*.json snapshots or raw `go test -bench` output; \"-\" reads stdin.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *emit {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		snap, err := load(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *note != "" {
			snap.Note = *note
		}
		snap.Benchtime = *benchtime
		if *command != "" {
			snap.Command = *command
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldSnap, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newSnap, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	worst := diff(os.Stdout, oldSnap, newSnap)
	if *maxRegress > 0 && worst > *maxRegress {
		fmt.Fprintf(os.Stderr, "benchdiff: worst regression %+.1f%% exceeds -max-regress %.1f%%\n", worst, *maxRegress)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// load reads a snapshot from path ("-" = stdin), sniffing JSON vs raw
// `go test -bench` text by the first non-space byte.
func load(path string) (*Snapshot, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("%s: empty input", path)
	}
	if trimmed[0] == '{' {
		var s Snapshot
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &s, nil
	}
	return parseBenchText(data)
}

// parseBenchText converts raw `go test -bench` output into a Snapshot.
// The goos/goarch/cpu/pkg header lines the test binary prints scope the
// benchmark lines that follow them.
func parseBenchText(data []byte) (*Snapshot, error) {
	s := &Snapshot{
		Date: time.Now().UTC().Format("2006-01-02"),
		Go:   runtime.Version(),
	}
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			s.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			s.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(pkg, line)
			if ok {
				s.Results = append(s.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found (is this `go test -bench` output?)")
	}
	return s, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-1   123   4567 ns/op   89.1 MB/s   0 allocs/op
func parseBenchLine(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{PkgName: pkg, Name: f[0], Iterations: iters}
	// The remainder is value/unit pairs; ns/op is promoted to its own
	// field, everything else lands in extra.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra[f[i+1]] = v
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// diff prints the per-benchmark comparison and returns the worst
// regression percentage among benchmarks present on both sides.
func diff(w io.Writer, oldSnap, newSnap *Snapshot) float64 {
	type key struct{ pkg, name string }
	oldBy := map[key]Result{}
	for _, r := range oldSnap.Results {
		oldBy[key{r.PkgName, r.Name}] = r
	}
	newBy := map[key]Result{}
	for _, r := range newSnap.Results {
		newBy[key{r.PkgName, r.Name}] = r
	}
	keys := make([]key, 0, len(oldBy)+len(newBy))
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, dup := oldBy[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].name < keys[j].name
	})

	fmt.Fprintf(w, "benchdiff: %s (%s) -> %s (%s), %d vs %d benchmarks\n\n",
		orDash(oldSnap.Date), orDash(oldSnap.Go), orDash(newSnap.Date), orDash(newSnap.Go),
		len(oldSnap.Results), len(newSnap.Results))
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")

	worst := 0.0
	var added, removed int
	lastPkg := ""
	for _, k := range keys {
		if k.pkg != lastPkg {
			fmt.Fprintf(w, "\n%s\n", k.pkg)
			lastPkg = k.pkg
		}
		o, hasOld := oldBy[k]
		n, hasNew := newBy[k]
		name := strings.TrimPrefix(k.name, "Benchmark")
		switch {
		case hasOld && hasNew:
			pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			if pct > worst {
				worst = pct
			}
			fmt.Fprintf(w, "  %-50s %14s %14s %+8.1f%%\n", name, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), pct)
		case hasNew:
			added++
			fmt.Fprintf(w, "  %-50s %14s %14s %9s\n", name, "-", fmtNs(n.NsPerOp), "added")
		default:
			removed++
			fmt.Fprintf(w, "  %-50s %14s %14s %9s\n", name, fmtNs(o.NsPerOp), "-", "removed")
		}
	}
	fmt.Fprintf(w, "\n%d common, %d added, %d removed; worst regression %+.1f%%\n",
		len(keys)-added-removed, added, removed, worst)
	return worst
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", v/1e3)
	default:
		return fmt.Sprintf("%.0fns", v)
	}
}
