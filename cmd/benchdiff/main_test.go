package main

import (
	"strings"
	"testing"
)

const rawBench = `goos: linux
goarch: amd64
pkg: openei/internal/tensor
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMatMul/256-1         	       1	   1000000 ns/op	 100.00 MB/s
BenchmarkConvDirect-1         	       1	    500000 ns/op
PASS
ok  	openei/internal/tensor	0.1s
pkg: openei/internal/plan
BenchmarkPlanExecute-1        	       2	    250000 ns/op	       0 allocs/op
PASS
ok  	openei/internal/plan	0.1s
`

func TestParseBenchText(t *testing.T) {
	s, err := parseBenchText([]byte(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	if s.Goos != "linux" || s.Goarch != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Errorf("header not parsed: %+v", s)
	}
	if len(s.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(s.Results), s.Results)
	}
	r := s.Results[0]
	if r.PkgName != "openei/internal/tensor" || r.Name != "BenchmarkMatMul/256-1" ||
		r.Iterations != 1 || r.NsPerOp != 1e6 || r.Extra["MB/s"] != 100 {
		t.Errorf("first result mis-parsed: %+v", r)
	}
	// The pkg: header re-scopes the lines that follow it.
	if s.Results[2].PkgName != "openei/internal/plan" || s.Results[2].Extra["allocs/op"] != 0 {
		t.Errorf("second package mis-scoped: %+v", s.Results[2])
	}
}

func TestParseBenchTextRejectsNonBench(t *testing.T) {
	if _, err := parseBenchText([]byte("hello\nworld\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestDiffMatchesOnPkgAndName(t *testing.T) {
	oldSnap := &Snapshot{Date: "2026-01-01", Results: []Result{
		{PkgName: "a", Name: "BenchmarkX-1", NsPerOp: 1000},
		{PkgName: "a", Name: "BenchmarkGone-1", NsPerOp: 5},
		{PkgName: "b", Name: "BenchmarkX-1", NsPerOp: 2000}, // same name, different pkg
	}}
	newSnap := &Snapshot{Date: "2026-02-01", Results: []Result{
		{PkgName: "a", Name: "BenchmarkX-1", NsPerOp: 500},  // 2× faster
		{PkgName: "b", Name: "BenchmarkX-1", NsPerOp: 2500}, // 25% slower
		{PkgName: "b", Name: "BenchmarkNew-1", NsPerOp: 7},
	}}
	var sb strings.Builder
	worst := diff(&sb, oldSnap, newSnap)
	out := sb.String()
	if worst < 24.9 || worst > 25.1 {
		t.Errorf("worst regression %v, want ~25", worst)
	}
	for _, want := range []string{"-50.0%", "+25.0%", "added", "removed", "1 added, 1 removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestEmitRoundTrip(t *testing.T) {
	s, err := parseBenchText([]byte(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	// A parsed-then-diffed snapshot against itself has zero regressions
	// and no added/removed rows — the identity every emit must satisfy.
	var sb strings.Builder
	if worst := diff(&sb, s, s); worst != 0 {
		t.Errorf("self-diff worst regression %v, want 0", worst)
	}
	if !strings.Contains(sb.String(), "3 common, 0 added, 0 removed") {
		t.Errorf("self-diff not clean:\n%s", sb.String())
	}
}
