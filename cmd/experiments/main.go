// Command experiments regenerates every table and figure of the paper
// (E1–E8; see DESIGN.md §4 and EXPERIMENTS.md) as text tables.
//
// Usage:
//
//	experiments [-run E1,E3,E8] [-samples 1200] [-epochs 10] [-seed 1]
//
// Building the fixture trains the full model zoo, which takes about a
// minute at the default size.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"openei/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run     = flag.String("run", "E1,E2,E3,E4,E5,E7,E8", "comma-separated experiment IDs to run (E6 is benchmark-only; see bench_test.go)")
		samples = flag.Int("samples", 1200, "shapes dataset size")
		epochs  = flag.Int("epochs", 10, "zoo training epochs")
		seed    = flag.Int64("seed", 1, "global seed")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}

	fmt.Fprintf(os.Stderr, "building fixture (samples=%d, epochs=%d, seed=%d): training the model zoo...\n", *samples, *epochs, *seed)
	start := time.Now()
	env, err := experiments.NewEnv(experiments.EnvConfig{Samples: *samples, Epochs: *epochs, Seed: *seed})
	if err != nil {
		log.Fatalf("build env: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fixture ready in %v\n\n", time.Since(start).Round(time.Second))

	type exp struct {
		id  string
		run func() (string, error)
	}
	all := []exp{
		{"E1", func() (string, error) { r, err := env.E1DataDeluge(); return r.Table, err }},
		{"E2", func() (string, error) { r, err := env.E2Collaboration(); return r.Table, err }},
		{"E3", func() (string, error) { r, err := env.E3Dataflows(); return r.Table, err }},
		{"E4", func() (string, error) { r, err := env.E4Pipeline(); return r.Table, err }},
		{"E5", func() (string, error) { r, err := env.E5Selector(); return r.Table, err }},
		{"E7", func() (string, error) { r, err := env.E7Compression(); return r.Table, err }},
		{"E8", func() (string, error) { r, err := env.E8Headline(); return r.Table, err }},
	}
	ran := 0
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Println(tbl)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", e.id, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if want["E6"] {
		fmt.Println("E6 (Figure 6) is benchmark-only: run `go test -bench=BenchmarkE6 -benchmem .`")
	}
	if ran == 0 && !want["E6"] {
		log.Fatalf("no experiments matched -run=%s", *run)
	}
}
