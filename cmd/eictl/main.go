// Command eictl is the CLI client for an OpenEI node's libei API.
//
// Usage:
//
//	eictl -addr http://localhost:8080 status
//	eictl -addr http://localhost:8080 models
//	eictl -addr http://localhost:8080 data realtime camera1 -n 3
//	eictl -addr http://localhost:8080 data historical camera1 -start 2026-06-12T00:00:00Z -end 2026-06-12T01:00:00Z
//	eictl -addr http://localhost:8080 call safety/detection video=camera1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"strings"
	"time"

	"openei/internal/libei"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eictl: ")
	addr := flag.String("addr", "http://localhost:8080", "node base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	client := libei.NewClient(*addr)
	if err := dispatch(client, args); err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `eictl — OpenEI node client

usage: eictl [-addr URL] <command>

commands:
  status                                node identity and capabilities
  models                                loaded models with ALEM costs
  resources                             device capacity + live VCU allocations
  algorithms                            registered scenario/algorithm pairs
  data realtime <sensor> [-n K]         recent samples
  data historical <sensor> -start T -end T   RFC3339 range query
  call <scenario>/<algorithm> [k=v ...] invoke an algorithm
`)
}

func dispatch(client *libei.Client, args []string) error {
	switch args[0] {
	case "status":
		st, err := client.Status()
		if err != nil {
			return err
		}
		return printJSON(st)
	case "models":
		ms, err := client.Models()
		if err != nil {
			return err
		}
		return printJSON(ms)
	case "resources":
		rs, err := client.Resources()
		if err != nil {
			return err
		}
		return printJSON(rs)
	case "algorithms":
		as, err := client.Algorithms()
		if err != nil {
			return err
		}
		return printJSON(as)
	case "data":
		return dataCmd(client, args[1:])
	case "call":
		return callCmd(client, args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func dataCmd(client *libei.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: data realtime|historical <sensor> [flags]")
	}
	kind, sensor := args[0], args[1]
	fs := flag.NewFlagSet("data", flag.ContinueOnError)
	n := fs.Int("n", 1, "samples to fetch (realtime)")
	startS := fs.String("start", "", "range start, RFC3339 (historical)")
	endS := fs.String("end", "", "range end, RFC3339 (historical)")
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	switch kind {
	case "realtime":
		samples, err := client.Realtime(sensor, *n)
		if err != nil {
			return err
		}
		return printSamples(samples)
	case "historical":
		start, err := time.Parse(time.RFC3339, *startS)
		if err != nil {
			return fmt.Errorf("bad -start: %w", err)
		}
		end, err := time.Parse(time.RFC3339, *endS)
		if err != nil {
			return fmt.Errorf("bad -end: %w", err)
		}
		samples, err := client.Historical(sensor, start, end)
		if err != nil {
			return err
		}
		return printSamples(samples)
	default:
		return fmt.Errorf("unknown data type %q (want realtime or historical)", kind)
	}
}

func printSamples(samples []libei.DataSample) error {
	for _, s := range samples {
		preview := s.Payload
		suffix := ""
		if len(preview) > 8 {
			preview = preview[:8]
			suffix = fmt.Sprintf(" … (%d values)", len(s.Payload))
		}
		fmt.Printf("%s %v%s\n", s.At.Format(time.RFC3339), preview, suffix)
	}
	if len(samples) == 0 {
		fmt.Println("(no samples)")
	}
	return nil
}

func callCmd(client *libei.Client, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: call <scenario>/<algorithm> [key=value ...]")
	}
	scenario, name, ok := strings.Cut(args[0], "/")
	if !ok {
		return fmt.Errorf("algorithm must be <scenario>/<name>, got %q", args[0])
	}
	q := url.Values{}
	for _, kv := range args[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("argument %q is not key=value", kv)
		}
		q.Set(k, v)
	}
	var out any
	if err := client.CallAlgorithm(scenario, name, q, &out); err != nil {
		return err
	}
	return printJSON(out)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
