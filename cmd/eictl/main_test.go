package main

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/datastore"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/runenv"
)

// testClient spins a full libei node (datastore + manager + VCU + one
// algorithm) and returns a client pointed at it.
func testClient(t *testing.T) *libei.Client {
	t.Helper()
	store := datastore.New(8)
	if err := store.Register(datastore.SensorInfo{ID: "camera1", Kind: "camera", Dim: 4}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := store.Append("camera1", datastore.Sample{
			At:      t0.Add(time.Duration(i) * time.Second),
			Payload: []float32{float32(i), 0, 0, 0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	model := nn.MustModel("tiny", []int{4}, []nn.LayerSpec{{Type: "dense", In: 4, Out: 2}})
	model.InitParams(rand.New(rand.NewSource(1)))
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := libei.NewServer("edge-1", store, mgr)
	if err := srv.Register(libei.Registration{
		Scenario: "safety", Name: "echo",
		Fn: func(args url.Values) (any, error) {
			return map[string]string{"video": args.Get("video")}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	vcu := runenv.NewVCU(dev)
	if _, err := vcu.Allocate(runenv.Request{App: "safety", ComputeShare: 0.5, MemBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	srv.SetVCU(vcu)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return libei.NewClient(ts.URL)
}

func TestDispatchSimpleCommands(t *testing.T) {
	c := testClient(t)
	for _, cmd := range [][]string{
		{"status"},
		{"models"},
		{"resources"},
		{"algorithms"},
		{"call", "safety/echo", "video=camera1"},
		{"data", "realtime", "camera1", "-n", "2"},
		{"data", "historical", "camera1",
			"-start", "2026-06-12T00:00:00Z", "-end", "2026-06-12T00:00:05Z"},
	} {
		if err := dispatch(c, cmd); err != nil {
			t.Errorf("dispatch(%v): %v", cmd, err)
		}
	}
}

func TestDispatchErrors(t *testing.T) {
	c := testClient(t)
	for _, cmd := range [][]string{
		{"frobnicate"},
		{"call"},
		{"call", "no-slash"},
		{"call", "safety/echo", "not-key-value"},
		{"data"},
		{"data", "bogus", "camera1"},
		{"data", "historical", "camera1", "-start", "junk", "-end", "junk"},
		{"call", "safety/missing"},
		{"data", "realtime", "ghost-sensor"},
	} {
		if err := dispatch(c, cmd); err == nil {
			t.Errorf("dispatch(%v) succeeded, want error", cmd)
		}
	}
}
