// Command openei-cloud runs the cloud side of Figure 2/3: a model registry
// served over HTTP, pre-populated by training the model zoo on the
// synthetic shapes corpus (Dataflow 1: the cloud trains on gathered data;
// Dataflow 2: edges download the published models).
//
// Usage:
//
//	openei-cloud -addr :9090 [-epochs 10] [-samples 1200] [-seed 1]
//
// Endpoints:
//
//	GET  /registry            — list published models
//	GET  /registry/{name}     — download a model blob
//	POST /registry/{name}     — publish a (re)trained model (edge uploads)
//
// With -serve (default on), the cloud also runs an inference tier over the
// registry's models — a libei server on a cloud-class device profile, so
// GET /ei_algorithms/serving/infer and /ei_metrics work here too. This is
// the fallback executor edge autopilots offload to when even their
// cheapest local tier cannot hold the SLO (openei-server -slo-p95 +
// -offload).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"openei/internal/alem"
	"openei/internal/cloud"
	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
	"openei/internal/zoo"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("openei-cloud: ")
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		samples = flag.Int("samples", 1200, "training corpus size")
		epochs  = flag.Int("epochs", 10, "training epochs")
		seed    = flag.Int64("seed", 1, "training seed")
		state   = flag.String("state", "", "directory to persist the registry; reused on restart")
		doServe = flag.Bool("serve", true, "also run an inference tier over the registry models (edge offload target)")
	)
	flag.Parse()
	if err := run(*addr, *samples, *epochs, *seed, *state, *doServe); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, samples, epochs int, seed int64, stateDir string, doServe bool) error {
	if stateDir != "" {
		if loaded, err := cloud.LoadRegistry(stateDir); err == nil && len(loaded.List()) > 0 {
			log.Printf("restored %d models from %s; skipping training", len(loaded.List()), stateDir)
			return serve(addr, loaded, doServe)
		}
	}
	reg := cloud.NewRegistry()

	log.Printf("training the model zoo (%d samples, %d epochs)...", samples, epochs)
	start := time.Now()
	train, test, err := dataset.Shapes(dataset.ShapesConfig{Samples: samples, Size: 16, Classes: 6, Noise: 0.3, Seed: seed})
	if err != nil {
		return err
	}
	models, err := zoo.TrainAll(train, 16, 6, epochs, seed)
	if err != nil {
		return err
	}
	for name, m := range models {
		acc, err := nn.Accuracy(m, test.X, test.Y)
		if err != nil {
			return err
		}
		if _, err := reg.PublishModel(m); err != nil {
			return err
		}
		log.Printf("published %-14s acc=%.3f params=%d", name, acc, m.ParamCount())
	}
	// Publish the best CNN under the alias the edge bootstrap expects.
	detector, err := models["lenet"].Clone()
	if err != nil {
		return err
	}
	detector.Name = "detector"
	if _, err := reg.PublishModel(detector); err != nil {
		return err
	}
	log.Printf("zoo ready in %v (%d models)", time.Since(start).Round(time.Second), len(reg.List()))
	if stateDir != "" {
		if err := reg.Save(stateDir); err != nil {
			return err
		}
		log.Printf("registry persisted to %s", stateDir)
	}
	return serve(addr, reg, doServe)
}

// servingTier loads every registry model into a cloud-class package
// manager and fronts it with a libei server: the offload executor edges
// fall back to. Returns the composite handler (registry + libei) and a
// shutdown func.
func servingTier(reg *cloud.Registry) (http.Handler, func(), error) {
	regHandler := &cloud.RegistryServer{Registry: reg}
	pkg, err := alem.PackageByName("cloudpkg-m")
	if err != nil {
		return nil, nil, err
	}
	dev, err := hardware.ByName("cloud-gpu")
	if err != nil {
		return nil, nil, err
	}
	mgr := pkgmgr.New(pkg, dev)
	for _, info := range reg.List() {
		m, _, err := reg.FetchModel(info.Name)
		if err != nil {
			mgr.Close()
			return nil, nil, err
		}
		if err := mgr.Load(m, pkgmgr.LoadOptions{}); err != nil {
			mgr.Close()
			return nil, nil, err
		}
	}
	srv := libei.NewServer("cloud", nil, mgr)
	eng := serving.NewEngine(mgr, serving.Config{})
	srv.SetEngine(eng)
	log.Printf("inference tier serving %d registry models on %s/%s", len(reg.List()), pkg.Name, dev.Name)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/registry" || strings.HasPrefix(r.URL.Path, "/registry/") {
			regHandler.ServeHTTP(w, r)
			return
		}
		srv.ServeHTTP(w, r)
	})
	return handler, func() { eng.Close(); mgr.Close() }, nil
}

func serve(addr string, reg *cloud.Registry, doServe bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var handler http.Handler = &cloud.RegistryServer{Registry: reg}
	if doServe {
		h, closeTier, err := servingTier(reg)
		if err != nil {
			return err
		}
		defer closeTier()
		handler = h
	}
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("registry serving on %s", addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down")
	return nil
}
