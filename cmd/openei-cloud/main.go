// Command openei-cloud runs the cloud side of Figure 2/3: a model registry
// served over HTTP, pre-populated by training the model zoo on the
// synthetic shapes corpus (Dataflow 1: the cloud trains on gathered data;
// Dataflow 2: edges download the published models).
//
// Usage:
//
//	openei-cloud -addr :9090 [-epochs 10] [-samples 1200] [-seed 1]
//
// Endpoints:
//
//	GET  /registry            — list published models
//	GET  /registry/{name}     — download a model blob
//	POST /registry/{name}     — publish a (re)trained model (edge uploads)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openei/internal/cloud"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/zoo"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("openei-cloud: ")
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		samples = flag.Int("samples", 1200, "training corpus size")
		epochs  = flag.Int("epochs", 10, "training epochs")
		seed    = flag.Int64("seed", 1, "training seed")
		state   = flag.String("state", "", "directory to persist the registry; reused on restart")
	)
	flag.Parse()
	if err := run(*addr, *samples, *epochs, *seed, *state); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, samples, epochs int, seed int64, stateDir string) error {
	if stateDir != "" {
		if loaded, err := cloud.LoadRegistry(stateDir); err == nil && len(loaded.List()) > 0 {
			log.Printf("restored %d models from %s; skipping training", len(loaded.List()), stateDir)
			return serve(addr, loaded)
		}
	}
	reg := cloud.NewRegistry()

	log.Printf("training the model zoo (%d samples, %d epochs)...", samples, epochs)
	start := time.Now()
	train, test, err := dataset.Shapes(dataset.ShapesConfig{Samples: samples, Size: 16, Classes: 6, Noise: 0.3, Seed: seed})
	if err != nil {
		return err
	}
	models, err := zoo.TrainAll(train, 16, 6, epochs, seed)
	if err != nil {
		return err
	}
	for name, m := range models {
		acc, err := nn.Accuracy(m, test.X, test.Y)
		if err != nil {
			return err
		}
		if _, err := reg.PublishModel(m); err != nil {
			return err
		}
		log.Printf("published %-14s acc=%.3f params=%d", name, acc, m.ParamCount())
	}
	// Publish the best CNN under the alias the edge bootstrap expects.
	detector, err := models["lenet"].Clone()
	if err != nil {
		return err
	}
	detector.Name = "detector"
	if _, err := reg.PublishModel(detector); err != nil {
		return err
	}
	log.Printf("zoo ready in %v (%d models)", time.Since(start).Round(time.Second), len(reg.List()))
	if stateDir != "" {
		if err := reg.Save(stateDir); err != nil {
			return err
		}
		log.Printf("registry persisted to %s", stateDir)
	}
	return serve(addr, reg)
}

func serve(addr string, reg *cloud.Registry) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: addr, Handler: &cloud.RegistryServer{Registry: reg}, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("registry serving on %s", addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down")
	return nil
}
