package openei

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// skewModel hand-crafts a FastGRNN classifier whose per-step confidence
// tracks input difficulty: feature 0 of each time step routes into every
// hidden unit, the update gate is biased open (Bz=−8) so the state
// saturates within one step of signal, and the dense head reads the
// saturated state as class 0 with softmax confidence ≈0.95. An "easy"
// input carries signal from step 1 and crosses a 0.9 exit threshold
// immediately; a "hard" input stays silent until T/2 and cannot exit
// before then. Both difficulties predict class 0 either way, so early
// exit trades steps for latency at identical accuracy.
func skewModel(t *testing.T, name string, T, D, H, C int) *Model {
	t.Helper()
	m, err := nn.NewModel(name, []int{T * D}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: T, D: D, H: H}},
		{Type: "dense", In: H, Out: C},
	})
	if err != nil {
		t.Fatal(err)
	}
	rnn := m.Layers[0].(*nn.FastGRNN)
	for i := 0; i < H; i++ {
		rnn.W.Data()[i*D] = 1.5 // route feature 0 into every unit
		rnn.U.Data()[i*H+i] = 0.5
		rnn.Bz.Data()[i] = -8 // z≈0: the update gate passes h̃ straight through
	}
	head := m.Layers[1].(*nn.Dense)
	for j := 0; j < H; j++ {
		head.W.Data()[0*H+j] = 4.0 / float32(H) // class 0 collects the saturated state
	}
	return m
}

// skewSample builds one input for skewModel: signal (feature 0 = 3) on
// every step from `from` onward, silence before.
func skewSample(t *testing.T, T, D, from int) *Tensor {
	t.Helper()
	data := make([]float32, T*D)
	for step := from; step < T; step++ {
		data[step*D] = 3
	}
	x, err := tensor.NewFrom(data, T*D)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// The tentpole scenario: an input-difficulty-skewed workload (the
// easy/hard mix shifts over time) served by the same recurrent weights
// with and without confidence-routed early exit. The exit plan must win
// on mean steps used and p95 latency while predicting the same class on
// every sample, and the per-exit histograms must be visible over
// GET /ei_metrics.
func TestEarlyExitSkewedWorkload(t *testing.T) {
	const (
		T, D, H, C = 32, 8, 192, 4
		threshold  = 0.9
	)
	node, err := New(Config{
		NodeID: "exit-demo", Device: "jetson-tx2",
		Serving: ServingConfig{MaxBatch: 1, Replicas: 1, QueueDepth: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	if err := node.LoadModel(skewModel(t, "skew-net", T, D, H, C), false); err != nil {
		t.Fatal(err)
	}
	if err := node.LoadModel(skewModel(t, "skew-net-exit", T, D, H, C), false); err != nil {
		t.Fatal(err)
	}
	capable, err := node.SetExitThreshold("skew-net-exit", threshold)
	if err != nil {
		t.Fatal(err)
	}
	if !capable {
		t.Fatal("recurrent plan does not support early exit")
	}

	// Two phases with a shifting difficulty mix: mostly easy traffic
	// first, then the hard fraction ramps up (the regime where adaptive
	// computation matters most).
	rng := rand.New(rand.NewSource(77))
	easy := skewSample(t, T, D, 0)
	hard := skewSample(t, T, D, T/2)
	var workload []*Tensor
	for i := 0; i < 40; i++ { // phase 1: 90% easy
		if rng.Float64() < 0.9 {
			workload = append(workload, easy)
		} else {
			workload = append(workload, hard)
		}
	}
	for i := 0; i < 80; i++ { // phase 2: 40% easy
		if rng.Float64() < 0.4 {
			workload = append(workload, easy)
		} else {
			workload = append(workload, hard)
		}
	}

	var exitSteps, fullSteps int
	for i, x := range workload {
		full, err := node.ServeInfer("skew-net", x)
		if err != nil {
			t.Fatal(err)
		}
		ee, err := node.ServeInfer("skew-net-exit", x)
		if err != nil {
			t.Fatal(err)
		}
		// Equal accuracy floor: identical weights must predict the same
		// class whether or not the sample retired early.
		if ee.Class != full.Class {
			t.Fatalf("sample %d: exit plan class %d, full plan class %d", i, ee.Class, full.Class)
		}
		if full.TotalSteps != T || ee.TotalSteps != T {
			t.Fatalf("sample %d: total steps %d/%d, want %d", i, full.TotalSteps, ee.TotalSteps, T)
		}
		if full.StepsUsed != T {
			t.Fatalf("sample %d: no-exit plan used %d steps, want %d", i, full.StepsUsed, T)
		}
		if ee.StepsUsed > full.StepsUsed {
			t.Fatalf("sample %d: exit plan used more steps (%d) than the full window", i, ee.StepsUsed)
		}
		exitSteps += ee.StepsUsed
		fullSteps += full.StepsUsed
	}
	meanExit := float64(exitSteps) / float64(len(workload))
	if meanExit >= float64(T)*0.75 {
		t.Errorf("mean steps used with early exit = %.1f of %d; expected a clear drop", meanExit, T)
	}

	// The serving histograms must show the latency win: the exit
	// pipeline's p95 sits at the hard samples' mid-window retirement,
	// well under the no-exit plan's full sweep.
	stats := map[string]ServingStats{}
	for _, s := range node.Serving.Stats() {
		stats[s.Model] = s
	}
	full, ee := stats["skew-net"], stats["skew-net-exit"]
	if !ee.EarlyExit || ee.ExitThreshold != threshold || ee.TotalSteps != T {
		t.Fatalf("exit pipeline stats = %+v, want early_exit at %.2f over %d steps", ee, threshold, T)
	}
	if ee.EarlyExit && full.EarlyExit {
		// Both plans are exit-capable; only one has the knob enabled.
		if full.ExitThreshold != 0 {
			t.Fatalf("no-exit pipeline reports threshold %v", full.ExitThreshold)
		}
	}
	if ee.MeanStepsUsed >= float64(T)*0.75 {
		t.Errorf("reported mean_steps_used = %.1f of %d", ee.MeanStepsUsed, T)
	}
	if len(ee.Exits) < 2 {
		t.Fatalf("exits block = %+v, want at least the easy and hard exit heads", ee.Exits)
	}
	if ee.Exits[0].Step != 1 {
		t.Errorf("first exit head at step %d, want 1 (easy samples)", ee.Exits[0].Step)
	}
	var counted uint64
	for _, ex := range ee.Exits {
		counted += ex.Count
		if ex.Step > T/2+2 {
			t.Errorf("exit head at step %d: hard samples should retire just past T/2", ex.Step)
		}
	}
	if counted != uint64(len(workload)) {
		t.Errorf("exit head counts sum to %d, want %d", counted, len(workload))
	}
	if full.P95MS <= 0 || ee.P95MS <= 0 {
		t.Fatalf("missing latency quantiles: full %.3f, exit %.3f", full.P95MS, ee.P95MS)
	}
	if ee.P95MS >= full.P95MS {
		t.Errorf("exit plan p95 %.3fms did not beat the no-exit plan's %.3fms", ee.P95MS, full.P95MS)
	}
	if full.Backend == "layer-walk" || ee.Backend == "layer-walk" {
		t.Fatalf("recurrent pipelines report backends %q/%q; layer-walk should be gone", full.Backend, ee.Backend)
	}

	// The same per-exit block is visible to operators over the REST API.
	ts := httptest.NewServer(node.Handler())
	defer ts.Close()
	m, err := Dial(ts.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range m.Serving {
		if s.Model != "skew-net-exit" {
			continue
		}
		found = true
		if !s.EarlyExit || len(s.Exits) < 2 || s.Exits[0].Count == 0 {
			t.Errorf("/ei_metrics exits block = %+v", s.Exits)
		}
	}
	if !found {
		t.Error("/ei_metrics has no entry for skew-net-exit")
	}
	t.Logf("mean steps %.1f/%d, p95 %.3fms vs %.3fms (no exit)", meanExit, T, ee.P95MS, full.P95MS)
}
