// Benchmarks regenerating every table and figure of the paper (E1–E8; see
// DESIGN.md §4 and EXPERIMENTS.md). Each BenchmarkEx corresponds to one
// artifact; cmd/experiments prints the full tables, while these benches
// measure the underlying operations and assert nothing (shape assertions
// live in internal/experiments tests).
//
// Run: go test -bench=. -benchmem .
package openei

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/apps"
	"openei/internal/collab"
	"openei/internal/compress"
	"openei/internal/dataset"
	"openei/internal/datastore"
	"openei/internal/experiments"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/selector"
	"openei/internal/sensors"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// env builds the shared fixture (dataset + trained zoo) once per process.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.EnvConfig{Samples: 700, Epochs: 8, Seed: 3})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchManager(b *testing.B, pkgName, devName string) *pkgmgr.Manager {
	b.Helper()
	pkg, err := alem.PackageByName(pkgName)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := hardware.ByName(devName)
	if err != nil {
		b.Fatal(err)
	}
	m := pkgmgr.New(pkg, dev)
	b.Cleanup(m.Close)
	return m
}

// BenchmarkE1DataDeluge regenerates Figure 1's bandwidth accounting.
func BenchmarkE1DataDeluge(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.E1DataDeluge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Collaboration measures edge–edge partitioned inference
// (Figure 2) at 1 and 4 peers.
func BenchmarkE2Collaboration(b *testing.B) {
	e := env(b)
	model := e.Models["vgg-m"]
	batch, err := e.ShapesTest.Slice(0, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, peers := range []int{1, 4} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var ms []*pkgmgr.Manager
			for i := 0; i < peers; i++ {
				m := benchManager(b, "eipkg", "rpi3")
				if err := m.Load(model, pkgmgr.LoadOptions{}); err != nil {
					b.Fatal(err)
				}
				ms = append(ms, m)
			}
			b.ResetTimer()
			var modelled time.Duration
			for i := 0; i < b.N; i++ {
				r, err := collab.PartitionedInfer(ms, model.Name, batch.X, netsim.LAN)
				if err != nil {
					b.Fatal(err)
				}
				modelled = r.ModelLatency
			}
			b.ReportMetric(float64(modelled.Microseconds()), "modelled-us")
		})
	}
}

// BenchmarkE3Dataflows measures the three Figure 3 dataflows for a single
// camera frame.
func BenchmarkE3Dataflows(b *testing.B) {
	e := env(b)
	model := e.Models["lenet"]
	one, err := e.ShapesTest.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	frameBytes := int64(4 * one.X.Len())

	cloudMgr := benchManager(b, "cloudpkg-m", "cloud-gpu")
	if err := cloudMgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	edgeMgr := benchManager(b, "eipkg", "rpi4")
	if err := edgeMgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}

	b.Run("DF1-cloud", func(b *testing.B) {
		var modelled time.Duration
		for i := 0; i < b.N; i++ {
			up, err := netsim.WAN.Transfer(frameBytes)
			if err != nil {
				b.Fatal(err)
			}
			r, err := cloudMgr.Infer(model.Name, one.X)
			if err != nil {
				b.Fatal(err)
			}
			down, err := netsim.WAN.Transfer(96)
			if err != nil {
				b.Fatal(err)
			}
			modelled = up + r.ModelLatency + down
		}
		b.ReportMetric(float64(modelled.Microseconds()), "modelled-us")
	})
	b.Run("DF2-edge", func(b *testing.B) {
		var modelled time.Duration
		for i := 0; i < b.N; i++ {
			r, err := edgeMgr.Infer(model.Name, one.X)
			if err != nil {
				b.Fatal(err)
			}
			modelled = r.ModelLatency
		}
		b.ReportMetric(float64(modelled.Microseconds()), "modelled-us")
	})
	b.Run("DF3-edge-retrained", func(b *testing.B) {
		// Retraining happens once; the steady-state cost is identical to
		// DF2 but with the personalized model.
		small, err := e.ShapesTrain.Slice(0, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := edgeMgr.TransferLearn(model.Name, small, 1, 1, rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := edgeMgr.Infer(model.Name, one.X); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4Pipeline measures the full Figure 4 request path.
func BenchmarkE4Pipeline(b *testing.B) {
	e := env(b)
	mgr := benchManager(b, "eipkg", "rpi4")
	model := e.Models["lenet"]
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	store := datastore.New(16)
	cam, err := sensors.NewCamera("camera1", 16, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sensors.Feed(store, cam, 8, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Second); err != nil {
		b.Fatal(err)
	}
	srv := libei.NewServer("bench", store, mgr)
	if err := srv.RegisterAll(apps.Safety(apps.SafetyConfig{
		Store: store, Manager: mgr, ModelName: model.Name, DefaultCamera: "camera1",
	})); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	client := libei.NewClient(ts.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var det apps.Detection
		if err := client.CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Selector measures Equation 1 solving over the full 3-D space
// (profiles are cached after the first iteration, so steady-state numbers
// reflect pure search cost — the quantity that matters for re-selection on
// changing requirements).
func BenchmarkE5Selector(b *testing.B) {
	e := env(b)
	cands := selector.Variants(e.Models, true)
	pkgs := alem.Packages()
	devs := hardware.EdgeCatalog()
	req := selector.Requirements{Objective: selector.MinLatency, MinAccuracy: 0.7}
	for _, strat := range []string{"exhaustive", "greedy", "qlearning"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				switch strat {
				case "exhaustive":
					_, err = selector.Exhaustive(cands, pkgs, devs, req, e.Profiler)
				case "greedy":
					_, err = selector.Greedy(cands, pkgs, devs, req, e.Profiler)
				case "qlearning":
					q := &selector.QLearner{Episodes: 500, Epsilon: 0.2, Rand: rand.New(rand.NewSource(int64(i)))}
					_, err = q.Select(cands, pkgs, devs, req, e.Profiler)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6RESTAPI measures libei endpoint throughput (Figure 6).
func BenchmarkE6RESTAPI(b *testing.B) {
	e := env(b)
	mgr := benchManager(b, "eipkg", "edge-server")
	if err := mgr.Load(e.Models["mlp"], pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	store := datastore.New(16)
	cam, err := sensors.NewCamera("camera1", 16, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sensors.Feed(store, cam, 16, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), time.Second); err != nil {
		b.Fatal(err)
	}
	srv := libei.NewServer("bench", store, mgr)
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)
	client := libei.NewClient(ts.URL)

	b.Run("ei_data-realtime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Realtime("camera1", 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ei_status", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Status(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ei_models", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Models(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Compression measures each Table I transform on the lenet
// model.
func BenchmarkE7Compression(b *testing.B) {
	e := env(b)
	base := e.Models["lenet"]
	b.Run("prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := base.Clone()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compress.Prune(m, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kmeans", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			m, err := base.Clone()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compress.KMeansShare(m, 16, 8, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := base.Clone()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compress.Binarize(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := base.Clone()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := compress.QuantizeInt8(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deep-compress", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		var ratio float64
		for i := 0; i < b.N; i++ {
			m, err := base.Clone()
			if err != nil {
				b.Fatal(err)
			}
			rep, err := compress.DeepCompress(m, 0.8, 16, rng)
			if err != nil {
				b.Fatal(err)
			}
			ratio = rep.Ratio()
		}
		b.ReportMetric(ratio, "ratio")
	})
	b.Run("lowrank", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, _, err := compress.LowRank(base, 0.4, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8Headline measures the actual in-process inference of the E8
// baseline (vgg-m) versus the co-optimized deployment (selector's choice),
// so the wall-clock ratio accompanies the modelled ALEM gains.
func BenchmarkE8Headline(b *testing.B) {
	e := env(b)
	one, err := e.ShapesTest.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	baseline := benchManager(b, "cloudpkg-m", "rpi3")
	if err := baseline.Load(e.Models["vgg-m"], pkgmgr.LoadOptions{}); err != nil {
		b.Fatal(err)
	}
	optimized := benchManager(b, "eipkg", "rpi3")
	if err := optimized.Load(e.Models["lenet"], pkgmgr.LoadOptions{Quantize: true}); err != nil {
		b.Fatal(err)
	}
	b.Run("baseline-vgg-cloudpkg", func(b *testing.B) {
		var modelled time.Duration
		for i := 0; i < b.N; i++ {
			r, err := baseline.Infer("vgg-m", one.X)
			if err != nil {
				b.Fatal(err)
			}
			modelled = r.ModelLatency
		}
		b.ReportMetric(float64(modelled.Microseconds()), "modelled-us")
	})
	b.Run("optimized-lenet-int8-eipkg", func(b *testing.B) {
		var modelled time.Duration
		for i := 0; i < b.N; i++ {
			r, err := optimized.Infer("lenet", one.X)
			if err != nil {
				b.Fatal(err)
			}
			modelled = r.ModelLatency
		}
		b.ReportMetric(float64(modelled.Microseconds()), "modelled-us")
	})
}

// BenchmarkInferenceByModel measures raw in-process forward latency of
// every zoo family at batch 1 — the ablation data behind the model axis of
// Figure 5.
func BenchmarkInferenceByModel(b *testing.B) {
	e := env(b)
	one, err := e.ShapesTest.Slice(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"mlp", "lenet", "alexnet-m", "vgg-m", "squeezenet-m", "mobilenet-m", "bonsai-m", "protonn-m"} {
		m := e.Models[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Forward(one.X, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingStep measures one minibatch SGD step on the lenet
// family — the local-training cost behind Dataflow 3.
func BenchmarkTrainingStep(b *testing.B) {
	e := env(b)
	m, err := e.Models["lenet"].Clone()
	if err != nil {
		b.Fatal(err)
	}
	batch, err := e.ShapesTrain.Slice(0, 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nn.Train(m, batch, nn.TrainConfig{Epochs: 1, BatchSize: 32, LR: 0.01, Rand: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataset measures procedural dataset generation throughput.
func BenchmarkDataset(b *testing.B) {
	cfg := dataset.ShapesConfig{Samples: 100, Size: 16, Classes: 6, Noise: 0.3, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, _, err := dataset.Shapes(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
