// Quickstart reproduces the paper's §III.E walk-through end to end on the
// public API: deploy OpenEI on a (simulated) Raspberry Pi, let the model
// selector pick a detection model under default accuracy-oriented
// requirements, wire a camera, and drive the node purely through the
// Figure 6 REST URLs.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"time"

	"openei"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Deploy OpenEI on the Pi ("deploy and play").
	node, err := openei.New(openei.Config{NodeID: "rpi-demo", Device: "rpi4"})
	if err != nil {
		return err
	}
	defer node.Close()
	fmt.Printf("deployed OpenEI node %q on %s with package %s\n",
		node.ID, node.Device().Name, node.Package().Name)

	// 2. Train two candidate models (in production these come from the
	//    cloud registry; see examples/smart_home for that flow).
	const (
		size    = 16
		classes = 4
	)
	train, test, err := dataset.Shapes(dataset.ShapesConfig{
		Samples: 800, Size: size, Classes: classes, Noise: 0.25, Seed: 7,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	models := map[string]*openei.Model{}
	for _, name := range []string{"lenet", "mlp"} {
		m, err := zoo.Build(name, size, classes, rng)
		if err != nil {
			return err
		}
		if _, _, err := nn.Train(m, train, nn.TrainConfig{
			Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng,
		}); err != nil {
			return err
		}
		models[name] = m
	}

	// 3. The model selector solves Equation 1 for this device (default:
	//    accuracy-oriented with a 100 ms budget).
	choice, err := node.SelectModel(models, test, openei.DefaultRequirements())
	if err != nil {
		return err
	}
	fmt.Printf("selector picked: %s\n", choice)
	if err := node.DeploySelected(models, choice); err != nil {
		return err
	}

	// 4. Wire a camera and enable the public-safety scenario.
	cam, err := sensors.NewCamera("camera1", size, classes, 42)
	if err != nil {
		return err
	}
	if _, err := sensors.Feed(node.Store, cam, 10, time.Now().Add(-10*time.Second), time.Second); err != nil {
		return err
	}
	if err := node.EnableSafety(choice.ModelName, "camera1", dataset.ShapeClassNames[:classes], 3); err != nil {
		return err
	}

	// 5. Serve libei and talk to the node over HTTP only.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: node.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := openei.Dial(base)
	fmt.Printf("libei serving at %s\n\n", base)

	// GET /ei_data/realtime/camera1 — the paper's first walk-through step.
	frames, err := client.Realtime("camera1", 1)
	if err != nil {
		return err
	}
	fmt.Printf("GET /ei_data/realtime/camera1 → %d frame(s), %d pixels, at %s\n",
		len(frames), len(frames[0].Payload), frames[0].At.Format(time.RFC3339))

	// GET /ei_algorithms/safety/detection — the second step.
	var det struct {
		Label      string  `json:"label"`
		Confidence float64 `json:"confidence"`
	}
	if err := client.CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det); err != nil {
		return err
	}
	fmt.Printf("GET /ei_algorithms/safety/detection?video=camera1 → %q (confidence %.2f)\n", det.Label, det.Confidence)

	// Introspection: what the node is running and what it costs.
	status, err := client.Status()
	if err != nil {
		return err
	}
	fmt.Printf("GET /ei_status → node=%s device=%s algorithms=%v\n", status.NodeID, status.Device, status.Algorithms)
	ms, err := client.Models()
	if err != nil {
		return err
	}
	for _, m := range ms {
		fmt.Printf("GET /ei_models → %s: latency=%.2fms energy=%.4fJ memory=%.1fMB\n",
			m.Name, m.LatencyMS, m.EnergyJ, m.MemoryMB)
	}
	return nil
}
