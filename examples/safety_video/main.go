// Safety_video runs the paper's Video Analytics in Public Safety scenario
// (§V.A): a camera streams frames into the edge datastore, the node runs
// firearm detection at real-time priority on every frame, raises alerts,
// and reports detection quality plus the bandwidth saved by not uploading
// the video (Dataflow 2 vs Dataflow 1).
//
// Run: go run ./examples/safety_video
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"openei"
	"openei/internal/dataset"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		size         = 16
		classes      = 4
		firearmClass = 3 // the "cross" glyph stands in for the threat class
		frames       = 120
	)

	// Edge node on a body-camera-class device.
	node, err := openei.New(openei.Config{NodeID: "bodycam-7", Device: "phone"})
	if err != nil {
		return err
	}
	defer node.Close()

	// Train the detector (cloud-side in production).
	train, test, err := dataset.Shapes(dataset.ShapesConfig{
		Samples: 900, Size: size, Classes: classes, Noise: 0.25, Seed: 11,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	detector, err := zoo.Build("lenet", size, classes, rng)
	if err != nil {
		return err
	}
	if _, _, err := nn.Train(detector, train, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng,
	}); err != nil {
		return err
	}
	acc, err := nn.Accuracy(detector, test.X, test.Y)
	if err != nil {
		return err
	}
	fmt.Printf("detector ready: test accuracy %.3f\n", acc)
	// Quantize at load: the phone package supports int8 kernels.
	if err := node.LoadModel(detector, true); err != nil {
		return err
	}
	if err := node.EnableSafety(detector.Name, "camera1", dataset.ShapeClassNames[:classes], firearmClass); err != nil {
		return err
	}

	// Stream frames and run firearm detection on each.
	cam, err := sensors.NewCamera("camera1", size, classes, 33)
	if err != nil {
		return err
	}
	if err := node.Store.Register(cam.Info()); err != nil {
		return err
	}
	var (
		alerts, truePos, falsePos, falseNeg, correct int
		start                                        = time.Now().Add(-frames * time.Second)
	)
	for i := 0; i < frames; i++ {
		if err := node.Store.Append("camera1", cam.Next(start.Add(time.Duration(i)*time.Second))); err != nil {
			return err
		}
		truth := cam.LastLabel()
		frame, err := node.Store.Latest("camera1")
		if err != nil {
			return err
		}
		x, err := openei.NewTensor(frame.Payload, 1, 1, size, size)
		if err != nil {
			return err
		}
		classesOut, confs, err := node.Infer(detector.Name, x)
		if err != nil {
			return err
		}
		pred := classesOut[0]
		if pred == truth {
			correct++
		}
		alert := pred == firearmClass
		if alert {
			alerts++
			if truth == firearmClass {
				truePos++
				fmt.Printf("frame %3d: ALERT firearm detected (confidence %.2f) — confirmed\n", i, confs[0])
			} else {
				falsePos++
				fmt.Printf("frame %3d: ALERT firearm detected (confidence %.2f) — FALSE ALARM (was %s)\n",
					i, confs[0], dataset.ShapeClassNames[truth])
			}
		} else if truth == firearmClass {
			falseNeg++
		}
	}

	fmt.Printf("\n%d frames: accuracy %.3f, %d alerts (%d true, %d false), %d missed\n",
		frames, float64(correct)/frames, alerts, truePos, falsePos, falseNeg)

	// Bandwidth story (Figure 1 / Dataflow 2): the node uploaded alerts,
	// not video.
	rawBytes := int64(frames * 4 * size * size)
	alertBytes := int64(alerts * 96)
	dfRaw, err := netsim.WAN.Transfer(rawBytes)
	if err != nil {
		return err
	}
	dfAlert, err := netsim.WAN.Transfer(alertBytes)
	if err != nil {
		return err
	}
	fmt.Printf("uplink if streaming video: %d bytes (%v on the WAN)\n", rawBytes, dfRaw.Round(time.Millisecond))
	fmt.Printf("uplink with edge analytics: %d bytes (%v) — %.0fx less\n",
		alertBytes, dfAlert.Round(time.Millisecond), float64(rawBytes)/float64(max64(alertBytes, 1)))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
