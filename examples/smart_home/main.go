// Smart_home runs the paper's smart-home scenario (§V.C) across the full
// cloud–edge loop of Figure 3:
//
//	Dataflow 2: the cloud trains the power-monitor model on a general
//	            corpus and the home gateway downloads it over the WAN.
//	Dataflow 3: the gateway retrains the head on this home's own meter
//	            data (which never leaves the house — the privacy argument)
//	            and the personalized model wins on local data; the
//	            retrained weights are uploaded back for aggregation.
//
// It closes with the §II.C edge–edge coordination story: the phone's
// on-device activity model predicts the user approaching home and the
// thermostat pre-heats, coordinated over the pub/sub bus with no cloud
// in the loop.
//
// Run: go run ./examples/smart_home
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"openei"
	"openei/internal/cloud"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/sensors"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Cloud side: train the general power-monitor model and publish it.
	registry := cloud.NewRegistry()
	svc := &cloud.TrainService{Registry: registry}
	general, _, err := dataset.Power(dataset.PowerConfig{Samples: 800, Window: 32, Noise: 0.08, Seed: 20})
	if err != nil {
		return err
	}
	model := nn.MustModel("power-monitor", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: len(dataset.PowerClassNames)},
	})
	model.InitParams(rand.New(rand.NewSource(3)))
	version, trainAcc, err := svc.TrainAndPublish(model, general, 12, 21)
	if err != nil {
		return err
	}
	fmt.Printf("cloud: published power-monitor v%d (train accuracy %.3f)\n", version, trainAcc)

	// Home gateway: a Raspberry Pi 3 running OpenEI.
	node, err := openei.New(openei.Config{NodeID: "home-gw", Device: "rpi3"})
	if err != nil {
		return err
	}
	defer node.Close()

	// Dataflow 2: download the model over the WAN.
	meterNet := netsim.NewMeter()
	rep, err := collab.Deploy(registry, node.Manager, "power-monitor", netsim.WAN, meterNet, pkgmgr.LoadOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("edge: downloaded %s v%d — %d bytes in %v over the WAN\n",
		rep.Model, rep.Version, rep.BytesMoved, rep.TransferTime.Round(time.Millisecond))

	// This home's appliances draw differently (a biased meter and noisier
	// wiring): a shifted distribution, never uploaded anywhere.
	homeTrain, homeTest, err := dataset.Power(dataset.PowerConfig{Samples: 500, Window: 32, Noise: 0.15, Seed: 99, Bias: 0.3})
	if err != nil {
		return err
	}
	before, err := accuracyOn(node, "power-monitor", homeTest)
	if err != nil {
		return err
	}
	fmt.Printf("edge: general model on this home's data: accuracy %.3f\n", before)

	// Dataflow 3: retrain the head locally.
	if err := node.TransferLearn("power-monitor", homeTrain, 6, 5); err != nil {
		return err
	}
	after, err := accuracyOn(node, "power-monitor", homeTest)
	if err != nil {
		return err
	}
	fmt.Printf("edge: personalized model after local transfer learning: accuracy %.3f (Δ%+.3f)\n", after, after-before)

	// Upload the retrained weights for cloud aggregation.
	v, bytes, err := collab.UploadRetrained(node.Manager, registry, "power-monitor", "power-monitor-home-gw", netsim.WAN, meterNet)
	if err != nil {
		return err
	}
	fmt.Printf("edge: uploaded personalized weights as v%d (%d bytes); total WAN traffic %d bytes\n",
		v, bytes, meterNet.Bytes("wan"))

	// Live monitoring through the smart-home algorithm.
	if err := node.EnableHome("power-monitor", "meter1", dataset.PowerClassNames); err != nil {
		return err
	}
	pm, err := sensors.NewPowerMeter("meter1", 32, 77)
	if err != nil {
		return err
	}
	if _, err := sensors.Feed(node.Store, pm, 5, time.Now().Add(-5*time.Minute), time.Minute); err != nil {
		return err
	}
	sample, err := node.Store.Latest("meter1")
	if err != nil {
		return err
	}
	x, err := openei.NewTensor(sample.Payload, 1, len(sample.Payload))
	if err != nil {
		return err
	}
	classes, confs, err := node.Infer("power-monitor", x)
	if err != nil {
		return err
	}
	fmt.Printf("edge: /ei_algorithms/home/power_monitor → appliance %q (confidence %.2f)\n",
		dataset.PowerClassNames[classes[0]], confs[0])

	// Edge–edge coordination (§II.C): "a smartphone predicts when a user
	// is approaching home … and the smart thermostat will be triggered to
	// set the suitable temperature". The phone classifies its IMU stream;
	// a run of "walk" becomes a presence prediction on the bus, and
	// the thermostat node reacts — no cloud in the loop.
	return coordinateThermostat(node)
}

// coordinateThermostat runs the §II.C phone→thermostat hand-off over the
// running environment's pub/sub bus.
func coordinateThermostat(gateway *openei.Node) error {
	phone, err := openei.New(openei.Config{NodeID: "phone", Device: "phone"})
	if err != nil {
		return err
	}
	defer phone.Close()

	// The phone's activity model (trained on the wearable corpus).
	actTrain, _, err := dataset.Activity(dataset.ActivityConfig{Samples: 600, Window: 16, Noise: 0.15, Seed: 41})
	if err != nil {
		return err
	}
	act := nn.MustModel("activity", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: len(dataset.ActivityClassNames)},
	})
	act.InitParams(rand.New(rand.NewSource(42)))
	if _, _, err := nn.Train(act, actTrain, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rand.New(rand.NewSource(43))}); err != nil {
		return err
	}
	if err := phone.LoadModel(act, false); err != nil {
		return err
	}

	bus := openei.NewBus()
	defer bus.Close()
	thermostat, err := bus.Subscribe("home/presence", 4)
	if err != nil {
		return err
	}

	// The phone classifies a walking IMU stream; two consecutive
	// "walk" windows predict the user is approaching home.
	imu, err := sensors.NewIMU("phone-imu", 16, 0, 44)
	if err != nil {
		return err
	}
	walkingStreak := 0
	at := time.Now()
	for walkingStreak < 2 {
		s := imu.Next(at)
		at = at.Add(2 * time.Second)
		if dataset.ActivityClassNames[imu.LastLabel()] != "walk" {
			walkingStreak = 0
			continue // the generator cycles activities; wait for a walk
		}
		x, err := openei.NewTensor(s.Payload, 1, len(s.Payload))
		if err != nil {
			return err
		}
		cls, _, err := phone.Infer("activity", x)
		if err != nil {
			return err
		}
		if dataset.ActivityClassNames[cls[0]] == "walk" {
			walkingStreak++
		} else {
			walkingStreak = 0
		}
	}
	if err := bus.Publish("home/presence", "user approaching"); err != nil {
		return err
	}
	fmt.Println("phone: two walking windows classified → published \"user approaching\" on home/presence")

	msg := <-thermostat.C()
	fmt.Printf("thermostat (%s gateway): received %q → pre-heating to comfort temperature\n",
		gateway.ID, msg.Payload)
	return nil
}

func accuracyOn(node *openei.Node, model string, d openei.Dataset) (float64, error) {
	classes, _, err := node.Infer(model, d.X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, c := range classes {
		if c == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(classes)), nil
}
