// Vehicles runs the paper's connected-and-autonomous-vehicles scenario
// (§V.B) with edge–edge collaboration (Figure 2): two vehicles on the same
// road segment split a perception batch proportionally to their computing
// power, and the on-board tracker follows a moving object across the
// camera window.
//
// Run: go run ./examples/vehicles
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"time"

	"openei"
	"openei/internal/apps"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/datastore"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/zoo"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		size    = 16
		classes = 4
	)
	// Two CAVs with identical Pi-4-class drive units: peers similar enough
	// that splitting the work actually pays (a 50× faster peer would just
	// take the whole batch, which Partition handles but is a dull demo).
	lead, err := openei.New(openei.Config{NodeID: "cav-lead", Device: "rpi4"})
	if err != nil {
		return err
	}
	defer lead.Close()
	follow, err := openei.New(openei.Config{NodeID: "cav-follow", Device: "rpi4"})
	if err != nil {
		return err
	}
	defer follow.Close()

	// Shared perception model (vgg-m: the heavy, accurate choice — this is
	// the compute-intensive task worth partitioning).
	train, test, err := dataset.Shapes(dataset.ShapesConfig{
		Samples: 900, Size: size, Classes: classes, Noise: 0.25, Seed: 13,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(4))
	percep, err := zoo.Build("vgg-m", size, classes, rng)
	if err != nil {
		return err
	}
	if _, _, err := nn.Train(percep, train, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng,
	}); err != nil {
		return err
	}
	for _, n := range []*openei.Node{lead, follow} {
		if err := n.LoadModel(percep, false); err != nil {
			return err
		}
	}

	// Edge–edge partitioned perception over a 48-frame batch.
	batch, err := test.Slice(0, 48)
	if err != nil {
		return err
	}
	soloRes, err := lead.Manager.Infer(percep.Name, batch.X)
	if err != nil {
		return err
	}
	peers := []*openei.Manager{lead.Manager, follow.Manager}
	shares, err := collab.Partition(48, peers)
	if err != nil {
		return err
	}
	partRes, err := collab.PartitionedInfer(peers, percep.Name, batch.X, netsim.LAN)
	if err != nil {
		return err
	}
	fmt.Printf("perception batch of 48 frames\n")
	fmt.Printf("  work split by computing power: lead=%d follow=%d frames\n", shares[0], shares[1])
	fmt.Printf("  lead alone:   modelled %v\n", soloRes.ModelLatency.Round(time.Microsecond))
	fmt.Printf("  partitioned:  modelled %v (%.2fx, %d LAN bytes)\n",
		partRes.ModelLatency.Round(time.Microsecond),
		float64(soloRes.ModelLatency)/float64(partRes.ModelLatency), partRes.BytesMoved)
	agree := 0
	for i := range soloRes.Classes {
		if soloRes.Classes[i] == partRes.Classes[i] {
			agree++
		}
	}
	fmt.Printf("  predictions identical on %d/48 frames\n\n", agree)

	// On-board tracking (/ei_algorithms/vehicles/tracking) on a synthetic
	// object moving diagonally through the lead vehicle's camera.
	if err := lead.Store.Register(datastore.SensorInfo{ID: "camera1", Kind: "camera", Dim: size * size}); err != nil {
		return err
	}
	start := time.Now().Add(-10 * time.Second)
	for i := 0; i < 8; i++ {
		frame := make([]float32, size*size)
		x, y := 3+i, 4+i/2
		frame[y*size+x] = 1
		frame[y*size+x+1] = 0.8
		if err := lead.Store.Append("camera1", datastore.Sample{At: start.Add(time.Duration(i) * time.Second), Payload: frame}); err != nil {
			return err
		}
	}
	if err := lead.EnableVehicles("camera1", 8); err != nil {
		return err
	}
	ts := httptest.NewServer(lead.Handler())
	defer ts.Close()
	var track apps.Track
	if err := openei.Dial(ts.URL).CallAlgorithm("vehicles", "tracking", url.Values{"video": {"camera1"}}, &track); err != nil {
		return err
	}
	fmt.Printf("GET /ei_algorithms/vehicles/tracking?video=camera1\n")
	fmt.Printf("  tracked %d frames; velocity ≈ (%.2f, %.2f) px/frame\n",
		track.Frames, track.Velocity[0], track.Velocity[1])
	fmt.Printf("  path: first %v → last %v\n",
		track.Positions[0], track.Positions[len(track.Positions)-1])
	return nil
}
