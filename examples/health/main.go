// Health runs the paper's smart-and-connected-health scenario (§V.D) with
// DDNN-style cloud–edge split inference [17]: a kilobyte-scale model on
// the wearable answers confidently-easy windows locally (low latency,
// private), and only uncertain windows are offloaded to the large cloud
// model. The example sweeps the confidence threshold to show the
// accuracy / offload / latency trade-off, then raises a fall alert through
// the REST API.
//
// Run: go run ./examples/health
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"time"

	"openei"
	"openei/internal/apps"
	"openei/internal/collab"
	"openei/internal/dataset"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/sensors"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	train, test, err := dataset.Activity(dataset.ActivityConfig{Samples: 900, Window: 16, Noise: 0.25, Seed: 30})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))

	// Edge: the wearable (phone-class) runs a tiny projection model.
	wearable, err := openei.New(openei.Config{NodeID: "wearable-1", Device: "phone"})
	if err != nil {
		return err
	}
	defer wearable.Close()
	small := nn.MustModel("act-tiny", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 8},
		{Type: "relu"},
		{Type: "dense", In: 8, Out: len(dataset.ActivityClassNames)},
	})
	small.InitParams(rng)
	if _, _, err := nn.Train(small, train, nn.TrainConfig{Epochs: 3, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		return err
	}

	// Cloud: a large accurate model.
	cloudNode, err := openei.New(openei.Config{NodeID: "cloud", Device: "cloud-gpu", Package: "cloudpkg-m"})
	if err != nil {
		return err
	}
	defer cloudNode.Close()
	big := nn.MustModel("act-big", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 96},
		{Type: "relu"},
		{Type: "dense", In: 96, Out: 48},
		{Type: "relu"},
		{Type: "dense", In: 48, Out: len(dataset.ActivityClassNames)},
	})
	big.InitParams(rng)
	if _, _, err := nn.Train(big, train, nn.TrainConfig{Epochs: 15, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		return err
	}
	if err := wearable.LoadModel(small, false); err != nil {
		return err
	}
	if err := cloudNode.LoadModel(big, false); err != nil {
		return err
	}

	// DDNN threshold sweep.
	fmt.Println("DDNN split inference (edge act-tiny → cloud act-big over the WAN)")
	fmt.Printf("%-10s %-10s %-10s %-12s\n", "threshold", "accuracy", "offloaded", "latency")
	for _, th := range []float64{0, 0.5, 0.7, 0.9, 0.99} {
		d := &collab.DDNN{
			Edge: wearable.Manager, EdgeModel: "act-tiny",
			Cloud: cloudNode.Manager, CloudName: "act-big",
			Link: netsim.WAN, Threshold: th,
		}
		res, err := d.Infer(test.X)
		if err != nil {
			return err
		}
		correct := 0
		for i, c := range res.Classes {
			if c == test.Y[i] {
				correct++
			}
		}
		fmt.Printf("%-10.2f %-10.3f %-10s %-12v\n",
			th, float64(correct)/float64(len(res.Classes)),
			fmt.Sprintf("%d/%d", res.Offloaded, test.Samples()),
			res.ModelLatency.Round(time.Microsecond))
	}

	// Fall detection through the REST API (pre-hospital EMS, §V.D).
	imu, err := sensors.NewIMU("imu1", 16, 0, 31)
	if err != nil {
		return err
	}
	if err := wearable.Store.Register(imu.Info()); err != nil {
		return err
	}
	// Feed until a fall window lands last.
	at := time.Now().Add(-time.Hour)
	for i := 0; ; i++ {
		if err := wearable.Store.Append("imu1", imu.Next(at.Add(time.Duration(i)*time.Second))); err != nil {
			return err
		}
		if imu.LastLabel() == 3 || i > 500 {
			break
		}
	}
	if err := wearable.EnableHealth("act-tiny", "imu1", dataset.ActivityClassNames, 3); err != nil {
		return err
	}
	ts := httptest.NewServer(wearable.Handler())
	defer ts.Close()
	var reading apps.ActivityReading
	if err := openei.Dial(ts.URL).CallAlgorithm("health", "fall_detection", url.Values{"sensor": {"imu1"}}, &reading); err != nil {
		return err
	}
	fmt.Printf("\nGET /ei_algorithms/health/fall_detection → activity=%q confidence=%.2f alert=%v\n",
		reading.Activity, reading.Confidence, reading.Alert)
	if reading.Alert {
		fmt.Println("EMS channel: fall alert raised from the wearable — no cloud round-trip required")
	}
	return nil
}
