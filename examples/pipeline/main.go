// Pipeline demonstrates the §IV.C running environment end to end: camera
// frames flow over a ROS-style pub/sub bus into a TinyOS-style
// event-driven scheduler, inference runs on an edge whose safety app
// holds an OpenVDAP-style VCU allocation, repeated frames are served
// from a MUVR-style result cache (§V.C), frames are privacy-masked
// (§V.A) before leaving the edge, and when the edge stops heartbeating
// its detection task migrates to the surviving peer — the paper's §IV.C
// high-availability open problem.
//
// Run: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"time"

	"openei"
	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

const (
	frameSize = 16
	classes   = 4
	camID     = "camera1"
	topic     = "camera/gate"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Train one detection model in the "cloud" and deploy two edges.
	fmt.Println("== 1. deploy two OpenEI edges with a shared detection model")
	model, err := trainDetector()
	if err != nil {
		return err
	}
	gate, err := newEdge("gate-pi", "rpi3", model)
	if err != nil {
		return err
	}
	defer gate.Close()
	yard, err := newEdge("yard-pi", "rpi4", model)
	if err != nil {
		return err
	}
	defer yard.Close()
	fmt.Printf("  gate-pi (%s) and yard-pi (%s) are up\n",
		gate.Device().Name, yard.Device().Name)

	// 2. OpenVDAP-style VCU: the safety app gets 60 % of the gate Pi,
	// leaving headroom for the vehicle tracker; oversubscription is
	// refused.
	fmt.Println("\n== 2. VCU resource allocation (§IV.C, OpenVDAP)")
	vcu := openei.NewVCU(gate.Device())
	alloc, err := vcu.Allocate(openei.VCURequest{App: "safety", ComputeShare: 0.6, MemBytes: 8 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("  safety app holds %.0f%% of %s → %.2g FLOP/s\n",
		alloc.Share*100, gate.Device().Name, alloc.FLOPS())
	if _, err := vcu.Allocate(openei.VCURequest{App: "greedy", ComputeShare: 0.7, MemBytes: 8 << 20}); err != nil {
		fmt.Printf("  oversubscription refused: %v\n", err)
	}
	gate.AttachVCU(vcu) // expose allocations at GET /ei_resources

	// 3. Camera → bus → scheduler → inference, detections on the urgent
	// lane, repeated frames served by the result cache.
	fmt.Println("\n== 3. camera → bus → scheduler → inference (§IV.C, ROS + TinyOS)")
	cam, err := sensors.NewCamera(camID, frameSize, classes, 7)
	if err != nil {
		return err
	}
	bus := openei.NewBus()
	defer bus.Close()
	sub, err := bus.Subscribe(topic, 32)
	if err != nil {
		return err
	}
	sched := openei.NewScheduler(64)
	defer sched.Close()
	cache := openei.NewResultCache(32, time.Minute)

	const frames = 12
	truths := make([]int, 0, frames)
	at := time.Now()
	var lastFrame []float32
	for i := 0; i < frames; i++ {
		sample := cam.Next(at)
		truths = append(truths, cam.LastLabel())
		lastFrame = sample.Payload
		if err := bus.Publish(topic, sample.Payload); err != nil {
			return err
		}
		at = at.Add(33 * time.Millisecond)
	}

	results := make(chan detection, frames)
	for i := 0; i < frames; i++ {
		msg := <-sub.C()
		frame := msg.Payload.([]float32)
		idx := i
		err := sched.Post(openei.SchedulerTask{
			Name:     fmt.Sprintf("detect-%02d", idx),
			Priority: openei.TaskUrgent, // VAPS is the urgent lane
			Run: func() {
				cls, conf, hit, err := infer(gate, cache, model.Name, frame)
				results <- detection{idx: idx, class: cls, conf: conf, cached: hit, err: err}
			},
		})
		if err != nil {
			return err
		}
	}
	correct := 0
	for i := 0; i < frames; i++ {
		d := <-results
		if d.err != nil {
			return d.err
		}
		if d.class == truths[d.idx] {
			correct++
		}
	}
	st := sched.Stats()
	fmt.Printf("  %d frames inferred on gate-pi, %d/%d correct (urgent-lane tasks: %d, bus drops: %d)\n",
		frames, correct, frames, st.ExecutedUrgent, bus.Stats().Dropped)

	// 4. MUVR-style cache: a second user polling the same scene is served
	// without re-running the model.
	fmt.Println("\n== 4. result cache on a repeated frame (§V.C, MUVR)")
	if _, _, _, err := infer(gate, cache, model.Name, lastFrame); err != nil {
		return err
	}
	t0 := time.Now()
	_, _, hit, err := infer(gate, cache, model.Name, lastFrame)
	if err != nil {
		return err
	}
	cs := cache.Stats()
	fmt.Printf("  second identical request: cache hit=%v in %s (hits=%d misses=%d)\n",
		hit, time.Since(t0).Round(time.Microsecond), cs.Hits, cs.Misses)

	// 5. Privacy masking before upload (§V.A), through the Figure 6 REST
	// API.
	fmt.Println("\n== 5. privacy masking before upload (§V.A)")
	if _, err := sensors.Feed(gate.Store, cam, 1, at, time.Second); err != nil {
		return err
	}
	if err := gate.EnableMask(camID); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gate.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	var masked struct {
		Box          [4]int `json:"box"`
		MaskedPixels int    `json:"masked_pixels"`
		TotalPixels  int    `json:"total_pixels"`
	}
	client := openei.Dial("http://" + ln.Addr().String())
	if err := client.CallAlgorithm("safety", "mask", url.Values{"video": {camID}}, &masked); err != nil {
		return err
	}
	fmt.Printf("  GET /ei_algorithms/safety/mask → box %v, %d/%d pixels blanked before upload\n",
		masked.Box, masked.MaskedPixels, masked.TotalPixels)
	rs, err := client.Resources()
	if err != nil {
		return err
	}
	fmt.Printf("  GET /ei_resources → %s: compute %.0f%% used, %.0f MB of %.0f MB allocated to %q\n",
		rs.Device, rs.ComputeUsedPct, rs.MemoryUsedMB, rs.MemoryTotalMB, rs.Allocations[0].App)

	// 6. Failure and migration: gate-pi goes silent; the detection task
	// moves to yard-pi and keeps answering.
	fmt.Println("\n== 6. heartbeat failure detection + computation migration (§IV.C)")
	mon := openei.NewMonitor(2 * time.Second)
	mig := openei.NewMigrator(map[string]float64{
		"gate-pi": gate.Device().FLOPS,
		"yard-pi": yard.Device().FLOPS,
	})
	now := time.Now()
	mon.Heartbeat("gate-pi", now)
	mon.Heartbeat("yard-pi", now)
	// Four scenario tasks: the balancer stacks the fast yard-pi (3× the
	// FLOPS) until its expected runtime exceeds gate-pi's, so gate-pi
	// receives the fourth.
	for _, task := range []string{"safety/detection", "vehicles/tracking", "home/power_monitor", "health/activity"} {
		if _, err := mig.Assign(task, float64(model.FLOPs(1)), mon.Live(now)); err != nil {
			return err
		}
	}
	for _, p := range mig.Placements() {
		fmt.Printf("  task %q placed on %s\n", p.Task, p.Node)
	}

	// gate-pi crashes: only yard-pi keeps beating.
	later := now.Add(5 * time.Second)
	mon.Heartbeat("yard-pi", later)
	live := mon.Live(later)
	fmt.Printf("  after 5s of silence, live set = %v\n", live)
	moved, err := mig.MigrateOff(live)
	if err != nil {
		return err
	}
	for _, p := range moved {
		fmt.Printf("  migrated %q → %s\n", p.Task, p.Node)
	}
	cls, _, _, err := infer(yard, openei.NewResultCache(4, 0), model.Name, lastFrame)
	if err != nil {
		return err
	}
	fmt.Printf("  yard-pi serves the next detection: class %d (truth %d)\n", cls, truths[frames-1])
	return nil
}

type detection struct {
	idx    int
	class  int
	conf   float64
	cached bool
	err    error
}

// infer runs one flattened frame through the node's cached inference.
func infer(node *openei.Node, cache *openei.ResultCache, modelName string, frame []float32) (int, float64, bool, error) {
	x, err := openei.NewTensor(frame, 1, 1, frameSize, frameSize)
	if err != nil {
		return 0, 0, false, err
	}
	cls, conf, hit, err := node.CachedInfer(cache, modelName, x)
	if err != nil {
		return 0, 0, false, err
	}
	return cls[0], conf[0], hit, nil
}

func trainDetector() (*openei.Model, error) {
	cfg := dataset.ShapesConfig{Samples: 700, Size: frameSize, Classes: classes, Noise: 0.2, Seed: 5}
	train, _, err := dataset.Shapes(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	model, err := zoo.Build("lenet", frameSize, classes, rng)
	if err != nil {
		return nil, err
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		return nil, err
	}
	return model, nil
}

func newEdge(id, device string, model *openei.Model) (*openei.Node, error) {
	node, err := openei.New(openei.Config{NodeID: id, Device: device})
	if err != nil {
		return nil, err
	}
	if err := node.LoadModel(model, false); err != nil {
		node.Close()
		return nil, err
	}
	return node, nil
}
