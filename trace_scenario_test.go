package openei_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/gateway"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/obs"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// traceFleet is the smallest real deployment tracing spans: one node
// running the full pkgmgr → serving → libei stack with a rate-1 tracer,
// fronted by a gateway that also traces at rate 1.
type traceFleet struct {
	node  *httptest.Server
	front *httptest.Server
}

func newTraceFleet(t *testing.T) *traceFleet {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	ident, err := nn.NewModel("ident", []int{4}, []nn.LayerSpec{{Type: "flatten"}})
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	if err := mgr.Load(ident, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	eng := serving.NewEngine(mgr, serving.Config{Replicas: 1, MaxBatch: 4})
	t.Cleanup(eng.Close)
	lib := libei.NewServer("edge-1", nil, mgr)
	lib.SetEngine(eng)
	lib.SetTracer(obs.NewTracer(obs.Config{SampleRate: 1, Source: "edge-1"}))
	node := httptest.NewServer(lib)
	t.Cleanup(node.Close)

	gw, err := gateway.New(gateway.Config{
		Nodes:           []string{node.URL},
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	t.Cleanup(gw.Close)
	front := httptest.NewServer(gw)
	t.Cleanup(front.Close)
	return &traceFleet{node: node, front: front}
}

func httpGet(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestScenarioEndToEndTrace is the observability acceptance scenario:
// one traced infer through gateway → node, then the stitched /gw_trace
// document must decompose the request into gateway, pick, attempt, and
// the node's queue-wait / batch-wait / exec spans, with the stage
// durations consistent with the measured wall latency.
func TestScenarioEndToEndTrace(t *testing.T) {
	f := newTraceFleet(t)

	start := time.Now()
	resp, body := httpGet(t, f.front.URL+"/ei_algorithms/serving/infer?model=ident&input=0,0,1,0")
	wallMS := float64(time.Since(start)) / 1e6
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("infer response missing X-Openei-Trace header")
	}
	// The JSON result reports the same trace ID.
	var env struct {
		OK     bool              `json:"ok"`
		Result libei.InferResult `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("decode infer: %v\n%s", err, body)
	}
	if env.Result.TraceID != id {
		t.Fatalf("result trace_id %q != header %q", env.Result.TraceID, id)
	}
	if env.Result.Class != 2 {
		t.Fatalf("class = %d, want 2", env.Result.Class)
	}

	// The gateway trace commits when the last attempt reference drops;
	// poll briefly.
	var doc libei.TraceDoc
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body := httpGet(t, f.front.URL+"/gw_trace?id="+id)
		if resp.StatusCode == http.StatusOK {
			var tenv struct {
				Result libei.TraceDoc `json:"result"`
			}
			if err := json.Unmarshal([]byte(body), &tenv); err != nil {
				t.Fatalf("decode trace: %v\n%s", err, body)
			}
			doc = tenv.Result
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never stored: %d %s", id, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	bySrc := map[string][]obs.WireSpan{}
	var stageSum float64
	seen := map[string]bool{}
	for _, sp := range doc.Spans {
		if sp.TraceID != id {
			t.Fatalf("foreign span in document: %+v", sp)
		}
		bySrc[sp.Source] = append(bySrc[sp.Source], sp)
		seen[sp.Stage] = true
		switch sp.Stage {
		case obs.StageQueueWait, obs.StageBatchWait, obs.StageExec:
			stageSum += sp.DurationMS
		}
	}
	// The stitched document mixes both recorders: the gateway's own spans
	// plus the node's, fetched live over /ei_trace.
	for _, want := range []string{
		obs.StageGateway, obs.StagePick, obs.StageAttempt, obs.StageInfer,
		obs.StageQueueWait, obs.StageBatchWait, obs.StageExec,
	} {
		if !seen[want] {
			t.Fatalf("stitched trace missing %s span; stages = %v", want, seen)
		}
	}
	if len(bySrc["gateway"]) < 3 || len(bySrc["edge-1"]) < 4 {
		t.Fatalf("span sources = gateway:%d edge-1:%d, want >=3/>=4",
			len(bySrc["gateway"]), len(bySrc["edge-1"]))
	}
	// Stage decomposition accounts for the serving time without
	// exceeding the wall clock measured at the client.
	if stageSum <= 0 || stageSum > wallMS {
		t.Fatalf("stage sum %.3fms vs wall %.3fms", stageSum, wallMS)
	}
	// Spans arrive time-ordered, IDs are unique across both recorders
	// (the gateway's and the node's independently seeded streams), and
	// parent links resolve within the doc.
	ids := map[string]bool{"": true, "0000000000000000": true}
	for _, sp := range doc.Spans {
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span ID %s in stitched doc: %+v", sp.SpanID, doc.Spans)
		}
		ids[sp.SpanID] = true
	}
	for i, sp := range doc.Spans {
		if i > 0 && sp.StartUnixNS < doc.Spans[i-1].StartUnixNS {
			t.Fatalf("spans not time-ordered at %d: %+v", i, doc.Spans)
		}
		if !ids[sp.ParentID] {
			t.Fatalf("span %s has dangling parent %s", sp.SpanID, sp.ParentID)
		}
	}

	// Both /metrics endpoints serve valid Prometheus text exposition and
	// carry the tracing + stage-histogram families.
	resp, prom := httpGet(t, f.front.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("gateway /metrics content-type %q", ct)
	}
	obs.CheckPromFormat(t, prom)
	if !strings.Contains(prom, "openei_gateway_trace_kept") {
		t.Fatalf("gateway exposition missing trace counters:\n%s", prom)
	}
	resp, prom = httpGet(t, f.node.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("node /metrics content-type %q", ct)
	}
	obs.CheckPromFormat(t, prom)
	for _, want := range []string{
		`openei_serving_exec_ms_bucket{model="ident"`,
		`openei_serving_queue_wait_ms_sum{model="ident"}`,
		`openei_serving_batch_wait_ms_count{model="ident"}`,
		"openei_trace_kept",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("node exposition missing %q:\n%s", want, prom)
		}
	}
}

// promLabelKeys mirrors the renderer's label set: JSON fields with these
// names become Prometheus labels, not samples.
var promLabelKeys = map[string]bool{
	"model": true, "tenant": true, "url": true,
	"node_id": true, "step": true, "key": true,
}

// jsonLeaves walks a decoded JSON document the same way the Prometheus
// renderer walks the live struct, emitting the metric name every
// numeric/bool/string leaf must appear under.
func jsonLeaves(prefix string, v any, emit func(name string)) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			if promLabelKeys[k] {
				if _, isStr := sub.(string); isStr {
					continue // rendered as a label on sibling samples
				}
			}
			jsonLeaves(prefix+"_"+k, sub, emit)
		}
	case []any:
		if len(x) == 0 {
			return
		}
		if _, isStr := x[0].(string); isStr {
			emit(prefix + "_count") // []string renders as a count
			return
		}
		for _, el := range x {
			jsonLeaves(prefix, el, emit)
		}
	case string:
		emit(prefix + "_info")
	case bool, float64:
		emit(prefix)
	}
}

// TestMetricsParity pins the no-drift contract between the JSON and
// Prometheus views: both are rendered from the same snapshot struct, so
// every leaf of /ei_metrics and /gw_metrics must have a Prometheus
// counterpart under /metrics. Adding a JSON-only counter fails here.
func TestMetricsParity(t *testing.T) {
	f := newTraceFleet(t)
	if resp, body := httpGet(t, f.front.URL+"/ei_algorithms/serving/infer?model=ident&input=0,1,0,0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d %s", resp.StatusCode, body)
	}

	check := func(name, jsonURL, promURL, prefix string) {
		_, body := httpGet(t, jsonURL)
		var env struct {
			Result any `json:"result"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("%s: decode %v", name, err)
		}
		v := env.Result
		_, prom := httpGet(t, promURL)
		names := map[string]bool{}
		for _, line := range strings.Split(prom, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			n := line
			if i := strings.IndexAny(n, "{ "); i >= 0 {
				n = n[:i]
			}
			names[n] = true
		}
		var missing []string
		jsonLeaves(prefix, v, func(want string) {
			if !names[want] {
				missing = append(missing, want)
			}
		})
		if len(missing) > 0 {
			t.Errorf("%s: JSON leaves missing from Prometheus view: %v", name, missing)
		}
	}
	check("node", f.node.URL+"/ei_metrics", f.node.URL+"/metrics", "openei")
	check("gateway", f.front.URL+"/gw_metrics", f.front.URL+"/metrics", "openei_gateway")
}
