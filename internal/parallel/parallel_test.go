package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// withPool forces a deterministic pool configuration for a test and
// restores defaults afterwards.
func withPool(t *testing.T, procs, grain int) {
	t.Helper()
	SetProcs(procs)
	SetGrainWork(grain)
	t.Cleanup(func() {
		SetProcs(0)
		SetGrainWork(0)
	})
}

// Do must cover [0, n) exactly once, whatever the pool shape.
func TestDoCoversRangeExactlyOnce(t *testing.T) {
	withPool(t, 4, 1)
	for _, n := range []int{1, 2, 3, 7, 8, 63, 64, 65, 1000, 4096} {
		hits := make([]int32, n)
		Do(n, 1, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad shard [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	withPool(t, 4, 1)
	called := false
	Do(0, 1, func(lo, hi int) { called = true })
	Do(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Error("Do must not invoke fn for n <= 0")
	}
}

// Below the grain Do must run inline on the calling goroutine.
func TestDoSerialFallback(t *testing.T) {
	withPool(t, 4, 1)
	var calls int // racy if fn ever ran off-goroutine; -race would catch it
	Do(10, 100, func(lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Errorf("serial fallback got shard [%d,%d), want [0,10)", lo, hi)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("serial fallback ran fn %d times", calls)
	}
}

// Worth is the kernel-side gate: small work or a width-1 pool stays serial.
func TestWorth(t *testing.T) {
	withPool(t, 4, 1000)
	if Worth(999) {
		t.Error("work below grain should not be worth parallelizing")
	}
	if !Worth(1000) {
		t.Error("work at grain should be worth parallelizing")
	}
	SetProcs(1)
	if Worth(1 << 30) {
		t.Error("width-1 pool should never be worth parallelizing")
	}
}

// Nested Do must not deadlock even when every worker is busy: callers
// drain their own jobs.
func TestNestedDo(t *testing.T) {
	withPool(t, 2, 1)
	var total atomic.Int64
	Do(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			Do(16, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Errorf("nested Do executed %d inner items, want %d", got, 8*16)
	}
}

// Many goroutines sharing the pool concurrently must each see a complete,
// exactly-once execution of their own job.
func TestConcurrentDo(t *testing.T) {
	withPool(t, 4, 1)
	const goroutines, n = 16, 257
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				var sum atomic.Int64
				Do(n, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if got := sum.Load(); got != n*(n-1)/2 {
					t.Errorf("sum = %d, want %d", got, n*(n-1)/2)
				}
			}
		}()
	}
	wg.Wait()
}

// Resizing the pool mid-traffic must not lose work.
func TestSetProcsResize(t *testing.T) {
	withPool(t, 1, 1)
	for _, p := range []int{4, 2, 8, 1, 3} {
		SetProcs(p)
		if got := Procs(); got != p {
			t.Fatalf("Procs() = %d after SetProcs(%d)", got, p)
		}
		var sum atomic.Int64
		Do(1024, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(1)
			}
		})
		if sum.Load() != 1024 {
			t.Fatalf("procs=%d: executed %d items, want 1024", p, sum.Load())
		}
	}
}

func TestSetProcsCapsAndDefaults(t *testing.T) {
	withPool(t, 4, 1)
	SetProcs(1 << 20)
	if got := Procs(); got != maxProcs {
		t.Errorf("Procs() = %d, want cap %d", got, maxProcs)
	}
	SetProcs(0)
	if got := Procs(); got < 1 {
		t.Errorf("Procs() = %d after reset, want >= 1", got)
	}
}

func TestGrainWork(t *testing.T) {
	withPool(t, 2, 0)
	if got := GrainWork(); got != DefaultGrainWork {
		t.Errorf("default grain = %d, want %d", got, DefaultGrainWork)
	}
	SetGrainWork(123)
	if got := GrainWork(); got != 123 {
		t.Errorf("grain = %d, want 123", got)
	}
	SetGrainWork(-1)
	if got := GrainWork(); got != DefaultGrainWork {
		t.Errorf("grain = %d after reset, want default", got)
	}
}

func TestSnapshotCounters(t *testing.T) {
	withPool(t, 4, 1)
	before := Snapshot()
	Do(100, 1, func(lo, hi int) {})    // parallel
	Do(100, 1000, func(lo, hi int) {}) // serial fallback
	SetProcs(1)
	Do(100, 1, func(lo, hi int) {}) // width-1 serial
	after := Snapshot()
	if after.ParallelJobs <= before.ParallelJobs {
		t.Error("parallel job counter did not advance")
	}
	if after.SerialJobs < before.SerialJobs+2 {
		t.Errorf("serial job counter advanced by %d, want >= 2", after.SerialJobs-before.SerialJobs)
	}
	if after.Chunks <= before.Chunks {
		t.Error("chunk counter did not advance")
	}
	if after.Workers != 1 || after.GrainWork != 1 {
		t.Errorf("snapshot config = %d workers / grain %d", after.Workers, after.GrainWork)
	}
	if after.Utilization < 0 || after.Utilization > 1.000001 {
		t.Errorf("utilization %v out of range", after.Utilization)
	}
}
