// Package parallel is the process-wide compute runtime behind the dense
// kernels in internal/tensor and internal/nn: a size-capped worker pool
// that shards index ranges across cores, with a serial fallback below a
// tunable work grain so tiny tensors never pay dispatch overhead.
//
// The pool is deliberately global. Every hot kernel (matmul, im2col
// convolution, pooling, activation maps) funnels through the same workers,
// so total kernel concurrency never exceeds the configured width no matter
// how many serving replicas or training loops run at once — the pool is the
// single throttle between the model layer and the machine.
//
// Callers participate: Do executes shards on the calling goroutine too, and
// waiting callers drain their own job, so nested Do (a batch-sharded
// convolution whose per-image matmul shards rows) cannot deadlock even when
// every worker is busy.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultGrainWork is the default serial cutoff in fused-op units (one
// multiply-add, one comparison, one element copied — the caller's unit of
// per-item cost). Kernels below it run on the calling goroutine: dispatch
// costs a few microseconds, so work that finishes in tens of microseconds
// is cheaper serial. The default corresponds to a 64×64×128 matmul.
const DefaultGrainWork = 1 << 19

// maxProcs caps the pool so a bad knob cannot spawn unbounded goroutines.
const maxProcs = 256

var (
	mu      sync.Mutex
	helpers int  // running worker goroutines (procs-1; the caller is a worker too)
	started bool // tasks channel initialized and helpers spawned

	procs     atomic.Int32 // configured width, 0 = not yet initialized
	grainWork atomic.Int64 // serial cutoff in fused-op units, 0 = default

	// tasks carries jobs to helper goroutines. Buffered so Do's
	// non-blocking offers and SetProcs's stop tokens never stall.
	tasks chan *job

	// Counters behind Snapshot, updated lock-free on the hot path.
	statParallel atomic.Uint64 // jobs that went through the pool
	statSerial   atomic.Uint64 // Do calls that ran inline
	statChunks   atomic.Uint64 // shards executed
	statBusyNS   atomic.Uint64 // summed shard execution time
	startNS      atomic.Int64  // pool start time, for utilization
)

// job is one Do invocation. Shards are claimed by atomically advancing
// next, so the caller and any helpers that pick the job up load-balance
// without further coordination. Jobs are pooled; refs counts the
// goroutines still holding the pointer so a job is only recycled once the
// last of them lets go (a helper may receive a job long after its work is
// done and must still see consistent fields).
type job struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	refs  atomic.Int32
	wg    sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// ensure initializes the pool on first use under mu.
func ensure() {
	if started {
		return
	}
	started = true
	tasks = make(chan *job, 1024)
	startNS.Store(time.Now().UnixNano())
	p := int(procs.Load())
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
		if p > maxProcs {
			p = maxProcs
		}
		procs.Store(int32(p))
	}
	for helpers < p-1 {
		helpers++
		go worker()
	}
}

// Procs returns the pool width (worker goroutines plus the participating
// caller). Kernels go serial whenever it is 1.
func Procs() int {
	if p := int(procs.Load()); p > 0 {
		return p
	}
	mu.Lock()
	defer mu.Unlock()
	ensure()
	return int(procs.Load())
}

// SetProcs resizes the pool to p workers (including the calling
// goroutine's share); p <= 0 resets to GOMAXPROCS. The width is capped at
// 256. Safe to call at any time; in-flight jobs finish on the old width.
func SetProcs(p int) {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > maxProcs {
		p = maxProcs
	}
	mu.Lock()
	defer mu.Unlock()
	ensure() // initialize tasks before publishing the new width
	procs.Store(int32(p))
	for helpers < p-1 {
		helpers++
		go worker()
	}
	for helpers > p-1 {
		helpers--
		tasks <- nil // stop token: the receiving helper exits
	}
}

// GrainWork returns the current serial cutoff in fused-op units.
func GrainWork() int {
	if g := grainWork.Load(); g > 0 {
		return int(g)
	}
	return DefaultGrainWork
}

// SetGrainWork sets the serial cutoff; g <= 0 resets the default. Lower
// values parallelize smaller tensors (more dispatch overhead), higher
// values keep mid-size kernels serial (less).
func SetGrainWork(g int) {
	if g < 0 {
		g = 0
	}
	grainWork.Store(int64(g))
}

// GrainItems converts the pool's fused-op grain into a per-shard item
// count for a kernel whose items (rows, images, planes) each cost perItem
// fused ops: shards never carry less than one grain of work, so sub-grain
// tails don't get dispatched.
func GrainItems(perItem int) int {
	if perItem <= 0 {
		return 1
	}
	g := GrainWork() / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// Worth reports whether a kernel with the given total fused-op count
// should take the parallel path. Kernels use it as the cheap gate before
// building a closure for Do, keeping the serial path allocation-free.
func Worth(work int) bool {
	return work >= GrainWork() && Procs() > 1
}

// Do splits [0, n) into contiguous shards and executes fn on them across
// the pool, returning when every shard is done. fn must be safe to call
// concurrently on disjoint ranges and must not panic. grain is the minimum
// items per shard; n <= grain (or a pool width of 1) runs fn(0, n) on the
// calling goroutine. The caller always executes shards itself, so Do may
// be invoked from inside another Do without deadlocking.
func Do(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p <= 1 || n <= grain {
		statSerial.Add(1)
		fn(0, n)
		return
	}
	// Aim for two chunks per worker so an early-finishing worker can steal
	// a second helping, without going below the grain.
	chunk := (n + 2*p - 1) / (2 * p)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		statSerial.Add(1)
		fn(0, n)
		return
	}
	j := jobPool.Get().(*job)
	j.fn, j.n, j.chunk = fn, n, chunk
	j.next.Store(0)
	j.wg.Add(chunks)
	offers := chunks - 1
	if offers > p-1 {
		offers = p - 1
	}
	// Account for every offer up front: a helper may receive the job and
	// release it before the offer loop finishes, so refs must already
	// cover it. Failed offers are refunded below.
	j.refs.Store(int32(1 + offers))
	sent := 0
	for ; sent < offers; sent++ {
		select {
		case tasks <- j:
		default:
			// Pool backlog: stop offering, the caller will run the rest.
			goto claimed
		}
	}
claimed:
	if sent < offers {
		j.refs.Add(int32(sent - offers))
	}
	statParallel.Add(1)
	j.run()
	j.wg.Wait()
	j.release()
}

// run claims and executes shards until the job is exhausted.
func (j *job) run() {
	for {
		hi := int(j.next.Add(int64(j.chunk)))
		lo := hi - j.chunk
		if lo >= j.n {
			return
		}
		if hi > j.n {
			hi = j.n
		}
		start := time.Now()
		j.fn(lo, hi)
		statBusyNS.Add(uint64(time.Since(start)))
		statChunks.Add(1)
		j.wg.Done()
	}
}

// release drops one reference, recycling the job when the last holder —
// possibly a helper that received it from the queue after the caller
// already returned — lets go.
func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil
		jobPool.Put(j)
	}
}

// worker is one helper goroutine's loop: execute whatever jobs arrive
// until a stop token from SetProcs.
func worker() {
	for j := range tasks {
		if j == nil {
			return
		}
		j.run()
		j.release()
	}
}

// Stats is a snapshot of the pool's lifetime counters, exposed at
// GET /ei_metrics.
type Stats struct {
	// Workers is the configured pool width (including the caller's share).
	Workers int `json:"workers"`
	// GrainWork is the serial cutoff in fused-op units.
	GrainWork int `json:"grain_work"`
	// ParallelJobs counts kernels dispatched across the pool.
	ParallelJobs uint64 `json:"parallel_jobs"`
	// SerialJobs counts Do calls that ran inline (below grain or width 1).
	SerialJobs uint64 `json:"serial_jobs"`
	// Chunks counts shards executed.
	Chunks uint64 `json:"chunks"`
	// BusyMS is the summed shard execution time across all workers.
	BusyMS float64 `json:"busy_ms"`
	// Utilization is BusyMS over pool-lifetime wall time × Workers: the
	// fraction of the pool's capacity spent inside kernels.
	Utilization float64 `json:"utilization"`
}

// Snapshot returns the pool's counters.
func Snapshot() Stats {
	s := Stats{
		Workers:      Procs(),
		GrainWork:    GrainWork(),
		ParallelJobs: statParallel.Load(),
		SerialJobs:   statSerial.Load(),
		Chunks:       statChunks.Load(),
	}
	busy := statBusyNS.Load()
	s.BusyMS = float64(busy) / 1e6
	if t0 := startNS.Load(); t0 > 0 && s.Workers > 0 {
		wall := time.Now().UnixNano() - t0
		if wall > 0 {
			s.Utilization = float64(busy) / (float64(wall) * float64(s.Workers))
		}
	}
	return s
}
