package autopilot

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"openei/internal/nn"
	"openei/internal/serving"
)

func rnnTierModel(name string, T, D, H, classes int) *nn.Model {
	m := nn.MustModel(name, []int{T * D}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: T, D: D, H: H}},
		{Type: "dense", In: H, Out: classes},
	})
	m.InitParams(rand.New(rand.NewSource(31)))
	return m
}

func lastReason(t *testing.T, p *Pilot) string {
	t.Helper()
	st := p.Status()
	if len(st.History) == 0 {
		t.Fatal("no history events recorded")
	}
	return st.History[len(st.History)-1].Reason
}

// The exit threshold is a continuous knob between ladder rungs: under
// SLO pressure the pilot walks it down to the floor before swapping
// tiers, and with headroom it restores the knob before climbing back.
func TestExitThresholdKnobMovesBeforeTierSwaps(t *testing.T) {
	e := testEngine(t, serving.Config{Replicas: 1, MaxBatch: 4}, rnnTierModel("rnn-big", 6, 4, 8, 3),
		denseModel("tier-small", 24, 8, 3))
	tiers := []TierSpec{
		{Model: "rnn-big", Accuracy: 0.95, Latency: 5 * time.Millisecond, Memory: 64 << 20},
		{Model: "tier-small", Accuracy: 0.90, Latency: time.Millisecond, Memory: 8 << 20},
	}
	p, err := New(e, "rnn-big", tiers, Policy{
		P95:                10 * time.Millisecond,
		DowngradeAfter:     1,
		UpgradeAfter:       1,
		MinSamples:         1,
		ExitThreshold:      0.9,
		ExitThresholdFloor: 0.7,
		ExitThresholdStep:  0.1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := &feed{}
	p.measure = f.measure

	// New arms the top tier at the resting threshold.
	if st := p.Status(); st.ExitThreshold != 0.9 {
		t.Fatalf("armed threshold = %v, want 0.9", st.ExitThreshold)
	}
	if thr, ok := e.ExitThresholdOf("rnn-big"); !ok || thr != 0.9 {
		t.Fatalf("engine threshold = (%v, %v), want (0.9, true)", thr, ok)
	}

	now := time.Now()
	bad := func() {
		f.add(10, 20*time.Millisecond)
		now = now.Add(time.Second)
		p.Step(now)
	}
	quiet := func() {
		now = now.Add(time.Second)
		p.Step(now)
	}

	// First SLO miss lowers the knob instead of swapping tiers.
	bad()
	st := p.Status()
	if st.TierIndex != 0 {
		t.Fatalf("tier swapped on first miss: index %d", st.TierIndex)
	}
	if !strings.HasPrefix(lastReason(t, p), "exit-threshold-down") {
		t.Fatalf("first actuation = %q, want exit-threshold-down", lastReason(t, p))
	}
	if thr, _ := e.ExitThresholdOf("rnn-big"); thr <= 0.79 || thr > 0.81 {
		t.Fatalf("engine threshold after one nudge = %v, want ~0.8", thr)
	}

	// Headroom restores the knob before any tier climb.
	quiet()
	if !strings.HasPrefix(lastReason(t, p), "exit-threshold-up") {
		t.Fatalf("recovery actuation = %q, want exit-threshold-up", lastReason(t, p))
	}
	if st := p.Status(); st.ExitThreshold != 0.9 || st.TierIndex != 0 {
		t.Fatalf("after recovery: thr %v tier %d, want 0.9 on tier 0", st.ExitThreshold, st.TierIndex)
	}

	// Sustained pressure drains the knob's range (0.9→0.8→0.7), and only
	// then does the pilot pay a tier swap.
	bad()
	bad()
	if st := p.Status(); st.TierIndex != 0 {
		t.Fatalf("tier swapped before the knob hit its floor: index %d", st.TierIndex)
	}
	bad()
	st = p.Status()
	if st.TierIndex != 1 {
		t.Fatalf("floor exhausted but tier not swapped: index %d", st.TierIndex)
	}
	if st.ExitThreshold != 0 {
		t.Fatalf("dense tier reports a knob: %v", st.ExitThreshold)
	}
	if !strings.HasPrefix(lastReason(t, p), "slo-miss") {
		t.Fatalf("swap reason = %q, want slo-miss", lastReason(t, p))
	}

	// Climbing back re-arms the recurrent tier at the resting threshold.
	quiet()
	st = p.Status()
	if st.TierIndex != 0 || st.ExitThreshold != 0.9 {
		t.Fatalf("after climb: tier %d thr %v, want tier 0 at 0.9", st.TierIndex, st.ExitThreshold)
	}
	if thr, ok := e.ExitThresholdOf("rnn-big"); !ok || thr != 0.9 {
		t.Fatalf("engine threshold after climb = (%v, %v), want (0.9, true)", thr, ok)
	}
	for _, ts := range st.Tiers {
		if ts.Model == "rnn-big" && (!ts.EarlyExit || ts.ExitThreshold != 0.9) {
			t.Fatalf("tier status = %+v, want early-exit at 0.9", ts)
		}
		if ts.Model == "tier-small" && ts.EarlyExit {
			t.Fatalf("dense tier advertises early exit: %+v", ts)
		}
	}
}
