package autopilot

import (
	"context"
	"testing"
	"time"

	"openei/internal/serving"
	"openei/internal/tensor"
)

// BenchmarkPilotInfer measures the pilot's overhead on the serving hot
// path (route resolution + offload bookkeeping on top of a raw engine
// request).
func BenchmarkPilotInfer(b *testing.B) {
	e := testEngine(b, serving.Config{Replicas: 1, MaxBatch: 1},
		denseModel("tier-big", 32, 64, 4), denseModel("tier-small", 32, 8, 4))
	p, err := New(e, "tier-big", twoTiers(), Policy{P95: 10 * time.Millisecond, Interval: time.Hour}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	x := tensor.MustFrom(make([]float32, 32), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Infer(context.Background(), "tier-big", x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPilotStep measures one control-loop evaluation (histogram
// snapshot + quantile + hysteresis) — the per-tick cost of running the
// autopilot at all.
func BenchmarkPilotStep(b *testing.B) {
	e := testEngine(b, serving.Config{Replicas: 1, MaxBatch: 1},
		denseModel("tier-big", 32, 64, 4), denseModel("tier-small", 32, 8, 4))
	p, err := New(e, "tier-big", twoTiers(), Policy{P95: 10 * time.Millisecond, Interval: time.Hour}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	x := tensor.MustFrom(make([]float32, 32), 32)
	for i := 0; i < 100; i++ {
		if _, err := p.Infer(context.Background(), "tier-big", x); err != nil {
			b.Fatal(err)
		}
	}
	now := time.Unix(3000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		p.Step(now)
	}
}
