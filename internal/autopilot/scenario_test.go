package autopilot

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/serving"
	"openei/internal/tensor"
)

// TestScenarioOverloadDowngradeOffloadRecover is the acceptance scenario:
// a real serving engine under 64-client overload. The pilot must
//
//  1. switch from the fp32 tier to the cheap tier when the measured p95
//     misses the SLO,
//  2. start offloading excess to the stub cloud backend while the cheap
//     tier still misses it,
//  3. return to the top tier (via offload-stop) once pressure drops,
//
// with zero client-visible failures and a bounded flap count throughout.
// The control loop is stepped manually so the test drives phases instead
// of racing a wall-clock ticker; under -short the load shrinks but the
// phase structure is identical.
func TestScenarioOverloadDowngradeOffloadRecover(t *testing.T) {
	clients, hidden := 64, 2048
	if testing.Short() {
		clients, hidden = 24, 1024
	}
	const in = 256
	// The cheap tier is half the top tier's cost: enough for the
	// downgrade to matter, not enough to duck under the SLO while the
	// full hammer is running — which is exactly the state that must
	// trigger offload. MaxBatch 1 keeps request latency ≈ queue wait +
	// one service time, so the closed-loop math below holds on any
	// machine.
	e := testEngine(t, serving.Config{Replicas: 1, MaxBatch: 1, QueueDepth: 8192},
		denseModel("detector", in, hidden, 4),
		denseModel("detector-int8", in, hidden/2, 4),
	)
	x := tensor.MustFrom(make([]float32, in), in)

	// Calibrate the top tier's sequential service time so the SLO scales
	// with the host instead of hard-coding milliseconds: under the
	// closed-loop hammer p95 ≈ clients × service, so any SLO between
	// ~2×service (recovery headroom) and clients/2 × service (cheap tier
	// still missing) exercises every phase. 4× sits well inside that
	// window for both client counts.
	for i := 0; i < 5; i++ {
		if _, err := e.Infer(context.Background(), "detector", x); err != nil {
			t.Fatal(err)
		}
	}
	calStart := time.Now()
	const calN = 20
	for i := 0; i < calN; i++ {
		if _, err := e.Infer(context.Background(), "detector", x); err != nil {
			t.Fatal(err)
		}
	}
	service := time.Since(calStart) / calN
	slo := 4 * service
	t.Logf("calibrated top-tier service %v → SLO p95 ≤ %v", service, slo)

	cloud := &stubOffloader{}
	tiers := []TierSpec{
		{Model: "detector", Accuracy: 0.95, Latency: 5 * time.Millisecond, Backend: "float32"},
		{Model: "detector-int8", Accuracy: 0.91, Latency: 2 * time.Millisecond, Quantized: true, Backend: "int8"},
	}
	pol := Policy{
		P95:             slo,
		AccuracyFloor:   0.9,
		Interval:        time.Hour, // stepped manually
		DowngradeAfter:  1,
		UpgradeAfter:    2,
		UpgradeHeadroom: 0.6,
		MinSamples:      8,
		OffloadFraction: 0.5,
	}
	p, err := New(e, "detector", tiers, pol, cloud)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The hammer: closed-loop clients against the public name.
	var (
		wg       sync.WaitGroup
		failures atomic.Uint64
		pressure atomic.Bool
	)
	pressure.Store(true)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pressure.Load() {
				if _, err := p.Infer(context.Background(), "detector", x); err != nil {
					failures.Add(1)
					t.Errorf("client request failed under pressure: %v", err)
					return
				}
			}
		}()
	}

	now := time.Unix(2000, 0)
	step := func() Status {
		now = now.Add(time.Second)
		p.Step(now)
		return p.Status()
	}
	waitFor := func(phase string, limit int, cond func(Status) bool) Status {
		t.Helper()
		var st Status
		for i := 0; i < limit; i++ {
			time.Sleep(100 * time.Millisecond)
			if st = step(); cond(st) {
				return st
			}
		}
		t.Fatalf("%s: not reached after %d control ticks; status %+v", phase, limit, st)
		return st
	}

	// Phase 1: overload → the pilot leaves the top tier. DowngradeAfter=1
	// means the switch lands within one control interval of the first
	// measured miss.
	st := waitFor("downgrade", 50, func(s Status) bool { return s.TierIndex == 1 })
	if st.Downgrades < 1 {
		t.Fatalf("downgrade not counted: %+v", st)
	}
	// The downgrade switched to a DIFFERENT execution backend, not a
	// relabeled float model: the active pipeline now runs int8 kernels.
	// (Swap retires the outgoing tier's pipeline, so each backend is
	// asserted while its tier is the live one.)
	if b := backendOf(e, "detector-int8"); b != "int8" {
		t.Errorf("downgraded tier backend = %q, want int8", b)
	}

	// Phase 2: the cheap tier still misses the 3ms SLO under the full
	// hammer → offload engages and the stub cloud absorbs traffic.
	waitFor("offload", 50, func(s Status) bool { return s.Offloading })
	waitFor("cloud traffic", 50, func(s Status) bool { return s.Offloaded > 0 })

	// Phase 3: pressure drops; quiet/comfortable ticks first stop the
	// offload, then climb back to the top tier.
	pressure.Store(false)
	wg.Wait()
	st = waitFor("recovery", 50, func(s Status) bool { return !s.Offloading && s.TierIndex == 0 })

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures", n)
	}
	// Bounded flapping: the whole scenario needs exactly one downgrade
	// and one upgrade; hysteresis may add at most one extra round trip.
	if st.Downgrades > 2 || st.Upgrades > 2 {
		t.Errorf("flapping: %d downgrades, %d upgrades", st.Downgrades, st.Upgrades)
	}
	if st.OffloadRatio <= 0 {
		t.Errorf("offload_ratio = %v, want > 0", st.OffloadRatio)
	}
	// The switch history tells the whole story in order: down, offload
	// on, offload off, up.
	var saw []string
	for _, ev := range st.History {
		saw = append(saw, ev.Reason)
	}
	need := map[string]bool{"slo-miss": false, "offload-start": false, "offload-stop": false, "slo-headroom": false}
	for _, r := range saw {
		if _, ok := need[r]; ok {
			need[r] = true
		}
	}
	for r, ok := range need {
		if !ok {
			t.Errorf("switch history missing %q: %v", r, saw)
		}
	}
	// The engine served the whole time on the public name; the top tier
	// answers again now.
	res, err := p.Infer(context.Background(), "detector", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "detector" {
		t.Errorf("post-recovery served by %q, want detector", res.Model)
	}
	if b := backendOf(e, "detector"); b != "float32" {
		t.Errorf("recovered tier backend = %q, want float32", b)
	}
}

// backendOf reads the execution backend of a live pipeline from the
// engine's /ei_metrics view.
func backendOf(e *serving.Engine, model string) string {
	for _, ms := range e.Stats() {
		if ms.Model == model {
			return ms.Backend
		}
	}
	return ""
}
