package autopilot

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/selector"
	"openei/internal/serving"
	"openei/internal/tensor"
)

func denseModel(name string, in, hidden, classes int) *nn.Model {
	m := nn.MustModel(name, []int{in}, []nn.LayerSpec{
		{Type: "dense", In: in, Out: hidden},
		{Type: "relu"},
		{Type: "dense", In: hidden, Out: classes},
	})
	m.InitParams(rand.New(rand.NewSource(7)))
	return m
}

// testEngine loads big/small tier models and returns a serving engine.
// Models named "{base}-int8" are loaded quantized, so their pipelines
// compile to the int8 execution backend — tier names imply backends.
func testEngine(t testing.TB, cfg serving.Config, models ...*nn.Model) *serving.Engine {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("jetson-tx2")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	for _, m := range models {
		quantize := strings.HasSuffix(m.Name, "-int8")
		if err := mgr.Load(m, pkgmgr.LoadOptions{Quantize: quantize}); err != nil {
			t.Fatal(err)
		}
	}
	e := serving.NewEngine(mgr, cfg)
	t.Cleanup(e.Close)
	return e
}

func twoTiers() []TierSpec {
	return []TierSpec{
		{Model: "tier-big", Accuracy: 0.95, Latency: 5 * time.Millisecond, Memory: 64 << 20},
		{Model: "tier-small", Accuracy: 0.90, Latency: time.Millisecond, Memory: 8 << 20, Quantized: true},
	}
}

func twoTierEngine(t *testing.T) *serving.Engine {
	return testEngine(t, serving.Config{Replicas: 1, MaxBatch: 4},
		denseModel("tier-big", 32, 64, 4), denseModel("tier-small", 32, 8, 4))
}

// bucketFor finds the snapshot bucket whose upper bound covers d by
// probing single-bucket snapshots through the exported Quantile.
func bucketFor(d time.Duration) int {
	var s serving.LatencySnapshot
	for i := range s.Buckets {
		var probe serving.LatencySnapshot
		probe.Buckets[i] = 1
		probe.Count = 1
		if probe.Quantile(1) >= d {
			return i
		}
	}
	return len(s.Buckets) - 1
}

// feed is a synthetic telemetry source: add(n, d) appends n observations
// at latency d to the cumulative snapshot the pilot will measure.
type feed struct {
	snap serving.LatencySnapshot
}

func (f *feed) add(n uint64, d time.Duration) {
	f.snap.Buckets[bucketFor(d)] += n
	f.snap.Count += n
}

func (f *feed) measure(string) (serving.LatencySnapshot, bool) { return f.snap, true }

// stubOffloader counts offloads and answers a fixed class.
type stubOffloader struct {
	calls atomic.Uint64
	fail  atomic.Bool
}

func (o *stubOffloader) Offload(_ context.Context, _ string, _ []float32, _ time.Duration) (int, float64, error) {
	o.calls.Add(1)
	if o.fail.Load() {
		return 0, 0, errors.New("stub cloud down")
	}
	return 3, 0.99, nil
}

func TestNewValidation(t *testing.T) {
	e := twoTierEngine(t)
	if _, err := New(e, "tier-big", twoTiers(), Policy{}, nil); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("missing SLO: err = %v, want ErrBadPolicy", err)
	}
	pol := Policy{P95: 10 * time.Millisecond, AccuracyFloor: 0.99}
	if _, err := New(e, "tier-big", twoTiers(), pol, nil); !errors.Is(err, ErrNoTiers) {
		t.Errorf("impossible floor: err = %v, want ErrNoTiers", err)
	}
	bad := []TierSpec{{Model: "no-such-model", Accuracy: 1}}
	if _, err := New(e, "tier-big", bad, Policy{P95: 10 * time.Millisecond}, nil); err == nil {
		t.Error("unloaded tier model accepted")
	}
}

func TestNewInstallsTopTierRoute(t *testing.T) {
	e := twoTierEngine(t)
	// Offer the ladder in scrambled order; accuracy ordering must win.
	tiers := []TierSpec{twoTiers()[1], twoTiers()[0]}
	p, err := New(e, "tier-big", tiers, Policy{P95: 10 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := e.Route("tier-big"); got != "tier-big" {
		t.Errorf("route = %q, want top tier tier-big", got)
	}
	st := p.Status()
	if st.Tier != "tier-big" || st.TierIndex != 0 || len(st.Tiers) != 2 || !st.Tiers[0].Active {
		t.Errorf("status = %+v", st)
	}
}

// TestHysteresis drives the full state machine on synthetic telemetry:
// miss → downgrade; still missing on the last tier → offload; sustained
// headroom → offload stops, then the tier upgrades; the dead band holds.
func TestHysteresis(t *testing.T) {
	e := twoTierEngine(t)
	off := &stubOffloader{}
	pol := Policy{
		P95: 10 * time.Millisecond, Interval: time.Hour, // loop never self-ticks
		DowngradeAfter: 2, UpgradeAfter: 2, UpgradeHeadroom: 0.5, MinSamples: 5,
	}
	p, err := New(e, "tier-big", twoTiers(), pol, off)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := &feed{}
	p.measure = f.measure
	now := time.Unix(1000, 0)
	tick := func(n uint64, d time.Duration) {
		f.add(n, d)
		now = now.Add(time.Second)
		p.Step(now)
	}

	// One bad tick is below DowngradeAfter=2: hold.
	tick(20, 50*time.Millisecond)
	if st := p.Status(); st.TierIndex != 0 {
		t.Fatalf("downgraded after one bad tick: %+v", st)
	}
	// Second consecutive miss: downgrade.
	tick(20, 50*time.Millisecond)
	if st := p.Status(); st.TierIndex != 1 || st.Downgrades != 1 {
		t.Fatalf("no downgrade after DowngradeAfter misses: %+v", st)
	}
	if got := e.Route("tier-big"); got != "tier-small" {
		t.Fatalf("route not swapped: %q", got)
	}
	// Still missing on the last tier → after two more bad ticks, offload.
	tick(20, 30*time.Millisecond)
	tick(20, 30*time.Millisecond)
	st := p.Status()
	if !st.Offloading {
		t.Fatalf("offload not engaged on last-tier misses: %+v", st)
	}
	// Dead band (between headroom 5ms and SLO 10ms): nothing moves.
	for i := 0; i < 5; i++ {
		tick(20, 7*time.Millisecond)
	}
	if st := p.Status(); !st.Offloading || st.TierIndex != 1 {
		t.Fatalf("dead band acted: %+v", st)
	}
	// Sustained headroom: first stop offloading…
	tick(20, time.Millisecond)
	tick(20, time.Millisecond)
	if st := p.Status(); st.Offloading {
		t.Fatalf("offload still on after recovery: %+v", st)
	}
	// …then climb back to the top tier.
	tick(20, time.Millisecond)
	tick(20, time.Millisecond)
	st = p.Status()
	if st.TierIndex != 0 || st.Upgrades != 1 {
		t.Fatalf("no upgrade after sustained headroom: %+v", st)
	}
	if got := e.Route("tier-big"); got != "tier-big" {
		t.Fatalf("route not restored: %q", got)
	}
	// History recorded every transition in order.
	reasons := []string{}
	for _, ev := range st.History {
		reasons = append(reasons, ev.Reason)
	}
	want := []string{"slo-miss", "offload-start", "offload-stop", "slo-headroom"}
	if len(reasons) != len(want) {
		t.Fatalf("history = %v, want %v", reasons, want)
	}
	for i := range want {
		if reasons[i] != want[i] {
			t.Fatalf("history = %v, want %v", reasons, want)
		}
	}
	if st.SLOAttainment >= 1 || st.SLOAttainment <= 0 {
		t.Errorf("slo_attainment = %v, want in (0,1)", st.SLOAttainment)
	}
}

// TestQuietTicksHealUpward: with no traffic at all, an idle node climbs
// back to its top tier.
func TestQuietTicksHealUpward(t *testing.T) {
	e := twoTierEngine(t)
	pol := Policy{P95: 10 * time.Millisecond, Interval: time.Hour,
		DowngradeAfter: 1, UpgradeAfter: 2, MinSamples: 5}
	p, err := New(e, "tier-big", twoTiers(), pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f := &feed{}
	p.measure = f.measure
	now := time.Unix(0, 0)
	f.add(20, 50*time.Millisecond)
	now = now.Add(time.Second)
	p.Step(now)
	if p.Status().TierIndex != 1 {
		t.Fatal("no downgrade")
	}
	for i := 0; i < 2; i++ {
		now = now.Add(time.Second)
		p.Step(now) // no new samples: quiet ticks
	}
	if st := p.Status(); st.TierIndex != 0 {
		t.Fatalf("idle node did not heal to top tier: %+v", st)
	}
}

// TestOffloadFractionSplit: with offload forced on, the deterministic
// counter sends ~OffloadFraction of alias traffic to the cloud and the
// answers carry the cloud: marker.
func TestOffloadFractionSplit(t *testing.T) {
	e := twoTierEngine(t)
	off := &stubOffloader{}
	pol := Policy{P95: 10 * time.Millisecond, Interval: time.Hour, OffloadFraction: 0.5}
	p, err := New(e, "tier-big", twoTiers(), pol, off)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.offloading.Store(true)
	x := tensor.MustFrom(make([]float32, 32), 32)
	cloud := 0
	for i := 0; i < 20; i++ {
		res, err := p.Infer(context.Background(), "tier-big", x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Model == "cloud:tier-big" {
			cloud++
			if res.Class != 3 {
				t.Fatalf("cloud answer class = %d", res.Class)
			}
		}
	}
	if cloud != 10 {
		t.Errorf("offloaded %d of 20, want exactly 10 at fraction 0.5", cloud)
	}
	if got := off.calls.Load(); got != 10 {
		t.Errorf("offloader calls = %d, want 10", got)
	}
	st := p.Status()
	if st.OffloadRatio < 0.45 || st.OffloadRatio > 0.55 {
		t.Errorf("offload_ratio = %v, want ~0.5", st.OffloadRatio)
	}
}

// TestOffloadFailureFallsBackLocal: a dead cloud must not become a new
// failure mode — marked requests fall back to the local tier.
func TestOffloadFailureFallsBackLocal(t *testing.T) {
	e := twoTierEngine(t)
	off := &stubOffloader{}
	off.fail.Store(true)
	pol := Policy{P95: 10 * time.Millisecond, Interval: time.Hour, OffloadFraction: 1}
	p, err := New(e, "tier-big", twoTiers(), pol, off)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.offloading.Store(true)
	x := tensor.MustFrom(make([]float32, 32), 32)
	for i := 0; i < 5; i++ {
		res, err := p.Infer(context.Background(), "tier-big", x)
		if err != nil {
			t.Fatalf("request failed despite local fallback: %v", err)
		}
		if res.Model != "tier-big" {
			t.Fatalf("served by %q, want local tier-big", res.Model)
		}
	}
	if st := p.Status(); st.OffloadErrors != 5 || st.Offloaded != 0 {
		t.Errorf("status = %+v, want 5 offload errors, 0 offloaded", st)
	}
}

// TestPassThroughOtherModels: non-alias models are untouched by offload.
func TestPassThroughOtherModels(t *testing.T) {
	e := twoTierEngine(t)
	off := &stubOffloader{}
	pol := Policy{P95: 10 * time.Millisecond, Interval: time.Hour, OffloadFraction: 1}
	p, err := New(e, "tier-big", twoTiers(), pol, off)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.offloading.Store(true)
	x := tensor.MustFrom(make([]float32, 32), 32)
	res, err := p.Infer(context.Background(), "tier-small", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "tier-small" || off.calls.Load() != 0 {
		t.Errorf("pass-through touched the offloader: res=%+v calls=%d", res, off.calls.Load())
	}
}

func TestPlanTiers(t *testing.T) {
	mkChoice := func(name string, q bool, acc float64, lat time.Duration, mem int64) selector.Choice {
		return selector.Choice{ModelName: name, Quantized: q,
			ALEM: alem.ALEM{Accuracy: acc, Latency: lat, Memory: mem}}
	}
	front := []selector.Choice{
		mkChoice("lenet", false, 0.95, 8*time.Millisecond, 60<<20),
		mkChoice("lenet", true, 0.93, 4*time.Millisecond, 20<<20),
		mkChoice("bonsai", false, 0.70, time.Millisecond, 1<<20),   // below floor
		mkChoice("vgg", false, 0.97, 20*time.Millisecond, 500<<20), // over cap
		mkChoice("lenet", true, 0.93, 4*time.Millisecond, 20<<20),  // dup name
	}
	tiers := PlanTiers(front, nil, Policy{P95: time.Second, AccuracyFloor: 0.9, MemoryCap: 100 << 20})
	if len(tiers) != 2 {
		t.Fatalf("tiers = %+v, want 2", tiers)
	}
	if tiers[0].Model != "lenet" || tiers[1].Model != "lenet-int8" {
		t.Errorf("ladder order = %s, %s", tiers[0].Model, tiers[1].Model)
	}
	if !tiers[1].Quantized {
		t.Errorf("quantized flag lost: %+v", tiers[1])
	}
	if tiers[0].Backend != "float32" || tiers[1].Backend != "int8" {
		t.Errorf("tier backends = %q, %q, want float32, int8", tiers[0].Backend, tiers[1].Backend)
	}
}
