// Package autopilot closes the loop the paper leaves open: OpenEI's model
// selector (Equation 1) picks the best (model, package) combination for a
// node's ALEM constraints, but it runs once, offline. The autopilot runs
// the same selection *during* traffic: it maintains online ALEM profiles
// per model tier from live serving telemetry, evaluates an
// operator-declared SLO every control tick, and actuates —
//
//   - Tier switching: when the live p95 latency misses the SLO, the
//     serving engine's public model name is hot-swapped
//     (serving.Engine.Swap, drain-and-replace, zero dropped requests) to
//     the next tier of the ladder: a cheaper Pareto-frontier variant
//     (quantized, or a smaller architecture) that still satisfies the
//     operator's accuracy floor and memory cap.
//   - Exit-threshold tuning: when the active tier's compiled plan
//     supports early exit, the confidence threshold is a *continuous*
//     knob between ladder rungs. Under SLO pressure the pilot first
//     lowers the threshold (samples retire after fewer recurrent steps)
//     down to a policy floor before paying a tier swap; with headroom it
//     restores the threshold back to its resting value before climbing
//     the ladder. Each nudge is recorded in the switch history.
//   - Edge→cloud offload: when even the cheapest local tier misses the
//     SLO, a fraction of requests is marked for offload and executed by a
//     cloud-backed fallback (an Offloader, typically a libei client
//     pointed at an openei-cloud serving endpoint); local overload
//     rejections spill to the cloud instead of surfacing as 429s.
//   - Recovery with hysteresis: the node upgrades back — first dropping
//     offload, then climbing the tier ladder — only after UpgradeAfter
//     consecutive ticks comfortably inside the SLO (p95 ≤
//     UpgradeHeadroom × target), so a borderline node does not flap.
//
// Current tier, switch history, offload ratio, and SLO attainment are
// snapshotted by Status for the node's /ei_metrics.
package autopilot

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openei/internal/obs"
	"openei/internal/serving"
	"openei/internal/tensor"
)

// Pilot errors.
var (
	// ErrNoTiers is returned when no tier satisfies the policy's accuracy
	// floor and memory cap.
	ErrNoTiers = errors.New("autopilot: no eligible tiers")
	// ErrBadPolicy is returned for invalid policies.
	ErrBadPolicy = errors.New("autopilot: bad policy")
)

// TierSpec is one rung of the tier ladder: a loaded model variant and its
// profiled ALEM coordinates. Ladders are ordered best-accuracy-first;
// PlanTiers builds one from a selector.Pareto frontier.
type TierSpec struct {
	// Model is the loaded model name serving this tier.
	Model string `json:"model"`
	// Accuracy is the tier's profiled accuracy, checked against the
	// policy's floor.
	Accuracy float64 `json:"accuracy"`
	// Latency is the profiled (offline cost-model) per-inference latency;
	// informational — the control loop acts on *measured* quantiles.
	Latency time.Duration `json:"-"`
	// Memory is the profiled footprint in bytes, checked against the
	// policy's cap.
	Memory int64 `json:"memory_bytes"`
	// Quantized marks int8 variants.
	Quantized bool `json:"quantized"`
	// Backend is the execution backend this tier's serving replicas
	// compile to ("float32" or "int8"): a "{model}-int8" rung is a
	// different kernel set, not a relabeled float model. Informational
	// here (the serving engine derives the backend from how the tier's
	// model was loaded); empty means float32.
	Backend string `json:"backend,omitempty"`
}

// Policy is the operator-declared SLO plus the control-loop tuning knobs.
// The zero value of every field but P95 means the documented default.
type Policy struct {
	// P95 is the SLO: the tail latency (enqueue→response, measured per
	// control tick) the node must keep the public model under. Required.
	P95 time.Duration
	// AccuracyFloor excludes tiers profiled below it (default 0: none).
	AccuracyFloor float64
	// MemoryCap excludes tiers whose profiled footprint exceeds it
	// (default 0: none).
	MemoryCap int64
	// Interval is the control tick period (default 500ms).
	Interval time.Duration
	// DowngradeAfter is how many consecutive SLO-missing ticks trigger a
	// downgrade (default 1: react within one interval).
	DowngradeAfter int
	// UpgradeAfter is how many consecutive comfortable ticks trigger an
	// upgrade — the hysteresis that prevents flapping (default 3).
	UpgradeAfter int
	// UpgradeHeadroom scales the SLO for the "comfortable" test: a tick
	// counts toward upgrading only when p95 ≤ UpgradeHeadroom × P95
	// (default 0.6). Ticks between the two thresholds are a dead band.
	UpgradeHeadroom float64
	// MinSamples is the fewest completed requests a tick needs to judge
	// the SLO; quieter ticks count as comfortable — an idle node heals
	// toward its top tier (default 8).
	MinSamples int
	// OffloadFraction is the share of requests sent to the cloud while
	// offload is active (default 0.5). Local overload rejections spill to
	// the cloud regardless.
	OffloadFraction float64
	// HistorySize bounds the switch-history ring in Status (default 32).
	HistorySize int

	// ExitThreshold enables the continuous early-exit knob for tiers
	// whose compiled plans support it: a capable tier rests at this
	// confidence threshold, and the pilot tunes the threshold *between*
	// ladder rungs — lowering it under SLO pressure (samples exit after
	// fewer recurrent steps) before paying a tier swap, and restoring it
	// before climbing back up. Must be in (0, 1]; 0 (the default)
	// disables the knob and leaves each pipeline's own threshold alone.
	ExitThreshold float64
	// ExitThresholdFloor bounds how far down the knob may be driven
	// (default 0.5). Once the active tier sits at the floor, the next
	// sustained SLO miss downgrades the tier instead.
	ExitThresholdFloor float64
	// ExitThresholdStep is the per-actuation knob adjustment
	// (default 0.1).
	ExitThresholdStep float64
}

func (p Policy) withDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = 500 * time.Millisecond
	}
	if p.DowngradeAfter <= 0 {
		p.DowngradeAfter = 1
	}
	if p.UpgradeAfter <= 0 {
		p.UpgradeAfter = 3
	}
	if p.UpgradeHeadroom <= 0 || p.UpgradeHeadroom > 1 {
		p.UpgradeHeadroom = 0.6
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 8
	}
	if p.OffloadFraction <= 0 || p.OffloadFraction > 1 {
		p.OffloadFraction = 0.5
	}
	if p.HistorySize <= 0 {
		p.HistorySize = 32
	}
	if p.ExitThreshold > 1 {
		p.ExitThreshold = 1
	}
	if p.ExitThreshold > 0 {
		if p.ExitThresholdStep <= 0 {
			p.ExitThresholdStep = 0.1
		}
		if p.ExitThresholdFloor <= 0 {
			p.ExitThresholdFloor = 0.5
		}
		if p.ExitThresholdFloor > p.ExitThreshold {
			p.ExitThresholdFloor = p.ExitThreshold
		}
	}
	return p
}

// Offloader executes one request on the fallback (cloud) side. input is
// the sample flattened to a vector; deadline ≤ 0 means none. The libei
// package provides the HTTP-backed implementation (RemoteOffloader).
type Offloader interface {
	Offload(ctx context.Context, model string, input []float32, deadline time.Duration) (class int, confidence float64, err error)
}

// Pilot is one node's SLO control loop over a serving engine. Create with
// New, optionally Start the periodic loop (tests drive Step directly),
// route inference through Infer/InferWithDeadline (it implements libei's
// Inferer), and Close on shutdown.
type Pilot struct {
	eng   *serving.Engine
	alias string
	tiers []TierSpec
	pol   Policy
	off   Offloader

	// mu guards the control state (tier index, hysteresis counters,
	// history); the serving fast path reads only offloading/counters.
	mu        sync.Mutex
	cur       int
	goodTicks int
	badTicks  int
	prev      map[string]serving.LatencySnapshot
	history   []SwitchEvent
	lastP95   time.Duration

	// exitThr is the knob's current value on the active tier;
	// exitCapable records whether the active tier's pipeline accepted it
	// (false when the policy knob is disabled or the tier's plan has no
	// exit graph). Both are re-armed on every tier switch.
	exitThr     float64
	exitCapable bool

	offloading atomic.Bool
	offSeq     atomic.Uint64

	ticks       atomic.Uint64
	ticksOver   atomic.Uint64
	downgrades  atomic.Uint64
	upgrades    atomic.Uint64
	localServed atomic.Uint64
	offloaded   atomic.Uint64
	offloadErrs atomic.Uint64
	spilled     atomic.Uint64

	startOnce sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}

	// measure reads a model's cumulative latency distribution; it is
	// eng.LatencyOf outside tests (which substitute synthetic snapshots
	// to drive the state machine deterministically).
	measure func(model string) (serving.LatencySnapshot, bool)
}

// New validates the policy, filters the ladder to tiers satisfying the
// accuracy floor and memory cap (ordered accuracy-descending), installs
// the top tier as the alias's serving route, and returns the pilot. Every
// tier's model must be loaded in the engine's manager — each rung is
// warmed once so a later emergency switch cannot fail on an unloadable
// model. off may be nil (no offload rung; the ladder bottoms out at its
// cheapest local tier).
func New(eng *serving.Engine, alias string, tiers []TierSpec, pol Policy, off Offloader) (*Pilot, error) {
	if eng == nil || alias == "" {
		return nil, fmt.Errorf("%w: engine and alias are required", ErrBadPolicy)
	}
	if pol.P95 <= 0 {
		return nil, fmt.Errorf("%w: P95 SLO is required", ErrBadPolicy)
	}
	pol = pol.withDefaults()
	ladder := make([]TierSpec, 0, len(tiers))
	for _, t := range tiers {
		if t.Model == "" || t.Accuracy < pol.AccuracyFloor {
			continue
		}
		if pol.MemoryCap > 0 && t.Memory > pol.MemoryCap {
			continue
		}
		ladder = append(ladder, t)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("%w: %d offered, floor %.3f, cap %d bytes",
			ErrNoTiers, len(tiers), pol.AccuracyFloor, pol.MemoryCap)
	}
	sort.SliceStable(ladder, func(i, j int) bool {
		if ladder[i].Accuracy != ladder[j].Accuracy {
			return ladder[i].Accuracy > ladder[j].Accuracy
		}
		return ladder[i].Latency < ladder[j].Latency
	})
	// Walk the ladder bottom-up so every rung is proven swappable and the
	// loop ends with the top tier active.
	for i := len(ladder) - 1; i >= 0; i-- {
		if err := eng.Swap(alias, ladder[i].Model); err != nil {
			return nil, fmt.Errorf("autopilot: tier %d (%s): %w", i, ladder[i].Model, err)
		}
	}
	p := &Pilot{
		eng: eng, alias: alias, tiers: ladder, pol: pol, off: off,
		prev:    map[string]serving.LatencySnapshot{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		measure: eng.LatencyOf,
	}
	p.armExit(ladder[0].Model)
	return p, nil
}

// armExit resets the early-exit knob for a newly active tier: a capable
// tier starts at the policy's resting threshold. Called under p.mu
// (or from New, before the control loop exists).
func (p *Pilot) armExit(model string) {
	p.exitCapable = false
	if p.pol.ExitThreshold <= 0 {
		return
	}
	p.exitThr = p.pol.ExitThreshold
	capable, err := p.eng.SetExitThreshold(model, p.exitThr)
	p.exitCapable = capable && err == nil
}

// nudgeExit moves the early-exit knob by delta on the active tier,
// clamped to [ExitThresholdFloor, ExitThreshold], and records the
// actuation in the switch history. Called under p.mu.
func (p *Pilot) nudgeExit(delta float64, now time.Time, p95 time.Duration, reason string) {
	// Snap to the exact bounds so repeated float steps terminate: the
	// knob must land *on* the floor (or resting value), not drift an ulp
	// above it and nudge forever.
	next := p.exitThr + delta
	if next < p.pol.ExitThresholdFloor+1e-9 {
		next = p.pol.ExitThresholdFloor
	}
	if next > p.pol.ExitThreshold-1e-9 {
		next = p.pol.ExitThreshold
	}
	model := p.tiers[p.cur].Model
	if _, err := p.eng.SetExitThreshold(model, next); err != nil {
		p.record(now, model, model, "exit-threshold-error: "+err.Error(), p95)
		return
	}
	p.exitThr = next
	p.record(now, model, model, fmt.Sprintf("%s: %.2f", reason, next), p95)
}

// Alias returns the public model name under control.
func (p *Pilot) Alias() string { return p.alias }

// Policy returns the effective (defaulted) policy.
func (p *Pilot) Policy() Policy { return p.pol }

// Start runs the control loop every Policy.Interval until Close. Calling
// Start more than once is a no-op.
func (p *Pilot) Start() {
	p.startOnce.Do(func() {
		p.started.Store(true)
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.pol.Interval)
			defer t.Stop()
			for {
				select {
				case <-p.stop:
					return
				case now := <-t.C:
					p.Step(now)
				}
			}
		}()
	})
}

// Close stops the control loop; the serving engine is left on whatever
// tier was active. Idempotent.
func (p *Pilot) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

// Step runs one control evaluation at the given time: measure the active
// tier's p95 over the interval since the previous Step, then downgrade,
// enter/leave offload, or upgrade per the hysteresis rules. Exported so
// tests and custom cadences can drive the loop deterministically.
func (p *Pilot) Step(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ticks.Add(1)
	model := p.tiers[p.cur].Model
	snap, ok := p.measure(model)
	if !ok {
		snap = serving.LatencySnapshot{}
	}
	delta := snap.Sub(p.prev[model])
	p.prev[model] = snap

	quiet := delta.Count < uint64(p.pol.MinSamples)
	p95 := delta.Quantile(0.95)
	p.lastP95 = p95
	switch {
	case !quiet && p95 > p.pol.P95:
		p.ticksOver.Add(1)
		p.goodTicks = 0
		p.badTicks++
		if p.badTicks < p.pol.DowngradeAfter {
			return
		}
		p.badTicks = 0
		// The exit threshold is a continuous knob between ladder rungs:
		// spend its range before paying a tier swap.
		if p.exitCapable && p.exitThr > p.pol.ExitThresholdFloor {
			p.nudgeExit(-p.pol.ExitThresholdStep, now, p95, "exit-threshold-down")
		} else if p.cur < len(p.tiers)-1 {
			p.switchTo(p.cur+1, now, p95, "slo-miss")
		} else if p.off != nil && !p.offloading.Load() {
			p.offloading.Store(true)
			p.record(now, model, "cloud", "offload-start", p95)
		}
	case quiet || p95 <= time.Duration(p.pol.UpgradeHeadroom*float64(p.pol.P95)):
		p.badTicks = 0
		p.goodTicks++
		if p.goodTicks < p.pol.UpgradeAfter {
			return
		}
		p.goodTicks = 0
		if p.offloading.Load() {
			p.offloading.Store(false)
			p.record(now, "cloud", model, "offload-stop", p95)
		} else if p.exitCapable && p.exitThr < p.pol.ExitThreshold {
			// Restore the knob to its resting value before climbing.
			p.nudgeExit(p.pol.ExitThresholdStep, now, p95, "exit-threshold-up")
		} else if p.cur > 0 {
			p.switchTo(p.cur-1, now, p95, "slo-headroom")
		}
	default:
		// Dead band between the miss and headroom thresholds: hold the
		// current tier, restart both streaks.
		p.badTicks = 0
		p.goodTicks = 0
	}
}

// switchTo actuates a tier change under p.mu.
func (p *Pilot) switchTo(to int, now time.Time, p95 time.Duration, reason string) {
	from := p.tiers[p.cur].Model
	target := p.tiers[to].Model
	if err := p.eng.Swap(p.alias, target); err != nil {
		p.record(now, from, target, "swap-error: "+err.Error(), p95)
		return
	}
	if to > p.cur {
		p.downgrades.Add(1)
	} else {
		p.upgrades.Add(1)
	}
	p.cur = to
	// The new tier starts at the resting exit threshold (if capable): a
	// cheaper rung does not inherit the pressure-lowered knob of the one
	// it replaced.
	p.armExit(target)
	// The target pipeline may be freshly built; rebase its interval so the
	// next Step judges only post-switch traffic.
	if snap, ok := p.measure(target); ok {
		p.prev[target] = snap
	} else {
		delete(p.prev, target)
	}
	p.record(now, from, target, reason, p95)
}

// record appends to the bounded switch-history ring under p.mu.
func (p *Pilot) record(now time.Time, from, to, reason string, p95 time.Duration) {
	ev := SwitchEvent{At: now, From: from, To: to, Reason: reason,
		P95MS: float64(p95) / float64(time.Millisecond)}
	p.history = append(p.history, ev)
	if over := len(p.history) - p.pol.HistorySize; over > 0 {
		p.history = append(p.history[:0], p.history[over:]...)
	}
}

// Infer serves one request for the controlled alias: locally on the
// active tier, or — while offload is active — on the cloud fallback for
// the configured fraction of traffic, with local overload spilling to the
// cloud instead of failing. Requests for other models pass through to the
// engine untouched. Together with InferWithDeadline this implements the
// libei server's Inferer hook.
func (p *Pilot) Infer(ctx context.Context, model string, x *tensor.Tensor) (serving.Result, error) {
	return p.infer(ctx, model, x, 0)
}

// InferWithDeadline is Infer with the serving engine's queue-deadline
// semantics; the deadline rides along on offloaded requests.
func (p *Pilot) InferWithDeadline(model string, x *tensor.Tensor, d time.Duration) (serving.Result, error) {
	return p.infer(context.Background(), model, x, d)
}

func (p *Pilot) infer(ctx context.Context, model string, x *tensor.Tensor, d time.Duration) (serving.Result, error) {
	offloadable := model == p.alias && p.off != nil && p.offloading.Load()
	if offloadable && p.takeOffload() {
		res, err := p.remote(ctx, model, x, d)
		if err == nil {
			return res, nil
		}
		// A failed cloud attempt falls back to the local tier: offload is
		// an optimization, never a new failure mode.
	}
	res, err := p.local(ctx, model, x, d)
	if err != nil && offloadable && errors.Is(err, serving.ErrOverloaded) {
		p.spilled.Add(1)
		if rres, rerr := p.remote(ctx, model, x, d); rerr == nil {
			return rres, nil
		}
		return res, err
	}
	if err == nil && model == p.alias {
		p.localServed.Add(1)
	}
	return res, err
}

func (p *Pilot) local(ctx context.Context, model string, x *tensor.Tensor, d time.Duration) (serving.Result, error) {
	if d > 0 {
		return p.eng.InferWithDeadline(model, x, d)
	}
	return p.eng.Infer(ctx, model, x)
}

// remote runs one request on the Offloader, translating the answer into a
// serving.Result whose Model is prefixed "cloud:".
func (p *Pilot) remote(ctx context.Context, model string, x *tensor.Tensor, d time.Duration) (serving.Result, error) {
	if d <= 0 {
		// Deadline propagation across the offload hop: a caller that bounded
		// the request through its context (the libei route does) gets the
		// remaining budget re-expressed as a wire-level deadline, so the
		// remote node sheds what can no longer be answered in time instead
		// of serving a response nobody is waiting for.
		if dl, ok := ctx.Deadline(); ok {
			if d = time.Until(dl); d <= 0 {
				return serving.Result{}, fmt.Errorf("%w: offload %s: budget exhausted", serving.ErrDeadline, model)
			}
		}
	}
	// The offload hop gets its own span (under the request's root) so a
	// stitched trace shows edge→cloud time separately from local serving.
	tb := obs.FromContext(ctx)
	start := time.Now()
	cls, conf, err := p.off.Offload(ctx, model, x.Data(), d)
	if tb != nil {
		tb.Add(obs.StageOffload, tb.Root(), start, time.Since(start),
			obs.Str("model", model))
	}
	if err != nil {
		p.offloadErrs.Add(1)
		return serving.Result{}, err
	}
	p.offloaded.Add(1)
	return serving.Result{Model: "cloud:" + model, Class: cls, Confidence: conf, BatchSize: 1}, nil
}

// takeOffload deterministically marks OffloadFraction of the request
// stream for the cloud: the integer part of n×f advances exactly once
// every 1/f requests, so the split needs no RNG and no lock.
func (p *Pilot) takeOffload() bool {
	f := p.pol.OffloadFraction
	if f >= 1 {
		return true
	}
	n := p.offSeq.Add(1)
	return uint64(float64(n)*f) > uint64(float64(n-1)*f)
}
