package autopilot

import (
	"sort"
	"time"

	"openei/internal/plan"
	"openei/internal/selector"
)

// SwitchEvent is one actuation in the pilot's history ring: a tier
// switch, an offload-mode transition, or a failed swap.
type SwitchEvent struct {
	At     time.Time `json:"at"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Reason string    `json:"reason"`
	// P95MS is the measured tail latency that triggered the event.
	P95MS float64 `json:"p95_ms"`
}

// TierStatus is one ladder rung in Status.
type TierStatus struct {
	Model     string  `json:"model"`
	Accuracy  float64 `json:"accuracy"`
	LatencyMS float64 `json:"latency_ms"`
	MemoryMB  float64 `json:"memory_mb"`
	Quantized bool    `json:"quantized"`
	Backend   string  `json:"backend,omitempty"`
	Active    bool    `json:"active"`
	// EarlyExit marks tiers whose compiled plan supports the early-exit
	// knob; ExitThreshold is that tier's live confidence threshold
	// (0 when early exit is disabled). Only reported once the tier's
	// pipeline has been built.
	EarlyExit     bool    `json:"early_exit,omitempty"`
	ExitThreshold float64 `json:"exit_threshold,omitempty"`
}

// Status is the autopilot's /ei_metrics view: current tier, ladder,
// switch history, offload ratio, and SLO attainment.
type Status struct {
	Alias     string       `json:"alias"`
	Tier      string       `json:"tier"`
	TierIndex int          `json:"tier_index"`
	Tiers     []TierStatus `json:"tiers"`

	Offloading bool `json:"offloading"`

	// ExitThreshold is the pilot's continuous early-exit knob on the
	// active tier: the confidence threshold currently applied, 0 when the
	// policy knob is disabled or the active tier cannot early-exit. It
	// moves between Policy.ExitThresholdFloor and Policy.ExitThreshold as
	// the control loop trades accuracy headroom against tail latency.
	ExitThreshold float64 `json:"exit_threshold,omitempty"`

	SLOP95MS      float64 `json:"slo_p95_ms"`
	AccuracyFloor float64 `json:"accuracy_floor"`
	LastP95MS     float64 `json:"last_p95_ms"`

	Ticks         uint64  `json:"ticks"`
	TicksOverSLO  uint64  `json:"ticks_over_slo"`
	SLOAttainment float64 `json:"slo_attainment"`

	Downgrades uint64 `json:"downgrades"`
	Upgrades   uint64 `json:"upgrades"`

	LocalServed   uint64  `json:"local_served"`
	Offloaded     uint64  `json:"offloaded"`
	OffloadErrors uint64  `json:"offload_errors"`
	Spilled       uint64  `json:"spilled_overload"`
	OffloadRatio  float64 `json:"offload_ratio"`

	History []SwitchEvent `json:"switch_history"`
}

// Status snapshots the pilot's state. Safe for concurrent use with the
// control loop and the serving path.
func (p *Pilot) Status() Status {
	p.mu.Lock()
	cur := p.cur
	lastP95 := p.lastP95
	history := append([]SwitchEvent(nil), p.history...)
	exitThr := p.exitThr
	exitCapable := p.exitCapable
	p.mu.Unlock()
	s := Status{
		Alias:         p.alias,
		Tier:          p.tiers[cur].Model,
		TierIndex:     cur,
		Offloading:    p.offloading.Load(),
		SLOP95MS:      float64(p.pol.P95) / float64(time.Millisecond),
		AccuracyFloor: p.pol.AccuracyFloor,
		LastP95MS:     float64(lastP95) / float64(time.Millisecond),
		Ticks:         p.ticks.Load(),
		TicksOverSLO:  p.ticksOver.Load(),
		Downgrades:    p.downgrades.Load(),
		Upgrades:      p.upgrades.Load(),
		LocalServed:   p.localServed.Load(),
		Offloaded:     p.offloaded.Load(),
		OffloadErrors: p.offloadErrs.Load(),
		Spilled:       p.spilled.Load(),
		History:       history,
	}
	if exitCapable {
		s.ExitThreshold = exitThr
	}
	for i, t := range p.tiers {
		ts := TierStatus{
			Model:     t.Model,
			Accuracy:  t.Accuracy,
			LatencyMS: float64(t.Latency) / float64(time.Millisecond),
			MemoryMB:  float64(t.Memory) / (1 << 20),
			Quantized: t.Quantized,
			Backend:   t.Backend,
			Active:    i == cur,
		}
		if thr, ok := p.eng.ExitThresholdOf(t.Model); ok {
			ts.EarlyExit = true
			ts.ExitThreshold = thr
		}
		s.Tiers = append(s.Tiers, ts)
	}
	if s.Ticks > 0 {
		s.SLOAttainment = 1 - float64(s.TicksOverSLO)/float64(s.Ticks)
	}
	if total := s.LocalServed + s.Offloaded; total > 0 {
		s.OffloadRatio = float64(s.Offloaded) / float64(total)
	}
	return s
}

// TierName is the default mapping from a selector choice to the loaded
// model name serving it: the model's own name, with "-int8" or "-int4"
// appended for quantized variants (matching how DeployTiers loads them).
func TierName(c selector.Choice) string {
	switch {
	case c.Int4:
		return c.ModelName + "-int4"
	case c.Quantized:
		return c.ModelName + "-int8"
	}
	return c.ModelName
}

// PlanTiers turns a Pareto frontier (selector.Pareto over profiled zoo
// variants) into a tier ladder: choices below the policy's accuracy floor
// or above its memory cap are dropped, the rest are ordered
// best-accuracy-first (ties: faster first) and deduplicated by served
// model name. name maps a choice to the model name it is loaded under
// (nil means TierName).
func PlanTiers(front []selector.Choice, name func(selector.Choice) string, pol Policy) []TierSpec {
	if name == nil {
		name = TierName
	}
	pol = pol.withDefaults()
	var tiers []TierSpec
	seen := map[string]bool{}
	for _, c := range front {
		if c.ALEM.Accuracy < pol.AccuracyFloor {
			continue
		}
		if pol.MemoryCap > 0 && c.ALEM.Memory > pol.MemoryCap {
			continue
		}
		n := name(c)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		backend := string(plan.Float32)
		switch {
		case c.Int4:
			backend = string(plan.Int4)
		case c.Quantized:
			backend = string(plan.Int8)
		}
		tiers = append(tiers, TierSpec{
			Model:     n,
			Accuracy:  c.ALEM.Accuracy,
			Latency:   c.ALEM.Latency,
			Memory:    c.ALEM.Memory,
			Quantized: c.Quantized,
			Backend:   backend,
		})
	}
	sort.SliceStable(tiers, func(i, j int) bool {
		if tiers[i].Accuracy != tiers[j].Accuracy {
			return tiers[i].Accuracy > tiers[j].Accuracy
		}
		return tiers[i].Latency < tiers[j].Latency
	})
	return tiers
}
