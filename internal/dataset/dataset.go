// Package dataset generates the synthetic, deterministic datasets the
// reproduction trains and evaluates on. The paper's scenarios use camera
// video (ImageNet-class vision models), household power meters, and
// wearable accelerometers; since those corpora cannot ship with the repo,
// this package procedurally renders:
//
//   - Shapes: a glyph-classification image set (circles, squares, crosses,
//     …) with position/scale jitter and pixel noise — the stand-in for the
//     object-recognition workloads of the safety/vehicle scenarios. It is
//     hard enough that model capacity matters, which is what the model
//     selector experiments need.
//   - Power: per-appliance power-draw signatures over time windows — the
//     smart-home power_monitor workload (IEHouse [78], PowerAnalyzer [77]).
//   - Activity: wearable accelerometer windows for activity recognition —
//     the connected-health workload ([12], [84]).
//
// Everything is driven by an explicit seed: the same seed yields the same
// dataset bytes on every platform.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// ShapeClassNames lists the glyph classes in label order.
var ShapeClassNames = []string{
	"circle", "square", "triangle", "cross", "hbars", "vbars", "diamond", "dot",
}

// ShapesConfig controls the procedural glyph renderer.
type ShapesConfig struct {
	Samples int     // total images
	Size    int     // image side length (images are 1×Size×Size)
	Classes int     // number of classes, ≤ len(ShapeClassNames)
	Noise   float64 // stddev of additive Gaussian pixel noise
	Seed    int64
}

// DefaultShapes is the configuration used across the experiments: small
// enough to train in CI, hard enough that capacity matters.
func DefaultShapes() ShapesConfig {
	return ShapesConfig{Samples: 1200, Size: 16, Classes: 6, Noise: 0.35, Seed: 1}
}

// Shapes renders a glyph-classification dataset split into train and test
// partitions (85/15).
func Shapes(cfg ShapesConfig) (train, test nn.Dataset, err error) {
	if cfg.Samples <= 0 || cfg.Size < 8 {
		return nn.Dataset{}, nn.Dataset{}, fmt.Errorf("dataset: bad shapes config %+v", cfg)
	}
	if cfg.Classes <= 1 || cfg.Classes > len(ShapeClassNames) {
		return nn.Dataset{}, nn.Dataset{}, fmt.Errorf("dataset: classes %d out of range [2,%d]", cfg.Classes, len(ShapeClassNames))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := tensor.New(cfg.Samples, 1, cfg.Size, cfg.Size)
	y := make([]int, cfg.Samples)
	img := make([]float32, cfg.Size*cfg.Size)
	per := cfg.Size * cfg.Size
	for i := 0; i < cfg.Samples; i++ {
		cls := rng.Intn(cfg.Classes)
		y[i] = cls
		renderGlyph(img, cfg.Size, cls, rng)
		if cfg.Noise > 0 {
			for j := range img {
				img[j] += float32(rng.NormFloat64() * cfg.Noise)
			}
		}
		copy(x.Data()[i*per:(i+1)*per], img)
	}
	cut := cfg.Samples * 85 / 100
	all := nn.Dataset{X: x, Y: y}
	train, err = all.Slice(0, cut)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	test, err = all.Slice(cut, cfg.Samples)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	return train, test, nil
}

// renderGlyph draws one centered-ish glyph into img (zeroed first).
func renderGlyph(img []float32, size, cls int, rng *rand.Rand) {
	for i := range img {
		img[i] = 0
	}
	// Jittered center and scale.
	cx := float64(size)/2 + rng.Float64()*float64(size)/4 - float64(size)/8
	cy := float64(size)/2 + rng.Float64()*float64(size)/4 - float64(size)/8
	r := float64(size) * (0.22 + rng.Float64()*0.12)
	set := func(x, y int, v float32) {
		if x >= 0 && x < size && y >= 0 && y < size {
			img[y*size+x] = v
		}
	}
	switch cls % len(ShapeClassNames) {
	case 0: // circle outline
		for t := 0.0; t < 2*math.Pi; t += 0.05 {
			set(int(cx+r*math.Cos(t)), int(cy+r*math.Sin(t)), 1)
		}
	case 1: // filled square
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				set(int(cx+dx), int(cy+dy), 1)
			}
		}
	case 2: // triangle outline
		for t := 0.0; t <= 1.0; t += 0.02 {
			x1, y1 := cx, cy-r
			x2, y2 := cx-r, cy+r
			x3, y3 := cx+r, cy+r
			set(int(x1+(x2-x1)*t), int(y1+(y2-y1)*t), 1)
			set(int(x2+(x3-x2)*t), int(y2+(y3-y2)*t), 1)
			set(int(x3+(x1-x3)*t), int(y3+(y1-y3)*t), 1)
		}
	case 3: // cross
		for d := -r; d <= r; d++ {
			set(int(cx+d), int(cy), 1)
			set(int(cx), int(cy+d), 1)
		}
	case 4: // horizontal bars
		for dy := -r; dy <= r; dy += 3 {
			for dx := -r; dx <= r; dx++ {
				set(int(cx+dx), int(cy+dy), 1)
			}
		}
	case 5: // vertical bars
		for dx := -r; dx <= r; dx += 3 {
			for dy := -r; dy <= r; dy++ {
				set(int(cx+dx), int(cy+dy), 1)
			}
		}
	case 6: // diamond outline
		for t := 0.0; t <= 1.0; t += 0.02 {
			set(int(cx+r*t), int(cy-r*(1-t)), 1)
			set(int(cx+r*(1-t)), int(cy+r*t), 1)
			set(int(cx-r*t), int(cy+r*(1-t)), 1)
			set(int(cx-r*(1-t)), int(cy-r*t), 1)
		}
	case 7: // small filled dot
		rr := r / 2
		for dy := -rr; dy <= rr; dy++ {
			for dx := -rr; dx <= rr; dx++ {
				if dx*dx+dy*dy <= rr*rr {
					set(int(cx+dx), int(cy+dy), 1)
				}
			}
		}
	}
}

// PowerClassNames lists appliance states for the power-monitor task.
var PowerClassNames = []string{"idle", "fridge", "kettle", "washer", "oven"}

// PowerConfig controls the appliance power-signature generator.
type PowerConfig struct {
	Samples int
	Window  int // samples per window (1-D feature vector length)
	Noise   float64
	Seed    int64
	// Bias shifts every draw level, modelling a home whose appliances
	// draw differently from the training corpus (used by the Dataflow 3
	// personalization experiments).
	Bias float64
}

// DefaultPower is the standard configuration for the smart-home workload.
func DefaultPower() PowerConfig {
	return PowerConfig{Samples: 800, Window: 32, Noise: 0.08, Seed: 2}
}

// Power generates appliance power windows. Each class has a characteristic
// draw pattern (level, periodicity, spikes).
func Power(cfg PowerConfig) (train, test nn.Dataset, err error) {
	if cfg.Samples <= 0 || cfg.Window < 8 {
		return nn.Dataset{}, nn.Dataset{}, fmt.Errorf("dataset: bad power config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := len(PowerClassNames)
	x := tensor.New(cfg.Samples, cfg.Window)
	y := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		cls := rng.Intn(classes)
		y[i] = cls
		row := x.Data()[i*cfg.Window : (i+1)*cfg.Window]
		phase := rng.Float64() * 2 * math.Pi
		for j := range row {
			t := float64(j)
			var v float64
			switch cls {
			case 0: // idle: near-zero
				v = 0.02
			case 1: // fridge: low level with slow compressor cycle
				v = 0.15 + 0.1*math.Sin(t/6+phase)
			case 2: // kettle: high flat plateau that switches off
				if j < cfg.Window*2/3 {
					v = 0.9
				} else {
					v = 0.05
				}
			case 3: // washer: oscillating drum load
				v = 0.45 + 0.3*math.Sin(t/2+phase)
			case 4: // oven: thermostat square wave
				if math.Mod(t/8+phase, 2) < 1 {
					v = 0.75
				} else {
					v = 0.2
				}
			}
			row[j] = float32(v + cfg.Bias + rng.NormFloat64()*cfg.Noise)
		}
	}
	cut := cfg.Samples * 85 / 100
	all := nn.Dataset{X: x, Y: y}
	train, err = all.Slice(0, cut)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	test, err = all.Slice(cut, cfg.Samples)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	return train, test, nil
}

// ActivityClassNames lists wearable activities for the health task.
var ActivityClassNames = []string{"rest", "walk", "run", "fall"}

// ActivityConfig controls the accelerometer window generator.
type ActivityConfig struct {
	Samples int
	Window  int // time steps; features are 3 axes × Window flattened
	Noise   float64
	Seed    int64
	// Bias shifts the accelerometer baseline, modelling per-user sensor
	// placement. Transfer-learning experiments use a nonzero Bias to create
	// a personalized distribution (Dataflow 3).
	Bias float64
}

// DefaultActivity is the standard configuration for the health workload.
func DefaultActivity() ActivityConfig {
	return ActivityConfig{Samples: 800, Window: 16, Noise: 0.15, Seed: 3}
}

// Activity generates 3-axis accelerometer windows, flattened to
// (samples, 3*Window).
func Activity(cfg ActivityConfig) (train, test nn.Dataset, err error) {
	if cfg.Samples <= 0 || cfg.Window < 8 {
		return nn.Dataset{}, nn.Dataset{}, fmt.Errorf("dataset: bad activity config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := len(ActivityClassNames)
	width := 3 * cfg.Window
	x := tensor.New(cfg.Samples, width)
	y := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		cls := rng.Intn(classes)
		y[i] = cls
		row := x.Data()[i*width : (i+1)*width]
		phase := rng.Float64() * 2 * math.Pi
		for j := 0; j < cfg.Window; j++ {
			t := float64(j)
			var ax, ay, az float64
			switch cls {
			case 0: // rest: gravity only
				ax, ay, az = 0, 0, 1
			case 1: // walk: gentle periodic sway
				ax = 0.3 * math.Sin(t/2+phase)
				ay = 0.2 * math.Cos(t/2+phase)
				az = 1 + 0.15*math.Sin(t+phase)
			case 2: // run: stronger, faster
				ax = 0.8 * math.Sin(t+phase)
				ay = 0.6 * math.Cos(t+phase)
				az = 1 + 0.5*math.Sin(2*t+phase)
			case 3: // fall: spike then flat non-vertical rest
				if j == cfg.Window/2 {
					ax, ay, az = 2.5, 2.0, -1
				} else if j > cfg.Window/2 {
					ax, ay, az = 1, 0, 0.1
				} else {
					ax, ay, az = 0.1, 0.1, 1
				}
			}
			row[j] = float32(ax + cfg.Bias + rng.NormFloat64()*cfg.Noise)
			row[cfg.Window+j] = float32(ay + cfg.Bias + rng.NormFloat64()*cfg.Noise)
			row[2*cfg.Window+j] = float32(az + cfg.Bias + rng.NormFloat64()*cfg.Noise)
		}
	}
	cut := cfg.Samples * 85 / 100
	all := nn.Dataset{X: x, Y: y}
	train, err = all.Slice(0, cut)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	test, err = all.Slice(cut, cfg.Samples)
	if err != nil {
		return nn.Dataset{}, nn.Dataset{}, err
	}
	return train, test, nil
}

// ActivityTimeMajor re-lays an Activity dataset from axis-major
// ([ax_0..ax_{W−1}, ay…, az…]) to time-major ([ax_0, ay_0, az_0, ax_1, …])
// so sequence models (nn.FastGRNN) can consume it step by step. window is
// the Activity window length used to generate d.
func ActivityTimeMajor(d nn.Dataset, window int) (nn.Dataset, error) {
	if d.X == nil {
		return nn.Dataset{}, fmt.Errorf("dataset: ActivityTimeMajor on empty dataset")
	}
	if d.X.Dims() != 2 || d.X.Dim(1) != 3*window {
		return nn.Dataset{}, fmt.Errorf("dataset: activity data with %v does not match window %d", d.X.Shape(), window)
	}
	n := d.Samples()
	out := tensor.New(n, 3*window)
	for i := 0; i < n; i++ {
		src := d.X.Data()[i*3*window : (i+1)*3*window]
		dst := out.Data()[i*3*window : (i+1)*3*window]
		for t := 0; t < window; t++ {
			dst[t*3+0] = src[t]
			dst[t*3+1] = src[window+t]
			dst[t*3+2] = src[2*window+t]
		}
	}
	return nn.Dataset{X: out, Y: append([]int(nil), d.Y...)}, nil
}
