package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"openei/internal/nn"
	"openei/internal/tensor"
)

func TestShapesDeterministic(t *testing.T) {
	cfg := DefaultShapes()
	cfg.Samples = 60
	tr1, te1, err := Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, te2, err := Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(tr1.X, tr2.X, 0) || !tensor.Equal(te1.X, te2.X, 0) {
		t.Error("same seed must produce identical datasets")
	}
	for i := range tr1.Y {
		if tr1.Y[i] != tr2.Y[i] {
			t.Fatal("labels differ between identical seeds")
		}
	}
}

func TestShapesSplitSizes(t *testing.T) {
	cfg := DefaultShapes()
	cfg.Samples = 100
	tr, te, err := Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Samples() != 85 || te.Samples() != 15 {
		t.Errorf("split = %d/%d, want 85/15", tr.Samples(), te.Samples())
	}
	shape := tr.X.Shape()
	if shape[1] != 1 || shape[2] != cfg.Size || shape[3] != cfg.Size {
		t.Errorf("image shape = %v", shape)
	}
}

func TestShapesLabelsInRange(t *testing.T) {
	cfg := DefaultShapes()
	cfg.Samples = 200
	tr, te, err := Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, d := range []nn.Dataset{tr, te} {
		for _, y := range d.Y {
			if y < 0 || y >= cfg.Classes {
				t.Fatalf("label %d out of range", y)
			}
			seen[y] = true
		}
	}
	if len(seen) != cfg.Classes {
		t.Errorf("only %d of %d classes appear in 200 samples", len(seen), cfg.Classes)
	}
}

func TestShapesConfigValidation(t *testing.T) {
	bad := []ShapesConfig{
		{Samples: 0, Size: 16, Classes: 4},
		{Samples: 10, Size: 2, Classes: 4},
		{Samples: 10, Size: 16, Classes: 1},
		{Samples: 10, Size: 16, Classes: 99},
	}
	for _, cfg := range bad {
		if _, _, err := Shapes(cfg); err == nil {
			t.Errorf("Shapes(%+v) should fail", cfg)
		}
	}
}

// A tiny CNN must reach well-above-chance accuracy on the shapes data;
// this is the sanity check that the dataset is learnable.
func TestShapesLearnable(t *testing.T) {
	cfg := ShapesConfig{Samples: 400, Size: 16, Classes: 4, Noise: 0.2, Seed: 5}
	tr, te, err := Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	conv := tensor.Conv2DSpec{InC: 1, InH: 16, InW: 16, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	pool := tensor.PoolSpec{C: 6, H: 16, W: 16, K: 2, Stride: 2}
	m := nn.MustModel("probe", []int{1, 16, 16}, []nn.LayerSpec{
		{Type: "conv2d", Conv: &conv},
		{Type: "relu"},
		{Type: "maxpool", Pool: &pool},
		{Type: "flatten"},
		{Type: "dense", In: 6 * 8 * 8, Out: 4},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, tr, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(m, te.X, te.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("CNN test accuracy on shapes = %v, want ≥ 0.6 (chance = 0.25)", acc)
	}
}

func TestPowerLearnableAndDeterministic(t *testing.T) {
	cfg := DefaultPower()
	cfg.Samples = 300
	tr, te, err := Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, err := Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(tr.X, tr2.X, 0) {
		t.Error("power dataset not deterministic")
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.MustModel("p", []int{cfg.Window}, []nn.LayerSpec{
		{Type: "dense", In: cfg.Window, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: len(PowerClassNames)},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, tr, nn.TrainConfig{Epochs: 12, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(m, te.X, te.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("MLP accuracy on power = %v, want ≥ 0.7 (chance = 0.2)", acc)
	}
}

func TestActivityBiasShiftsDistribution(t *testing.T) {
	cfg := DefaultActivity()
	cfg.Samples = 100
	trA, _, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Bias = 0.8
	trB, _, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meanA := trA.X.Sum() / float64(trA.X.Len())
	meanB := trB.X.Sum() / float64(trB.X.Len())
	if meanB-meanA < 0.5 {
		t.Errorf("bias 0.8 shifted mean by only %v", meanB-meanA)
	}
}

func TestActivityLearnable(t *testing.T) {
	cfg := DefaultActivity()
	cfg.Samples = 400
	tr, te, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in := 3 * cfg.Window
	m := nn.MustModel("a", []int{in}, []nn.LayerSpec{
		{Type: "dense", In: in, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: len(ActivityClassNames)},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, tr, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(m, te.X, te.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("MLP accuracy on activity = %v, want ≥ 0.7 (chance = 0.25)", acc)
	}
}

// Property: every generated image has pixel values bounded by glyph value
// plus a plausible noise envelope.
func TestShapesPixelRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := ShapesConfig{Samples: 10, Size: 12, Classes: 5, Noise: 0.1, Seed: seed}
		tr, te, err := Shapes(cfg)
		if err != nil {
			return false
		}
		for _, d := range []nn.Dataset{tr, te} {
			for _, v := range d.X.Data() {
				if v < -1 || v > 2 { // glyph ∈ {0,1}, noise σ=0.1 → ±1 is ~10σ
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
