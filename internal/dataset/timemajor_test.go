package dataset

import (
	"math/rand"
	"testing"

	"openei/internal/nn"
)

func TestActivityTimeMajorLayout(t *testing.T) {
	cfg := ActivityConfig{Samples: 20, Window: 8, Noise: 0, Seed: 40}
	train, _, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := ActivityTimeMajor(train, cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Samples() != train.Samples() {
		t.Fatalf("sample count changed: %d vs %d", tm.Samples(), train.Samples())
	}
	// Element (sample i, time t, axis a) must move from axis-major index
	// a*W+t to time-major index t*3+a.
	w := cfg.Window
	for i := 0; i < 5; i++ {
		for tstep := 0; tstep < w; tstep++ {
			for axis := 0; axis < 3; axis++ {
				want := train.X.At(i, axis*w+tstep)
				got := tm.X.At(i, tstep*3+axis)
				if want != got {
					t.Fatalf("sample %d t=%d axis=%d: %v != %v", i, tstep, axis, got, want)
				}
			}
		}
	}
	// Labels preserved.
	for i := range tm.Y {
		if tm.Y[i] != train.Y[i] {
			t.Fatal("labels changed")
		}
	}
}

func TestActivityTimeMajorValidation(t *testing.T) {
	if _, err := ActivityTimeMajor(nn.Dataset{}, 8); err == nil {
		t.Error("empty dataset should fail")
	}
	cfg := ActivityConfig{Samples: 10, Window: 8, Seed: 1}
	train, _, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ActivityTimeMajor(train, 16); err == nil {
		t.Error("mismatched window should fail")
	}
}

// FastGRNN must learn the activity task from the time-major layout — the
// §IV.A.2 kilobyte-RNN running on the paper's wearable workload.
func TestFastGRNNLearnsActivity(t *testing.T) {
	cfg := ActivityConfig{Samples: 500, Window: 16, Noise: 0.15, Seed: 41}
	train, test, err := Activity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmTrain, err := ActivityTimeMajor(train, cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	tmTest, err := ActivityTimeMajor(test, cfg.Window)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.MustModel("act-rnn", []int{48}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: cfg.Window, D: 3, H: 12}},
		{Type: "dense", In: 12, Out: len(ActivityClassNames)},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, tmTrain, nn.TrainConfig{Epochs: 15, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Accuracy(m, tmTest.X, tmTest.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("FastGRNN activity accuracy = %v, want ≥ 0.7 (chance 0.25)", acc)
	}
	// And it is kilobyte-scale.
	if m.WeightBytes() > 8<<10 {
		t.Errorf("FastGRNN model = %d bytes, want ≤ 8kB", m.WeightBytes())
	}
}
