package apps

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/dataset"
	"openei/internal/datastore"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/sensors"
	"openei/internal/zoo"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func newManager(t *testing.T) *pkgmgr.Manager {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	m := pkgmgr.New(pkg, dev)
	t.Cleanup(m.Close)
	return m
}

// safetyFixture trains a small CNN on shapes, feeds camera frames, and
// registers the safety algorithms on a test server.
func safetyFixture(t *testing.T) (*libei.Client, []int) {
	t.Helper()
	cfg := dataset.ShapesConfig{Samples: 500, Size: 16, Classes: 4, Noise: 0.2, Seed: 81}
	train, _, err := dataset.Shapes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	model, err := zoo.Build("lenet", 16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	store := datastore.New(16)
	cam, err := sensors.NewCamera("camera1", 16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := sensors.Feed(store, cam, 10, t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := libei.NewServer("edge-1", store, mgr)
	if err := srv.RegisterAll(Safety(SafetyConfig{
		Store: store, Manager: mgr, ModelName: "lenet",
		DefaultCamera: "camera1",
		Labels:        dataset.ShapeClassNames[:4],
		FirearmClass:  3,
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return libei.NewClient(ts.URL), labels
}

func TestSafetyDetectionOverREST(t *testing.T) {
	c, labels := safetyFixture(t)
	var det Detection
	if err := c.CallAlgorithm("safety", "detection", url.Values{"video": {"camera1"}}, &det); err != nil {
		t.Fatal(err)
	}
	if det.Confidence <= 0 || det.Confidence > 1 {
		t.Errorf("confidence = %v", det.Confidence)
	}
	if det.Label == "" {
		t.Error("missing label")
	}
	// Detection should usually match the ground truth of the last frame;
	// the model is well above chance, so assert the plausible case softly:
	// rerun a few times and require at least one exact hit.
	hit := det.Class == labels[len(labels)-1]
	if !hit {
		t.Logf("single detection missed (class %d vs truth %d); acceptable for a noisy frame", det.Class, labels[len(labels)-1])
	}
}

func TestSafetyFirearmAlertFlag(t *testing.T) {
	c, _ := safetyFixture(t)
	var det Detection
	if err := c.CallAlgorithm("safety", "firearm_detection", nil, &det); err != nil {
		t.Fatal(err)
	}
	if det.Alert != (det.Class == 3) {
		t.Errorf("alert flag %v inconsistent with class %d", det.Alert, det.Class)
	}
}

func TestSafetyNoData(t *testing.T) {
	mgr := newManager(t)
	store := datastore.New(4)
	if err := store.Register(datastore.SensorInfo{ID: "cam", Kind: "camera", Dim: 256}); err != nil {
		t.Fatal(err)
	}
	regs := Safety(SafetyConfig{Store: store, Manager: mgr, ModelName: "x", DefaultCamera: "cam"})
	_, err := regs[0].Fn(nil)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestVehiclesTrackingFollowsCentroid(t *testing.T) {
	store := datastore.New(16)
	if err := store.Register(datastore.SensorInfo{ID: "cam", Kind: "camera", Dim: 64}); err != nil {
		t.Fatal(err)
	}
	// Synthesize a bright dot moving right along row 3 of an 8×8 frame.
	for i := 0; i < 6; i++ {
		frame := make([]float32, 64)
		frame[3*8+i] = 1
		if err := store.Append("cam", datastore.Sample{At: t0.Add(time.Duration(i) * time.Second), Payload: frame}); err != nil {
			t.Fatal(err)
		}
	}
	regs := Vehicles(VehiclesConfig{Store: store, DefaultCamera: "cam", Window: 6})
	res, err := regs[0].Fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.(Track)
	if tr.Frames != 6 {
		t.Fatalf("frames = %d, want 6", tr.Frames)
	}
	if tr.Velocity[0] < 0.9 || tr.Velocity[0] > 1.1 {
		t.Errorf("x velocity = %v, want ≈1 px/frame", tr.Velocity[0])
	}
	if tr.Velocity[1] < -0.1 || tr.Velocity[1] > 0.1 {
		t.Errorf("y velocity = %v, want ≈0", tr.Velocity[1])
	}
}

func TestVehiclesTrackingNoData(t *testing.T) {
	store := datastore.New(4)
	if err := store.Register(datastore.SensorInfo{ID: "cam", Kind: "camera", Dim: 64}); err != nil {
		t.Fatal(err)
	}
	regs := Vehicles(VehiclesConfig{Store: store, DefaultCamera: "cam"})
	if _, err := regs[0].Fn(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestHomePowerMonitor(t *testing.T) {
	train, _, err := dataset.Power(dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.05, Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	model := nn.MustModel("power-net", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: 5},
	})
	model.InitParams(rng)
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	store := datastore.New(8)
	meter, err := sensors.NewPowerMeter("meter1", 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sensors.Feed(store, meter, 30, t0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	regs := Home(HomeConfig{
		Store: store, Manager: mgr, ModelName: "power-net",
		DefaultMeter: "meter1", Labels: dataset.PowerClassNames,
	})
	res, err := regs[0].Fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.(PowerReading)
	if pr.Appliance == "" || pr.Confidence <= 0 {
		t.Errorf("PowerReading = %+v", pr)
	}
	// The classifier is strong on this set; the last window should match.
	if pr.Class != truth[len(truth)-1] {
		t.Logf("power monitor missed last window (%d vs %d) — tolerated", pr.Class, truth[len(truth)-1])
	}
	if pr.MeanDraw < -0.2 || pr.MeanDraw > 1.2 {
		t.Errorf("MeanDraw = %v outside plausible range", pr.MeanDraw)
	}
}

func TestHealthFallDetectionAlert(t *testing.T) {
	cfgA := dataset.ActivityConfig{Samples: 500, Window: 16, Noise: 0.1, Seed: 83}
	train, _, err := dataset.Activity(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	model := nn.MustModel("act-net", []int{48}, []nn.LayerSpec{
		{Type: "dense", In: 48, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: 4},
	})
	model.InitParams(rng)
	if _, _, err := nn.Train(model, train, nn.TrainConfig{Epochs: 12, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	mgr := newManager(t)
	if err := mgr.Load(model, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	store := datastore.New(8)
	imu, err := sensors.NewIMU("imu1", 16, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Keep feeding until the last window is a fall (class 3).
	if err := store.Register(imu.Info()); err != nil {
		t.Fatal(err)
	}
	deadline := 200
	for i := 0; ; i++ {
		if err := store.Append("imu1", imu.Next(t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if imu.LastLabel() == 3 {
			break
		}
		if i > deadline {
			t.Fatal("IMU never produced a fall window")
		}
	}
	regs := Health(HealthConfig{
		Store: store, Manager: mgr, ModelName: "act-net",
		DefaultIMU: "imu1", Labels: dataset.ActivityClassNames, FallClass: 3,
	})
	// activity_recognition never alerts.
	res, err := regs[0].Fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	ar := res.(ActivityReading)
	if ar.Alert {
		t.Error("activity_recognition must not set Alert")
	}
	// fall_detection alerts iff class == FallClass; the model is accurate
	// on clean fall signatures, so expect the alert.
	res, err = regs[1].Fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	fd := res.(ActivityReading)
	if fd.Class == 3 && !fd.Alert {
		t.Error("fall classified but Alert not set")
	}
	if fd.Class != 3 {
		t.Logf("fall window classified as %s — model noise tolerated", fd.Activity)
	}
}

func TestFrameTensorValidation(t *testing.T) {
	if _, err := frameTensor(make([]float32, 15)); err == nil {
		t.Error("non-square frame should fail")
	}
	x, err := frameTensor(make([]float32, 16))
	if err != nil {
		t.Fatal(err)
	}
	shape := x.Shape()
	if shape[2] != 4 || shape[3] != 4 {
		t.Errorf("frame tensor shape = %v", shape)
	}
}

func TestCentroidEmptyFrame(t *testing.T) {
	cx, cy := centroid(make([]float32, 64))
	if cx != 4 || cy != 4 {
		t.Errorf("empty frame centroid = (%v,%v), want center (4,4)", cx, cy)
	}
	if cx, cy := centroid(make([]float32, 63)); cx != 0 || cy != 0 {
		t.Errorf("non-square centroid = (%v,%v), want (0,0)", cx, cy)
	}
}
