package apps

import (
	"errors"
	"net/http/httptest"
	"net/url"
	"testing"
	"testing/quick"
	"time"

	"openei/internal/datastore"
	"openei/internal/libei"
	"openei/internal/sensors"
)

// maskFixture feeds one camera and registers only the mask algorithm.
func maskFixture(t *testing.T) (*libei.Client, *datastore.Store) {
	t.Helper()
	store := datastore.New(8)
	cam, err := sensors.NewCamera("camera1", 16, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sensors.Feed(store, cam, 4, t0, time.Second); err != nil {
		t.Fatal(err)
	}
	srv := libei.NewServer("edge-1", store, newManager(t))
	if err := srv.RegisterAll(Mask(MaskConfig{Store: store, DefaultCamera: "camera1"})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return libei.NewClient(ts.URL), store
}

func TestMaskBlanksSubjectOverREST(t *testing.T) {
	c, store := maskFixture(t)
	before, err := store.Latest("camera1")
	if err != nil {
		t.Fatal(err)
	}
	countBright := func(p []float32) int {
		n := 0
		for _, v := range p {
			if v >= 0.5 {
				n++
			}
		}
		return n
	}
	brightBefore := countBright(before.Payload)
	if brightBefore == 0 {
		t.Fatal("fixture frame has no subject")
	}

	var masked MaskedFrame
	if err := c.CallAlgorithm("safety", "mask", url.Values{"video": {"camera1"}}, &masked); err != nil {
		t.Fatal(err)
	}
	if masked.TotalPixels != 256 || len(masked.Frame) != 256 {
		t.Fatalf("frame size: %d/%d", masked.TotalPixels, len(masked.Frame))
	}
	if got := countBright(masked.Frame); got != 0 {
		t.Fatalf("masked frame still has %d bright pixels (was %d)", got, brightBefore)
	}
	if masked.MaskedPixels < brightBefore {
		t.Fatalf("masked %d < subject %d", masked.MaskedPixels, brightBefore)
	}
	// The box must be valid and contain every pre-mask bright pixel.
	x0, y0, x1, y1 := masked.Box[0], masked.Box[1], masked.Box[2], masked.Box[3]
	if x0 > x1 || y0 > y1 {
		t.Fatalf("empty box %v despite a subject", masked.Box)
	}
	for i, v := range before.Payload {
		if v < 0.5 {
			continue
		}
		x, y := i%16, i/16
		if x < x0 || x > x1 || y < y0 || y > y1 {
			t.Fatalf("bright pixel (%d,%d) outside box %v", x, y, masked.Box)
		}
	}
	// The store still holds the unmasked original: masking is applied to
	// the outgoing copy, not the local data (the edge keeps its raw data).
	after, err := store.Latest("camera1")
	if err != nil {
		t.Fatal(err)
	}
	if countBright(after.Payload) != brightBefore {
		t.Fatal("mask mutated the stored frame")
	}
}

func TestMaskEmptyFrameUntouched(t *testing.T) {
	out, err := maskFrame(make([]float32, 64), 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaskedPixels != 0 {
		t.Fatalf("masked %d pixels of an empty frame", out.MaskedPixels)
	}
	if out.Box != [4]int{0, 0, -1, -1} {
		t.Fatalf("box = %v, want empty sentinel", out.Box)
	}
	for _, v := range out.Frame {
		if v != 0 {
			t.Fatal("empty frame changed")
		}
	}
}

func TestMaskRejectsNonSquare(t *testing.T) {
	if _, err := maskFrame(make([]float32, 10), 0.5, 1); err == nil {
		t.Fatal("non-square frame accepted")
	}
}

func TestMaskNoData(t *testing.T) {
	store := datastore.New(4)
	if err := store.Register(datastore.SensorInfo{ID: "cam", Kind: "camera", Dim: 256}); err != nil {
		t.Fatal(err)
	}
	regs := Mask(MaskConfig{Store: store, DefaultCamera: "cam"})
	if _, err := regs[0].Fn(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

// Property: after masking, no pixel ≥ threshold survives, and pixels
// outside the box are bit-identical to the input.
func TestMaskProperty(t *testing.T) {
	check := func(raw []float32) bool {
		// Shape into an 8×8 frame regardless of generator output length.
		frame := make([]float32, 64)
		for i := range frame {
			if len(raw) > 0 {
				frame[i] = raw[i%len(raw)]
			}
			if frame[i] != frame[i] { // NaN breaks the identity check below
				frame[i] = 0
			}
		}
		out, err := maskFrame(frame, 0.5, 1)
		if err != nil {
			return false
		}
		x0, y0, x1, y1 := out.Box[0], out.Box[1], out.Box[2], out.Box[3]
		for i, v := range out.Frame {
			x, y := i%8, i/8
			inBox := x >= x0 && x <= x1 && y >= y0 && y <= y1
			if inBox && v != 0 {
				return false
			}
			if !inBox && v != frame[i] {
				return false
			}
			if v >= 0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
