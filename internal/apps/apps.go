// Package apps wires the paper's four application scenarios (§V) into
// libei algorithm registrations, giving exactly the URLs of Figure 4:
//
//	/ei_algorithms/safety/detection           — VAPS object detection
//	/ei_algorithms/safety/firearm_detection   — VAPS alerting
//	/ei_algorithms/vehicles/tracking          — CAV object tracking
//	/ei_algorithms/home/power_monitor         — smart-home appliance state
//	/ei_algorithms/health/activity_recognition — wearable activity
//	/ei_algorithms/health/fall_detection      — pre-hospital EMS alerting
//
// Each algorithm reads its input from the node's datastore (the data the
// sensors produced) and runs inference through the package manager, so a
// request exercises the full Figure 4 pipeline.
package apps

import (
	"errors"
	"fmt"
	"math"
	"net/url"

	"openei/internal/datastore"
	"openei/internal/libei"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// ErrNoData is returned when a scenario's sensor has produced no samples.
var ErrNoData = errors.New("apps: no sensor data")

// Detection is the response of the safety detection algorithms.
type Detection struct {
	Class      int     `json:"class"`
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
	Alert      bool    `json:"alert,omitempty"`
}

// frameTensor converts a flattened square camera frame to model input.
func frameTensor(payload []float32) (*tensor.Tensor, error) {
	size := int(math.Round(math.Sqrt(float64(len(payload)))))
	if size*size != len(payload) {
		return nil, fmt.Errorf("apps: frame of %d values is not square", len(payload))
	}
	data := append([]float32(nil), payload...)
	return tensor.NewFrom(data, 1, 1, size, size)
}

// classify runs the latest sample of sensorID through modelName at
// real-time priority (VAPS and EMS are the paper's urgent workloads).
func classify(store *datastore.Store, mgr *pkgmgr.Manager, modelName, sensorID string, toTensor func([]float32) (*tensor.Tensor, error)) (int, float64, error) {
	sample, err := store.Latest(sensorID)
	if err != nil {
		if errors.Is(err, datastore.ErrEmpty) {
			return 0, 0, fmt.Errorf("%w: sensor %q", ErrNoData, sensorID)
		}
		return 0, 0, err
	}
	x, err := toTensor(sample.Payload)
	if err != nil {
		return 0, 0, err
	}
	res, err := mgr.InferUrgent(modelName, x)
	if err != nil {
		return 0, 0, err
	}
	return res.Classes[0], res.Confidences[0], nil
}

func labelOf(labels []string, class int) string {
	if class >= 0 && class < len(labels) {
		return labels[class]
	}
	return fmt.Sprintf("class-%d", class)
}

// SafetyConfig configures the VAPS scenario.
type SafetyConfig struct {
	Store     *datastore.Store
	Manager   *pkgmgr.Manager
	ModelName string
	// DefaultCamera is used when the request has no video= argument.
	DefaultCamera string
	// Labels maps class indices to names.
	Labels []string
	// FirearmClass is the class index that triggers the firearm alert.
	FirearmClass int
}

// Safety returns the VAPS registrations (Figure 6's
// /ei_algorithms/safety/detection{video} example).
func Safety(cfg SafetyConfig) []libei.Registration {
	run := func(args url.Values, alertOn int) (any, error) {
		cam := args.Get("video")
		if cam == "" {
			cam = cfg.DefaultCamera
		}
		class, conf, err := classify(cfg.Store, cfg.Manager, cfg.ModelName, cam, frameTensor)
		if err != nil {
			return nil, err
		}
		return Detection{
			Class:      class,
			Label:      labelOf(cfg.Labels, class),
			Confidence: conf,
			Alert:      alertOn >= 0 && class == alertOn,
		}, nil
	}
	return []libei.Registration{
		{Scenario: "safety", Name: "detection", Fn: func(args url.Values) (any, error) {
			return run(args, -1)
		}},
		{Scenario: "safety", Name: "firearm_detection", Fn: func(args url.Values) (any, error) {
			return run(args, cfg.FirearmClass)
		}},
	}
}

// Track is the response of the vehicle tracking algorithm: the estimated
// object path over the recent frame window plus its velocity.
type Track struct {
	Positions [][2]float64 `json:"positions"`
	Velocity  [2]float64   `json:"velocity"`
	Frames    int          `json:"frames"`
}

// VehiclesConfig configures the CAV scenario.
type VehiclesConfig struct {
	Store *datastore.Store
	// DefaultCamera is the on-board camera sensor ID.
	DefaultCamera string
	// Window is the number of recent frames to track over.
	Window int
}

// Vehicles returns the CAV registrations: a brightness-centroid tracker
// over the recent camera window (the classic pre-DL tracking baseline the
// on-vehicle pipeline runs between detector invocations).
func Vehicles(cfg VehiclesConfig) []libei.Registration {
	window := cfg.Window
	if window <= 0 {
		window = 8
	}
	return []libei.Registration{
		{Scenario: "vehicles", Name: "tracking", Fn: func(args url.Values) (any, error) {
			cam := args.Get("video")
			if cam == "" {
				cam = cfg.DefaultCamera
			}
			frames, err := cfg.Store.Realtime(cam, window)
			if err != nil {
				return nil, err
			}
			if len(frames) == 0 {
				return nil, fmt.Errorf("%w: sensor %q", ErrNoData, cam)
			}
			tr := Track{Frames: len(frames)}
			for _, f := range frames {
				x, y := centroid(f.Payload)
				tr.Positions = append(tr.Positions, [2]float64{x, y})
			}
			if n := len(tr.Positions); n >= 2 {
				dt := float64(n - 1)
				tr.Velocity = [2]float64{
					(tr.Positions[n-1][0] - tr.Positions[0][0]) / dt,
					(tr.Positions[n-1][1] - tr.Positions[0][1]) / dt,
				}
			}
			return tr, nil
		}},
	}
}

// centroid returns the intensity-weighted centroid of a flattened square
// frame (clamping negative noise to zero).
func centroid(payload []float32) (cx, cy float64) {
	size := int(math.Round(math.Sqrt(float64(len(payload)))))
	if size == 0 || size*size != len(payload) {
		return 0, 0
	}
	var sum, sx, sy float64
	for i, v := range payload {
		w := float64(v)
		if w < 0 {
			w = 0
		}
		sum += w
		sx += w * float64(i%size)
		sy += w * float64(i/size)
	}
	if sum == 0 {
		return float64(size) / 2, float64(size) / 2
	}
	return sx / sum, sy / sum
}

// PowerReading is the response of the power monitor.
type PowerReading struct {
	Class      int     `json:"class"`
	Appliance  string  `json:"appliance"`
	Confidence float64 `json:"confidence"`
	// MeanDraw is the mean normalized draw over the window, a direct
	// energy-saving signal (PowerAnalyzer [77]).
	MeanDraw float64 `json:"mean_draw"`
}

// HomeConfig configures the smart-home scenario.
type HomeConfig struct {
	Store        *datastore.Store
	Manager      *pkgmgr.Manager
	ModelName    string
	DefaultMeter string
	Labels       []string
}

// Home returns the smart-home registrations (IEHouse-style appliance state
// recognition behind /ei_algorithms/home/power_monitor).
func Home(cfg HomeConfig) []libei.Registration {
	return []libei.Registration{
		{Scenario: "home", Name: "power_monitor", Fn: func(args url.Values) (any, error) {
			meter := args.Get("sensor")
			if meter == "" {
				meter = cfg.DefaultMeter
			}
			sample, err := cfg.Store.Latest(meter)
			if err != nil {
				if errors.Is(err, datastore.ErrEmpty) {
					return nil, fmt.Errorf("%w: sensor %q", ErrNoData, meter)
				}
				return nil, err
			}
			x, err := tensor.NewFrom(append([]float32(nil), sample.Payload...), 1, len(sample.Payload))
			if err != nil {
				return nil, err
			}
			res, err := cfg.Manager.Infer(cfg.ModelName, x)
			if err != nil {
				return nil, err
			}
			var mean float64
			for _, v := range sample.Payload {
				mean += float64(v)
			}
			mean /= float64(len(sample.Payload))
			return PowerReading{
				Class:      res.Classes[0],
				Appliance:  labelOf(cfg.Labels, res.Classes[0]),
				Confidence: res.Confidences[0],
				MeanDraw:   mean,
			}, nil
		}},
	}
}

// ActivityReading is the response of the health algorithms.
type ActivityReading struct {
	Class      int     `json:"class"`
	Activity   string  `json:"activity"`
	Confidence float64 `json:"confidence"`
	Alert      bool    `json:"alert,omitempty"`
}

// HealthConfig configures the connected-health scenario.
type HealthConfig struct {
	Store      *datastore.Store
	Manager    *pkgmgr.Manager
	ModelName  string
	DefaultIMU string
	Labels     []string
	// FallClass triggers the EMS alert in fall_detection.
	FallClass int
}

// Health returns the connected-health registrations: wearable activity
// recognition ([84]-style) and fall detection for pre-hospital EMS (§V.D).
func Health(cfg HealthConfig) []libei.Registration {
	vec := func(p []float32) (*tensor.Tensor, error) {
		return tensor.NewFrom(append([]float32(nil), p...), 1, len(p))
	}
	run := func(args url.Values, alertOn int) (any, error) {
		imu := args.Get("sensor")
		if imu == "" {
			imu = cfg.DefaultIMU
		}
		class, conf, err := classify(cfg.Store, cfg.Manager, cfg.ModelName, imu, vec)
		if err != nil {
			return nil, err
		}
		return ActivityReading{
			Class:      class,
			Activity:   labelOf(cfg.Labels, class),
			Confidence: conf,
			Alert:      alertOn >= 0 && class == alertOn,
		}, nil
	}
	return []libei.Registration{
		{Scenario: "health", Name: "activity_recognition", Fn: func(args url.Values) (any, error) {
			return run(args, -1)
		}},
		{Scenario: "health", Name: "fall_detection", Fn: func(args url.Values) (any, error) {
			return run(args, cfg.FallClass)
		}},
	}
}
