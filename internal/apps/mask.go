package apps

import (
	"errors"
	"fmt"
	"math"
	"net/url"

	"openei/internal/datastore"
	"openei/internal/libei"
)

// MaskedFrame is the response of the privacy-masking algorithm: the
// frame with the detected subject region blanked, plus what was masked.
// §V.A: "for some applications like High-Definition Map generation,
// masking some private information like people's face is also a
// potential VAPS application. The objective is to enable the edge server
// to mask the private information before uploading the data."
type MaskedFrame struct {
	// Frame is the masked flattened image, safe to upload.
	Frame []float32 `json:"frame"`
	// Box is the masked region as [x0, y0, x1, y1], inclusive.
	Box [4]int `json:"box"`
	// MaskedPixels counts pixels blanked inside the box.
	MaskedPixels int `json:"masked_pixels"`
	// TotalPixels is the frame size.
	TotalPixels int `json:"total_pixels"`
}

// MaskConfig configures the privacy-masking registration.
type MaskConfig struct {
	Store         *datastore.Store
	DefaultCamera string
	// Threshold separates subject from background; ≤0 means 0.5 (glyph
	// pixels are ≈1, noise ≈0).
	Threshold float32
	// Margin expands the detected box by this many pixels on each side
	// (a face box is padded before blurring); <0 means 1.
	Margin int
}

// Mask returns the /ei_algorithms/safety/mask registration. It detects
// the bright subject region of the latest frame (or of the frame named
// by video=) and blanks it so the frame can leave the edge without the
// private content.
func Mask(cfg MaskConfig) []libei.Registration {
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	margin := cfg.Margin
	if margin < 0 {
		margin = 1
	}
	return []libei.Registration{
		{Scenario: "safety", Name: "mask", Fn: func(args url.Values) (any, error) {
			cam := args.Get("video")
			if cam == "" {
				cam = cfg.DefaultCamera
			}
			sample, err := cfg.Store.Latest(cam)
			if err != nil {
				if errors.Is(err, datastore.ErrEmpty) {
					return nil, fmt.Errorf("%w: sensor %q", ErrNoData, cam)
				}
				return nil, err
			}
			return maskFrame(sample.Payload, threshold, margin)
		}},
	}
}

// maskFrame blanks the bounding box of above-threshold pixels, expanded
// by margin. A frame with no subject is returned unchanged with an empty
// box.
func maskFrame(payload []float32, threshold float32, margin int) (MaskedFrame, error) {
	size := int(math.Round(math.Sqrt(float64(len(payload)))))
	if size == 0 || size*size != len(payload) {
		return MaskedFrame{}, fmt.Errorf("apps: frame of %d values is not square", len(payload))
	}
	x0, y0, x1, y1 := size, size, -1, -1
	for i, v := range payload {
		if v < threshold {
			continue
		}
		x, y := i%size, i/size
		if x < x0 {
			x0 = x
		}
		if y < y0 {
			y0 = y
		}
		if x > x1 {
			x1 = x
		}
		if y > y1 {
			y1 = y
		}
	}
	out := MaskedFrame{
		Frame:       append([]float32(nil), payload...),
		TotalPixels: len(payload),
	}
	if x1 < 0 { // nothing above threshold: nothing private to hide
		out.Box = [4]int{0, 0, -1, -1}
		return out, nil
	}
	x0, y0 = max(0, x0-margin), max(0, y0-margin)
	x1, y1 = min(size-1, x1+margin), min(size-1, y1+margin)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			out.Frame[y*size+x] = 0
			out.MaskedPixels++
		}
	}
	out.Box = [4]int{x0, y0, x1, y1}
	return out, nil
}
