package runenv

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	defer b.Close()

	s1, err := b.Subscribe("camera1", 8)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	s2, err := b.Subscribe("camera1", 8)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	other, err := b.Subscribe("camera2", 8)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	at := time.Unix(100, 0)
	if err := b.PublishAt("camera1", 42, at); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	for _, sub := range []*Subscription{s1, s2} {
		select {
		case m := <-sub.C():
			if m.Topic != "camera1" || m.Payload.(int) != 42 || !m.At.Equal(at) {
				t.Fatalf("bad message %+v", m)
			}
		default:
			t.Fatal("subscriber missed fan-out")
		}
	}
	select {
	case m := <-other.C():
		t.Fatalf("cross-topic leak: %+v", m)
	default:
	}
	if st := b.Stats(); st.Published != 1 || st.Delivered != 2 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBusDropOldestKeepsFreshest(t *testing.T) {
	b := NewBus()
	defer b.Close()

	sub, err := b.Subscribe("t", 2)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if err := b.Publish("t", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	// Buffer of 2 after 5 publishes must hold the two freshest: 4, 5.
	got := []int{(<-sub.C()).Payload.(int), (<-sub.C()).Payload.(int)}
	if got[0] != 4 || got[1] != 5 {
		t.Fatalf("drop-oldest violated: got %v, want [4 5]", got)
	}
	if st := b.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
}

func TestBusPublishNoSubscribersOK(t *testing.T) {
	b := NewBus()
	defer b.Close()
	if err := b.Publish("empty", 1); err != nil {
		t.Fatalf("Publish to empty topic: %v", err)
	}
}

func TestBusCancelStopsDeliveryAndClosesChannel(t *testing.T) {
	b := NewBus()
	defer b.Close()

	sub, err := b.Subscribe("t", 4)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if n := b.Subscribers("t"); n != 0 {
		t.Fatalf("subscribers after cancel = %d", n)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed by Cancel")
	}
	if err := b.Publish("t", 1); err != nil {
		t.Fatalf("Publish after cancel: %v", err)
	}
}

func TestBusCloseRejectsFurtherUse(t *testing.T) {
	b := NewBus()
	sub, err := b.Subscribe("t", 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed by Close")
	}
	if err := b.Publish("t", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after Close: want ErrClosed, got %v", err)
	}
	if _, err := b.Subscribe("t", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close: want ErrClosed, got %v", err)
	}
}

func TestBusEmptyTopicRejected(t *testing.T) {
	b := NewBus()
	defer b.Close()
	if _, err := b.Subscribe("", 1); err == nil {
		t.Fatal("want error for empty topic subscribe")
	}
	if err := b.Publish("", 1); err == nil {
		t.Fatal("want error for empty topic publish")
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	defer b.Close()

	sub, err := b.Subscribe("t", 1024)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	const n = 4 * 128
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 128; i++ {
				_ = b.Publish("t", i)
			}
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.C() {
			received++
			if received == n {
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("received %d of %d", received, n)
	}
}
