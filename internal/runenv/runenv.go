// Package runenv implements the paper's §IV.C "running environments" —
// the layer between the edge OS and the package manager that the paper
// says must be "capable of handling deep learning packages, allocating
// computation resources and migrating computation loads" while staying
// lightweight. It provides the three designs §IV.C surveys plus the
// open problem it poses:
//
//   - Scheduler: a TinyOS-style event-driven run-to-completion scheduler
//     (a "tiny scheduler and a components graph") with an urgent lane for
//     the real-time ML module;
//   - Bus: a ROS-style topic pub/sub message bus ("the ROS topic is
//     defined to share messages between ROS nodes");
//   - VCU: an OpenVDAP-style computing-unit allocator that "supports EI
//     by allocating hardware resources according to an application";
//   - Monitor/Migrator: heartbeat failure detection and computation
//     migration between edges — the §IV.C open problem of "high
//     availability related to … computation migration, and failure
//     avoidance".
//
// All components are deterministic where possible: time is injected, and
// the only goroutine in the package is the scheduler's single worker,
// which Close joins.
package runenv

import "errors"

// Errors shared across the running-environment components.
var (
	// ErrClosed is returned when posting to or subscribing on a closed
	// component.
	ErrClosed = errors.New("runenv: closed")
	// ErrQueueFull is returned when the scheduler's bounded task queue
	// overflows (TinyOS drops work rather than block sensing).
	ErrQueueFull = errors.New("runenv: task queue full")
	// ErrInsufficient is returned when a VCU cannot satisfy a resource
	// request.
	ErrInsufficient = errors.New("runenv: insufficient resources")
	// ErrUnknown is returned for lookups of unknown allocations, nodes or
	// tasks.
	ErrUnknown = errors.New("runenv: unknown")
	// ErrNoLiveNode is returned when migration finds no live target.
	ErrNoLiveNode = errors.New("runenv: no live node")
)
