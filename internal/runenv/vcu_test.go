package runenv

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"openei/internal/hardware"
)

func testDevice(t *testing.T) hardware.Device {
	t.Helper()
	d, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	return d
}

func TestVCUAllocateAndRelease(t *testing.T) {
	v := NewVCU(testDevice(t))
	a, err := v.Allocate(Request{App: "vaps", ComputeShare: 0.5, MemBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := a.FLOPS(); got != v.Device().FLOPS*0.5 {
		t.Fatalf("FLOPS = %g, want half of device", got)
	}
	share, mem := v.Used()
	if share != 0.5 || mem != 1<<20 {
		t.Fatalf("Used = %g, %d", share, mem)
	}
	if err := v.Release(a.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if share, mem = v.Used(); share != 0 || mem != 0 {
		t.Fatalf("Used after release = %g, %d", share, mem)
	}
	if err := v.Release(a.ID); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double release: want ErrUnknown, got %v", err)
	}
}

func TestVCUAdmissionControl(t *testing.T) {
	v := NewVCU(testDevice(t))
	if _, err := v.Allocate(Request{App: "a", ComputeShare: 0.7, MemBytes: 1 << 20}); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Oversubscribing compute is refused.
	if _, err := v.Allocate(Request{App: "b", ComputeShare: 0.4, MemBytes: 1 << 20}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("compute oversubscribe: want ErrInsufficient, got %v", err)
	}
	// Oversubscribing memory is refused.
	if _, err := v.Allocate(Request{App: "c", ComputeShare: 0.1, MemBytes: v.Device().MemBytes}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("memory oversubscribe: want ErrInsufficient, got %v", err)
	}
	// A fitting request still succeeds.
	if _, err := v.Allocate(Request{App: "d", ComputeShare: 0.3, MemBytes: 1 << 20}); err != nil {
		t.Fatalf("fitting request refused: %v", err)
	}
}

func TestVCURejectsBadRequests(t *testing.T) {
	v := NewVCU(testDevice(t))
	cases := []Request{
		{App: "x", ComputeShare: 0, MemBytes: 1},
		{App: "x", ComputeShare: -0.1, MemBytes: 1},
		{App: "x", ComputeShare: 1.5, MemBytes: 1},
		{App: "x", ComputeShare: 0.5, MemBytes: 0},
		{App: "x", ComputeShare: 0.5, MemBytes: -5},
	}
	for _, req := range cases {
		if _, err := v.Allocate(req); err == nil {
			t.Fatalf("request %+v accepted", req)
		}
	}
}

func TestVCUAllocationLatencyScaling(t *testing.T) {
	v := NewVCU(testDevice(t))
	a, err := v.Allocate(Request{App: "x", ComputeShare: 0.25, MemBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := a.InferLatency(time.Millisecond); got != 4*time.Millisecond {
		t.Fatalf("InferLatency = %v, want 4ms at 25%% share", got)
	}
}

func TestVCUAllocationsSorted(t *testing.T) {
	v := NewVCU(testDevice(t))
	for i := 0; i < 3; i++ {
		if _, err := v.Allocate(Request{App: "x", ComputeShare: 0.1, MemBytes: 1 << 10}); err != nil {
			t.Fatalf("Allocate: %v", err)
		}
	}
	as := v.Allocations()
	if len(as) != 3 {
		t.Fatalf("len = %d", len(as))
	}
	for i := 1; i < len(as); i++ {
		if as[i].ID <= as[i-1].ID {
			t.Fatalf("not sorted: %+v", as)
		}
	}
}

// Property: under any sequence of allocate/release operations the VCU
// never grants more than 100% compute or the device memory budget.
func TestVCUNeverOversubscribesProperty(t *testing.T) {
	dev := testDevice(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVCU(dev)
		var ids []int
		for op := 0; op < 200; op++ {
			if rng.Intn(3) == 0 && len(ids) > 0 {
				i := rng.Intn(len(ids))
				_ = v.Release(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			} else {
				a, err := v.Allocate(Request{
					App:          "p",
					ComputeShare: rng.Float64()*1.2 + 0.01,
					MemBytes:     int64(rng.Intn(int(dev.MemBytes))) + 1,
				})
				if err == nil {
					ids = append(ids, a.ID)
				}
			}
			share, mem := v.Used()
			if share > 1.0+1e-6 || mem > dev.MemBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
