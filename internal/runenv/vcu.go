package runenv

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"openei/internal/hardware"
)

// Request asks a VCU for a slice of its device.
type Request struct {
	// App names the requesting application (for accounting).
	App string
	// ComputeShare is the fraction of the device's FLOPS wanted, in
	// (0, 1].
	ComputeShare float64
	// MemBytes is the RAM wanted for weights + activations.
	MemBytes int64
}

// Allocation is a granted Request.
type Allocation struct {
	ID     int
	App    string
	Share  float64
	Mem    int64
	device hardware.Device
}

// FLOPS returns the compute throughput this allocation may use: the
// device's effective FLOPS scaled by the granted share.
func (a Allocation) FLOPS() float64 { return a.device.FLOPS * a.Share }

// InferLatency scales a full-device latency estimate to this allocation's
// share (an app holding 25 % of the VCU runs the same model 4× slower).
func (a Allocation) InferLatency(fullDevice time.Duration) time.Duration {
	if a.Share <= 0 {
		return fullDevice
	}
	return time.Duration(float64(fullDevice) / a.Share)
}

// VCU is an OpenVDAP-style computing-unit allocator: it owns one hardware
// device and grants applications bounded shares of its compute and
// memory, refusing requests that would oversubscribe either ("allocating
// hardware resources according to an application"). VCU is safe for
// concurrent use.
type VCU struct {
	mu     sync.Mutex
	device hardware.Device
	nextID int
	allocs map[int]Allocation
}

// NewVCU returns a VCU managing the given device.
func NewVCU(device hardware.Device) *VCU {
	return &VCU{device: device, allocs: map[int]Allocation{}}
}

// Device returns the managed device.
func (v *VCU) Device() hardware.Device { return v.device }

// Allocate grants the request or returns ErrInsufficient. Compute shares
// across live allocations never exceed 1.0 and memory never exceeds the
// device budget.
func (v *VCU) Allocate(req Request) (Allocation, error) {
	if req.ComputeShare <= 0 || req.ComputeShare > 1 {
		return Allocation{}, fmt.Errorf("runenv: bad compute share %g for app %q", req.ComputeShare, req.App)
	}
	if req.MemBytes <= 0 {
		return Allocation{}, fmt.Errorf("runenv: bad memory request %d for app %q", req.MemBytes, req.App)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	share, mem := v.usedLocked()
	if share+req.ComputeShare > 1.0+1e-9 {
		return Allocation{}, fmt.Errorf("%w: compute %.0f%% used, %.0f%% asked (device %s)",
			ErrInsufficient, share*100, req.ComputeShare*100, v.device.Name)
	}
	if mem+req.MemBytes > v.device.MemBytes {
		return Allocation{}, fmt.Errorf("%w: memory %d/%d used, %d asked (device %s)",
			ErrInsufficient, mem, v.device.MemBytes, req.MemBytes, v.device.Name)
	}
	v.nextID++
	a := Allocation{ID: v.nextID, App: req.App, Share: req.ComputeShare, Mem: req.MemBytes, device: v.device}
	v.allocs[a.ID] = a
	return a, nil
}

// Release frees a previous allocation.
func (v *VCU) Release(id int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.allocs[id]; !ok {
		return fmt.Errorf("%w: allocation %d", ErrUnknown, id)
	}
	delete(v.allocs, id)
	return nil
}

// Used reports the currently granted compute share and memory.
func (v *VCU) Used() (share float64, mem int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.usedLocked()
}

func (v *VCU) usedLocked() (share float64, mem int64) {
	for _, a := range v.allocs {
		share += a.Share
		mem += a.Mem
	}
	return share, mem
}

// Allocations returns the live allocations sorted by ID.
func (v *VCU) Allocations() []Allocation {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Allocation, 0, len(v.allocs))
	for _, a := range v.allocs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
