package runenv

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}

func TestSchedulerRunsTasksInOrder(t *testing.T) {
	s := NewScheduler(16)
	defer s.Close()

	var mu sync.Mutex
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.Post(Task{Name: "t", Run: func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}}); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 5
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order violated: got %v", got)
		}
	}
}

func TestSchedulerUrgentLaneDrainsFirst(t *testing.T) {
	s := NewScheduler(16)
	defer s.Close()

	var mu sync.Mutex
	var got []string
	release := make(chan struct{})
	// Occupy the worker so the queue builds up behind it.
	if err := s.Post(Task{Name: "block", Run: func() { <-release }}); err != nil {
		t.Fatalf("Post: %v", err)
	}
	push := func(name string, p Priority) {
		if err := s.Post(Task{Name: name, Priority: p, Run: func() {
			mu.Lock()
			got = append(got, name)
			mu.Unlock()
		}}); err != nil {
			t.Fatalf("Post(%s): %v", name, err)
		}
	}
	push("n1", Normal)
	push("n2", Normal)
	push("u1", Urgent)
	push("u2", Urgent)
	close(release)

	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 4
	})
	mu.Lock()
	defer mu.Unlock()
	want := []string{"u1", "u2", "n1", "n2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order: got %v want %v", got, want)
		}
	}

	st := s.Stats()
	if st.ExecutedUrgent != 2 || st.ExecutedNormal != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSchedulerQueueFullDrops(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()

	release := make(chan struct{})
	defer close(release)
	if err := s.Post(Task{Name: "block", Run: func() { <-release }}); err != nil {
		t.Fatalf("Post: %v", err)
	}
	// Wait for the blocker to start so the queue is empty again.
	waitFor(t, time.Second, func() bool { return s.Pending() == 0 })
	if err := s.Post(Task{Name: "a", Run: func() {}}); err != nil {
		t.Fatalf("Post a: %v", err)
	}
	if err := s.Post(Task{Name: "b", Run: func() {}}); err != nil {
		t.Fatalf("Post b: %v", err)
	}
	err := s.Post(Task{Name: "c", Run: func() {}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

func TestSchedulerRejectsNilRun(t *testing.T) {
	s := NewScheduler(4)
	defer s.Close()
	if err := s.Post(Task{Name: "nil"}); err == nil {
		t.Fatal("want error for nil Run")
	}
}

func TestSchedulerCloseDrainsAndIsIdempotent(t *testing.T) {
	s := NewScheduler(16)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 8; i++ {
		if err := s.Post(Task{Name: "t", Run: func() {
			mu.Lock()
			ran++
			mu.Unlock()
		}}); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	s.Close()
	s.Close() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if ran != 8 {
		t.Fatalf("Close did not drain: ran %d of 8", ran)
	}
	if err := s.Post(Task{Name: "late", Run: func() {}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post after close: want ErrClosed, got %v", err)
	}
}

func TestSchedulerConcurrentPosters(t *testing.T) {
	s := NewScheduler(4096)
	defer s.Close()

	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				_ = s.Post(Task{Name: "t", Run: func() {
					mu.Lock()
					ran++
					mu.Unlock()
				}})
			}
		}()
	}
	wg.Wait()
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return ran == 8*64
	})
}

func TestSchedulerTracksQueueDelay(t *testing.T) {
	s := NewScheduler(16)
	defer s.Close()

	release := make(chan struct{})
	if err := s.Post(Task{Name: "block", Run: func() { <-release }}); err != nil {
		t.Fatalf("Post: %v", err)
	}
	done := make(chan struct{})
	if err := s.Post(Task{Name: "waits", Run: func() { close(done) }}); err != nil {
		t.Fatalf("Post: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done
	if st := s.Stats(); st.MaxQueueDelay < 10*time.Millisecond {
		t.Fatalf("MaxQueueDelay = %v, want ≥ 10ms", st.MaxQueueDelay)
	}
}
