package runenv

import (
	"fmt"
	"sync"
	"time"
)

// Message is one item published on a Bus topic.
type Message struct {
	Topic string
	At    time.Time
	// Payload is the message body. Publishers and subscribers agree on
	// the concrete type per topic (as ROS nodes agree on message types).
	Payload any
}

// BusStats reports per-bus counters.
type BusStats struct {
	// Published counts Publish calls that reached at least zero
	// subscribers (i.e. all of them).
	Published int64
	// Delivered counts per-subscriber enqueues.
	Delivered int64
	// Dropped counts messages discarded because a subscriber's buffer was
	// full (drop-oldest, the sensor-stream policy: fresh data wins).
	Dropped int64
}

// Bus is a ROS-style topic pub/sub bus: nodes publish on named topics and
// any number of subscribers receive copies through bounded buffers.
// Delivery is drop-oldest per subscriber so a slow consumer sees the
// freshest data rather than stalling the producer (a camera cannot wait).
// Bus is safe for concurrent use; the zero value is not usable, construct
// with NewBus.
type Bus struct {
	mu     sync.Mutex
	subs   map[string][]*Subscription
	closed bool
	stats  BusStats
	nextID int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[string][]*Subscription{}}
}

// Subscription is one subscriber's bounded view of a topic. Receive from
// C; call Cancel when done.
type Subscription struct {
	bus   *Bus
	topic string
	id    int
	ch    chan Message
}

// C returns the receive channel. It is closed by Cancel and by Bus.Close.
func (s *Subscription) C() <-chan Message { return s.ch }

// Topic returns the subscribed topic.
func (s *Subscription) Topic() string { return s.topic }

// Cancel removes the subscription and closes its channel. Idempotent.
func (s *Subscription) Cancel() {
	s.bus.cancel(s)
}

// Subscribe registers a subscriber on topic with the given buffer size
// (≤0 means 16).
func (b *Bus) Subscribe(topic string, buffer int) (*Subscription, error) {
	if topic == "" {
		return nil, fmt.Errorf("runenv: empty topic")
	}
	if buffer <= 0 {
		buffer = 16
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("%w: bus", ErrClosed)
	}
	b.nextID++
	sub := &Subscription{bus: b, topic: topic, id: b.nextID, ch: make(chan Message, buffer)}
	b.subs[topic] = append(b.subs[topic], sub)
	return sub, nil
}

// Publish delivers msg to every current subscriber of topic. When a
// subscriber's buffer is full the oldest buffered message is dropped to
// make room. Publishing to a topic with no subscribers is not an error
// (ROS semantics).
func (b *Bus) Publish(topic string, payload any) error {
	return b.PublishAt(topic, payload, time.Now())
}

// PublishAt is Publish with an explicit timestamp (tests inject time).
func (b *Bus) PublishAt(topic string, payload any, at time.Time) error {
	if topic == "" {
		return fmt.Errorf("runenv: empty topic")
	}
	msg := Message{Topic: topic, At: at, Payload: payload}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("%w: bus", ErrClosed)
	}
	b.stats.Published++
	for _, sub := range b.subs[topic] {
		for {
			select {
			case sub.ch <- msg:
			default:
				// Buffer full: drop the oldest and retry once; the
				// receive below cannot block because we hold the only
				// sender reference under b.mu.
				select {
				case <-sub.ch:
					b.stats.Dropped++
				default:
				}
				continue
			}
			break
		}
		b.stats.Delivered++
	}
	return nil
}

// Subscribers returns the number of active subscriptions on topic.
func (b *Bus) Subscribers(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs[topic])
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

func (b *Bus) cancel(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.subs[s.topic]
	for i, sub := range list {
		if sub.id == s.id {
			b.subs[s.topic] = append(list[:i:i], list[i+1:]...)
			close(s.ch)
			return
		}
	}
}

// Close cancels every subscription and rejects further use. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for topic, list := range b.subs {
		for _, sub := range list {
			close(sub.ch)
		}
		delete(b.subs, topic)
	}
}
