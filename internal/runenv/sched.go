package runenv

import (
	"fmt"
	"sync"
	"time"
)

// Priority orders tasks in the scheduler. Urgent is the lane the package
// manager's real-time ML module uses ("the machine learning task will be
// set to the highest priority", §III.B).
type Priority int

// Scheduler priorities.
const (
	Normal Priority = iota + 1
	Urgent
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case Normal:
		return "normal"
	case Urgent:
		return "urgent"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Task is one unit of run-to-completion work.
type Task struct {
	// Name identifies the task in stats and errors.
	Name string
	// Priority selects the lane; zero value means Normal.
	Priority Priority
	// Run is executed exactly once by the scheduler worker. It must not
	// block indefinitely: the scheduler is single-threaded by design
	// (TinyOS runs tasks to completion).
	Run func()
}

// SchedStats reports scheduler counters.
type SchedStats struct {
	// Executed counts completed tasks per priority.
	ExecutedUrgent int64
	ExecutedNormal int64
	// Dropped counts tasks rejected because the queue was full.
	Dropped int64
	// MaxQueueDelay is the longest observed post→start delay.
	MaxQueueDelay time.Duration
}

// Scheduler is a TinyOS-style event-driven scheduler: a bounded two-lane
// FIFO drained by a single worker, urgent lane first. Construct with
// NewScheduler; Close joins the worker.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	urgent  []queuedTask
	normal  []queuedTask
	cap     int
	closed  bool
	stats   SchedStats
	done    chan struct{}
	nowFunc func() time.Time
}

type queuedTask struct {
	task   Task
	queued time.Time
}

// NewScheduler returns a running scheduler whose two lanes hold at most
// queueCap tasks combined (≤0 means 256, the "small physical size"
// default).
func NewScheduler(queueCap int) *Scheduler {
	if queueCap <= 0 {
		queueCap = 256
	}
	s := &Scheduler{cap: queueCap, done: make(chan struct{}), nowFunc: time.Now}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// Post enqueues a task. It never blocks: a full queue returns
// ErrQueueFull, and a closed scheduler returns ErrClosed.
func (s *Scheduler) Post(t Task) error {
	if t.Run == nil {
		return fmt.Errorf("runenv: task %q has nil Run", t.Name)
	}
	if t.Priority == 0 {
		t.Priority = Normal
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: scheduler", ErrClosed)
	}
	if len(s.urgent)+len(s.normal) >= s.cap {
		s.stats.Dropped++
		return fmt.Errorf("%w: task %q", ErrQueueFull, t.Name)
	}
	qt := queuedTask{task: t, queued: s.nowFunc()}
	if t.Priority == Urgent {
		s.urgent = append(s.urgent, qt)
	} else {
		s.normal = append(s.normal, qt)
	}
	s.cond.Signal()
	return nil
}

// loop is the single worker: urgent lane drains before normal, each task
// runs to completion.
func (s *Scheduler) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for !s.closed && len(s.urgent) == 0 && len(s.normal) == 0 {
			s.cond.Wait()
		}
		if s.closed && len(s.urgent) == 0 && len(s.normal) == 0 {
			s.mu.Unlock()
			return
		}
		var qt queuedTask
		if len(s.urgent) > 0 {
			qt, s.urgent = s.urgent[0], s.urgent[1:]
		} else {
			qt, s.normal = s.normal[0], s.normal[1:]
		}
		if d := s.nowFunc().Sub(qt.queued); d > s.stats.MaxQueueDelay {
			s.stats.MaxQueueDelay = d
		}
		s.mu.Unlock()

		qt.task.Run()

		s.mu.Lock()
		if qt.task.Priority == Urgent {
			s.stats.ExecutedUrgent++
		} else {
			s.stats.ExecutedNormal++
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Pending returns the number of queued (not yet started) tasks.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.urgent) + len(s.normal)
}

// Close stops accepting tasks, drains the queues, and joins the worker.
// It is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
	<-s.done
}
