package runenv

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// NodeState is a failure detector's view of one peer.
type NodeState int

// Node states.
const (
	NodeLive NodeState = iota + 1
	NodeSuspect
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeLive:
		return "live"
	case NodeSuspect:
		return "suspect"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Monitor is a heartbeat failure detector over a set of edge nodes — the
// first half of §IV.C's high-availability open problem ("dynamic changes
// in topology and high uncertainty in wireless communication"). Time is
// always passed in, so detection is deterministic and testable. Monitor
// is safe for concurrent use.
type Monitor struct {
	mu      sync.Mutex
	timeout time.Duration
	last    map[string]time.Time
}

// NewMonitor returns a detector that suspects a node when no heartbeat
// has arrived for timeout (≤0 means 3 s, a LAN-scale default).
func NewMonitor(timeout time.Duration) *Monitor {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	return &Monitor{timeout: timeout, last: map[string]time.Time{}}
}

// Heartbeat records a beat from node at the given time. Unknown nodes are
// registered implicitly (topology is dynamic).
func (m *Monitor) Heartbeat(node string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.last[node]; !ok || at.After(prev) {
		m.last[node] = at
	}
}

// State reports the node's state as of now. Nodes never heard from are
// ErrUnknown.
func (m *Monitor) State(node string, now time.Time) (NodeState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	last, ok := m.last[node]
	if !ok {
		return 0, fmt.Errorf("%w: node %q", ErrUnknown, node)
	}
	if now.Sub(last) > m.timeout {
		return NodeSuspect, nil
	}
	return NodeLive, nil
}

// Live returns the nodes considered live as of now, sorted by name.
func (m *Monitor) Live(now time.Time) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for node, last := range m.last {
		if now.Sub(last) <= m.timeout {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// Forget drops a node from the detector (it left the topology).
func (m *Monitor) Forget(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.last, node)
}

// Placement records which node runs a named computation and what it
// costs, so the migrator can rebalance by load.
type Placement struct {
	Task string
	Node string
	// FLOPs is the per-invocation compute cost of the task, used as the
	// load unit (work is allocated "according to the computing power",
	// §II.C).
	FLOPs float64
}

// Migrator assigns computations to nodes and moves them off failed nodes
// — the second half of the §IV.C open problem ("computation migration,
// and failure avoidance"). It balances by expected task runtime:
// FLOPs / node FLOPS. Migrator is safe for concurrent use.
type Migrator struct {
	mu sync.Mutex
	// capacity is each node's effective FLOPS.
	capacity map[string]float64
	tasks    map[string]Placement
}

// NewMigrator returns a migrator over the given node capacities
// (node → effective FLOPS).
func NewMigrator(capacity map[string]float64) *Migrator {
	cp := make(map[string]float64, len(capacity))
	for n, f := range capacity {
		cp[n] = f
	}
	return &Migrator{capacity: cp, tasks: map[string]Placement{}}
}

// Assign places a task on the least-loaded live node (by expected
// runtime) and returns the placement. Re-assigning an existing task moves
// it.
func (g *Migrator) Assign(task string, flops float64, live []string) (Placement, error) {
	if task == "" || flops <= 0 {
		return Placement{}, fmt.Errorf("runenv: bad task %q flops %g", task, flops)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	node, err := g.pickLocked(live, task, flops)
	if err != nil {
		return Placement{}, err
	}
	p := Placement{Task: task, Node: node, FLOPs: flops}
	g.tasks[task] = p
	return p, nil
}

// pickLocked returns the live node with the smallest expected total
// runtime after adding the task (ties broken by name for determinism).
// The task's current node, if any, is excluded from load accounting so a
// move is judged by its destination load only.
func (g *Migrator) pickLocked(live []string, task string, flops float64) (string, error) {
	loads := make(map[string]float64, len(live))
	eligible := map[string]bool{}
	for _, n := range live {
		if g.capacity[n] > 0 {
			eligible[n] = true
			loads[n] = 0
		}
	}
	if len(eligible) == 0 {
		return "", fmt.Errorf("%w: %d candidates", ErrNoLiveNode, len(live))
	}
	for name, p := range g.tasks {
		if name == task {
			continue
		}
		if eligible[p.Node] {
			loads[p.Node] += p.FLOPs / g.capacity[p.Node]
		}
	}
	names := make([]string, 0, len(eligible))
	for n := range eligible {
		names = append(names, n)
	}
	sort.Strings(names)
	after := func(n string) float64 { return loads[n] + flops/g.capacity[n] }
	best := names[0]
	for _, n := range names[1:] {
		if after(n) < after(best) {
			best = n
		}
	}
	return best, nil
}

// Placements returns all current placements sorted by task name.
func (g *Migrator) Placements() []Placement {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Placement, 0, len(g.tasks))
	for _, p := range g.tasks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Remove drops a task from the migrator.
func (g *Migrator) Remove(task string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.tasks[task]; !ok {
		return fmt.Errorf("%w: task %q", ErrUnknown, task)
	}
	delete(g.tasks, task)
	return nil
}

// MigrateOff moves every task placed on failed nodes onto the live set,
// least-loaded first (largest tasks move first so they land on the
// emptiest nodes). It returns the new placements of the moved tasks.
func (g *Migrator) MigrateOff(live []string) ([]Placement, error) {
	liveSet := map[string]bool{}
	for _, n := range live {
		liveSet[n] = true
	}
	g.mu.Lock()
	var orphans []Placement
	for _, p := range g.tasks {
		if !liveSet[p.Node] {
			orphans = append(orphans, p)
		}
	}
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].FLOPs != orphans[j].FLOPs {
			return orphans[i].FLOPs > orphans[j].FLOPs
		}
		return orphans[i].Task < orphans[j].Task
	})
	g.mu.Unlock()

	moved := make([]Placement, 0, len(orphans))
	for _, p := range orphans {
		np, err := g.Assign(p.Task, p.FLOPs, live)
		if err != nil {
			return moved, fmt.Errorf("migrating task %q: %w", p.Task, err)
		}
		moved = append(moved, np)
	}
	return moved, nil
}
