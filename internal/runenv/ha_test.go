package runenv

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMonitorDetectsSilence(t *testing.T) {
	m := NewMonitor(time.Second)
	t0 := time.Unix(1000, 0)
	m.Heartbeat("rpi-a", t0)
	m.Heartbeat("rpi-b", t0)

	if st, err := m.State("rpi-a", t0.Add(500*time.Millisecond)); err != nil || st != NodeLive {
		t.Fatalf("fresh node: %v %v", st, err)
	}
	if st, err := m.State("rpi-a", t0.Add(1500*time.Millisecond)); err != nil || st != NodeSuspect {
		t.Fatalf("silent node: %v %v", st, err)
	}
	// A new heartbeat revives the node.
	m.Heartbeat("rpi-a", t0.Add(2*time.Second))
	if st, _ := m.State("rpi-a", t0.Add(2500*time.Millisecond)); st != NodeLive {
		t.Fatalf("revived node is %v", st)
	}
	if _, err := m.State("ghost", t0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown node: %v", err)
	}
}

func TestMonitorIgnoresStaleHeartbeats(t *testing.T) {
	m := NewMonitor(time.Second)
	t0 := time.Unix(1000, 0)
	m.Heartbeat("n", t0)
	m.Heartbeat("n", t0.Add(-time.Hour)) // reordered packet
	if st, _ := m.State("n", t0.Add(500*time.Millisecond)); st != NodeLive {
		t.Fatalf("stale heartbeat regressed node to %v", st)
	}
}

func TestMonitorLiveSetAndForget(t *testing.T) {
	m := NewMonitor(time.Second)
	t0 := time.Unix(1000, 0)
	m.Heartbeat("b", t0)
	m.Heartbeat("a", t0)
	m.Heartbeat("dead", t0.Add(-time.Minute))

	live := m.Live(t0)
	if len(live) != 2 || live[0] != "a" || live[1] != "b" {
		t.Fatalf("live = %v", live)
	}
	m.Forget("a")
	if live = m.Live(t0); len(live) != 1 || live[0] != "b" {
		t.Fatalf("live after forget = %v", live)
	}
}

// TestMonitorConcurrentHeartbeatAndSuspect hammers one Monitor from
// heartbeat writers, suspect-checking readers, and a Forget churner at
// once — the access pattern the cluster gossip layer produces, where
// probe goroutines report arrivals while the detector loop classifies
// them. Run under -race this pins down the Monitor's locking discipline.
func TestMonitorConcurrentHeartbeatAndSuspect(t *testing.T) {
	m := NewMonitor(100 * time.Millisecond)
	t0 := time.Unix(1000, 0)
	nodes := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range nodes {
		m.Heartbeat(n, t0)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for i, n := range nodes {
		writers.Add(1)
		go func(node string, seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			at := t0
			for j := 0; j < 400; j++ {
				at = at.Add(time.Duration(1+rng.Intn(50)) * time.Millisecond)
				m.Heartbeat(node, at)
				if j%7 == 0 {
					// Reordered packet: must never regress the node.
					m.Heartbeat(node, at.Add(-time.Minute))
				}
			}
		}(n, int64(i+1))
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := nodes[rng.Intn(len(nodes))]
				at := t0.Add(time.Duration(rng.Intn(30)) * time.Second)
				if _, err := m.State(node, at); err != nil && !errors.Is(err, ErrUnknown) {
					t.Errorf("State(%s): %v", node, err)
					return
				}
				m.Live(at)
			}
		}(int64(100 + r))
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for j := 0; j < 400; j++ {
			m.Heartbeat("churn", t0.Add(time.Duration(j)*time.Millisecond))
			if j%3 == 0 {
				m.Forget("churn")
			}
		}
	}()

	writers.Wait()
	close(stop)
	readers.Wait()

	// The monitor must come out coherent: a fresh beat makes every node
	// live, and a replayed ancient packet still cannot regress it.
	m.Forget("churn")
	tEnd := t0.Add(time.Hour)
	for _, n := range nodes {
		m.Heartbeat(n, tEnd)
		m.Heartbeat(n, t0.Add(-time.Hour))
		if st, err := m.State(n, tEnd.Add(50*time.Millisecond)); err != nil || st != NodeLive {
			t.Fatalf("node %s after storm: %v %v, want live", n, st, err)
		}
	}
	if live := m.Live(tEnd.Add(50 * time.Millisecond)); len(live) != len(nodes) {
		t.Fatalf("live set after storm = %v, want all %d nodes", live, len(nodes))
	}
}

func TestMigratorBalancesByCapacity(t *testing.T) {
	// server is 10× the pi: equal tasks should stack onto the server
	// until its expected runtime exceeds the pi's.
	g := NewMigrator(map[string]float64{"pi": 1e9, "server": 1e10})
	live := []string{"pi", "server"}
	counts := map[string]int{}
	for i := 0; i < 11; i++ {
		p, err := g.Assign(string(rune('a'+i)), 1e9, live)
		if err != nil {
			t.Fatalf("Assign: %v", err)
		}
		counts[p.Node]++
	}
	// Expected runtimes equalize near server:pi = 10:1.
	if counts["server"] < 9 {
		t.Fatalf("capacity-blind placement: %v", counts)
	}
	if counts["pi"] == 0 {
		t.Fatalf("pi never used: %v", counts)
	}
}

func TestMigratorMovesTasksOffFailedNode(t *testing.T) {
	g := NewMigrator(map[string]float64{"a": 1e9, "b": 1e9, "c": 1e9})
	all := []string{"a", "b", "c"}
	for i, task := range []string{"t1", "t2", "t3", "t4", "t5", "t6"} {
		if _, err := g.Assign(task, float64(1+i)*1e8, all); err != nil {
			t.Fatalf("Assign: %v", err)
		}
	}
	// Node a fails.
	live := []string{"b", "c"}
	moved, err := g.MigrateOff(live)
	if err != nil {
		t.Fatalf("MigrateOff: %v", err)
	}
	if len(moved) == 0 {
		t.Fatal("nothing migrated although a node failed")
	}
	for _, p := range g.Placements() {
		if p.Node == "a" {
			t.Fatalf("task %q still on failed node", p.Task)
		}
	}
	// Idempotent when everything is already live.
	again, err := g.MigrateOff(live)
	if err != nil || len(again) != 0 {
		t.Fatalf("second MigrateOff: %v moved %d", err, len(again))
	}
}

func TestMigratorNoLiveNode(t *testing.T) {
	g := NewMigrator(map[string]float64{"a": 1e9})
	if _, err := g.Assign("t", 1e8, nil); !errors.Is(err, ErrNoLiveNode) {
		t.Fatalf("want ErrNoLiveNode, got %v", err)
	}
	// Live nodes without known capacity are not eligible either.
	if _, err := g.Assign("t", 1e8, []string{"stranger"}); !errors.Is(err, ErrNoLiveNode) {
		t.Fatalf("unknown-capacity node accepted: %v", err)
	}
}

func TestMigratorRemove(t *testing.T) {
	g := NewMigrator(map[string]float64{"a": 1e9})
	if _, err := g.Assign("t", 1e8, []string{"a"}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if err := g.Remove("t"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := g.Remove("t"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double remove: %v", err)
	}
	if len(g.Placements()) != 0 {
		t.Fatal("placement survived Remove")
	}
}

func TestMigratorRejectsBadTasks(t *testing.T) {
	g := NewMigrator(map[string]float64{"a": 1e9})
	if _, err := g.Assign("", 1e8, []string{"a"}); err == nil {
		t.Fatal("empty task accepted")
	}
	if _, err := g.Assign("t", 0, []string{"a"}); err == nil {
		t.Fatal("zero-flop task accepted")
	}
}

// Property: after any failure pattern, MigrateOff leaves every task on a
// live node with known capacity.
func TestMigratorAllTasksOnLiveNodesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := []string{"a", "b", "c", "d"}
		capacity := map[string]float64{}
		for _, n := range nodes {
			capacity[n] = (1 + rng.Float64()*9) * 1e9
		}
		g := NewMigrator(capacity)
		for i := 0; i < 12; i++ {
			if _, err := g.Assign(string(rune('a'+i)), (1+rng.Float64())*1e8, nodes); err != nil {
				return false
			}
		}
		// Fail a random non-empty strict subset.
		var live []string
		for _, n := range nodes {
			if rng.Intn(2) == 0 {
				live = append(live, n)
			}
		}
		if len(live) == 0 {
			live = nodes[:1]
		}
		if _, err := g.MigrateOff(live); err != nil {
			return false
		}
		liveSet := map[string]bool{}
		for _, n := range live {
			liveSet[n] = true
		}
		for _, p := range g.Placements() {
			if !liveSet[p.Node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
