package alem

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/dataset"
	"openei/internal/hardware"
	"openei/internal/nn"
)

func probeModel(t *testing.T) (*nn.Model, nn.Dataset) {
	t.Helper()
	cfg := dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.05, Seed: 20}
	train, test, err := dataset.Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m := nn.MustModel("probe", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 32},
		{Type: "relu"},
		{Type: "dense", In: 32, Out: 5},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	return m, test
}

func TestPackagesCatalog(t *testing.T) {
	ps := Packages()
	if len(ps) != 5 {
		t.Fatalf("package catalog size = %d, want 5", len(ps))
	}
	var eipkg, cloudpkg Package
	for _, p := range ps {
		if p.Efficiency <= 0 || p.Efficiency > 1 {
			t.Errorf("%s efficiency %v outside (0,1]", p.Name, p.Efficiency)
		}
		if p.RuntimeBytes <= 0 {
			t.Errorf("%s runtime bytes %d", p.Name, p.RuntimeBytes)
		}
		switch p.Name {
		case "eipkg":
			eipkg = p
		case "cloudpkg-m":
			cloudpkg = p
		}
	}
	// The co-optimized edge package must beat the cloud package on every
	// static dimension (the paper's "optimization for the edge" claim).
	if !(eipkg.Efficiency > cloudpkg.Efficiency && eipkg.RuntimeBytes < cloudpkg.RuntimeBytes) {
		t.Error("eipkg must dominate cloudpkg-m in efficiency and footprint")
	}
	if !eipkg.SupportsInt8 || !eipkg.SupportsFusion || !eipkg.SupportsTraining {
		t.Error("eipkg must support int8, fusion and training")
	}
	if _, err := PackageByName("eipkg"); err != nil {
		t.Error(err)
	}
	if _, err := PackageByName("torch"); err == nil {
		t.Error("unknown package should fail")
	}
}

func TestProfileProducesSensibleTuple(t *testing.T) {
	m, test := probeModel(t)
	prof := NewProfiler(test)
	pkg, err := PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	a, err := prof.Profile(m, pkg, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy < 0.6 {
		t.Errorf("accuracy = %v, want well above chance", a.Accuracy)
	}
	if a.Latency <= 0 || a.Energy <= 0 || a.Memory <= 0 {
		t.Errorf("non-positive cost dimensions: %v", a)
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestProfileNoEvalData(t *testing.T) {
	m, _ := probeModel(t)
	prof := NewProfiler(nn.Dataset{})
	pkg := Packages()[0]
	dev, err := hardware.ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prof.Profile(m, pkg, dev, Variant{}); !errors.Is(err, ErrNoEvalData) {
		t.Errorf("err = %v, want ErrNoEvalData", err)
	}
}

func TestProfilePackageOrdering(t *testing.T) {
	// On the same device and model, eipkg must be faster and smaller than
	// cloudpkg-m — the E8 headline's mechanism.
	m, test := probeModel(t)
	prof := NewProfiler(test)
	dev, err := hardware.ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	ei, err := PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := PackageByName("cloudpkg-m")
	if err != nil {
		t.Fatal(err)
	}
	aEI, err := prof.Profile(m, ei, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	aCloud, err := prof.Profile(m, cloud, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if aEI.Latency >= aCloud.Latency {
		t.Errorf("eipkg latency %v not below cloudpkg %v", aEI.Latency, aCloud.Latency)
	}
	if aEI.Memory >= aCloud.Memory {
		t.Errorf("eipkg memory %d not below cloudpkg %d", aEI.Memory, aCloud.Memory)
	}
	if aEI.Energy >= aCloud.Energy {
		t.Errorf("eipkg energy %v not below cloudpkg %v", aEI.Energy, aCloud.Energy)
	}
	// Accuracy must be identical: same float model.
	if aEI.Accuracy != aCloud.Accuracy {
		t.Errorf("accuracy differs across packages: %v vs %v", aEI.Accuracy, aCloud.Accuracy)
	}
}

func TestQuantizedVariantFasterOnInt8Package(t *testing.T) {
	m, test := probeModel(t)
	prof := NewProfiler(test)
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	ei, err := PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	f32, err := prof.Profile(m, ei, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	i8, err := prof.Profile(m, ei, dev, Variant{Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if i8.Latency >= f32.Latency {
		t.Errorf("quantized latency %v not below float %v", i8.Latency, f32.Latency)
	}
	if i8.Memory >= f32.Memory {
		t.Errorf("quantized memory %d not below float %d", i8.Memory, f32.Memory)
	}
	// Quantization costs at most a little accuracy.
	if i8.Accuracy < f32.Accuracy-0.05 {
		t.Errorf("quantized accuracy %v too far below float %v", i8.Accuracy, f32.Accuracy)
	}
	// On a package without int8 kernels, quantization must not speed up.
	caffe, err := PackageByName("caffe2-m")
	if err != nil {
		t.Fatal(err)
	}
	cf32, err := prof.Profile(m, caffe, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	ci8, err := prof.Profile(m, caffe, dev, Variant{Quantized: true})
	if err != nil {
		t.Fatal(err)
	}
	if ci8.Latency < cf32.Latency {
		t.Error("quantized variant should not be faster on a package without int8 kernels")
	}
}

func TestProfileCaching(t *testing.T) {
	m, test := probeModel(t)
	prof := NewProfiler(test)
	pkg := Packages()[0]
	dev, err := hardware.ByName("laptop")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := prof.Profile(m, pkg, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a2, err := prof.Profile(m, pkg, dev, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("cached profile differs")
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Error("cached profile took too long; cache not working")
	}
}

func TestProfileConcurrentSafe(t *testing.T) {
	m, test := probeModel(t)
	prof := NewProfiler(test)
	devs := hardware.Catalog()
	var wg sync.WaitGroup
	errs := make(chan error, len(devs)*len(Packages()))
	for _, d := range devs {
		for _, p := range Packages() {
			wg.Add(1)
			go func(d hardware.Device, p Package) {
				defer wg.Done()
				if _, err := prof.Profile(m, p, d, Variant{Quantized: p.SupportsInt8}); err != nil {
					errs <- err
				}
			}(d, p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFits(t *testing.T) {
	m, test := probeModel(t)
	prof := NewProfiler(test)
	uno, err := hardware.ByName("arduino-uno")
	if err != nil {
		t.Fatal(err)
	}
	server, err := hardware.ByName("edge-server")
	if err != nil {
		t.Fatal(err)
	}
	ei, err := PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Fits(m, ei, uno, Variant{}) {
		t.Error("an MLP + runtime must not fit a 2kB MCU")
	}
	if !prof.Fits(m, ei, server, Variant{}) {
		t.Error("the probe model must fit an edge server")
	}
}
