// Package alem implements the paper's central formalism: the EI-capability
// four-tuple ALEM <Accuracy, Latency, Energy, Memory footprint> (§II.B) and
// the profiler that measures it for a (model, package, device) combination —
// one point in the 3-D selection space of Figure 5.
//
// Accuracy is measured by actually running the model on a held-out
// evaluation set. Latency, Energy and Memory come from the calibrated
// hardware model (internal/hardware) parameterized by the package profile,
// which is the substitution for profiling real boards (DESIGN.md §2).
package alem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/plan"
)

// ErrNoEvalData is returned when the profiler has no evaluation dataset.
var ErrNoEvalData = errors.New("alem: profiler has no evaluation data")

// ALEM is the paper's four-element capability tuple.
type ALEM struct {
	// Accuracy is task accuracy in [0,1] on the evaluation set.
	Accuracy float64
	// Latency is the modelled per-inference latency.
	Latency time.Duration
	// Energy is the modelled marginal energy per inference, in joules.
	Energy float64
	// Memory is the modelled peak memory footprint in bytes.
	Memory int64
}

// String implements fmt.Stringer.
func (a ALEM) String() string {
	return fmt.Sprintf("<A=%.3f, L=%v, E=%.4fJ, M=%.1fMB>",
		a.Accuracy, a.Latency.Round(time.Microsecond), a.Energy, float64(a.Memory)/(1<<20))
}

// Package models one deep-learning runtime on the selector's second axis.
// The parameters encode the pCAMP [48] finding that no framework wins every
// dimension: high-efficiency runtimes are heavier, light runtimes slower.
type Package struct {
	Name string
	// Efficiency is the fraction of the device's effective FLOPS this
	// runtime's kernels achieve.
	Efficiency float64
	// RuntimeBytes is the resident footprint of the runtime itself.
	RuntimeBytes int64
	// SupportsInt8 enables quantized kernels on this runtime.
	SupportsInt8 bool
	// SupportsFusion halves dispatch overhead via layer fusion.
	SupportsFusion bool
	// DispatchScale multiplies the device's per-inference dispatch cost;
	// cloud frameworks pay far more session overhead than lean edge
	// interpreters (pCAMP [48]). 0 means 1.
	DispatchScale float64
	// SupportsTraining marks runtimes able to run local (transfer)
	// training — the package-manager feature the paper adds over TF-Lite.
	SupportsTraining bool
}

// Packages returns the built-in package catalog, sorted by name.
//
//	cloudpkg-m : a cloud framework run unmodified on the edge (TensorFlow-
//	             style): high overhead, no quantization. The paper's
//	             baseline for the order-of-magnitude claim.
//	caffe2-m   : mid-weight mobile build, decent kernels, no int8.
//	mxnet-m    : light flexible runtime, modest kernels (pCAMP's memory
//	             winner on small models).
//	tflite-m   : optimized interpreter with int8 kernels; inference only.
//	eipkg      : OpenEI's package manager — co-optimized kernels, fusion,
//	             int8, and local training (§III.B).
func Packages() []Package {
	ps := []Package{
		{Name: "cloudpkg-m", Efficiency: 0.35, RuntimeBytes: 220 << 20, DispatchScale: 4.0, SupportsTraining: true},
		{Name: "caffe2-m", Efficiency: 0.70, RuntimeBytes: 40 << 20, DispatchScale: 1.5},
		{Name: "mxnet-m", Efficiency: 0.60, RuntimeBytes: 11 << 20, DispatchScale: 1.2, SupportsTraining: true},
		{Name: "tflite-m", Efficiency: 0.85, RuntimeBytes: 3 << 20, DispatchScale: 0.8, SupportsInt8: true, SupportsFusion: true},
		{Name: "eipkg", Efficiency: 0.92, RuntimeBytes: 2 << 20, DispatchScale: 0.7, SupportsInt8: true, SupportsFusion: true, SupportsTraining: true},
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// PackageByName looks up a package profile.
func PackageByName(name string) (Package, error) {
	for _, p := range Packages() {
		if p.Name == name {
			return p, nil
		}
	}
	return Package{}, fmt.Errorf("alem: unknown package %q", name)
}

// Variant identifies the model artifact being profiled: the float model,
// its int8-quantized form, or its int4 nibble-packed form (both only
// meaningful on packages with int8 support — int4 executes on the same
// quantized kernels, it is a weight storage format).
type Variant struct {
	Quantized bool
	// Int4 selects the nibble-packed backend; implies Quantized
	// semantics (callers set both or just Int4 — either reads as the
	// int4 artifact).
	Int4 bool
}

// quantized reports whether the variant serves on the quantized kernels.
func (v Variant) quantized() bool { return v.Quantized || v.Int4 }

// backend returns the plan backend this variant deploys.
func (v Variant) backend() plan.Backend {
	switch {
	case v.Int4:
		return plan.Int4
	case v.Quantized:
		return plan.Int8
	default:
		return plan.Float32
	}
}

// Profiler measures ALEM tuples and caches them. It is safe for concurrent
// use.
type Profiler struct {
	mu   sync.Mutex
	eval nn.Dataset
	// accCache caches measured accuracy per (model, quantized) — accuracy
	// is device- and package-independent, and the forward passes are the
	// expensive part of profiling.
	accCache map[accKey]float64
	cache    map[profKey]ALEM
}

type accKey struct {
	model   string
	backend plan.Backend
}

type profKey struct {
	model   string
	pkg     string
	device  string
	backend plan.Backend
}

// NewProfiler returns a profiler that measures accuracy on eval.
func NewProfiler(eval nn.Dataset) *Profiler {
	return &Profiler{
		eval:     eval,
		accCache: map[accKey]float64{},
		cache:    map[profKey]ALEM{},
	}
}

// Profile measures the ALEM tuple of running model m under pkg on dev.
// If v.Quantized is set, the model is profiled as its int8 artifact: the
// accuracy is measured through an int8 round trip of the weights, and the
// cost model uses quantized kernels when the package supports them.
func (p *Profiler) Profile(m *nn.Model, pkg Package, dev hardware.Device, v Variant) (ALEM, error) {
	if p.eval.Samples() == 0 {
		return ALEM{}, ErrNoEvalData
	}
	key := profKey{model: m.Name, pkg: pkg.Name, device: dev.Name, backend: v.backend()}
	p.mu.Lock()
	if a, ok := p.cache[key]; ok {
		p.mu.Unlock()
		return a, nil
	}
	p.mu.Unlock()

	acc, err := p.accuracy(m, v)
	if err != nil {
		return ALEM{}, err
	}
	w := p.workload(m, pkg, v)
	lat, err := dev.Latency(w)
	if err != nil {
		return ALEM{}, err
	}
	energy, err := dev.EnergyJoules(w)
	if err != nil {
		return ALEM{}, err
	}
	a := ALEM{
		Accuracy: acc,
		Latency:  lat,
		Energy:   energy,
		Memory:   dev.MemoryBytes(w) + pkg.RuntimeBytes,
	}
	p.mu.Lock()
	p.cache[key] = a
	p.mu.Unlock()
	return a, nil
}

// Fits reports whether the (model, package) workload fits the device's
// memory at all — the hard feasibility check used before constraint checks.
func (p *Profiler) Fits(m *nn.Model, pkg Package, dev hardware.Device, v Variant) bool {
	w := p.workload(m, pkg, v)
	return dev.MemoryBytes(w)+pkg.RuntimeBytes <= dev.MemBytes
}

func (p *Profiler) workload(m *nn.Model, pkg Package, v Variant) hardware.Workload {
	w := hardware.Workload{
		FLOPs:           m.FLOPs(1),
		WeightBytes:     m.WeightBytes(),
		ActivationBytes: m.ActivationBytes(),
		EfficiencyScale: pkg.Efficiency,
		DispatchScale:   pkg.DispatchScale,
		LayerCount:      len(m.Layers),
	}
	if v.quantized() && pkg.SupportsInt8 {
		w.Int8 = true
		// Cost the representation the quantized backend actually
		// deploys: dense and conv weights at one byte per parameter for
		// int8, nibble-packed with per-row scales for int4.
		if v.Int4 {
			w.WeightBytes = m.Int4WeightBytes()
		} else {
			w.WeightBytes = m.Int8WeightBytes()
		}
	}
	if pkg.SupportsFusion && w.LayerCount > 1 {
		w.LayerCount = (w.LayerCount + 1) / 2
	}
	return w
}

// accuracy measures (and caches) eval accuracy for the model or its int8
// round-tripped variant.
func (p *Profiler) accuracy(m *nn.Model, v Variant) (float64, error) {
	k := accKey{model: m.Name, backend: v.backend()}
	p.mu.Lock()
	if a, ok := p.accCache[k]; ok {
		p.mu.Unlock()
		return a, nil
	}
	p.mu.Unlock()

	var acc float64
	var err error
	if v.quantized() {
		// Measure the backend that would actually serve this variant:
		// the compiled int8 (or int4) plan, calibrated on the evaluation
		// batch. Only models the IR cannot lower (recurrent stacks) fall
		// back to the weight round-trip approximation — any other
		// failure is a real quantized-backend defect and must surface,
		// not hide behind a float approximation in the frontier's
		// numbers.
		acc, err = p.planAccuracy(m, v.backend())
		if errors.Is(err, plan.ErrUnsupported) {
			clone, cerr := m.Clone()
			if cerr != nil {
				return 0, cerr
			}
			levels := float32(127)
			if v.Int4 {
				levels = 7
			}
			if cerr := quantizeWeights(clone, levels); cerr != nil {
				return 0, cerr
			}
			acc, err = nn.Accuracy(clone, p.eval.X, p.eval.Y)
		}
	} else {
		acc, err = nn.Accuracy(m, p.eval.X, p.eval.Y)
	}
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.accCache[k] = acc
	p.mu.Unlock()
	return acc, nil
}

// planAccuracy compiles the model to the given quantized backend and
// measures eval accuracy through it — the number the Pareto frontier and
// tier ladders should carry for "-int8"/"-int4" variants, since that
// backend is what a quantized serving tier executes.
func (p *Profiler) planAccuracy(m *nn.Model, backend plan.Backend) (float64, error) {
	clone, err := m.Clone()
	if err != nil {
		return 0, err
	}
	pl, err := plan.Compile(clone, plan.Options{Backend: backend, Calibration: p.eval.X})
	if err != nil {
		return 0, err
	}
	logits, err := pl.Execute(p.eval.X)
	if err != nil {
		return 0, err
	}
	return nn.AccuracyLogits(logits, p.eval.Y)
}

// quantizeWeights rounds every weight tensor through the symmetric grid
// with the given level count (127 for int8, 7 for int4), reproducing the
// accuracy effect of post-training quantization without importing
// internal/compress (which depends on nn only, but keeping alem independent
// of compress avoids a layering cycle when compress later wants ALEM
// reports).
func quantizeWeights(m *nn.Model, levels float32) error {
	for _, l := range m.Layers {
		for _, w := range l.Params() {
			if w.Dims() < 2 {
				continue // leave biases in float, as real int8 schemes do
			}
			q := quantizeRoundTrip(w.Data(), levels)
			copy(w.Data(), q)
		}
	}
	return nil
}

func quantizeRoundTrip(d []float32, levels float32) []float32 {
	var m float32
	for _, v := range d {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	scale := m / levels
	if scale == 0 {
		scale = 1
	}
	lim := int(levels)
	out := make([]float32, len(d))
	for i, v := range d {
		q := int(v/scale + 0.5)
		if v < 0 {
			q = int(v/scale - 0.5)
		}
		if q > lim {
			q = lim
		} else if q < -lim {
			q = -lim
		}
		out[i] = float32(q) * scale
	}
	return out
}
