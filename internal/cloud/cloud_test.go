package cloud

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"openei/internal/dataset"
	"openei/internal/nn"
)

func smallModel(name string, seed int64) *nn.Model {
	m := nn.MustModel(name, []int{4}, []nn.LayerSpec{
		{Type: "dense", In: 4, Out: 6},
		{Type: "relu"},
		{Type: "dense", In: 6, Out: 3},
	})
	m.InitParams(rand.New(rand.NewSource(seed)))
	return m
}

func TestRegistryPublishFetchVersions(t *testing.T) {
	r := NewRegistry()
	m := smallModel("net", 1)
	v1, err := r.PublishModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Errorf("first version = %d, want 1", v1)
	}
	m.Params()[0].Fill(0.5)
	v2, err := r.PublishModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Errorf("second version = %d, want 2", v2)
	}
	got, v, err := r.FetchModel("net")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("fetched version = %d, want 2", v)
	}
	if got.Params()[0].At(0, 0) != 0.5 {
		t.Error("fetched model does not reflect latest publish")
	}
}

func TestRegistryValidatesBlobs(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Publish("bad", []byte("garbage")); err == nil {
		t.Error("publishing garbage should fail")
	}
	if _, err := r.Publish("", nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, _, err := r.Fetch("missing"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("fetch missing: err = %v, want ErrUnknownModel", err)
	}
}

func TestRegistryFetchIsolation(t *testing.T) {
	r := NewRegistry()
	m := smallModel("net", 2)
	if _, err := r.PublishModel(m); err != nil {
		t.Fatal(err)
	}
	blob, _, err := r.Fetch("net")
	if err != nil {
		t.Fatal(err)
	}
	blob[0] = 'X' // mutate the returned copy
	if _, _, err := r.FetchModel("net"); err != nil {
		t.Error("mutating a fetched blob corrupted the registry")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha"} {
		if _, err := r.PublishModel(smallModel(name, 3)); err != nil {
			t.Fatal(err)
		}
	}
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Errorf("List = %v", infos)
	}
	if infos[0].Bytes <= 0 {
		t.Error("blob size missing from listing")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	if _, err := r.PublishModel(smallModel("net", 4)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					_, _ = r.PublishModel(smallModel("net", int64(i*100+j)))
				} else {
					_, _, _ = r.Fetch("net")
					_ = r.List()
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTrainServicePublishesTrainedModel(t *testing.T) {
	train, test, err := dataset.Power(dataset.PowerConfig{Samples: 400, Window: 32, Noise: 0.08, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	svc := &TrainService{Registry: r}
	m := nn.MustModel("power", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: 5},
	})
	m.InitParams(rand.New(rand.NewSource(5)))
	v, acc, err := svc.TrainAndPublish(m, train, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d", v)
	}
	if acc < 0.7 {
		t.Errorf("train accuracy = %v", acc)
	}
	fetched, _, err := r.FetchModel("power")
	if err != nil {
		t.Fatal(err)
	}
	testAcc, err := nn.Accuracy(fetched, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if testAcc < 0.7 {
		t.Errorf("published model test accuracy = %v", testAcc)
	}
}

func TestTrainServiceNeedsRegistry(t *testing.T) {
	svc := &TrainService{}
	if _, _, err := svc.TrainAndPublish(smallModel("x", 1), nn.Dataset{}, 1, 1); err == nil {
		t.Error("TrainAndPublish without registry should fail")
	}
}

func TestAggregateUniform(t *testing.T) {
	m1 := smallModel("net", 10)
	m2 := smallModel("net", 11)
	b1, err := nn.EncodeModel(m1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := nn.EncodeModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Aggregate([][]byte{b1, b2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := nn.DecodeModel(merged)
	if err != nil {
		t.Fatal(err)
	}
	// Every parameter must be the mean of the two sources.
	p1, p2, pm := m1.Params(), m2.Params(), mm.Params()
	for pi := range pm {
		for j := range pm[pi].Data() {
			want := (p1[pi].Data()[j] + p2[pi].Data()[j]) / 2
			if diff := pm[pi].Data()[j] - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("param %d[%d] = %v, want %v", pi, j, pm[pi].Data()[j], want)
			}
		}
	}
}

func TestAggregateWeighted(t *testing.T) {
	m1 := smallModel("net", 12)
	m2 := smallModel("net", 13)
	b1, _ := nn.EncodeModel(m1)
	b2, _ := nn.EncodeModel(m2)
	merged, err := Aggregate([][]byte{b1, b2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := nn.DecodeModel(merged)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75*m1.Params()[0].At(0, 0) + 0.25*m2.Params()[0].At(0, 0)
	if got := mm.Params()[0].At(0, 0); got-want > 1e-6 || want-got > 1e-6 {
		t.Errorf("weighted aggregate = %v, want %v", got, want)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil, nil); !errors.Is(err, ErrNoModels) {
		t.Errorf("empty: err = %v, want ErrNoModels", err)
	}
	b1, _ := nn.EncodeModel(smallModel("a", 1))
	other := nn.MustModel("b", []int{4}, []nn.LayerSpec{{Type: "dense", In: 4, Out: 2}})
	other.InitParams(rand.New(rand.NewSource(1)))
	b2, _ := nn.EncodeModel(other)
	if _, err := Aggregate([][]byte{b1, b2}, nil); !errors.Is(err, ErrIncompatible) {
		t.Errorf("mismatched: err = %v, want ErrIncompatible", err)
	}
	if _, err := Aggregate([][]byte{b1}, []float64{1, 2}); err == nil {
		t.Error("weight count mismatch should fail")
	}
	if _, err := Aggregate([][]byte{b1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := Aggregate([][]byte{b1}, []float64{0}); err == nil {
		t.Error("zero total weight should fail")
	}
	if _, err := Aggregate([][]byte{[]byte("junk")}, nil); err == nil {
		t.Error("junk blob should fail")
	}
}
