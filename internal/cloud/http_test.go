package cloud

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"openei/internal/nn"
)

func registryServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	ts := httptest.NewServer(&RegistryServer{Registry: reg})
	t.Cleanup(ts.Close)
	return reg, ts
}

func TestRegistryHTTPRoundTrip(t *testing.T) {
	_, ts := registryServer(t)
	c := NewRegistryClient(ts.URL)

	m := smallModel("net", 7)
	blob, err := nn.EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Publish("net", blob)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("publish version = %d", v)
	}

	infos, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "net" {
		t.Errorf("List = %v", infos)
	}

	got, version, err := c.Fetch("net")
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Errorf("fetch version = %d", version)
	}
	m2, err := nn.DecodeModel(got)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ParamCount() != m.ParamCount() {
		t.Error("fetched model differs")
	}
}

func TestRegistryHTTPFetchMissing(t *testing.T) {
	_, ts := registryServer(t)
	c := NewRegistryClient(ts.URL)
	if _, _, err := c.Fetch("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("err = %v, want ErrUnknownModel", err)
	}
}

func TestRegistryHTTPRejectsGarbage(t *testing.T) {
	_, ts := registryServer(t)
	c := NewRegistryClient(ts.URL)
	if _, err := c.Publish("bad", []byte("junk")); err == nil {
		t.Error("publishing junk should fail")
	}
}

func TestRegistryHTTPBlobLimit(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(&RegistryServer{Registry: reg, MaxBlobBytes: 16})
	defer ts.Close()
	c := NewRegistryClient(ts.URL)
	if _, err := c.Publish("big", make([]byte, 64)); err == nil {
		t.Error("oversized blob should be rejected")
	}
}

func TestRegistryHTTPMethodHandling(t *testing.T) {
	_, ts := registryServer(t)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/registry/x", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad path status = %d", resp.StatusCode)
	}
}
