package cloud

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Registry persistence: the cloud registry survives restarts by writing
// each model blob to <dir>/<name>.oeim plus a manifest.json with versions.
// Names are restricted to a safe charset so they map 1:1 to filenames.

const manifestName = "manifest.json"

type manifest struct {
	Versions map[string]int `json:"versions"`
}

// safeName reports whether a model name can be used as a file stem.
func safeName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, ".")
}

// Save writes every model blob and the version manifest into dir
// (created if needed). Existing files for absent models are left alone;
// present models are overwritten atomically (write + rename).
func (r *Registry) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cloud: save registry: %w", err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	man := manifest{Versions: map[string]int{}}
	for name, blob := range r.blobs {
		if !safeName(name) {
			return fmt.Errorf("cloud: model name %q is not filesystem-safe", name)
		}
		path := filepath.Join(dir, name+".oeim")
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			return fmt.Errorf("cloud: save %s: %w", name, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("cloud: save %s: %w", name, err)
		}
		man.Versions[name] = r.version[name]
	}
	mj, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, mj, 0o644); err != nil {
		return fmt.Errorf("cloud: save manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("cloud: save manifest: %w", err)
	}
	return nil
}

// LoadRegistry reads a registry previously written by Save. Blobs are
// validated; a missing manifest yields version 1 for every model.
func LoadRegistry(dir string) (*Registry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cloud: load registry: %w", err)
	}
	man := manifest{Versions: map[string]int{}}
	if mj, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		if err := json.Unmarshal(mj, &man); err != nil {
			return nil, fmt.Errorf("cloud: bad manifest: %w", err)
		}
	}
	r := NewRegistry()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".oeim") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".oeim")
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("cloud: load %s: %w", name, err)
		}
		if _, err := r.Publish(name, blob); err != nil {
			return nil, fmt.Errorf("cloud: load %s: %w", name, err)
		}
		if v, ok := man.Versions[name]; ok && v > 0 {
			r.mu.Lock()
			r.version[name] = v
			r.mu.Unlock()
		}
	}
	return r, nil
}
