package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// RegistryServer exposes a Registry over HTTP for cmd/openei-cloud:
//
//	GET  /registry                  — list models (JSON)
//	GET  /registry/{name}           — download the current blob
//	POST /registry/{name}           — publish a blob (body = model bytes)
//
// The wire format of blobs is the nn model format; the server validates on
// publish.
type RegistryServer struct {
	Registry *Registry
	// MaxBlobBytes bounds uploads; default 64 MiB.
	MaxBlobBytes int64
}

// ServeHTTP implements http.Handler.
func (s *RegistryServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Registry == nil {
		http.Error(w, "registry not configured", http.StatusInternalServerError)
		return
	}
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) == 0 || parts[0] != "registry" {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Registry.List())
	case len(parts) == 2 && r.Method == http.MethodGet:
		blob, version, err := s.Registry.Fetch(parts[1])
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownModel) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Model-Version", fmt.Sprint(version))
		_, _ = w.Write(blob)
	case len(parts) == 2 && r.Method == http.MethodPost:
		limit := s.MaxBlobBytes
		if limit <= 0 {
			limit = 64 << 20
		}
		blob, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(blob)) > limit {
			http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
			return
		}
		version, err := s.Registry.Publish(parts[1], blob)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"version": version})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// RegistryClient talks to a RegistryServer.
type RegistryClient struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewRegistryClient returns a client with a 30 s timeout (model blobs can
// be large on slow links).
func NewRegistryClient(baseURL string) *RegistryClient {
	return &RegistryClient{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
}

// List fetches the registry contents.
func (c *RegistryClient) List() ([]ModelInfo, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/registry")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cloud: list: status %d", resp.StatusCode)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Fetch downloads a model blob and its version.
func (c *RegistryClient) Fetch(name string) ([]byte, int, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/registry/" + name)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("cloud: fetch %s: status %d", name, resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	var version int
	_, _ = fmt.Sscan(resp.Header.Get("X-Model-Version"), &version)
	return blob, version, nil
}

// Publish uploads a model blob and returns the new version.
func (c *RegistryClient) Publish(name string, blob []byte) (int, error) {
	resp, err := c.HTTPClient.Post(c.BaseURL+"/registry/"+name, "application/octet-stream", strings.NewReader(string(blob)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return 0, fmt.Errorf("cloud: publish %s: status %d: %s", name, resp.StatusCode, body)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out["version"], nil
}
