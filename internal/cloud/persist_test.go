package cloud

import (
	"os"
	"path/filepath"
	"testing"

	"openei/internal/nn"
)

func TestRegistrySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	for i, name := range []string{"alpha", "beta"} {
		if _, err := r.PublishModel(smallModel(name, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Bump alpha to version 3.
	for i := 0; i < 2; i++ {
		if _, err := r.PublishModel(smallModel("alpha", int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos := loaded.List()
	if len(infos) != 2 {
		t.Fatalf("loaded %d models, want 2", len(infos))
	}
	m, v, err := loaded.FetchModel("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Errorf("alpha version = %d, want 3 (from manifest)", v)
	}
	// Weights must match the last published alpha.
	orig, _, err := r.FetchModel("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if m.Params()[0].At(0, 0) != orig.Params()[0].At(0, 0) {
		t.Error("loaded weights differ")
	}
}

func TestRegistrySaveRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	m := smallModel("evil", 1)
	m.Name = "../escape"
	blob, err := nn.EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish("../escape", blob); err != nil {
		t.Fatal(err) // publish allows it; Save must refuse
	}
	if err := r.Save(dir); err == nil {
		t.Error("Save with path-traversal name should fail")
	}
}

func TestLoadRegistryMissingDir(t *testing.T) {
	if _, err := LoadRegistry(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestLoadRegistrySkipsJunkAndNoManifest(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	if _, err := r.PublishModel(smallModel("good", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Junk files are ignored; a corrupt .oeim fails loudly.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, v, err := loaded.Fetch("good"); err != nil || v != 1 {
		t.Errorf("fetch good: v=%d err=%v (no manifest → version 1)", v, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.oeim"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(dir); err == nil {
		t.Error("corrupt blob should fail the load")
	}
}
