// Package cloud implements the cloud side of Figure 2/3: a model registry
// that serves trained artifacts to edges (Dataflow 2), a training service
// that fits models on uploaded data (Dataflow 1), and the aggregator that
// merges retrained edge models back into a global model ("the retrained
// models will be uploaded to the cloud and combined into a general and
// global model").
package cloud

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"openei/internal/nn"
)

// Errors returned by the cloud components.
var (
	// ErrUnknownModel is returned when fetching an unpublished model.
	ErrUnknownModel = errors.New("cloud: unknown model")
	// ErrNoModels is returned when aggregating an empty set.
	ErrNoModels = errors.New("cloud: no models to aggregate")
	// ErrIncompatible is returned when aggregating models with different
	// architectures.
	ErrIncompatible = errors.New("cloud: incompatible model architectures")
)

// ModelInfo describes a registry entry.
type ModelInfo struct {
	Name    string
	Version int
	Bytes   int64
}

// Registry is the cloud model store. The zero value is not usable; call
// NewRegistry. Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	blobs   map[string][]byte
	version map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{blobs: map[string][]byte{}, version: map[string]int{}}
}

// Publish stores a serialized model under its name, bumping the version.
// The blob is validated by decoding it once.
func (r *Registry) Publish(name string, blob []byte) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("cloud: empty model name")
	}
	if _, err := nn.DecodeModel(blob); err != nil {
		return 0, fmt.Errorf("cloud: publish %s: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version[name]++
	r.blobs[name] = append([]byte(nil), blob...)
	return r.version[name], nil
}

// PublishModel serializes and publishes a model under model.Name.
func (r *Registry) PublishModel(m *nn.Model) (int, error) {
	blob, err := nn.EncodeModel(m)
	if err != nil {
		return 0, err
	}
	return r.Publish(m.Name, blob)
}

// Fetch returns the current blob and version for the model.
func (r *Registry) Fetch(name string) ([]byte, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	blob, ok := r.blobs[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return append([]byte(nil), blob...), r.version[name], nil
}

// FetchModel fetches and decodes the model.
func (r *Registry) FetchModel(name string) (*nn.Model, int, error) {
	blob, v, err := r.Fetch(name)
	if err != nil {
		return nil, 0, err
	}
	m, err := nn.DecodeModel(blob)
	if err != nil {
		return nil, 0, err
	}
	return m, v, nil
}

// List returns registry entries sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.blobs))
	for name, blob := range r.blobs {
		out = append(out, ModelInfo{Name: name, Version: r.version[name], Bytes: int64(len(blob))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TrainService is the cloud training pipeline of Dataflow 1/2: fit a model
// on (uploaded or cloud-resident) data and publish it.
type TrainService struct {
	Registry *Registry
}

// TrainAndPublish trains the model on data and publishes the result,
// returning the published version and final training accuracy.
func (s *TrainService) TrainAndPublish(m *nn.Model, data nn.Dataset, epochs int, seed int64) (version int, acc float64, err error) {
	if s.Registry == nil {
		return 0, 0, errors.New("cloud: TrainService has no registry")
	}
	rng := rand.New(rand.NewSource(seed))
	_, acc, err = nn.Train(m, data, nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: 0.02, Momentum: 0.9, Rand: rng,
	})
	if err != nil {
		return 0, 0, err
	}
	version, err = s.Registry.PublishModel(m)
	return version, acc, err
}

// Aggregate performs FedAvg-style weighted averaging of serialized models
// with identical architectures; weights default to uniform when nil. The
// aggregated model carries the first model's name.
func Aggregate(blobs [][]byte, weights []float64) ([]byte, error) {
	if len(blobs) == 0 {
		return nil, ErrNoModels
	}
	if weights != nil && len(weights) != len(blobs) {
		return nil, fmt.Errorf("cloud: %d weights for %d models", len(weights), len(blobs))
	}
	models := make([]*nn.Model, len(blobs))
	for i, b := range blobs {
		m, err := nn.DecodeModel(b)
		if err != nil {
			return nil, fmt.Errorf("cloud: aggregate model %d: %w", i, err)
		}
		models[i] = m
	}
	base := models[0]
	for i, m := range models[1:] {
		if m.ParamCount() != base.ParamCount() || len(m.Layers) != len(base.Layers) {
			return nil, fmt.Errorf("%w: model %d", ErrIncompatible, i+1)
		}
	}
	var wsum float64
	ws := make([]float64, len(models))
	for i := range models {
		if weights == nil {
			ws[i] = 1
		} else {
			if weights[i] < 0 {
				return nil, fmt.Errorf("cloud: negative weight %v", weights[i])
			}
			ws[i] = weights[i]
		}
		wsum += ws[i]
	}
	if wsum == 0 {
		return nil, fmt.Errorf("cloud: zero total weight")
	}
	out, err := base.Clone()
	if err != nil {
		return nil, err
	}
	params := out.Params()
	for pi := range params {
		dst := params[pi].Data()
		for j := range dst {
			var acc float64
			for mi, m := range models {
				acc += ws[mi] * float64(m.Params()[pi].Data()[j])
			}
			dst[j] = float32(acc / wsum)
		}
	}
	return nn.EncodeModel(out)
}
