package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func urls(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

var testCatalog = []string{
	"alexnet-m", "bonsai-m", "lenet", "mlp",
	"mobilenet-m", "protonn-m", "squeezenet-m", "vgg-m",
}

func TestPlanPlacementDeterministicAndBounded(t *testing.T) {
	members := urls(4)
	plan := PlanPlacement(members, testCatalog, 2, nil, 0.5, 0)

	// Same inputs in any order must yield the identical plan — nodes and
	// gateways each compute placement independently from gossip.
	shuffled := []string{members[2], members[0], members[3], members[1]}
	catalogRev := append([]string(nil), testCatalog...)
	for i, j := 0, len(catalogRev)-1; i < j; i, j = i+1, j-1 {
		catalogRev[i], catalogRev[j] = catalogRev[j], catalogRev[i]
	}
	if again := PlanPlacement(shuffled, catalogRev, 2, nil, 0.5, 0); !reflect.DeepEqual(plan, again) {
		t.Fatalf("plan not deterministic:\n%v\nvs\n%v", plan, again)
	}

	load := map[string]int{}
	for _, model := range testCatalog {
		owners := plan[model]
		if len(owners) != 2 {
			t.Fatalf("%s owners = %v, want 2", model, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("%s owners not distinct: %v", model, owners)
		}
		for _, o := range owners {
			load[o]++
		}
	}
	// 8 models × 2 owners = 16 placements over 4 nodes at cap
	// ceil(0.5×8)=4: the bounded-load walk must land exactly 4 each.
	for node, n := range load {
		if n > 4 {
			t.Errorf("%s holds %d models, above the 50%% cap of 4", node, n)
		}
	}
}

func TestPlanPlacementOverridesGrowOwnerSets(t *testing.T) {
	plan := PlanPlacement(urls(6), testCatalog, 2,
		map[string]Replica{"mlp": {N: 4, V: 1}}, 0.5, 0)
	if got := len(plan["mlp"]); got != 4 {
		t.Fatalf("mlp owners = %d, want override 4", got)
	}
	if got := len(plan["lenet"]); got != 2 {
		t.Fatalf("lenet owners = %d, want base 2", got)
	}
	// Overrides clamp to the member count.
	small := PlanPlacement(urls(3), testCatalog, 2,
		map[string]Replica{"mlp": {N: 9, V: 1}}, 1, 0)
	if got := len(small["mlp"]); got != 3 {
		t.Fatalf("clamped mlp owners = %d, want 3", got)
	}
}

// TestPlanPlacementStability pins the consistent-hashing point: losing
// one member of ten must not reshuffle the surviving assignments
// wholesale.
func TestPlanPlacementStability(t *testing.T) {
	members := urls(10)
	before := PlanPlacement(members, testCatalog, 2, nil, 0.5, 0)
	after := PlanPlacement(members[:9], testCatalog, 2, nil, 0.5, 0)

	lost := members[9]
	moved, kept := 0, 0
	for _, model := range testCatalog {
		was := map[string]bool{}
		for _, o := range before[model] {
			was[o] = true
		}
		for _, o := range after[model] {
			if was[o] {
				kept++
			} else {
				moved++
			}
		}
		if was[lost] && len(after[model]) < 2 {
			t.Errorf("%s lost an owner without replacement: %v", model, after[model])
		}
	}
	if moved >= kept {
		t.Fatalf("one node's loss moved %d placements but kept only %d", moved, kept)
	}
}

func TestRingOwnersRespectsFilter(t *testing.T) {
	r := NewRing(urls(5), 0)
	full := r.Owners("vgg-m", 3, nil)
	if len(full) != 3 {
		t.Fatalf("owners = %v", full)
	}
	banned := full[0]
	filtered := r.Owners("vgg-m", 3, func(m string) bool { return m != banned })
	if len(filtered) != 3 {
		t.Fatalf("filtered owners = %v", filtered)
	}
	for _, o := range filtered {
		if o == banned {
			t.Fatalf("filter ignored: %v", filtered)
		}
	}
	if got := r.Owners("vgg-m", 99, nil); len(got) != 5 {
		t.Fatalf("asking beyond membership: %v", got)
	}
}

func TestNodeCap(t *testing.T) {
	for _, tt := range []struct {
		frac    float64
		catalog int
		want    int
	}{{0.5, 8, 4}, {0.3, 8, 3}, {0, 8, 8}, {1, 8, 8}, {0.1, 3, 1}} {
		if got := NodeCap(tt.frac, tt.catalog); got != tt.want {
			t.Errorf("NodeCap(%v, %d) = %d, want %d", tt.frac, tt.catalog, got, tt.want)
		}
	}
}
