package cluster

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// AgentConfig tunes one node's cluster participant.
type AgentConfig struct {
	// Self is this node's advertised base URL (required).
	Self string
	// Seeds are peer addresses to rendezvous with.
	Seeds []string
	// Catalog is the sharded model namespace — typically zoo.Names().
	// Models outside it (a node's own detectors, swap targets) are never
	// loaded or evicted by the agent.
	Catalog []string
	// Provider materializes a model this node was assigned (build from
	// the zoo, fetch from the cloud registry, pull from a peer).
	Provider func(name string) (*nn.Model, error)
	// Quantize applies to models the Provider materializes.
	Quantize bool
	// Replication is the default owner-set size per model. Default 2.
	Replication int
	// MaxZooFraction caps one node's share of the catalog. Default 0.5.
	MaxZooFraction float64
	// VNodes is the ring's virtual-node count. Default DefaultVNodes.
	VNodes int
	// EvictAfter is how many consecutive reconciles a model must be
	// un-owned before it is unloaded — hysteresis so a plan flapping
	// during churn does not thrash weights. Default 3.
	EvictAfter int

	// Local pool autoscaling: each owned model's replica width follows
	// its queue pressure between MinReplicas and MaxReplicas.
	MinReplicas int // default: the engine's configured width
	MaxReplicas int // default 4
	// GrowAt / ShrinkAt are model queue-fill fractions (depth over cap).
	GrowAt   float64 // default 0.5
	ShrinkAt float64 // default 0.05
	// GrowAfter / ShrinkAfter are consecutive-tick requirements. Defaults
	// 2 and 8: growing is eager, shrinking reluctant.
	GrowAfter   int
	ShrinkAfter int

	// Membership carries gossip tuning; its Self*, Seeds and SelfInfo
	// fields are overwritten by the agent.
	Membership MembershipConfig
	// Logf receives agent decisions (loads, evictions, resizes).
	Logf func(format string, args ...any)
}

func (c *AgentConfig) fill(engineWidth int) error {
	if c.Self == "" {
		return fmt.Errorf("cluster: agent needs an advertised Self URL")
	}
	if len(c.Catalog) == 0 {
		return fmt.Errorf("cluster: agent needs a non-empty Catalog")
	}
	if c.Provider == nil {
		return fmt.Errorf("cluster: agent needs a model Provider")
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.MaxZooFraction == 0 {
		c.MaxZooFraction = 0.5
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = engineWidth
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 4
	}
	if c.MaxReplicas < c.MinReplicas {
		c.MaxReplicas = c.MinReplicas
	}
	if c.GrowAt <= 0 {
		c.GrowAt = 0.5
	}
	if c.ShrinkAt <= 0 {
		c.ShrinkAt = 0.05
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Agent is a node's cluster participant: it gossips membership, loads
// and evicts catalog models as the placement plan assigns them, and
// resizes each owned model's replica pool under local queue pressure.
type Agent struct {
	cfg    AgentConfig
	mem    *Membership
	mgr    *pkgmgr.Manager
	engine *serving.Engine

	mu       sync.Mutex
	plan     map[string][]string
	unowned  map[string]int // consecutive reconciles un-owned, per model
	hot      map[string]int // consecutive pressured ticks, per model
	cold     map[string]int // consecutive idle ticks, per model
	catalog  map[string]bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAgent wires a cluster agent onto a node's manager, engine, and
// libei server (registering the cluster/view, cluster/leave, and
// cluster/replication algorithms). Call Start to begin gossiping.
func NewAgent(mgr *pkgmgr.Manager, engine *serving.Engine, srv *libei.Server, cfg AgentConfig) (*Agent, error) {
	if mgr == nil || engine == nil || srv == nil {
		return nil, fmt.Errorf("cluster: agent needs manager, engine, and server")
	}
	if err := cfg.fill(engine.Config().Replicas); err != nil {
		return nil, err
	}
	mc := cfg.Membership
	mc.SelfURL = cfg.Self
	mc.SelfID = srv.NodeID
	mc.Seeds = cfg.Seeds
	mc.SelfInfo = func() ([]string, int64) {
		return mgr.Models(), mgr.Device().MemBytes
	}
	if mc.Logf == nil {
		mc.Logf = cfg.Logf
	}
	a := &Agent{
		cfg:     cfg,
		mem:     NewMembership(mc),
		mgr:     mgr,
		engine:  engine,
		plan:    map[string][]string{},
		unowned: map[string]int{},
		hot:     map[string]int{},
		cold:    map[string]int{},
		catalog: map[string]bool{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, m := range cfg.Catalog {
		a.catalog[m] = true
	}
	if err := srv.RegisterAll(a.registrations()); err != nil {
		return nil, err
	}
	return a, nil
}

// Membership exposes the agent's gossip participant (tests, metrics).
func (a *Agent) Membership() *Membership { return a.mem }

// registrations are the cluster control surface, served through the same
// GET /ei_algorithms/... interface as everything else on the node.
func (a *Agent) registrations() []libei.Registration {
	return []libei.Registration{
		{Scenario: "cluster", Name: "view", Fn: func(args url.Values) (any, error) {
			return a.mem.View(args.Get("from")), nil
		}},
		{Scenario: "cluster", Name: "leave", Fn: func(args url.Values) (any, error) {
			inc, err := strconv.ParseInt(args.Get("inc"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad inc: %v", libei.ErrBadRequest, err)
			}
			beat, err := strconv.ParseUint(args.Get("beat"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad beat: %v", libei.ErrBadRequest, err)
			}
			if err := a.mem.HandleLeave(args.Get("url"), inc, beat); err != nil {
				return nil, fmt.Errorf("%w: %v", libei.ErrBadRequest, err)
			}
			return map[string]bool{"ok": true}, nil
		}},
		{Scenario: "cluster", Name: "replication", Fn: func(args url.Values) (any, error) {
			model := args.Get("model")
			n, err1 := strconv.Atoi(args.Get("n"))
			v, err2 := strconv.ParseUint(args.Get("v"), 10, 64)
			if model == "" || err1 != nil || err2 != nil || n < 1 {
				return nil, fmt.Errorf("%w: replication needs model, n ≥ 1, v", libei.ErrBadRequest)
			}
			a.mem.MergeReplication(map[string]Replica{model: {N: n, V: v}})
			return a.mem.Replication(), nil
		}},
	}
}

// Start launches the agent loop: one gossip round, one placement
// reconcile, and one local autoscale pass per membership interval.
func (a *Agent) Start() {
	go func() {
		defer close(a.done)
		interval := a.mem.Interval()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		// First round immediately: a joining node should not idle a full
		// interval before contacting its seeds.
		a.TickRound(time.Now())
		for {
			select {
			case <-a.stop:
				return
			case now := <-ticker.C:
				a.TickRound(now)
			}
		}
	}()
}

// TickRound runs one full agent round synchronously (exported so tests
// and alternative drivers control cadence without the goroutine).
func (a *Agent) TickRound(now time.Time) {
	// The probe deadline is decoupled from the gossip period: a tight
	// Interval (tests, aggressive detection) must not turn a slow-but-
	// alive peer into a missed heartbeat on a loaded host. Rounds simply
	// stretch instead of mass-suspecting the fleet.
	budget := a.mem.Interval()
	if budget < time.Second {
		budget = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	a.mem.Tick(ctx, now)
	cancel()
	a.reconcile()
	a.autoscaleLocal()
}

// Close leaves the cluster gracefully and stops the loop.
func (a *Agent) Close() {
	a.stopOnce.Do(func() {
		close(a.stop)
		<-a.done
		ctx, cancel := context.WithTimeout(context.Background(), a.mem.Interval())
		a.mem.Leave(ctx)
		cancel()
	})
}

// Halt stops the agent loop without announcing a leave — the node simply
// goes silent, as a crash would. The rest of the fleet must notice
// through the failure detector. Tests use this to simulate node death.
func (a *Agent) Halt() {
	a.stopOnce.Do(func() {
		close(a.stop)
		<-a.done
	})
}

// Plan snapshots the last computed placement plan (model → owner URLs).
func (a *Agent) Plan() map[string][]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string][]string, len(a.plan))
	for m, owners := range a.plan {
		out[m] = append([]string(nil), owners...)
	}
	return out
}

// reconcile recomputes the placement plan from the current member view
// and converges local state: load newly owned models, evict models
// un-owned for EvictAfter consecutive rounds. Eviction is additionally
// gated on a handoff interlock: the local copy is dropped only once
// enough other active members advertise the model, so a fleet whose
// views briefly diverge (a death rumor mid-propagation, a replication
// override landing node by node) never reaches zero live copies of
// anything.
func (a *Agent) reconcile() {
	active := a.mem.Active()
	var members []string
	for _, m := range active {
		members = append(members, m.URL)
	}
	plan := PlanPlacement(members, a.cfg.Catalog, a.cfg.Replication,
		a.mem.Replication(), a.cfg.MaxZooFraction, a.cfg.VNodes)

	desired := map[string]bool{}
	for model, owners := range plan {
		for _, o := range owners {
			if o == a.cfg.Self {
				desired[model] = true
			}
		}
	}
	loaded := map[string]bool{}
	for _, m := range a.mgr.Models() {
		if a.catalog[m] {
			loaded[m] = true
		}
	}

	for model := range desired {
		if loaded[model] {
			continue
		}
		built, err := a.cfg.Provider(model)
		if err != nil {
			a.cfg.Logf("cluster: %s: provider %s: %v", a.cfg.Self, model, err)
			continue
		}
		if err := a.mgr.Load(built, pkgmgr.LoadOptions{Quantize: a.cfg.Quantize}); err != nil {
			a.cfg.Logf("cluster: %s: load %s: %v", a.cfg.Self, model, err)
			continue
		}
		a.cfg.Logf("cluster: %s: loaded %s", a.cfg.Self, model)
	}

	// Live copies other active members advertise, per the gossip view —
	// the handoff interlock's evidence.
	advertisers := map[string]int{}
	for _, m := range active {
		if m.URL == a.cfg.Self {
			continue
		}
		for _, name := range m.Models {
			advertisers[name]++
		}
	}

	a.mu.Lock()
	a.plan = plan
	for model := range desired {
		delete(a.unowned, model)
	}
	var evict []string
	for model := range loaded {
		if desired[model] {
			continue
		}
		need := a.cfg.Replication
		if owners := plan[model]; len(owners) < need {
			need = len(owners)
		}
		if advertisers[model] < need {
			// Dropping now could leave the fleet under-replicated; hold the
			// copy and restart the hysteresis clock until the model's new
			// owners demonstrably serve it.
			a.unowned[model] = 0
			continue
		}
		a.unowned[model]++
		if a.unowned[model] >= a.cfg.EvictAfter {
			evict = append(evict, model)
			delete(a.unowned, model)
		}
	}
	a.mu.Unlock()
	sort.Strings(evict)
	for _, model := range evict {
		a.mgr.Unload(model)
		a.engine.Reset(model)
		a.cfg.Logf("cluster: %s: evicted %s", a.cfg.Self, model)
	}
}

// autoscaleLocal walks the engine's per-model stats and resizes replica
// pools: a queue persistently above GrowAt grows the pool, one
// persistently idle shrinks it. Resizes ride the zero-drop Swap path, so
// in-flight requests never fail.
func (a *Agent) autoscaleLocal() {
	for _, s := range a.engine.Stats() {
		if !a.catalog[s.Model] || s.QueueCap <= 0 {
			continue
		}
		fill := float64(s.QueueDepth) / float64(s.QueueCap)
		a.mu.Lock()
		var target int
		switch {
		case fill >= a.cfg.GrowAt:
			a.cold[s.Model] = 0
			a.hot[s.Model]++
			if a.hot[s.Model] >= a.cfg.GrowAfter && s.Replicas < a.cfg.MaxReplicas {
				target = s.Replicas + 1
				a.hot[s.Model] = 0
			}
		case fill <= a.cfg.ShrinkAt:
			a.hot[s.Model] = 0
			a.cold[s.Model]++
			if a.cold[s.Model] >= a.cfg.ShrinkAfter && s.Replicas > a.cfg.MinReplicas {
				target = s.Replicas - 1
				a.cold[s.Model] = 0
			}
		default:
			a.hot[s.Model], a.cold[s.Model] = 0, 0
		}
		a.mu.Unlock()
		if target == 0 {
			continue
		}
		if err := a.engine.SetReplicas(s.Model, target); err != nil {
			a.cfg.Logf("cluster: %s: resize %s→%d: %v", a.cfg.Self, s.Model, target, err)
			continue
		}
		a.cfg.Logf("cluster: %s: %s replicas %d→%d (queue fill %.2f)",
			a.cfg.Self, s.Model, s.Replicas, target, fill)
	}
}
