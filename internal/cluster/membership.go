package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"sync"
	"time"

	"openei/internal/collab"
	"openei/internal/libei"
	"openei/internal/runenv"
)

// MembershipConfig tunes one process's gossip participant.
type MembershipConfig struct {
	// SelfURL is this process's advertised base address. Empty makes the
	// membership a pure observer (a gateway): it learns the fleet and
	// judges health but never appears in anyone's view.
	SelfURL string
	// SelfID is the node identity gossiped alongside SelfURL.
	SelfID string
	// Seeds are addresses probed every round in addition to gossip
	// targets, bootstrapping the first join and re-knitting partitions.
	Seeds []string
	// SelfInfo, when set, refreshes the self descriptor each round with
	// the currently loaded models and capacity (an agent wires this to
	// its package manager).
	SelfInfo func() (models []string, capacity int64)
	// Interval is the nominal gossip period; Tick callers should match it.
	// Default 500ms.
	Interval time.Duration
	// Fanout is how many peers each round probes and pulls views from.
	// Default 3.
	Fanout int
	// SuspectAfter is the failure detector's timeout: a member with no
	// liveness evidence for this long becomes suspect. Default 4×Interval.
	SuspectAfter time.Duration
	// DeadAfter declares a silent member dead (out of the ring).
	// Default 3×SuspectAfter.
	DeadAfter time.Duration
	// TombstoneAfter forgets dead and left entries entirely.
	// Default 4×DeadAfter.
	TombstoneAfter time.Duration
	// Incarnation overrides the self incarnation stamp (tests); zero
	// means "now" in unix nanoseconds.
	Incarnation int64
	// NewClient builds the libei client for a peer URL; default
	// libei.NewClient.
	NewClient func(url string) *libei.Client
	// Logf, when set, receives membership transitions (join/suspect/
	// dead/left) — one line each, for operators.
	Logf func(format string, args ...any)
}

func (c *MembershipConfig) fill() {
	c.Interval = nonzero(c.Interval, 500*time.Millisecond)
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	c.SuspectAfter = nonzero(c.SuspectAfter, 4*c.Interval)
	c.DeadAfter = nonzero(c.DeadAfter, 3*c.SuspectAfter)
	c.TombstoneAfter = nonzero(c.TombstoneAfter, 4*c.DeadAfter)
	if c.Incarnation == 0 {
		c.Incarnation = time.Now().UnixNano()
	}
	if c.NewClient == nil {
		c.NewClient = libei.NewClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// entry is a Member plus this process's local liveness bookkeeping.
type entry struct {
	Member
	// lastFresh is the last local evidence of progress: a successful
	// direct probe, or a merge that advanced (incarnation, beat).
	lastFresh time.Time
}

// Membership is one process's SWIM-style gossip participant. Callers
// drive it: Tick runs one synchronous round (probe + view exchange +
// sweep); agents and gateways call it from their own loops so the whole
// process has a single cadence. All other methods are safe concurrently
// with Tick.
type Membership struct {
	cfg MembershipConfig
	mon *runenv.Monitor

	mu      sync.Mutex
	beat    uint64
	entries map[string]*entry // keyed by URL; includes self when a member
	clients map[string]*libei.Client
	repl    map[string]Replica
	rng     *rand.Rand
}

// NewMembership builds a participant. With a SelfURL it is a member
// (agents); without, an observer (gateways).
func NewMembership(cfg MembershipConfig) *Membership {
	cfg.fill()
	m := &Membership{
		cfg:     cfg,
		mon:     runenv.NewMonitor(cfg.SuspectAfter),
		entries: map[string]*entry{},
		clients: map[string]*libei.Client{},
		repl:    map[string]Replica{},
		rng:     rand.New(rand.NewSource(cfg.Incarnation ^ int64(hash64(cfg.SelfURL)))),
	}
	if cfg.SelfURL != "" {
		m.entries[cfg.SelfURL] = &entry{Member: Member{
			URL:         cfg.SelfURL,
			ID:          cfg.SelfID,
			Incarnation: cfg.Incarnation,
			State:       StateAlive,
		}}
	}
	return m
}

// Interval is the configured gossip period, for callers sizing tickers
// and probe deadlines.
func (m *Membership) Interval() time.Duration { return m.cfg.Interval }

func (m *Membership) clientFor(u string) *libei.Client {
	if c, ok := m.clients[u]; ok {
		return c
	}
	c := m.cfg.NewClient(u)
	m.clients[u] = c
	return c
}

// Tick runs one gossip round at `now`: refresh self, probe up to Fanout
// peers' /ei_status (plus every seed not yet known alive), pull views
// from the responders, merge, and sweep timeouts. The context bounds all
// network work — give it a deadline of about one Interval.
func (m *Membership) Tick(ctx context.Context, now time.Time) {
	targets := m.beginRound(now)
	if len(targets) > 0 {
		probes := collab.ProbePeers(ctx, targets)
		var answered []string
		m.mu.Lock()
		for u, p := range probes {
			if p.Err != nil {
				continue
			}
			m.observeStatusLocked(u, p.Status, now)
			answered = append(answered, u)
		}
		m.mu.Unlock()
		sort.Strings(answered)

		// Anti-entropy: pull each responder's view. The from= parameter
		// is an implicit join announcement — the peer learns our address
		// just by being asked (observers pass none and stay invisible).
		var wg sync.WaitGroup
		views := make([]View, len(answered))
		oks := make([]bool, len(answered))
		for i, u := range answered {
			wg.Add(1)
			go func(i int, u string, c *libei.Client) {
				defer wg.Done()
				args := url.Values{}
				if m.cfg.SelfURL != "" {
					args.Set("from", m.cfg.SelfURL)
				}
				var v View
				if err := c.CallAlgorithmCtx(ctx, "cluster", "view", args, &v); err == nil {
					views[i], oks[i] = v, true
				}
			}(i, u, targets[u])
		}
		wg.Wait()
		m.mu.Lock()
		for i := range views {
			if oks[i] {
				m.mergeViewLocked(views[i], now)
			}
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.sweepLocked(now)
	m.mu.Unlock()
}

// beginRound bumps the self descriptor and picks this round's targets.
func (m *Membership) beginRound(now time.Time) map[string]*libei.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.beat++
	if self, ok := m.entries[m.cfg.SelfURL]; ok {
		self.Beat = m.beat
		self.State = StateAlive
		self.lastFresh = now
		if m.cfg.SelfInfo != nil {
			self.Models, self.Capacity = m.cfg.SelfInfo()
		}
		m.mon.Heartbeat(self.URL, now)
	}
	targets := map[string]*libei.Client{}
	// Seeds are probed unconditionally: the only way into a cluster you
	// know nothing about, and the rendezvous that heals a partition.
	for _, s := range m.cfg.Seeds {
		if s != "" && s != m.cfg.SelfURL {
			targets[s] = m.clientFor(s)
		}
	}
	var candidates []string
	for u, e := range m.entries {
		if u == m.cfg.SelfURL || targets[u] != nil {
			continue
		}
		// Probe alive and suspect members (a suspect that answers is
		// refuted on the spot); leave dead and left ones to tombstone
		// expiry — a restarted process re-announces itself via from=.
		if e.State == StateAlive || e.State == StateSuspect {
			candidates = append(candidates, u)
		}
	}
	sort.Strings(candidates)
	m.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, u := range candidates {
		if len(targets) >= m.cfg.Fanout+len(m.cfg.Seeds) {
			break
		}
		targets[u] = m.clientFor(u)
	}
	return targets
}

// observeStatusLocked records a successful direct probe: definitive
// liveness plus the peer's advertised placement.
func (m *Membership) observeStatusLocked(u string, st libei.Status, now time.Time) {
	e := m.entries[u]
	if e == nil {
		e = &entry{Member: Member{URL: u, State: StateAlive}}
		m.entries[u] = e
		m.cfg.Logf("cluster: member %s joined (probe)", u)
	}
	if e.State != StateAlive {
		m.cfg.Logf("cluster: member %s alive again (was %s)", u, e.State)
	}
	e.ID = st.NodeID
	e.Capacity = st.MemBytes
	e.Models = e.Models[:0]
	for _, p := range st.Models {
		e.Models = append(e.Models, p.Name)
	}
	e.State = StateAlive
	e.lastFresh = now
	m.mon.Heartbeat(u, now)
}

// mergeViewLocked folds a peer's view in under SWIM's override rules.
func (m *Membership) mergeViewLocked(v View, now time.Time) {
	for _, r := range v.Members {
		if r.URL == "" {
			continue
		}
		if r.URL == m.cfg.SelfURL {
			// Refute rumors about ourselves: any non-alive claim at our
			// current incarnation is answered by outliving its beat.
			if r.Incarnation == m.cfg.Incarnation && r.State != StateAlive && r.Beat >= m.beat {
				m.beat = r.Beat + 1
				if self := m.entries[r.URL]; self != nil {
					self.Beat = m.beat
					self.State = StateAlive
				}
			}
			continue
		}
		e := m.entries[r.URL]
		if e == nil {
			e = &entry{Member: r, lastFresh: now}
			// Imported claims keep their state; a gossiped tombstone must
			// not come back as a fresh alive member.
			m.entries[r.URL] = e
			if r.State == StateAlive || r.State == StateSuspect {
				m.mon.Heartbeat(r.URL, now)
				m.cfg.Logf("cluster: member %s joined (gossip)", r.URL)
			}
			continue
		}
		newer := r.Incarnation > e.Incarnation ||
			(r.Incarnation == e.Incarnation && r.Beat > e.Beat)
		same := r.Incarnation == e.Incarnation && r.Beat == e.Beat
		switch {
		case newer:
			e.Incarnation, e.Beat = r.Incarnation, r.Beat
			e.ID, e.Capacity = r.ID, r.Capacity
			e.Models = append(e.Models[:0], r.Models...)
			if r.State == StateDead || r.State == StateLeft {
				if e.State != r.State {
					m.cfg.Logf("cluster: member %s %s (gossip)", r.URL, r.State)
				}
				e.State = r.State
			} else {
				// Progress under the same life is liveness evidence, no
				// matter whether the peer believed alive or suspect.
				e.State = StateAlive
				e.lastFresh = now
				m.mon.Heartbeat(r.URL, now)
			}
		case same && r.State.rank() > e.State.rank():
			e.State = r.State
			m.cfg.Logf("cluster: member %s %s (gossip)", r.URL, r.State)
		}
	}
	m.mergeReplicationLocked(v.Replication)
}

// sweepLocked ages entries: the runenv monitor decides alive vs suspect,
// the longer windows decide dead and forgotten.
func (m *Membership) sweepLocked(now time.Time) {
	for u, e := range m.entries {
		if u == m.cfg.SelfURL {
			continue
		}
		age := now.Sub(e.lastFresh)
		switch e.State {
		case StateLeft, StateDead:
			if age > m.cfg.TombstoneAfter {
				delete(m.entries, u)
				delete(m.clients, u)
				m.mon.Forget(u)
			}
		default:
			if age > m.cfg.DeadAfter {
				e.State = StateDead
				e.Beat++ // the death claim must out-version the last alive beat
				m.cfg.Logf("cluster: member %s dead (silent %v)", u, age.Round(time.Millisecond))
			} else if st, err := m.mon.State(u, now); err == nil {
				if st == runenv.NodeSuspect && e.State == StateAlive {
					e.State = StateSuspect
					m.cfg.Logf("cluster: member %s suspect", u)
				} else if st == runenv.NodeLive {
					e.State = StateAlive
				}
			}
		}
	}
}

// View snapshots everything this process believes for a gossip reply.
// A non-empty from is the caller announcing itself: unknown addresses
// join as nascent members and get probed in later rounds.
func (m *Membership) View(from string) View {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from != "" && from != m.cfg.SelfURL && m.entries[from] == nil {
		m.entries[from] = &entry{
			Member:    Member{URL: from, State: StateAlive},
			lastFresh: time.Now(),
		}
		m.mon.Heartbeat(from, time.Now())
		m.cfg.Logf("cluster: member %s joined (announce)", from)
	}
	v := View{Members: make([]Member, 0, len(m.entries))}
	for _, e := range m.entries {
		mem := e.Member
		mem.Models = append([]string(nil), e.Models...)
		v.Members = append(v.Members, mem)
	}
	sortMembers(v.Members)
	if len(m.repl) > 0 {
		v.Replication = make(map[string]Replica, len(m.repl))
		for k, r := range m.repl {
			v.Replication[k] = r
		}
	}
	return v
}

// Members returns every known descriptor, tombstones included, sorted by
// URL.
func (m *Membership) Members() []Member {
	return m.View("").Members
}

// Active returns the members currently in the ring: alive and suspect.
// Suspects stay placed so a transient hiccup does not reshuffle the
// fleet; only confirmed death or departure moves models.
func (m *Membership) Active() []Member {
	var out []Member
	for _, mem := range m.Members() {
		if mem.State == StateAlive || mem.State == StateSuspect {
			out = append(out, mem)
		}
	}
	return out
}

// HandleLeave records a graceful departure claim for url at (inc, beat).
// Stale claims about a newer incarnation are ignored.
func (m *Membership) HandleLeave(u string, inc int64, beat uint64) error {
	if u == "" {
		return fmt.Errorf("cluster: leave without url")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[u]
	if e == nil {
		e = &entry{Member: Member{URL: u}, lastFresh: time.Now()}
		m.entries[u] = e
	}
	if inc < e.Incarnation || (inc == e.Incarnation && beat < e.Beat) {
		return nil
	}
	if e.State != StateLeft {
		m.cfg.Logf("cluster: member %s left", u)
	}
	e.Incarnation, e.Beat, e.State = inc, beat, StateLeft
	return nil
}

// Leave announces this member's departure to up to Fanout live peers and
// marks self left, so the next views it serves gossip the claim onward.
func (m *Membership) Leave(ctx context.Context) {
	m.mu.Lock()
	if m.cfg.SelfURL == "" {
		m.mu.Unlock()
		return
	}
	m.beat++
	beat := m.beat
	if self := m.entries[m.cfg.SelfURL]; self != nil {
		self.Beat = beat
		self.State = StateLeft
	}
	var peers []*libei.Client
	for u, e := range m.entries {
		if u != m.cfg.SelfURL && e.State == StateAlive && len(peers) < m.cfg.Fanout {
			peers = append(peers, m.clientFor(u))
		}
	}
	m.mu.Unlock()
	args := url.Values{}
	args.Set("url", m.cfg.SelfURL)
	args.Set("inc", fmt.Sprint(m.cfg.Incarnation))
	args.Set("beat", fmt.Sprint(beat))
	var wg sync.WaitGroup
	for _, c := range peers {
		wg.Add(1)
		go func(c *libei.Client) {
			defer wg.Done()
			_ = c.CallAlgorithmCtx(ctx, "cluster", "leave", args, nil)
		}(c)
	}
	wg.Wait()
}

// SetReplication sets a model's owner-set target, bumping its version so
// the change out-gossips every older claim. Reports whether it changed.
func (m *Membership) SetReplication(model string, n int) bool {
	if model == "" || n < 1 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.repl[model]
	if cur.N == n {
		return false
	}
	m.repl[model] = Replica{N: n, V: cur.V + 1}
	return true
}

// MergeReplication folds peer overrides in (higher version wins; equal
// versions keep the larger target so concurrent writers converge).
func (m *Membership) MergeReplication(in map[string]Replica) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mergeReplicationLocked(in)
}

func (m *Membership) mergeReplicationLocked(in map[string]Replica) {
	for model, r := range in {
		cur, ok := m.repl[model]
		if !ok || r.V > cur.V || (r.V == cur.V && r.N > cur.N) {
			m.repl[model] = r
		}
	}
}

// Replication snapshots the current per-model overrides.
func (m *Membership) Replication() map[string]Replica {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Replica, len(m.repl))
	for k, r := range m.repl {
		out[k] = r
	}
	return out
}
