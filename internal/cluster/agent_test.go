package cluster

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// anode is a full node for agent tests: manager, engine, libei server,
// and the cluster agent, ticked by hand for determinism.
type anode struct {
	id    string
	url   string
	ts    *httptest.Server
	mgr   *pkgmgr.Manager
	agent *Agent
}

var agentCatalog = []string{"shard-a", "shard-b", "shard-c", "shard-d"}

func shardModel(name string) (*nn.Model, error) {
	m := nn.MustModel(name, []int{8}, []nn.LayerSpec{{Type: "dense", In: 8, Out: 4}})
	m.InitParams(rand.New(rand.NewSource(int64(hash64(name)))))
	return m, nil
}

func mkArgs(kv map[string]string) url.Values {
	args := url.Values{}
	for k, v := range kv {
		args.Set(k, v)
	}
	return args
}

func newANode(t *testing.T, id string, inc int64, seeds ...string) *anode {
	return newANodeCfg(t, id, inc, nil, seeds...)
}

func newANodeCfg(t *testing.T, id string, inc int64, mut func(*AgentConfig), seeds ...string) *anode {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	engine := serving.NewEngine(mgr, serving.Config{Replicas: 1, MaxBatch: 4, QueueDepth: 128})
	t.Cleanup(engine.Close)
	srv := libei.NewServer(id, nil, mgr)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cfg := AgentConfig{
		Self:           ts.URL,
		Seeds:          seeds,
		Catalog:        agentCatalog,
		Provider:       shardModel,
		Replication:    2,
		MaxZooFraction: 1, // uncapped: these tests pin reconciliation, not bounded load
		EvictAfter:     2,
		Membership: MembershipConfig{
			Interval:    testInterval,
			Incarnation: inc,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	agent, err := NewAgent(mgr, engine, srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &anode{id: id, url: ts.URL, ts: ts, mgr: mgr, agent: agent}
}

func rounds(nodes []*anode, base time.Time, from, to int) {
	for r := from; r < to; r++ {
		for _, n := range nodes {
			n.agent.TickRound(base.Add(time.Duration(r) * testInterval))
		}
	}
}

func TestAgentsConvergeOnOnePlan(t *testing.T) {
	base := time.Now()
	a := newANode(t, "edge-a", 1)
	b := newANode(t, "edge-b", 2, a.url)
	c := newANode(t, "edge-c", 3, a.url)
	nodes := []*anode{a, b, c}

	rounds(nodes, base, 0, 8)

	plan := a.agent.Plan()
	for _, n := range nodes[1:] {
		if !reflect.DeepEqual(plan, n.agent.Plan()) {
			t.Fatalf("plans diverge:\n%s: %v\n%s: %v", a.id, plan, n.id, n.agent.Plan())
		}
	}
	for _, model := range agentCatalog {
		owners := plan[model]
		if len(owners) != 2 {
			t.Fatalf("%s owners = %v, want 2", model, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("%s owners not distinct: %v", model, owners)
		}
	}
	// Every owner actually loaded its assignment, and nothing else from
	// the catalog.
	for _, n := range nodes {
		var want []string
		for _, model := range agentCatalog {
			for _, o := range plan[model] {
				if o == n.url {
					want = append(want, model)
				}
			}
		}
		sort.Strings(want)
		got := n.mgr.Models()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s loaded %v, plan says %v", n.id, got, want)
		}
	}
}

func TestAgentsRebalanceAfterDeath(t *testing.T) {
	base := time.Now()
	a := newANode(t, "edge-a", 1)
	b := newANode(t, "edge-b", 2, a.url)
	c := newANode(t, "edge-c", 3, a.url)
	rounds([]*anode{a, b, c}, base, 0, 8)

	// Kill a non-seed node that owns at least one model (at most one of
	// the three can own nothing, so b or c qualifies).
	owned := func(n *anode) int {
		count := 0
		for _, model := range agentCatalog {
			for _, o := range a.agent.Plan()[model] {
				if o == n.url {
					count++
				}
			}
		}
		return count
	}
	victim, survivor := c, b
	if owned(c) == 0 {
		victim, survivor = b, c
	}
	if owned(victim) == 0 {
		t.Fatalf("no killable node owns anything: %v", a.agent.Plan())
	}

	victim.ts.Close() // crash
	survivors := []*anode{a, survivor}
	// DeadAfter = 12 intervals; give eviction hysteresis room on top.
	rounds(survivors, base, 8, 40)

	plan := a.agent.Plan()
	if !reflect.DeepEqual(plan, survivor.agent.Plan()) {
		t.Fatalf("survivor plans diverge: %v vs %v", plan, survivor.agent.Plan())
	}
	loaded := map[string][]string{a.url: a.mgr.Models(), survivor.url: survivor.mgr.Models()}
	for _, model := range agentCatalog {
		owners := plan[model]
		if len(owners) == 0 {
			t.Fatalf("%s unowned after rebalance", model)
		}
		for _, o := range owners {
			if o == victim.url {
				t.Fatalf("%s still assigned to the dead node", model)
			}
			found := false
			for _, m := range loaded[o] {
				if m == model {
					found = true
				}
			}
			if !found {
				t.Errorf("%s not loaded on its owner %s (has %v)", model, o, loaded[o])
			}
		}
	}
}

// TestAgentEvictionHysteresis: a model moving off a node is unloaded
// only after EvictAfter consecutive un-owned reconciles, so plan flaps
// during churn do not thrash weights.
func TestAgentEvictionHysteresis(t *testing.T) {
	base := time.Now()
	// Replication 1 so a second node joining definitely moves models.
	single := func(c *AgentConfig) { c.Replication = 1 }
	a := newANodeCfg(t, "edge-a", 1, single)
	rounds([]*anode{a}, base, 0, 3)
	// Alone in the cluster, a owns everything despite the cap fallback.
	if got := len(a.mgr.Models()); got != len(agentCatalog) {
		t.Fatalf("solo node loaded %d models, want all %d", got, len(agentCatalog))
	}

	// A second node joins: some models move; their unload must lag the
	// plan by EvictAfter (2) rounds.
	b := newANodeCfg(t, "edge-b", 2, single, a.url)
	rounds([]*anode{a, b}, base, 3, 5)
	moved := ""
	for _, model := range agentCatalog {
		mine := false
		for _, o := range a.agent.Plan()[model] {
			if o == a.url {
				mine = true
			}
		}
		if !mine {
			moved = model
		}
	}
	if moved == "" {
		t.Skip("plan kept everything on edge-a; nothing to assert")
	}
	still := false
	for _, m := range a.mgr.Models() {
		if m == moved {
			still = true
		}
	}
	if !still {
		t.Fatalf("%s evicted on the first un-owned round", moved)
	}
	rounds([]*anode{a, b}, base, 5, 9)
	for _, m := range a.mgr.Models() {
		if m == moved {
			t.Fatalf("%s never evicted", moved)
		}
	}
}

func TestAgentRegistersClusterAlgorithms(t *testing.T) {
	a := newANode(t, "edge-a", 1)
	algos, err := libei.NewClient(a.url).Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cluster/view": true, "cluster/leave": true, "cluster/replication": true}
	for _, al := range algos {
		delete(want, al)
	}
	if len(want) != 0 {
		t.Fatalf("missing algorithms: %v (got %v)", want, algos)
	}
	// And the replication push path works end to end over HTTP.
	var got map[string]Replica
	args := mkArgs(map[string]string{"model": "shard-a", "n": "3", "v": "5"})
	if err := libei.NewClient(a.url).CallAlgorithm("cluster", "replication", args, &got); err != nil {
		t.Fatal(err)
	}
	if got["shard-a"].N != 3 || got["shard-a"].V != 5 {
		t.Fatalf("replication push: %+v", got)
	}
	if fmt.Sprint(a.agent.Membership().Replication()["shard-a"].N) != "3" {
		t.Fatal("override not merged into membership")
	}
}
