package cluster

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// This file is the sharding half of the subsystem: a consistent-hash
// ring with virtual nodes, and the bounded-load placement plan built on
// it. Placement is a pure function of (members, catalog, replication,
// cap), so every process that has converged on the same member view
// computes the same plan with no coordination round.

// DefaultVNodes is the virtual-node count per member. 64 points per
// member keeps the per-model owner choice within a few percent of
// uniform for fleets of tens of nodes while ring rebuilds stay cheap.
const DefaultVNodes = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

type ringPoint struct {
	h   uint64
	idx int // index into Ring.members
}

// Ring is a consistent-hash ring over member URLs. Zero value is unusable;
// build with NewRing.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing hashes every member onto the ring vnodes times (vnodes ≤ 0
// means DefaultVNodes). Member order does not matter: inputs are
// deduplicated and sorted, so equal member sets build identical rings.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m != "" && !uniq[m] {
			uniq[m] = true
			sorted = append(sorted, m)
		}
	}
	sort.Strings(sorted)
	r := &Ring{members: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for i, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: hash64(m + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// Members returns the ring's member URLs, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owners walks clockwise from key's hash and collects up to n distinct
// members accepted by the filter (nil accepts all). Fewer than n come
// back when the ring runs out of acceptable members.
func (r *Ring) Owners(key string, n int, accept func(member string) bool) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= hash64(key) })
	taken := make(map[int]bool, n)
	var out []string
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.idx] {
			continue
		}
		taken[p.idx] = true // each member is considered once, at its first point
		m := r.members[p.idx]
		if accept == nil || accept(m) {
			out = append(out, m)
		}
	}
	return out
}

// NodeCap converts a max-zoo fraction into a per-node model cap, never
// below one so a tiny catalog still places.
func NodeCap(maxFraction float64, catalogSize int) int {
	if maxFraction <= 0 || maxFraction >= 1 {
		return catalogSize
	}
	c := int(math.Ceil(maxFraction * float64(catalogSize)))
	if c < 1 {
		c = 1
	}
	return c
}

// PlanPlacement assigns every catalog model an owner set: base owners by
// default, overridden per model by replication targets, clamped to the
// member count. The walk skips members already holding NodeCap models
// (bounded-load consistent hashing), so no member exceeds roughly
// maxFraction of the catalog as long as the fleet has the slack for it;
// replication outranks the cap when the two conflict, so a model never
// loses owners to saturation. Models are placed in sorted-name order,
// making the plan deterministic for a given input.
func PlanPlacement(members, catalog []string, base int, overrides map[string]Replica, maxFraction float64, vnodes int) map[string][]string {
	if len(members) == 0 || len(catalog) == 0 {
		return map[string][]string{}
	}
	if base < 1 {
		base = 1
	}
	ring := NewRing(members, vnodes)
	cap := NodeCap(maxFraction, len(catalog))
	load := make(map[string]int, len(ring.members))
	models := append([]string(nil), catalog...)
	sort.Strings(models)
	plan := make(map[string][]string, len(models))
	for _, model := range models {
		n := base
		if o, ok := overrides[model]; ok && o.N > 0 {
			n = o.N
		}
		if n > len(ring.members) {
			n = len(ring.members)
		}
		owners := ring.Owners(model, n, func(m string) bool { return load[m] < cap })
		if len(owners) < n {
			// Replication outranks the cap: when the walk starves (every
			// remaining candidate is saturated), top the owner set up from
			// the unfiltered successor order anyway.
			seen := make(map[string]bool, len(owners))
			for _, m := range owners {
				seen[m] = true
			}
			for _, m := range ring.Owners(model, len(ring.members), nil) {
				if len(owners) >= n {
					break
				}
				if !seen[m] {
					owners = append(owners, m)
				}
			}
		}
		for _, m := range owners {
			load[m]++
		}
		plan[model] = owners
	}
	return plan
}
