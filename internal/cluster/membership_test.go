package cluster

import (
	"context"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"openei/internal/libei"
)

// tnode is a bare gossip member for membership tests: a libei server
// carrying only the cluster algorithms, backed by a Membership.
type tnode struct {
	id  string
	url string
	ts  *httptest.Server
	mem *Membership
}

const testInterval = 50 * time.Millisecond

func newTNode(t *testing.T, id string, inc int64, seeds ...string) *tnode {
	t.Helper()
	srv := libei.NewServer(id, nil, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	n := &tnode{id: id, url: ts.URL, ts: ts}
	n.mem = NewMembership(MembershipConfig{
		SelfURL:     ts.URL,
		SelfID:      id,
		Seeds:       seeds,
		Interval:    testInterval,
		Incarnation: inc,
	})
	regs := []libei.Registration{
		{Scenario: "cluster", Name: "view", Fn: func(args url.Values) (any, error) {
			return n.mem.View(args.Get("from")), nil
		}},
		{Scenario: "cluster", Name: "leave", Fn: func(args url.Values) (any, error) {
			inc, _ := strconv.ParseInt(args.Get("inc"), 10, 64)
			beat, _ := strconv.ParseUint(args.Get("beat"), 10, 64)
			return nil, n.mem.HandleLeave(args.Get("url"), inc, beat)
		}},
	}
	if err := srv.RegisterAll(regs); err != nil {
		t.Fatal(err)
	}
	return n
}

// mergeView folds a view in under the lock — test shim for merge-rule
// assertions that bypass the network.
func mergeView(m *Membership, v View, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mergeViewLocked(v, now)
}

// tick runs one gossip round on every node at the given fake time.
func tick(nodes []*tnode, at time.Time) {
	for _, n := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), testInterval*4)
		n.mem.Tick(ctx, at)
		cancel()
	}
}

func states(m *Membership) map[string]MemberState {
	out := map[string]MemberState{}
	for _, mem := range m.Members() {
		out[mem.URL] = mem.State
	}
	return out
}

func TestMembershipConvergesOnJoin(t *testing.T) {
	base := time.Now()
	a := newTNode(t, "edge-a", 1)
	b := newTNode(t, "edge-b", 2, a.url)
	c := newTNode(t, "edge-c", 3, a.url)
	nodes := []*tnode{a, b, c}

	for r := 0; r < 6; r++ {
		tick(nodes, base.Add(time.Duration(r)*testInterval))
	}
	for _, n := range nodes {
		st := states(n.mem)
		if len(st) != 3 {
			t.Fatalf("%s sees %d members: %v", n.id, len(st), st)
		}
		for u, s := range st {
			if s != StateAlive {
				t.Errorf("%s sees %s as %s, want alive", n.id, u, s)
			}
		}
	}
	// IDs and incarnations propagate too.
	for _, mem := range a.mem.Members() {
		if mem.ID == "" {
			t.Errorf("member %s gossiped without an ID", mem.URL)
		}
	}
}

func TestMembershipObserverSeesFleetWithoutJoining(t *testing.T) {
	base := time.Now()
	a := newTNode(t, "edge-a", 1)
	b := newTNode(t, "edge-b", 2, a.url)
	nodes := []*tnode{a, b}
	obs := NewMembership(MembershipConfig{
		Seeds:    []string{a.url},
		Interval: testInterval,
	})
	for r := 0; r < 5; r++ {
		at := base.Add(time.Duration(r) * testInterval)
		tick(nodes, at)
		ctx, cancel := context.WithTimeout(context.Background(), testInterval*4)
		obs.Tick(ctx, at)
		cancel()
	}
	if got := len(obs.Active()); got != 2 {
		t.Fatalf("observer sees %d active members, want 2: %+v", got, obs.Members())
	}
	// The observer never announced itself: members know only each other.
	if got := len(a.mem.Members()); got != 2 {
		t.Fatalf("observer leaked into the member view: %+v", a.mem.Members())
	}
}

func TestMembershipDetectsDeathAndTombstones(t *testing.T) {
	base := time.Now()
	a := newTNode(t, "edge-a", 1)
	b := newTNode(t, "edge-b", 2, a.url)
	c := newTNode(t, "edge-c", 3, a.url)
	survivors := []*tnode{a, b}

	for r := 0; r < 6; r++ {
		tick([]*tnode{a, b, c}, base.Add(time.Duration(r)*testInterval))
	}
	c.ts.Close() // crash, no goodbye

	// SuspectAfter = 4 intervals, DeadAfter = 12: walk fake time forward
	// and watch the state ladder on both survivors.
	var sawSuspect bool
	deadline := 14 * 4 * testInterval
	for r := 6; time.Duration(r)*testInterval < deadline; r++ {
		tick(survivors, base.Add(time.Duration(r)*testInterval))
		st := states(a.mem)[c.url]
		if st == StateSuspect {
			sawSuspect = true
		}
		if st == StateDead {
			break
		}
	}
	if !sawSuspect {
		t.Error("edge-c never passed through suspect before dead")
	}
	for _, n := range survivors {
		if st := states(n.mem)[c.url]; st != StateDead {
			t.Fatalf("%s sees crashed node as %s, want dead", n.id, st)
		}
		for _, mem := range n.mem.Active() {
			if mem.URL == c.url {
				t.Fatalf("%s still lists the dead node as active", n.id)
			}
		}
	}
	// Tombstone expiry forgets the entry entirely.
	tick(survivors, base.Add(200*4*testInterval))
	if _, ok := states(a.mem)[c.url]; ok {
		t.Fatal("dead entry survived past tombstone expiry")
	}
}

func TestMembershipGracefulLeavePropagates(t *testing.T) {
	base := time.Now()
	a := newTNode(t, "edge-a", 1)
	b := newTNode(t, "edge-b", 2, a.url)
	c := newTNode(t, "edge-c", 3, a.url)

	for r := 0; r < 6; r++ {
		tick([]*tnode{a, b, c}, base.Add(time.Duration(r)*testInterval))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	c.mem.Leave(ctx)
	cancel()

	// The leave call reached some peers directly; gossip must carry it
	// to the rest without anyone talking to the departed node again.
	for r := 6; r < 12; r++ {
		tick([]*tnode{a, b}, base.Add(time.Duration(r)*testInterval))
	}
	for _, n := range []*tnode{a, b} {
		if st := states(n.mem)[c.url]; st != StateLeft {
			t.Fatalf("%s sees departed node as %s, want left", n.id, st)
		}
	}
}

// TestMembershipRestartWinsByIncarnation: a node that dies and comes
// back under the same URL with a higher incarnation must be believed
// alive again everywhere, despite the dead tombstone gossiping around.
func TestMembershipRestartWinsByIncarnation(t *testing.T) {
	base := time.Now()
	a := newTNode(t, "edge-a", 1)
	b := newTNode(t, "edge-b", 2, a.url)

	for r := 0; r < 4; r++ {
		tick([]*tnode{a, b}, base.Add(time.Duration(r)*testInterval))
	}
	// b "crashes": close its listener but keep the URL slot; mark it dead
	// on a by aging.
	b.ts.Close()
	r := 4
	for ; states(a.mem)[b.url] != StateDead; r++ {
		if r > 400 {
			t.Fatal("b never declared dead")
		}
		tick([]*tnode{a}, base.Add(time.Duration(r)*testInterval))
	}

	// Restart: a fresh process at a fresh URL is the common case, but the
	// same-URL restart is the one incarnations exist for. Simulate by
	// announcing b's URL again: a probes it next round (it answers from a
	// new listener bound to... httptest cannot rebind, so verify the merge
	// rule directly instead: a restarted incarnation out-versions a dead
	// tombstone).
	a.mem.mu.Lock()
	dead := a.mem.entries[b.url]
	deadInc, deadBeat := dead.Incarnation, dead.Beat
	a.mem.mu.Unlock()
	mergeView(a.mem, View{Members: []Member{{
		URL: b.url, ID: "edge-b", Incarnation: deadInc + 100, Beat: 1, State: StateAlive,
	}}}, base.Add(time.Duration(r)*testInterval))
	if st := states(a.mem)[b.url]; st != StateAlive {
		t.Fatalf("restarted incarnation not believed: %s", st)
	}
	// And the stale dead claim, replayed, loses.
	mergeView(a.mem, View{Members: []Member{{
		URL: b.url, Incarnation: deadInc, Beat: deadBeat, State: StateDead,
	}}}, base.Add(time.Duration(r+1)*testInterval))
	if st := states(a.mem)[b.url]; st != StateAlive {
		t.Fatalf("stale dead claim resurrected: %s", st)
	}
}

func TestReplicationMergeRules(t *testing.T) {
	m := NewMembership(MembershipConfig{Interval: testInterval})
	if !m.SetReplication("mlp", 3) {
		t.Fatal("first set must report change")
	}
	if m.SetReplication("mlp", 3) {
		t.Fatal("idempotent set must not report change")
	}
	m.MergeReplication(map[string]Replica{"mlp": {N: 2, V: 0}}) // stale
	if got := m.Replication()["mlp"]; got.N != 3 {
		t.Fatalf("stale merge overwrote: %+v", got)
	}
	m.MergeReplication(map[string]Replica{"mlp": {N: 5, V: 9}}) // newer
	if got := m.Replication()["mlp"]; got.N != 5 || got.V != 9 {
		t.Fatalf("newer merge ignored: %+v", got)
	}
	// Equal version: larger target wins, so concurrent writers converge.
	m.MergeReplication(map[string]Replica{"mlp": {N: 6, V: 9}})
	if got := m.Replication()["mlp"]; got.N != 6 {
		t.Fatalf("equal-version tiebreak: %+v", got)
	}
	m.MergeReplication(map[string]Replica{"mlp": {N: 4, V: 9}})
	if got := m.Replication()["mlp"]; got.N != 6 {
		t.Fatalf("equal-version smaller target won: %+v", got)
	}
	// SetReplication after a merge must out-version it.
	m.SetReplication("mlp", 2)
	if got := m.Replication()["mlp"]; got.N != 2 || got.V != 10 {
		t.Fatalf("set after merge: %+v", got)
	}
}
