package cluster

import (
	"sync"
	"time"
)

// This file is the fleet-level half of autoscaling: a gateway watches
// each model's aggregate serving pressure across its owners and widens
// or narrows the owner set. (The node-local half — per-pipeline replica
// width — lives in the agent.)

// AutoscaleConfig tunes the owner-set controller.
type AutoscaleConfig struct {
	// Min and Max bound every model's owner-set size. Min defaults to
	// the cluster's base replication; Max defaults to 4.
	Min, Max int
	// GrowQueue is the queued-requests-per-owner threshold that marks a
	// model hot. Default 8.
	GrowQueue int
	// GrowP95 marks a model hot when its worst owner p95 exceeds it;
	// zero disables the latency trigger.
	GrowP95 time.Duration
	// GrowAfter / ShrinkAfter are consecutive-observation requirements
	// (hysteresis). Defaults 2 and 6: growing reacts in two rounds,
	// shrinking waits out six quiet ones.
	GrowAfter   int
	ShrinkAfter int
}

func (c *AutoscaleConfig) fill() {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.GrowQueue <= 0 {
		c.GrowQueue = 8
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 2
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 6
	}
}

// Autoscaler decides per-model owner-set sizes with hysteresis. It is
// deliberately dumb about transport: callers feed observations and apply
// the returned targets (via Membership.SetReplication plus a push to the
// nodes).
type Autoscaler struct {
	cfg AutoscaleConfig

	mu   sync.Mutex
	hot  map[string]int
	cold map[string]int
}

// NewAutoscaler builds a controller.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	cfg.fill()
	return &Autoscaler{cfg: cfg, hot: map[string]int{}, cold: map[string]int{}}
}

// Observe feeds one round's aggregate signals for a model: its current
// owner count, the total queued requests across owners, and the worst
// owner p95. It returns the new owner-set target and whether it changed.
func (a *Autoscaler) Observe(model string, owners, queued int, p95 time.Duration) (int, bool) {
	if owners < 1 {
		owners = 1
	}
	perOwner := queued / owners
	hot := perOwner >= a.cfg.GrowQueue ||
		(a.cfg.GrowP95 > 0 && p95 >= a.cfg.GrowP95)
	cold := queued == 0 && (a.cfg.GrowP95 == 0 || p95 < a.cfg.GrowP95/2)

	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case hot:
		a.cold[model] = 0
		a.hot[model]++
		if a.hot[model] >= a.cfg.GrowAfter && owners < a.cfg.Max {
			a.hot[model] = 0
			return owners + 1, true
		}
	case cold:
		a.hot[model] = 0
		a.cold[model]++
		if a.cold[model] >= a.cfg.ShrinkAfter && owners > a.cfg.Min {
			a.cold[model] = 0
			return owners - 1, true
		}
	default:
		a.hot[model], a.cold[model] = 0, 0
	}
	return owners, false
}
