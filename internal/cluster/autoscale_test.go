package cluster

import (
	"testing"
	"time"
)

func TestAutoscalerGrowsWithHysteresis(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 2, Max: 4, GrowQueue: 8, GrowAfter: 2, ShrinkAfter: 3})

	// One hot observation is not enough.
	if n, changed := a.Observe("mlp", 2, 40, 0); changed {
		t.Fatalf("grew after one hot round: %d", n)
	}
	n, changed := a.Observe("mlp", 2, 40, 0)
	if !changed || n != 3 {
		t.Fatalf("second hot round: n=%d changed=%v, want 3,true", n, changed)
	}
	// Counter reset after acting: the next growth needs two more rounds.
	if _, changed := a.Observe("mlp", 3, 60, 0); changed {
		t.Fatal("grew immediately after acting")
	}
	if n, _ = a.Observe("mlp", 3, 60, 0); n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
	// Max bound.
	a.Observe("mlp", 4, 100, 0)
	if n, changed := a.Observe("mlp", 4, 100, 0); changed || n != 4 {
		t.Fatalf("exceeded Max: n=%d changed=%v", n, changed)
	}
}

func TestAutoscalerShrinksReluctantly(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 2, Max: 4, GrowQueue: 8, GrowAfter: 2, ShrinkAfter: 3})
	for i := 0; i < 2; i++ {
		if n, changed := a.Observe("mlp", 3, 0, 0); changed {
			t.Fatalf("shrank after %d cold rounds: %d", i+1, n)
		}
	}
	if n, changed := a.Observe("mlp", 3, 0, 0); !changed || n != 2 {
		t.Fatalf("third cold round: n=%d changed=%v, want 2,true", n, changed)
	}
	// Min bound: never below.
	for i := 0; i < 10; i++ {
		if n, changed := a.Observe("mlp", 2, 0, 0); changed || n != 2 {
			t.Fatalf("shrank below Min: n=%d changed=%v", n, changed)
		}
	}
}

func TestAutoscalerMixedSignalsResetCounters(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 4, GrowQueue: 8, GrowAfter: 2, ShrinkAfter: 2})
	a.Observe("mlp", 2, 40, 0) // hot ×1
	a.Observe("mlp", 2, 4, 0)  // middling: resets both counters
	if n, changed := a.Observe("mlp", 2, 40, 0); changed {
		t.Fatalf("hot counter survived a neutral round: %d", n)
	}
	// p95 trigger works independently of queue depth.
	b := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 4, GrowQueue: 1000, GrowP95: 50 * time.Millisecond, GrowAfter: 1})
	if n, changed := b.Observe("vgg-m", 2, 0, 80*time.Millisecond); !changed || n != 3 {
		t.Fatalf("p95 trigger: n=%d changed=%v", n, changed)
	}
	// Models are tracked independently.
	if _, changed := b.Observe("lenet", 2, 0, 0); changed {
		t.Fatal("cold model affected by hot one")
	}
}
