// Package cluster turns a set of independent OpenEI edges into one
// self-organizing serving fleet, the "dynamic changes in topology" half
// of the paper's §IV.C open problem. It has three cooperating parts:
//
//   - Membership: SWIM-style gossip over the existing libei REST surface.
//     A node's liveness signal is its own /ei_status answer (probed with
//     collab.ProbePeers, judged by runenv.Monitor), and each gossip round
//     pulls a peer's member view through a registered cluster/view
//     algorithm, so join, leave, and death propagate to every member and
//     gateway in a bounded number of rounds with no extra protocol.
//
//   - Sharding: a consistent-hash ring with virtual nodes assigns every
//     zoo model an owner set of configurable size. Placement is a pure
//     function of the (converging) member view, so nodes and gateways
//     compute the same plan without coordination: nodes load and evict
//     models through pkgmgr as the plan shifts, gateways route a model's
//     requests at its owners instead of the whole fleet. A bounded-load
//     walk keeps any one node below a configured fraction of the zoo.
//
//   - Autoscaling: a per-model replica controller. Gateways watch each
//     model's aggregate queue depth and p95 latency (from /ei_metrics)
//     and grow or shrink its owner set with hysteresis; the new target
//     gossips to the nodes as a versioned override. Each node separately
//     resizes its local replica pools through the serving engine's
//     zero-drop Swap machinery.
package cluster

import (
	"sort"
	"time"
)

// MemberState is a member's health as this process currently believes it.
type MemberState string

const (
	// StateAlive: fresh liveness evidence within the suspect window.
	StateAlive MemberState = "alive"
	// StateSuspect: no evidence for longer than the monitor timeout, but
	// not long enough to declare death. Suspects stay in the ring so a
	// transient hiccup does not reshuffle every placement.
	StateSuspect MemberState = "suspect"
	// StateDead: silent past DeadAfter. Dead members leave the ring; the
	// entry lingers as a tombstone so stale gossip cannot resurrect it.
	StateDead MemberState = "dead"
	// StateLeft: the member announced a graceful departure.
	StateLeft MemberState = "left"
)

// rank orders states for merge tie-breaks at equal (incarnation, beat):
// a stronger claim wins, exactly SWIM's override rules.
func (s MemberState) rank() int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	case StateLeft:
		return 3
	}
	return -1
}

// Member is one node's gossiped descriptor.
type Member struct {
	// URL is the member's advertised base address — the cluster-wide key.
	URL string `json:"url"`
	// ID is the node's self-reported identity from /ei_status.
	ID string `json:"id,omitempty"`
	// Incarnation distinguishes process lifetimes of the same URL (the
	// agent stamps its start time in unix nanoseconds). A restarted node
	// carries a higher incarnation and wins against every stale claim
	// about its previous life.
	Incarnation int64 `json:"incarnation"`
	// Beat is the member's own gossip-round counter under the current
	// incarnation; views merge by max (Incarnation, Beat).
	Beat uint64 `json:"beat"`
	// State is the believed health at the gossiping process.
	State MemberState `json:"state"`
	// Capacity is the member's RAM budget (Status.MemBytes).
	Capacity int64 `json:"capacity,omitempty"`
	// Models is the member's advertised loaded-model set.
	Models []string `json:"models,omitempty"`
}

// Replica is one model's versioned owner-set target. Merges are
// last-writer-wins on version with the larger target breaking ties, so
// concurrent writers converge.
type Replica struct {
	N int    `json:"n"`
	V uint64 `json:"v"`
}

// View is the wire payload of the cluster/view algorithm: everything one
// process believes, for anti-entropy exchange.
type View struct {
	// Members holds every known descriptor, tombstones included (a left
	// or dead entry must out-gossip the stale alive claims about it).
	Members []Member `json:"members"`
	// Replication is the per-model owner-set overrides.
	Replication map[string]Replica `json:"replication,omitempty"`
}

// sortMembers orders a descriptor slice by URL for stable output.
func sortMembers(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].URL < ms[j].URL })
}

// nonzero returns d, or def when d is zero — config defaulting helper.
func nonzero(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	return d
}
