package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// DebugMux builds the pprof mux mounted on -debug-addr. A dedicated mux
// (rather than http.DefaultServeMux) keeps the profiling surface off the
// serving listener entirely.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// SetProfileRates applies the runtime block/mutex profiling knobs.
// blockRate is the runtime.SetBlockProfileRate argument (ns between
// sampled blocking events; 0 disables); mutexFrac is the
// runtime.SetMutexProfileFraction argument (1/n mutex contention events
// sampled; 0 disables). Negative values leave the current setting.
func SetProfileRates(blockRate, mutexFrac int) {
	if blockRate >= 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	if mutexFrac >= 0 {
		runtime.SetMutexProfileFraction(mutexFrac)
	}
}

// StartDebugServer serves DebugMux on addr (goroutine; caller closes the
// returned server). It returns the bound listener address so ":0" works
// in tests and logs.
func StartDebugServer(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
