package obs

import (
	"strconv"
	"strings"
)

// TB is the sliver of *testing.T the format checker needs; an interface
// so this file carries no testing import into the binaries.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// CheckPromFormat asserts s is well-formed Prometheus text exposition
// (format 0.0.4): every non-comment line is `name{labels} value` with a
// parseable value and a preceding TYPE header, histogram series resolve
// to their family name, metric names use only legal characters. Used by
// this package's tests and the root scenario tests against the live
// /metrics endpoints.
func CheckPromFormat(t TB, s string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("prom line %d: bad comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("prom line %d: no value separator in %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("prom line %d: bad value %q in %q", ln+1, value, line)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("prom line %d: unbalanced labels in %q", ln+1, line)
			}
			name = series[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !typed[base] {
			t.Fatalf("prom line %d: sample %q has no TYPE header", ln+1, name)
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("prom line %d: invalid metric name %q", ln+1, name)
			}
		}
	}
}
