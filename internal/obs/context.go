package obs

import "context"

type ctxKey struct{}

// NewContext attaches a trace buffer to ctx so layers below the HTTP
// handler (serving engine, autopilot offload) can record spans without
// widening their interfaces. A nil buffer returns ctx unchanged.
func NewContext(ctx context.Context, b *TraceBuf) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext returns the attached trace buffer, or nil.
func FromContext(ctx context.Context) *TraceBuf {
	b, _ := ctx.Value(ctxKey{}).(*TraceBuf)
	return b
}
