package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// This file renders Prometheus text exposition format 0.0.4 from the
// very snapshot structs the JSON metrics endpoints marshal. There is no
// second registry to keep in sync: WriteProm walks the struct via its
// `json` tags, so every field that appears in /ei_metrics or /gw_metrics
// appears under /metrics with a derived name, and a field added to one
// view shows up in the other automatically. The root metrics-parity test
// asserts this property over the live endpoints.
//
// Mapping rules (documented in docs/METRICS.md):
//   - numeric and bool fields    → one sample named ns_<json path joined by _>
//   - fields tagged with an identifying key (model, tenant, url, node_id,
//     step, key) whose value is a string or int → labels on their siblings
//   - other string fields        → <path>_info{<field>="value"} 1
//   - []string fields            → <path>_count = len
//   - maps                       → key becomes the "key" label
//   - slices of unlabeled structs → synthetic idx label
//
// Histograms (the HDR latency/stage histograms) are rendered separately
// by WriteHistograms from explicit bucket exports, since raw buckets are
// deliberately absent from the JSON view.

// labelKeys are json tags treated as identifying labels rather than
// sample values when their field is a string or integer.
var labelKeys = map[string]bool{
	"model":   true,
	"tenant":  true,
	"url":     true,
	"node_id": true,
	"step":    true,
	"key":     true,
}

// counterNames marks json leaf names whose samples are monotonic
// counters; everything else is exposed as a gauge.
var counterNames = map[string]bool{
	"enqueued": true, "completed": true, "rejected_overload": true,
	"expired_deadline": true, "errors": true, "batches": true,
	"early_exit": true, "count": true,
	"admitted": true, "shed_throttle": true, "shed_queue": true,
	"served": true,
	"routed": true, "retried": true, "shed": true, "failed": true,
	"hedged": true, "upstream_overloaded": true, "upstream_deadline": true,
	"deadline_stopped": true, "cache_hits": true, "cache_misses": true,
	"scale_events": true, "requests": true, "transport_errors": true,
	"fails": true, "breaker_trips": true,
	"started": true, "kept": true, "dropped": true, "span_overflow": true,
}

type promLabel struct{ k, v string }

type promSample struct {
	labels []promLabel
	value  string
}

type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

type promDoc struct {
	order    []string
	families map[string]*promFamily
}

func (d *promDoc) add(name, typ string, labels []promLabel, value string) {
	f, ok := d.families[name]
	if !ok {
		f = &promFamily{name: name, typ: typ}
		d.families[name] = f
		d.order = append(d.order, name)
	}
	f.samples = append(f.samples, promSample{labels: labels, value: value})
}

// WriteProm renders v — a JSON-tagged metrics snapshot — in Prometheus
// exposition format 0.0.4 under the given namespace prefix.
func WriteProm(w io.Writer, ns string, v any) {
	d := &promDoc{families: map[string]*promFamily{}}
	walkProm(d, ns, nil, reflect.ValueOf(v))
	d.write(w)
}

func (d *promDoc) write(w io.Writer) {
	for _, name := range d.order {
		f := d.families[name]
		fmt.Fprintf(w, "# HELP %s Field %s of the JSON metrics document.\n", f.name, strings.TrimPrefix(f.name, "openei_"))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			io.WriteString(w, f.name)
			writeLabels(w, s.labels)
			io.WriteString(w, " ")
			io.WriteString(w, s.value)
			io.WriteString(w, "\n")
		}
	}
}

func writeLabels(w io.Writer, labels []promLabel) {
	if len(labels) == 0 {
		return
	}
	io.WriteString(w, "{")
	for i, l := range labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s=%q", l.k, escapeLabel(l.v))
	}
	io.WriteString(w, "}")
}

// escapeLabel handles the exposition-format label escapes; %q supplies
// the quote and backslash escaping, newlines are the remaining case.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

func sanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func walkProm(d *promDoc, path string, labels []promLabel, rv reflect.Value) {
	for rv.Kind() == reflect.Pointer || rv.Kind() == reflect.Interface {
		if rv.IsNil() {
			return
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Struct:
		walkStruct(d, path, labels, rv)
	case reflect.Map:
		keys := make([]string, 0, rv.Len())
		for _, k := range rv.MapKeys() {
			if k.Kind() == reflect.String {
				keys = append(keys, k.String())
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			kl := append(append([]promLabel{}, labels...), promLabel{"key", k})
			walkProm(d, path, kl, rv.MapIndex(reflect.ValueOf(k)))
		}
	case reflect.Slice, reflect.Array:
		walkSlice(d, path, labels, rv)
	case reflect.Bool:
		v := "0"
		if rv.Bool() {
			v = "1"
		}
		d.add(path, "gauge", labels, v)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d.add(path, leafType(path), labels, strconv.FormatInt(rv.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		d.add(path, leafType(path), labels, strconv.FormatUint(rv.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		d.add(path, leafType(path), labels, formatFloat(rv.Float()))
	case reflect.String:
		// A bare string leaf (outside a struct) has no field name to
		// carry the value; render presence only.
		d.add(path+"_info", "gauge", append(append([]promLabel{}, labels...), promLabel{"value", rv.String()}), "1")
	}
}

func walkStruct(d *promDoc, path string, labels []promLabel, rv reflect.Value) {
	rt := rv.Type()
	// First pass: identifying fields become labels for every sibling.
	own := append([]promLabel{}, labels...)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := jsonName(f)
		if tag == "" || !labelKeys[tag] {
			continue
		}
		fv := rv.Field(i)
		switch fv.Kind() {
		case reflect.String:
			own = append(own, promLabel{sanitizeName(tag), fv.String()})
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			own = append(own, promLabel{sanitizeName(tag), strconv.FormatInt(fv.Int(), 10)})
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			own = append(own, promLabel{sanitizeName(tag), strconv.FormatUint(fv.Uint(), 10)})
		}
	}
	// Second pass: remaining fields become samples (or recurse).
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := jsonName(f)
		if tag == "" {
			continue
		}
		fv := rv.Field(i)
		if labelKeys[tag] {
			switch fv.Kind() {
			case reflect.String, reflect.Int, reflect.Int8, reflect.Int16,
				reflect.Int32, reflect.Int64, reflect.Uint, reflect.Uint8,
				reflect.Uint16, reflect.Uint32, reflect.Uint64:
				continue // consumed as a label
			}
		}
		name := path + "_" + sanitizeName(tag)
		switch fv.Kind() {
		case reflect.String:
			d.add(name+"_info", "gauge",
				append(append([]promLabel{}, own...), promLabel{sanitizeName(tag), fv.String()}), "1")
		default:
			walkProm(d, name, own, fv)
		}
	}
}

func walkSlice(d *promDoc, path string, labels []promLabel, rv reflect.Value) {
	n := rv.Len()
	if n > 0 && rv.Index(0).Kind() == reflect.String {
		// []string: expose the count; the values themselves are not
		// metric material (e.g. the node's advertised model list).
		d.add(path+"_count", "gauge", labels, strconv.Itoa(n))
		return
	}
	for i := 0; i < n; i++ {
		ev := rv.Index(i)
		el := labels
		if ev.Kind() == reflect.Struct && !hasLabelField(ev.Type()) {
			el = append(append([]promLabel{}, labels...), promLabel{"idx", strconv.Itoa(i)})
		}
		walkProm(d, path, el, ev)
	}
}

func hasLabelField(rt reflect.Type) bool {
	for i := 0; i < rt.NumField(); i++ {
		if labelKeys[jsonName(rt.Field(i))] {
			return true
		}
	}
	return false
}

func jsonName(f reflect.StructField) string {
	if f.PkgPath != "" { // unexported
		return ""
	}
	tag := f.Tag.Get("json")
	if tag == "-" {
		return ""
	}
	if idx := strings.IndexByte(tag, ','); idx >= 0 {
		tag = tag[:idx]
	}
	if tag == "" {
		tag = strings.ToLower(f.Name)
	}
	return tag
}

// leafType classifies a sample name: counter when the json leaf tag (any
// underscore-delimited suffix, so "upstream_overloaded" and plain "shed"
// both resolve) is in counterNames, gauge otherwise.
func leafType(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '_' && counterNames[path[i+1:]] {
			return "counter"
		}
	}
	if counterNames[path] {
		return "counter"
	}
	return "gauge"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Label is one name/value pair on an exported histogram.
type Label struct{ Key, Value string }

// Histogram is an explicit bucket export for WriteHistograms. Name must
// be fully qualified (namespace included); UpperMS/CumCounts are the
// cumulative distribution, and an implicit +Inf bucket equal to Count is
// appended on render.
type Histogram struct {
	Name      string
	Labels    []Label
	UpperMS   []float64
	CumCounts []uint64
	Count     uint64
	SumMS     float64
}

// WriteHistograms renders HDR histogram exports as Prometheus histogram
// families. Histograms sharing a Name are grouped under one TYPE header.
func WriteHistograms(w io.Writer, hs []Histogram) {
	seen := map[string]bool{}
	for _, h := range hs {
		if !seen[h.Name] {
			seen[h.Name] = true
			fmt.Fprintf(w, "# HELP %s Stage latency distribution (milliseconds).\n", h.Name)
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name)
			for _, g := range hs {
				if g.Name == h.Name {
					writeOneHistogram(w, g)
				}
			}
		}
	}
}

func writeOneHistogram(w io.Writer, h Histogram) {
	base := make([]promLabel, 0, len(h.Labels)+1)
	for _, l := range h.Labels {
		base = append(base, promLabel{sanitizeName(l.Key), l.Value})
	}
	for i, ub := range h.UpperMS {
		io.WriteString(w, h.Name+"_bucket")
		writeLabels(w, append(append([]promLabel{}, base...), promLabel{"le", formatFloat(ub)}))
		fmt.Fprintf(w, " %d\n", h.CumCounts[i])
	}
	io.WriteString(w, h.Name+"_bucket")
	writeLabels(w, append(append([]promLabel{}, base...), promLabel{"le", "+Inf"}))
	fmt.Fprintf(w, " %d\n", h.Count)
	io.WriteString(w, h.Name+"_sum")
	writeLabels(w, base)
	fmt.Fprintf(w, " %s\n", formatFloat(h.SumMS))
	io.WriteString(w, h.Name+"_count")
	writeLabels(w, base)
	fmt.Fprintf(w, " %d\n", h.Count)
}
