package obs

import (
	"strings"
	"testing"
)

type promInner struct {
	Model string  `json:"model"`
	Count uint64  `json:"count"`
	P95MS float64 `json:"p95_ms"`
}

type promOuter struct {
	NodeID  string            `json:"node_id"`
	Depth   int               `json:"queue_depth"`
	Healthy bool              `json:"healthy"`
	Models  []promInner       `json:"serving"`
	Names   []string          `json:"names"`
	ByKey   map[string]uint64 `json:"by_key"`
	Nested  *promInner        `json:"nested,omitempty"`
}

func renderProm(t *testing.T, v any) string {
	t.Helper()
	var b strings.Builder
	WriteProm(&b, "test", v)
	return b.String()
}

func TestWritePromShapes(t *testing.T) {
	out := renderProm(t, promOuter{
		NodeID:  "edge-1",
		Depth:   7,
		Healthy: true,
		Models: []promInner{
			{Model: "a", Count: 3, P95MS: 1.5},
			{Model: "b", Count: 9, P95MS: 2.5},
		},
		Names: []string{"x", "y"},
		ByKey: map[string]uint64{"k1": 11},
	})
	for _, want := range []string{
		// node_id is a label on sibling samples, not a sample itself.
		`test_queue_depth{node_id="edge-1"} 7`,
		`test_healthy{node_id="edge-1"} 1`,
		// model-labeled struct slice.
		`test_serving_count{node_id="edge-1",model="a"} 3`,
		`test_serving_p95_ms{node_id="edge-1",model="b"} 2.5`,
		// []string becomes a count; maps label by key.
		`test_names_count{node_id="edge-1"} 2`,
		`test_by_key{node_id="edge-1",key="k1"} 11`,
		// count is a counter, p95 a gauge.
		"# TYPE test_serving_count counter",
		"# TYPE test_serving_p95_ms gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "test_nested") {
		t.Fatalf("nil pointer rendered:\n%s", out)
	}
}

// TestPromExpositionParses is a minimal format validator: every
// non-comment line must be `name{labels} value` with a parseable value,
// every name referenced by a sample must have HELP/TYPE headers first.
func TestPromExpositionParses(t *testing.T) {
	out := renderProm(t, promOuter{NodeID: "n", Models: []promInner{{Model: "m", Count: 1}}})
	CheckPromFormat(t, out)
}

func TestWriteHistograms(t *testing.T) {
	var b strings.Builder
	WriteHistograms(&b, []Histogram{
		{
			Name:      "test_lat_ms",
			Labels:    []Label{{Key: "model", Value: "m"}},
			UpperMS:   []float64{1, 2},
			CumCounts: []uint64{3, 5},
			Count:     6,
			SumMS:     9.5,
		},
	})
	out := b.String()
	for _, want := range []string{
		"# TYPE test_lat_ms histogram",
		`test_lat_ms_bucket{model="m",le="1"} 3`,
		`test_lat_ms_bucket{model="m",le="2"} 5`,
		`test_lat_ms_bucket{model="m",le="+Inf"} 6`,
		`test_lat_ms_sum{model="m"} 9.5`,
		`test_lat_ms_count{model="m"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}
