// Package obs is the node- and gateway-side observability layer: a
// zero-dependency request tracer (spans, head sampling, ring-buffer
// storage, cross-process propagation over the X-Openei-Trace header) and
// a Prometheus text-exposition renderer driven by the same snapshots the
// JSON metrics endpoints serve.
//
// The tracer is built for the serving hot path: an active trace is a
// fixed-size span buffer drawn from a lock-free free list, spans append
// under a per-trace mutex that is never contended on the steady path, and
// a request that ends unsampled returns its buffer without touching the
// heap — the 0 allocs/op steady-state contract of the serving engine
// holds with tracing compiled in. Sampling is decided at the head
// (probabilistic, propagated downstream so gateway and node keep the same
// verdict) but errors and p99-tail requests are always kept: the buffer
// records every request and the keep/drop decision happens at Finish,
// when the outcome is known.
package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names instrumented through the request path, gateway receive to
// plan execute. docs/TRACING.md documents the span tree they form.
const (
	StageGateway   = "gateway"    // gateway receive → respond (root, gateway side)
	StagePick      = "pick"       // one routing decision (p2c over preference tiers)
	StageAttempt   = "attempt"    // one proxied try against one node (retry/hedge = more)
	StageInfer     = "infer"      // node admission → respond (root, node side)
	StageQueueWait = "queue_wait" // tenant scheduler backlog (enqueue → scheduler pick)
	StageBatchWait = "batch_wait" // batch assembly + handoff (scheduler pick → replica start)
	StageExec      = "exec"       // replica plan execution (InferBatch)
	StageOffload   = "offload"    // autopilot edge→cloud fallback hop
)

// TraceHeader carries trace context gateway→node (and echoes trace IDs
// back to clients on responses).
const TraceHeader = "X-Openei-Trace"

// TraceArg is the reserved query-argument key libei uses to hand the
// incoming TraceHeader value to algorithm handlers without widening the
// AlgorithmFunc signature.
const TraceArg = "_trace"

// Attr is one span attribute. Exactly one of Str/Int is meaningful: a
// non-empty Str wins, otherwise Int. The split avoids integer formatting
// (and its allocation) on the recording path.
type Attr struct {
	Key string
	Str string
	Int int64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Int: v} }

const (
	maxSpans = 32 // spans per trace buffer (overflow drops, counted)
	maxAttrs = 4  // attributes per span
)

// Span is one recorded stage of a request.
type Span struct {
	ID     uint64
	Parent uint64
	Stage  string
	Start  time.Time
	Dur    time.Duration
	Err    bool

	attrs  [maxAttrs]Attr
	nattrs int
}

// Attrs returns the span's attributes.
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// WireSpan is the JSON form of a span, served by /ei_trace and /gw_trace.
type WireSpan struct {
	TraceID     string         `json:"trace_id"`
	SpanID      string         `json:"span_id"`
	ParentID    string         `json:"parent_id,omitempty"`
	Stage       string         `json:"stage"`
	Source      string         `json:"source,omitempty"`
	StartUnixNS int64          `json:"start_unix_ns"`
	DurationMS  float64        `json:"duration_ms"`
	Err         bool           `json:"err,omitempty"`
	Attrs       map[string]any `json:"attrs,omitempty"`
}

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the probabilistic head-sampling rate in [0, 1];
	// errors and p99-tail requests are kept regardless.
	SampleRate float64
	// Ring bounds the stored (kept) traces; default 256.
	Ring int
	// Source stamps every span this tracer stores (node ID or "gateway"),
	// so a stitched cross-process trace attributes each span.
	Source string
}

// Tracer records request traces. A nil *Tracer is valid and records
// nothing; every method is nil-safe so instrumentation sites need no
// guards.
type Tracer struct {
	cfg       Config
	threshold uint64 // head-sample verdict: id-derived hash < threshold

	// Lock-free free list of recycled trace buffers, capacity-bounded.
	// A hand-rolled stack instead of sync.Pool so a GC cycle cannot empty
	// it — the unsampled steady path must never allocate.
	free     atomic.Pointer[TraceBuf]
	freeLen  atomic.Int64
	idSeq    atomic.Uint64
	rndState atomic.Uint64

	// Tail histogram: log2(µs) buckets of finished-request durations.
	// tailNS caches the keep threshold (upper bound of the p99 bucket),
	// refreshed every tailRefresh finishes; 0 while under tailMinCount.
	tailBuckets [48]atomic.Uint64
	tailCount   atomic.Uint64
	tailNS      atomic.Int64

	started  atomic.Uint64 // traces begun
	kept     atomic.Uint64 // traces committed to the ring
	dropped  atomic.Uint64 // traces discarded at Finish
	overflow atomic.Uint64 // spans dropped by a full buffer

	mu    sync.Mutex
	ring  []stored
	next  int
	index map[uint64]int
}

// stored is one kept trace in the ring.
type stored struct {
	id    uint64
	spans []Span
}

const (
	tailMinCount = 256 // finishes before tail-keep activates
	tailRefresh  = 128 // finishes between threshold recomputes
	freeCap      = 64  // recycled buffers retained
)

// NewTracer builds a tracer; rate is clamped to [0, 1].
func NewTracer(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	t := &Tracer{
		cfg:   cfg,
		ring:  make([]stored, cfg.Ring),
		index: make(map[uint64]int, cfg.Ring),
	}
	if cfg.SampleRate >= 1 {
		t.threshold = ^uint64(0)
	} else {
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	// Seed the ID stream per tracer — wall clock, a process-wide counter,
	// and the source name — so two processes (or two tracers in one)
	// never mint the same span/trace IDs; a shared seed would collide
	// span IDs inside every stitched gateway+node document.
	seed := mix(uint64(time.Now().UnixNano()) + tracerSeed.Add(0x9E3779B97F4A7C15))
	for _, c := range cfg.Source {
		seed = mix(seed ^ uint64(c))
	}
	t.idSeq.Store(seed)
	t.rndState.Store(seed ^ 0x9E3779B97F4A7C15)
	return t
}

// tracerSeed distinguishes tracers created in the same nanosecond.
var tracerSeed atomic.Uint64

// splitmix64 finalizer: turns a sequential counter into well-mixed bits.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// NextID returns a fresh span/trace ID (never 0).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	for {
		if id := mix(t.idSeq.Add(0x9E3779B97F4A7C15)); id != 0 {
			return id
		}
	}
}

// TraceContext is the propagated half of a trace: the IDs and sampling
// verdict that cross the gateway→node hop in the X-Openei-Trace header.
type TraceContext struct {
	TraceID uint64
	Parent  uint64
	Sampled bool
}

// String encodes the context for the wire: "traceid-parentid-s" with
// 16-hex-digit IDs and s ∈ {0, 1}.
func (tc TraceContext) String() string {
	var b [35]byte
	hex16(b[0:16], tc.TraceID)
	b[16] = '-'
	hex16(b[17:33], tc.Parent)
	b[33] = '-'
	if tc.Sampled {
		b[34] = '1'
	} else {
		b[34] = '0'
	}
	return string(b[:])
}

func hex16(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xF]
		v >>= 4
	}
}

// IDString renders an ID as the 16-hex-digit form used everywhere on the
// wire (trace_id fields, /gw_trace?id=).
func IDString(id uint64) string {
	var b [16]byte
	hex16(b[:], id)
	return string(b[:])
}

// ParseID parses a 16-hex-digit (or shorter) ID.
func ParseID(s string) (uint64, bool) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 16, 64)
	return v, err == nil && v != 0
}

// ParseTraceContext decodes a header value; ok is false for anything
// malformed (the request simply starts a fresh trace).
func ParseTraceContext(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return TraceContext{}, false
	}
	id, err := strconv.ParseUint(parts[0], 16, 64)
	if err != nil || id == 0 {
		return TraceContext{}, false
	}
	parent, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, Parent: parent, Sampled: parts[2] == "1"}, true
}

// TraceBuf is one in-flight request's span buffer. It is reference
// counted: the side that began the trace holds one reference, each
// concurrent recorder (a pipeline worker, a hedged attempt) holds another
// via Ref/Unref, and the keep/drop commit runs when the last reference
// drops — so a worker that outlives a cancelled caller still lands its
// spans before the buffer is recycled.
type TraceBuf struct {
	t        *Tracer
	id       uint64
	parent   uint64 // propagated parent span (the gateway attempt)
	root     uint64 // local root span ID (set once, before fan-out)
	sampled  bool
	refs     atomic.Int32
	errFlag  atomic.Bool
	totalNS  atomic.Int64
	nextFree *TraceBuf

	mu    sync.Mutex
	spans [maxSpans]Span
	n     int
}

// Begin starts recording a request. tc carries propagated context (zero
// value for a trace originating here). Nil-safe: a nil tracer returns a
// nil buffer, and every TraceBuf method is a no-op on nil.
func (t *Tracer) Begin(tc TraceContext) *TraceBuf {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	b := t.popFree()
	if b == nil {
		b = &TraceBuf{}
	}
	b.t = t
	if tc.TraceID != 0 {
		b.id = tc.TraceID
		b.sampled = tc.Sampled
	} else {
		b.id = t.NextID()
		b.sampled = mix(t.rndState.Add(0x9E3779B97F4A7C15)) < t.threshold
	}
	b.parent = tc.Parent
	b.root = 0
	b.errFlag.Store(false)
	b.totalNS.Store(0)
	b.n = 0
	b.refs.Store(1)
	return b
}

func (t *Tracer) popFree() *TraceBuf {
	for {
		b := t.free.Load()
		if b == nil {
			return nil
		}
		if t.free.CompareAndSwap(b, b.nextFree) {
			t.freeLen.Add(-1)
			b.nextFree = nil
			return b
		}
	}
}

func (t *Tracer) pushFree(b *TraceBuf) {
	if t.freeLen.Load() >= freeCap {
		return
	}
	t.freeLen.Add(1)
	for {
		head := t.free.Load()
		b.nextFree = head
		if t.free.CompareAndSwap(head, b) {
			return
		}
	}
}

// ID returns the trace ID (0 on nil).
func (b *TraceBuf) ID() uint64 {
	if b == nil {
		return 0
	}
	return b.id
}

// IDString returns the wire form of the trace ID ("" on nil).
func (b *TraceBuf) IDString() string {
	if b == nil {
		return ""
	}
	return IDString(b.id)
}

// Sampled reports the head-sampling verdict.
func (b *TraceBuf) Sampled() bool { return b != nil && b.sampled }

// Parent returns the propagated parent span ID.
func (b *TraceBuf) Parent() uint64 {
	if b == nil {
		return 0
	}
	return b.parent
}

// SetRoot records the local root span's ID so downstream recorders
// (pipeline stages, offload hops) can parent to it. Call before the
// request fans out.
func (b *TraceBuf) SetRoot(id uint64) {
	if b != nil {
		b.root = id
	}
}

// Root returns the local root span ID (0 when unset).
func (b *TraceBuf) Root() uint64 {
	if b == nil {
		return 0
	}
	return b.root
}

// Ref takes an additional reference; pair with Unref.
func (b *TraceBuf) Ref() {
	if b != nil {
		b.refs.Add(1)
	}
}

// Unref drops a reference; the last drop commits the trace.
func (b *TraceBuf) Unref() {
	if b == nil {
		return
	}
	if b.refs.Add(-1) == 0 {
		b.t.commit(b)
	}
}

// MarkErr flags the trace as failed, which forces it to be kept.
func (b *TraceBuf) MarkErr() {
	if b != nil {
		b.errFlag.Store(true)
	}
}

// Add records a completed span and returns its ID. attrs beyond the
// per-span cap are dropped. The variadic slice does not escape, so calls
// with literal Attr values stay on the caller's stack (asserted by the
// package's allocation test).
func (b *TraceBuf) Add(stage string, parent uint64, start time.Time, d time.Duration, attrs ...Attr) uint64 {
	if b == nil {
		return 0
	}
	return b.AddWithID(b.t.NextID(), stage, parent, start, d, attrs...)
}

// AddWithID is Add with a caller-allocated span ID — used when the ID
// must exist before the span completes (a gateway attempt propagates its
// span ID to the node while the attempt is still in flight).
func (b *TraceBuf) AddWithID(id uint64, stage string, parent uint64, start time.Time, d time.Duration, attrs ...Attr) uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	if b.n >= maxSpans {
		b.mu.Unlock()
		b.t.overflow.Add(1)
		return id
	}
	sp := &b.spans[b.n]
	b.n++
	sp.ID = id
	sp.Parent = parent
	sp.Stage = stage
	sp.Start = start
	sp.Dur = d
	sp.Err = false
	sp.nattrs = copy(sp.attrs[:], attrs)
	b.mu.Unlock()
	return id
}

// SetAttr appends an attribute to an already-recorded span (found by ID).
// Used to mark the winning attempt once the race resolves.
func (b *TraceBuf) SetAttr(spanID uint64, a Attr) {
	if b == nil {
		return
	}
	b.mu.Lock()
	for i := 0; i < b.n; i++ {
		sp := &b.spans[i]
		if sp.ID != spanID {
			continue
		}
		if sp.nattrs < maxAttrs {
			sp.attrs[sp.nattrs] = a
			sp.nattrs++
		}
		break
	}
	b.mu.Unlock()
}

// Finish ends the side of the trace that began it: records the outcome,
// feeds the tail estimator, and drops the beginner's reference. Spans
// appended by still-running recorders (Ref holders) are committed by the
// last Unref.
func (t *Tracer) Finish(b *TraceBuf, failed bool, total time.Duration) {
	if t == nil || b == nil {
		return
	}
	if failed {
		b.errFlag.Store(true)
	}
	b.totalNS.Store(int64(total))
	t.observeTail(total)
	b.Unref()
}

// observeTail records a finished duration and periodically recomputes the
// always-keep threshold: the upper bound of the log2 bucket holding the
// p99 — a finished request strictly beyond it is a tail outlier worth
// keeping even when head sampling said no.
func (t *Tracer) observeTail(total time.Duration) {
	us := total.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := 0
	for v := us; v > 0; v >>= 1 {
		idx++
	}
	if idx >= len(t.tailBuckets) {
		idx = len(t.tailBuckets) - 1
	}
	t.tailBuckets[idx].Add(1)
	n := t.tailCount.Add(1)
	if n < tailMinCount || n%tailRefresh != 0 {
		return
	}
	rank := n - n/100 // p99 rank
	var cum uint64
	for i := range t.tailBuckets {
		cum += t.tailBuckets[i].Load()
		if cum >= rank {
			// Bucket i holds values in (2^(i-1), 2^i] µs; threshold is the
			// upper bound so uniform traffic sitting in the p99 bucket does
			// not all qualify as tail.
			t.tailNS.Store(int64(1) << uint(i) * int64(time.Microsecond))
			return
		}
	}
}

// commit runs the keep/drop decision when the last reference drops.
func (t *Tracer) commit(b *TraceBuf) {
	keep := b.sampled || b.errFlag.Load()
	if !keep {
		if thr := t.tailNS.Load(); thr > 0 && b.totalNS.Load() > thr {
			keep = true
		}
	}
	if !keep {
		t.dropped.Add(1)
		t.pushFree(b)
		return
	}
	b.mu.Lock()
	spans := make([]Span, b.n)
	copy(spans, b.spans[:b.n])
	b.mu.Unlock()
	t.kept.Add(1)
	t.mu.Lock()
	if old := t.ring[t.next]; old.id != 0 && t.index[old.id] == t.next {
		delete(t.index, old.id)
	}
	t.ring[t.next] = stored{id: b.id, spans: spans}
	t.index[b.id] = t.next
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
	t.pushFree(b)
}

// Trace returns the stored spans of a kept trace in wire form.
func (t *Tracer) Trace(id uint64) ([]WireSpan, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	idx, ok := t.index[id]
	var spans []Span
	if ok {
		spans = t.ring[idx].spans
	}
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := make([]WireSpan, len(spans))
	for i := range spans {
		out[i] = t.wire(id, &spans[i])
	}
	return out, true
}

// RecentIDs lists up to n most-recently-kept trace IDs (wire form),
// newest first.
func (t *Tracer) RecentIDs(n int) []string {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, n)
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if s := t.ring[idx]; s.id != 0 {
			out = append(out, IDString(s.id))
		}
	}
	return out
}

func (t *Tracer) wire(trace uint64, sp *Span) WireSpan {
	w := WireSpan{
		TraceID:     IDString(trace),
		SpanID:      IDString(sp.ID),
		Stage:       sp.Stage,
		Source:      t.cfg.Source,
		StartUnixNS: sp.Start.UnixNano(),
		DurationMS:  float64(sp.Dur) / float64(time.Millisecond),
		Err:         sp.Err,
	}
	if sp.Parent != 0 {
		w.ParentID = IDString(sp.Parent)
	}
	if sp.nattrs > 0 {
		w.Attrs = make(map[string]any, sp.nattrs)
		for _, a := range sp.Attrs() {
			if a.Str != "" {
				w.Attrs[a.Key] = a.Str
			} else {
				w.Attrs[a.Key] = a.Int
			}
		}
	}
	return w
}

// Stats is the tracer's own counter snapshot (the `trace` block of the
// metrics endpoints).
type Stats struct {
	// Started counts traces begun; Kept were committed to the ring
	// (sampled, errored, or tail); Dropped finished unsampled.
	Started uint64 `json:"started"`
	Kept    uint64 `json:"kept"`
	Dropped uint64 `json:"dropped"`
	// SpanOverflow counts spans lost to a full per-trace buffer.
	SpanOverflow uint64 `json:"span_overflow"`
	// SampleRate echoes the configured head-sampling rate.
	SampleRate float64 `json:"sample_rate"`
	// TailThresholdMS is the live always-keep latency threshold (0 until
	// enough requests have finished to estimate a p99).
	TailThresholdMS float64 `json:"tail_threshold_ms"`
}

// Stats snapshots the tracer's counters; zero value on nil.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:         t.started.Load(),
		Kept:            t.kept.Load(),
		Dropped:         t.dropped.Load(),
		SpanOverflow:    t.overflow.Load(),
		SampleRate:      t.cfg.SampleRate,
		TailThresholdMS: float64(t.tailNS.Load()) / 1e6,
	}
}
