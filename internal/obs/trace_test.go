package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeefcafef00d, Parent: 0x1234, Sampled: true}
	s := tc.String()
	got, ok := ParseTraceContext(s)
	if !ok || got != tc {
		t.Fatalf("round trip %q: got %+v ok=%v, want %+v", s, got, ok, tc)
	}
	if len(s) != 35 || strings.Count(s, "-") != 2 {
		t.Fatalf("wire form %q malformed", s)
	}
	for _, bad := range []string{"", "xyz", "12-34", "0-0-1", "12-34-2-9"} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Fatalf("ParseTraceContext(%q) accepted", bad)
		}
	}
}

func TestIDStringParse(t *testing.T) {
	tr := NewTracer(Config{})
	id := tr.NextID()
	back, ok := ParseID(IDString(id))
	if !ok || back != id {
		t.Fatalf("ParseID(IDString(%x)) = %x, %v", id, back, ok)
	}
	if _, ok := ParseID("0"); ok {
		t.Fatal("ParseID accepted zero ID")
	}
}

func TestSamplingAlwaysAndNever(t *testing.T) {
	always := NewTracer(Config{SampleRate: 1})
	for i := 0; i < 50; i++ {
		b := always.Begin(TraceContext{})
		b.Add(StageExec, 0, time.Now(), time.Millisecond)
		always.Finish(b, false, time.Millisecond)
	}
	if st := always.Stats(); st.Kept != 50 || st.Dropped != 0 {
		t.Fatalf("rate 1: kept %d dropped %d, want 50/0", st.Kept, st.Dropped)
	}
	never := NewTracer(Config{SampleRate: 0})
	for i := 0; i < 50; i++ {
		b := never.Begin(TraceContext{})
		b.Add(StageExec, 0, time.Now(), time.Millisecond)
		never.Finish(b, false, time.Millisecond)
	}
	if st := never.Stats(); st.Kept != 0 || st.Dropped != 50 {
		t.Fatalf("rate 0: kept %d dropped %d, want 0/50", st.Kept, st.Dropped)
	}
}

func TestErrorAlwaysKept(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	b := tr.Begin(TraceContext{})
	id := b.ID()
	b.Add(StageInfer, 0, time.Now(), time.Millisecond)
	tr.Finish(b, true, time.Millisecond)
	spans, ok := tr.Trace(id)
	if !ok || len(spans) != 1 {
		t.Fatalf("errored trace not kept: ok=%v spans=%d", ok, len(spans))
	}
}

func TestPropagatedVerdictAdopted(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	b := tr.Begin(TraceContext{TraceID: 42, Parent: 7, Sampled: true})
	if b.ID() != 42 || !b.Sampled() || b.Parent() != 7 {
		t.Fatalf("propagated context not adopted: id=%d sampled=%v parent=%d", b.ID(), b.Sampled(), b.Parent())
	}
	b.Add(StageInfer, b.Parent(), time.Now(), time.Millisecond)
	tr.Finish(b, false, time.Millisecond)
	if _, ok := tr.Trace(42); !ok {
		t.Fatal("upstream-sampled trace was dropped")
	}
}

func TestTailKeepActivates(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	// Feed enough uniform fast finishes to compute a tail threshold.
	for i := 0; i < tailMinCount+tailRefresh; i++ {
		b := tr.Begin(TraceContext{})
		tr.Finish(b, false, time.Millisecond)
	}
	if thr := tr.Stats().TailThresholdMS; thr <= 0 {
		t.Fatalf("tail threshold not computed: %v", thr)
	}
	// A request far beyond the threshold is kept even unsampled.
	b := tr.Begin(TraceContext{})
	id := b.ID()
	b.Add(StageInfer, 0, time.Now(), time.Second)
	tr.Finish(b, false, time.Second)
	if _, ok := tr.Trace(id); !ok {
		t.Fatal("tail outlier was not kept")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Ring: 4})
	ids := make([]uint64, 8)
	for i := range ids {
		b := tr.Begin(TraceContext{})
		ids[i] = b.ID()
		b.Add(StageInfer, 0, time.Now(), time.Millisecond)
		tr.Finish(b, false, time.Millisecond)
	}
	for _, id := range ids[:4] {
		if _, ok := tr.Trace(id); ok {
			t.Fatalf("evicted trace %x still stored", id)
		}
	}
	for _, id := range ids[4:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("recent trace %x missing", id)
		}
	}
	recent := tr.RecentIDs(10)
	if len(recent) != 4 || recent[0] != IDString(ids[7]) {
		t.Fatalf("RecentIDs = %v, want newest-first 4 ending with %s", recent, IDString(ids[7]))
	}
}

func TestSpanOverflowCounted(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1})
	b := tr.Begin(TraceContext{})
	for i := 0; i < maxSpans+5; i++ {
		b.Add(StageExec, 0, time.Now(), time.Millisecond)
	}
	tr.Finish(b, false, time.Millisecond)
	if st := tr.Stats(); st.SpanOverflow != 5 {
		t.Fatalf("span overflow = %d, want 5", st.SpanOverflow)
	}
	spans, _ := tr.Trace(b.ID())
	if len(spans) != maxSpans {
		t.Fatalf("stored %d spans, want %d", len(spans), maxSpans)
	}
}

func TestWireSpanAttrs(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Source: "edge-1"})
	b := tr.Begin(TraceContext{})
	b.Add(StageExec, 0, time.Now(), 2*time.Millisecond,
		Str("model", "m"), Int("batch", 3))
	tr.Finish(b, false, 2*time.Millisecond)
	spans, _ := tr.Trace(b.ID())
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	sp := spans[0]
	if sp.Source != "edge-1" || sp.Stage != StageExec {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Attrs["model"] != "m" || sp.Attrs["batch"] != int64(3) {
		t.Fatalf("attrs = %v", sp.Attrs)
	}
}

func TestLateRecorderCommits(t *testing.T) {
	// A Ref holder (hedge loser, pipeline worker) appending after Finish
	// must still land its span in the stored trace.
	tr := NewTracer(Config{SampleRate: 1})
	b := tr.Begin(TraceContext{})
	b.Ref()
	tr.Finish(b, false, time.Millisecond) // beginner done; buffer alive via Ref
	if _, ok := tr.Trace(b.ID()); ok {
		t.Fatal("trace committed before last reference dropped")
	}
	b.Add(StageAttempt, 0, time.Now(), time.Millisecond)
	id := b.ID()
	b.Unref()
	spans, ok := tr.Trace(id)
	if !ok || len(spans) != 1 {
		t.Fatalf("late span lost: ok=%v spans=%d", ok, len(spans))
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	b := tr.Begin(TraceContext{})
	if b != nil {
		t.Fatal("nil tracer returned non-nil buffer")
	}
	// All no-ops; must not panic.
	b.Add(StageExec, 0, time.Now(), time.Millisecond)
	b.SetRoot(1)
	b.Ref()
	b.Unref()
	b.MarkErr()
	tr.Finish(b, true, time.Millisecond)
	if _, ok := tr.Trace(1); ok {
		t.Fatal("nil tracer stored a trace")
	}
	if tr.Stats() != (Stats{}) {
		t.Fatal("nil tracer stats non-zero")
	}
}

// TestUnsampledZeroAlloc is the overhead guard: a request that ends
// unsampled must not touch the heap — the tracer recycles its buffer
// through the free list and the variadic attrs stay on the stack.
func TestUnsampledZeroAlloc(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0})
	// Warm the free list.
	for i := 0; i < 4; i++ {
		tr.Finish(tr.Begin(TraceContext{}), false, time.Millisecond)
	}
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		b := tr.Begin(TraceContext{})
		root := tr.NextID()
		b.SetRoot(root)
		b.Add(StageQueueWait, root, start, time.Microsecond)
		b.Add(StageExec, root, start, time.Millisecond,
			Str("model", "m"), Int("batch", 4))
		tr.Finish(b, false, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace path allocates: %.1f allocs/op", allocs)
	}
}
