// Package compress implements the deep-model-compression toolbox of the
// paper's Table I and §IV.A.1: parameter pruning, weight sharing via k-means
// clustering (Gong et al. [21]), binary quantization (Courbariaux et al.
// [20]), int8 post-training quantization (the TF-Lite/QNNPACK technique),
// low-rank factorization (Denton et al. [25]), and knowledge distillation
// (teacher–student transfer, Buciluǎ/Caruana [29]) via nn.DistillTrain.
//
// Every transform returns a Report quantifying the storage ratio so the E7
// benchmark can regenerate Table I with numbers attached.
package compress

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"openei/internal/nn"
	"openei/internal/tensor"
)

// ErrBadArg is returned for out-of-range compression parameters.
var ErrBadArg = errors.New("compress: bad argument")

// Report summarizes the storage effect of one compression pass.
type Report struct {
	Method                    string
	ParamsBefore, ParamsAfter int64
	BytesBefore, BytesAfter   int64
}

// Ratio returns BytesBefore/BytesAfter (≥1 means smaller).
func (r Report) Ratio() float64 {
	if r.BytesAfter == 0 {
		return 0
	}
	return float64(r.BytesBefore) / float64(r.BytesAfter)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("%s: %d→%d params, %d→%d bytes (%.1fx)",
		r.Method, r.ParamsBefore, r.ParamsAfter, r.BytesBefore, r.BytesAfter, r.Ratio())
}

// weightTensors returns the weight matrices/filters of the model (biases
// and batch-norm affine parameters are left untouched by all methods, as is
// standard practice).
func weightTensors(m *nn.Model) []*tensor.Tensor {
	var ws []*tensor.Tensor
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *nn.Dense:
			ws = append(ws, t.W)
		case *nn.Conv2D:
			ws = append(ws, t.W)
		case *nn.DepthwiseConv2D:
			ws = append(ws, t.W)
		}
	}
	return ws
}

// Prune zeroes the fraction `sparsity` of smallest-magnitude weights
// globally across the model (Han et al. [24], "learning both weights and
// connections"). The caller typically fine-tunes afterwards with nn.Train.
// The report models sparse storage as 5 bytes per surviving weight
// (4-byte value + 1-byte relative index, the Deep Compression layout).
func Prune(m *nn.Model, sparsity float64) (Report, error) {
	if sparsity < 0 || sparsity >= 1 {
		return Report{}, fmt.Errorf("%w: sparsity %v outside [0,1)", ErrBadArg, sparsity)
	}
	ws := weightTensors(m)
	var all []float32
	for _, w := range ws {
		for _, v := range w.Data() {
			all = append(all, abs32(v))
		}
	}
	if len(all) == 0 {
		return Report{}, fmt.Errorf("%w: model has no prunable weights", ErrBadArg)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	k := int(float64(len(all)) * sparsity)
	if k >= len(all) {
		k = len(all) - 1
	}
	threshold := all[k]
	var kept int64
	for _, w := range ws {
		d := w.Data()
		for i, v := range d {
			if abs32(v) < threshold {
				d[i] = 0
			} else {
				kept++
			}
		}
	}
	before := int64(len(all))
	return Report{
		Method:       "prune",
		ParamsBefore: before, ParamsAfter: kept,
		BytesBefore: before * 4, BytesAfter: kept * 5,
	}, nil
}

// Sparsity returns the fraction of zero weights across the model's weight
// tensors.
func Sparsity(m *nn.Model) float64 {
	var zero, total int
	for _, w := range weightTensors(m) {
		for _, v := range w.Data() {
			if v == 0 {
				zero++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// KMeansShare clusters each weight tensor's values into k centroids and
// replaces every weight with its centroid (Gong et al. [21] vector
// quantization of layer weights). Storage becomes log2(k) bits per weight
// plus the codebook, which for k=16 gives the ≈8× (and with pruning the
// paper-cited ≈24×) compression regime.
func KMeansShare(m *nn.Model, k, iters int, rng *rand.Rand) (Report, error) {
	if k < 2 || k > 256 {
		return Report{}, fmt.Errorf("%w: k %d outside [2,256]", ErrBadArg, k)
	}
	if iters <= 0 {
		iters = 10
	}
	if rng == nil {
		return Report{}, fmt.Errorf("%w: nil rng", ErrBadArg)
	}
	ws := weightTensors(m)
	var total int64
	var codebooks int64
	for _, w := range ws {
		d := w.Data()
		if len(d) == 0 {
			continue
		}
		total += int64(len(d))
		centroids := kmeans1D(d, k, iters, rng)
		codebooks += int64(len(centroids))
		for i, v := range d {
			d[i] = nearest(centroids, v)
		}
	}
	if total == 0 {
		return Report{}, fmt.Errorf("%w: model has no weights", ErrBadArg)
	}
	bits := int64(math.Ceil(math.Log2(float64(k))))
	return Report{
		Method:       fmt.Sprintf("kmeans-share(k=%d)", k),
		ParamsBefore: total, ParamsAfter: total,
		BytesBefore: total * 4,
		BytesAfter:  (total*bits+7)/8 + codebooks*4,
	}, nil
}

// kmeans1D runs Lloyd's algorithm on scalar values with linearly spaced
// initialization (the initialization Deep Compression found most robust).
func kmeans1D(vals []float32, k, iters int, rng *rand.Rand) []float32 {
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	centroids := make([]float32, k)
	if maxV == minV {
		for i := range centroids {
			centroids[i] = minV
		}
		return centroids
	}
	for i := range centroids {
		centroids[i] = minV + (maxV-minV)*float32(i)/float32(k-1)
	}
	sums := make([]float64, k)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		for i := range sums {
			sums[i], counts[i] = 0, 0
		}
		for _, v := range vals {
			c := nearestIdx(centroids, v)
			sums[c] += float64(v)
			counts[c]++
		}
		for i := range centroids {
			if counts[i] > 0 {
				centroids[i] = float32(sums[i] / float64(counts[i]))
			} else {
				// Re-seed empty clusters at a random data point.
				centroids[i] = vals[rng.Intn(len(vals))]
			}
		}
	}
	return centroids
}

func nearestIdx(centroids []float32, v float32) int {
	best, bi := abs32(centroids[0]-v), 0
	for i := 1; i < len(centroids); i++ {
		if d := abs32(centroids[i] - v); d < best {
			best, bi = d, i
		}
	}
	return bi
}

func nearest(centroids []float32, v float32) float32 {
	return centroids[nearestIdx(centroids, v)]
}

// Binarize replaces every weight tensor W with sign(W)·mean(|W|)
// (Courbariaux et al. [20] BinaryConnect with a per-tensor scale).
// Storage: 1 bit per weight + one float scale per tensor → ≈32×.
func Binarize(m *nn.Model) (Report, error) {
	ws := weightTensors(m)
	var total, tensors int64
	for _, w := range ws {
		d := w.Data()
		if len(d) == 0 {
			continue
		}
		tensors++
		total += int64(len(d))
		var mean float64
		for _, v := range d {
			mean += math.Abs(float64(v))
		}
		scale := float32(mean / float64(len(d)))
		for i, v := range d {
			if v >= 0 {
				d[i] = scale
			} else {
				d[i] = -scale
			}
		}
	}
	if total == 0 {
		return Report{}, fmt.Errorf("%w: model has no weights", ErrBadArg)
	}
	return Report{
		Method:       "binary",
		ParamsBefore: total, ParamsAfter: total,
		BytesBefore: total * 4,
		BytesAfter:  (total+7)/8 + tensors*4,
	}, nil
}

// QuantizeInt8 installs int8 weight artifacts (QW) on every Dense and
// Conv2D layer — the TF-Lite-style post-training quantization the
// optimized packages use — and writes the dequantized round trip back
// into the float weights so the layer-walk paths reproduce the artifact's
// accuracy. Depthwise conv weights are round-tripped only (the int8
// backend keeps them in float; their footprint is negligible). The
// compiled int8 execution plans run the installed artifacts directly.
// Storage: 1 byte per weight + per-tensor scale → ≈4×.
func QuantizeInt8(m *nn.Model) (Report, error) {
	var total, tensors int64
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *nn.Dense:
			t.QW = tensor.Quantize(t.W)
			rt := t.QW.Dequantize()
			copy(t.W.Data(), rt.Data())
			total += int64(t.W.Len())
			tensors++
		case *nn.Conv2D:
			t.QW = tensor.Quantize(t.W)
			rt := t.QW.Dequantize()
			copy(t.W.Data(), rt.Data())
			total += int64(t.W.Len())
			tensors++
		case *nn.DepthwiseConv2D:
			q := tensor.Quantize(t.W)
			rt := q.Dequantize()
			copy(t.W.Data(), rt.Data())
			total += int64(t.W.Len())
			tensors++
		}
	}
	if total == 0 {
		return Report{}, fmt.Errorf("%w: model has no weights", ErrBadArg)
	}
	return Report{
		Method:       "int8",
		ParamsBefore: total, ParamsAfter: total,
		BytesBefore: total * 4,
		BytesAfter:  total + tensors*4,
	}, nil
}

// LowRank replaces every Dense layer whose factorized size would be smaller
// with two stacked Dense layers of rank max(1, ratio·min(in,out)) computed
// by truncated SVD (Denton et al. [25]). Returns the rebuilt model (the
// original is not modified) and a report.
func LowRank(m *nn.Model, ratio float64, rng *rand.Rand) (*nn.Model, Report, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, Report{}, fmt.Errorf("%w: rank ratio %v outside (0,1]", ErrBadArg, ratio)
	}
	if rng == nil {
		return nil, Report{}, fmt.Errorf("%w: nil rng", ErrBadArg)
	}
	var specs []nn.LayerSpec
	var reps []lowRankRep
	for i, l := range m.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			specs = append(specs, l.Spec())
			continue
		}
		minDim := d.In
		if d.Out < minDim {
			minDim = d.Out
		}
		rank := int(math.Max(1, math.Round(ratio*float64(minDim))))
		// Factorize only if it actually shrinks the layer.
		if rank*(d.In+d.Out) >= d.In*d.Out {
			specs = append(specs, l.Spec())
			continue
		}
		u, v, err := tensor.TruncatedSVD(d.W, rank, 25, rng)
		if err != nil {
			return nil, Report{}, fmt.Errorf("svd layer %d: %w", i, err)
		}
		specs = append(specs,
			nn.LayerSpec{Type: "dense", In: d.In, Out: rank},
			nn.LayerSpec{Type: "dense", In: rank, Out: d.Out},
		)
		reps = append(reps, lowRankRep{layerIdx: len(specs) - 2, u: u, v: v, bias: d.B})
	}
	out, err := nn.NewModel(m.Name+"-lowrank", m.InputShape, specs)
	if err != nil {
		return nil, Report{}, fmt.Errorf("rebuild: %w", err)
	}
	// Copy untouched weights positionally, then install factor pairs.
	srcIdx := 0
	for dstIdx := 0; dstIdx < len(out.Layers); dstIdx++ {
		if rep := findRep(reps, dstIdx); rep != nil {
			// W (out×in) ≈ U(out×r)·V(r×in): first layer W1 = V, second W2 = U.
			first := out.Layers[dstIdx].(*nn.Dense)
			second := out.Layers[dstIdx+1].(*nn.Dense)
			copy(first.W.Data(), rep.v.Data())
			copy(second.W.Data(), rep.u.Data())
			copy(second.B.Data(), rep.bias.Data())
			dstIdx++ // skip the second half of the pair
			srcIdx++
			continue
		}
		src, dst := m.Layers[srcIdx], out.Layers[dstIdx]
		sp, dp := src.Params(), dst.Params()
		for i := range sp {
			copy(dp[i].Data(), sp[i].Data())
		}
		if sbn, ok := src.(*nn.BatchNorm); ok {
			dbn := dst.(*nn.BatchNorm)
			copy(dbn.RunMean.Data(), sbn.RunMean.Data())
			copy(dbn.RunVar.Data(), sbn.RunVar.Data())
		}
		srcIdx++
	}
	rep := Report{
		Method:       fmt.Sprintf("lowrank(ratio=%.2f)", ratio),
		ParamsBefore: m.ParamCount(), ParamsAfter: out.ParamCount(),
		BytesBefore: m.ParamCount() * 4, BytesAfter: out.ParamCount() * 4,
	}
	return out, rep, nil
}

// lowRankRep records where a factor pair must be installed in the rebuilt
// model.
type lowRankRep struct {
	layerIdx int
	u, v     *tensor.Tensor
	bias     *tensor.Tensor
}

func findRep(reps []lowRankRep, idx int) *lowRankRep {
	for i := range reps {
		if reps[i].layerIdx == idx {
			return &reps[i]
		}
	}
	return nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
