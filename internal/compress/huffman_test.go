package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"openei/internal/nn"
)

func TestHuffmanRoundTrip(t *testing.T) {
	vals := []float32{0, 0, 0, 0, 0, 1.5, 1.5, -2.25, 1.5, 0, 0.125}
	code, err := NewHuffmanCode(vals)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.Decode(enc, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, dec[i], vals[i])
		}
	}
	if code.Symbols() != 4 {
		t.Fatalf("symbols = %d, want 4", code.Symbols())
	}
}

func TestHuffmanSingleSymbolStream(t *testing.T) {
	vals := make([]float32, 100) // all zero
	code, err := NewHuffmanCode(vals)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 13 { // 100 bits, 1 bit per symbol
		t.Fatalf("single-symbol stream encoded to %d bytes, want 13", len(enc))
	}
	dec, err := code.Decode(enc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 100 || dec[0] != 0 {
		t.Fatalf("decode: %d values", len(dec))
	}
}

func TestHuffmanErrors(t *testing.T) {
	if _, err := NewHuffmanCode(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	code, err := NewHuffmanCode([]float32{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := code.Encode([]float32{3}); err == nil {
		t.Fatal("out-of-codebook value encoded")
	}
	enc, err := code.Encode([]float32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := code.Decode(enc, 50); err == nil {
		t.Fatal("decode past end of stream succeeded")
	}
}

// Property: any stream round-trips exactly, and the encoded payload is
// within one bit per symbol of the Shannon bound (Huffman optimality).
func TestHuffmanNearEntropyProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// A low-entropy stream like post-k-means weights: few distinct
		// values with skewed frequencies.
		distinct := 2 + rng.Intn(14)
		alphabet := make([]float32, distinct)
		for i := range alphabet {
			alphabet[i] = float32(rng.NormFloat64())
		}
		vals := make([]float32, 500+rng.Intn(500))
		for i := range vals {
			// Squared draw skews toward low indices.
			j := rng.Intn(distinct) * rng.Intn(distinct) / distinct
			vals[i] = alphabet[j]
		}
		code, err := NewHuffmanCode(vals)
		if err != nil {
			return false
		}
		enc, err := code.Encode(vals)
		if err != nil {
			return false
		}
		dec, err := code.Decode(enc, len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(dec[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		bound := (entropyBits(vals) + 1) * float64(len(vals))
		return float64(len(enc)*8) <= bound+8 // +8 for final-byte padding
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: after KMeansShare(k), every weight tensor holds at most k
// distinct values (the invariant the bit-packed storage model and the
// Huffman stage both rely on).
func TestKMeansDistinctValueBoundProperty(t *testing.T) {
	model, _, _ := trainedProbe(t)
	check := func(seed int64) bool {
		k := 2 + int(uint64(seed)%15) // 2..16
		m, err := model.Clone()
		if err != nil {
			return false
		}
		if _, err := KMeansShare(m, k, 5, rand.New(rand.NewSource(seed))); err != nil {
			return false
		}
		for _, w := range weightTensors(m) {
			distinct := map[float32]bool{}
			for _, v := range w.Data() {
				distinct[v] = true
			}
			if len(distinct) > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanSizeAfterSharing(t *testing.T) {
	model, _, _ := trainedProbe(t)
	rng := rand.New(rand.NewSource(3))
	if _, err := KMeansShare(model, 16, 10, rng); err != nil {
		t.Fatal(err)
	}
	rep, err := HuffmanSize(model)
	if err != nil {
		t.Fatal(err)
	}
	// 16 distinct values → ≤4 bits/value + codebooks, so ≥ ~7×.
	if rep.Ratio() < 7 {
		t.Fatalf("huffman after k-means: ratio %.1f, want ≥ 7", rep.Ratio())
	}
}

func TestDeepCompressPipeline(t *testing.T) {
	model, _, test := trainedProbe(t)
	kmOnly, err := model.Clone()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	kmRep, err := KMeansShare(kmOnly, 16, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DeepCompress(model, 0.8, 16, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// The full pipeline must beat k-means sharing alone (that is the
	// point of the Huffman stage over the pruned+shared stream).
	if rep.Ratio() <= kmRep.Ratio() {
		t.Fatalf("deep-compress %.1fx not better than k-means alone %.1fx", rep.Ratio(), kmRep.Ratio())
	}
	// Han et al. report ~35-49× at ImageNet scale. On this miniature
	// model the per-tensor codebooks are a proportionally large fixed
	// cost (≈255 of ≈900 compressed bytes), flooring the ratio near 13×;
	// assert ≥ 12× so a codec regression is caught without overclaiming.
	if rep.Ratio() < 12 {
		t.Fatalf("deep-compress ratio %.1f, want ≥ 12", rep.Ratio())
	}
	// The compressed model still classifies well above chance (fine-tune
	// would recover the rest, as E7 shows for the component stages).
	acc, err := nn.Accuracy(model, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Fatalf("deep-compressed accuracy %.3f, want ≥ 0.5 before fine-tune", acc)
	}
}
