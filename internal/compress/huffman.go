package compress

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"openei/internal/nn"
)

// This file implements the third stage of the Deep Compression pipeline
// (Han et al. [19]: pruning → trained quantization → Huffman coding),
// which Table I's discussion cites for the headline "compressing deep
// neural networks" ratios. After pruning (many zeros) and k-means weight
// sharing (few distinct values), the weight stream has very low entropy,
// and Huffman coding converts that into real bytes. The codec below is a
// complete encoder/decoder, so the reported sizes are actual encoded
// lengths, not estimates.

// HuffmanCode is a prefix code over distinct float32 weight values.
type HuffmanCode struct {
	// codes maps the float32 bit pattern to its code (in bits, MSB
	// first, stored in the low `length` bits of word).
	codes map[uint32]bitCode
	// root of the decode tree.
	root *huffNode
	// symbols counts distinct values (the codebook size).
	symbols int
}

type bitCode struct {
	word   uint64
	length int
}

type huffNode struct {
	val         float32
	count       int64
	left, right *huffNode
}

func (n *huffNode) leaf() bool { return n.left == nil && n.right == nil }

// huffHeap is a min-heap of nodes by count, ties broken by value bits for
// determinism.
type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return math.Float32bits(h[i].val) < math.Float32bits(h[j].val)
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewHuffmanCode builds a code from the value frequencies of vals.
func NewHuffmanCode(vals []float32) (*HuffmanCode, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("%w: empty value stream", ErrBadArg)
	}
	freq := map[uint32]int64{}
	rep := map[uint32]float32{}
	for _, v := range vals {
		b := math.Float32bits(v)
		freq[b]++
		rep[b] = v
	}
	h := make(huffHeap, 0, len(freq))
	for b, c := range freq {
		h = append(h, &huffNode{val: rep[b], count: c})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{count: a.count + b.count, left: a, right: b})
	}
	code := &HuffmanCode{codes: map[uint32]bitCode{}, root: h[0], symbols: len(freq)}
	if code.root.leaf() {
		// Single distinct value: give it a 1-bit code so every symbol
		// still occupies measurable space.
		code.codes[math.Float32bits(code.root.val)] = bitCode{word: 0, length: 1}
		return code, nil
	}
	var walk func(n *huffNode, word uint64, depth int) error
	walk = func(n *huffNode, word uint64, depth int) error {
		if n.leaf() {
			if depth > 63 {
				return fmt.Errorf("compress: huffman code deeper than 63 bits")
			}
			code.codes[math.Float32bits(n.val)] = bitCode{word: word, length: depth}
			return nil
		}
		if err := walk(n.left, word<<1, depth+1); err != nil {
			return err
		}
		return walk(n.right, word<<1|1, depth+1)
	}
	if err := walk(code.root, 0, 0); err != nil {
		return nil, err
	}
	return code, nil
}

// Symbols returns the number of distinct values in the codebook.
func (c *HuffmanCode) Symbols() int { return c.symbols }

// CodebookBytes is the storage cost of the codebook: each distinct value
// (4 bytes) plus its code length (1 byte), the canonical-code layout.
func (c *HuffmanCode) CodebookBytes() int64 { return int64(c.symbols) * 5 }

// Encode compresses vals (every value must be in the codebook).
func (c *HuffmanCode) Encode(vals []float32) ([]byte, error) {
	var out []byte
	var cur uint64
	bits := 0
	for _, v := range vals {
		bc, ok := c.codes[math.Float32bits(v)]
		if !ok {
			return nil, fmt.Errorf("%w: value %v not in codebook", ErrBadArg, v)
		}
		for i := bc.length - 1; i >= 0; i-- {
			cur = cur<<1 | (bc.word >> uint(i) & 1)
			bits++
			if bits == 8 {
				out = append(out, byte(cur))
				cur, bits = 0, 0
			}
		}
	}
	if bits > 0 {
		out = append(out, byte(cur<<uint(8-bits)))
	}
	return out, nil
}

// Decode decompresses exactly n values from data.
func (c *HuffmanCode) Decode(data []byte, n int) ([]float32, error) {
	out := make([]float32, 0, n)
	node := c.root
	if node.leaf() { // single-symbol stream
		for i := 0; i < n; i++ {
			out = append(out, node.val)
		}
		return out, nil
	}
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			if b>>uint(bit)&1 == 0 {
				node = node.left
			} else {
				node = node.right
			}
			if node.leaf() {
				out = append(out, node.val)
				if len(out) == n {
					return out, nil
				}
				node = c.root
			}
		}
	}
	return nil, fmt.Errorf("%w: stream ended after %d of %d values", ErrBadArg, len(out), n)
}

// HuffmanSize entropy-codes every weight tensor of the model and reports
// the real encoded size (payload + codebooks). The model is not
// modified; this is the storage stage, applied after Prune/KMeansShare
// have shaped the value distribution.
func HuffmanSize(m *nn.Model) (Report, error) {
	var total, bytesAfter int64
	for _, w := range weightTensors(m) {
		d := w.Data()
		if len(d) == 0 {
			continue
		}
		code, err := NewHuffmanCode(d)
		if err != nil {
			return Report{}, err
		}
		enc, err := code.Encode(d)
		if err != nil {
			return Report{}, err
		}
		// Verify round trip: the reported bytes must be decodable.
		dec, err := code.Decode(enc, len(d))
		if err != nil {
			return Report{}, err
		}
		for i := range dec {
			if math.Float32bits(dec[i]) != math.Float32bits(d[i]) {
				return Report{}, fmt.Errorf("compress: huffman round trip mismatch at %d", i)
			}
		}
		total += int64(len(d))
		bytesAfter += int64(len(enc)) + code.CodebookBytes()
	}
	if total == 0 {
		return Report{}, fmt.Errorf("%w: model has no weights", ErrBadArg)
	}
	return Report{
		Method:       "huffman",
		ParamsBefore: total, ParamsAfter: total,
		BytesBefore: total * 4, BytesAfter: bytesAfter,
	}, nil
}

// DeepCompress runs the full Han et al. [19] pipeline in place — prune →
// k-means weight sharing → Huffman coding — and reports the end-to-end
// storage ratio. The caller fine-tunes between stages if accuracy
// matters (as the paper's three-step method prescribes).
func DeepCompress(m *nn.Model, sparsity float64, k int, rng *rand.Rand) (Report, error) {
	pruneRep, err := Prune(m, sparsity)
	if err != nil {
		return Report{}, err
	}
	if _, err := KMeansShare(m, k, 0, rng); err != nil {
		return Report{}, err
	}
	huffRep, err := HuffmanSize(m)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Method:       fmt.Sprintf("deep-compress(s=%.2f,k=%d)", sparsity, k),
		ParamsBefore: pruneRep.ParamsBefore, ParamsAfter: pruneRep.ParamsAfter,
		BytesBefore: pruneRep.BytesBefore, BytesAfter: huffRep.BytesAfter,
	}, nil
}

// entropyBits returns the Shannon lower bound (bits/value) of the stream
// — exposed for tests asserting the codec is near-optimal.
func entropyBits(vals []float32) float64 {
	freq := map[uint32]int64{}
	for _, v := range vals {
		freq[math.Float32bits(v)]++
	}
	keys := make([]uint32, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var h float64
	n := float64(len(vals))
	for _, k := range keys {
		p := float64(freq[k]) / n
		h -= p * math.Log2(p)
	}
	return h
}
