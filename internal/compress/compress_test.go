package compress

import (
	"errors"
	"math/rand"
	"testing"

	"openei/internal/dataset"
	"openei/internal/nn"
	"openei/internal/tensor"
)

// trainedProbe returns a small trained MLP and its train/test data, cached
// per test process via sync.Once-free simple memoization (tests rebuild it;
// training is fast at this size).
func trainedProbe(t *testing.T) (*nn.Model, nn.Dataset, nn.Dataset) {
	t.Helper()
	cfg := dataset.PowerConfig{Samples: 500, Window: 32, Noise: 0.05, Seed: 11}
	train, test, err := dataset.Power(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	m := nn.MustModel("probe", []int{32}, []nn.LayerSpec{
		{Type: "dense", In: 32, Out: 48},
		{Type: "relu"},
		{Type: "dense", In: 48, Out: 24},
		{Type: "relu"},
		{Type: "dense", In: 24, Out: 5},
	})
	m.InitParams(rng)
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 12, BatchSize: 32, LR: 0.1, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	return m, train, test
}

func accOf(t *testing.T, m *nn.Model, d nn.Dataset) float64 {
	t.Helper()
	acc, err := nn.Accuracy(m, d.X, d.Y)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestPruneSparsityAndReport(t *testing.T) {
	m, _, test := trainedProbe(t)
	base := accOf(t, m, test)
	rep, err := Prune(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sparsity(m); s < 0.45 || s > 0.55 {
		t.Errorf("sparsity after 50%% prune = %v", s)
	}
	if rep.Ratio() < 1.2 {
		t.Errorf("prune ratio = %v, want > 1.2", rep.Ratio())
	}
	// Moderate pruning must not destroy the model.
	if acc := accOf(t, m, test); acc < base-0.25 {
		t.Errorf("accuracy fell from %v to %v after 50%% prune", base, acc)
	}
}

func TestPruneHeavyThenFineTuneRecovers(t *testing.T) {
	m, train, test := trainedProbe(t)
	base := accOf(t, m, test)
	if _, err := Prune(m, 0.85); err != nil {
		t.Fatal(err)
	}
	hurt := accOf(t, m, test)
	rng := rand.New(rand.NewSource(5))
	if _, _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	tuned := accOf(t, m, test)
	if tuned < hurt {
		t.Errorf("fine-tuning reduced accuracy: %v -> %v", hurt, tuned)
	}
	// The Han et al. claim: prune + retrain approaches the original.
	if tuned < base-0.15 {
		t.Errorf("prune+finetune accuracy %v too far below base %v", tuned, base)
	}
}

func TestPruneBadSparsity(t *testing.T) {
	m, _, _ := trainedProbe(t)
	for _, s := range []float64{-0.1, 1.0, 1.5} {
		if _, err := Prune(m, s); !errors.Is(err, ErrBadArg) {
			t.Errorf("Prune(%v): err = %v, want ErrBadArg", s, err)
		}
	}
}

func TestKMeansShareAccuracyAndRatio(t *testing.T) {
	m, _, test := trainedProbe(t)
	base := accOf(t, m, test)
	rng := rand.New(rand.NewSource(6))
	rep, err := KMeansShare(m, 16, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 4 bits/weight → ≈8× before codebook overhead.
	if rep.Ratio() < 6 {
		t.Errorf("kmeans k=16 ratio = %v, want ≥ 6", rep.Ratio())
	}
	// Gong et al.: ~1%-scale accuracy loss for generous k.
	if acc := accOf(t, m, test); acc < base-0.1 {
		t.Errorf("kmeans accuracy fell from %v to %v", base, acc)
	}
	// Every weight must now be one of ≤16 distinct values per tensor.
	for _, l := range m.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		vals := map[float32]bool{}
		for _, v := range d.W.Data() {
			vals[v] = true
		}
		if len(vals) > 16 {
			t.Errorf("dense layer has %d distinct weights after k=16 sharing", len(vals))
		}
	}
}

func TestKMeansShareBadArgs(t *testing.T) {
	m, _, _ := trainedProbe(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeansShare(m, 1, 5, rng); !errors.Is(err, ErrBadArg) {
		t.Errorf("k=1: err = %v, want ErrBadArg", err)
	}
	if _, err := KMeansShare(m, 1000, 5, rng); !errors.Is(err, ErrBadArg) {
		t.Errorf("k=1000: err = %v, want ErrBadArg", err)
	}
	if _, err := KMeansShare(m, 16, 5, nil); !errors.Is(err, ErrBadArg) {
		t.Errorf("nil rng: err = %v, want ErrBadArg", err)
	}
}

func TestBinarizeRatioAndValues(t *testing.T) {
	m, _, _ := trainedProbe(t)
	rep, err := Binarize(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() < 25 {
		t.Errorf("binary ratio = %v, want ≈32", rep.Ratio())
	}
	for _, l := range m.Layers {
		d, ok := l.(*nn.Dense)
		if !ok {
			continue
		}
		vals := map[float32]bool{}
		for _, v := range d.W.Data() {
			vals[v] = true
		}
		if len(vals) > 2 {
			t.Errorf("binarized layer has %d distinct values, want ≤ 2", len(vals))
		}
	}
}

func TestQuantizeInt8KeepsAccuracy(t *testing.T) {
	m, _, test := trainedProbe(t)
	base := accOf(t, m, test)
	rep, err := QuantizeInt8(m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() < 3.5 || rep.Ratio() > 4.5 {
		t.Errorf("int8 ratio = %v, want ≈4", rep.Ratio())
	}
	if acc := accOf(t, m, test); acc < base-0.05 {
		t.Errorf("int8 accuracy fell from %v to %v (want ≈1%% loss regime)", base, acc)
	}
	// Dense layers must have quantized weights installed.
	for _, l := range m.Layers {
		if d, ok := l.(*nn.Dense); ok && d.QW == nil {
			t.Error("dense layer missing QW after QuantizeInt8")
		}
	}
}

func TestLowRankShrinksAndFineTuneRecovers(t *testing.T) {
	m, train, test := trainedProbe(t)
	base := accOf(t, m, test)
	rng := rand.New(rand.NewSource(7))
	lr, rep, err := LowRank(m, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ParamsAfter >= rep.ParamsBefore {
		t.Errorf("lowrank params %d not below %d", rep.ParamsAfter, rep.ParamsBefore)
	}
	// Raw factorization loses some accuracy; Denton et al. keep the loss
	// within ~1% only after fine-tuning, which we replicate below.
	raw := accOf(t, lr, test)
	if raw < base-0.3 {
		t.Errorf("raw lowrank accuracy fell from %v to %v", base, raw)
	}
	// A gentler learning rate is needed when fine-tuning stacked factor
	// pairs (gradient through W2·W1 compounds).
	if _, _, err := nn.Train(lr, train, nn.TrainConfig{Epochs: 4, BatchSize: 32, LR: 0.005, Momentum: 0.9, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	if tuned := accOf(t, lr, test); tuned < base-0.05 {
		t.Errorf("fine-tuned lowrank accuracy %v too far below base %v", tuned, base)
	}
	// The original model must be untouched.
	if got := accOf(t, m, test); got != base {
		t.Errorf("LowRank mutated the original model: %v vs %v", got, base)
	}
}

func TestLowRankKeepsConvLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv := tensor.Conv2DSpec{InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	m := nn.MustModel("cnn", []int{1, 8, 8}, []nn.LayerSpec{
		{Type: "conv2d", Conv: &conv},
		{Type: "relu"},
		{Type: "flatten"},
		{Type: "dense", In: 4 * 8 * 8, Out: 64},
		{Type: "relu"},
		{Type: "dense", In: 64, Out: 4},
	})
	m.InitParams(rng)
	lr, _, err := LowRank(m, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Conv layer must still be first and produce identical outputs for the
	// same weights (the 64→4 head is too small to factorize profitably at
	// ratio .25: rank 1 * (64+4) = 68 < 256, so it WILL be factorized;
	// verify structure only).
	if lr.Layers[0].Kind() != "conv2d" {
		t.Errorf("first layer after LowRank = %s, want conv2d", lr.Layers[0].Kind())
	}
	x := tensor.New(2, 1, 8, 8)
	x.Rand(rng, 1)
	if _, err := lr.Forward(x, false); err != nil {
		t.Fatalf("lowrank model forward: %v", err)
	}
}

func TestLowRankBadArgs(t *testing.T) {
	m, _, _ := trainedProbe(t)
	rng := rand.New(rand.NewSource(1))
	for _, r := range []float64{0, -1, 1.5} {
		if _, _, err := LowRank(m, r, rng); !errors.Is(err, ErrBadArg) {
			t.Errorf("LowRank(%v): err = %v, want ErrBadArg", r, err)
		}
	}
	if _, _, err := LowRank(m, 0.5, nil); !errors.Is(err, ErrBadArg) {
		t.Errorf("nil rng: err = %v, want ErrBadArg", err)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Method: "x", ParamsBefore: 100, ParamsAfter: 50, BytesBefore: 400, BytesAfter: 100}
	if r.Ratio() != 4 {
		t.Errorf("Ratio = %v, want 4", r.Ratio())
	}
	if s := r.String(); s == "" {
		t.Error("empty report string")
	}
	if (Report{}).Ratio() != 0 {
		t.Error("zero report must have ratio 0")
	}
}

// Compression-ordering property from Table I: binary < kmeans < int8 in
// resulting size (i.e. binary compresses hardest).
func TestCompressionRatioOrdering(t *testing.T) {
	m1, _, _ := trainedProbe(t)
	m2, err := m1.Clone()
	if err != nil {
		t.Fatal(err)
	}
	m3, err := m1.Clone()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	rb, err := Binarize(m1)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := KMeansShare(m2, 16, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := QuantizeInt8(m3)
	if err != nil {
		t.Fatal(err)
	}
	if !(rb.Ratio() > rk.Ratio() && rk.Ratio() > rq.Ratio()) {
		t.Errorf("ratio ordering binary(%v) > kmeans(%v) > int8(%v) violated",
			rb.Ratio(), rk.Ratio(), rq.Ratio())
	}
}
