package hardware

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestCatalogSortedAndUniqueNames(t *testing.T) {
	cat := Catalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d devices, want ≥ 8", len(cat))
	}
	seen := map[string]bool{}
	prev := ""
	for _, d := range cat {
		if seen[d.Name] {
			t.Errorf("duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		if d.Name < prev {
			t.Errorf("catalog not sorted: %q after %q", d.Name, prev)
		}
		prev = d.Name
		if d.FLOPS <= 0 || d.MemBandwidth <= 0 || d.MemBytes <= 0 {
			t.Errorf("device %q has non-positive capability", d.Name)
		}
		if d.ActiveWatts <= d.IdleWatts {
			t.Errorf("device %q active power %v not above idle %v", d.Name, d.ActiveWatts, d.IdleWatts)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != ClassSBC {
		t.Errorf("rpi3 class = %v, want sbc", d.Class)
	}
	if _, err := ByName("cray"); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: err = %v, want ErrUnknownDevice", err)
	}
}

func TestEdgeCatalogExcludesCloud(t *testing.T) {
	for _, d := range EdgeCatalog() {
		if d.Class == ClassCloud {
			t.Errorf("EdgeCatalog contains cloud device %q", d.Name)
		}
	}
	if len(EdgeCatalog()) != len(Catalog())-1 {
		t.Errorf("EdgeCatalog size %d, want catalog−1", len(EdgeCatalog()))
	}
}

func TestLatencyOrderingAcrossDevices(t *testing.T) {
	// A mid-size CNN must be strictly faster on a TX2 than on an rpi3,
	// and faster on the cloud GPU than anywhere else.
	w := Workload{FLOPs: 5e8, WeightBytes: 4 << 20, ActivationBytes: 1 << 20, LayerCount: 12}
	lat := func(name string) time.Duration {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		l, err := d.Latency(w)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	rpi, tx2, gpu := lat("rpi3"), lat("jetson-tx2"), lat("cloud-gpu")
	if !(gpu < tx2 && tx2 < rpi) {
		t.Errorf("latency ordering violated: gpu=%v tx2=%v rpi=%v", gpu, tx2, rpi)
	}
	// Paper-scale factor check: TX2 is ~100× the Pi's FLOPS; for a
	// compute-bound workload the ratio should be large.
	if float64(rpi)/float64(tx2) < 20 {
		t.Errorf("rpi/tx2 latency ratio %v, want ≥ 20 for compute-bound work", float64(rpi)/float64(tx2))
	}
}

func TestInt8PathFaster(t *testing.T) {
	d, err := ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{FLOPs: 2e9, WeightBytes: 16 << 20, ActivationBytes: 1 << 20}
	f32, err := d.Latency(w)
	if err != nil {
		t.Fatal(err)
	}
	w.Int8 = true
	i8, err := d.Latency(w)
	if err != nil {
		t.Fatal(err)
	}
	if i8 >= f32 {
		t.Errorf("int8 latency %v not below float32 %v", i8, f32)
	}
}

func TestEfficiencyScaleSlowsDown(t *testing.T) {
	d, err := ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	base := Workload{FLOPs: 1e9}
	slow := Workload{FLOPs: 1e9, EfficiencyScale: 0.25}
	lb, err := d.Latency(base)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := d.Latency(slow)
	if err != nil {
		t.Fatal(err)
	}
	if ls <= lb {
		t.Errorf("0.25-efficiency latency %v not above baseline %v", ls, lb)
	}
}

func TestMemoryBytesAndFits(t *testing.T) {
	uno, err := ByName("arduino-uno")
	if err != nil {
		t.Fatal(err)
	}
	big := Workload{WeightBytes: 500 << 20} // VGG-16-scale model from the paper
	if uno.Fits(big) {
		t.Error("a 500MB model must not fit a 2kB MCU")
	}
	server, err := ByName("edge-server")
	if err != nil {
		t.Fatal(err)
	}
	if !server.Fits(big) {
		t.Error("a 500MB model must fit a 48GB edge server")
	}
	// WeightBytes carries the deployed representation's actual size, so
	// an int8 workload arrives with ~¼ the bytes of its float parent and
	// the footprint shrinks by exactly that delta — no hidden discount.
	w := Workload{WeightBytes: 400}
	q := Workload{WeightBytes: 100, Int8: true}
	if diff := server.MemoryBytes(w) - server.MemoryBytes(q); diff != 300 {
		t.Errorf("int8 footprint delta %d, want the representation delta 300", diff)
	}
}

func TestEnergyProportionalToLatency(t *testing.T) {
	d, err := ByName("jetson-nano")
	if err != nil {
		t.Fatal(err)
	}
	small := Workload{FLOPs: 1e8}
	large := Workload{FLOPs: 1e10}
	es, err := d.EnergyJoules(small)
	if err != nil {
		t.Fatal(err)
	}
	el, err := d.EnergyJoules(large)
	if err != nil {
		t.Fatal(err)
	}
	if el <= es {
		t.Errorf("100× FLOPs energy %v not above %v", el, es)
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{FLOPs: -1},
		{WeightBytes: -5},
		{EfficiencyScale: -0.1},
		{LayerCount: -2},
	}
	d, err := ByName("rpi3")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range bad {
		if _, err := d.Latency(w); err == nil {
			t.Errorf("Latency(%+v) should fail", w)
		}
		if _, err := d.EnergyJoules(w); err == nil {
			t.Errorf("EnergyJoules(%+v) should fail", w)
		}
	}
}

// Property: latency is monotone in FLOPs and energy is non-negative for
// every device in the catalog.
func TestLatencyMonotoneProperty(t *testing.T) {
	cat := Catalog()
	f := func(a, b uint32, devIdx uint8) bool {
		d := cat[int(devIdx)%len(cat)]
		lo, hi := int64(a%1e6), int64(a%1e6)+int64(b%1e9)
		l1, err1 := d.Latency(Workload{FLOPs: lo})
		l2, err2 := d.Latency(Workload{FLOPs: hi})
		if err1 != nil || err2 != nil {
			return false
		}
		e, err := d.EnergyJoules(Workload{FLOPs: hi})
		if err != nil || e < 0 {
			return false
		}
		return l1 <= l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassMCU, "mcu"}, {ClassSBC, "sbc"}, {ClassMobile, "mobile"},
		{ClassAccelerator, "accelerator"}, {ClassEdgeServer, "edge-server"},
		{ClassCloud, "cloud"}, {Class(0), "class(0)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}
