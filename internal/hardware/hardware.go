// Package hardware simulates the heterogeneous edge devices of the paper's
// Figure 5 third axis ("edge hardware": Raspberry Pi, Jetson TX2, Movidius,
// phones, edge servers, …).
//
// Substitution note (see DESIGN.md §2): the paper profiles real boards; this
// repo cannot, so each device is a calibrated analytical model — a roofline
// latency model (compute-bound vs memory-bound) plus a power model. The
// absolute numbers are synthetic, but the ratios between devices follow the
// public spec sheets of the named hardware, which is what the selector and
// the dataflow experiments depend on.
package hardware

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrUnknownDevice is returned when a device name is not in the catalog.
var ErrUnknownDevice = errors.New("hardware: unknown device")

// Class groups devices by broad capability tier.
type Class int

// Device classes, from most to least constrained.
const (
	ClassMCU Class = iota + 1
	ClassSBC
	ClassMobile
	ClassAccelerator
	ClassEdgeServer
	ClassCloud
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassMCU:
		return "mcu"
	case ClassSBC:
		return "sbc"
	case ClassMobile:
		return "mobile"
	case ClassAccelerator:
		return "accelerator"
	case ClassEdgeServer:
		return "edge-server"
	case ClassCloud:
		return "cloud"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Device is an analytical model of one hardware platform.
type Device struct {
	Name  string
	Class Class

	// FLOPS is the effective float32 throughput (FLOP/s) a tuned DL
	// runtime reaches on the device (well below theoretical peak).
	FLOPS float64
	// Int8Speedup multiplies FLOPS when running int8-quantized kernels
	// (NEON/DSP/NPU paths make this >1 on most edge silicon).
	Int8Speedup float64
	// MemBytes is the RAM budget available to a model (weights +
	// activations) before the device starts swapping/failing.
	MemBytes int64
	// MemBandwidth is sustained DRAM bandwidth in bytes/s; it bounds
	// memory-bound layers via the roofline.
	MemBandwidth float64
	// IdleWatts and ActiveWatts define the two-point power model;
	// inference energy = (ActiveWatts − IdleWatts) · latency, matching the
	// paper's definition of Energy as the *increase* in consumption.
	IdleWatts   float64
	ActiveWatts float64
	// DispatchOverhead is the fixed per-inference runtime cost (syscalls,
	// graph dispatch); it dominates tiny models, which is why crossovers
	// between model families move across devices.
	DispatchOverhead time.Duration
}

// Catalog returns the built-in device catalog, sorted by name. The entries
// mirror the platforms named in the paper (§II.B, §IV.D and Figure 5).
func Catalog() []Device {
	ds := []Device{
		{
			Name: "arduino-uno", Class: ClassMCU,
			FLOPS: 2e6, Int8Speedup: 2.0, MemBytes: 2 << 10, MemBandwidth: 1e6,
			IdleWatts: 0.05, ActiveWatts: 0.25, DispatchOverhead: 500 * time.Microsecond,
		},
		{
			Name: "rpi3", Class: ClassSBC,
			FLOPS: 2.0e9, Int8Speedup: 1.8, MemBytes: 768 << 20, MemBandwidth: 2.0e9,
			IdleWatts: 1.9, ActiveWatts: 4.6, DispatchOverhead: 300 * time.Microsecond,
		},
		{
			Name: "rpi4", Class: ClassSBC,
			FLOPS: 6.0e9, Int8Speedup: 2.0, MemBytes: 3 << 30, MemBandwidth: 4.0e9,
			IdleWatts: 2.7, ActiveWatts: 6.4, DispatchOverhead: 200 * time.Microsecond,
		},
		{
			Name: "phone", Class: ClassMobile,
			FLOPS: 1.2e10, Int8Speedup: 2.8, MemBytes: 4 << 30, MemBandwidth: 1.2e10,
			IdleWatts: 0.8, ActiveWatts: 3.5, DispatchOverhead: 150 * time.Microsecond,
		},
		{
			Name: "movidius", Class: ClassAccelerator,
			FLOPS: 5.0e10, Int8Speedup: 1.0, MemBytes: 512 << 20, MemBandwidth: 8.0e9,
			IdleWatts: 0.5, ActiveWatts: 1.8, DispatchOverhead: 400 * time.Microsecond,
		},
		{
			Name: "jetson-nano", Class: ClassAccelerator,
			FLOPS: 1.0e11, Int8Speedup: 2.0, MemBytes: 4 << 30, MemBandwidth: 2.5e10,
			IdleWatts: 2.0, ActiveWatts: 9.0, DispatchOverhead: 250 * time.Microsecond,
		},
		{
			Name: "jetson-tx2", Class: ClassAccelerator,
			FLOPS: 3.0e11, Int8Speedup: 2.0, MemBytes: 8 << 30, MemBandwidth: 5.8e10,
			IdleWatts: 3.5, ActiveWatts: 14.0, DispatchOverhead: 250 * time.Microsecond,
		},
		{
			Name: "laptop", Class: ClassEdgeServer,
			FLOPS: 1.5e11, Int8Speedup: 1.6, MemBytes: 12 << 30, MemBandwidth: 3.0e10,
			IdleWatts: 10, ActiveWatts: 38, DispatchOverhead: 100 * time.Microsecond,
		},
		{
			Name: "edge-server", Class: ClassEdgeServer,
			FLOPS: 8.0e11, Int8Speedup: 2.2, MemBytes: 48 << 30, MemBandwidth: 8.0e10,
			IdleWatts: 60, ActiveWatts: 180, DispatchOverhead: 80 * time.Microsecond,
		},
		{
			Name: "cloud-gpu", Class: ClassCloud,
			FLOPS: 1.2e13, Int8Speedup: 2.0, MemBytes: 256 << 30, MemBandwidth: 9.0e11,
			IdleWatts: 120, ActiveWatts: 420, DispatchOverhead: 60 * time.Microsecond,
		},
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

// ByName looks a device up in the catalog.
func ByName(name string) (Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("%w: %q", ErrUnknownDevice, name)
}

// EdgeCatalog returns the catalog without cloud-class devices — the
// candidate set the model selector searches for an edge node.
func EdgeCatalog() []Device {
	var out []Device
	for _, d := range Catalog() {
		if d.Class != ClassCloud {
			out = append(out, d)
		}
	}
	return out
}

// Workload describes one inference (or training step) for costing.
type Workload struct {
	FLOPs int64 // multiply-accumulate dominated compute
	// WeightBytes and ActivationBytes together bound the working set that
	// streams through DRAM. WeightBytes is the footprint of the weight
	// representation actually deployed — callers costing an int8 artifact
	// pass its int8 bytes (nn.Model.WeightBytes/Int8WeightBytes report
	// per-representation numbers), not the float-equivalent size.
	WeightBytes     int64
	ActivationBytes int64
	// Int8 selects the quantized kernel path: compute runs at the
	// device's Int8Speedup. The memory terms take no extra discount —
	// the representation's size is already in WeightBytes.
	Int8 bool
	// EfficiencyScale < 1 models an inefficient runtime (an un-optimized
	// "package" in the paper's 3-D selector space); 1 is the tuned runtime.
	EfficiencyScale float64
	// DispatchScale multiplies the device's fixed per-inference dispatch
	// overhead; heavyweight cloud frameworks pay several times the session
	// setup cost of a lean interpreter (pCAMP [48]). 0 means 1.
	DispatchScale float64
	// LayerCount adds per-layer dispatch cost for deep graphs.
	LayerCount int
}

// Validate checks the workload for obviously bad values.
func (w Workload) Validate() error {
	if w.FLOPs < 0 || w.WeightBytes < 0 || w.ActivationBytes < 0 || w.LayerCount < 0 {
		return fmt.Errorf("hardware: negative workload %+v", w)
	}
	if w.EfficiencyScale < 0 {
		return fmt.Errorf("hardware: negative efficiency %v", w.EfficiencyScale)
	}
	if w.DispatchScale < 0 {
		return fmt.Errorf("hardware: negative dispatch scale %v", w.DispatchScale)
	}
	return nil
}

// Latency returns the modelled inference latency of the workload on d using
// the roofline: time = max(compute time, memory time) + dispatch overhead.
func (d Device) Latency(w Workload) (time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	eff := w.EfficiencyScale
	if eff == 0 {
		eff = 1
	}
	flops := d.FLOPS * eff
	if w.Int8 && d.Int8Speedup > 0 {
		flops *= d.Int8Speedup
	}
	compute := float64(w.FLOPs) / flops
	mem := float64(w.WeightBytes+w.ActivationBytes) / d.MemBandwidth
	secs := compute
	if mem > secs {
		secs = mem
	}
	dispatch := d.DispatchOverhead
	if w.DispatchScale > 0 {
		dispatch = time.Duration(float64(dispatch) * w.DispatchScale)
	}
	lat := time.Duration(secs*float64(time.Second)) + dispatch
	if w.LayerCount > 1 {
		lat += time.Duration(w.LayerCount-1) * (dispatch / 8)
	}
	return lat, nil
}

// EnergyJoules returns the marginal energy (in joules) of running the
// workload: (active − idle) power times the modelled latency. This matches
// the paper's "Energy refers to the increased power consumption … when
// executing the inference task".
func (d Device) EnergyJoules(w Workload) (float64, error) {
	lat, err := d.Latency(w)
	if err != nil {
		return 0, err
	}
	return (d.ActiveWatts - d.IdleWatts) * lat.Seconds(), nil
}

// MemoryBytes returns the modelled peak memory of the workload: the
// deployed weight representation plus activations plus a fixed runtime
// residency. (Int8 workloads already carry their shrunken footprint in
// WeightBytes; no further discount is applied here.)
func (d Device) MemoryBytes(w Workload) int64 {
	const runtimeResidency = 1 << 20 // lightweight package ≈1 MiB resident
	return w.WeightBytes + w.ActivationBytes + runtimeResidency
}

// Fits reports whether the workload's memory footprint fits the device.
func (d Device) Fits(w Workload) bool {
	return d.MemoryBytes(w) <= d.MemBytes
}
