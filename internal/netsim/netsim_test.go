package netsim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTransferBasics(t *testing.T) {
	l := Link{Name: "t", BandwidthBPS: 1000, RTT: 10 * time.Millisecond}
	d, err := l.Transfer(1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + time.Second
	if d != want {
		t.Errorf("Transfer(1000) = %v, want %v", d, want)
	}
	// Zero bytes costs exactly the RTT.
	d, err = l.Transfer(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Millisecond {
		t.Errorf("Transfer(0) = %v, want RTT", d)
	}
}

func TestTransferErrors(t *testing.T) {
	bad := []Link{
		{BandwidthBPS: 0},
		{BandwidthBPS: -1},
		{BandwidthBPS: 1, RTT: -time.Second},
		{BandwidthBPS: 1, JitterFrac: 1.5},
	}
	for _, l := range bad {
		if _, err := l.Transfer(10); !errors.Is(err, ErrBadLink) {
			t.Errorf("Transfer on %+v: err = %v, want ErrBadLink", l, err)
		}
	}
	good := Link{BandwidthBPS: 1}
	if _, err := good.Transfer(-1); !errors.Is(err, ErrBadLink) {
		t.Errorf("negative payload: err = %v, want ErrBadLink", err)
	}
}

func TestStandardLinkOrdering(t *testing.T) {
	// For a 1MB payload: loopback < LAN < WAN.
	const n = 1 << 20
	lb, err := Loopback.Transfer(n)
	if err != nil {
		t.Fatal(err)
	}
	lan, err := LAN.Transfer(n)
	if err != nil {
		t.Fatal(err)
	}
	wan, err := WAN.Transfer(n)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb < lan && lan < wan) {
		t.Errorf("ordering violated: loopback=%v lan=%v wan=%v", lb, lan, wan)
	}
	// The WAN gap matters: ≥ 10× the LAN time for 1MB (paper's bandwidth
	// motivation).
	if float64(wan)/float64(lan) < 5 {
		t.Errorf("wan/lan ratio = %v, want ≥ 5", float64(wan)/float64(lan))
	}
}

func TestJitterBounds(t *testing.T) {
	l := Link{Name: "j", BandwidthBPS: 1e6, RTT: time.Millisecond, JitterFrac: 0.3}
	rng := rand.New(rand.NewSource(1))
	base, err := l.Transfer(1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d, err := l.TransferJitter(1e6, rng)
		if err != nil {
			t.Fatal(err)
		}
		lo := time.Duration(float64(base) * 0.69)
		hi := time.Duration(float64(base) * 1.31)
		if d < lo || d > hi {
			t.Fatalf("jittered transfer %v outside [%v, %v]", d, lo, hi)
		}
	}
	// Nil rng or zero jitter: deterministic.
	d, err := l.TransferJitter(1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != base {
		t.Error("nil rng must disable jitter")
	}
}

func TestPathSumsHops(t *testing.T) {
	p := Path{LAN, WAN}
	d, err := p.Transfer(1000)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := LAN.Transfer(1000)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := WAN.Transfer(1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != l1+l2 {
		t.Errorf("Path transfer %v != %v + %v", d, l1, l2)
	}
	bad := Path{{BandwidthBPS: 0}}
	if _, err := bad.Transfer(1); err == nil {
		t.Error("bad hop should fail")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	if _, err := m.Record(WAN, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Record(WAN, 250); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Record(LAN, 100); err != nil {
		t.Fatal(err)
	}
	if m.Bytes("wan") != 750 {
		t.Errorf("wan bytes = %d, want 750", m.Bytes("wan"))
	}
	if m.Bytes("lan") != 100 {
		t.Errorf("lan bytes = %d, want 100", m.Bytes("lan"))
	}
	if m.Total() != 850 {
		t.Errorf("total = %d, want 850", m.Total())
	}
	if m.Bytes("nope") != 0 {
		t.Error("unknown link must read 0")
	}
}

// Property: transfer time is monotone in payload size.
func TestTransferMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		lo := int64(a % 1e6)
		hi := lo + int64(b%1e6)
		d1, err1 := WAN.Transfer(lo)
		d2, err2 := WAN.Transfer(hi)
		return err1 == nil && err2 == nil && d1 <= d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
