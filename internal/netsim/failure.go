package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrLinkDown is returned by FlakyLink when a transfer attempt fails.
var ErrLinkDown = errors.New("netsim: link down")

// FlakyLink wraps a Link with a per-attempt failure probability, modelling
// the "dynamic changes in topology and high uncertainty in wireless
// communication" the paper's §IV.C open problem calls out. Collaboration
// code uses it to exercise retry paths.
type FlakyLink struct {
	Link Link
	// FailureRate is the probability in [0,1) that one transfer attempt
	// fails outright.
	FailureRate float64
	// Rand drives failures; required when FailureRate > 0.
	Rand *rand.Rand
}

// Validate checks the flaky-link parameters.
func (f FlakyLink) Validate() error {
	if err := f.Link.Validate(); err != nil {
		return err
	}
	if f.FailureRate < 0 || f.FailureRate >= 1 {
		return fmt.Errorf("%w: failure rate %v outside [0,1)", ErrBadLink, f.FailureRate)
	}
	if f.FailureRate > 0 && f.Rand == nil {
		return fmt.Errorf("%w: failure rate without a random source", ErrBadLink)
	}
	return nil
}

// Transfer attempts to move n bytes; it fails with probability FailureRate
// (after a half-RTT, modelling a timeout detection at the sender).
func (f FlakyLink) Transfer(n int64) (time.Duration, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.FailureRate > 0 && f.Rand.Float64() < f.FailureRate {
		return f.Link.RTT / 2, fmt.Errorf("%w: %s", ErrLinkDown, f.Link.Name)
	}
	return f.Link.Transfer(n)
}

// TransferRetry retries the transfer up to attempts times, accumulating
// the time spent on failures plus an exponential backoff (base backoff
// doubling per retry). It returns the total elapsed modelled time, the
// number of attempts used, and the final error (nil on success).
func (f FlakyLink) TransferRetry(n int64, attempts int, backoff time.Duration) (time.Duration, int, error) {
	if attempts <= 0 {
		attempts = 1
	}
	var elapsed time.Duration
	var lastErr error
	wait := backoff
	for try := 1; try <= attempts; try++ {
		d, err := f.Transfer(n)
		elapsed += d
		if err == nil {
			return elapsed, try, nil
		}
		lastErr = err
		if try < attempts {
			elapsed += wait
			wait *= 2
		}
	}
	return elapsed, attempts, fmt.Errorf("netsim: %d attempts failed: %w", attempts, lastErr)
}
