package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// ErrLinkDown is returned by FlakyLink when a transfer attempt fails.
var ErrLinkDown = errors.New("netsim: link down")

// FlakyLink wraps a Link with a per-attempt failure probability, modelling
// the "dynamic changes in topology and high uncertainty in wireless
// communication" the paper's §IV.C open problem calls out. Collaboration
// code uses it to exercise retry paths.
type FlakyLink struct {
	Link Link
	// FailureRate is the probability in [0,1) that one transfer attempt
	// fails outright.
	FailureRate float64
	// Rand drives failures; required when FailureRate > 0.
	Rand *rand.Rand
}

// Validate checks the flaky-link parameters.
func (f FlakyLink) Validate() error {
	if err := f.Link.Validate(); err != nil {
		return err
	}
	if f.FailureRate < 0 || f.FailureRate >= 1 {
		return fmt.Errorf("%w: failure rate %v outside [0,1)", ErrBadLink, f.FailureRate)
	}
	if f.FailureRate > 0 && f.Rand == nil {
		return fmt.Errorf("%w: failure rate without a random source", ErrBadLink)
	}
	return nil
}

// Transfer attempts to move n bytes; it fails with probability FailureRate
// (after a half-RTT, modelling a timeout detection at the sender).
func (f FlakyLink) Transfer(n int64) (time.Duration, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.FailureRate > 0 && f.Rand.Float64() < f.FailureRate {
		return f.Link.RTT / 2, fmt.Errorf("%w: %s", ErrLinkDown, f.Link.Name)
	}
	return f.Link.Transfer(n)
}

// PartitionLink wraps a Link with a toggleable partition: while cut,
// every transfer fails after a half-RTT (the sender's timeout), exactly
// like a switch losing a segment. Unlike FlakyLink's per-attempt dice
// roll this models a *correlated* outage — the failure mode that drives
// a heartbeat failure detector from live to suspect and back. Safe for
// concurrent use; tests flip it mid-run.
type PartitionLink struct {
	Link Link
	down atomic.Bool
}

// NewPartitionLink wraps the link, initially healthy.
func NewPartitionLink(l Link) *PartitionLink {
	return &PartitionLink{Link: l}
}

// Partition cuts the link; transfers fail until Heal.
func (p *PartitionLink) Partition() { p.down.Store(true) }

// Heal restores the link.
func (p *PartitionLink) Heal() { p.down.Store(false) }

// Partitioned reports whether the link is currently cut.
func (p *PartitionLink) Partitioned() bool { return p.down.Load() }

// Validate checks the underlying link parameters.
func (p *PartitionLink) Validate() error { return p.Link.Validate() }

// Transfer moves n bytes, or burns a half-RTT and fails while the link
// is partitioned.
func (p *PartitionLink) Transfer(n int64) (time.Duration, error) {
	if err := p.Link.Validate(); err != nil {
		return 0, err
	}
	if p.down.Load() {
		return p.Link.RTT / 2, fmt.Errorf("%w: %s partitioned", ErrLinkDown, p.Link.Name)
	}
	return p.Link.Transfer(n)
}

// TransferRetry retries the transfer up to attempts times, accumulating
// the time spent on failures plus an exponential backoff (base backoff
// doubling per retry). It returns the total elapsed modelled time, the
// number of attempts used, and the final error (nil on success).
func (f FlakyLink) TransferRetry(n int64, attempts int, backoff time.Duration) (time.Duration, int, error) {
	if attempts <= 0 {
		attempts = 1
	}
	var elapsed time.Duration
	var lastErr error
	wait := backoff
	for try := 1; try <= attempts; try++ {
		d, err := f.Transfer(n)
		elapsed += d
		if err == nil {
			return elapsed, try, nil
		}
		lastErr = err
		if try < attempts {
			elapsed += wait
			wait *= 2
		}
	}
	return elapsed, attempts, fmt.Errorf("netsim: %d attempts failed: %w", attempts, lastErr)
}
