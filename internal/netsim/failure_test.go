package netsim

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"openei/internal/runenv"
)

func TestFlakyLinkZeroRateNeverFails(t *testing.T) {
	f := FlakyLink{Link: LAN}
	for i := 0; i < 50; i++ {
		if _, err := f.Transfer(1000); err != nil {
			t.Fatalf("zero-rate flaky link failed: %v", err)
		}
	}
}

func TestFlakyLinkAlwaysEventuallyObservesFailures(t *testing.T) {
	f := FlakyLink{Link: LAN, FailureRate: 0.5, Rand: rand.New(rand.NewSource(1))}
	failures := 0
	for i := 0; i < 200; i++ {
		if _, err := f.Transfer(1000); err != nil {
			if !errors.Is(err, ErrLinkDown) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures < 60 || failures > 140 {
		t.Errorf("failures = %d of 200 at rate 0.5", failures)
	}
}

func TestFlakyLinkValidation(t *testing.T) {
	bad := []FlakyLink{
		{Link: LAN, FailureRate: 1.0, Rand: rand.New(rand.NewSource(1))},
		{Link: LAN, FailureRate: -0.1},
		{Link: LAN, FailureRate: 0.5}, // missing Rand
		{Link: Link{BandwidthBPS: 0}},
	}
	for _, f := range bad {
		if _, err := f.Transfer(10); !errors.Is(err, ErrBadLink) {
			t.Errorf("Transfer on %+v: err = %v, want ErrBadLink", f, err)
		}
	}
}

func TestTransferRetrySucceedsEventually(t *testing.T) {
	f := FlakyLink{Link: LAN, FailureRate: 0.6, Rand: rand.New(rand.NewSource(7))}
	var succeeded int
	for i := 0; i < 50; i++ {
		_, attempts, err := f.TransferRetry(1000, 10, time.Millisecond)
		if err == nil {
			succeeded++
			if attempts < 1 || attempts > 10 {
				t.Fatalf("attempts = %d", attempts)
			}
		}
	}
	// P(all 10 attempts fail) = 0.6^10 ≈ 0.6%; nearly all runs succeed.
	if succeeded < 45 {
		t.Errorf("only %d of 50 retried transfers succeeded", succeeded)
	}
}

func TestTransferRetryExhaustsAndReportsElapsed(t *testing.T) {
	// A link that always fails (rate ~1 via a rigged source is not
	// possible since rate < 1, so use 0.99 and a seed that fails thrice).
	f := FlakyLink{Link: Link{Name: "bad", BandwidthBPS: 1e6, RTT: 10 * time.Millisecond}, FailureRate: 0.99, Rand: rand.New(rand.NewSource(3))}
	elapsed, attempts, err := f.TransferRetry(1000, 3, 5*time.Millisecond)
	if err == nil {
		t.Skip("improbable: three successes at rate 0.99")
	}
	if !errors.Is(err, ErrLinkDown) {
		t.Errorf("err = %v, want ErrLinkDown", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	// 3 half-RTT failures (15ms) + backoff 5 + 10 = 30ms.
	if elapsed < 25*time.Millisecond {
		t.Errorf("elapsed = %v, want ≥ 25ms (failures + backoff)", elapsed)
	}
}

func TestPartitionLinkTogglesTransfers(t *testing.T) {
	p := NewPartitionLink(LAN)
	if _, err := p.Transfer(1000); err != nil {
		t.Fatalf("healthy partition link failed: %v", err)
	}
	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned() = false after Partition()")
	}
	d, err := p.Transfer(1000)
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("partitioned transfer: err = %v, want ErrLinkDown", err)
	}
	if d != LAN.RTT/2 {
		t.Errorf("partitioned transfer burned %v, want half-RTT %v", d, LAN.RTT/2)
	}
	p.Heal()
	if p.Partitioned() {
		t.Fatal("Partitioned() = true after Heal()")
	}
	if _, err := p.Transfer(1000); err != nil {
		t.Fatalf("healed partition link failed: %v", err)
	}
}

func TestPartitionLinkValidatesUnderlyingLink(t *testing.T) {
	p := NewPartitionLink(Link{Name: "zero"})
	if _, err := p.Transfer(10); !errors.Is(err, ErrBadLink) {
		t.Errorf("bad link: err = %v, want ErrBadLink", err)
	}
}

func TestPartitionFeedsFailureDetector(t *testing.T) {
	// A node heartbeats its gateway once a second over a LAN link. Cutting
	// the link starves the monitor until it suspects the node; healing it
	// revives the node on the next delivered beat — the live → suspect →
	// live arc the cluster gossip layer rides on.
	link := NewPartitionLink(LAN)
	mon := runenv.NewMonitor(2500 * time.Millisecond)
	t0 := time.Unix(1000, 0)
	deliver := func(at time.Time) {
		if d, err := link.Transfer(64); err == nil {
			mon.Heartbeat("edge-1", at.Add(d))
		}
	}

	now := t0
	for i := 0; i < 3; i++ {
		deliver(now)
		now = now.Add(time.Second)
	}
	if st, err := mon.State("edge-1", now); err != nil || st != runenv.NodeLive {
		t.Fatalf("before partition: %v %v, want live", st, err)
	}

	link.Partition()
	for i := 0; i < 5; i++ {
		deliver(now) // dropped on the floor
		now = now.Add(time.Second)
	}
	if st, err := mon.State("edge-1", now); err != nil || st != runenv.NodeSuspect {
		t.Fatalf("during partition: %v %v, want suspect", st, err)
	}

	link.Heal()
	deliver(now)
	if st, err := mon.State("edge-1", now.Add(100*time.Millisecond)); err != nil || st != runenv.NodeLive {
		t.Fatalf("after heal: %v %v, want live", st, err)
	}
}

func TestTransferRetryBackoffGrows(t *testing.T) {
	f := FlakyLink{Link: Link{Name: "b", BandwidthBPS: 1e9, RTT: 0}, FailureRate: 0.99, Rand: rand.New(rand.NewSource(5))}
	e2, _, err2 := f.TransferRetry(10, 2, 10*time.Millisecond)
	e4, _, err4 := f.TransferRetry(10, 4, 10*time.Millisecond)
	if err2 == nil || err4 == nil {
		t.Skip("improbable success at rate 0.99")
	}
	// 2 attempts: 10ms backoff; 4 attempts: 10+20+40 = 70ms.
	if e4 <= e2 {
		t.Errorf("backoff did not grow: %v vs %v", e2, e4)
	}
}
