// Package netsim models the network links between cloud, edges, and IoT
// devices. The dataflow economics of the paper's Figure 3 (upload raw data
// vs download a model vs keep everything local) reduce to bytes moved over
// links of given bandwidth and round-trip time, which is exactly what this
// package computes.
//
// Substitution note (DESIGN.md §2): the paper assumes real WAN/LAN paths;
// this simulator uses a fluid-flow model — transfer time = RTT + bytes /
// bandwidth (+ optional jitter) — which preserves the relative cost of the
// three dataflows.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrBadLink is returned for non-positive link parameters.
var ErrBadLink = errors.New("netsim: bad link parameters")

// Transferer moves bytes over a modelled path. Link and FlakyLink both
// implement it, so collaboration code can be tested against failing
// links without knowing the concrete type.
type Transferer interface {
	// Transfer returns the modelled time to move n bytes, or an error if
	// the path failed.
	Transfer(n int64) (time.Duration, error)
}

// Interface conformance (compile-time).
var (
	_ Transferer = Link{}
	_ Transferer = FlakyLink{}
)

// Link is a unidirectional network path.
type Link struct {
	Name string
	// BandwidthBPS is sustained throughput in bytes per second.
	BandwidthBPS float64
	// RTT is the round-trip time charged once per transfer.
	RTT time.Duration
	// JitterFrac, if nonzero, widens transfer time by a uniform factor in
	// [1-j, 1+j] drawn from the *rand.Rand passed to TransferJitter.
	JitterFrac float64
}

// Validate checks link parameters.
func (l Link) Validate() error {
	if l.BandwidthBPS <= 0 {
		return fmt.Errorf("%w: bandwidth %v", ErrBadLink, l.BandwidthBPS)
	}
	if l.RTT < 0 {
		return fmt.Errorf("%w: rtt %v", ErrBadLink, l.RTT)
	}
	if l.JitterFrac < 0 || l.JitterFrac >= 1 {
		return fmt.Errorf("%w: jitter %v", ErrBadLink, l.JitterFrac)
	}
	return nil
}

// Transfer returns the modelled time to move n bytes across the link.
func (l Link) Transfer(n int64) (time.Duration, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: negative payload %d", ErrBadLink, n)
	}
	secs := float64(n) / l.BandwidthBPS
	return l.RTT + time.Duration(secs*float64(time.Second)), nil
}

// TransferJitter is Transfer with jitter drawn from rng.
func (l Link) TransferJitter(n int64, rng *rand.Rand) (time.Duration, error) {
	base, err := l.Transfer(n)
	if err != nil {
		return 0, err
	}
	if l.JitterFrac == 0 || rng == nil {
		return base, nil
	}
	f := 1 + (rng.Float64()*2-1)*l.JitterFrac
	return time.Duration(float64(base) * f), nil
}

// Standard links used across the experiments. Numbers follow typical 2019
// deployments: a cellular/DSL WAN uplink to the cloud, a wired or Wi-Fi
// LAN between edges, and an on-device loopback.
var (
	// WAN is the edge↔cloud path (≈20 Mbit/s up, 50 ms RTT).
	WAN = Link{Name: "wan", BandwidthBPS: 2.5e6, RTT: 50 * time.Millisecond}
	// LAN is the edge↔edge path (≈200 Mbit/s, 2 ms RTT).
	LAN = Link{Name: "lan", BandwidthBPS: 25e6, RTT: 2 * time.Millisecond}
	// Loopback is on-device (effectively free but not zero).
	Loopback = Link{Name: "loopback", BandwidthBPS: 2e9, RTT: 50 * time.Microsecond}
)

// Path is a chain of links traversed in sequence (e.g. IoT→edge→cloud).
type Path []Link

// Transfer sums the per-link transfer times for n bytes.
func (p Path) Transfer(n int64) (time.Duration, error) {
	var total time.Duration
	for i, l := range p {
		d, err := l.Transfer(n)
		if err != nil {
			return 0, fmt.Errorf("hop %d (%s): %w", i, l.Name, err)
		}
		total += d
	}
	return total, nil
}

// Meter counts bytes moved per link name; the E1/E3 experiments use it to
// report bandwidth consumption of each dataflow.
type Meter struct {
	bytes map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{bytes: map[string]int64{}} }

// Record adds n bytes against the link's name and returns the transfer
// time, so call sites can do `d, err := meter.Record(netsim.WAN, n)`.
func (m *Meter) Record(l Link, n int64) (time.Duration, error) {
	d, err := l.Transfer(n)
	if err != nil {
		return 0, err
	}
	m.bytes[l.Name] += n
	return d, nil
}

// Bytes returns the byte count recorded against a link name.
func (m *Meter) Bytes(name string) int64 { return m.bytes[name] }

// Total returns all bytes recorded.
func (m *Meter) Total() int64 {
	var t int64
	for _, v := range m.bytes {
		t += v
	}
	return t
}
