package gateway_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/gateway"
)

// brokenNode heartbeats fine but answers 500 to everything else until
// healed — the exact failure mode the breaker exists for, since the
// health probe loop never sees it.
type brokenNode struct {
	real   http.Handler
	broken atomic.Bool
	hits   atomic.Int64 // non-probe requests only
}

func (b *brokenNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/ei_status" || r.URL.Path == "/ei_metrics" {
		b.real.ServeHTTP(w, r)
		return
	}
	b.hits.Add(1)
	if b.broken.Load() {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	b.real.ServeHTTP(w, r)
}

func gwMetrics(t *testing.T, front string) gateway.Metrics {
	t.Helper()
	resp, err := http.Get(front + "/gw_metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Result gateway.Metrics `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env.Result
}

// TestBreakerTripsAndRecovers drives a two-node fleet where one node
// fails every request: the breaker must trip after the threshold,
// traffic must stop landing on the broken node while open, and a healed
// node must be readmitted through a half-open probe.
func TestBreakerTripsAndRecovers(t *testing.T) {
	good := realNode(t, "edge-good")
	bad := &brokenNode{real: realNode(t, "edge-bad").Config.Handler}
	bad.broken.Store(true)
	badSrv := httptest.NewServer(bad)
	defer badSrv.Close()

	gw, err := gateway.New(gateway.Config{
		Nodes:            []string{good.URL, badSrv.URL},
		HealthInterval:   20 * time.Millisecond,
		Retries:          2,
		BreakerThreshold: 3,
		BreakerCooldown:  80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	front := httptest.NewServer(gw)
	defer front.Close()

	infer := func() int {
		resp, err := http.Get(front.URL + "/ei_algorithms/serving/infer?model=ident&input=1,0,0,0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Failover hides the bad node from clients; hammer until its breaker
	// has tripped.
	deadline := time.Now().Add(5 * time.Second)
	tripped := func() bool {
		for _, n := range gwMetrics(t, front.URL).Nodes {
			if n.URL == badSrv.URL && n.Breaker == "open" {
				return true
			}
		}
		return false
	}
	for !tripped() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened against an always-500 node")
		}
		if got := infer(); got != http.StatusOK {
			t.Fatalf("infer = %d with a healthy peer available", got)
		}
	}
	// While open, requests must not land on the broken node.
	before := bad.hits.Load()
	for i := 0; i < 20; i++ {
		if got := infer(); got != http.StatusOK {
			t.Fatalf("infer = %d while breaker open", got)
		}
	}
	// The health probe loop may still touch the node; the request path
	// (20 infers × up to 3 attempts) must not.
	if after := bad.hits.Load(); after-before > 10 {
		t.Errorf("broken node saw %d hits while its breaker was open", after-before)
	}

	// Heal, wait out the cooldown, and check the half-open probe readmits.
	bad.broken.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		infer()
		var st string
		for _, n := range gwMetrics(t, front.URL).Nodes {
			if n.URL == badSrv.URL {
				st = n.Breaker
			}
		}
		if st == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %q after the node healed", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineStopsRetries points the gateway at a fleet where every
// node just sleeps past the caller's budget: the answer must be a prompt
// 408 shortly after the deadline, not a late 502 after the full retry
// ladder, and gw_metrics must count it as deadline_stopped.
func TestDeadlineStopsRetries(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		http.Error(w, "eventually failing anyway", http.StatusInternalServerError)
	}))
	defer slow.Close()
	gw, err := gateway.New(gateway.Config{
		Nodes:          []string{slow.URL},
		HealthInterval: 20 * time.Millisecond,
		Retries:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	front := httptest.NewServer(gw)
	defer front.Close()

	start := time.Now()
	resp, err := http.Get(front.URL + "/ei_algorithms/serving/infer?model=ident&input=1,0,0,0&deadline_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
	// One 300 ms attempt straddles the 100 ms deadline; eight retries
	// would take ~2.4 s. Prompt means well under two attempt durations.
	if elapsed > 500*time.Millisecond {
		t.Errorf("deadline answer took %v; retries were not cut short", elapsed)
	}
	if m := gwMetrics(t, front.URL); m.DeadlineStopped == 0 {
		t.Error("deadline_stopped counter not incremented")
	}
}

// TestDeadlineRewrittenPerAttempt checks a forwarded retry carries the
// remaining budget, not the original: a first node that burns time and
// fails must leave the second node a visibly smaller deadline_ms.
func TestDeadlineRewrittenPerAttempt(t *testing.T) {
	// The gateway can answer the client while a timed-out attempt is
	// still in flight, so the handler's bookkeeping needs its own lock.
	var mu sync.Mutex
	var budgets []float64
	mkNode := func(fail bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/ei_status" || r.URL.Path == "/ei_metrics" {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(`{"ok":true,"result":{}}`))
				return
			}
			if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
				ms, _ := strconv.ParseFloat(raw, 64)
				mu.Lock()
				budgets = append(budgets, ms)
				mu.Unlock()
			}
			if fail {
				time.Sleep(120 * time.Millisecond)
				http.Error(w, "burned the budget", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"ok":true,"result":{"model":"ident","class":0}}`))
		}))
	}
	// Single node that fails once then succeeds would race; instead use
	// one always-fail node and rely on the fresh-pass retry hitting it
	// again — every attempt logs its handed-down budget.
	n := mkNode(true)
	defer n.Close()
	gw, err := gateway.New(gateway.Config{
		Nodes:          []string{n.URL},
		HealthInterval: 20 * time.Millisecond,
		Retries:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	front := httptest.NewServer(gw)
	defer front.Close()

	q := url.Values{}
	q.Set("model", "ident")
	q.Set("input", "1,0,0,0")
	q.Set("deadline_ms", "400")
	resp, err := http.Get(front.URL + "/ei_algorithms/serving/infer?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	got := append([]float64(nil), budgets...)
	mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("want ≥2 attempts carrying deadline_ms, got %v", got)
	}
	if got[0] > 400 {
		t.Errorf("first attempt budget %v exceeds the original 400ms", got[0])
	}
	// Each failed attempt burns ~120ms; the next hop's budget must shrink.
	if got[1] >= got[0]-50 {
		t.Errorf("retry budget %vms not rewritten down from %vms", got[1], got[0])
	}
}
