package gateway

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// cachedResponse is one stored upstream answer.
type cachedResponse struct {
	status      int
	contentType string
	body        []byte
}

// cacheEntry is a cachedResponse plus its bookkeeping.
type cacheEntry struct {
	key string
	res cachedResponse
	at  time.Time
}

// responseCache is a TTL'd LRU over verbatim request URIs. Inference over
// a byte-identical payload is a pure function, so serving it from memory
// is exact — only the per-request metadata (batch size, queue time) is
// replayed from the original answer, which the TTL keeps fresh enough.
type responseCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newResponseCache(capacity int, ttl time.Duration) *responseCache {
	return &responseCache{
		cap:   capacity,
		ttl:   ttl,
		ll:    list.New(),
		byKey: map[string]*list.Element{},
	}
}

// get returns the live entry for key, counting hit/miss and refreshing
// recency.
func (c *responseCache) get(key string) (cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return cachedResponse{}, false
	}
	ent := el.Value.(*cacheEntry)
	if time.Since(ent.at) > c.ttl {
		c.ll.Remove(el)
		delete(c.byKey, key)
		c.misses.Add(1)
		return cachedResponse{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return ent.res, true
}

// put stores (or refreshes) key, reclaiming expired entries before
// evicting live least-recently-used ones beyond capacity.
func (c *responseCache) put(key string, res cachedResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.res = res
		ent.at = time.Now()
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res, at: time.Now()})
	c.byKey[key] = el
	if c.ll.Len() > c.cap {
		c.pruneExpiredLocked()
	}
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
	}
}

// pruneExpiredLocked drops every TTL-expired entry so dead entries never
// hold capacity against live ones. Caller holds mu.
func (c *responseCache) pruneExpiredLocked() {
	now := time.Now()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if now.Sub(ent.at) > c.ttl {
			c.ll.Remove(el)
			delete(c.byKey, ent.key)
		}
		el = next
	}
}

// len returns the live (unexpired) entry count.
func (c *responseCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneExpiredLocked()
	return c.ll.Len()
}
