package gateway_test

import (
	"net/http"
	"testing"
	"time"

	"openei/internal/gateway"
)

// TestRoutingPrefersTopTierNode: with one node degraded to a lower
// autopilot tier, the p2c pick must send all traffic to the node still on
// the high-accuracy tier, regardless of small load differences.
func TestRoutingPrefersTopTierNode(t *testing.T) {
	degraded := newStub(t, "degraded", okInfer)
	top := newStub(t, "top", okInfer)
	degraded.setAutopilot("detector-int8", 1, false)
	top.setAutopilot("detector", 0, false)
	// Give the top-tier node slightly more load: tier must outrank load.
	top.queueDepth.Store(3)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, degraded, top)
	gw.CheckHealth()

	for i := 0; i < 30; i++ {
		if status, body := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("status %d body %s", status, body)
		}
	}
	if n := degraded.inferCalls.Load(); n != 0 {
		t.Errorf("degraded node took %d requests, want 0", n)
	}
	if n := top.inferCalls.Load(); n != 30 {
		t.Errorf("top-tier node took %d requests, want 30", n)
	}
}

// TestOffloadingCountsAsExtraRank: a node on its last tier that is also
// offloading ranks below a node on the same tier that is not.
func TestOffloadingCountsAsExtraRank(t *testing.T) {
	shedding := newStub(t, "shedding", okInfer)
	holding := newStub(t, "holding", okInfer)
	shedding.setAutopilot("detector-int8", 1, true) // rank 2
	holding.setAutopilot("detector-int8", 1, false) // rank 1
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, shedding, holding)
	gw.CheckHealth()

	for i := 0; i < 20; i++ {
		if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	if n := shedding.inferCalls.Load(); n != 0 {
		t.Errorf("offloading node took %d requests, want 0", n)
	}

	// Tier state is surfaced per node in /gw_metrics.
	m := gw.Metrics()
	ranks := map[string]int64{}
	tiers := map[string]string{}
	for _, nm := range m.Nodes {
		ranks[nm.NodeID] = nm.TierRank
		tiers[nm.NodeID] = nm.Tier
	}
	if ranks["shedding"] != 2 || ranks["holding"] != 1 {
		t.Errorf("tier ranks = %v, want shedding=2 holding=1", ranks)
	}
	if tiers["holding"] != "detector-int8" {
		t.Errorf("tier = %q, want detector-int8", tiers["holding"])
	}
}

// TestTierPreferenceIsBounded: the tier preference is a load penalty, not
// absolute — a top-tier node far busier than a degraded peer must not
// keep absorbing all new traffic (that would push the last good node into
// its own downgrade).
func TestTierPreferenceIsBounded(t *testing.T) {
	degraded := newStub(t, "degraded", okInfer)
	top := newStub(t, "top", okInfer)
	degraded.setAutopilot("detector-int8", 1, false)
	top.setAutopilot("detector", 0, false)
	top.queueDepth.Store(100) // way past the per-rank penalty
	_, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, degraded, top)

	for i := 0; i < 30; i++ {
		if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	if n := top.inferCalls.Load(); n != 0 {
		t.Errorf("saturated top-tier node took %d requests, want 0", n)
	}
	if n := degraded.inferCalls.Load(); n != 30 {
		t.Errorf("degraded idle node took %d requests, want 30", n)
	}
}

// TestNoAutopilotMeansTopRank: nodes without an autopilot compete on load
// alone at rank 0.
func TestNoAutopilotMeansTopRank(t *testing.T) {
	plain := newStub(t, "plain", okInfer)
	degraded := newStub(t, "degraded", okInfer)
	degraded.setAutopilot("detector-mini", 2, false)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, plain, degraded)
	gw.CheckHealth()

	for i := 0; i < 20; i++ {
		if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	if n := plain.inferCalls.Load(); n != 20 {
		t.Errorf("plain node took %d requests, want all 20", n)
	}
}
