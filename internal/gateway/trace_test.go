package gateway_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"openei/internal/gateway"
	"openei/internal/libei"
	"openei/internal/obs"
)

// traceStub extends the routing stub with the node half of tracing: it
// captures the X-Openei-Trace header off infer requests and serves a
// one-span /ei_trace document for that trace, like a real node would.
type traceStub struct {
	*stubNode
	mu        sync.Mutex
	lastTrace string
}

func newTraceStub(t *testing.T, id string, infer http.HandlerFunc) *traceStub {
	t.Helper()
	ts := &traceStub{}
	ts.stubNode = newStub(t, id, func(w http.ResponseWriter, r *http.Request) {
		ts.mu.Lock()
		ts.lastTrace = r.Header.Get(obs.TraceHeader)
		ts.mu.Unlock()
		infer(w, r)
	})
	// Wrap the stub's mux to add /ei_trace.
	inner := ts.stubNode.ts.Config.Handler
	ts.stubNode.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/ei_trace" {
			inner.ServeHTTP(w, r)
			return
		}
		ts.mu.Lock()
		last := ts.lastTrace
		ts.mu.Unlock()
		tid := r.URL.Query().Get("id")
		if last == "" || !strings.HasPrefix(last, tid) {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"ok":false,"error":"trace not stored"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"result":{"trace_id":%q,"spans":[`+
			`{"trace_id":%q,"span_id":"00000000000000aa","stage":"infer","source":%q,"start_unix_ns":1,"duration_ms":0.5}]}}`,
			tid, tid, id)
	})
	return ts
}

// fetchTrace polls /gw_trace?id= until the trace commits (a hedge loser
// holds the buffer open briefly after the response).
func fetchTrace(t *testing.T, front, id string) libei.TraceDoc {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, body := get(t, front+"/gw_trace?id="+id)
		if status == http.StatusOK {
			var env struct {
				OK     bool           `json:"ok"`
				Result libei.TraceDoc `json:"result"`
			}
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("decode trace: %v\n%s", err, body)
			}
			return env.Result
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never stored: status %d, %s", id, status, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func attemptSpans(doc libei.TraceDoc) []obs.WireSpan {
	var out []obs.WireSpan
	for _, sp := range doc.Spans {
		if sp.Stage == obs.StageAttempt {
			out = append(out, sp)
		}
	}
	return out
}

// TestRetrySpansDistinctChildren: a 500-answering node forces a retry;
// the stored trace shows both attempts as distinct children of the
// gateway root, statuses visible, the successful one marked winner.
func TestRetrySpansDistinctChildren(t *testing.T) {
	bad := newStub(t, "bad", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"ok":false,"error":"boom"}`)
	})
	good := newStub(t, "good", okInfer)
	// Load-bias the p2c pick so the failing node is always tried first.
	good.queueDepth.Store(100)
	_, front := startGateway(t, gateway.Config{
		TraceSampleRate: 1,
		Retries:         1,
		HealthInterval:  time.Hour, // freeze the initial health view
	}, bad, good)

	resp, err := http.Get(front.URL + inferURI)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("no X-Openei-Trace response header")
	}

	doc := fetchTrace(t, front.URL, id)
	var root string
	for _, sp := range doc.Spans {
		if sp.Stage == obs.StageGateway {
			root = sp.SpanID
		}
	}
	if root == "" {
		t.Fatalf("no gateway root span: %+v", doc.Spans)
	}
	atts := attemptSpans(doc)
	if len(atts) != 2 {
		t.Fatalf("got %d attempt spans, want 2: %+v", len(atts), atts)
	}
	if atts[0].SpanID == atts[1].SpanID {
		t.Fatalf("attempts share span ID %s", atts[0].SpanID)
	}
	var failed, winner int
	for _, sp := range atts {
		if sp.ParentID != root {
			t.Fatalf("attempt parented to %s, want gateway root %s", sp.ParentID, root)
		}
		if sp.Attrs["route_tier"] != "fleet" {
			t.Fatalf("attempt route_tier = %v", sp.Attrs["route_tier"])
		}
		switch st := sp.Attrs["status"].(type) {
		case float64:
			if st == 500 {
				failed++
			}
			if st == 200 {
				if sp.Attrs["winner"] != "1" {
					t.Fatalf("200 attempt not marked winner: %v", sp.Attrs)
				}
				winner++
			}
		default:
			t.Fatalf("attempt status attr = %v (%T)", sp.Attrs["status"], sp.Attrs["status"])
		}
	}
	if failed != 1 || winner != 1 {
		t.Fatalf("failed=%d winner=%d, want 1/1: %+v", failed, winner, atts)
	}
}

// TestHedgeSpansWinnerMarked: a stalled first node triggers the hedge;
// both attempts appear, only the fast one is the winner.
func TestHedgeSpansWinnerMarked(t *testing.T) {
	slow := newStub(t, "slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		okInfer(w, r)
	})
	fast := newStub(t, "fast", okInfer)
	fast.queueDepth.Store(100) // bias the first pick onto the stalled node
	gw, front := startGateway(t, gateway.Config{
		TraceSampleRate: 1,
		Hedge:           30 * time.Millisecond,
		HealthInterval:  time.Hour,
	}, slow, fast)

	resp, err := http.Get(front.URL + inferURI)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := gw.Metrics().Hedged; got != 1 {
		t.Fatalf("hedged = %d, want 1", got)
	}
	doc := fetchTrace(t, front.URL, resp.Header.Get(obs.TraceHeader))
	atts := attemptSpans(doc)
	if len(atts) != 2 {
		t.Fatalf("got %d attempt spans, want 2: %+v", len(atts), atts)
	}
	winners := 0
	for _, sp := range atts {
		if sp.Attrs["winner"] == "1" {
			winners++
			if sp.Attrs["status"] != float64(200) {
				t.Fatalf("winner status = %v", sp.Attrs["status"])
			}
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1: %+v", winners, atts)
	}
}

// TestKilledNodeFailoverStitchedTrace: the first node dies mid-fleet; the
// stitched /gw_trace shows the dead-node attempt (transport error,
// status -1) plus the surviving node's own span fetched over /ei_trace.
func TestKilledNodeFailoverStitchedTrace(t *testing.T) {
	dying := newTraceStub(t, "dying", okInfer)
	survivor := newTraceStub(t, "survivor", okInfer)
	survivor.queueDepth.Store(100) // first pick lands on the node about to die
	_, front := startGateway(t, gateway.Config{
		TraceSampleRate: 1,
		Retries:         1,
		HealthInterval:  time.Hour,
	}, dying.stubNode, survivor.stubNode)

	dying.stubNode.ts.CloseClientConnections()
	dying.stubNode.ts.Close()

	resp, err := http.Get(front.URL + inferURI)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after failover", resp.StatusCode)
	}
	doc := fetchTrace(t, front.URL, resp.Header.Get(obs.TraceHeader))
	atts := attemptSpans(doc)
	if len(atts) != 2 {
		t.Fatalf("got %d attempt spans, want 2: %+v", len(atts), atts)
	}
	var sawDead bool
	for _, sp := range atts {
		if sp.Attrs["status"] == float64(-1) {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatalf("failed attempt not visible: %+v", atts)
	}
	// Stitching pulled the survivor's node-side span into the document.
	var stitched bool
	for _, sp := range doc.Spans {
		if sp.Source == "survivor" && sp.Stage == obs.StageInfer {
			stitched = true
		}
	}
	if !stitched {
		t.Fatalf("no node-side span stitched in: %+v", doc.Spans)
	}
}

// TestGatewayPromEndpoint: /metrics renders the /gw_metrics snapshot as
// parseable Prometheus exposition.
func TestGatewayPromEndpoint(t *testing.T) {
	a := newStub(t, "a", okInfer)
	_, front := startGateway(t, gateway.Config{}, a)
	if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
		t.Fatalf("infer status %d", status)
	}
	status, body := get(t, front.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	obs.CheckPromFormat(t, body)
	for _, want := range []string{
		"openei_gateway_routed 1",
		"openei_gateway_healthy_nodes 1",
		"openei_gateway_trace_started",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
