package gateway_test

// Cluster-mode gateway tests: the gateway discovers the fleet through
// gossip instead of a static node list, routes serving/infer by the
// consistent-hash shard map, survives node death and node join under
// concurrent client load, and grows a hot model's owner set through the
// replication autoscaler.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/cluster"
	"openei/internal/gateway"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
	"openei/internal/zoo"
)

const (
	clusterImgSize = 16
	clusterClasses = 6
)

// clusterInput is a valid serving/infer input for any zoo model built at
// clusterImgSize: one 1×16×16 image flattened to CSV.
var clusterInput = func() string {
	vals := make([]string, clusterImgSize*clusterImgSize)
	for i := range vals {
		vals[i] = "0"
	}
	vals[3] = "1"
	return strings.Join(vals, ",")
}()

func inferFor(model string) string {
	return "/ei_algorithms/serving/infer?model=" + model + "&input=" + clusterInput
}

// zooProvider builds catalog models the way openei-server's cluster
// provider does; the per-name seed keeps every node's copy identical.
func zooProvider(name string) (*nn.Model, error) {
	rng := rand.New(rand.NewSource(int64(len(name)) + 77))
	return zoo.Build(name, clusterImgSize, clusterClasses, rng)
}

var clusterIncarnation atomic.Int64

// sinceStart timestamps test-log lines in milliseconds so the agent and
// client timelines can be correlated.
var testStart = time.Now()

func sinceStart() float64 {
	return float64(time.Since(testStart).Microseconds()) / 1000
}

// clusterNode is a full openei-server stand-in: package manager, serving
// engine, libei server, and the cluster agent gossiping in real time.
type clusterNode struct {
	id    string
	url   string
	ts    *httptest.Server
	agent *cluster.Agent
}

func startClusterNode(t *testing.T, id string, interval time.Duration, catalog []string, seeds ...string) *clusterNode {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	engine := serving.NewEngine(mgr, serving.Config{MaxBatch: 8, Replicas: 1, QueueDepth: 256})
	t.Cleanup(engine.Close)
	srv := libei.NewServer(id, nil, mgr)
	srv.SetEngine(engine)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	agent, err := cluster.NewAgent(mgr, engine, srv, cluster.AgentConfig{
		Self:     ts.URL,
		Seeds:    seeds,
		Catalog:  catalog,
		Provider: zooProvider,
		// Agent decisions land in the test log (shown on failure or -v):
		// the load/evict/suspect timeline is the first thing churn
		// debugging needs.
		Logf: func(format string, args ...any) {
			t.Logf("%8.0fms [%s] "+format,
				append([]any{sinceStart(), id}, args...)...)
		},
		Membership: cluster.MembershipConfig{
			Interval: interval,
			// The tests tick far faster than production; a generous
			// suspicion window keeps a loaded host from false-suspecting
			// live peers while still detecting real deaths within ~1s.
			SuspectAfter: 8 * interval,
			Incarnation:  clusterIncarnation.Add(1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	t.Cleanup(agent.Halt)
	return &clusterNode{id: id, url: ts.URL, ts: ts, agent: agent}
}

// crash makes the node go silent without a goodbye: the gossip loop stops
// and the listener dies. The rest of the fleet must notice through the
// failure detector, not a leave announcement.
func (n *clusterNode) crash() {
	n.agent.Halt()
	n.ts.Close()
}

// startClusterFleet boots n nodes, the first acting as everyone's seed.
func startClusterFleet(t *testing.T, n int, interval time.Duration, catalog []string) []*clusterNode {
	t.Helper()
	seed := startClusterNode(t, "edge-0", interval, catalog)
	nodes := []*clusterNode{seed}
	for i := 1; i < n; i++ {
		nodes = append(nodes, startClusterNode(t, fmt.Sprintf("edge-%d", i), interval, catalog, seed.url))
	}
	return nodes
}

// waitMetrics polls the gateway until ok accepts a snapshot or the
// deadline passes.
func waitMetrics(t *testing.T, gw *gateway.Gateway, timeout time.Duration, desc string, ok func(m gateway.Metrics) bool) gateway.Metrics {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		m := gw.Metrics()
		if ok(m) {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s\nlast cluster view: %+v", desc, m.Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// advertised maps node URL → the model set it advertised at its last
// status probe.
func advertised(m gateway.Metrics) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		set := make(map[string]bool, len(n.Models))
		for _, model := range n.Models {
			set[model] = true
		}
		out[n.URL] = set
	}
	return out
}

// shardConverged reports whether every catalog model has at least
// minOwners owners, none of them excluded, and every owner actually
// advertises the model (it finished loading the weights).
func shardConverged(m gateway.Metrics, catalog []string, minOwners int, exclude string) bool {
	if m.Cluster == nil {
		return false
	}
	adv := advertised(m)
	for _, model := range catalog {
		owners := m.Cluster.ShardMap[model]
		if len(owners) < minOwners {
			return false
		}
		for _, u := range owners {
			if u == exclude || !adv[u][model] {
				return false
			}
		}
	}
	return true
}

// withinCap reports whether no node owns more than capN models in the
// shard map. A plan computed over a still-partial member view tops up
// replication past the cap by design, so convergence checks include
// this bound to know the plan reflects the whole fleet.
func withinCap(m gateway.Metrics, capN int) bool {
	perNode := map[string]int{}
	for _, owners := range m.Cluster.ShardMap {
		for _, u := range owners {
			perNode[u]++
		}
	}
	for _, c := range perNode {
		if c > capN {
			return false
		}
	}
	return true
}

// TestClusterGatewayShardRouting: a gateway given only a gossip seed
// discovers the fleet, computes the shard map, and routes every
// serving/infer to an owner of the requested model.
func TestClusterGatewayShardRouting(t *testing.T) {
	const interval = 25 * time.Millisecond
	catalog := []string{"bonsai-m", "mlp", "protonn-m"}
	nodes := startClusterFleet(t, 4, interval, catalog)

	gw, front := startGateway(t, gateway.Config{
		ClusterSeeds:   []string{nodes[0].url},
		Catalog:        catalog,
		HealthInterval: interval,
		HealthTimeout:  8 * interval,
	})
	m := waitMetrics(t, gw, 20*time.Second, "shard convergence", func(m gateway.Metrics) bool {
		return m.HealthyNodes >= len(nodes) && shardConverged(m, catalog, 2, "")
	})

	owners := map[string]map[string]bool{}
	for model, os := range m.Cluster.ShardMap {
		owners[model] = map[string]bool{}
		for _, u := range os {
			owners[model][u] = true
		}
	}
	for _, model := range catalog {
		if len(owners[model]) != 2 {
			t.Fatalf("%s owner set = %v, want 2 distinct owners", model, m.Cluster.ShardMap[model])
		}
		for i := 0; i < 6; i++ {
			resp, err := http.Get(front.URL + inferFor(model))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s request %d: status %d body %.300s", model, i, resp.StatusCode, body)
			}
			if u := resp.Header.Get("X-Gateway-Node"); !owners[model][u] {
				t.Fatalf("%s served by non-owner %s (owners %v)", model, u, m.Cluster.ShardMap[model])
			}
		}
	}

	// The cluster section rides the public /gw_metrics wire format.
	status, body := get(t, front.URL+"/gw_metrics")
	if status != http.StatusOK || !strings.Contains(body, `"shard_map"`) || !strings.Contains(body, `"members"`) {
		t.Fatalf("/gw_metrics missing cluster section: status %d body %.400s", status, body)
	}
}

// TestClusterChurnScenario is the acceptance scenario: a 12-node fleet
// sharding the full zoo at replication 2 with no node holding more than
// half the catalog, 64 concurrent clients, one node killed and a fresh
// node joined mid-run — and zero client-visible failures end to end.
func TestClusterChurnScenario(t *testing.T) {
	const (
		interval = 30 * time.Millisecond
		nNodes   = 12
	)
	clients, phase := 64, 500*time.Millisecond
	if testing.Short() {
		clients, phase = 24, 250*time.Millisecond
	}
	catalog := zoo.Names()
	nodes := startClusterFleet(t, nNodes, interval, catalog)

	gw, front := startGateway(t, gateway.Config{
		ClusterSeeds:   []string{nodes[0].url},
		HealthInterval: interval,
		HealthTimeout:  8 * interval,
		// One attempt per fleet member (the classic-mode default), so a
		// request can sweep the whole fleet during a rebalance.
		Retries: nNodes + 2,
	})
	// Converged means: every model has 2 loaded owners AND the bounded-load
	// cap holds — a plan computed over a still-partial member view tops up
	// replication past the cap, so the cap holding is part of the plan
	// reflecting the full 12-node fleet.
	capN := cluster.NodeCap(0.5, len(catalog))
	m := waitMetrics(t, gw, 30*time.Second, "initial shard convergence", func(m gateway.Metrics) bool {
		return m.HealthyNodes >= nNodes && shardConverged(m, catalog, 2, "") && withinCap(m, capN)
	})

	// Bounded load: no node holds more than MaxZooFraction of the zoo.
	perNode := map[string]int{}
	for _, os := range m.Cluster.ShardMap {
		for _, u := range os {
			perNode[u]++
		}
	}
	for u, c := range perNode {
		if c > capN {
			t.Errorf("%s holds %d of %d zoo models, above the %d cap", u, c, len(catalog), capN)
		}
	}

	var (
		stop            atomic.Bool
		wg              sync.WaitGroup
		total, failures atomic.Int64
		failMu          sync.Mutex
		firstFail       string
	)
	recordFail := func(msg string) {
		failures.Add(1)
		failMu.Lock()
		if firstFail == "" {
			firstFail = msg
		}
		failMu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 15 * time.Second}
			for i := 0; !stop.Load(); i++ {
				model := catalog[(c+i)%len(catalog)]
				resp, err := cl.Get(front.URL + inferFor(model))
				total.Add(1)
				if err != nil {
					recordFail(fmt.Sprintf("%s: %v", model, err))
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					recordFail(fmt.Sprintf("%8.0fms %s: status %d: %.300s", sinceStart(), model, resp.StatusCode, body))
				}
			}
		}(c)
	}

	// Phase 1: steady state, then kill a non-seed node that owns shards.
	time.Sleep(phase)
	var victim *clusterNode
	for _, n := range nodes[1:] {
		if perNode[n.url] > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no non-seed node owns any shard; placement is broken")
	}
	victim.crash()

	// Phase 2: a brand-new node joins the churning fleet.
	time.Sleep(phase)
	joiner := startClusterNode(t, "edge-join", interval, catalog, nodes[0].url)

	// The fleet must re-converge with the victim gone from every owner
	// set, replication restored, and the joiner an alive member.
	waitMetrics(t, gw, 30*time.Second, "post-churn convergence", func(mm gateway.Metrics) bool {
		if !shardConverged(mm, catalog, 2, victim.url) {
			return false
		}
		for _, mem := range mm.Cluster.Members {
			if mem.URL == joiner.url && mem.State == cluster.StateAlive {
				return true
			}
		}
		return false
	})

	// Let clients run against the post-churn fleet before stopping.
	time.Sleep(phase / 2)
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across node kill + join; first: %s",
			failures.Load(), total.Load(), firstFail)
	}
	if total.Load() < int64(clients)*4 {
		t.Fatalf("suspiciously few requests completed: %d", total.Load())
	}
	gm := gw.Metrics()
	if gm.Cluster == nil || len(gm.Cluster.ShardMap) != len(catalog) {
		t.Fatalf("shard map incomplete after churn: %+v", gm.Cluster)
	}
	t.Logf("churn: %d requests, 0 failures, %d gateway retries", total.Load(), gm.Retried)
}

// TestClusterAutoscalerGrowsHotModel: skewed load on one model drives the
// gateway's owner-set controller to raise its replication, push the
// override into the mesh, and land a third advertising owner — while an
// idle model's owner set stays at the base replication.
func TestClusterAutoscalerGrowsHotModel(t *testing.T) {
	const interval = 25 * time.Millisecond
	catalog := []string{"bonsai-m", "mlp", "protonn-m"}
	nodes := startClusterFleet(t, 4, interval, catalog)

	gw, front := startGateway(t, gateway.Config{
		ClusterSeeds:   []string{nodes[0].url},
		Catalog:        catalog,
		HealthInterval: interval,
		HealthTimeout:  8 * interval,
		Autoscale: cluster.AutoscaleConfig{
			Min:       2,
			Max:       3,
			GrowQueue: 4,
			GrowP95:   100 * time.Microsecond,
			GrowAfter: 2,
		},
	})
	waitMetrics(t, gw, 20*time.Second, "shard convergence", func(m gateway.Metrics) bool {
		return m.HealthyNodes >= len(nodes) && shardConverged(m, catalog, 2, "")
	})

	// Skewed load: every client hammers the same model.
	const hot = "mlp"
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &http.Client{Timeout: 15 * time.Second}
			for !stop.Load() {
				resp, err := cl.Get(front.URL + inferFor(hot))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	m := waitMetrics(t, gw, 20*time.Second, "hot owner-set growth", func(m gateway.Metrics) bool {
		if m.Cluster == nil || m.Cluster.ScaleEvents == 0 {
			return false
		}
		owners := m.Cluster.ShardMap[hot]
		if len(owners) < 3 {
			return false
		}
		adv := advertised(m)
		for _, u := range owners {
			if !adv[u][hot] {
				return false
			}
		}
		return true
	})
	stop.Store(true)
	wg.Wait()

	if rep := m.Cluster.Replication[hot]; rep.N < 3 {
		t.Fatalf("replication override for %s = %+v, want N ≥ 3", hot, rep)
	}
	// The idle models' owner sets stay at base replication.
	for _, cold := range []string{"bonsai-m", "protonn-m"} {
		if got := len(m.Cluster.ShardMap[cold]); got != 2 {
			t.Errorf("idle model %s owner set = %v, want the base 2", cold, m.Cluster.ShardMap[cold])
		}
	}
}
