package gateway

import (
	"sort"
	"time"

	"openei/internal/cluster"
	"openei/internal/obs"
)

// NodeMetrics is one fleet member's view in /gw_metrics.
type NodeMetrics struct {
	URL     string `json:"url"`
	NodeID  string `json:"node_id,omitempty"`
	Healthy bool   `json:"healthy"`

	// Inflight is the gateway's outstanding requests to the node;
	// QueueDepth/QueueCap are the node's last-polled serving queue fill.
	Inflight   int64 `json:"inflight"`
	QueueDepth int64 `json:"queue_depth"`
	QueueCap   int64 `json:"queue_cap"`

	// Tier is the node's active autopilot tier model from the last
	// metrics poll (empty when the node runs no autopilot); TierRank is
	// its degradation level (0 = top tier, +1 per downgrade, +1 while
	// offloading) — the signal routing uses to prefer high-accuracy nodes.
	Tier     string `json:"tier,omitempty"`
	TierRank int64  `json:"tier_rank"`

	// Routed counts responses delivered from this node; Fails counts
	// transport failures plus 5xx answers.
	Routed uint64 `json:"routed"`
	Fails  uint64 `json:"fails"`

	// Breaker is the node's circuit-breaker state ("closed", "open",
	// "half_open"; empty when the breaker is disabled); BreakerTrips
	// counts closed→open transitions.
	Breaker      string `json:"breaker,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`

	// Transport-level client counters (every probe and proxied request).
	Requests        uint64  `json:"requests"`
	TransportErrors uint64  `json:"transport_errors"`
	AvgLatencyMS    float64 `json:"avg_latency_ms"`

	// LastHeartbeatMSAgo is the age of the last successful status probe;
	// -1 when the node has never answered.
	LastHeartbeatMSAgo float64 `json:"last_heartbeat_ms_ago"`

	// Models is the node's advertised loaded-model set from its last
	// status probe (cluster mode's placement evidence).
	Models []string `json:"models,omitempty"`
}

// ClusterMetrics is the cluster-mode section of /gw_metrics: the gossip
// member view, the shard map routing follows, and the autoscaler's
// per-model owner-set targets.
type ClusterMetrics struct {
	Members []cluster.Member `json:"members"`
	// ShardMap is model → owner URLs, the plan serving/infer routes by.
	ShardMap map[string][]string `json:"shard_map"`
	// Replication is the versioned per-model owner-set overrides.
	Replication map[string]cluster.Replica `json:"replication,omitempty"`
	// ScaleEvents counts owner-set changes this gateway has issued.
	ScaleEvents uint64 `json:"scale_events"`
}

// Metrics is the wire form of GET /gw_metrics.
type Metrics struct {
	Nodes        []NodeMetrics `json:"nodes"`
	HealthyNodes int           `json:"healthy_nodes"`

	Inflight    int64 `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`

	Routed  uint64 `json:"routed"`
	Retried uint64 `json:"retried"`
	Shed    uint64 `json:"shed"`
	Failed  uint64 `json:"failed"`
	Hedged  uint64 `json:"hedged"`

	UpstreamOverloaded uint64 `json:"upstream_overloaded"`
	UpstreamDeadline   uint64 `json:"upstream_deadline"`
	// DeadlineStopped counts requests the gateway itself answered 408:
	// the carried deadline lapsed before any node produced an answer, so
	// retries and hedges were cut short.
	DeadlineStopped uint64 `json:"deadline_stopped"`

	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`

	// Cluster is present only in cluster mode.
	Cluster *ClusterMetrics `json:"cluster,omitempty"`

	// Trace is the gateway tracer's sampling/retention counters.
	Trace *obs.Stats `json:"trace,omitempty"`
}

// Metrics snapshots the gateway's counters and per-node health, nodes
// sorted by URL.
func (g *Gateway) Metrics() Metrics {
	m := Metrics{
		Inflight:           g.inflight.Load(),
		MaxInflight:        g.cfg.MaxInflight,
		Routed:             g.met.routed.Load(),
		Retried:            g.met.retried.Load(),
		Shed:               g.met.shed.Load(),
		Failed:             g.met.failed.Load(),
		Hedged:             g.met.hedged.Load(),
		UpstreamOverloaded: g.met.upstreamOverload.Load(),
		UpstreamDeadline:   g.met.upstreamDeadline.Load(),
		DeadlineStopped:    g.met.deadlineStopped.Load(),
	}
	if g.tracer != nil {
		st := g.tracer.Stats()
		m.Trace = &st
	}
	if g.cache != nil {
		m.CacheHits = g.cache.hits.Load()
		m.CacheMisses = g.cache.misses.Load()
		m.CacheEntries = g.cache.len()
	}
	if g.mem != nil {
		cm := &ClusterMetrics{
			Members:     g.mem.Members(),
			Replication: g.mem.Replication(),
			ScaleEvents: g.met.scaleEvents.Load(),
			ShardMap:    map[string][]string{},
		}
		g.planMu.RLock()
		for model, owners := range g.plan {
			cm.ShardMap[model] = append([]string(nil), owners...)
		}
		g.planMu.RUnlock()
		m.Cluster = cm
	}
	now := time.Now()
	for _, n := range g.nodeList() {
		cs := n.client.Stats()
		n.mu.Lock()
		id, tier, beat := n.nodeID, n.tier, n.lastBeat
		var models []string
		for name := range n.models {
			models = append(models, name)
		}
		n.mu.Unlock()
		sort.Strings(models)
		nm := NodeMetrics{
			URL:                n.url,
			NodeID:             id,
			Healthy:            n.healthy.Load(),
			Inflight:           n.inflight.Load(),
			QueueDepth:         n.queueDepth.Load(),
			QueueCap:           n.queueCap.Load(),
			Tier:               tier,
			TierRank:           n.tierRank.Load(),
			Routed:             n.routed.Load(),
			Fails:              n.fails.Load(),
			Breaker:            n.br.state(now),
			BreakerTrips:       n.br.trips.Load(),
			Requests:           cs.Requests,
			TransportErrors:    cs.TransportErrors,
			AvgLatencyMS:       cs.AvgLatencyMS,
			LastHeartbeatMSAgo: -1,
			Models:             models,
		}
		if !beat.IsZero() {
			nm.LastHeartbeatMSAgo = float64(now.Sub(beat)) / 1e6
		}
		if nm.Healthy {
			m.HealthyNodes++
		}
		m.Nodes = append(m.Nodes, nm)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].URL < m.Nodes[j].URL })
	return m
}
