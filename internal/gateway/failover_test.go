package gateway_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/gateway"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// realNode boots a full libei node — package manager, identity model,
// serving engine — exactly what openei-server runs, minus the demo
// sensors. The identity model maps a one-hot input to its hot index, so
// every response is checkable.
func realNode(t *testing.T, id string) *httptest.Server {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	ident := nn.MustModel("ident", []int{4}, []nn.LayerSpec{{Type: "flatten"}})
	if err := mgr.Load(ident, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	s := libei.NewServer(id, nil, mgr)
	e := serving.NewEngine(mgr, serving.Config{MaxBatch: 8, Replicas: 2, QueueDepth: 512})
	t.Cleanup(e.Close)
	s.SetEngine(e)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestFailoverNodeKilledUnderLoad is the acceptance scenario: a 3-node
// fleet under 64 concurrent clients, one node killed mid-run. Every
// request is an idempotent GET, so the gateway must absorb the death via
// failover — zero client-visible failures — and /gw_metrics must show the
// retry machinery firing.
func TestFailoverNodeKilledUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fleet test skipped in -short mode")
	}
	n1, n2, n3 := realNode(t, "edge-1"), realNode(t, "edge-2"), realNode(t, "edge-3")
	gw, err := gateway.New(gateway.Config{
		Nodes:          []string{n1.URL, n2.URL, n3.URL},
		HealthInterval: 25 * time.Millisecond,
		Retries:        -1, // default: one per remaining node
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	defer gw.Close()
	front := httptest.NewServer(gw)
	defer front.Close()

	const (
		clients    = 64
		perClient  = 8
		total      = clients * perClient
		killAfter  = total / 5 // pull the plug once the run is well underway
		requestURI = "/ei_algorithms/serving/infer?model=ident&input=0,0,1,0"
	)
	var (
		completed atomic.Int64
		killOnce  sync.Once
		killed    = make(chan struct{})
		wg        sync.WaitGroup
		mu        sync.Mutex
		failures  []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(front.URL + requestURI)
				if err != nil {
					fail("transport error through gateway: %v", err)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("status %d body %s", resp.StatusCode, body)
				} else if !strings.Contains(string(body), `"class":2`) {
					fail("wrong answer: %s", body)
				}
				if completed.Add(1) == killAfter {
					killOnce.Do(func() {
						// Abrupt death: sever live connections, then stop
						// accepting new ones.
						n1.CloseClientConnections()
						n1.Close()
						close(killed)
					})
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-killed:
	default:
		t.Fatal("node was never killed; load pattern broken")
	}
	if len(failures) > 0 {
		t.Fatalf("%d of %d idempotent requests failed through failover; first: %s",
			len(failures), total, failures[0])
	}
	m := gw.Metrics()
	if m.Retried == 0 {
		t.Error("retried = 0 after a node died mid-run")
	}
	if m.Failed != 0 || m.Shed != 0 {
		t.Errorf("failed = %d shed = %d, want 0 and 0", m.Failed, m.Shed)
	}
	// The failure detector must eject the dead node within its timeout.
	deadline := time.Now().Add(2 * time.Second)
	for {
		healthy := 0
		for _, n := range gw.Metrics().Nodes {
			if n.Healthy {
				healthy++
			}
		}
		if healthy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead node still marked healthy after 2s: %+v", gw.Metrics().Nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverUnderFlakyLinks models netsim.FlakyLink conditions over real
// HTTP: each node's data path drops a fraction of requests mid-flight
// (connection abort, the wireless-uncertainty failure mode of §IV.C)
// while its control path stays up. With a retry budget, every request
// must still succeed.
func TestFailoverUnderFlakyLinks(t *testing.T) {
	const failureRate = 0.25
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	flakyInfer := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		drop := rng.Float64() < failureRate
		mu.Unlock()
		if drop {
			// Abort the connection without a response — the client sees a
			// transport error, exactly like a FlakyLink Transfer failure.
			panic(http.ErrAbortHandler)
		}
		okInfer(w, r)
	}
	a := newStub(t, "a", flakyInfer)
	b := newStub(t, "b", flakyInfer)
	c := newStub(t, "c", flakyInfer)
	gw, front := startGateway(t, gateway.Config{
		HealthInterval: time.Hour,
		// Budget for fresh passes over the fleet: at 25% drop odds per
		// attempt, ten attempts fail together with probability 1e-6.
		Retries: 9,
	}, a, b, c)

	const total = 200
	for i := 0; i < total; i++ {
		status, body := get(t, front.URL+inferURI)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, status, body)
		}
	}
	m := gw.Metrics()
	if m.Retried == 0 {
		t.Error("retried = 0 across 200 requests over flaky links")
	}
	if m.Routed != total || m.Failed != 0 {
		t.Errorf("routed %d failed %d, want %d and 0", m.Routed, m.Failed, total)
	}
}
