package gateway

import (
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResponseCache(2, time.Minute)
	c.put("a", cachedResponse{status: 200, body: []byte("a")})
	c.put("b", cachedResponse{status: 200, body: []byte("b")})
	if _, ok := c.get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.put("c", cachedResponse{status: 200, body: []byte("c")}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; LRU order broken")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := newResponseCache(4, 10*time.Millisecond)
	c.put("k", cachedResponse{status: 200, body: []byte("v")})
	if res, ok := c.get("k"); !ok || string(res.body) != "v" {
		t.Fatalf("fresh get = %v %q", ok, res.body)
	}
	time.Sleep(15 * time.Millisecond)
	if _, ok := c.get("k"); ok {
		t.Error("entry survived its TTL")
	}
	if c.len() != 0 {
		t.Errorf("expired entry still counted: len = %d", c.len())
	}
	if c.hits.Load() != 1 || c.misses.Load() != 1 {
		t.Errorf("hits %d misses %d, want 1 and 1", c.hits.Load(), c.misses.Load())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := newResponseCache(2, time.Minute)
	c.put("k", cachedResponse{status: 200, body: []byte("old")})
	c.put("k", cachedResponse{status: 200, body: []byte("new")})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if res, _ := c.get("k"); string(res.body) != "new" {
		t.Errorf("body = %q, want new", res.body)
	}
}

func TestCacheExpiredEntriesDoNotHoldCapacity(t *testing.T) {
	c := newResponseCache(2, 10*time.Millisecond)
	c.put("old1", cachedResponse{status: 200})
	c.put("old2", cachedResponse{status: 200})
	time.Sleep(15 * time.Millisecond)
	// Over-capacity put must reclaim the expired entries, not evict by
	// recency among the dead.
	c.put("fresh", cachedResponse{status: 200})
	if got := c.len(); got != 1 {
		t.Errorf("len = %d, want 1 (expired entries reclaimed)", got)
	}
	if _, ok := c.get("fresh"); !ok {
		t.Error("fresh entry missing after prune")
	}
}
