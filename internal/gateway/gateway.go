// Package gateway is the fleet front tier: one HTTP entry point that
// spreads live libei traffic across many openei-server edge nodes — the
// horizontal half of the paper's §IV/§V "many cooperating edges" vision,
// and the piece that lets per-node batching (internal/serving) and
// parallel kernels (internal/parallel) add up to fleet-scale throughput.
//
// Responsibilities:
//
//   - Registry + health: a static node list probed every HealthInterval
//     via the collab heartbeat machinery (ProbePeers over /ei_status),
//     feeding a runenv.Monitor failure detector keyed by node URL. A node
//     is routable while the detector holds it live; a single missed probe
//     does not eject it (flap tolerance), HealthTimeout of silence does.
//     Live probes also refresh each node's /ei_metrics queue depth — the
//     cheap load signal for balancing.
//   - Balancing: power-of-two-choices least-loaded — pick two random
//     healthy nodes, route to the one with fewer (gateway in-flight +
//     last-polled queue depth). P2C avoids the herd behavior of global
//     least-loaded while staying O(1) per request.
//   - Failover: every libei route is an idempotent GET, so a transport
//     failure or 5xx is retried on a different healthy peer (up to
//     Retries extra attempts; once every distinct node has been tried a
//     remaining budget starts a fresh pass, which is what rides out
//     transient FlakyLink-style drops). Admission verdicts from the node
//     — 429 overload, 408 deadline — are surfaced to the caller, not
//     retried: a full queue is backpressure, not a failure.
//   - Hedging: with Hedge > 0, a request still unanswered after that
//     delay is cloned to a second node and the first usable response
//     wins — tail-latency insurance when one node stalls.
//   - Fleet admission: MaxInflight caps concurrent proxied requests so an
//     overloaded fleet sheds at the front door (HTTP 429, counted as
//     shed) instead of timing out deep in some node's queue.
//   - Caching: an optional LRU keyed by the verbatim request URI serves
//     byte-identical /ei_algorithms/serving/infer payloads without
//     touching the fleet (inference is a pure function of its input).
//
// GET /gw_metrics reports per-node health and the routed / retried /
// shed / hedged / cache counters in the same JSON envelope libei uses.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openei/internal/cluster"
	"openei/internal/collab"
	"openei/internal/libei"
	"openei/internal/obs"
	"openei/internal/runenv"
	"openei/internal/zoo"
)

// ErrNoNodes is returned by New when neither a static node list nor
// cluster seeds are configured.
var ErrNoNodes = errors.New("gateway: no nodes or cluster seeds configured")

// Config tunes the gateway. The zero value of every field but Nodes means
// the documented default.
type Config struct {
	// Nodes are the edge fleet's base URLs (e.g. "http://edge-1:8080").
	// Trailing slashes are trimmed. May be empty when ClusterSeeds is
	// set; static entries are kept in the fleet even when gossip does not
	// know them.
	Nodes []string

	// ClusterSeeds switches the gateway to cluster mode: it joins the
	// gossip mesh as an observer, discovers the fleet dynamically, routes
	// serving/infer by the consistent-hash shard map instead of
	// fleet-wide least-loaded, and runs the per-model owner-set
	// autoscaler. Empty disables clustering.
	ClusterSeeds []string
	// Replication is the default owner-set size per sharded model
	// (default 2).
	Replication int
	// MaxZooFraction caps one node's share of the catalog (default 0.5).
	MaxZooFraction float64
	// VNodes is the shard ring's virtual-node count (default
	// cluster.DefaultVNodes).
	VNodes int
	// Catalog is the sharded model namespace (default zoo.Names()).
	Catalog []string
	// Autoscale tunes the owner-set controller; its Min defaults to
	// Replication.
	Autoscale cluster.AutoscaleConfig
	// HealthInterval is the probe period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout is how long a node may miss probes before the failure
	// detector suspects it (default 3×HealthInterval).
	HealthTimeout time.Duration
	// MaxInflight caps concurrent proxied requests fleet-wide; beyond it
	// the gateway sheds with HTTP 429. 0 means unlimited.
	MaxInflight int
	// Hedge, when positive, clones a still-unanswered request to a second
	// node after this delay. 0 disables hedging.
	Hedge time.Duration
	// Retries is the number of extra attempts after the first when a node
	// fails transport-level or answers 5xx. Negative means the default:
	// one attempt per remaining node (len(Nodes)-1).
	Retries int
	// CacheSize enables an LRU response cache for byte-identical
	// serving/infer requests when positive. 0 disables caching.
	CacheSize int
	// CacheTTL bounds a cached entry's life (default 1s when the cache is
	// enabled).
	CacheTTL time.Duration
	// BreakerThreshold is the consecutive request failures (transport or
	// 5xx) that trip a node's circuit breaker: while open the node is
	// skipped by routing without waiting for the slower health-probe
	// verdict. 0 means the default (5); negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting one half-open probe request (default 2×HealthInterval).
	BreakerCooldown time.Duration
	// Transport, when non-nil, carries all gateway→node HTTP traffic
	// (probes and proxied requests). The chaos harness injects
	// netsim-backed round-trippers here so partitions and flaky links hit
	// the real request path.
	Transport http.RoundTripper

	// TraceSampleRate is the head-sampling probability for request
	// traces in [0, 1]. Errors and p99-tail requests are kept regardless,
	// so 0 (the default) still stores failure and outlier traces; the
	// sampling verdict propagates to the serving node in the
	// X-Openei-Trace header so both sides keep the same traces.
	TraceSampleRate float64
	// TraceRing bounds the stored traces (default 256).
	TraceRing int
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 3 * c.HealthInterval
	}
	if c.Retries < 0 {
		c.Retries = len(c.Nodes) - 1
		if len(c.ClusterSeeds) > 0 && c.Retries < 3 {
			// The fleet size is not known yet in cluster mode; a small
			// fixed budget keeps failover working before discovery.
			c.Retries = 3
		}
	}
	if c.CacheSize > 0 && c.CacheTTL <= 0 {
		c.CacheTTL = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * c.HealthInterval
	}
	if len(c.ClusterSeeds) > 0 {
		if c.Replication <= 0 {
			c.Replication = 2
		}
		if c.MaxZooFraction == 0 {
			c.MaxZooFraction = 0.5
		}
		if len(c.Catalog) == 0 {
			c.Catalog = zoo.Names()
		}
		if c.Autoscale.Min <= 0 {
			c.Autoscale.Min = c.Replication
		}
	}
	return c
}

// node is one fleet member's registry entry.
type node struct {
	url    string
	client *libei.Client

	healthy    atomic.Bool
	inflight   atomic.Int64
	queueDepth atomic.Int64
	queueCap   atomic.Int64
	// tierRank is the node's autopilot degradation level from its last
	// /ei_metrics poll: 0 for the top (or only) tier, +1 per downgraded
	// rung, +1 more while offloading to the cloud. Routing prefers nodes
	// still on the high-accuracy tier.
	tierRank atomic.Int64

	routed atomic.Uint64 // responses delivered from this node
	fails  atomic.Uint64 // transport failures + 5xx answers
	br     breaker

	mu       sync.Mutex
	nodeID   string
	tier     string // autopilot tier model from the last metrics poll
	lastBeat time.Time
	// models is the node's advertised loaded-model set from its last
	// status probe — the shard router's "does it actually have it" tier.
	models map[string]bool
	// serving is the node's last-polled per-model queue depth and p95,
	// the owner-set autoscaler's raw signal.
	serving map[string]modelLoad
}

// modelLoad is one model's polled pressure on one node.
type modelLoad struct {
	depth int
	p95   time.Duration
}

// hasModel reports whether the node advertised the model at its last
// status probe.
func (n *node) hasModel(model string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.models[model]
}

// load is the balancing signal: requests the gateway has outstanding to
// the node plus the node's last-reported serving queue depth.
func (n *node) load() int64 { return n.inflight.Load() + n.queueDepth.Load() }

// tierPenalty is the load-equivalent cost of one autopilot degradation
// level in effectiveLoad: a degraded node must be this much *less* loaded
// than a top-tier peer before it wins a pick. A bounded penalty (rather
// than an absolute tier preference) keeps the preference from starving
// the last top-tier node into its own downgrade.
const tierPenalty = 16

// effectiveLoad folds the autopilot tier rank into the balancing signal.
func (n *node) effectiveLoad() int64 { return n.load() + n.tierRank.Load()*tierPenalty }

// Gateway routes libei traffic across a fleet of edge nodes. Create with
// New, call Start to begin health probing, serve it as an http.Handler,
// and Close it on shutdown.
type Gateway struct {
	cfg   Config
	mon   *runenv.Monitor
	cache *responseCache // nil when disabled

	// The fleet registry. Static in the classic configuration; in
	// cluster mode membership gossip adds and removes entries, so reads
	// go through nodeList/nodeByURL.
	nodesMu sync.RWMutex
	nodes   []*node
	byURL   map[string]*node
	static  map[string]bool // cfg.Nodes entries survive gossip removal

	// Cluster mode (nil/empty otherwise): the gossip observer, the
	// owner-set autoscaler, and the current shard plan.
	mem    *cluster.Membership
	scaler *cluster.Autoscaler
	planMu sync.RWMutex
	plan   map[string][]string

	inflight atomic.Int64
	met      counters
	tracer   *obs.Tracer

	pickMu sync.Mutex
	rng    *rand.Rand

	loopOnce  sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// counters is the gateway-wide metric set.
type counters struct {
	routed           atomic.Uint64 // responses proxied from a node
	retried          atomic.Uint64 // failover re-launches
	shed             atomic.Uint64 // rejected by fleet admission (429 at the gateway)
	failed           atomic.Uint64 // no node produced a response (502/503)
	hedged           atomic.Uint64 // hedge clones launched
	upstreamOverload atomic.Uint64 // 429 verdicts surfaced from nodes
	upstreamDeadline atomic.Uint64 // 408 verdicts surfaced from nodes
	deadlineStopped  atomic.Uint64 // requests 408'd at the gateway: budget lapsed mid-failover
	scaleEvents      atomic.Uint64 // owner-set replication changes issued
}

// New validates the configuration and builds the gateway. It does not
// start health probing — call Start.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Nodes) == 0 && len(cfg.ClusterSeeds) == 0 {
		return nil, ErrNoNodes
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:    cfg,
		mon:    runenv.NewMonitor(cfg.HealthTimeout),
		byURL:  map[string]*node{},
		static: map[string]bool{},
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		tracer: obs.NewTracer(obs.Config{SampleRate: cfg.TraceSampleRate, Ring: cfg.TraceRing, Source: "gateway"}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, raw := range cfg.Nodes {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("gateway: empty node URL in %v", cfg.Nodes)
		}
		if g.byURL[u] != nil {
			return nil, fmt.Errorf("gateway: duplicate node %q", u)
		}
		g.static[u] = true
		g.addNodeLocked(u)
	}
	if len(cfg.ClusterSeeds) > 0 {
		// The gateway observes the gossip mesh: it learns members and
		// judges their health without ever appearing in a member view
		// (no SelfURL). Its failure-detector windows follow the health
		// knobs so classic and cluster mode degrade on the same clock.
		g.mem = cluster.NewMembership(cluster.MembershipConfig{
			Seeds:        cfg.ClusterSeeds,
			Interval:     cfg.HealthInterval,
			SuspectAfter: cfg.HealthTimeout,
		})
		g.scaler = cluster.NewAutoscaler(cfg.Autoscale)
		g.plan = map[string][]string{}
	}
	if cfg.CacheSize > 0 {
		g.cache = newResponseCache(cfg.CacheSize, cfg.CacheTTL)
	}
	return g, nil
}

// addNodeLocked registers a fleet member; callers hold nodesMu (or, at
// New time, exclusive ownership).
func (g *Gateway) addNodeLocked(u string) *node {
	n := &node{url: u, client: libei.NewClient(u)}
	n.br.threshold = g.cfg.BreakerThreshold
	n.br.cooldown = g.cfg.BreakerCooldown
	if g.cfg.Transport != nil {
		n.client.HTTPClient = &http.Client{Timeout: 10 * time.Second, Transport: g.cfg.Transport}
	}
	g.nodes = append(g.nodes, n)
	g.byURL[u] = n
	return n
}

// nodeList snapshots the current fleet.
func (g *Gateway) nodeList() []*node {
	g.nodesMu.RLock()
	defer g.nodesMu.RUnlock()
	return append([]*node(nil), g.nodes...)
}

func (g *Gateway) nodeByURL(u string) *node {
	g.nodesMu.RLock()
	defer g.nodesMu.RUnlock()
	return g.byURL[u]
}

// reconcileFleet aligns the node registry with the gossip view: members
// the mesh considers active join the fleet, members it declared dead or
// departed leave it (static configuration entries always stay). Requests
// already in flight to a removed node finish on their own — the entry
// just stops being pickable.
func (g *Gateway) reconcileFleet(active []cluster.Member) {
	wanted := make(map[string]bool, len(active)+len(g.static))
	for u := range g.static {
		wanted[u] = true
	}
	for _, m := range active {
		wanted[strings.TrimRight(m.URL, "/")] = true
	}
	g.nodesMu.Lock()
	defer g.nodesMu.Unlock()
	for u := range wanted {
		if g.byURL[u] == nil {
			g.addNodeLocked(u)
		}
	}
	kept := g.nodes[:0]
	for _, n := range g.nodes {
		if wanted[n.url] {
			kept = append(kept, n)
		} else {
			delete(g.byURL, n.url)
			g.mon.Forget(n.url)
		}
	}
	g.nodes = kept
}

// Start runs one synchronous health round (so routing has a live view
// before the first request) and then probes every HealthInterval until
// Close. Calling Start more than once is a no-op.
func (g *Gateway) Start() {
	g.loopOnce.Do(func() {
		g.CheckHealth()
		g.started.Store(true)
		go func() {
			defer close(g.done)
			ticker := time.NewTicker(g.cfg.HealthInterval)
			defer ticker.Stop()
			for {
				select {
				case <-g.stop:
					return
				case <-ticker.C:
					g.CheckHealth()
				}
			}
		}()
	})
}

// Close stops the health loop. In-flight proxied requests finish on their
// own. Idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	if g.started.Load() {
		<-g.done
	}
}

// CheckHealth runs one synchronous probe round: in cluster mode, first a
// gossip tick and a fleet reconcile against the member view; then every
// node's /ei_status heartbeat via the collab prober, then — for nodes
// that answered — an /ei_metrics poll to refresh the queue-depth load
// signal; finally, in cluster mode, a shard-plan recompute and one
// owner-set autoscaler pass. Exported so tests (and operators wiring
// their own cadence) can force a round.
func (g *Gateway) CheckHealth() {
	// The probe deadline is decoupled from the probe period: a tight
	// HealthInterval (tests, aggressive detection) must not turn a
	// slow-but-alive node into a missed heartbeat on a loaded host.
	probeTimeout := g.cfg.HealthTimeout
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	now := time.Now()

	if g.mem != nil {
		g.mem.Tick(ctx, now)
		g.reconcileFleet(g.mem.Active())
	}

	nodes := g.nodeList()
	peers := make(map[string]*libei.Client, len(nodes))
	byURL := make(map[string]*node, len(nodes))
	for _, n := range nodes {
		peers[n.url] = n.client
		byURL[n.url] = n
	}
	probes := collab.ProbePeers(ctx, peers)
	var wg sync.WaitGroup
	for url, p := range probes {
		n := byURL[url]
		if p.Err != nil {
			// No heartbeat this round. Health only degrades once the
			// failure detector's timeout lapses — a single dropped probe
			// (a flap) does not eject the node.
			if st, err := g.mon.State(n.url, now); err != nil || st != runenv.NodeLive {
				n.healthy.Store(false)
			}
			continue
		}
		g.mon.Heartbeat(url, now)
		models := make(map[string]bool, len(p.Status.Models))
		for _, pl := range p.Status.Models {
			models[pl.Name] = true
		}
		n.mu.Lock()
		n.nodeID = p.NodeID
		n.lastBeat = now
		n.models = models
		n.mu.Unlock()
		n.healthy.Store(true)
		// Queue-depth refreshes fan out concurrently like the probes did:
		// one slow node must not stretch the round to O(N·RTT).
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			if m, err := n.client.MetricsCtx(ctx); err == nil {
				n.queueDepth.Store(int64(m.QueueDepth))
				n.queueCap.Store(int64(m.QueueCap))
				rank, tier := int64(0), ""
				if ap := m.Autopilot; ap != nil {
					rank = int64(ap.TierIndex)
					if ap.Offloading {
						rank++
					}
					tier = ap.Tier
				}
				n.tierRank.Store(rank)
				serving := make(map[string]modelLoad, len(m.Serving))
				for _, s := range m.Serving {
					serving[s.Model] = modelLoad{
						depth: s.QueueDepth,
						p95:   time.Duration(s.P95MS * float64(time.Millisecond)),
					}
				}
				n.mu.Lock()
				n.tier = tier
				n.serving = serving
				n.mu.Unlock()
			}
		}(n)
	}
	wg.Wait()

	if g.mem != nil {
		g.reshard()
	}
}

// reshard recomputes the placement plan from the member view and runs
// one owner-set autoscaler pass over the freshly polled per-model load.
func (g *Gateway) reshard() {
	active := g.mem.Active()
	members := make([]string, 0, len(active))
	for _, m := range active {
		members = append(members, m.URL)
	}
	plan := cluster.PlanPlacement(members, g.cfg.Catalog, g.cfg.Replication,
		g.mem.Replication(), g.cfg.MaxZooFraction, g.cfg.VNodes)
	g.planMu.Lock()
	g.plan = plan
	g.planMu.Unlock()

	// Aggregate each model's pressure across its owners and let the
	// controller decide. A changed target is recorded in the observer's
	// own replication table (so the next plan uses it immediately) and
	// pushed to a few live members, whose gossip spreads it to the rest.
	for _, model := range g.cfg.Catalog {
		owners := plan[model]
		if len(owners) == 0 {
			continue
		}
		queued, p95 := 0, time.Duration(0)
		for _, u := range owners {
			n := g.nodeByURL(u)
			if n == nil {
				continue
			}
			n.mu.Lock()
			if ld, ok := n.serving[model]; ok {
				queued += ld.depth
				if ld.p95 > p95 {
					p95 = ld.p95
				}
			}
			n.mu.Unlock()
		}
		target, changed := g.scaler.Observe(model, len(owners), queued, p95)
		if !changed || !g.mem.SetReplication(model, target) {
			continue
		}
		g.met.scaleEvents.Add(1)
		rep := g.mem.Replication()[model]
		args := url.Values{}
		args.Set("model", model)
		args.Set("n", fmt.Sprint(rep.N))
		args.Set("v", fmt.Sprint(rep.V))
		pushed := 0
		for _, m := range active {
			if m.State != cluster.StateAlive || pushed >= 3 {
				continue
			}
			n := g.nodeByURL(m.URL)
			if n == nil {
				continue
			}
			pushed++
			go func(c *libei.Client) {
				pushCtx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
				defer cancel()
				_ = c.CallAlgorithmCtx(pushCtx, "cluster", "replication", args, nil)
			}(n.client)
		}
	}
}

// routeGroups builds the preference-ordered candidate tiers for one
// request. Classic mode (or a request without a sharded model) has a
// single tier: the whole fleet. Cluster mode routes a model at, in
// order: owners advertising the model (they provably have the weights),
// non-owners that still advertise it (an evicting ex-owner mid-handoff —
// evidence of the weights outranks a plan the fleet may not have
// converged on yet), all planned owners (a fresh owner may still be
// loading), and finally the whole fleet — so a plan in mid-shift
// degrades to classic routing instead of failing.
func (g *Gateway) routeGroups(model string) [][]*node {
	all := g.nodeList()
	if g.mem == nil || model == "" {
		return [][]*node{all}
	}
	g.planMu.RLock()
	owners := g.plan[model]
	g.planMu.RUnlock()
	var advertising, owning []*node
	owned := make(map[*node]bool, len(owners))
	for _, u := range owners {
		n := g.nodeByURL(u)
		if n == nil {
			continue
		}
		owned[n] = true
		owning = append(owning, n)
		if n.hasModel(model) {
			advertising = append(advertising, n)
		}
	}
	var holdouts []*node
	for _, n := range all {
		if !owned[n] && n.hasModel(model) {
			holdouts = append(holdouts, n)
		}
	}
	return [][]*node{advertising, holdouts, owning, all}
}

// pick selects an untried node from the first preference tier that has
// one, power-of-two-choices within the tier: two random candidates, the
// lower *effective* load wins — real load plus a bounded penalty per
// autopilot degradation level. While part of the fleet is degraded,
// lightly loaded top-tier nodes absorb new traffic (clients keep getting
// the high-accuracy model), but once the top-tier node is tierPenalty
// requests busier than a degraded peer, load wins again — the preference
// cannot pile the whole fleet's traffic onto the last top-tier node. A
// first pass considers only healthy nodes whose circuit breaker is not
// open, across all tiers; when that yields nothing — probing can black
// out under host overload — a second pass takes any untried node: an
// unhealthy node that might still answer beats a guaranteed refusal, and
// failover covers the truly dead. (launch still consults the breaker on
// the pass-two pick, so a hard-open node is skipped, not re-hammered.)
// The second return is the index of the preference tier the node came
// from, for the attempt span's route_tier attribute.
func (g *Gateway) pick(tried map[*node]bool, groups [][]*node) (*node, int) {
	now := time.Now()
	for pass := 0; pass < 2; pass++ {
		for tier, group := range groups {
			var cands []*node
			for _, n := range group {
				if tried[n] || (pass == 0 && (!n.healthy.Load() || !n.br.available(now))) {
					continue
				}
				cands = append(cands, n)
			}
			switch len(cands) {
			case 0:
				continue
			case 1:
				return cands[0], tier
			}
			g.pickMu.Lock()
			i := g.rng.Intn(len(cands))
			j := g.rng.Intn(len(cands) - 1)
			g.pickMu.Unlock()
			if j >= i {
				j++
			}
			a, b := cands[i], cands[j]
			if b.effectiveLoad() < a.effectiveLoad() {
				return b, tier
			}
			return a, tier
		}
	}
	return nil, 0
}

// tierNames mirrors routeGroups' preference ordering, by group count:
// cluster mode routes over four tiers, classic mode over the whole fleet.
func tierNames(groups int) []string {
	if groups > 1 {
		return []string{"advertising", "holdouts", "owners", "fleet"}
	}
	return []string{"fleet"}
}

// upstream is one attempt's outcome.
type upstream struct {
	node *node
	res  libei.ForwardResult
	err  error
	// spanID is the attempt's trace span (0 when the request is untraced);
	// do marks the winning attempt's span once the race resolves.
	spanID uint64
}

// retryable reports whether the outcome should trigger failover: the node
// never produced an HTTP answer, or it answered 5xx. Admission verdicts
// (4xx, notably 429/408) are surfaced, not retried — except a 404 for a
// sharded model (retry404), which during a rebalance just means "this
// node has not loaded it yet / already evicted it" and another owner
// very likely has it.
func (u upstream) retryable(retry404 bool) bool {
	return u.err != nil || u.res.Status >= 500 ||
		(retry404 && u.res.Status == http.StatusNotFound)
}

// attempt proxies the request to one node, tracking its in-flight count
// and per-node counters. trace, when non-empty, is the X-Openei-Trace
// context propagated to the node: same trace ID, this attempt's span as
// parent, the gateway's sampling verdict.
func (g *Gateway) attempt(ctx context.Context, n *node, uri, trace string) upstream {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	res, err := n.client.ForwardTrace(ctx, uri, trace)
	if err != nil {
		if ctx.Err() == nil {
			// Real transport failure, not a hedge-loser cancellation.
			n.fails.Add(1)
			n.br.failure(time.Now())
		}
		return upstream{node: n, err: err}
	}
	if res.Status >= 500 {
		n.fails.Add(1)
		n.br.failure(time.Now())
	} else {
		// Any real HTTP answer below 5xx — including a 429/408 admission
		// verdict — proves the node's request path works.
		n.routed.Add(1)
		n.br.success()
	}
	return upstream{node: n, res: res}
}

// do routes one request with failover and optional hedging: launch on a
// node picked from the request's preference tiers; relaunch on a
// different node for each retryable outcome while budget remains
// (clearing the tried set for a fresh pass once every node has been
// attempted); additionally clone to a second node when the hedge timer
// fires first. The first non-retryable outcome wins. model is the
// sharded model the request targets ("" when not applicable): it selects
// the owner-first tiers and makes 404 retryable, since a rebalancing
// fleet can answer "not here" from a node the plan only just left.
//
// Every attempt is budgeted against the caller's context deadline, not
// just the retry count: a carried deadline_ms parameter is rewritten to
// the remaining budget on each launch (so a node never works a stale
// budget), and once the deadline has lapsed no retry or hedge launches —
// the caller gets a prompt deadline error instead of a late 5xx.
// When tb is non-nil every pick and every attempt records a child span
// under the gateway root; the winning attempt's span is marked once the
// race resolves, so retries and hedges are distinguishable in the stored
// trace.
func (g *Gateway) do(ctx context.Context, uri, model string, tb *obs.TraceBuf) upstream {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	groups := g.routeGroups(model)
	names := tierNames(len(groups))
	retry404 := g.mem != nil && model != ""
	tried := map[*node]bool{}
	results := make(chan upstream, g.cfg.Retries+2)
	pending := 0
	launch := func() bool {
		attemptURI := uri
		if dl, ok := ctx.Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				return false
			}
			attemptURI = rewriteDeadline(uri, rem)
		}
		// The breaker check happens after pick so the probe slot is only
		// claimed by the node actually chosen; a node refused by admit
		// (open, or probe slot taken) stays in tried and the loop moves on.
		cleared := false
		for {
			pickStart := time.Now()
			n, tier := g.pick(tried, groups)
			if n == nil {
				if cleared || len(tried) == 0 {
					return false
				}
				// Every distinct healthy node has been tried; spend
				// remaining budget on a fresh pass — transient link
				// failures recover between attempts.
				clear(tried)
				cleared = true
				continue
			}
			tried[n] = true
			if !n.br.admit(time.Now()) {
				continue
			}
			pending++
			var trace string
			var spanID uint64
			tierName := names[tier]
			if tb != nil {
				tb.Add(obs.StagePick, tb.Root(), pickStart, time.Since(pickStart),
					obs.Str("node", n.url), obs.Str("route_tier", tierName))
				// The attempt's span ID is allocated before launch so it can
				// cross to the node as the parent while still in flight.
				spanID = g.tracer.NextID()
				trace = obs.TraceContext{TraceID: tb.ID(), Parent: spanID, Sampled: tb.Sampled()}.String()
				// A hedge loser outlives do (and the caller's Finish); its
				// reference keeps the buffer alive until its span lands.
				tb.Ref()
			}
			go func() {
				st := time.Now()
				u := g.attempt(ctx, n, attemptURI, trace)
				if tb != nil {
					u.spanID = spanID
					status := int64(u.res.Status)
					if u.err != nil {
						status = -1
					}
					tb.AddWithID(spanID, obs.StageAttempt, tb.Root(), st, time.Since(st),
						obs.Str("node", n.url), obs.Int("status", status), obs.Str("route_tier", tierName))
					tb.Unref()
				}
				results <- u
			}()
			return true
		}
	}
	if !launch() {
		if ctx.Err() != nil {
			return upstream{err: ctx.Err()}
		}
		// Reachable with an empty dynamic fleet (cluster mode before the
		// first member answers) or a fleet of open breakers; a prompt
		// refusal beats a hung select either way.
		return upstream{err: errors.New("gateway: no node to try")}
	}
	var hedge <-chan time.Time
	if g.cfg.Hedge > 0 {
		t := time.NewTimer(g.cfg.Hedge)
		defer t.Stop()
		hedge = t.C
	}
	budget := g.cfg.Retries
	var last upstream
	for {
		select {
		case u := <-results:
			pending--
			if !u.retryable(retry404) {
				if tb != nil && u.spanID != 0 {
					tb.SetAttr(u.spanID, obs.Str("winner", "1"))
				}
				return u
			}
			if err := ctx.Err(); err != nil {
				// The caller's deadline lapsed (or it hung up) while this
				// attempt failed; surface that, not a late upstream error.
				return upstream{err: err}
			}
			last = u
			if budget > 0 && launch() {
				budget--
				g.met.retried.Add(1)
				continue
			}
			if pending > 0 {
				// A hedge sibling is still in flight; it may yet answer.
				continue
			}
			return last
		case <-hedge:
			hedge = nil
			if launch() {
				g.met.hedged.Add(1)
			}
		case <-ctx.Done():
			return upstream{err: ctx.Err()}
		}
	}
}

// rewriteDeadline re-expresses a request's deadline_ms query parameter as
// the caller's remaining budget, so a retry attempt hands the node only
// the time actually left instead of the original full budget. Requests
// without a deadline_ms parameter pass through untouched.
func rewriteDeadline(uri string, rem time.Duration) string {
	u, err := url.ParseRequestURI(uri)
	if err != nil {
		return uri
	}
	q := u.Query()
	if q.Get("deadline_ms") == "" {
		return uri
	}
	q.Set("deadline_ms", fmt.Sprintf("%g", float64(rem)/float64(time.Millisecond)))
	u.RawQuery = q.Encode()
	return u.RequestURI()
}

// envelope mirrors libei's uniform JSON response wrapper so gateway-origin
// responses look like node responses to clients.
type envelope struct {
	OK     bool   `json:"ok"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, env envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// cacheable reports whether a path's responses may be cached: only
// serving/infer, which is a pure function of its byte-identical query
// (other algorithms read live sensor data).
func cacheable(path string) bool {
	return path == "/ei_algorithms/serving/infer"
}

// Tracer returns the gateway's request tracer.
func (g *Gateway) Tracer() *obs.Tracer { return g.tracer }

// ServeHTTP implements http.Handler: /gw_metrics, /gw_trace, and /metrics
// locally, everything else proxied to the fleet. Every proxied request is
// traced (kept per the sampling policy) and its trace ID echoed in the
// X-Openei-Trace response header — on errors and sheds too, so a failure
// report can always point at its trace.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, envelope{OK: false, Error: "only GET is supported"})
		return
	}
	switch r.URL.Path {
	case "/gw_metrics":
		writeJSON(w, http.StatusOK, envelope{OK: true, Result: g.Metrics()})
		return
	case "/gw_trace":
		g.handleGwTrace(w, r)
		return
	case "/metrics":
		g.handleProm(w)
		return
	}
	// The gateway originates the trace: fresh ID, head-sampling verdict
	// propagated to whichever nodes the attempts reach. The root span is
	// recorded at respond time under the ID allocated here.
	tb := g.tracer.Begin(obs.TraceContext{})
	root := g.tracer.NextID()
	tb.SetRoot(root)
	w.Header().Set(obs.TraceHeader, tb.IDString())
	start := time.Now()
	finish := func(status int, failed bool, extra ...obs.Attr) {
		total := time.Since(start)
		attrs := append([]obs.Attr{obs.Str("path", r.URL.Path), obs.Int("status", int64(status))}, extra...)
		tb.AddWithID(root, obs.StageGateway, 0, start, total, attrs...)
		g.tracer.Finish(tb, failed, total)
	}
	// Fleet-wide admission control: shed at the front door instead of
	// letting the request time out deep in some node's queue.
	cur := g.inflight.Add(1)
	defer g.inflight.Add(-1)
	if g.cfg.MaxInflight > 0 && cur > int64(g.cfg.MaxInflight) {
		g.met.shed.Add(1)
		finish(http.StatusTooManyRequests, true, obs.Str("outcome", "shed"))
		writeJSON(w, http.StatusTooManyRequests, envelope{
			OK:    false,
			Error: fmt.Sprintf("gateway: fleet saturated (%d in flight, cap %d)", cur-1, g.cfg.MaxInflight),
		})
		return
	}
	uri := r.URL.RequestURI()
	var model string
	if g.mem != nil && cacheable(r.URL.Path) {
		// Shard-aware routing keys on the serving/infer model parameter.
		model = r.URL.Query().Get("model")
	}
	if g.cache != nil && cacheable(r.URL.Path) {
		if ent, ok := g.cache.get(uri); ok {
			finish(ent.status, false, obs.Str("cache", "hit"))
			w.Header().Set("Content-Type", ent.contentType)
			w.Header().Set("X-Gateway-Cache", "hit")
			w.WriteHeader(ent.status)
			_, _ = w.Write(ent.body)
			return
		}
	}
	// A carried deadline_ms becomes this hop's context deadline: do()
	// budgets every retry and hedge against it and each forwarded attempt
	// carries only the remaining time.
	ctx := r.Context()
	if rawMS := r.URL.Query().Get("deadline_ms"); rawMS != "" {
		if ms, err := strconv.ParseFloat(rawMS, 64); err == nil && ms > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Now().Add(time.Duration(ms*float64(time.Millisecond))))
			defer cancel()
		}
	}
	u := g.do(ctx, uri, model, tb)
	if u.err != nil {
		if errors.Is(u.err, context.DeadlineExceeded) {
			g.met.deadlineStopped.Add(1)
			finish(http.StatusRequestTimeout, true)
			writeJSON(w, http.StatusRequestTimeout, envelope{
				OK: false, Error: "gateway: deadline expired before a node answered",
			})
			return
		}
		g.met.failed.Add(1)
		finish(http.StatusBadGateway, true)
		writeJSON(w, http.StatusBadGateway, envelope{
			OK: false, Error: fmt.Sprintf("gateway: all attempts failed: %v", u.err),
		})
		return
	}
	g.met.routed.Add(1)
	finish(u.res.Status, u.res.Status >= 500)
	switch u.res.Status {
	case http.StatusTooManyRequests:
		g.met.upstreamOverload.Add(1)
	case http.StatusRequestTimeout:
		g.met.upstreamDeadline.Add(1)
	}
	if g.cache != nil && u.res.Status == http.StatusOK && cacheable(r.URL.Path) {
		g.cache.put(uri, cachedResponse{
			status: u.res.Status, contentType: u.res.ContentType, body: u.res.Body,
		})
	}
	if u.res.ContentType != "" {
		w.Header().Set("Content-Type", u.res.ContentType)
	}
	w.Header().Set("X-Gateway-Node", u.node.url)
	w.WriteHeader(u.res.Status)
	_, _ = w.Write(u.res.Body)
}

// handleGwTrace serves GET /gw_trace: without an id, the recently kept
// trace IDs; with ?id=, the stitched cross-process trace — the gateway's
// own spans plus, for every node an attempt span touched, that node's
// spans for the same trace fetched live over /ei_trace. Stitching works
// because the sampling verdict propagates: a trace the gateway kept was
// kept by the serving node too.
func (g *Gateway) handleGwTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("id")
	if raw == "" {
		writeJSON(w, http.StatusOK, envelope{OK: true, Result: g.tracer.RecentIDs(32)})
		return
	}
	id, ok := obs.ParseID(raw)
	if !ok {
		writeJSON(w, http.StatusBadRequest, envelope{OK: false, Error: fmt.Sprintf("bad trace id %q", raw)})
		return
	}
	spans, ok := g.tracer.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, envelope{OK: false, Error: fmt.Sprintf("trace %s not stored (unsampled or evicted)", raw)})
		return
	}
	doc := libei.TraceDoc{TraceID: obs.IDString(id), Spans: spans}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	fetched := map[string]bool{}
	for _, sp := range spans {
		nodeURL, _ := sp.Attrs["node"].(string)
		if nodeURL == "" || fetched[nodeURL] {
			continue
		}
		fetched[nodeURL] = true
		n := g.nodeByURL(nodeURL)
		if n == nil {
			continue
		}
		if nd, err := n.client.TraceCtx(ctx, doc.TraceID); err == nil {
			doc.Spans = append(doc.Spans, nd.Spans...)
		}
	}
	doc.SortSpans()
	writeJSON(w, http.StatusOK, envelope{OK: true, Result: doc})
}

// handleProm renders the /gw_metrics snapshot — same struct, same code
// path — in Prometheus exposition format under the openei_gateway
// namespace.
func (g *Gateway) handleProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, "openei_gateway", g.Metrics())
}
