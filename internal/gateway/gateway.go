// Package gateway is the fleet front tier: one HTTP entry point that
// spreads live libei traffic across many openei-server edge nodes — the
// horizontal half of the paper's §IV/§V "many cooperating edges" vision,
// and the piece that lets per-node batching (internal/serving) and
// parallel kernels (internal/parallel) add up to fleet-scale throughput.
//
// Responsibilities:
//
//   - Registry + health: a static node list probed every HealthInterval
//     via the collab heartbeat machinery (ProbePeers over /ei_status),
//     feeding a runenv.Monitor failure detector keyed by node URL. A node
//     is routable while the detector holds it live; a single missed probe
//     does not eject it (flap tolerance), HealthTimeout of silence does.
//     Live probes also refresh each node's /ei_metrics queue depth — the
//     cheap load signal for balancing.
//   - Balancing: power-of-two-choices least-loaded — pick two random
//     healthy nodes, route to the one with fewer (gateway in-flight +
//     last-polled queue depth). P2C avoids the herd behavior of global
//     least-loaded while staying O(1) per request.
//   - Failover: every libei route is an idempotent GET, so a transport
//     failure or 5xx is retried on a different healthy peer (up to
//     Retries extra attempts; once every distinct node has been tried a
//     remaining budget starts a fresh pass, which is what rides out
//     transient FlakyLink-style drops). Admission verdicts from the node
//     — 429 overload, 408 deadline — are surfaced to the caller, not
//     retried: a full queue is backpressure, not a failure.
//   - Hedging: with Hedge > 0, a request still unanswered after that
//     delay is cloned to a second node and the first usable response
//     wins — tail-latency insurance when one node stalls.
//   - Fleet admission: MaxInflight caps concurrent proxied requests so an
//     overloaded fleet sheds at the front door (HTTP 429, counted as
//     shed) instead of timing out deep in some node's queue.
//   - Caching: an optional LRU keyed by the verbatim request URI serves
//     byte-identical /ei_algorithms/serving/infer payloads without
//     touching the fleet (inference is a pure function of its input).
//
// GET /gw_metrics reports per-node health and the routed / retried /
// shed / hedged / cache counters in the same JSON envelope libei uses.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openei/internal/collab"
	"openei/internal/libei"
	"openei/internal/runenv"
)

// ErrNoNodes is returned by New for an empty node list.
var ErrNoNodes = errors.New("gateway: no nodes configured")

// Config tunes the gateway. The zero value of every field but Nodes means
// the documented default.
type Config struct {
	// Nodes are the edge fleet's base URLs (required, e.g.
	// "http://edge-1:8080"). Trailing slashes are trimmed.
	Nodes []string
	// HealthInterval is the probe period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout is how long a node may miss probes before the failure
	// detector suspects it (default 3×HealthInterval).
	HealthTimeout time.Duration
	// MaxInflight caps concurrent proxied requests fleet-wide; beyond it
	// the gateway sheds with HTTP 429. 0 means unlimited.
	MaxInflight int
	// Hedge, when positive, clones a still-unanswered request to a second
	// node after this delay. 0 disables hedging.
	Hedge time.Duration
	// Retries is the number of extra attempts after the first when a node
	// fails transport-level or answers 5xx. Negative means the default:
	// one attempt per remaining node (len(Nodes)-1).
	Retries int
	// CacheSize enables an LRU response cache for byte-identical
	// serving/infer requests when positive. 0 disables caching.
	CacheSize int
	// CacheTTL bounds a cached entry's life (default 1s when the cache is
	// enabled).
	CacheTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 3 * c.HealthInterval
	}
	if c.Retries < 0 {
		c.Retries = len(c.Nodes) - 1
	}
	if c.CacheSize > 0 && c.CacheTTL <= 0 {
		c.CacheTTL = time.Second
	}
	return c
}

// node is one fleet member's registry entry.
type node struct {
	url    string
	client *libei.Client

	healthy    atomic.Bool
	inflight   atomic.Int64
	queueDepth atomic.Int64
	queueCap   atomic.Int64
	// tierRank is the node's autopilot degradation level from its last
	// /ei_metrics poll: 0 for the top (or only) tier, +1 per downgraded
	// rung, +1 more while offloading to the cloud. Routing prefers nodes
	// still on the high-accuracy tier.
	tierRank atomic.Int64

	routed atomic.Uint64 // responses delivered from this node
	fails  atomic.Uint64 // transport failures + 5xx answers

	mu       sync.Mutex
	nodeID   string
	tier     string // autopilot tier model from the last metrics poll
	lastBeat time.Time
}

// load is the balancing signal: requests the gateway has outstanding to
// the node plus the node's last-reported serving queue depth.
func (n *node) load() int64 { return n.inflight.Load() + n.queueDepth.Load() }

// tierPenalty is the load-equivalent cost of one autopilot degradation
// level in effectiveLoad: a degraded node must be this much *less* loaded
// than a top-tier peer before it wins a pick. A bounded penalty (rather
// than an absolute tier preference) keeps the preference from starving
// the last top-tier node into its own downgrade.
const tierPenalty = 16

// effectiveLoad folds the autopilot tier rank into the balancing signal.
func (n *node) effectiveLoad() int64 { return n.load() + n.tierRank.Load()*tierPenalty }

// Gateway routes libei traffic across a fleet of edge nodes. Create with
// New, call Start to begin health probing, serve it as an http.Handler,
// and Close it on shutdown.
type Gateway struct {
	cfg   Config
	nodes []*node
	mon   *runenv.Monitor
	cache *responseCache // nil when disabled

	inflight atomic.Int64
	met      counters

	pickMu sync.Mutex
	rng    *rand.Rand

	loopOnce  sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// counters is the gateway-wide metric set.
type counters struct {
	routed           atomic.Uint64 // responses proxied from a node
	retried          atomic.Uint64 // failover re-launches
	shed             atomic.Uint64 // rejected by fleet admission (429 at the gateway)
	failed           atomic.Uint64 // no node produced a response (502/503)
	hedged           atomic.Uint64 // hedge clones launched
	upstreamOverload atomic.Uint64 // 429 verdicts surfaced from nodes
	upstreamDeadline atomic.Uint64 // 408 verdicts surfaced from nodes
}

// New validates the configuration and builds the gateway. It does not
// start health probing — call Start.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:  cfg,
		mon:  runenv.NewMonitor(cfg.HealthTimeout),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Nodes {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("gateway: empty node URL in %v", cfg.Nodes)
		}
		if seen[u] {
			return nil, fmt.Errorf("gateway: duplicate node %q", u)
		}
		seen[u] = true
		g.nodes = append(g.nodes, &node{url: u, client: libei.NewClient(u)})
	}
	if cfg.CacheSize > 0 {
		g.cache = newResponseCache(cfg.CacheSize, cfg.CacheTTL)
	}
	return g, nil
}

// Start runs one synchronous health round (so routing has a live view
// before the first request) and then probes every HealthInterval until
// Close. Calling Start more than once is a no-op.
func (g *Gateway) Start() {
	g.loopOnce.Do(func() {
		g.CheckHealth()
		g.started.Store(true)
		go func() {
			defer close(g.done)
			ticker := time.NewTicker(g.cfg.HealthInterval)
			defer ticker.Stop()
			for {
				select {
				case <-g.stop:
					return
				case <-ticker.C:
					g.CheckHealth()
				}
			}
		}()
	})
}

// Close stops the health loop. In-flight proxied requests finish on their
// own. Idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() { close(g.stop) })
	if g.started.Load() {
		<-g.done
	}
}

// CheckHealth runs one synchronous probe round: every node's /ei_status
// heartbeat via the collab prober, then — for nodes that answered — an
// /ei_metrics poll to refresh the queue-depth load signal. Exported so
// tests (and operators wiring their own cadence) can force a round.
func (g *Gateway) CheckHealth() {
	peers := make(map[string]*libei.Client, len(g.nodes))
	byURL := make(map[string]*node, len(g.nodes))
	for _, n := range g.nodes {
		peers[n.url] = n.client
		byURL[n.url] = n
	}
	// The probe deadline is decoupled from the probe period: a tight
	// HealthInterval (tests, aggressive detection) must not turn a
	// slow-but-alive node into a missed heartbeat on a loaded host.
	probeTimeout := g.cfg.HealthTimeout
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	now := time.Now()
	probes := collab.ProbePeers(ctx, peers)
	var wg sync.WaitGroup
	for url, p := range probes {
		n := byURL[url]
		if p.Err != nil {
			// No heartbeat this round. Health only degrades once the
			// failure detector's timeout lapses — a single dropped probe
			// (a flap) does not eject the node.
			if st, err := g.mon.State(n.url, now); err != nil || st != runenv.NodeLive {
				n.healthy.Store(false)
			}
			continue
		}
		g.mon.Heartbeat(url, now)
		n.mu.Lock()
		n.nodeID = p.NodeID
		n.lastBeat = now
		n.mu.Unlock()
		n.healthy.Store(true)
		// Queue-depth refreshes fan out concurrently like the probes did:
		// one slow node must not stretch the round to O(N·RTT).
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			if m, err := n.client.MetricsCtx(ctx); err == nil {
				n.queueDepth.Store(int64(m.QueueDepth))
				n.queueCap.Store(int64(m.QueueCap))
				rank, tier := int64(0), ""
				if ap := m.Autopilot; ap != nil {
					rank = int64(ap.TierIndex)
					if ap.Offloading {
						rank++
					}
					tier = ap.Tier
				}
				n.tierRank.Store(rank)
				n.mu.Lock()
				n.tier = tier
				n.mu.Unlock()
			}
		}(n)
	}
	wg.Wait()
}

// pick selects a healthy node not in tried, power-of-two-choices: two
// random candidates, the lower *effective* load wins — real load plus a
// bounded penalty per autopilot degradation level. While part of the
// fleet is degraded, lightly loaded top-tier nodes absorb new traffic
// (clients keep getting the high-accuracy model), but once the top-tier
// node is tierPenalty requests busier than a degraded peer, load wins
// again — the preference cannot pile the whole fleet's traffic onto the
// last top-tier node. When the healthy set is empty — probing can black
// out under host overload — it falls back to every untried node: an
// unhealthy node that might still answer beats a guaranteed refusal, and
// failover covers the truly dead.
func (g *Gateway) pick(tried map[*node]bool) *node {
	var cands []*node
	for _, n := range g.nodes {
		if n.healthy.Load() && !tried[n] {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		for _, n := range g.nodes {
			if !tried[n] {
				cands = append(cands, n)
			}
		}
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	g.pickMu.Lock()
	i := g.rng.Intn(len(cands))
	j := g.rng.Intn(len(cands) - 1)
	g.pickMu.Unlock()
	if j >= i {
		j++
	}
	a, b := cands[i], cands[j]
	if b.effectiveLoad() < a.effectiveLoad() {
		return b
	}
	return a
}

// upstream is one attempt's outcome.
type upstream struct {
	node *node
	res  libei.ForwardResult
	err  error
}

// retryable reports whether the outcome should trigger failover: the node
// never produced an HTTP answer, or it answered 5xx. Admission verdicts
// (4xx, notably 429/408) are surfaced, not retried.
func (u upstream) retryable() bool {
	return u.err != nil || u.res.Status >= 500
}

// attempt proxies the request to one node, tracking its in-flight count
// and per-node counters.
func (g *Gateway) attempt(ctx context.Context, n *node, uri string) upstream {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	res, err := n.client.Forward(ctx, uri)
	if err != nil {
		if ctx.Err() == nil {
			// Real transport failure, not a hedge-loser cancellation.
			n.fails.Add(1)
		}
		return upstream{node: n, err: err}
	}
	if res.Status >= 500 {
		n.fails.Add(1)
	} else {
		n.routed.Add(1)
	}
	return upstream{node: n, res: res}
}

// do routes one request with failover and optional hedging: launch on a
// picked node; relaunch on a different node for each retryable outcome
// while budget remains (clearing the tried set for a fresh pass once
// every node has been attempted); additionally clone to a second node
// when the hedge timer fires first. The first non-retryable outcome wins.
func (g *Gateway) do(ctx context.Context, uri string) upstream {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tried := make(map[*node]bool, len(g.nodes))
	results := make(chan upstream, g.cfg.Retries+2)
	pending := 0
	launch := func() bool {
		n := g.pick(tried)
		if n == nil && len(tried) > 0 {
			// Every distinct healthy node has been tried; spend remaining
			// budget on a fresh pass — transient link failures recover
			// between attempts.
			clear(tried)
			n = g.pick(tried)
		}
		if n == nil {
			return false
		}
		tried[n] = true
		pending++
		go func() { results <- g.attempt(ctx, n, uri) }()
		return true
	}
	if !launch() {
		// Unreachable with New's non-empty node guarantee (pick falls back
		// to unhealthy nodes), but a closed loop beats a hung select.
		return upstream{err: errors.New("gateway: no node to try")}
	}
	var hedge <-chan time.Time
	if g.cfg.Hedge > 0 && len(g.nodes) > 1 {
		t := time.NewTimer(g.cfg.Hedge)
		defer t.Stop()
		hedge = t.C
	}
	budget := g.cfg.Retries
	var last upstream
	for {
		select {
		case u := <-results:
			pending--
			if !u.retryable() || ctx.Err() != nil {
				// Done — or the caller is gone, which no relaunch can fix.
				return u
			}
			last = u
			if budget > 0 && launch() {
				budget--
				g.met.retried.Add(1)
				continue
			}
			if pending > 0 {
				// A hedge sibling is still in flight; it may yet answer.
				continue
			}
			return last
		case <-hedge:
			hedge = nil
			if launch() {
				g.met.hedged.Add(1)
			}
		case <-ctx.Done():
			return upstream{err: ctx.Err()}
		}
	}
}

// envelope mirrors libei's uniform JSON response wrapper so gateway-origin
// responses look like node responses to clients.
type envelope struct {
	OK     bool   `json:"ok"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, env envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(env)
}

// cacheable reports whether a path's responses may be cached: only
// serving/infer, which is a pure function of its byte-identical query
// (other algorithms read live sensor data).
func cacheable(path string) bool {
	return path == "/ei_algorithms/serving/infer"
}

// ServeHTTP implements http.Handler: /gw_metrics locally, everything else
// proxied to the fleet.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, envelope{OK: false, Error: "only GET is supported"})
		return
	}
	if r.URL.Path == "/gw_metrics" {
		writeJSON(w, http.StatusOK, envelope{OK: true, Result: g.Metrics()})
		return
	}
	// Fleet-wide admission control: shed at the front door instead of
	// letting the request time out deep in some node's queue.
	cur := g.inflight.Add(1)
	defer g.inflight.Add(-1)
	if g.cfg.MaxInflight > 0 && cur > int64(g.cfg.MaxInflight) {
		g.met.shed.Add(1)
		writeJSON(w, http.StatusTooManyRequests, envelope{
			OK:    false,
			Error: fmt.Sprintf("gateway: fleet saturated (%d in flight, cap %d)", cur-1, g.cfg.MaxInflight),
		})
		return
	}
	uri := r.URL.RequestURI()
	if g.cache != nil && cacheable(r.URL.Path) {
		if ent, ok := g.cache.get(uri); ok {
			w.Header().Set("Content-Type", ent.contentType)
			w.Header().Set("X-Gateway-Cache", "hit")
			w.WriteHeader(ent.status)
			_, _ = w.Write(ent.body)
			return
		}
	}
	u := g.do(r.Context(), uri)
	if u.err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, envelope{
			OK: false, Error: fmt.Sprintf("gateway: all attempts failed: %v", u.err),
		})
		return
	}
	g.met.routed.Add(1)
	switch u.res.Status {
	case http.StatusTooManyRequests:
		g.met.upstreamOverload.Add(1)
	case http.StatusRequestTimeout:
		g.met.upstreamDeadline.Add(1)
	}
	if g.cache != nil && u.res.Status == http.StatusOK && cacheable(r.URL.Path) {
		g.cache.put(uri, cachedResponse{
			status: u.res.Status, contentType: u.res.ContentType, body: u.res.Body,
		})
	}
	if u.res.ContentType != "" {
		w.Header().Set("Content-Type", u.res.ContentType)
	}
	w.Header().Set("X-Gateway-Node", u.node.url)
	w.WriteHeader(u.res.Status)
	_, _ = w.Write(u.res.Body)
}
