package gateway

import (
	"sync/atomic"
	"time"
)

// breaker is one node's circuit breaker. The health probe loop notices a
// dead node within HealthTimeout; the breaker reacts on the request path
// itself, within BreakerThreshold consecutive failures, so a node that
// heartbeats fine but fails its proxied requests (a partitioned data
// path, a wedged serving engine) stops eating retry budget immediately.
//
// States, all transitions lock-free:
//
//	closed    → normal routing; consecutive request failures are counted,
//	            and a success resets the count.
//	open      → tripped at BreakerThreshold consecutive failures; every
//	            admit is refused until BreakerCooldown elapses.
//	half-open → after cooldown one probe request is admitted (CAS on the
//	            probe slot); success closes the breaker, failure re-opens
//	            it for another cooldown.
type breaker struct {
	threshold int           // consecutive failures to trip; <=0 disables
	cooldown  time.Duration // open → half-open delay

	consec    atomic.Int64
	openUntil atomic.Int64 // unixnano the open state lapses; 0 = closed
	probing   atomic.Bool  // half-open probe slot
	trips     atomic.Uint64
}

// breakerDisabled, breakerClosed, ... name the states in /gw_metrics.
const (
	breakerDisabled = ""
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half_open"
)

// available reports whether the node is worth considering as a routing
// candidate: closed, or cooled down enough that a half-open probe could
// go. It claims nothing — admit does the probe-slot CAS once the node is
// actually chosen.
func (b *breaker) available(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	until := b.openUntil.Load()
	return until == 0 || now.UnixNano() >= until
}

// admit decides whether a chosen node may receive this request. In the
// half-open window it claims the single probe slot; a second concurrent
// request is refused until the probe reports back.
func (b *breaker) admit(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	until := b.openUntil.Load()
	if until == 0 {
		return true
	}
	if now.UnixNano() < until {
		return false
	}
	return b.probing.CompareAndSwap(false, true)
}

// success closes the breaker from any state.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.consec.Store(0)
	b.openUntil.Store(0)
	b.probing.Store(false)
}

// failure records one request failure: a half-open probe failure re-opens
// immediately, a closed-state failure trips at the threshold.
func (b *breaker) failure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	if b.openUntil.Load() != 0 {
		b.openUntil.Store(now.Add(b.cooldown).UnixNano())
		b.probing.Store(false)
		return
	}
	if b.consec.Add(1) >= int64(b.threshold) {
		b.consec.Store(0)
		b.openUntil.Store(now.Add(b.cooldown).UnixNano())
		b.trips.Add(1)
	}
}

// state names the current state for metrics.
func (b *breaker) state(now time.Time) string {
	if b.threshold <= 0 {
		return breakerDisabled
	}
	until := b.openUntil.Load()
	switch {
	case until == 0:
		return breakerClosed
	case now.UnixNano() < until:
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}
