package gateway_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/gateway"
)

// stubNode fakes just enough of a libei node for routing tests: /ei_status
// (health probe), /ei_metrics (queue-depth poll), and serving/infer with a
// pluggable handler.
type stubNode struct {
	id         string
	ts         *httptest.Server
	down       atomic.Bool  // true → /ei_status answers 500
	queueDepth atomic.Int64 // reported at /ei_metrics
	inferCalls atomic.Int64

	mu        sync.Mutex
	infer     http.HandlerFunc
	autopilot string // raw JSON for /ei_metrics "autopilot"; empty = none
}

// setAutopilot injects an autopilot status blob into /ei_metrics the way
// a degraded node would report it.
func (s *stubNode) setAutopilot(tier string, tierIndex int, offloading bool) {
	s.mu.Lock()
	s.autopilot = fmt.Sprintf(`{"alias":"detector","tier":%q,"tier_index":%d,"offloading":%t}`,
		tier, tierIndex, offloading)
	s.mu.Unlock()
}

func newStub(t *testing.T, id string, infer http.HandlerFunc) *stubNode {
	t.Helper()
	s := &stubNode{id: id, infer: infer}
	s.ts = httptest.NewServer(http.HandlerFunc(s.handle))
	t.Cleanup(s.ts.Close)
	return s
}

func okInfer(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"result":{"model":%q,"class":2,"confidence":0.9}}`, r.URL.Query().Get("model"))
}

func (s *stubNode) handle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case "/ei_status":
		if s.down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"ok":false,"error":"stub down"}`)
			return
		}
		fmt.Fprintf(w, `{"ok":true,"result":{"node_id":%q}}`, s.id)
	case "/ei_metrics":
		s.mu.Lock()
		ap := s.autopilot
		s.mu.Unlock()
		if ap != "" {
			ap = `,"autopilot":` + ap
		}
		fmt.Fprintf(w, `{"ok":true,"result":{"node_id":%q,"queue_depth":%d,"queue_cap":64%s}}`,
			s.id, s.queueDepth.Load(), ap)
	case "/ei_algorithms/serving/infer":
		s.inferCalls.Add(1)
		s.mu.Lock()
		fn := s.infer
		s.mu.Unlock()
		fn(w, r)
	default:
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"ok":false,"error":"not found"}`)
	}
}

// startGateway builds a started gateway over the stubs and serves it.
func startGateway(t *testing.T, cfg gateway.Config, stubs ...*stubNode) (*gateway.Gateway, *httptest.Server) {
	t.Helper()
	for _, s := range stubs {
		cfg.Nodes = append(cfg.Nodes, s.ts.URL)
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	t.Cleanup(gw.Close)
	front := httptest.NewServer(gw)
	t.Cleanup(front.Close)
	return gw, front
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

const inferURI = "/ei_algorithms/serving/infer?model=ident&input=0,0,1,0"

func TestRoutesAcrossFleet(t *testing.T) {
	a := newStub(t, "a", okInfer)
	b := newStub(t, "b", okInfer)
	c := newStub(t, "c", okInfer)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, a, b, c)

	for i := 0; i < 30; i++ {
		status, body := get(t, front.URL+inferURI)
		if status != http.StatusOK || !strings.Contains(body, `"class":2`) {
			t.Fatalf("request %d: status %d body %s", i, status, body)
		}
	}
	for _, s := range []*stubNode{a, b, c} {
		if s.inferCalls.Load() == 0 {
			t.Errorf("node %s received no traffic", s.id)
		}
	}
	m := gw.Metrics()
	if m.Routed != 30 || m.Retried != 0 || m.Shed != 0 || m.HealthyNodes != 3 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestP2CPrefersLessLoadedNode(t *testing.T) {
	loaded := newStub(t, "loaded", okInfer)
	idle := newStub(t, "idle", okInfer)
	loaded.queueDepth.Store(50)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, loaded, idle)
	gw.CheckHealth() // pick up the queue depths

	for i := 0; i < 40; i++ {
		if status, body := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("status %d body %s", status, body)
		}
	}
	// With two nodes, power-of-two-choices always compares both, so the
	// queue-depth-50 node must never win against the idle one.
	if n := loaded.inferCalls.Load(); n != 0 {
		t.Errorf("loaded node took %d requests, want 0", n)
	}
	if n := idle.inferCalls.Load(); n != 40 {
		t.Errorf("idle node took %d requests, want 40", n)
	}
}

func TestFleetWideShedWhenEveryNodeReturns429(t *testing.T) {
	overloaded := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"ok":false,"error":"serving: overloaded"}`)
	}
	a := newStub(t, "a", overloaded)
	b := newStub(t, "b", overloaded)
	c := newStub(t, "c", overloaded)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, a, b, c)

	const n = 10
	for i := 0; i < n; i++ {
		status, body := get(t, front.URL+inferURI)
		if status != http.StatusTooManyRequests || !strings.Contains(body, "overloaded") {
			t.Fatalf("status %d body %s, want 429 passed through", status, body)
		}
	}
	m := gw.Metrics()
	if m.UpstreamOverloaded != n {
		t.Errorf("upstream_overloaded = %d, want %d", m.UpstreamOverloaded, n)
	}
	// A full queue is backpressure, not a node failure: no failover churn.
	if m.Retried != 0 {
		t.Errorf("retried = %d, want 0 (429 must not trigger failover)", m.Retried)
	}
}

func TestMaxInflightShedsAtTheFrontDoor(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := newStub(t, "slow", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
		okInfer(w, r)
	})
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour, MaxInflight: 1}, blocking)

	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(front.URL + inferURI)
		if err != nil {
			done <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("first request: status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	<-entered // the slot is occupied
	status, body := get(t, front.URL+inferURI)
	if status != http.StatusTooManyRequests || !strings.Contains(body, "fleet saturated") {
		t.Errorf("second request: status %d body %s, want 429 shed", status, body)
	}
	close(release)
	if err := <-done; err != nil {
		t.Error(err)
	}
	if m := gw.Metrics(); m.Shed != 1 {
		t.Errorf("shed = %d, want 1", m.Shed)
	}
}

func TestResponseCache(t *testing.T) {
	s := newStub(t, "a", okInfer)
	gw, front := startGateway(t, gateway.Config{
		HealthInterval: time.Hour, CacheSize: 8, CacheTTL: time.Minute,
	}, s)

	if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	resp, err := http.Get(front.URL + inferURI)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Gateway-Cache") != "hit" {
		t.Errorf("second request: status %d cache header %q, want hit", resp.StatusCode, resp.Header.Get("X-Gateway-Cache"))
	}
	if n := s.inferCalls.Load(); n != 1 {
		t.Errorf("upstream saw %d calls, want 1 (second served from cache)", n)
	}
	// A different payload is a different key.
	if status, _ := get(t, front.URL+"/ei_algorithms/serving/infer?model=ident&input=1,0,0,0"); status != http.StatusOK {
		t.Fatal("distinct payload failed")
	}
	if n := s.inferCalls.Load(); n != 2 {
		t.Errorf("upstream saw %d calls, want 2", n)
	}
	m := gw.Metrics()
	if m.CacheHits != 1 || m.CacheEntries != 2 {
		t.Errorf("cache hits %d entries %d, want 1 and 2", m.CacheHits, m.CacheEntries)
	}
}

func TestHedgeCutsTailLatency(t *testing.T) {
	slow := newStub(t, "slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(400 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		okInfer(w, r)
	})
	fast := newStub(t, "fast", okInfer)
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour, Hedge: 20 * time.Millisecond}, slow, fast)

	for i := 0; i < 8; i++ {
		start := time.Now()
		status, _ := get(t, front.URL+inferURI)
		elapsed := time.Since(start)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		// Picked fast: ~instant. Picked slow: the hedge fires at 20ms and
		// the fast node answers — far below the slow node's 400ms.
		if elapsed > 300*time.Millisecond {
			t.Errorf("request %d took %v; hedging did not kick in", i, elapsed)
		}
	}
	// Over 8 requests the slow node is picked first at least once with
	// probability 1 - 2^-8, so the hedge counter must have moved.
	if m := gw.Metrics(); m.Hedged == 0 {
		t.Error("hedged = 0 over 8 requests against a slow node")
	}
}

func TestFlappingNodeIsEjectedThenRecovers(t *testing.T) {
	steady := newStub(t, "steady", okInfer)
	flappy := newStub(t, "flappy", okInfer)
	gw, front := startGateway(t, gateway.Config{
		HealthInterval: time.Hour, // probes are driven manually below
		HealthTimeout:  50 * time.Millisecond,
	}, steady, flappy)
	if m := gw.Metrics(); m.HealthyNodes != 2 {
		t.Fatalf("healthy nodes at start = %d, want 2", m.HealthyNodes)
	}

	// One missed probe inside the timeout window is a flap, not a death.
	flappy.down.Store(true)
	gw.CheckHealth()
	if m := gw.Metrics(); m.HealthyNodes != 2 {
		t.Errorf("healthy nodes after one missed probe = %d, want 2 (flap tolerance)", m.HealthyNodes)
	}

	// Silence beyond the failure-detector timeout ejects it.
	time.Sleep(60 * time.Millisecond)
	gw.CheckHealth()
	if m := gw.Metrics(); m.HealthyNodes != 1 {
		t.Fatalf("healthy nodes after timeout = %d, want 1", m.HealthyNodes)
	}
	before := flappy.inferCalls.Load()
	for i := 0; i < 10; i++ {
		if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
			t.Fatalf("request %d failed with the steady node up", i)
		}
	}
	if n := flappy.inferCalls.Load(); n != before {
		t.Errorf("ejected node received %d requests", n-before)
	}

	// Recovery: one good probe brings it straight back.
	flappy.down.Store(false)
	gw.CheckHealth()
	if m := gw.Metrics(); m.HealthyNodes != 2 {
		t.Errorf("healthy nodes after recovery = %d, want 2", m.HealthyNodes)
	}
}

func TestDeadFleetIs502(t *testing.T) {
	dead := newStub(t, "dead", okInfer)
	dead.ts.Close() // nothing listening: every probe and attempt is a transport error
	gw, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, dead)
	status, body := get(t, front.URL+inferURI)
	if status != http.StatusBadGateway || !strings.Contains(body, "all attempts failed") {
		t.Errorf("status %d body %s, want 502", status, body)
	}
	if m := gw.Metrics(); m.Failed != 1 {
		t.Errorf("failed = %d, want 1", m.Failed)
	}
}

func TestGwMetricsEndpointShape(t *testing.T) {
	a := newStub(t, "a", okInfer)
	_, front := startGateway(t, gateway.Config{HealthInterval: time.Hour}, a)
	if status, _ := get(t, front.URL+inferURI); status != http.StatusOK {
		t.Fatal("warmup request failed")
	}
	status, body := get(t, front.URL+"/gw_metrics")
	if status != http.StatusOK {
		t.Fatalf("gw_metrics status %d", status)
	}
	var env struct {
		OK     bool            `json:"ok"`
		Result gateway.Metrics `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	m := env.Result
	if !env.OK || len(m.Nodes) != 1 || m.Routed != 1 {
		t.Errorf("gw_metrics = %s", body)
	}
	n := m.Nodes[0]
	if n.NodeID != "a" || !n.Healthy || n.Routed != 1 || n.Requests == 0 || n.LastHeartbeatMSAgo < 0 {
		t.Errorf("node metrics = %+v", n)
	}
	for _, field := range []string{`"retried"`, `"shed"`, `"hedged"`, `"upstream_overloaded"`, `"cache_hits"`} {
		if !strings.Contains(body, field) {
			t.Errorf("gw_metrics missing %s field: %s", field, body)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := gateway.New(gateway.Config{}); err == nil {
		t.Error("no nodes: want error")
	}
	if _, err := gateway.New(gateway.Config{Nodes: []string{"http://x", "http://x/"}}); err == nil {
		t.Error("duplicate node: want error")
	}
}
