package serving

import "sync"

// schedQueue replaces the pipeline's FIFO channel with a tenant-aware
// scheduled queue: strict priority tiers (a higher-priority tenant's
// request is always taken first) with smooth weighted round-robin among
// the tenants sharing a tier. The total queued count stays bounded by
// cap, preserving the engine's shed-don't-buffer admission contract.
//
// Channel select semantics are preserved through a token channel: every
// push deposits one token in ready after the request is queued, so a
// dispatcher can select on ready/quit/timer exactly as it did on the raw
// request channel, then call take() to receive the scheduler's pick. The
// invariant is tokens ≤ queued requests — a received token always finds
// a request (only the shutdown sweep drains requests without tokens, and
// it runs strictly after the dispatcher stops selecting).
type schedQueue struct {
	ready chan struct{}

	mu    sync.Mutex
	size  int
	limit int
	tiers []*schedTier
}

// schedTier is one strict-priority level: the tenant FIFOs sharing it and
// their smooth-WRR state.
type schedTier struct {
	priority int
	fifos    []*tenantFIFO
}

// tenantFIFO is one tenant's backlog within a tier, plus its round-robin
// credit. reqs is a head-indexed slice compacted when the head grows
// past half the backing array.
type tenantFIFO struct {
	ts     *tenantState
	reqs   []*request
	head   int
	credit int
}

func (f *tenantFIFO) len() int { return len(f.reqs) - f.head }

func (f *tenantFIFO) push(r *request) { f.reqs = append(f.reqs, r) }

func (f *tenantFIFO) pop() *request {
	r := f.reqs[f.head]
	f.reqs[f.head] = nil
	f.head++
	if f.head > len(f.reqs)/2 && f.head > 32 {
		n := copy(f.reqs, f.reqs[f.head:])
		f.reqs = f.reqs[:n]
		f.head = 0
	}
	return r
}

// newSchedQueue builds the queue with one FIFO per declared tenant,
// grouped into priority tiers ordered highest first. The table's order
// (priority desc, name asc) makes tier construction a single walk.
func newSchedQueue(limit int, tenants *tenantTable) *schedQueue {
	q := &schedQueue{ready: make(chan struct{}, limit), limit: limit}
	for _, ts := range tenants.all {
		if n := len(q.tiers); n == 0 || q.tiers[n-1].priority != ts.cfg.Priority {
			q.tiers = append(q.tiers, &schedTier{priority: ts.cfg.Priority})
		}
		tier := q.tiers[len(q.tiers)-1]
		tier.fifos = append(tier.fifos, &tenantFIFO{ts: ts})
	}
	return q
}

// push queues a request under its tenant; false means the queue is at
// capacity and the request must be shed.
func (q *schedQueue) push(r *request) bool {
	q.mu.Lock()
	if q.size >= q.limit {
		q.mu.Unlock()
		return false
	}
	q.size++
	for _, tier := range q.tiers {
		if tier.priority != r.tenant.cfg.Priority {
			continue
		}
		for _, f := range tier.fifos {
			if f.ts == r.tenant {
				f.push(r)
				q.mu.Unlock()
				q.ready <- struct{}{} // never blocks: tokens ≤ size ≤ limit
				return true
			}
		}
	}
	// Unreachable while every request resolves to a declared tenant
	// state; guard anyway so a future caller bug sheds instead of hangs.
	q.size--
	q.mu.Unlock()
	return false
}

// take returns the scheduler's next pick. It must be called exactly once
// per token received from ready: the highest-priority tier with any
// backlog wins outright, and within that tier tenants are served by
// smooth weighted round-robin — each candidate's credit grows by its
// weight, the highest credit is served and pays back the round's total —
// which interleaves proportionally (A A B for weights 2:1) instead of
// draining one tenant's burst first.
func (q *schedQueue) take() *request {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, tier := range q.tiers {
		var best *tenantFIFO
		total := 0
		for _, f := range tier.fifos {
			if f.len() == 0 {
				continue
			}
			f.credit += f.ts.cfg.Weight
			total += f.ts.cfg.Weight
			if best == nil || f.credit > best.credit {
				best = f
			}
		}
		if best == nil {
			continue
		}
		best.credit -= total
		q.size--
		return best.pop()
	}
	return nil
}

// len reports the queued request count.
func (q *schedQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// drainAll empties every FIFO, returning the stranded requests so the
// shutdown sweep can answer them. Tokens left in ready are abandoned —
// the dispatcher has already stopped selecting on it.
func (q *schedQueue) drainAll() []*request {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*request
	for _, tier := range q.tiers {
		for _, f := range tier.fifos {
			for f.len() > 0 {
				out = append(out, f.pop())
			}
			f.credit = 0
		}
	}
	q.size = 0
	return out
}
