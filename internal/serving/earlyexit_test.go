package serving

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// rnnServingModel is a small recurrent stack whose compiled plan supports
// early exit. Untrained logits hover near uniform confidence (1/classes),
// so a threshold just above it splits exits across steps and one well
// below it retires everything at step 1.
func rnnServingModel(name string, T, D, H, classes int) *nn.Model {
	m := nn.MustModel(name, []int{T * D}, []nn.LayerSpec{
		{Type: "fastgrnn", RNN: &nn.RNNSpec{T: T, D: D, H: H}},
		{Type: "dense", In: H, Out: classes},
	})
	m.InitParams(rand.New(rand.NewSource(31)))
	return m
}

func rnnSample(width int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, width)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	return tensor.MustFrom(data, width)
}

// The serving engine surfaces early exit end to end: the knob applies to
// a live pipeline, results carry step counts, and the per-exit `exits`
// block shows up in the model stats with counts and quantiles.
func TestServingEarlyExitMetrics(t *testing.T) {
	const T = 6
	_, e := newTestEngine(t, rnnServingModel("rnn-serve", T, 4, 8, 3), Config{
		MaxBatch: 4, MaxWait: time.Millisecond, Replicas: 1, QueueDepth: 32,
	})

	// Pipeline not built yet: no threshold to report.
	if _, ok := e.ExitThresholdOf("rnn-serve"); ok {
		t.Fatal("ExitThresholdOf reported a pipeline that does not exist")
	}

	// SetExitThreshold builds the pipeline and reports capability.
	capable, err := e.SetExitThreshold("rnn-serve", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !capable {
		t.Fatal("recurrent pipeline should support early exit")
	}
	if thr, ok := e.ExitThresholdOf("rnn-serve"); !ok || thr != 0.2 {
		t.Fatalf("ExitThresholdOf = (%v, %v), want (0.2, true)", thr, ok)
	}

	for i := 0; i < 10; i++ {
		res, err := e.Infer(context.Background(), "rnn-serve", rnnSample(T*4, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSteps != T {
			t.Fatalf("result TotalSteps = %d, want %d", res.TotalSteps, T)
		}
		if res.StepsUsed != 1 {
			t.Fatalf("threshold 0.2 over 3 classes: StepsUsed = %d, want 1", res.StepsUsed)
		}
	}

	st := e.Stats()
	if len(st) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s := st[0]
	if !s.EarlyExit || s.ExitThreshold != 0.2 || s.TotalSteps != T {
		t.Fatalf("exit block: early_exit=%v thr=%v total=%d, want true/0.2/%d", s.EarlyExit, s.ExitThreshold, s.TotalSteps, T)
	}
	if s.MeanStepsUsed != 1 {
		t.Fatalf("mean_steps_used = %v, want 1", s.MeanStepsUsed)
	}
	if len(s.Exits) != 1 || s.Exits[0].Step != 1 || s.Exits[0].Count != 10 {
		t.Fatalf("exits = %+v, want one head at step 1 with count 10", s.Exits)
	}
	if s.Exits[0].P95MS <= 0 {
		t.Fatalf("exit head p95 = %v, want > 0", s.Exits[0].P95MS)
	}

	// Disabling the knob sends every sample through the full window.
	if _, err := e.SetExitThreshold("rnn-serve", 0); err != nil {
		t.Fatal(err)
	}
	res, err := e.Infer(context.Background(), "rnn-serve", rnnSample(T*4, 99))
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsUsed != T {
		t.Fatalf("disabled threshold: StepsUsed = %d, want %d", res.StepsUsed, T)
	}
	if thr, ok := e.ExitThresholdOf("rnn-serve"); !ok || thr != 0 {
		t.Fatalf("disabled ExitThresholdOf = (%v, %v), want (0, true)", thr, ok)
	}
}

// The recorded threshold survives pipeline rebuilds: SetReplicas swaps in
// a fresh replica pool, and the new pool inherits the override.
func TestExitThresholdSurvivesRebuild(t *testing.T) {
	const T = 5
	_, e := newTestEngine(t, rnnServingModel("rnn-rebuild", T, 3, 8, 3), Config{
		MaxBatch: 2, MaxWait: time.Millisecond, Replicas: 1, QueueDepth: 16,
	})
	if _, err := e.SetExitThreshold("rnn-rebuild", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := e.SetReplicas("rnn-rebuild", 2); err != nil {
		t.Fatal(err)
	}
	if thr, ok := e.ExitThresholdOf("rnn-rebuild"); !ok || thr != 0.25 {
		t.Fatalf("threshold after rebuild = (%v, %v), want (0.25, true)", thr, ok)
	}
	res, err := e.Infer(context.Background(), "rnn-rebuild", rnnSample(T*3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsUsed != 1 {
		t.Fatalf("rebuilt pool StepsUsed = %d, want 1 (knob lost in rebuild)", res.StepsUsed)
	}
}

// Engine-wide Config.ExitThreshold seeds every capable pipeline without
// any explicit SetExitThreshold call, and feed-forward pipelines ignore
// it entirely.
func TestConfigExitThresholdSeedsPipelines(t *testing.T) {
	const T = 4
	mgr, e := newTestEngine(t, rnnServingModel("rnn-cfg", T, 3, 8, 3), Config{
		MaxBatch: 2, MaxWait: time.Millisecond, Replicas: 1, QueueDepth: 16,
		ExitThreshold: 0.3,
	})
	if err := mgr.Load(denseModel("mlp-cfg", 6, 8, 3), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Infer(context.Background(), "rnn-cfg", rnnSample(T*3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsUsed != 1 {
		t.Fatalf("config-seeded threshold: StepsUsed = %d, want 1", res.StepsUsed)
	}
	res, err = e.Infer(context.Background(), "mlp-cfg", rnnSample(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsUsed != 0 || res.TotalSteps != 0 {
		t.Fatalf("feed-forward result carries steps: %d/%d, want 0/0", res.StepsUsed, res.TotalSteps)
	}
	if capable, err := e.SetExitThreshold("mlp-cfg", 0.5); err != nil || capable {
		t.Fatalf("feed-forward SetExitThreshold = (%v, %v), want (false, nil)", capable, err)
	}
	for _, s := range e.Stats() {
		if s.Model == "mlp-cfg" && s.EarlyExit {
			t.Fatal("feed-forward pipeline advertises early exit")
		}
	}
}
