package serving

import (
	"context"
	"math"
	"testing"
	"time"

	"openei/internal/obs"
)

// TestPipelineStageSpans drives one traced request through the engine and
// asserts the pipeline decomposes it into queue-wait, batch-wait, and
// exec spans under the caller's root — and that the three stage durations
// sum to the request's wall time (the stamps partition enqueue→done).
func TestPipelineStageSpans(t *testing.T) {
	const classes = 8
	_, e := newTestEngine(t, identModel(classes), Config{Replicas: 1, MaxBatch: 4})
	tr := obs.NewTracer(obs.Config{SampleRate: 1, Source: "test-node"})

	tb := tr.Begin(obs.TraceContext{})
	root := tr.NextID()
	tb.SetRoot(root)
	ctx := obs.NewContext(context.Background(), tb)
	start := time.Now()
	if _, err := e.Infer(ctx, "ident", oneHot(classes, 3)); err != nil {
		t.Fatal(err)
	}
	total := time.Since(start)
	tb.AddWithID(root, obs.StageInfer, 0, start, total)
	tr.Finish(tb, false, total)

	spans, ok := tr.Trace(tb.ID())
	if !ok {
		t.Fatal("sampled trace not stored")
	}
	var stageSum float64
	seen := map[string]bool{}
	for _, sp := range spans {
		switch sp.Stage {
		case obs.StageQueueWait, obs.StageBatchWait, obs.StageExec:
			seen[sp.Stage] = true
			stageSum += sp.DurationMS
			if sp.ParentID != obs.IDString(root) {
				t.Fatalf("%s span parented to %s, want root %s", sp.Stage, sp.ParentID, obs.IDString(root))
			}
		}
	}
	for _, stage := range []string{obs.StageQueueWait, obs.StageBatchWait, obs.StageExec} {
		if !seen[stage] {
			t.Fatalf("missing %s span; got %+v", stage, spans)
		}
	}
	totalMS := float64(total) / 1e6
	if stageSum > totalMS+0.5 {
		t.Fatalf("stage sum %.3fms exceeds wall %.3fms", stageSum, totalMS)
	}
	// The three stamps partition enqueue→done, so the stage sum accounts
	// for nearly all of the wall time (anything missing is pre-queue work
	// in Infer itself: tensor prep, submit).
	if stageSum < totalMS/2 {
		t.Fatalf("stage sum %.3fms explains under half of wall %.3fms", stageSum, totalMS)
	}
	// Exec attrs identify the model and batch.
	for _, sp := range spans {
		if sp.Stage == obs.StageExec {
			if sp.Attrs["model"] != "ident" {
				t.Fatalf("exec attrs = %v", sp.Attrs)
			}
		}
	}
}

// TestStageHistogramsInStats asserts the permanent per-model and
// per-tenant stage histograms appear in the JSON stats and the raw
// histogram exports once requests complete.
func TestStageHistogramsInStats(t *testing.T) {
	const classes = 8
	_, e := newTestEngine(t, identModel(classes), Config{Replicas: 1, MaxBatch: 4})
	for i := 0; i < 5; i++ {
		if _, err := e.Infer(context.Background(), "ident", oneHot(classes, i%classes)); err != nil {
			t.Fatal(err)
		}
	}
	var ms *ModelStats
	for _, s := range e.Stats() {
		if s.Model == "ident" {
			ms = &s
			break
		}
	}
	if ms == nil {
		t.Fatal("no stats for ident")
	}
	for name, sl := range map[string]*StageLatency{
		"queue_wait": ms.QueueWait, "batch_wait": ms.BatchWait, "exec": ms.Exec,
	} {
		if sl == nil {
			t.Fatalf("model stats missing %s stage latency", name)
		}
		if math.IsNaN(sl.P95MS) || sl.P95MS < 0 {
			t.Fatalf("%s p95 = %v", name, sl.P95MS)
		}
	}
	if ms.Exec.AvgMS <= 0 {
		t.Fatalf("exec avg = %v, want > 0", ms.Exec.AvgMS)
	}
	var ts *TenantStats
	for _, s := range e.TenantStats() {
		if s.Served > 0 {
			ts = &s
			break
		}
	}
	if ts == nil || ts.Exec == nil || ts.QueueWait == nil || ts.BatchWait == nil {
		t.Fatalf("tenant stage latencies missing: %+v", ts)
	}
	// Raw exports: per-model latency + 3 stages, per-tenant the same.
	stages := map[string]int{}
	for _, ex := range e.HistogramExports() {
		stages[ex.Label+"/"+ex.Stage]++
	}
	for _, want := range []string{
		"model/latency", "model/queue_wait", "model/batch_wait", "model/exec",
		"tenant/latency", "tenant/queue_wait", "tenant/batch_wait", "tenant/exec",
	} {
		if stages[want] == 0 {
			t.Fatalf("histogram exports missing %s; got %v", want, stages)
		}
	}
}

// TestUntracedRequestUnaffected pins the no-tracer path: a context with
// no trace buffer serves normally and records no spans anywhere.
func TestUntracedRequestUnaffected(t *testing.T) {
	const classes = 4
	_, e := newTestEngine(t, identModel(classes), Config{Replicas: 1})
	res, err := e.Infer(context.Background(), "ident", oneHot(classes, 2))
	if err != nil || res.Class != 2 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}
