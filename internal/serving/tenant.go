package serving

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Multi-tenant admission and accounting. Every request belongs to a
// tenant (an application vertical: safety_video, smart_home, …); the
// tenant's class decides three things before a kernel ever runs:
//
//   - Admission: a per-tenant token bucket (RatePerSec/Burst) sheds a hot
//     client's excess at the front door with ErrOverloaded, so one tenant
//     cannot monopolize the shared queue no matter how fast it submits.
//   - Priority: queues are drained strictly highest-Priority-first at
//     dispatch time — a safety_video request never waits behind a backlog
//     of smart_home telemetry.
//   - Weight: within one priority tier, tenants share dispatch slots by
//     smooth weighted round-robin, so equal-priority tenants degrade
//     proportionally instead of FIFO-starving each other.
//
// Requests carry their tenant through the context (WithTenant); requests
// without one are accounted to the engine's default tenant.

// DefaultTenantName is the class requests without an explicit tenant are
// accounted to when Config.DefaultTenant is unset.
const DefaultTenantName = "default"

// TenantConfig declares one tenant's admission and scheduling class.
type TenantConfig struct {
	// Name is the tenant identifier requests carry (WithTenant / the
	// libei tenant parameter).
	Name string
	// Priority orders strict dispatch tiers: a queued request of a
	// higher-priority tenant is always dispatched before any
	// lower-priority one. Equal priorities share a tier.
	Priority int
	// Weight is the tenant's share of dispatch slots within its priority
	// tier (smooth weighted round-robin); ≤0 means 1.
	Weight int
	// RatePerSec is the sustained admission rate of the tenant's token
	// bucket; ≤0 means unlimited (no bucket).
	RatePerSec float64
	// Burst is the bucket depth — how many requests above the sustained
	// rate a bursty arrival may land before shedding starts; ≤0 means
	// max(1, ceil(RatePerSec)).
	Burst int
}

func (t TenantConfig) withDefaults() TenantConfig {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Burst <= 0 {
		t.Burst = int(t.RatePerSec + 0.999)
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return t
}

// tenantKey is the context key carrying the tenant name.
type tenantKey struct{}

// WithTenant returns a context whose requests are admitted and scheduled
// as the named tenant. libei's infer route calls this from the tenant
// request parameter; in-process callers can set it directly.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant name from a context ("" when unset).
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// tokenBucket is a mutex-guarded continuous-refill token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow consumes one token if available, refilling for the time elapsed
// since the previous call.
func (b *tokenBucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenantState is one tenant's runtime: its class, its admission bucket
// (nil when unlimited), and its engine-wide counters.
type tenantState struct {
	cfg    TenantConfig
	bucket *tokenBucket
	met    tenantMetrics
}

// tenantTable resolves tenant names to states. It is built once at
// NewEngine and read-only afterwards, so lookups need no lock.
type tenantTable struct {
	byName map[string]*tenantState
	def    *tenantState
	all    []*tenantState // stable order: priority desc, then name
}

func newTenantTable(cfgs []TenantConfig, defaultName string) *tenantTable {
	if defaultName == "" {
		defaultName = DefaultTenantName
	}
	t := &tenantTable{byName: map[string]*tenantState{}}
	for _, c := range cfgs {
		c = c.withDefaults()
		if c.Name == "" || t.byName[c.Name] != nil {
			continue
		}
		ts := &tenantState{cfg: c}
		if c.RatePerSec > 0 {
			ts.bucket = newTokenBucket(c.RatePerSec, c.Burst)
		}
		t.byName[c.Name] = ts
	}
	if t.byName[defaultName] == nil {
		// The catch-all class: no rate limit, lowest-ish standing unless
		// the operator declared it explicitly.
		t.byName[defaultName] = &tenantState{cfg: TenantConfig{Name: defaultName, Weight: 1}}
	}
	t.def = t.byName[defaultName]
	for _, ts := range t.byName {
		t.all = append(t.all, ts)
	}
	sort.Slice(t.all, func(i, j int) bool {
		if t.all[i].cfg.Priority != t.all[j].cfg.Priority {
			return t.all[i].cfg.Priority > t.all[j].cfg.Priority
		}
		return t.all[i].cfg.Name < t.all[j].cfg.Name
	})
	return t
}

// resolve maps a request's tenant name to its state; unknown or empty
// names land on the default class.
func (t *tenantTable) resolve(name string) *tenantState {
	if ts, ok := t.byName[name]; ok {
		return ts
	}
	return t.def
}

// tenantMetrics is one tenant's engine-wide counter set (atomics, same
// lock-free discipline as modelMetrics).
type tenantMetrics struct {
	admitted  atomic.Uint64 // passed bucket + queue admission
	throttled atomic.Uint64 // shed by the token bucket
	rejected  atomic.Uint64 // shed by a full queue
	expired   atomic.Uint64 // deadline lapsed (queue or pre-execution)
	errored   atomic.Uint64 // inference errors
	served    atomic.Uint64 // successful responses
	hist      latencyHistogram

	// Per-tenant stage decomposition, the tenant-axis twin of the
	// per-model histograms in modelMetrics: where does this tenant's
	// latency go — scheduler backlog (its priority/weight at work), batch
	// assembly, or execution.
	qwHist latencyHistogram
	bwHist latencyHistogram
	exHist latencyHistogram
	qwNS   atomic.Uint64
	bwNS   atomic.Uint64
	exNS   atomic.Uint64
}

// observeStages records one served request's stage decomposition.
func (m *tenantMetrics) observeStages(qw, bw, ex time.Duration) {
	m.qwHist.Observe(qw)
	m.bwHist.Observe(bw)
	m.exHist.Observe(ex)
	m.qwNS.Add(uint64(qw))
	m.bwNS.Add(uint64(bw))
	m.exNS.Add(uint64(ex))
}

// TenantStats is the JSON-friendly per-tenant snapshot in /ei_metrics —
// the counters the chaos harness asserts SLO attainment and shed
// confinement against.
type TenantStats struct {
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	Weight   int    `json:"weight"`
	// RatePerSec and Burst echo the admission class (0 = unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`

	Admitted uint64 `json:"admitted"`
	// ShedThrottle counts requests dropped by the tenant's token bucket;
	// ShedQueue counts drops from a full model queue. Both surface to the
	// client as HTTP 429.
	ShedThrottle uint64 `json:"shed_throttle"`
	ShedQueue    uint64 `json:"shed_queue"`
	// ExpiredDeadline counts requests whose deadline lapsed before
	// execution (HTTP 408).
	ExpiredDeadline uint64 `json:"expired_deadline"`
	Errors          uint64 `json:"errors"`
	Served          uint64 `json:"served"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`

	// Stage decomposition of this tenant's served requests (present once
	// any have been served), mirroring the per-model blocks.
	QueueWait *StageLatency `json:"queue_wait_ms,omitempty"`
	BatchWait *StageLatency `json:"batch_wait_ms,omitempty"`
	Exec      *StageLatency `json:"exec_ms,omitempty"`
}

func (ts *tenantState) snapshot() TenantStats {
	s := TenantStats{
		Tenant:          ts.cfg.Name,
		Priority:        ts.cfg.Priority,
		Weight:          ts.cfg.Weight,
		RatePerSec:      ts.cfg.RatePerSec,
		Burst:           ts.cfg.Burst,
		Admitted:        ts.met.admitted.Load(),
		ShedThrottle:    ts.met.throttled.Load(),
		ShedQueue:       ts.met.rejected.Load(),
		ExpiredDeadline: ts.met.expired.Load(),
		Errors:          ts.met.errored.Load(),
		Served:          ts.met.served.Load(),
	}
	if s.RatePerSec <= 0 {
		s.Burst = 0
	}
	if s.Served > 0 {
		h := ts.met.hist.Snapshot()
		s.P50MS = float64(h.Quantile(0.50)) / 1e6
		s.P95MS = float64(h.Quantile(0.95)) / 1e6
		s.P99MS = float64(h.Quantile(0.99)) / 1e6
		s.QueueWait = stageLatency(&ts.met.qwHist, ts.met.qwNS.Load(), s.Served)
		s.BatchWait = stageLatency(&ts.met.bwHist, ts.met.bwNS.Load(), s.Served)
		s.Exec = stageLatency(&ts.met.exHist, ts.met.exNS.Load(), s.Served)
	}
	return s
}

// TenantStats snapshots the engine's per-tenant counters, highest
// priority first. Tenants come from Config.Tenants plus the default
// class; requests naming an undeclared tenant are accounted to the
// default.
func (e *Engine) TenantStats() []TenantStats {
	out := make([]TenantStats, len(e.tenants.all))
	for i, ts := range e.tenants.all {
		out[i] = ts.snapshot()
	}
	return out
}
