// Package serving is the node's inference serving engine: the layer that
// turns the paper's single-request libei endpoint into something that can
// absorb heavy concurrent traffic (the "millions of users" the OpenEI
// vision statement gestures at).
//
// Architecture, per model:
//
//		clients → bounded queue → micro-batcher → replica pool → responses
//
//	  - Admission control: the queue is bounded (Config.QueueDepth). When it
//	    is full the request is rejected immediately with ErrOverloaded, which
//	    libei maps to HTTP 429 — shedding load beats queueing it forever.
//	  - Micro-batching: a dispatcher coalesces up to Config.MaxBatch queued
//	    single-sample requests, waiting at most Config.MaxWait for stragglers
//	    after the first arrival, and stacks them into one batch tensor
//	    (Clipper/TF-Serving-style dynamic batching).
//	  - Replica pool: Config.Replicas private clones of the model execute
//	    batches concurrently. This deliberately bypasses the package
//	    manager's single-worker real-time scheduler: the scheduler protects a
//	    constrained accelerator, while the pool exploits spare CPU cores.
//	  - Deadlines: requests carry an optional deadline (InferWithDeadline or
//	    a context deadline). A request whose deadline passes while it waits
//	    in the queue is dropped with ErrDeadline instead of wasting a batch
//	    slot on an answer nobody is waiting for.
package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"openei/internal/obs"
	"openei/internal/parallel"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// Engine errors.
var (
	// ErrOverloaded is returned when a model's queue is full; libei maps it
	// to HTTP 429.
	ErrOverloaded = errors.New("serving: overloaded")
	// ErrDeadline is returned when a request's deadline expires before a
	// replica picks it up.
	ErrDeadline = errors.New("serving: deadline expired in queue")
	// ErrClosed is returned for requests submitted to a closed engine.
	ErrClosed = errors.New("serving: engine closed")
	// ErrBadInput is returned when a request tensor does not match the
	// model's input shape; libei maps it to HTTP 400.
	ErrBadInput = errors.New("serving: bad input")
)

// Config tunes the serving engine. The zero value means defaults.
type Config struct {
	// MaxBatch is the largest micro-batch assembled per dispatch (default 8).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// stragglers (default 2ms). Smaller favors latency, larger throughput.
	MaxWait time.Duration
	// Replicas is the number of model clones executing batches
	// concurrently (default 2).
	Replicas int
	// QueueDepth bounds the per-model request queue; beyond it requests
	// are rejected with ErrOverloaded (default 64).
	QueueDepth int
	// Procs caps the process-wide parallel kernel pool that the dense
	// kernels (matmul, convolution, pooling) shard across. 0 keeps the
	// pool's current width (all cores by default). The pool is global:
	// the last engine configured wins.
	Procs int
	// ParallelGrain sets the kernel pool's serial cutoff in fused-op
	// units; kernels below it run on the submitting goroutine. 0 keeps
	// the current grain (parallel.DefaultGrainWork by default).
	ParallelGrain int
	// Tenants declares the admission and scheduling classes requests may
	// carry (WithTenant): per-tenant token-bucket admission, strict
	// priority tiers at dispatch, weighted-fair sharing within a tier.
	// Empty means single-tenant behavior (every request rides the
	// default class, unlimited, FIFO).
	Tenants []TenantConfig
	// DefaultTenant names the class unattributed or undeclared tenants
	// are accounted to (default "default"). Declaring a tenant with this
	// name in Tenants lets the operator rate-limit the catch-all class.
	DefaultTenant string
	// ExitThreshold is the initial early-exit confidence threshold
	// applied to every pipeline whose compiled plan supports it (a
	// recurrent model with a classification head): a sample retires from
	// its batch at the first RNN step whose head confidence reaches the
	// threshold. Values outside (0, 1] — including the zero value —
	// disable early exit. Tune per model at runtime with
	// Engine.SetExitThreshold.
	ExitThreshold float64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Result is one request's share of a batched inference.
type Result struct {
	// Model is the pipeline that actually served the request — under a
	// Swap route this is the active tier, not the name the client asked
	// for.
	Model string
	// Tenant is the admission class the request was accounted to.
	Tenant string
	// Class and Confidence are this sample's prediction.
	Class      int
	Confidence float64
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Queued is the time spent waiting before a replica started the batch.
	Queued time.Duration
	// StepsUsed and TotalSteps report early-exit consumption when the
	// serving plan is early-exit-capable: the sample used StepsUsed of
	// TotalSteps RNN steps (StepsUsed < TotalSteps means it retired at
	// the confidence threshold). Both are 0 for feed-forward models.
	StepsUsed  int
	TotalSteps int
	// ModelLatency and ModelEnergy are the hardware cost model's numbers
	// for the whole batch (the ALEM view of the run).
	ModelLatency time.Duration
	ModelEnergy  float64
}

// Engine serves batched inference over a package manager's loaded models.
// Pipelines are created lazily per model on first use; their replicas are
// point-in-time snapshots of the loaded weights and do not track later
// changes — call Reset after reloading or retraining a model. Close must be
// called; it drains and stops every pipeline.
type Engine struct {
	mgr     *pkgmgr.Manager
	cfg     Config
	tenants *tenantTable

	mu      sync.RWMutex
	pipes   map[string]*pipeline
	routes  map[string]string  // public name → serving model (Swap)
	exitThr map[string]float64 // per-model threshold overrides (SetExitThreshold)
	closed  bool
}

// NewEngine returns an engine over the manager's loaded models. A
// non-zero Procs or ParallelGrain reconfigures the process-wide kernel
// pool as a side effect.
func NewEngine(mgr *pkgmgr.Manager, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Procs > 0 {
		parallel.SetProcs(cfg.Procs)
	}
	if cfg.ParallelGrain > 0 {
		parallel.SetGrainWork(cfg.ParallelGrain)
	}
	return &Engine{
		mgr: mgr, cfg: cfg,
		tenants: newTenantTable(cfg.Tenants, cfg.DefaultTenant),
		pipes:   map[string]*pipeline{}, routes: map[string]string{},
		exitThr: map[string]float64{},
	}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Infer enqueues one single-sample request for the named model and blocks
// until a replica answers, the context is done, or admission rejects it.
// A context deadline becomes the request's queue deadline; a context
// tenant (WithTenant) selects the request's admission and scheduling
// class.
func (e *Engine) Infer(ctx context.Context, model string, x *tensor.Tensor) (Result, error) {
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	return e.infer(ctx, model, x, deadline)
}

// InferWithDeadline is Infer with an explicit budget: the request must be
// picked up by a replica within d of submission or it is dropped with
// ErrDeadline.
func (e *Engine) InferWithDeadline(model string, x *tensor.Tensor, d time.Duration) (Result, error) {
	if d <= 0 {
		return Result{}, fmt.Errorf("%w: non-positive deadline %v", ErrBadInput, d)
	}
	return e.infer(context.Background(), model, x, time.Now().Add(d))
}

func (e *Engine) infer(ctx context.Context, model string, x *tensor.Tensor, deadline time.Time) (Result, error) {
	tenant := e.tenants.resolve(TenantFrom(ctx))
	// Per-tenant rate admission runs before any queue is touched: a
	// tenant past its token bucket is shed here, so a hot client's
	// excess never competes for shared queue capacity.
	if tenant.bucket != nil && !tenant.bucket.allow(time.Now()) {
		tenant.met.throttled.Add(1)
		return Result{}, fmt.Errorf("%w: tenant %q over admission rate (%.3g/s, burst %d)",
			ErrOverloaded, tenant.cfg.Name, tenant.cfg.RatePerSec, tenant.cfg.Burst)
	}
	var req *request
	// A Swap or Reset can retire the pipeline between lookup and submit;
	// ErrClosed from a live engine means "re-resolve the route and try the
	// replacement", so a hot-swap never surfaces as a client failure.
	for attempt := 0; ; attempt++ {
		p, err := e.pipelineFor(model)
		if err != nil {
			return Result{}, err
		}
		sample, err := p.normalize(x)
		if err != nil {
			return Result{}, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			p.met.expired.Add(1)
			tenant.met.expired.Add(1)
			return Result{}, fmt.Errorf("%w: model %s: expired before enqueue", ErrDeadline, model)
		}
		req = &request{x: sample, tenant: tenant, deadline: deadline, enq: time.Now(), resp: make(chan response, 1)}
		// A traced request holds a reference on its trace buffer for the
		// pipeline's lifetime of it: the worker (or expiry sweep) releases
		// it on the answering path, so spans recorded after the caller's
		// context is cancelled still land before the buffer recycles.
		if tb := obs.FromContext(ctx); tb != nil {
			tb.Ref()
			req.tb = tb
		}
		if err := p.submit(req); err != nil {
			req.finishTrace(true)
			if errors.Is(err, ErrClosed) && attempt < 8 {
				continue
			}
			return Result{}, err
		}
		break
	}
	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		// The request still runs (or is rejected) behind our back; the
		// buffered resp channel keeps the worker from blocking.
		return Result{}, ctx.Err()
	}
}

// resolveLocked maps a public model name through the Swap route table to
// the model actually serving it. Caller holds e.mu (either mode).
func (e *Engine) resolveLocked(model string) string {
	if t, ok := e.routes[model]; ok {
		return t
	}
	return model
}

// Route returns the model that currently serves requests for the given
// name: the Swap target when a route is installed, the name itself
// otherwise.
func (e *Engine) Route(model string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.resolveLocked(model)
}

// pipelineFor returns (creating on first use) the pipeline serving the
// model — routes installed by Swap are resolved first. The hot path is a
// read-locked map lookup; first-use construction clones replicas outside
// the engine lock (ensureActual), so building one model's pool never
// stalls other models' serving paths.
func (e *Engine) pipelineFor(model string) (*pipeline, error) {
	for attempt := 0; ; attempt++ {
		e.mu.RLock()
		actual := e.resolveLocked(model)
		e.mu.RUnlock()
		p, err := e.ensureActual(actual)
		if err != nil {
			return nil, err
		}
		e.mu.RLock()
		moved := e.resolveLocked(model) != actual
		e.mu.RUnlock()
		if moved && attempt < 4 {
			// A Swap re-pointed the route while we resolved/built; serve
			// from the new tier instead of a freshly retired one.
			continue
		}
		return p, nil
	}
}

// ensureActual returns (creating if needed) the pipeline keyed by the
// already-resolved model name. Replica cloning — a multi-megabyte weight
// copy per replica — happens outside the engine lock; only the map
// double-check and install are serialized.
func (e *Engine) ensureActual(actual string) (*pipeline, error) {
	e.mu.RLock()
	p, ok := e.pipes[actual]
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return p, nil
	}
	reps := make([]*pkgmgr.Replica, e.cfg.Replicas)
	for i := range reps {
		r, err := e.mgr.NewReplica(actual)
		if err != nil {
			return nil, err
		}
		reps[i] = r
	}
	e.applyExitThreshold(actual, reps)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if p, ok := e.pipes[actual]; ok {
		// Lost the build race; the extra clones are garbage-collected.
		return p, nil
	}
	p = newPipeline(actual, e.cfg, e.tenants, reps)
	e.pipes[actual] = p
	return p, nil
}

// Swap atomically re-points the public model name at target's replica
// pool: the target pipeline is built (replicas cloned and warm) before
// the route flips, then the previous pipeline is drained in the
// background — everything already queued there completes, new requests
// land on the target, and no request is dropped. It is the autopilot's
// actuator for runtime tier switching; swapping to the name itself
// removes the route.
//
// Retiring the old pipeline resets that model's cumulative serving
// counters and histogram (like Reset does): if clients also request the
// old tier's model *directly*, their next request transparently rebuilds
// its pool from the manager's weights, but its /ei_metrics history
// restarts. Tier ladders normally serve only through the public alias,
// where this does not arise.
func (e *Engine) Swap(public, target string) error {
	if _, err := e.ensureActual(target); err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	old := e.resolveLocked(public)
	if target == public {
		delete(e.routes, public)
	} else {
		e.routes[public] = target
	}
	var oldPipe *pipeline
	if old != target {
		// Retire the old tier's pipeline unless another route still
		// resolves to it (two public names may share a tier).
		still := false
		for _, t := range e.routes {
			if t == old {
				still = true
				break
			}
		}
		if !still {
			if op, ok := e.pipes[old]; ok {
				delete(e.pipes, old)
				oldPipe = op
			}
		}
	}
	e.mu.Unlock()
	if oldPipe != nil {
		go oldPipe.drain()
	}
	return nil
}

// ReplicasOf reports the replica-pool width of the pipeline serving the
// named model (routes resolved), and whether such a pipeline exists.
func (e *Engine) ReplicasOf(model string) (int, bool) {
	e.mu.RLock()
	p, ok := e.pipes[e.resolveLocked(model)]
	e.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return p.met.replicas, true
}

// SetReplicas resizes the named model's replica pool to n using the Swap
// machinery: a fresh pipeline with n replicas is built warm, installed in
// place of the old one, and the old one drains in the background — every
// queued request is answered and submit-vs-resize races retry onto the
// new pool, so no request is dropped. A pipeline that does not exist yet
// is built (pre-warming); resizing to the current width is a no-op. It is
// the actuator the cluster autoscaler drives from queue depth and p95.
func (e *Engine) SetReplicas(model string, n int) error {
	if n <= 0 {
		return fmt.Errorf("%w: non-positive replica count %d", ErrBadInput, n)
	}
	actual := e.Route(model)
	e.mu.RLock()
	cur, ok := e.pipes[actual]
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if ok && cur.met.replicas == n {
		return nil
	}
	reps := make([]*pkgmgr.Replica, n)
	for i := range reps {
		r, err := e.mgr.NewReplica(actual)
		if err != nil {
			return err
		}
		reps[i] = r
	}
	e.applyExitThreshold(actual, reps)
	cfg := e.cfg
	cfg.Replicas = n
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	old := e.pipes[actual]
	if old != nil && old.met.replicas == n {
		// Lost a resize race to an identical width; keep the winner.
		e.mu.Unlock()
		return nil
	}
	e.pipes[actual] = newPipeline(actual, cfg, e.tenants, reps)
	e.mu.Unlock()
	if old != nil {
		go old.drain()
	}
	return nil
}

// applyExitThreshold installs the model's early-exit threshold on a
// freshly built replica set: the runtime override when SetExitThreshold
// recorded one, the engine-wide Config.ExitThreshold otherwise. No-op on
// plans without early-exit support.
func (e *Engine) applyExitThreshold(actual string, reps []*pkgmgr.Replica) {
	e.mu.RLock()
	thr, ok := e.exitThr[actual]
	e.mu.RUnlock()
	if !ok {
		thr = e.cfg.ExitThreshold
	}
	for _, r := range reps {
		r.SetExitThreshold(thr)
	}
}

// SetExitThreshold installs the live early-exit confidence threshold on
// the pipeline serving the named model (routes resolved; the pipeline is
// built if it does not exist yet) and records it so later rebuilds —
// Swap, SetReplicas, Reset — inherit it. Values outside (0, 1] disable
// early exit. Returns whether the serving plan supports early exit at
// all; the knob is a no-op (but still recorded) when it does not.
//
// This is the autopilot's continuous actuator between ladder rungs: the
// threshold trades accuracy for latency within a tier, cheaper than
// swapping tiers.
func (e *Engine) SetExitThreshold(model string, thr float64) (bool, error) {
	actual := e.Route(model)
	p, err := e.ensureActual(actual)
	if err != nil {
		return false, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false, ErrClosed
	}
	e.exitThr[actual] = thr
	e.mu.Unlock()
	return p.setExitThreshold(thr), nil
}

// ExitThresholdOf reports the live early-exit threshold of the pipeline
// serving the named model (0 when early exit is disabled) and whether
// that pipeline exists and supports early exit.
func (e *Engine) ExitThresholdOf(model string) (float64, bool) {
	e.mu.RLock()
	p, ok := e.pipes[e.resolveLocked(model)]
	e.mu.RUnlock()
	if !ok || !p.met.earlyExit {
		return 0, false
	}
	return p.exitThreshold(), true
}

// LatencyOf returns the cumulative latency histogram of the pipeline
// serving the named model (routes resolved), and whether such a pipeline
// exists. Subtract successive snapshots for per-interval quantiles.
func (e *Engine) LatencyOf(model string) (LatencySnapshot, bool) {
	e.mu.RLock()
	p, ok := e.pipes[e.resolveLocked(model)]
	e.mu.RUnlock()
	if !ok {
		return LatencySnapshot{}, false
	}
	return p.met.hist.Snapshot(), true
}

// Reset drops the model's pipeline, draining its queue and discarding its
// replicas, so the next request rebuilds them from the manager's current
// weights. Call it after a model is reloaded, retrained, or unloaded;
// resetting an unknown or never-served model is a no-op.
func (e *Engine) Reset(model string) {
	e.mu.Lock()
	p, ok := e.pipes[model]
	if ok {
		delete(e.pipes, model)
	}
	closed := e.closed
	e.mu.Unlock()
	if ok && !closed {
		p.close()
	}
}

// QueueDepth returns the total queued requests and total queue capacity
// across all pipelines. It is the cheap load signal a front tier polls on
// every health tick: a couple of channel length reads under a read lock,
// no per-model snapshot allocation or sorting like Stats.
func (e *Engine) QueueDepth() (depth, capacity int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.pipes {
		depth += p.q.len()
		capacity += p.met.queueCap
	}
	return depth, capacity
}

// Stats snapshots per-model serving counters, sorted by model name.
func (e *Engine) Stats() []ModelStats {
	e.mu.RLock()
	pipes := make([]*pipeline, 0, len(e.pipes))
	for _, p := range e.pipes {
		pipes = append(pipes, p)
	}
	e.mu.RUnlock()
	out := make([]ModelStats, len(pipes))
	for i, p := range pipes {
		out[i] = p.stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Close stops every pipeline: queued requests are rejected with ErrClosed,
// in-flight batches finish, and replica workers exit. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pipes := make([]*pipeline, 0, len(e.pipes))
	for _, p := range e.pipes {
		pipes = append(pipes, p)
	}
	e.mu.Unlock()
	for _, p := range pipes {
		p.close()
	}
}
