// Package serving is the node's inference serving engine: the layer that
// turns the paper's single-request libei endpoint into something that can
// absorb heavy concurrent traffic (the "millions of users" the OpenEI
// vision statement gestures at).
//
// Architecture, per model:
//
//		clients → bounded queue → micro-batcher → replica pool → responses
//
//	  - Admission control: the queue is bounded (Config.QueueDepth). When it
//	    is full the request is rejected immediately with ErrOverloaded, which
//	    libei maps to HTTP 429 — shedding load beats queueing it forever.
//	  - Micro-batching: a dispatcher coalesces up to Config.MaxBatch queued
//	    single-sample requests, waiting at most Config.MaxWait for stragglers
//	    after the first arrival, and stacks them into one batch tensor
//	    (Clipper/TF-Serving-style dynamic batching).
//	  - Replica pool: Config.Replicas private clones of the model execute
//	    batches concurrently. This deliberately bypasses the package
//	    manager's single-worker real-time scheduler: the scheduler protects a
//	    constrained accelerator, while the pool exploits spare CPU cores.
//	  - Deadlines: requests carry an optional deadline (InferWithDeadline or
//	    a context deadline). A request whose deadline passes while it waits
//	    in the queue is dropped with ErrDeadline instead of wasting a batch
//	    slot on an answer nobody is waiting for.
package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"openei/internal/parallel"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// Engine errors.
var (
	// ErrOverloaded is returned when a model's queue is full; libei maps it
	// to HTTP 429.
	ErrOverloaded = errors.New("serving: overloaded")
	// ErrDeadline is returned when a request's deadline expires before a
	// replica picks it up.
	ErrDeadline = errors.New("serving: deadline expired in queue")
	// ErrClosed is returned for requests submitted to a closed engine.
	ErrClosed = errors.New("serving: engine closed")
	// ErrBadInput is returned when a request tensor does not match the
	// model's input shape; libei maps it to HTTP 400.
	ErrBadInput = errors.New("serving: bad input")
)

// Config tunes the serving engine. The zero value means defaults.
type Config struct {
	// MaxBatch is the largest micro-batch assembled per dispatch (default 8).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// stragglers (default 2ms). Smaller favors latency, larger throughput.
	MaxWait time.Duration
	// Replicas is the number of model clones executing batches
	// concurrently (default 2).
	Replicas int
	// QueueDepth bounds the per-model request queue; beyond it requests
	// are rejected with ErrOverloaded (default 64).
	QueueDepth int
	// Procs caps the process-wide parallel kernel pool that the dense
	// kernels (matmul, convolution, pooling) shard across. 0 keeps the
	// pool's current width (all cores by default). The pool is global:
	// the last engine configured wins.
	Procs int
	// ParallelGrain sets the kernel pool's serial cutoff in fused-op
	// units; kernels below it run on the submitting goroutine. 0 keeps
	// the current grain (parallel.DefaultGrainWork by default).
	ParallelGrain int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Result is one request's share of a batched inference.
type Result struct {
	// Class and Confidence are this sample's prediction.
	Class      int
	Confidence float64
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Queued is the time spent waiting before a replica started the batch.
	Queued time.Duration
	// ModelLatency and ModelEnergy are the hardware cost model's numbers
	// for the whole batch (the ALEM view of the run).
	ModelLatency time.Duration
	ModelEnergy  float64
}

// Engine serves batched inference over a package manager's loaded models.
// Pipelines are created lazily per model on first use; their replicas are
// point-in-time snapshots of the loaded weights and do not track later
// changes — call Reset after reloading or retraining a model. Close must be
// called; it drains and stops every pipeline.
type Engine struct {
	mgr *pkgmgr.Manager
	cfg Config

	mu     sync.RWMutex
	pipes  map[string]*pipeline
	closed bool
}

// NewEngine returns an engine over the manager's loaded models. A
// non-zero Procs or ParallelGrain reconfigures the process-wide kernel
// pool as a side effect.
func NewEngine(mgr *pkgmgr.Manager, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Procs > 0 {
		parallel.SetProcs(cfg.Procs)
	}
	if cfg.ParallelGrain > 0 {
		parallel.SetGrainWork(cfg.ParallelGrain)
	}
	return &Engine{mgr: mgr, cfg: cfg, pipes: map[string]*pipeline{}}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Infer enqueues one single-sample request for the named model and blocks
// until a replica answers, the context is done, or admission rejects it.
// A context deadline becomes the request's queue deadline.
func (e *Engine) Infer(ctx context.Context, model string, x *tensor.Tensor) (Result, error) {
	var deadline time.Time
	if d, ok := ctx.Deadline(); ok {
		deadline = d
	}
	return e.infer(ctx, model, x, deadline)
}

// InferWithDeadline is Infer with an explicit budget: the request must be
// picked up by a replica within d of submission or it is dropped with
// ErrDeadline.
func (e *Engine) InferWithDeadline(model string, x *tensor.Tensor, d time.Duration) (Result, error) {
	if d <= 0 {
		return Result{}, fmt.Errorf("%w: non-positive deadline %v", ErrBadInput, d)
	}
	return e.infer(context.Background(), model, x, time.Now().Add(d))
}

func (e *Engine) infer(ctx context.Context, model string, x *tensor.Tensor, deadline time.Time) (Result, error) {
	p, err := e.pipelineFor(model)
	if err != nil {
		return Result{}, err
	}
	sample, err := p.normalize(x)
	if err != nil {
		return Result{}, err
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		p.met.expired.Add(1)
		return Result{}, fmt.Errorf("%w: model %s: expired before enqueue", ErrDeadline, model)
	}
	req := &request{x: sample, deadline: deadline, enq: time.Now(), resp: make(chan response, 1)}
	if err := p.submit(req); err != nil {
		return Result{}, err
	}
	select {
	case r := <-req.resp:
		return r.res, r.err
	case <-ctx.Done():
		// The request still runs (or is rejected) behind our back; the
		// buffered resp channel keeps the worker from blocking.
		return Result{}, ctx.Err()
	}
}

// pipelineFor returns (creating on first use) the model's pipeline. The
// hot path is a read-locked map lookup; only first-use construction (which
// clones replicas) takes the write lock.
func (e *Engine) pipelineFor(model string) (*pipeline, error) {
	e.mu.RLock()
	p, ok := e.pipes[model]
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return p, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if p, ok := e.pipes[model]; ok {
		return p, nil
	}
	reps := make([]*pkgmgr.Replica, e.cfg.Replicas)
	for i := range reps {
		r, err := e.mgr.NewReplica(model)
		if err != nil {
			return nil, err
		}
		reps[i] = r
	}
	p = newPipeline(model, e.cfg, reps)
	e.pipes[model] = p
	return p, nil
}

// Reset drops the model's pipeline, draining its queue and discarding its
// replicas, so the next request rebuilds them from the manager's current
// weights. Call it after a model is reloaded, retrained, or unloaded;
// resetting an unknown or never-served model is a no-op.
func (e *Engine) Reset(model string) {
	e.mu.Lock()
	p, ok := e.pipes[model]
	if ok {
		delete(e.pipes, model)
	}
	closed := e.closed
	e.mu.Unlock()
	if ok && !closed {
		p.close()
	}
}

// QueueDepth returns the total queued requests and total queue capacity
// across all pipelines. It is the cheap load signal a front tier polls on
// every health tick: a couple of channel length reads under a read lock,
// no per-model snapshot allocation or sorting like Stats.
func (e *Engine) QueueDepth() (depth, capacity int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.pipes {
		depth += len(p.queue)
		capacity += cap(p.queue)
	}
	return depth, capacity
}

// Stats snapshots per-model serving counters, sorted by model name.
func (e *Engine) Stats() []ModelStats {
	e.mu.RLock()
	pipes := make([]*pipeline, 0, len(e.pipes))
	for _, p := range e.pipes {
		pipes = append(pipes, p)
	}
	e.mu.RUnlock()
	out := make([]ModelStats, len(pipes))
	for i, p := range pipes {
		out[i] = p.stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Close stops every pipeline: queued requests are rejected with ErrClosed,
// in-flight batches finish, and replica workers exit. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pipes := make([]*pipeline, 0, len(e.pipes))
	for _, p := range e.pipes {
		pipes = append(pipes, p)
	}
	e.mu.Unlock()
	for _, p := range pipes {
		p.close()
	}
}
