package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
	"openei/internal/zoo"
)

// The acceptance benchmark of the serving engine: 64 concurrent clients
// pushing single samples through a zoo model, comparing the seed's
// per-request path (every request serialized through the package manager's
// single scheduler worker) against the engine's micro-batched replica pool.
//
//	go test ./internal/serving -bench Serving64 -benchtime 2s

const (
	benchClients = 64
	// benchModel is the zoo entry under test: the MNIST-class MLP, the
	// size of model the paper's smart-home/health scenarios actually run
	// at the edge.
	benchModel = "mlp"
)

func benchManager(b *testing.B) (*pkgmgr.Manager, *tensor.Tensor) {
	b.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := hardware.ByName("jetson-tx2")
	if err != nil {
		b.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	b.Cleanup(mgr.Close)
	const size, classes = 16, 6
	rng := rand.New(rand.NewSource(1))
	m, err := zoo.Build(benchModel, size, classes, rng)
	if err != nil {
		b.Fatal(err)
	}
	m.InitParams(rng)
	// Quantize like the demo server does on eipkg: the per-request path
	// then pays the int8 weight expansion on every call, while serving
	// replicas expand once at clone time.
	if err := mgr.Load(m, pkgmgr.LoadOptions{Quantize: true}); err != nil {
		b.Fatal(err)
	}
	sample := tensor.New(1, size, size)
	for i, d := 0, sample.Data(); i < len(d); i++ {
		d[i] = rng.Float32()
	}
	return mgr, sample
}

// runClients spreads b.N requests over benchClients goroutines and reports
// aggregate request throughput.
func runClients(b *testing.B, do func() error) {
	b.Helper()
	var wg sync.WaitGroup
	work := make(chan struct{})
	errs := make(chan error, benchClients)
	for c := 0; c < benchClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if err := do(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
}

// BenchmarkServing64Unbatched is the seed path: Manager.Infer, one request
// per forward pass, all serialized by the scheduler.
func BenchmarkServing64Unbatched(b *testing.B) {
	mgr, sample := benchManager(b)
	batched := sample.Clone().MustReshape(1, 1, 16, 16)
	runClients(b, func() error {
		_, err := mgr.Infer(benchModel, batched)
		return err
	})
}

// BenchmarkServing64Batched is the engine path: micro-batching plus a
// replica pool.
func BenchmarkServing64Batched(b *testing.B) {
	mgr, sample := benchManager(b)
	e := NewEngine(mgr, Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond, Replicas: 4, QueueDepth: 1024})
	b.Cleanup(e.Close)
	runClients(b, func() error {
		_, err := e.Infer(context.Background(), benchModel, sample)
		return err
	})
}
