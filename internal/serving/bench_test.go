package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/obs"
	"openei/internal/pkgmgr"
	"openei/internal/plan"
	"openei/internal/tensor"
	"openei/internal/zoo"
)

// The acceptance benchmark of the serving engine: 64 concurrent clients
// pushing single samples through a zoo model, comparing the seed's
// per-request path (every request serialized through the package manager's
// single scheduler worker) against the engine's micro-batched replica pool.
//
//	go test ./internal/serving -bench Serving64 -benchtime 2s

const (
	benchClients = 64
	// benchModel is the zoo entry under test: the MNIST-class MLP, the
	// size of model the paper's smart-home/health scenarios actually run
	// at the edge.
	benchModel = "mlp"
)

func benchManager(b *testing.B) (*pkgmgr.Manager, *tensor.Tensor) {
	b.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := hardware.ByName("jetson-tx2")
	if err != nil {
		b.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	b.Cleanup(mgr.Close)
	const size, classes = 16, 6
	rng := rand.New(rand.NewSource(1))
	m, err := zoo.Build(benchModel, size, classes, rng)
	if err != nil {
		b.Fatal(err)
	}
	m.InitParams(rng)
	// Quantize like the demo server does on eipkg: the per-request path
	// then pays the int8 weight expansion on every call, while serving
	// replicas expand once at clone time.
	if err := mgr.Load(m, pkgmgr.LoadOptions{Quantize: true}); err != nil {
		b.Fatal(err)
	}
	sample := tensor.New(1, size, size)
	for i, d := 0, sample.Data(); i < len(d); i++ {
		d[i] = rng.Float32()
	}
	return mgr, sample
}

// runClients spreads b.N requests over benchClients goroutines and reports
// aggregate request throughput.
func runClients(b *testing.B, do func() error) {
	b.Helper()
	var wg sync.WaitGroup
	work := make(chan struct{})
	errs := make(chan error, benchClients)
	for c := 0; c < benchClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if err := do(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
}

// BenchmarkServing64Unbatched is the seed path: Manager.Infer, one request
// per forward pass, all serialized by the scheduler.
func BenchmarkServing64Unbatched(b *testing.B) {
	mgr, sample := benchManager(b)
	batched := sample.Clone().MustReshape(1, 1, 16, 16)
	runClients(b, func() error {
		_, err := mgr.Infer(benchModel, batched)
		return err
	})
}

// BenchmarkServing64Batched is the engine path: micro-batching plus a
// replica pool.
func BenchmarkServing64Batched(b *testing.B) {
	mgr, sample := benchManager(b)
	e := NewEngine(mgr, Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond, Replicas: 4, QueueDepth: 1024})
	b.Cleanup(e.Close)
	runClients(b, func() error {
		_, err := e.Infer(context.Background(), benchModel, sample)
		return err
	})
}

// BenchmarkReplicaInferMLP is the zero-allocation acceptance benchmark:
// a frozen replica running micro-batches of the mlp zoo model must report
// 0 allocs/op once its arena is warm — activations come from the arena,
// scratch from pools, and the cost model from the cached workload.
func BenchmarkReplicaInferMLP(b *testing.B) {
	mgr, sample := benchManager(b)
	rep, err := mgr.NewReplica(benchModel)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]*tensor.Tensor, 8)
	for i := range xs {
		xs[i] = sample
	}
	if _, err := rep.InferBatch(xs); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.InferBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// The steady-state guarantee is load-bearing for GC-free serving, so it is
// asserted as a test too, not just visible in benchmark output. The int4
// backend must hold it too: its per-call weight unpack and effective-scale
// fills run entirely in plan scratch grown during warmup.
func TestReplicaInferenceSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts pkgmgr.LoadOptions
	}{
		{"int8", pkgmgr.LoadOptions{Quantize: true}},
		{"int4", pkgmgr.LoadOptions{Backend: plan.Int4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkg, err := alem.PackageByName("eipkg")
			if err != nil {
				t.Fatal(err)
			}
			dev, err := hardware.ByName("jetson-tx2")
			if err != nil {
				t.Fatal(err)
			}
			mgr := pkgmgr.New(pkg, dev)
			t.Cleanup(mgr.Close)
			rng := rand.New(rand.NewSource(1))
			m, err := zoo.Build("mlp", 16, 6, rng)
			if err != nil {
				t.Fatal(err)
			}
			m.InitParams(rng)
			if err := mgr.Load(m, tc.opts); err != nil {
				t.Fatal(err)
			}
			rep, err := mgr.NewReplica("mlp")
			if err != nil {
				t.Fatal(err)
			}
			if want := string(plan.Int8); tc.name == "int8" && rep.Backend() != want {
				t.Fatalf("backend %q, want %q", rep.Backend(), want)
			}
			if want := string(plan.Int4); tc.name == "int4" && rep.Backend() != want {
				t.Fatalf("backend %q, want %q", rep.Backend(), want)
			}
			sample := tensor.New(1, 16, 16)
			xs := []*tensor.Tensor{sample, sample, sample, sample}
			// Warm past the lazy-calibration window so the scales freeze
			// and every subsequent batch is the pure serving path.
			for i := 0; i < 10; i++ {
				if _, err := rep.InferBatch(xs); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(50, func() {
				if _, err := rep.InferBatch(xs); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state %s replica inference allocates %v objects/op, want 0", tc.name, avg)
			}
		})
	}
}

// BenchmarkTracedInfer measures the tracer's overhead on the engine's
// request path: the same micro-batched infer loop with tracing off, and
// with every request traced at sample rate 1.0. The off case is the
// guard — compiled-in tracing must cost nothing when no trace buffer
// rides the context.
//
//	go test ./internal/serving -bench TracedInfer -benchtime 2s
func BenchmarkTracedInfer(b *testing.B) {
	run := func(b *testing.B, tr *obs.Tracer) {
		mgr, sample := benchManager(b)
		e := NewEngine(mgr, Config{MaxBatch: 16, MaxWait: 2 * time.Millisecond, Replicas: 4, QueueDepth: 1024})
		b.Cleanup(e.Close)
		runClients(b, func() error {
			ctx := context.Background()
			var tb *obs.TraceBuf
			if tr != nil {
				tb = tr.Begin(obs.TraceContext{})
				root := tr.NextID()
				tb.SetRoot(root)
				ctx = obs.NewContext(ctx, tb)
			}
			start := time.Now()
			_, err := e.Infer(ctx, benchModel, sample)
			if tr != nil {
				total := time.Since(start)
				tb.AddWithID(tb.Root(), obs.StageInfer, 0, start, total)
				tr.Finish(tb, err != nil, total)
			}
			return err
		})
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("sampled-1.0", func(b *testing.B) {
		run(b, obs.NewTracer(obs.Config{SampleRate: 1}))
	})
}
