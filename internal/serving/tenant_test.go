package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

func tenantEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		t.Fatal(err)
	}
	mgr := pkgmgr.New(pkg, dev)
	t.Cleanup(mgr.Close)
	ident := nn.MustModel("ident", []int{4}, []nn.LayerSpec{{Type: "flatten"}})
	if err := mgr.Load(ident, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, cfg)
	t.Cleanup(e.Close)
	return e
}

func hotSample(t *testing.T, class int) *tensor.Tensor {
	t.Helper()
	data := make([]float32, 4)
	data[class] = 1
	x, err := tensor.NewFrom(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestTokenBucketAdmission(t *testing.T) {
	e := tenantEngine(t, Config{
		Replicas: 1, QueueDepth: 64,
		Tenants: []TenantConfig{{Name: "metered", RatePerSec: 1, Burst: 3}},
	})
	ctx := WithTenant(context.Background(), "metered")
	x := hotSample(t, 1)
	var ok, shed int
	for i := 0; i < 10; i++ {
		_, err := e.Infer(ctx, "ident", x)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok < 3 || ok > 4 {
		// Burst of 3 plus at most one refilled token over the loop's wall
		// time. A shed burst must not consume tokens.
		t.Errorf("admitted %d of 10 at burst 3, want 3..4", ok)
	}
	if shed != 10-ok {
		t.Errorf("shed %d, want %d", shed, 10-ok)
	}
	stats := e.TenantStats()
	var m *TenantStats
	for i := range stats {
		if stats[i].Tenant == "metered" {
			m = &stats[i]
		}
	}
	if m == nil {
		t.Fatal("no stats row for tenant metered")
	}
	if m.ShedThrottle != uint64(shed) || m.Served != uint64(ok) {
		t.Errorf("tenant counters throttled=%d served=%d, want %d and %d",
			m.ShedThrottle, m.Served, shed, ok)
	}
	// An undeclared tenant rides the default class, unlimited.
	if _, err := e.Infer(WithTenant(context.Background(), "stranger"), "ident", x); err != nil {
		t.Errorf("undeclared tenant shed: %v", err)
	}
}

// TestStrictPriorityDispatch builds a backlog of low-priority requests,
// then pushes one high-priority request and checks it is taken first —
// the scheduler's strict-tier guarantee, independent of arrival order.
func TestStrictPriorityDispatch(t *testing.T) {
	tenants := newTenantTable([]TenantConfig{
		{Name: "safety_video", Priority: 10},
		{Name: "smart_home", Priority: 0},
	}, "")
	q := newSchedQueue(256, tenants)
	mk := func(name string) *request {
		return &request{tenant: tenants.resolve(name), resp: make(chan response, 1)}
	}
	const backlog = 32
	for i := 0; i < backlog; i++ {
		if !q.push(mk("smart_home")) {
			t.Fatal("push rejected below capacity")
		}
	}
	if !q.push(mk("safety_video")) {
		t.Fatal("push rejected below capacity")
	}
	<-q.ready
	if got := q.take().tenant.cfg.Name; got != "safety_video" {
		t.Fatalf("first take = %q, want safety_video ahead of %d queued smart_home requests", got, backlog)
	}
	// With the high-priority backlog empty the lower tier resumes.
	<-q.ready
	if got := q.take().tenant.cfg.Name; got != "smart_home" {
		t.Errorf("second take = %q, want smart_home", got)
	}
}

// TestPriorityEndToEnd drives the same guarantee through a live engine:
// concurrent mixed-tenant load on a single replica, every request
// served, per-tenant counters consistent.
func TestPriorityEndToEnd(t *testing.T) {
	e := tenantEngine(t, Config{
		Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueDepth: 256,
		Tenants: []TenantConfig{
			{Name: "safety_video", Priority: 10},
			{Name: "smart_home", Priority: 0},
		},
	})
	x := hotSample(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		name := "smart_home"
		if i%3 == 0 {
			name = "safety_video"
		}
		ctx := WithTenant(context.Background(), name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Infer(ctx, "ident", x)
			if err != nil {
				t.Errorf("infer as %s: %v", name, err)
			} else if res.Tenant != name {
				t.Errorf("result tenant = %q, want %q", res.Tenant, name)
			}
		}()
	}
	wg.Wait()
	var served uint64
	for _, s := range e.TenantStats() {
		served += s.Served
		if s.Admitted != s.Served {
			t.Errorf("tenant %s: admitted %d != served %d", s.Tenant, s.Admitted, s.Served)
		}
	}
	if served != 24 {
		t.Errorf("served %d, want 24", served)
	}
}

// TestWeightedFairShareWithinTier checks that two equal-priority tenants
// with 3:1 weights drain a shared backlog roughly proportionally.
func TestWeightedFairShareWithinTier(t *testing.T) {
	tenants := newTenantTable([]TenantConfig{
		{Name: "heavy", Weight: 3},
		{Name: "light", Weight: 1},
	}, "")
	q := newSchedQueue(256, tenants)
	mk := func(name string) *request {
		return &request{tenant: tenants.resolve(name), resp: make(chan response, 1)}
	}
	for i := 0; i < 40; i++ {
		if !q.push(mk("heavy")) || !q.push(mk("light")) {
			t.Fatal("push rejected below capacity")
		}
	}
	// Count the split across the first 16 scheduled picks.
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		<-q.ready
		r := q.take()
		counts[r.tenant.cfg.Name]++
	}
	if counts["heavy"] != 12 || counts["light"] != 4 {
		t.Errorf("16 picks split heavy=%d light=%d, want 12/4 for weights 3:1", counts["heavy"], counts["light"])
	}
}

// TestSchedQueueCapacitySharedAcrossTenants checks the bound is global:
// pushes past QueueDepth are rejected regardless of tenant.
func TestSchedQueueCapacitySharedAcrossTenants(t *testing.T) {
	tenants := newTenantTable([]TenantConfig{{Name: "a"}, {Name: "b", Priority: 1}}, "")
	q := newSchedQueue(4, tenants)
	mk := func(name string) *request {
		return &request{tenant: tenants.resolve(name), resp: make(chan response, 1)}
	}
	for i := 0; i < 4; i++ {
		if !q.push(mk("a")) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.push(mk("b")) {
		t.Error("push accepted past capacity")
	}
	if q.len() != 4 {
		t.Errorf("len = %d, want 4", q.len())
	}
	// Priority still wins at take time even though b queued last.
	if !q.push(mk("b")) {
		<-q.ready
		_ = q.take()
		if !q.push(mk("b")) {
			t.Fatal("push rejected after a take freed capacity")
		}
	}
	<-q.ready
	if got := q.take().tenant.cfg.Name; got != "b" {
		t.Errorf("first take = %q, want priority tenant b", got)
	}
}

// TestPreExecutionDeadlineDrop proves a request whose deadline expires
// after dequeue but before execution start is answered with ErrDeadline
// instead of burning a kernel run: with MaxWait far beyond the deadline,
// the batch assembles after the deadline has already lapsed.
func TestPreExecutionDeadlineDrop(t *testing.T) {
	e := tenantEngine(t, Config{
		Replicas: 1, MaxBatch: 4, MaxWait: 300 * time.Millisecond, QueueDepth: 16,
	})
	x := hotSample(t, 0)
	start := time.Now()
	_, err := e.InferWithDeadline("ident", x, 30*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Errorf("request failed after %v, before its deadline", waited)
	}
	st := e.Stats()
	if len(st) != 1 || st[0].ExpiredDeadline == 0 {
		t.Errorf("expired_deadline not counted: %+v", st)
	}
	if st[0].Errors != 0 {
		t.Errorf("errors = %d, want 0 (expiry is not an inference error)", st[0].Errors)
	}
}

func TestTenantStatsOrderingAndDefaults(t *testing.T) {
	e := tenantEngine(t, Config{Tenants: []TenantConfig{
		{Name: "low", Priority: 1},
		{Name: "high", Priority: 9},
	}})
	stats := e.TenantStats()
	if len(stats) != 3 {
		t.Fatalf("stats rows = %d, want 3 (two declared + default)", len(stats))
	}
	if stats[0].Tenant != "high" || stats[1].Tenant != "low" || stats[2].Tenant != DefaultTenantName {
		t.Errorf("order = %s,%s,%s; want high,low,%s", stats[0].Tenant, stats[1].Tenant, stats[2].Tenant, DefaultTenantName)
	}
	if _, err := e.Infer(context.Background(), "ident", hotSample(t, 3)); err != nil {
		t.Fatal(err)
	}
	if got := e.TenantStats()[2].Served; got != 1 {
		t.Errorf("default tenant served = %d, want 1", got)
	}
}
