package serving

import (
	"fmt"
	"math"
	"sync"
	"time"

	"openei/internal/obs"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

// request is one enqueued single-sample inference.
type request struct {
	x        *tensor.Tensor
	tenant   *tenantState
	deadline time.Time // zero means none
	enq      time.Time
	deq      time.Time     // scheduler pick time (stamped at q.take)
	resp     chan response // buffered(1): workers never block on it

	// tb is the request's trace buffer (nil when untraced). The engine
	// takes a reference before submit; finishTrace releases it on every
	// path that answers the request, so a worker landing spans after the
	// caller gave up cannot race the buffer's recycle.
	tb *obs.TraceBuf
}

// finishTrace releases the request's hold on its trace, optionally
// flagging the trace as failed (which forces it to be kept).
func (r *request) finishTrace(failed bool) {
	if r.tb == nil {
		return
	}
	if failed {
		r.tb.MarkErr()
	}
	r.tb.Unref()
}

type response struct {
	res Result
	err error
}

// pipeline is one model's queue → micro-batcher → replica pool chain.
type pipeline struct {
	model      string
	cfg        Config
	inputShape []int

	q       *schedQueue
	batches chan []*request
	quit    chan struct{}
	met     modelMetrics
	wg      sync.WaitGroup
	// reps is the replica pool. Each replica is confined to its worker
	// goroutine except for the early-exit threshold knob, which is the
	// plan's one atomic field and may be flipped from the engine.
	reps []*pkgmgr.Replica

	// sendMu makes close() a barrier against in-flight submits: once
	// closed is set under the write lock, no request can enter the queue,
	// so the dispatcher's shutdown sweep sees every queued request and
	// nothing is ever stranded without a response.
	sendMu sync.RWMutex
	closed bool
}

func newPipeline(model string, cfg Config, tenants *tenantTable, reps []*pkgmgr.Replica) *pipeline {
	p := &pipeline{
		model:      model,
		cfg:        cfg,
		inputShape: reps[0].InputShape(),
		q:          newSchedQueue(cfg.QueueDepth, tenants),
		batches:    make(chan []*request),
		quit:       make(chan struct{}),
		reps:       reps,
	}
	p.met.replicas = len(reps)
	p.met.queueCap = cfg.QueueDepth
	p.met.backend = reps[0].Backend()
	p.met.kernels = reps[0].Kernels()
	if reps[0].SupportsEarlyExit() {
		p.met.earlyExit = true
		p.met.totalSteps = reps[0].RNNSteps()
		p.met.exitStats = make([]exitStat, p.met.totalSteps)
	}
	p.wg.Add(1 + len(reps))
	go p.dispatch()
	for _, r := range reps {
		go p.work(r)
	}
	return p
}

// normalize coerces a request tensor to the model's per-sample input shape:
// the exact shape, a batch-of-one of it, or a flat vector of the right
// element count are all accepted.
func (p *pipeline) normalize(x *tensor.Tensor) (*tensor.Tensor, error) {
	want := p.inputShape
	elems := 1
	for _, d := range want {
		elems *= d
	}
	switch {
	case shapeEq(x.Shape(), want):
		return x, nil
	case x.Dims() == len(want)+1 && x.Dim(0) == 1 && shapeEq(x.Shape()[1:], want):
		return x.Reshape(want...)
	case x.Dims() == 1 && x.Len() == elems:
		return x.Reshape(want...)
	default:
		return nil, fmt.Errorf("%w: model %s wants one sample of shape %v, got %v",
			ErrBadInput, p.model, want, x.Shape())
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// submit applies admission control: non-blocking enqueue under the
// tenant scheduler, immediate ErrOverloaded when the bounded queue is
// full. Per-tenant rate admission (the token bucket) has already run in
// Engine.infer; this is the shared-capacity gate.
func (p *pipeline) submit(req *request) error {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if p.q.push(req) {
		p.met.enqueued.Add(1)
		req.tenant.met.admitted.Add(1)
		return nil
	}
	p.met.rejected.Add(1)
	req.tenant.met.rejected.Add(1)
	return fmt.Errorf("%w: model %s queue full (depth %d)", ErrOverloaded, p.model, p.cfg.QueueDepth)
}

// dispatch coalesces queued requests into micro-batches, receiving them
// in the scheduler's order: strict priority tiers first, weighted-fair
// within a tier.
func (p *pipeline) dispatch() {
	defer p.wg.Done()
	defer close(p.batches)
	for {
		var first *request
		select {
		case <-p.quit:
			p.sweep()
			return
		case <-p.q.ready:
			first = p.q.take()
		}
		if first == nil {
			continue
		}
		first.deq = time.Now()
		batch := p.expireStale(p.fill(first))
		if len(batch) == 0 {
			continue
		}
		p.met.observeBatch(len(batch))
		p.batches <- batch
	}
}

// fill grows a batch from the queue until MaxBatch, MaxWait after the first
// request, or shutdown.
func (p *pipeline) fill(first *request) []*request {
	batch := []*request{first}
	if p.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(p.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < p.cfg.MaxBatch {
		select {
		case <-p.q.ready:
			if r := p.q.take(); r != nil {
				r.deq = time.Now()
				batch = append(batch, r)
			}
		case <-timer.C:
			return batch
		case <-p.quit:
			return batch
		}
	}
	return batch
}

// expireStale drops requests whose deadline passed while queued.
func (p *pipeline) expireStale(batch []*request) []*request {
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			p.expire(r, now)
			continue
		}
		live = append(live, r)
	}
	return live
}

// expire answers one request with ErrDeadline and accounts it.
func (p *pipeline) expire(r *request, now time.Time) {
	p.met.expired.Add(1)
	r.tenant.met.expired.Add(1)
	r.finishTrace(true)
	r.resp <- response{err: fmt.Errorf("%w: model %s: waited %v", ErrDeadline, p.model, now.Sub(r.enq))}
}

// sweep rejects everything still queued at shutdown. submit cannot add more
// once pipeline.close has flipped closed, so this sees the final queue.
func (p *pipeline) sweep() {
	for _, r := range p.q.drainAll() {
		r.finishTrace(true)
		r.resp <- response{err: ErrClosed}
	}
}

// work is one replica's loop: stack a batch, run it, fan results back out.
// The sample slice is reused across batches so the steady-state loop stays
// off the heap (the replica's own activations already are, via its arena).
func (p *pipeline) work(rep *pkgmgr.Replica) {
	defer p.wg.Done()
	var xs []*tensor.Tensor
	live := make([]*request, 0, p.cfg.MaxBatch)
	for batch := range p.batches {
		// Deadline hygiene at the last gate: a request can expire between
		// dequeue (where expireStale last checked) and this execution
		// start — e.g. while the batch sat behind a slow predecessor in
		// the batches channel. Running it anyway would burn kernel time on
		// an answer nobody is waiting for; drop it with ErrDeadline now.
		now := time.Now()
		live = live[:0]
		for _, r := range batch {
			if !r.deadline.IsZero() && now.After(r.deadline) {
				p.expire(r, now)
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		xs = xs[:0]
		for _, r := range live {
			xs = append(xs, r.x)
		}
		start := time.Now()
		res, err := rep.InferBatch(xs)
		if err != nil {
			p.met.errored.Add(uint64(len(live)))
			for _, r := range live {
				r.tenant.met.errored.Add(1)
				r.finishTrace(true)
				r.resp <- response{err: err}
			}
			continue
		}
		done := time.Now()
		for i, r := range live {
			queued := start.Sub(r.enq)
			total := done.Sub(r.enq)
			qw := r.deq.Sub(r.enq)
			bw := start.Sub(r.deq)
			ex := done.Sub(start)
			p.met.observeDone(queued, total)
			p.met.observeStages(qw, bw, ex)
			var stepsUsed int
			if res.TotalSteps > 0 {
				stepsUsed = res.Steps[i]
				p.met.observeExit(stepsUsed, total)
			}
			r.tenant.met.served.Add(1)
			r.tenant.met.hist.Observe(total)
			r.tenant.met.observeStages(qw, bw, ex)
			if r.tb != nil {
				root := r.tb.Root()
				r.tb.Add(obs.StageQueueWait, root, r.enq, qw)
				r.tb.Add(obs.StageBatchWait, root, r.deq, bw)
				r.tb.Add(obs.StageExec, root, start, ex,
					obs.Str("model", p.model),
					obs.Int("batch", int64(len(live))),
					obs.Int("steps_used", int64(stepsUsed)))
				r.finishTrace(false)
			}
			r.resp <- response{res: Result{
				Model:        p.model,
				Tenant:       r.tenant.cfg.Name,
				Class:        res.Classes[i],
				Confidence:   res.Confidences[i],
				BatchSize:    len(live),
				Queued:       queued,
				StepsUsed:    stepsUsed,
				TotalSteps:   res.TotalSteps,
				ModelLatency: res.ModelLatency,
				ModelEnergy:  res.ModelEnergy,
			}}
		}
	}
}

// stats snapshots this pipeline's counters.
func (p *pipeline) stats() ModelStats {
	return p.met.snapshot(p.model, p.q.len(), p.exitThreshold())
}

// exitThreshold reads the live knob off the first replica's plan (every
// replica carries the same value), mapping the disabled sentinel (+Inf)
// to 0 so the value is JSON-representable.
func (p *pipeline) exitThreshold() float64 {
	if !p.met.earlyExit {
		return 0
	}
	thr := p.reps[0].ExitThreshold()
	if math.IsInf(thr, 1) {
		return 0
	}
	return thr
}

// setExitThreshold flips the live early-exit knob on every replica;
// reports whether the pipeline's plans support early exit at all.
func (p *pipeline) setExitThreshold(thr float64) bool {
	for _, r := range p.reps {
		r.SetExitThreshold(thr)
	}
	return p.met.earlyExit
}

// drain retires the pipeline without dropping anything: new submits are
// rejected (the engine redirects them to the pipeline that replaced this
// one), but everything already queued is batched and answered before the
// workers exit. It is the swap-out half of Engine.Swap.
func (p *pipeline) drain() {
	p.sendMu.Lock()
	if p.closed {
		p.sendMu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.sendMu.Unlock()
	// No submit can enter past this point, so the queue only shrinks; once
	// it is empty the shutdown sweep has nothing to reject.
	for p.q.len() > 0 {
		time.Sleep(200 * time.Microsecond)
	}
	close(p.quit)
	p.wg.Wait()
}

// close stops the pipeline: blocks new submits, lets the dispatcher sweep
// the queue, and waits for replica workers to finish in-flight batches.
func (p *pipeline) close() {
	p.sendMu.Lock()
	if p.closed {
		p.sendMu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.sendMu.Unlock()
	close(p.quit)
	p.wg.Wait()
}
