package serving

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openei/internal/pkgmgr"
)

// loadTwoTiers loads two models with compatible (same element count)
// inputs into one manager so Swap can flip between them.
func loadTwoTiers(t *testing.T, cfg Config) *Engine {
	t.Helper()
	mgr := testManager(t)
	if err := mgr.Load(denseModel("tier-big", 32, 128, 4), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Load(denseModel("tier-small", 32, 8, 4), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, cfg)
	t.Cleanup(e.Close)
	return e
}

func TestSwapRoutesRequests(t *testing.T) {
	e := loadTwoTiers(t, Config{Replicas: 1, MaxBatch: 4})
	x := oneHot(32, 1)
	res, err := e.Infer(context.Background(), "tier-big", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "tier-big" {
		t.Fatalf("served by %q, want tier-big", res.Model)
	}
	if err := e.Swap("tier-big", "tier-small"); err != nil {
		t.Fatal(err)
	}
	if got := e.Route("tier-big"); got != "tier-small" {
		t.Fatalf("route = %q, want tier-small", got)
	}
	res, err = e.Infer(context.Background(), "tier-big", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "tier-small" {
		t.Fatalf("served by %q after swap, want tier-small", res.Model)
	}
	// Swap back to self removes the route.
	if err := e.Swap("tier-big", "tier-big"); err != nil {
		t.Fatal(err)
	}
	if got := e.Route("tier-big"); got != "tier-big" {
		t.Fatalf("route after self-swap = %q", got)
	}
}

func TestSwapUnknownTarget(t *testing.T) {
	e := loadTwoTiers(t, Config{})
	if err := e.Swap("tier-big", "no-such-model"); err == nil {
		t.Fatal("swap to unknown model did not fail")
	}
	if got := e.Route("tier-big"); got != "tier-big" {
		t.Fatalf("failed swap changed route to %q", got)
	}
}

// TestSwapUnderLoadZeroDrops hammers one public name from many clients
// while flipping the route back and forth; every request must get an
// answer (drain-and-replace may reject nothing).
func TestSwapUnderLoadZeroDrops(t *testing.T) {
	e := loadTwoTiers(t, Config{
		Replicas: 2, MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueDepth: 4096,
	})
	const (
		clients   = 16
		perClient = 60
	)
	var (
		clientWG sync.WaitGroup
		swapWG   sync.WaitGroup
		served   [2]atomic.Uint64 // [0] tier-big, [1] tier-small
	)
	x := oneHot(32, 2)
	stop := make(chan struct{})
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		tiers := [2]string{"tier-small", "tier-big"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Swap("tier-big", tiers[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for i := 0; i < perClient; i++ {
				res, err := e.Infer(context.Background(), "tier-big", x)
				if err != nil {
					t.Errorf("infer: %v", err)
					return
				}
				if res.Model == "tier-small" {
					served[1].Add(1)
				} else {
					served[0].Add(1)
				}
			}
		}()
	}
	clientWG.Wait()
	close(stop)
	swapWG.Wait()
	if total := served[0].Load() + served[1].Load(); total != clients*perClient {
		t.Fatalf("served %d answers, want %d (some requests were dropped)", total, clients*perClient)
	}
}
