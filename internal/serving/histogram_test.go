package serving

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestHistIndexMonotone checks the bucket mapping is monotone and that the
// reported upper bound really bounds every value mapped into the bucket.
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for us := int64(0); us < 1<<20; us += 1 + us/64 {
		d := time.Duration(us) * time.Microsecond
		idx := histIndex(d)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %v: %d < %d", d, idx, prev)
		}
		prev = idx
		if ub := histUpperBound(idx); ub < d {
			t.Fatalf("upper bound %v of bucket %d below member %v", ub, idx, d)
		}
	}
	// Absurd values clamp into the last bucket instead of indexing out of
	// range.
	if idx := histIndex(240 * time.Hour); idx != histBuckets-1 {
		t.Fatalf("clamp: got bucket %d, want %d", idx, histBuckets-1)
	}
	if idx := histIndex(-time.Second); idx != 0 {
		t.Fatalf("negative duration: got bucket %d, want 0", idx)
	}
}

// TestHistogramQuantiles feeds a known distribution and checks the
// quantile estimates land within the histogram's resolution (~6% high).
func TestHistogramQuantiles(t *testing.T) {
	var h latencyHistogram
	rng := rand.New(rand.NewSource(3))
	// 95% of mass at ~1ms, 5% at ~80ms.
	for i := 0; i < 2000; i++ {
		base := time.Millisecond
		if i%20 == 0 {
			base = 80 * time.Millisecond
		}
		jitter := time.Duration(rng.Intn(50)) * time.Microsecond
		h.Observe(base + jitter)
	}
	s := h.Snapshot()
	if s.Count != 2000 {
		t.Fatalf("count = %d, want 2000", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < time.Millisecond || p50 > 1200*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 80*time.Millisecond || p99 > 90*time.Millisecond {
		t.Fatalf("p99 = %v, want ~80ms", p99)
	}
	if q := s.Quantile(0); q > 1100*time.Microsecond {
		t.Fatalf("q0 = %v, want ≈ min", q)
	}
}

// TestSnapshotSub checks interval deltas, including the pipeline-rebuilt
// case where the counters restarted from zero.
func TestSnapshotSub(t *testing.T) {
	var h latencyHistogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	first := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(10 * time.Millisecond)
	}
	delta := h.Snapshot().Sub(first)
	if delta.Count != 50 {
		t.Fatalf("delta count = %d, want 50", delta.Count)
	}
	if p50 := delta.Quantile(0.5); p50 < 10*time.Millisecond || p50 > 11*time.Millisecond {
		t.Fatalf("delta p50 = %v, want ~10ms (old 1ms mass must not leak in)", p50)
	}
	// A fresh histogram (swapped-out pipeline rebuilt) has a smaller total
	// than the stale snapshot; Sub must fall back to the current counts.
	var fresh latencyHistogram
	fresh.Observe(2 * time.Millisecond)
	d2 := fresh.Snapshot().Sub(first)
	if d2.Count != 1 {
		t.Fatalf("reset delta count = %d, want 1", d2.Count)
	}
}

// TestQuantileRankBeyondMass: when racing observers (or interval
// subtraction) leave Count larger than the summed bucket mass, Quantile
// must answer with the largest observed bucket, never the ~35-minute
// top-bucket sentinel that would read as a catastrophic tail.
func TestQuantileRankBeyondMass(t *testing.T) {
	var s LatencySnapshot
	s.Buckets[histIndex(2*time.Millisecond)] = 5
	s.Count = 10 // rank(0.95) = 9 ≥ mass 5
	if got := s.Quantile(0.95); got > 3*time.Millisecond {
		t.Fatalf("over-counted snapshot p95 = %v, want ~2ms (largest observed bucket)", got)
	}
	// All-zero buckets with a non-zero count (pure race residue) stay 0.
	var empty LatencySnapshot
	empty.Count = 3
	if got := empty.Quantile(0.95); got != 0 {
		t.Fatalf("empty-bucket snapshot p95 = %v, want 0", got)
	}
}

func TestStatsQuantilesExposed(t *testing.T) {
	_, e := newTestEngine(t, identModel(4), Config{Replicas: 1, MaxBatch: 1})
	for i := 0; i < 20; i++ {
		if _, err := e.Infer(context.Background(), "ident", oneHot(4, i%4)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if len(st) != 1 {
		t.Fatalf("stats: %d models, want 1", len(st))
	}
	if st[0].P95MS <= 0 || st[0].P50MS <= 0 || st[0].P99MS < st[0].P50MS {
		t.Fatalf("histogram quantiles not populated: %+v", st[0])
	}
}
