package serving

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"openei/internal/alem"
	"openei/internal/hardware"
	"openei/internal/nn"
	"openei/internal/pkgmgr"
	"openei/internal/tensor"
)

func testManager(t *testing.T) *pkgmgr.Manager {
	t.Helper()
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := hardware.ByName("jetson-tx2")
	if err != nil {
		t.Fatal(err)
	}
	m := pkgmgr.New(pkg, dev)
	t.Cleanup(m.Close)
	return m
}

// identModel is a parameter-free model whose logits are its input, so the
// predicted class of a one-hot sample is its hot index — ideal for checking
// that batched results fan back out to the right requests.
func identModel(classes int) *nn.Model {
	return nn.MustModel("ident", []int{classes}, []nn.LayerSpec{{Type: "flatten"}})
}

// denseModel is a small trained-shape MLP for timing-sensitive tests.
func denseModel(name string, in, hidden, classes int) *nn.Model {
	m := nn.MustModel(name, []int{in}, []nn.LayerSpec{
		{Type: "dense", In: in, Out: hidden},
		{Type: "relu"},
		{Type: "dense", In: hidden, Out: classes},
	})
	m.InitParams(rand.New(rand.NewSource(7)))
	return m
}

func oneHot(classes, hot int) *tensor.Tensor {
	data := make([]float32, classes)
	data[hot] = 1
	return tensor.MustFrom(data, classes)
}

func newTestEngine(t *testing.T, m *nn.Model, cfg Config) (*pkgmgr.Manager, *Engine) {
	t.Helper()
	mgr := testManager(t)
	if err := mgr.Load(m, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, cfg)
	t.Cleanup(e.Close)
	return mgr, e
}

func TestBatchCoalescing(t *testing.T) {
	const n = 8
	_, e := newTestEngine(t, identModel(n), Config{
		MaxBatch: n, MaxWait: 300 * time.Millisecond, Replicas: 1, QueueDepth: 32,
	})
	// The first request opens a 300ms fill window; the stragglers arrive
	// well inside it, so all n requests ride one micro-batch.
	var wg sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				time.Sleep(20 * time.Millisecond) // let request 0 open the window
			}
			results[i], errs[i] = e.Infer(context.Background(), "ident", oneHot(n, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if results[i].Class != i {
			t.Errorf("request %d classified as %d (batch fan-out misrouted)", i, results[i].Class)
		}
	}
	st := e.Stats()
	if len(st) != 1 || st[0].Model != "ident" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Kernels == "" {
		t.Error("model stats missing kernel dispatch (want e.g. \"packed-fma\" or \"scalar\")")
	}
	if st[0].Batches != 1 || st[0].LargestBatch != n {
		t.Errorf("expected one micro-batch of %d, got %d batches (largest %d)",
			n, st[0].Batches, st[0].LargestBatch)
	}
	if st[0].Completed != n || st[0].AvgBatch != n {
		t.Errorf("completed=%d avg_batch=%v, want %d and %d", st[0].Completed, st[0].AvgBatch, n, n)
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	// MaxWait far exceeds the request deadline and nothing else arrives to
	// fill the batch, so the deadline lapses while the request waits.
	_, e := newTestEngine(t, identModel(4), Config{
		MaxBatch: 8, MaxWait: 250 * time.Millisecond, Replicas: 1, QueueDepth: 8,
	})
	_, err := e.InferWithDeadline("ident", oneHot(4, 1), 30*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if st := e.Stats(); st[0].ExpiredDeadline != 1 {
		t.Errorf("expired_deadline = %d, want 1", st[0].ExpiredDeadline)
	}
}

func TestContextDeadlineHonored(t *testing.T) {
	_, e := newTestEngine(t, identModel(4), Config{
		MaxBatch: 8, MaxWait: 250 * time.Millisecond, Replicas: 1, QueueDepth: 8,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := e.Infer(ctx, "ident", oneHot(4, 0))
	if !errors.Is(err, ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline error", err)
	}
}

func TestBackpressureRejectsWhenQueueFull(t *testing.T) {
	// A deliberately heavy MLP keeps the lone replica busy while a flood of
	// clients hammers a depth-1 queue: most must bounce with ErrOverloaded.
	_, e := newTestEngine(t, denseModel("heavy", 1024, 1024, 8), Config{
		MaxBatch: 1, MaxWait: time.Millisecond, Replicas: 1, QueueDepth: 1,
	})
	const clients = 50
	x := tensor.New(1024)
	var wg sync.WaitGroup
	var overloaded, ok, other int
	var mu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Infer(context.Background(), "heavy", x)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				overloaded++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected errors: %d", other)
	}
	if overloaded == 0 {
		t.Errorf("no request was shed; backpressure is not engaging (ok=%d)", ok)
	}
	if ok == 0 {
		t.Errorf("every request was shed; admission control is too aggressive")
	}
	st := e.Stats()
	if st[0].RejectedOverload != uint64(overloaded) {
		t.Errorf("rejected_overload = %d, want %d", st[0].RejectedOverload, overloaded)
	}
}

func TestReplicaPoolRoutesResultsToRequests(t *testing.T) {
	const classes = 8
	_, e := newTestEngine(t, identModel(classes), Config{
		MaxBatch: 8, MaxWait: time.Millisecond, Replicas: 4, QueueDepth: 256,
	})
	const total = 200
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := i % classes
			res, err := e.Infer(context.Background(), "ident", oneHot(classes, want))
			if err != nil {
				errCh <- err
				return
			}
			if res.Class != want {
				t.Errorf("request %d: class %d, want %d (cross-replica result mixup)", i, res.Class, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("infer: %v", err)
	}
	st := e.Stats()
	if st[0].Completed != total {
		t.Errorf("completed = %d, want %d", st[0].Completed, total)
	}
	if st[0].Batches >= total {
		t.Errorf("no coalescing happened under %d concurrent clients (%d batches)", total, st[0].Batches)
	}
}

func TestUnknownModelAndBadInput(t *testing.T) {
	_, e := newTestEngine(t, identModel(4), Config{})
	if _, err := e.Infer(context.Background(), "nope", oneHot(4, 0)); !errors.Is(err, pkgmgr.ErrUnknownModel) {
		t.Errorf("unknown model err = %v", err)
	}
	if _, err := e.Infer(context.Background(), "ident", tensor.New(5)); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad shape err = %v", err)
	}
	// Batch-of-one and flat inputs are both accepted.
	if _, err := e.Infer(context.Background(), "ident", tensor.New(1, 4)); err != nil {
		t.Errorf("batch-of-one input: %v", err)
	}
	if _, err := e.Infer(context.Background(), "ident", tensor.New(4)); err != nil {
		t.Errorf("flat input: %v", err)
	}
}

func TestCloseRejectsAndIsIdempotent(t *testing.T) {
	mgr := testManager(t)
	if err := mgr.Load(identModel(4), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, Config{})
	if _, err := e.Infer(context.Background(), "ident", oneHot(4, 2)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.Infer(context.Background(), "ident", oneHot(4, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("infer after close: %v, want ErrClosed", err)
	}
}

func TestResetPicksUpReloadedWeights(t *testing.T) {
	mgr := testManager(t)
	// A 2→2 dense "router": with these weights, input [1,0] → class 0.
	m := nn.MustModel("router", []int{2}, []nn.LayerSpec{{Type: "dense", In: 2, Out: 2}})
	d := m.Layers[0].(*nn.Dense)
	copy(d.W.Data(), []float32{1, 0, 0, 1}) // identity
	if err := mgr.Load(m, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, Config{Replicas: 2})
	t.Cleanup(e.Close)

	x := tensor.MustFrom([]float32{1, 0}, 2)
	res, err := e.Infer(context.Background(), "router", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 0 {
		t.Fatalf("initial class = %d, want 0", res.Class)
	}

	// Reload the model with swapped rows: input [1,0] now maps to class 1.
	// Without Reset, the frozen replicas would keep serving the old weights.
	m2 := nn.MustModel("router", []int{2}, []nn.LayerSpec{{Type: "dense", In: 2, Out: 2}})
	copy(m2.Layers[0].(*nn.Dense).W.Data(), []float32{0, 1, 1, 0})
	if err := mgr.Load(m2, pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err = e.Infer(context.Background(), "router", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 0 {
		t.Fatalf("pre-reset class = %d; replicas are snapshots, reload alone must not change them", res.Class)
	}
	e.Reset("router")
	res, err = e.Infer(context.Background(), "router", x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != 1 {
		t.Errorf("post-reset class = %d, want 1 (new weights)", res.Class)
	}
	e.Reset("never-served") // no-op
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxBatch <= 0 || cfg.MaxWait <= 0 || cfg.Replicas <= 0 || cfg.QueueDepth <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestQueueDepthSnapshot(t *testing.T) {
	_, e := newTestEngine(t, identModel(4), Config{QueueDepth: 32})
	if d, c := e.QueueDepth(); d != 0 || c != 0 {
		t.Fatalf("fresh engine depth/cap = %d/%d, want 0/0 (no pipelines yet)", d, c)
	}
	if _, err := e.Infer(context.Background(), "ident", oneHot(4, 1)); err != nil {
		t.Fatal(err)
	}
	d, c := e.QueueDepth()
	if c != 32 {
		t.Errorf("capacity = %d, want 32 after first pipeline", c)
	}
	if d != 0 {
		t.Errorf("depth = %d, want 0 at idle", d)
	}
}
