package serving

import (
	"sync/atomic"
	"time"
)

// modelMetrics is one pipeline's counter set, updated with atomics so the
// hot path never takes a lock for accounting.
type modelMetrics struct {
	replicas int
	queueCap int
	backend  string
	kernels  string

	enqueued atomic.Uint64 // admitted into the queue
	rejected atomic.Uint64 // ErrOverloaded at admission
	expired  atomic.Uint64 // ErrDeadline (at admission or in queue)
	errored  atomic.Uint64 // inference errors, counted per request
	done     atomic.Uint64 // successful responses

	batches      atomic.Uint64 // micro-batches dispatched
	batchedReqs  atomic.Uint64 // sum of dispatched batch sizes
	largestBatch atomic.Uint64

	queuedNS  atomic.Uint64 // total pre-execution wait of done requests
	latencyNS atomic.Uint64 // total enqueue→response time of done requests

	// hist is the enqueue→response latency distribution behind the
	// rolling p50/p95/p99 in /ei_metrics and the autopilot's per-tick
	// quantile deltas.
	hist latencyHistogram

	// Stage decomposition of every completed request: scheduler backlog
	// (enqueue → scheduler pick), batch assembly (pick → replica start),
	// and plan execution (InferBatch). Permanent HDR histograms plus
	// duration sums for the Prometheus histogram export.
	qwHist latencyHistogram
	bwHist latencyHistogram
	exHist latencyHistogram
	qwNS   atomic.Uint64
	bwNS   atomic.Uint64
	exNS   atomic.Uint64

	// Early-exit accounting (earlyExit pipelines only). totalSteps is
	// the recurrent window length T; stepsSum accumulates per-sample
	// steps consumed; exitStats[s-1] is exit head s's counter and
	// latency distribution — the `exits` block of /ei_metrics.
	earlyExit  bool
	totalSteps int
	stepsSum   atomic.Uint64
	exitStats  []exitStat
}

// exitStat is one exit head's counters: how many samples retired at this
// step and their enqueue→response latency distribution.
type exitStat struct {
	count atomic.Uint64
	hist  latencyHistogram
}

// observeExit records one sample retiring after `steps` RNN steps with
// the given end-to-end latency.
func (m *modelMetrics) observeExit(steps int, total time.Duration) {
	if steps < 1 || steps > len(m.exitStats) {
		return
	}
	m.stepsSum.Add(uint64(steps))
	s := &m.exitStats[steps-1]
	s.count.Add(1)
	s.hist.Observe(total)
}

func (m *modelMetrics) observeBatch(n int) {
	m.batches.Add(1)
	m.batchedReqs.Add(uint64(n))
	for {
		cur := m.largestBatch.Load()
		if uint64(n) <= cur || m.largestBatch.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

func (m *modelMetrics) observeDone(queued, total time.Duration) {
	m.done.Add(1)
	m.queuedNS.Add(uint64(queued))
	m.latencyNS.Add(uint64(total))
	m.hist.Observe(total)
}

// observeStages records one completed request's stage decomposition.
func (m *modelMetrics) observeStages(qw, bw, ex time.Duration) {
	m.qwHist.Observe(qw)
	m.bwHist.Observe(bw)
	m.exHist.Observe(ex)
	m.qwNS.Add(uint64(qw))
	m.bwNS.Add(uint64(bw))
	m.exNS.Add(uint64(ex))
}

// StageLatency is one stage's latency summary inside the per-model and
// per-tenant blocks of /ei_metrics. (Quantiles are HDR bucket estimates,
// like the top-level p50/p95/p99; the raw buckets feed the Prometheus
// histogram families instead of the JSON view.)
type StageLatency struct {
	AvgMS float64 `json:"avg_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func stageLatency(h *latencyHistogram, sumNS uint64, n uint64) *StageLatency {
	if n == 0 {
		return nil
	}
	s := h.Snapshot()
	return &StageLatency{
		AvgMS: float64(sumNS) / float64(n) / 1e6,
		P50MS: float64(s.Quantile(0.50)) / 1e6,
		P95MS: float64(s.Quantile(0.95)) / 1e6,
		P99MS: float64(s.Quantile(0.99)) / 1e6,
	}
}

// ModelStats is the JSON-friendly snapshot of one model's serving counters,
// exposed at GET /ei_metrics.
type ModelStats struct {
	Model    string `json:"model"`
	Replicas int    `json:"replicas"`
	// Backend is the execution backend of the pipeline's compiled plans
	// ("float32", "int8", "int4", or "layer-walk" for the fallback path)
	// — tier names imply backends, and this is where that claim is
	// observable.
	Backend string `json:"backend"`
	// Kernels is the compute-kernel dispatch of those plans on this
	// process: the base GEMM kernel ("packed-fma" float / "qgemm-avx2"
	// quantized / "scalar" fallback), "+direct-conv" when a convolution
	// runs the im2col-free stencil. Empty on the layer-walk path.
	Kernels string `json:"kernels,omitempty"`

	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	Enqueued         uint64 `json:"enqueued"`
	Completed        uint64 `json:"completed"`
	RejectedOverload uint64 `json:"rejected_overload"`
	ExpiredDeadline  uint64 `json:"expired_deadline"`
	Errors           uint64 `json:"errors"`

	Batches      uint64  `json:"batches"`
	AvgBatch     float64 `json:"avg_batch"`
	LargestBatch int     `json:"largest_batch"`

	AvgQueueMS   float64 `json:"avg_queue_ms"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`

	// P50MS/P95MS/P99MS are enqueue→response latency quantiles over the
	// model's whole serving history (HDR-style bucket estimates, ≤ ~6%
	// high). Per-interval quantiles come from LatencySnapshot deltas.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`

	// Stage decomposition of completed requests (present once any have
	// completed): scheduler backlog, batch assembly wait, and plan
	// execution. The three sum to ≈ avg_latency_ms.
	QueueWait *StageLatency `json:"queue_wait_ms,omitempty"`
	BatchWait *StageLatency `json:"batch_wait_ms,omitempty"`
	Exec      *StageLatency `json:"exec_ms,omitempty"`

	// Early-exit block (early-exit-capable pipelines only). ExitThreshold
	// is the live confidence knob (0 when early exit is disabled);
	// TotalSteps is the recurrent window length T; MeanStepsUsed averages
	// per-sample steps over completed requests (== TotalSteps when
	// disabled); Exits lists the per-exit-head distributions.
	EarlyExit     bool        `json:"early_exit,omitempty"`
	ExitThreshold float64     `json:"exit_threshold,omitempty"`
	TotalSteps    int         `json:"total_steps,omitempty"`
	MeanStepsUsed float64     `json:"mean_steps_used,omitempty"`
	Exits         []ExitStats `json:"exits,omitempty"`
}

// ExitStats is one exit head's share of the `exits` block in
// /ei_metrics: how many completed samples retired at this RNN step
// (Step == TotalSteps is the no-exit tail) and their enqueue→response
// latency quantiles. Count is a monotone counter; the quantiles are
// gauges derived from the cumulative distribution.
type ExitStats struct {
	Step  int     `json:"step"`
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
}

// HistogramExport hands one raw HDR histogram to the Prometheus
// exposition layer (which renders real bucket series; the JSON view only
// carries quantile summaries).
type HistogramExport struct {
	Stage string // "latency", "queue_wait", "batch_wait", or "exec"
	Label string // identifying label key: "model" or "tenant"
	Value string // label value
	Snap  LatencySnapshot
	SumNS uint64 // total observed duration, the histogram _sum
}

// HistogramExports snapshots every per-model and per-tenant histogram
// (end-to-end latency plus the three stage histograms) for /metrics.
func (e *Engine) HistogramExports() []HistogramExport {
	e.mu.RLock()
	pipes := make([]*pipeline, 0, len(e.pipes))
	for _, p := range e.pipes {
		pipes = append(pipes, p)
	}
	e.mu.RUnlock()
	var out []HistogramExport
	for _, p := range pipes {
		m := &p.met
		out = append(out,
			HistogramExport{"latency", "model", p.model, m.hist.Snapshot(), m.latencyNS.Load()},
			HistogramExport{"queue_wait", "model", p.model, m.qwHist.Snapshot(), m.qwNS.Load()},
			HistogramExport{"batch_wait", "model", p.model, m.bwHist.Snapshot(), m.bwNS.Load()},
			HistogramExport{"exec", "model", p.model, m.exHist.Snapshot(), m.exNS.Load()},
		)
	}
	for _, ts := range e.tenants.all {
		m := &ts.met
		// The tenant latency _sum is reconstructed from the stage sums
		// (qw + bw + ex spans enqueue → response exactly).
		latSum := m.qwNS.Load() + m.bwNS.Load() + m.exNS.Load()
		out = append(out,
			HistogramExport{"latency", "tenant", ts.cfg.Name, m.hist.Snapshot(), latSum},
			HistogramExport{"queue_wait", "tenant", ts.cfg.Name, m.qwHist.Snapshot(), m.qwNS.Load()},
			HistogramExport{"batch_wait", "tenant", ts.cfg.Name, m.bwHist.Snapshot(), m.bwNS.Load()},
			HistogramExport{"exec", "tenant", ts.cfg.Name, m.exHist.Snapshot(), m.exNS.Load()},
		)
	}
	return out
}

func (m *modelMetrics) snapshot(model string, depth int, exitThr float64) ModelStats {
	s := ModelStats{
		Model:            model,
		Replicas:         m.replicas,
		Backend:          m.backend,
		Kernels:          m.kernels,
		QueueDepth:       depth,
		QueueCap:         m.queueCap,
		Enqueued:         m.enqueued.Load(),
		Completed:        m.done.Load(),
		RejectedOverload: m.rejected.Load(),
		ExpiredDeadline:  m.expired.Load(),
		Errors:           m.errored.Load(),
		Batches:          m.batches.Load(),
		LargestBatch:     int(m.largestBatch.Load()),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(m.batchedReqs.Load()) / float64(s.Batches)
	}
	if s.Completed > 0 {
		s.AvgQueueMS = float64(m.queuedNS.Load()) / float64(s.Completed) / 1e6
		s.AvgLatencyMS = float64(m.latencyNS.Load()) / float64(s.Completed) / 1e6
		h := m.hist.Snapshot()
		s.P50MS = float64(h.Quantile(0.50)) / 1e6
		s.P95MS = float64(h.Quantile(0.95)) / 1e6
		s.P99MS = float64(h.Quantile(0.99)) / 1e6
		s.QueueWait = stageLatency(&m.qwHist, m.qwNS.Load(), s.Completed)
		s.BatchWait = stageLatency(&m.bwHist, m.bwNS.Load(), s.Completed)
		s.Exec = stageLatency(&m.exHist, m.exNS.Load(), s.Completed)
	}
	if m.earlyExit {
		s.EarlyExit = true
		s.ExitThreshold = exitThr
		s.TotalSteps = m.totalSteps
		var exited uint64
		for i := range m.exitStats {
			es := &m.exitStats[i]
			c := es.count.Load()
			if c == 0 {
				continue
			}
			exited += c
			eh := es.hist.Snapshot()
			s.Exits = append(s.Exits, ExitStats{
				Step:  i + 1,
				Count: c,
				P50MS: float64(eh.Quantile(0.50)) / 1e6,
				P95MS: float64(eh.Quantile(0.95)) / 1e6,
			})
		}
		if exited > 0 {
			s.MeanStepsUsed = float64(m.stepsSum.Load()) / float64(exited)
		}
	}
	return s
}
