package serving

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHistogram is an HDR-style log-linear histogram of request
// latencies: each power-of-two octave of microseconds is split into
// histSub linear sub-buckets, bounding the relative quantile error at
// ~1/histSub (±6%) while keeping observation a single atomic increment —
// no lock on the serving hot path, and cheap enough to run even when the
// autopilot is off.
type latencyHistogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
}

const (
	// histSubBits sub-divides each octave into 2^histSubBits buckets.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histMaxShift caps the top octave; values beyond ~2^(histMaxShift+
	// histSubBits+1) µs (≈ 35 min at 26) clamp into the last bucket.
	histMaxShift = 26
	histBuckets  = (histMaxShift + 2) * histSub
)

// histIndex maps a duration to its bucket. Monotone in d.
func histIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	shift := bits.Len64(uint64(us)) - 1 - histSubBits
	if shift < 0 {
		shift = 0
	}
	if shift > histMaxShift {
		shift = histMaxShift
		return histBuckets - 1
	}
	return shift*histSub + int(us>>uint(shift))
}

// histUpperBound is the largest duration a bucket can hold — the value a
// quantile lookup reports (conservative: real latency is ≤ the estimate).
func histUpperBound(idx int) time.Duration {
	if idx < 2*histSub {
		return time.Duration(idx) * time.Microsecond
	}
	shift := idx/histSub - 1
	frac := idx - shift*histSub
	us := (int64(frac+1) << uint(shift)) - 1
	return time.Duration(us) * time.Microsecond
}

// Observe records one latency.
func (h *latencyHistogram) Observe(d time.Duration) {
	h.buckets[histIndex(d)].Add(1)
	h.count.Add(1)
}

// Snapshot copies the histogram's counters.
func (h *latencyHistogram) Snapshot() LatencySnapshot {
	var s LatencySnapshot
	// Total is read first: racing observers can only make bucket sums ≥
	// Total, never leave a quantile rank pointing past the counted mass.
	s.Count = h.count.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// LatencySnapshot is a point-in-time copy of a model's latency histogram.
// Subtracting two snapshots yields the distribution of an interval, which
// is what the autopilot's control loop quantizes each tick.
type LatencySnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
}

// Sub returns the distribution observed since prev. A pipeline that was
// swapped out and rebuilt restarts its counters; a shrinking total is
// detected and the current snapshot is returned whole.
func (s LatencySnapshot) Sub(prev LatencySnapshot) LatencySnapshot {
	if s.Count < prev.Count {
		return s
	}
	d := LatencySnapshot{Count: s.Count - prev.Count}
	for i := range s.Buckets {
		if s.Buckets[i] >= prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		}
	}
	return d
}

// Quantile estimates the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding that rank; 0 when the snapshot is empty.
func (s LatencySnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	last := -1
	for i := range s.Buckets {
		if s.Buckets[i] == 0 {
			continue
		}
		last = i
		cum += s.Buckets[i]
		if cum > rank {
			return histUpperBound(i)
		}
	}
	// Racing observers (Count is loaded before the buckets) and interval
	// subtraction can leave rank ≥ the summed bucket mass; answer with
	// the largest *observed* bucket instead of the ~35-minute top-bucket
	// sentinel, which would read as a catastrophic tail to the autopilot.
	if last >= 0 {
		return histUpperBound(last)
	}
	return 0
}

// CumBuckets collapses the log-linear distribution to its octave
// boundaries — one cumulative count per power-of-two upper bound, ~28
// buckets — the granularity the Prometheus histogram exposition uses.
// Returned slices are parallel: uppersMS[i] is the bucket bound in
// milliseconds, cums[i] the cumulative count at or under it.
func (s LatencySnapshot) CumBuckets() (uppersMS []float64, cums []uint64) {
	n := histBuckets / histSub
	uppersMS = make([]float64, n)
	cums = make([]uint64, n)
	var cum uint64
	for o := 0; o < n; o++ {
		for i := o * histSub; i < (o+1)*histSub; i++ {
			cum += s.Buckets[i]
		}
		uppersMS[o] = float64(histUpperBound((o+1)*histSub-1)) / float64(time.Millisecond)
		cums[o] = cum
	}
	return uppersMS, cums
}
