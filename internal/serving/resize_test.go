package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"openei/internal/pkgmgr"
)

func TestSetReplicasResizesPool(t *testing.T) {
	mgr := testManager(t)
	if err := mgr.Load(denseModel("m", 32, 16, 4), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, Config{Replicas: 2, MaxBatch: 4})
	t.Cleanup(e.Close)

	// Pre-warm: resizing a never-served model builds its pipeline.
	if err := e.SetReplicas("m", 3); err != nil {
		t.Fatal(err)
	}
	if n, ok := e.ReplicasOf("m"); !ok || n != 3 {
		t.Fatalf("replicas = %d,%v after grow, want 3", n, ok)
	}
	if _, err := e.Infer(context.Background(), "m", oneHot(32, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetReplicas("m", 1); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.ReplicasOf("m"); n != 1 {
		t.Fatalf("replicas = %d after shrink, want 1", n)
	}
	// Stats must report the new width too (it is what /ei_metrics shows).
	for _, s := range e.Stats() {
		if s.Model == "m" && s.Replicas != 1 {
			t.Fatalf("stats replicas = %d, want 1", s.Replicas)
		}
	}
	if err := e.SetReplicas("m", 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("SetReplicas(0) = %v, want ErrBadInput", err)
	}
	if err := e.SetReplicas("absent", 2); err == nil {
		t.Fatal("SetReplicas on an unloaded model must fail")
	}
}

// TestSetReplicasUnderLoadZeroDrops hammers one model with concurrent
// clients while the pool is resized up and down repeatedly: resizing
// reuses the Swap drain machinery, so no request may fail for any reason
// other than admission (which a deep queue rules out here).
func TestSetReplicasUnderLoadZeroDrops(t *testing.T) {
	mgr := testManager(t)
	if err := mgr.Load(denseModel("m", 32, 16, 4), pkgmgr.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mgr, Config{Replicas: 1, MaxBatch: 8, QueueDepth: 4096})
	t.Cleanup(e.Close)

	const (
		clients   = 16
		perClient = 40
	)
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		done     = make(chan struct{})
	)
	x := oneHot(32, 2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := e.Infer(context.Background(), "m", x); err != nil {
					failures.Add(1)
					t.Errorf("infer during resize: %v", err)
				}
			}
		}()
	}
	go func() {
		defer close(done)
		widths := []int{3, 1, 4, 2, 1}
		for _, n := range widths {
			if err := e.SetReplicas("m", n); err != nil {
				t.Errorf("SetReplicas(%d): %v", n, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed across resizes", failures.Load())
	}
	if n, _ := e.ReplicasOf("m"); n != 1 {
		t.Fatalf("final replicas = %d, want 1", n)
	}
}
