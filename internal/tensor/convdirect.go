package tensor

// Direct convolution for the 3×3/stride-1 shapes that dominate the zoo
// (every alexnet-m/vgg-m/squeezenet-m expand layer). Instead of
// materializing the im2col column matrix — 9× the input bytes for a 3×3
// kernel — the image is copied once into a zero-padded buffer (a small
// fraction of the im2col bytes) and the microkernel computes 8 or 16
// complete outputs per call, folding the entire inC×9-tap reduction into
// one pass so nothing is read-modified-written. Other shapes keep the
// im2col+GEMM lowering; 1×1/stride-1/pad-0 convolutions skip the
// lowering too, since their column matrix IS the image.

// directConv3x3OK reports whether the direct kernel handles the spec:
// 3×3, stride 1, and output rows of at least 8 columns so the 8-wide
// vector body has work to do (padding counts — an 8×8 image with pad 1
// produces 8-column output rows).
func directConv3x3OK(s Conv2DSpec) bool {
	return s.KH == 3 && s.KW == 3 && s.Stride == 1 && s.InW+2*s.Pad >= 10
}

// conv1x1OK reports the identity-lowering shapes: a 1×1/stride-1/pad-0
// convolution's im2col output equals its input, so the GEMM runs on the
// image directly.
func conv1x1OK(s Conv2DSpec) bool {
	return s.KH == 1 && s.KW == 1 && s.Stride == 1 && s.Pad == 0
}

// padImage3x3 materializes one image with its zero border (inC,
// inH+2·pad, inW+2·pad) into buf, or returns src unchanged for pad 0.
// The copy costs a fraction of the input bytes — versus 9× for im2col —
// and buys the microkernel a world with no edge cases: every output is
// a full 9-tap stencil over in-range rows.
func padImage3x3(buf, src []float32, s Conv2DSpec) []float32 {
	if s.Pad == 0 {
		return src
	}
	pH, pW := s.InH+2*s.Pad, s.InW+2*s.Pad
	p := buf[:s.InC*pH*pW]
	for i := range p {
		p[i] = 0
	}
	for ic := 0; ic < s.InC; ic++ {
		for ih := 0; ih < s.InH; ih++ {
			row := src[(ic*s.InH+ih)*s.InW : (ic*s.InH+ih+1)*s.InW]
			copy(p[ic*pH*pW+(ih+s.Pad)*pW+s.Pad:], row)
		}
	}
	return p
}

// convDirect3x3RowGo is the pure-Go row kernel behind the same padded
// layout: each output is a complete bias + inC·9-tap sum, taps in the
// same (ic, kh, kw) order as the assembly.
func convDirect3x3RowGo(drow, srow, ker []float32, inC, chanStride, pW int) {
	for ow := range drow {
		acc := drow[ow]
		for ic := 0; ic < inC; ic++ {
			k := ker[ic*9 : ic*9+9]
			base := ic*chanStride + ow
			r0 := srow[base : base+3]
			r1 := srow[base+pW : base+pW+3]
			r2 := srow[base+2*pW : base+2*pW+3]
			acc += k[0]*r0[0] + k[1]*r0[1] + k[2]*r0[2] +
				k[3]*r1[0] + k[4]*r1[1] + k[5]*r1[2] +
				k[6]*r2[0] + k[7]*r2[1] + k[8]*r2[2]
		}
		drow[ow] = acc
	}
}

// convDirect3x3 computes output channels [ocLo, ocHi) of one image from
// its padded layout pimg (see padImage3x3). Rows are covered by 16-wide
// (then 8-wide) microkernel calls; because each call writes complete
// sums, the final call of a row simply overlaps the previous span
// instead of needing a scalar tail. Per-output tap order is fixed by
// shape alone, and overlapped recomputation is bit-identical, so results
// are bitwise pool-width-independent however the caller shards images or
// channel ranges.
func convDirect3x3(dst, pimg, w, bias []float32, s Conv2DSpec, ocLo, ocHi int) {
	outH, outW := s.OutH(), s.OutW()
	pW := s.InW + 2*s.Pad
	chanStride := (s.InH + 2*s.Pad) * pW
	planeLen := outH * outW
	for oc := ocLo; oc < ocHi; oc++ {
		ker := w[oc*s.InC*9 : (oc+1)*s.InC*9]
		var bv float32
		if bias != nil {
			bv = bias[oc]
		}
		plane := dst[oc*planeLen : (oc+1)*planeLen]
		for oh := 0; oh < outH; oh++ {
			drow := plane[oh*outW : (oh+1)*outW]
			srow := pimg[oh*pW:]
			if !useFMA {
				for i := range drow {
					drow[i] = bv
				}
				convDirect3x3RowGo(drow, srow, ker, s.InC, chanStride, pW)
				continue
			}
			ow := 0
			for ; ow+16 <= outW; ow += 16 {
				fconv3x3Asm16(&drow[ow], &srow[ow], s.InC, chanStride, pW, &ker[0], bv)
			}
			if ow < outW {
				switch {
				case outW >= 16:
					fconv3x3Asm16(&drow[outW-16], &srow[outW-16], s.InC, chanStride, pW, &ker[0], bv)
				default:
					for ; ow+8 <= outW; ow += 8 {
						fconv3x3Asm8(&drow[ow], &srow[ow], s.InC, chanStride, pW, &ker[0], bv)
					}
					if ow < outW {
						fconv3x3Asm8(&drow[outW-8], &srow[outW-8], s.InC, chanStride, pW, &ker[0], bv)
					}
				}
			}
		}
	}
}

// qpackWeights3x3 packs each (oc, ic, kernel-row) weight triple into the
// two dwords of adjacent int16 the VPMADDWD stencil kernels broadcast:
// (w0,w1) and (w2,0). Layout: wp[(oc*inC+ic)*6 + kh*2 + {0,1}].
func qpackWeights3x3(wp []int32, wq []int8, outC, inC int) {
	for oc := 0; oc < outC; oc++ {
		for ic := 0; ic < inC; ic++ {
			k := wq[(oc*inC+ic)*9 : (oc*inC+ic)*9+9]
			base := (oc*inC + ic) * 6
			for kh := 0; kh < 3; kh++ {
				w0 := uint32(uint16(int16(k[kh*3])))
				w1 := uint32(uint16(int16(k[kh*3+1])))
				wp[base+kh*2] = int32(w0 | w1<<16)
				wp[base+kh*2+1] = int32(uint32(uint16(int16(k[kh*3+2]))))
			}
		}
	}
}

// quantizePad3x3 quantizes one float image straight into the zero-padded
// int8 layout the direct kernels walk — one pass instead of
// quantize-then-pad. The buffer carries one byte of slack past the
// padded image: the kernels' shifted pair loads read (and multiply by a
// zero weight) one byte beyond the final row.
func quantizePad3x3(buf []int8, x []float32, s Conv2DSpec, xScale float32) []int8 {
	pH, pW := s.InH+2*s.Pad, s.InW+2*s.Pad
	n := s.InC * pH * pW
	p := buf[: n+1 : n+1]
	if s.Pad == 0 {
		QuantizeCalibratedInto(p[:n], x, xScale)
		p[n] = 0
		return p
	}
	for i := range p {
		p[i] = 0
	}
	for ic := 0; ic < s.InC; ic++ {
		for ih := 0; ih < s.InH; ih++ {
			off := ic*pH*pW + (ih+s.Pad)*pW + s.Pad
			QuantizeCalibratedInto(p[off:off+s.InW], x[(ic*s.InH+ih)*s.InW:(ic*s.InH+ih+1)*s.InW], xScale)
		}
	}
	return p
}

// qpadImage3x3 is quantizePad3x3 for an already-quantized image (the
// fused int8 chain hands the op its producer's int8 output directly).
func qpadImage3x3(buf, qimg []int8, s Conv2DSpec) []int8 {
	pH, pW := s.InH+2*s.Pad, s.InW+2*s.Pad
	n := s.InC * pH * pW
	p := buf[: n+1 : n+1]
	if s.Pad == 0 {
		copy(p[:n], qimg)
		p[n] = 0
		return p
	}
	for i := range p {
		p[i] = 0
	}
	for ic := 0; ic < s.InC; ic++ {
		for ih := 0; ih < s.InH; ih++ {
			copy(p[ic*pH*pW+(ih+s.Pad)*pW+s.Pad:], qimg[(ic*s.InH+ih)*s.InW:(ic*s.InH+ih+1)*s.InW])
		}
	}
	return p
}

// qconvDirect3x3AVX2 computes output channels [ocLo, ocHi) of one image
// from its padded quantized layout with the VPMADDWD stencil kernels,
// then the shared requant epilogue (float into dst, or int8 into qdst).
// Integer accumulation is associative, so the result is bitwise
// identical to both the scalar stencil and the im2col+QGemmRowT path.
func qconvDirect3x3AVX2(dst []float32, qdst []int8, pimg []int8, wp []int32, bias []float32, s Conv2DSpec, scales []float32, invOut float32, relu bool, acc []int32, ocLo, ocHi int) {
	outH, outW := s.OutH(), s.OutW()
	pW := s.InW + 2*s.Pad
	chanStride := (s.InH + 2*s.Pad) * pW
	planeLen := outH * outW
	for oc := ocLo; oc < ocHi; oc++ {
		wo := wp[oc*s.InC*6 : (oc+1)*s.InC*6]
		a := acc[:planeLen]
		for oh := 0; oh < outH; oh++ {
			arow := a[oh*outW : (oh+1)*outW]
			srow := pimg[oh*pW:]
			ow := 0
			for ; ow+16 <= outW; ow += 16 {
				qconv3x3Asm16(&arow[ow], &srow[ow], s.InC, chanStride, pW, &wo[0])
			}
			if ow < outW {
				switch {
				case outW >= 16:
					qconv3x3Asm16(&arow[outW-16], &srow[outW-16], s.InC, chanStride, pW, &wo[0])
				default:
					for ; ow+8 <= outW; ow += 8 {
						qconv3x3Asm8(&arow[ow], &srow[ow], s.InC, chanStride, pW, &wo[0])
					}
					if ow < outW {
						qconv3x3Asm8(&arow[outW-8], &srow[outW-8], s.InC, chanStride, pW, &wo[0])
					}
				}
			}
		}
		var bv float32
		if bias != nil {
			bv = bias[oc]
		}
		if qdst != nil {
			qRequantRow(qdst[oc*planeLen:(oc+1)*planeLen], a, scales[oc], bv, invOut, relu)
		} else {
			qDequantRow(dst[oc*planeLen:(oc+1)*planeLen], a, scales[oc], bv, relu)
		}
	}
}

// qconvDirect3x3 is the int8 twin: the same stencil walk with int32
// accumulation into acc (≥ outH·outW), then the requant epilogue —
// float into dst, or int8 into qdst (requantized with invOut) when the
// consumer is also quantized. Integer addition is associative, so this
// is bitwise identical to the im2col+QGemmRowT path — the dispatcher
// picks purely on speed.
func qconvDirect3x3(dst []float32, qdst []int8, qimg []int8, wq []int8, bias []float32, s Conv2DSpec, scales []float32, invOut float32, relu bool, acc []int32, ocLo, ocHi int) {
	outH, outW := s.OutH(), s.OutW()
	inHW := s.InH * s.InW
	planeLen := outH * outW
	owLo := s.Pad
	owHi := min(s.InW-2+s.Pad, outW)
	for oc := ocLo; oc < ocHi; oc++ {
		a := acc[:planeLen]
		for i := range a {
			a[i] = 0
		}
		for ic := 0; ic < s.InC; ic++ {
			ch := qimg[ic*inHW : (ic+1)*inHW]
			ker := wq[(oc*s.InC+ic)*9 : (oc*s.InC+ic)*9+9]
			for kh := 0; kh < 3; kh++ {
				w0, w1, w2 := int32(ker[kh*3]), int32(ker[kh*3+1]), int32(ker[kh*3+2])
				for oh := 0; oh < outH; oh++ {
					ih := oh - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						continue
					}
					arow := a[oh*outW : (oh+1)*outW]
					srow := ch[ih*s.InW : (ih+1)*s.InW]
					for ow := owLo; ow < owHi; ow++ {
						iw := ow - s.Pad
						arow[ow] += w0*int32(srow[iw]) + w1*int32(srow[iw+1]) + w2*int32(srow[iw+2])
					}
					for ow := 0; ow < owLo; ow++ {
						acc := arow[ow]
						for t := 0; t < 3; t++ {
							if iw := ow - s.Pad + t; iw >= 0 && iw < s.InW {
								acc += int32(ker[kh*3+t]) * int32(srow[iw])
							}
						}
						arow[ow] = acc
					}
					for ow := owHi; ow < outW; ow++ {
						acc := arow[ow]
						for t := 0; t < 3; t++ {
							if iw := ow - s.Pad + t; iw >= 0 && iw < s.InW {
								acc += int32(ker[kh*3+t]) * int32(srow[iw])
							}
						}
						arow[ow] = acc
					}
				}
			}
		}
		var bv float32
		if bias != nil {
			bv = bias[oc]
		}
		if qdst != nil {
			qRequantRow(qdst[oc*planeLen:(oc+1)*planeLen], a, scales[oc], bv, invOut, relu)
		} else {
			qDequantRow(dst[oc*planeLen:(oc+1)*planeLen], a, scales[oc], bv, relu)
		}
	}
}

// Im2ColT lowers an image into the TRANSPOSED column matrix (the float
// twin of QIm2ColT): colsT has shape (outH·outW, inC·kH·kW), one
// contiguous receptive-field patch per output position — the layout the
// backward pass's dW GEMM consumes, removing its per-image
// materialize-then-transpose round trip.
func Im2ColT(x []float32, s Conv2DSpec, colsT []float32) {
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	p := 0
	for oh := 0; oh < outH; oh++ {
		for ow := 0; ow < outW; ow++ {
			row := colsT[p*colRows : (p+1)*colRows]
			p++
			idx := 0
			for c := 0; c < s.InC; c++ {
				chanBase := c * s.InH * s.InW
				for kh := 0; kh < s.KH; kh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						for kw := 0; kw < s.KW; kw++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*s.InW
					for kw := 0; kw < s.KW; kw++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw < 0 || iw >= s.InW {
							row[idx] = 0
						} else {
							row[idx] = x[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}
