package tensor

// Int4 weight representation: two weights per byte with per-row scales.
// Values live on the symmetric [-7, 7] grid (the int8 grid shrunk to one
// nibble, keeping 0 exactly representable), each row of the logical
// (rows, cols) matrix carries its own scale — per-output-channel
// quantization, which int4 needs to stay within tolerance where a single
// per-tensor scale would spend the 15-value grid on the widest channel.
// The execution path unpacks rows back to int8 in pooled scratch and
// reuses the int8 kernels: int4 is a weight *storage* format (≈⅛ the
// float bytes), not a distinct arithmetic.

// Q4Tensor is a nibble-packed int4 weight matrix. Data is row-major with
// (cols+1)/2 bytes per row: the low nibble of each byte holds the even
// column, the high nibble the odd column (sign-extended two's
// complement). Scales[r] is row r's dequantization scale.
type Q4Tensor struct {
	shape  []int
	rows   int
	cols   int
	Scales []float32
	Data   []byte
}

// Quantize4 packs t into int4 with per-row symmetric quantization. rows
// is the logical row count (output channels); t's elements are taken
// row-major with cols = t.Len()/rows. A zero row quantizes with scale 1.
func Quantize4(t *Tensor, rows int) *Q4Tensor {
	cols := t.Len() / rows
	q := &Q4Tensor{
		shape:  t.Shape(),
		rows:   rows,
		cols:   cols,
		Scales: make([]float32, rows),
		Data:   make([]byte, rows*((cols+1)/2)),
	}
	rowBytes := (cols + 1) / 2
	src := t.Data()
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		var m float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		scale := m / 7
		if scale == 0 {
			scale = 1
		}
		q.Scales[r] = scale
		inv := 1 / scale
		dst := q.Data[r*rowBytes : (r+1)*rowBytes]
		for c := 0; c < cols; c += 2 {
			lo := qRound4(row[c] * inv)
			var hi int8
			if c+1 < cols {
				hi = qRound4(row[c+1] * inv)
			}
			dst[c/2] = byte(lo)&0x0f | byte(hi)<<4
		}
	}
	return q
}

// qRound4 rounds to the int4 grid with the package's one rounding
// expression (QRound8) and the ±7 saturation.
func qRound4(v float32) int8 {
	x := QRound8(v)
	if x > 7 {
		return 7
	}
	if x < -7 {
		return -7
	}
	return x
}

// Rows returns the logical row (output-channel) count.
func (q *Q4Tensor) Rows() int { return q.rows }

// Cols returns the logical row width.
func (q *Q4Tensor) Cols() int { return q.cols }

// Len returns the logical element count.
func (q *Q4Tensor) Len() int { return q.rows * q.cols }

// SizeBytes returns the artifact's resident size: the packed nibbles
// plus one float32 scale per row.
func (q *Q4Tensor) SizeBytes() int { return len(q.Data) + 4*len(q.Scales) }

// UnpackRowInto sign-extends row r into dst (len ≥ cols) as int8 — the
// layout every int8 kernel streams. The shifts are the two's-complement
// nibble extension: int8(b<<4)>>4 for the low nibble, int8(b)>>4 for the
// high.
func (q *Q4Tensor) UnpackRowInto(dst []int8, r int) {
	rowBytes := (q.cols + 1) / 2
	src := q.Data[r*rowBytes : (r+1)*rowBytes]
	for i, b := range src {
		dst[2*i] = int8(b<<4) >> 4
		if 2*i+1 < q.cols {
			dst[2*i+1] = int8(b) >> 4
		}
	}
}

// UnpackInto unpacks the whole matrix into dst (len ≥ rows*cols),
// row-major — the transposed-B layout QGemmRowT streams, recovered into
// pooled scratch once per inference call.
func (q *Q4Tensor) UnpackInto(dst []int8) {
	for r := 0; r < q.rows; r++ {
		q.UnpackRowInto(dst[r*q.cols:(r+1)*q.cols], r)
	}
}

// Dequantize expands the artifact back to float32 (tests and calibration
// only — serving never materializes this).
func (q *Q4Tensor) Dequantize() *Tensor {
	t := New(q.shape...)
	d := t.Data()
	rowScratch := make([]int8, q.cols)
	for r := 0; r < q.rows; r++ {
		q.UnpackRowInto(rowScratch, r)
		s := q.Scales[r]
		for c, v := range rowScratch {
			d[r*q.cols+c] = float32(v) * s
		}
	}
	return t
}
