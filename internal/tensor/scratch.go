package tensor

import "sync"

// Pooled scratch buffers for kernels that need per-call (or, under the
// parallel runtime, per-shard) workspace — im2col lowerings, transposes,
// int8 row copies. Buffers are recycled through sync.Pool so steady-state
// kernel execution performs no heap allocation for scratch.

var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

// f32Scratch returns a length-n float32 scratch buffer (contents
// unspecified). Release with f32Release.
func f32Scratch(n int) *[]float32 {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func f32Release(p *[]float32) { f32Pool.Put(p) }

var i32Pool = sync.Pool{New: func() any { return new([]int32) }}

// i32Scratch returns a length-n int32 scratch buffer (contents
// unspecified) — the accumulator rows of the int8 GEMM kernels. Release
// with i32Release.
func i32Scratch(n int) *[]int32 {
	p := i32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func i32Release(p *[]int32) { i32Pool.Put(p) }

var i8Pool = sync.Pool{New: func() any { return new([]int8) }}

// i8Scratch returns a length-n int8 scratch buffer (contents unspecified).
// Release with i8Release.
func i8Scratch(n int) *[]int8 {
	p := i8Pool.Get().(*[]int8)
	if cap(*p) < n {
		*p = make([]int8, n)
	}
	*p = (*p)[:n]
	return p
}

func i8Release(p *[]int8) { i8Pool.Put(p) }
