//go:build amd64

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 is usable iff the OS saves YMM state (OSXSAVE set, XCR0 reports
// XMM+YMM enabled) and CPUID leaf 7 advertises AVX2.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// CPUID.1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28), DX
	CMPL DX, $(1<<27 | 1<<28)
	JNE  no

	// XGETBV(0): XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// CPUID.7.0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func qdotAsm(a, b *int8, k int) int32
//
// Int8 dot product over k elements (k a multiple of 32, ≥ 32): each
// 16-byte half sign-extends to 16×int16 (VPMOVSXBW), multiplies pairwise
// into 8×int32 (VPMADDWD), and accumulates (VPADDD). Lanes cannot
// overflow: each VPMADDWD term is ≤ 2·127² and a lane absorbs k/16 of
// them — int32 holds that to k ≈ 2²⁰, far past any model dimension here.
TEXT ·qdotAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ k+16(FP), CX

	VPXOR Y0, Y0, Y0          // accumulator: 8×int32
	SHRQ  $5, CX              // 32-element blocks

loop32:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y1, Y2, Y2
	VPADDD    Y2, Y0, Y0
	VPMOVSXBW 16(SI), Y3
	VPMOVSXBW 16(DI), Y4
	VPMADDWD  Y3, Y4, Y4
	VPADDD    Y4, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       loop32

	// Horizontal reduction of the 8 int32 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL         AX, ret+24(FP)
	RET
