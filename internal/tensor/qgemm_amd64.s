//go:build amd64

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 is usable iff the OS saves YMM state (OSXSAVE set, XCR0 reports
// XMM+YMM enabled) and CPUID leaf 7 advertises AVX2.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	// CPUID.1: ECX bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28), DX
	CMPL DX, $(1<<27 | 1<<28)
	JNE  no

	// XGETBV(0): XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// CPUID.7.0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func qdotAsm(a, b *int8, k int) int32
//
// Int8 dot product over k elements (k a multiple of 32, ≥ 32): each
// 16-byte half sign-extends to 16×int16 (VPMOVSXBW), multiplies pairwise
// into 8×int32 (VPMADDWD), and accumulates (VPADDD). Lanes cannot
// overflow: each VPMADDWD term is ≤ 2·127² and a lane absorbs k/16 of
// them — int32 holds that to k ≈ 2²⁰, far past any model dimension here.
TEXT ·qdotAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ k+16(FP), CX

	VPXOR Y0, Y0, Y0          // accumulator: 8×int32
	SHRQ  $5, CX              // 32-element blocks

loop32:
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD  Y1, Y2, Y2
	VPADDD    Y2, Y0, Y0
	VPMOVSXBW 16(SI), Y3
	VPMOVSXBW 16(DI), Y4
	VPMADDWD  Y3, Y4, Y4
	VPADDD    Y4, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      CX
	JNZ       loop32

	// Horizontal reduction of the 8 int32 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL         AX, ret+24(FP)
	RET

// func qconv3x3Asm16(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32)
//
// Sixteen complete 3×3 int8 stencil outputs. VPMADDWD reduces adjacent
// word pairs, so one load covers taps (kw=0, kw=1) of every second
// output: even outputs accumulate from the row at +0 (pairs with weight
// dword (w0,w1)) and +2 (pair (w2,0)), odd outputs from the same rows
// shifted one byte. The two accumulators interleave back to output
// order once, after the whole inC×3-row reduction.
TEXT ·qconv3x3Asm16(SB), NOSPLIT, $0-48
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ inC+16(FP), CX
	MOVQ chanStride+24(FP), R8
	MOVQ rowStride+32(FP), R9
	MOVQ wp+40(FP), DX

	VPXOR Y0, Y0, Y0          // even outputs 0,2,…,14
	VPXOR Y1, Y1, Y1          // odd outputs 1,3,…,15

qchan16:
	MOVQ SI, AX               // kernel-row pointer within this channel

	VPBROADCASTD (DX), Y12    // (w0,w1) as adjacent int16
	VPBROADCASTD 4(DX), Y13   // (w2, 0)
	VPMOVSXBW    (AX), Y8
	VPMOVSXBW    1(AX), Y9
	VPMOVSXBW    2(AX), Y10
	VPMOVSXBW    3(AX), Y11
	VPMADDWD     Y12, Y8, Y8
	VPMADDWD     Y12, Y9, Y9
	VPMADDWD     Y13, Y10, Y10
	VPMADDWD     Y13, Y11, Y11
	VPADDD       Y8, Y0, Y0
	VPADDD       Y10, Y0, Y0
	VPADDD       Y9, Y1, Y1
	VPADDD       Y11, Y1, Y1
	ADDQ         R9, AX

	VPBROADCASTD 8(DX), Y12
	VPBROADCASTD 12(DX), Y13
	VPMOVSXBW    (AX), Y8
	VPMOVSXBW    1(AX), Y9
	VPMOVSXBW    2(AX), Y10
	VPMOVSXBW    3(AX), Y11
	VPMADDWD     Y12, Y8, Y8
	VPMADDWD     Y12, Y9, Y9
	VPMADDWD     Y13, Y10, Y10
	VPMADDWD     Y13, Y11, Y11
	VPADDD       Y8, Y0, Y0
	VPADDD       Y10, Y0, Y0
	VPADDD       Y9, Y1, Y1
	VPADDD       Y11, Y1, Y1
	ADDQ         R9, AX

	VPBROADCASTD 16(DX), Y12
	VPBROADCASTD 20(DX), Y13
	VPMOVSXBW    (AX), Y8
	VPMOVSXBW    1(AX), Y9
	VPMOVSXBW    2(AX), Y10
	VPMOVSXBW    3(AX), Y11
	VPMADDWD     Y12, Y8, Y8
	VPMADDWD     Y12, Y9, Y9
	VPMADDWD     Y13, Y10, Y10
	VPMADDWD     Y13, Y11, Y11
	VPADDD       Y8, Y0, Y0
	VPADDD       Y10, Y0, Y0
	VPADDD       Y9, Y1, Y1
	VPADDD       Y11, Y1, Y1

	ADDQ R8, SI
	ADDQ $24, DX
	DECQ CX
	JNZ  qchan16

	// Interleave evens/odds back to output order: Y0 holds outputs
	// [0 2 4 6 | 8 10 12 14], Y1 [1 3 5 7 | 9 11 13 15].
	VPUNPCKLDQ Y1, Y0, Y2     // [0 1 2 3 | 8 9 10 11]
	VPUNPCKHDQ Y1, Y0, Y3     // [4 5 6 7 | 12 13 14 15]
	VPERM2I128 $0x20, Y3, Y2, Y4
	VPERM2I128 $0x31, Y3, Y2, Y5
	VMOVDQU    Y4, (DI)
	VMOVDQU    Y5, 32(DI)
	VZEROUPPER
	RET

// func qconv3x3Asm8(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32)
//
// Eight-output variant of qconv3x3Asm16 on XMM registers, for rows too
// narrow for the 16-wide kernel.
TEXT ·qconv3x3Asm8(SB), NOSPLIT, $0-48
	MOVQ acc+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ inC+16(FP), CX
	MOVQ chanStride+24(FP), R8
	MOVQ rowStride+32(FP), R9
	MOVQ wp+40(FP), DX

	VPXOR X0, X0, X0          // even outputs 0,2,4,6
	VPXOR X1, X1, X1          // odd outputs 1,3,5,7

qchan8:
	MOVQ SI, AX

	VPBROADCASTD (DX), X12
	VPBROADCASTD 4(DX), X13
	VPMOVSXBW    (AX), X8
	VPMOVSXBW    1(AX), X9
	VPMOVSXBW    2(AX), X10
	VPMOVSXBW    3(AX), X11
	VPMADDWD     X12, X8, X8
	VPMADDWD     X12, X9, X9
	VPMADDWD     X13, X10, X10
	VPMADDWD     X13, X11, X11
	VPADDD       X8, X0, X0
	VPADDD       X10, X0, X0
	VPADDD       X9, X1, X1
	VPADDD       X11, X1, X1
	ADDQ         R9, AX

	VPBROADCASTD 8(DX), X12
	VPBROADCASTD 12(DX), X13
	VPMOVSXBW    (AX), X8
	VPMOVSXBW    1(AX), X9
	VPMOVSXBW    2(AX), X10
	VPMOVSXBW    3(AX), X11
	VPMADDWD     X12, X8, X8
	VPMADDWD     X12, X9, X9
	VPMADDWD     X13, X10, X10
	VPMADDWD     X13, X11, X11
	VPADDD       X8, X0, X0
	VPADDD       X10, X0, X0
	VPADDD       X9, X1, X1
	VPADDD       X11, X1, X1
	ADDQ         R9, AX

	VPBROADCASTD 16(DX), X12
	VPBROADCASTD 20(DX), X13
	VPMOVSXBW    (AX), X8
	VPMOVSXBW    1(AX), X9
	VPMOVSXBW    2(AX), X10
	VPMOVSXBW    3(AX), X11
	VPMADDWD     X12, X8, X8
	VPMADDWD     X12, X9, X9
	VPMADDWD     X13, X10, X10
	VPMADDWD     X13, X11, X11
	VPADDD       X8, X0, X0
	VPADDD       X10, X0, X0
	VPADDD       X9, X1, X1
	VPADDD       X11, X1, X1

	ADDQ R8, SI
	ADDQ $24, DX
	DECQ CX
	JNZ  qchan8

	// X0 = outputs [0 2 4 6], X1 = [1 3 5 7].
	VPUNPCKLDQ X1, X0, X2     // [0 1 2 3]
	VPUNPCKHDQ X1, X0, X3     // [4 5 6 7]
	VMOVDQU    X2, (DI)
	VMOVDQU    X3, 16(DI)
	RET
