package tensor

import "fmt"

// Arena is a region allocator for the short-lived tensors of one inference
// pass. A serving replica owns one arena, calls Reset at the top of every
// request, and carves all activations, views, and scratch out of it; after
// a warm-up request sizes the slab and header cache, the steady-state
// inference path performs zero heap allocations.
//
// Tensors returned by an arena are valid only until the next Reset — they
// must never be retained across requests or handed to another goroutine
// that outlives the pass. An Arena is not safe for concurrent use; confine
// it, like the replica that owns it, to a single worker goroutine.
type Arena struct {
	slab  []float32
	off   int
	spill int // elements allocated past the slab this cycle

	hdrs []*arenaHdr
	used int
}

// arenaHdr pairs a reusable Tensor header with inline shape storage so
// neither costs an allocation once cached. Four dims covers every layout
// the substrate uses (NCHW).
type arenaHdr struct {
	t        Tensor
	shapeArr [4]int
}

// NewArena returns an arena with capacity for n float32 elements; n <= 0
// starts empty and lets the first cycle size it.
func NewArena(n int) *Arena {
	if n < 0 {
		n = 0
	}
	return &Arena{slab: make([]float32, n)}
}

// Reset recycles every tensor handed out since the last Reset. If the
// previous cycle overflowed the slab, the slab is regrown once here so the
// next cycle fits entirely.
func (a *Arena) Reset() {
	if a.spill > 0 {
		a.slab = make([]float32, len(a.slab)+a.spill)
		a.spill = 0
	}
	a.off = 0
	a.used = 0
}

// alloc carves n elements from the slab, falling back to the heap (and
// recording the shortfall for Reset to regrow) when the slab is exhausted.
func (a *Arena) alloc(n int) []float32 {
	if a.off+n <= len(a.slab) {
		s := a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	a.spill += n
	return make([]float32, n)
}

// hdr returns a recycled tensor header, growing the cache on warm-up.
func (a *Arena) hdr() *arenaHdr {
	if a.used == len(a.hdrs) {
		a.hdrs = append(a.hdrs, &arenaHdr{})
	}
	h := a.hdrs[a.used]
	a.used++
	return h
}

// shapeFor stores shape in the header's inline array (heap only beyond 4
// dims, which the substrate never produces).
func (h *arenaHdr) shapeFor(shape []int) []int {
	if len(shape) <= len(h.shapeArr) {
		s := h.shapeArr[:len(shape)]
		copy(s, shape)
		return s
	}
	return append([]int(nil), shape...)
}

// NewUninit returns an arena tensor of the given shape with unspecified
// contents — for outputs every element of which the caller overwrites.
// The panic message deliberately omits the shape slice: formatting it
// would make every call site's variadic argument escape to the heap,
// breaking the zero-allocation guarantee of the happy path.
func (a *Arena) NewUninit(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension in arena shape")
		}
		n *= d
	}
	h := a.hdr()
	h.t.shape = h.shapeFor(shape)
	h.t.data = a.alloc(n)
	return &h.t
}

// NewUninitLike returns an uninitialized arena tensor with t's shape.
func (a *Arena) NewUninitLike(t *Tensor) *Tensor {
	h := a.hdr()
	h.t.shape = h.shapeFor(t.shape)
	h.t.data = a.alloc(len(t.data))
	return &h.t
}

// New returns a zero-filled arena tensor, the arena analogue of New.
func (a *Arena) New(shape ...int) *Tensor {
	t := a.NewUninit(shape...)
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// View returns an arena-headered tensor sharing t's data under a new
// shape — the allocation-free analogue of Reshape.
func (a *Arena) View(t *Tensor, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		// Copy the shape before formatting: handing the variadic slice to
		// fmt would make it escape at every (happy-path) call site.
		bad := append([]int(nil), shape...)
		return nil, fmt.Errorf("%w: cannot view %v (%d elems) as %v (%d elems)", ErrShape, t.shape, len(t.data), bad, n)
	}
	h := a.hdr()
	h.t.shape = h.shapeFor(shape)
	h.t.data = t.data
	return &h.t, nil
}

// StackArena is Stack into arena storage: n same-shaped samples become one
// [n, sampleShape...] batch tensor that lives until the next Reset.
func (a *Arena) StackArena(ts []*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: cannot stack zero tensors", ErrShape)
	}
	first := ts[0]
	for i, t := range ts[1:] {
		if !sameShape(first.shape, t.shape) {
			return nil, fmt.Errorf("%w: stack operand %d has shape %v, want %v", ErrShape, i+1, t.shape, first.shape)
		}
	}
	h := a.hdr()
	// Inline for ranks the serving path uses; append spills to the heap
	// only for samples of rank 4+, which no model here produces.
	shape := h.shapeArr[:0]
	shape = append(shape, len(ts))
	shape = append(shape, first.shape...)
	h.t.shape = shape
	stride := first.Len()
	h.t.data = a.alloc(stride * len(ts))
	for i, t := range ts {
		copy(h.t.data[i*stride:(i+1)*stride], t.data)
	}
	return &h.t, nil
}

// GatherRows packs the selected rows of a 2-D tensor into a fresh arena
// tensor of shape (len(rows), cols). It is the mid-batch repack primitive
// of early-exit plans: after samples retire from a batch, the survivors
// are gathered into a smaller tensor so every later GEMM shrinks with the
// live set. Row indices must be in range; like every arena method it
// performs no heap allocation once the slab and header cache are warm.
func (a *Arena) GatherRows(src *Tensor, rows []int) (*Tensor, error) {
	if len(src.shape) != 2 {
		return nil, fmt.Errorf("%w: GatherRows needs a 2-D source, got %v", ErrShape, src.shape)
	}
	cols := src.shape[1]
	h := a.hdr()
	shape := h.shapeArr[:2]
	shape[0], shape[1] = len(rows), cols
	h.t.shape = shape
	h.t.data = a.alloc(len(rows) * cols)
	for i, r := range rows {
		if r < 0 || r >= src.shape[0] {
			return nil, fmt.Errorf("%w: GatherRows row %d outside [0,%d)", ErrShape, r, src.shape[0])
		}
		copy(h.t.data[i*cols:(i+1)*cols], src.data[r*cols:(r+1)*cols])
	}
	return &h.t, nil
}

// CapElems reports the slab capacity in float32 elements (diagnostics).
func (a *Arena) CapElems() int { return len(a.slab) }
