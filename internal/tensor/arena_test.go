package tensor

import (
	"errors"
	"testing"
)

func TestArenaNewZeroesAndShapes(t *testing.T) {
	a := NewArena(64)
	x := a.New(2, 3)
	if got := x.Shape(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("shape = %v", got)
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	x.Data()[0] = 7
	a.Reset()
	y := a.New(2, 3)
	if y.Data()[0] != 0 {
		t.Error("Reset must hand back zeroed memory from New")
	}
}

func TestArenaSpillRegrowsOnReset(t *testing.T) {
	a := NewArena(4)
	small := a.NewUninit(4) // fills the slab
	big := a.NewUninit(100) // spills to the heap
	small.Data()[0] = 1
	big.Data()[0] = 2 // both stay valid despite the spill
	if small.Data()[0] != 1 || big.Data()[0] != 2 {
		t.Fatal("tensors must stay usable across a spill")
	}
	a.Reset()
	if a.CapElems() < 104 {
		t.Errorf("slab after spill reset = %d elems, want >= 104", a.CapElems())
	}
	// The regrown slab must now fit the same cycle without spilling.
	a.NewUninit(4)
	a.NewUninit(100)
	if a.spill != 0 {
		t.Errorf("second cycle spilled %d elems, want 0", a.spill)
	}
}

func TestArenaViewSharesData(t *testing.T) {
	a := NewArena(16)
	x := a.New(2, 3)
	v, err := a.View(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	v.Data()[5] = 9
	if x.At(1, 2) != 9 {
		t.Error("view must alias the source data")
	}
	if _, err := a.View(x, 7); !errors.Is(err, ErrShape) {
		t.Errorf("mismatched view err = %v, want ErrShape", err)
	}
}

func TestArenaStack(t *testing.T) {
	a := NewArena(0)
	xs := []*Tensor{MustFrom([]float32{1, 2}, 2), MustFrom([]float32{3, 4}, 2)}
	got, err := a.StackArena(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFrom([]float32{1, 2, 3, 4}, 2, 2)
	if !Equal(got, want, 0) {
		t.Errorf("StackArena = %v, want %v", got, want)
	}
	if _, err := a.StackArena(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty stack err = %v", err)
	}
	if _, err := a.StackArena([]*Tensor{New(2), New(3)}); !errors.Is(err, ErrShape) {
		t.Errorf("mixed-shape stack err = %v", err)
	}
}

// Steady state: same shapes each cycle, no allocation after warm-up.
func TestArenaSteadyStateAllocs(t *testing.T) {
	a := NewArena(0)
	cycle := func() {
		a.Reset()
		x := a.NewUninit(4, 8)
		y := a.New(8, 2)
		if _, err := a.View(y, 16); err != nil {
			t.Fatal(err)
		}
		_ = x
	}
	cycle() // size slab
	cycle() // regrown slab now fits
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("steady-state arena cycle allocates %v objects, want 0", avg)
	}
}
