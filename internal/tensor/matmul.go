package tensor

import "fmt"

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. It uses a cache-friendly ikj loop order.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs 2-D operands, got %v × %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n)
	return c, nil
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("%w: MatMulInto needs 2-D operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: MatMulInto %v·%v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matmulInto accumulates a·b into c (c must be zeroed by the caller).
// The ikj order streams through b and c rows sequentially, which is the
// best a naive pure-Go kernel can do for cache behaviour.
func matmulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue // sparsity shortcut: pruned weights cost nothing
			}
			bp := b[p*n : p*n+n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatVec computes y = A·x for a 2-D tensor A (m×k) and 1-D x (k), returning
// a 1-D tensor of length m.
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || x.Dims() != 1 {
		return nil, fmt.Errorf("%w: MatVec needs 2-D and 1-D operands, got %v, %v", ErrShape, a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		return nil, fmt.Errorf("%w: MatVec inner dims %d vs %d", ErrShape, k, x.shape[0])
	}
	y := New(m)
	for i := 0; i < m; i++ {
		var s float32
		row := a.data[i*k : i*k+k]
		for j, v := range row {
			s += v * x.data[j]
		}
		y.data[i] = s
	}
	return y, nil
}

// Transpose returns a new tensor that is the transpose of the 2-D tensor a.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose needs a 2-D tensor, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t, nil
}

// AddBiasRows adds the 1-D bias (length n) to each row of the 2-D tensor
// a (m×n) in place.
func AddBiasRows(a, bias *Tensor) error {
	if a.Dims() != 2 || bias.Dims() != 1 || a.shape[1] != bias.shape[0] {
		return fmt.Errorf("%w: AddBiasRows %v += %v", ErrShape, a.shape, bias.shape)
	}
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : i*n+n]
		for j := range row {
			row[j] += bias.data[j]
		}
	}
	return nil
}

// SumRows accumulates the rows of the 2-D tensor a (m×n) into a 1-D tensor
// of length n (used for bias gradients).
func SumRows(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: SumRows needs 2-D, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : i*n+n]
		for j := range row {
			out.data[j] += row[j]
		}
	}
	return out, nil
}
