package tensor

import (
	"fmt"

	"openei/internal/parallel"
)

// grainRows shards a row-parallel kernel so no shard carries less than
// one grain of work; see parallel.GrainItems.
func grainRows(perRow int) int { return parallel.GrainItems(perRow) }

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. It uses a cache-friendly ikj loop order.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs 2-D operands, got %v × %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n)
	return c, nil
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || dst.Dims() != 2 {
		return fmt.Errorf("%w: MatMulInto needs 2-D operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: MatMulInto %v·%v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	matmulInto(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matmulInto accumulates a·b into c (c must be zeroed by the caller).
// Large products are sharded across the parallel runtime by rows of c;
// each row's accumulation order is identical to the serial kernel, so
// results are bitwise independent of the pool width.
func matmulInto(c, a, b []float32, m, k, n int) {
	if packedWorth(m, k, n) {
		fgemmParallel(c, a, b, m, k, n, false)
		return
	}
	if m > 1 && parallel.Worth(m*k*n) {
		parallel.Do(m, grainRows(k*n), func(lo, hi int) {
			matmulRows(c, a, b, lo, hi, k, n)
		})
		return
	}
	matmulRows(c, a, b, 0, m, k, n)
}

// matmulRows is the serial core of matmulInto over rows [lo, hi) of c.
// The ikj order streams through b and c rows sequentially, and the k loop
// is register-blocked four-wide so each pass over a c row fuses four b
// rows — a quarter of the store traffic of the plain ikj loop.
func matmulRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		p := 0
		for ; p+3 < k; p += 4 {
			a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue // sparsity shortcut: pruned weights cost nothing
			}
			b0 := b[p*n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n]
			for j := range ci {
				ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulBT computes C = A·Bᵀ for 2-D tensors A (m×k) and B (n×k), returning
// a new m×n tensor. Each output element is a dot product of two rows, so
// both operands stream sequentially — this is the natural kernel for dense
// layers whose weights are stored (out, in), and it removes the
// per-forward-call Transpose allocation that used to dominate small-batch
// inference.
func MatMulBT(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMulBT needs 2-D operands, got %v × %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMulBT inner dims %d vs %d", ErrShape, k, k2)
	}
	c := New(m, n)
	matMulBTInto(c.data, a.data, b.data, m, k, n)
	return c, nil
}

// matMulBTInto computes c = a·bᵀ, sharding rows of c across the parallel
// runtime when the product is large enough to be worth dispatching.
func matMulBTInto(c, a, b []float32, m, k, n int) {
	if packedWorth(m, k, n) {
		// The packed driver accumulates; this entry point assigns.
		for i := range c[:m*n] {
			c[i] = 0
		}
		fgemmParallel(c, a, b, m, k, n, true)
		return
	}
	if m > 1 && parallel.Worth(m*k*n) {
		parallel.Do(m, grainRows(k*n), func(lo, hi int) {
			matMulBTRows(c, a, b, lo, hi, k, n)
		})
		return
	}
	matMulBTRows(c, a, b, 0, m, k, n)
}

func matMulBTRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			ci[j] = dot(ai, b[j*k:j*k+k])
		}
	}
}

// dot is an unrolled dot product with four accumulators, breaking the
// loop-carried dependency a single running sum would impose. On FMA
// hardware the bulk runs in fdotAsm (the same four-accumulator shape,
// eight lanes wide); the tail stays in Go.
func dot(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	if useFMA && n >= 32 {
		nb := n &^ 31
		s := fdotAsm(&a[0], &b[0], nb)
		for i := nb; i < n; i++ {
			s += a[i] * b[i]
		}
		return s
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// MatVec computes y = A·x for a 2-D tensor A (m×k) and 1-D x (k), returning
// a 1-D tensor of length m.
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || x.Dims() != 1 {
		return nil, fmt.Errorf("%w: MatVec needs 2-D and 1-D operands, got %v, %v", ErrShape, a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		return nil, fmt.Errorf("%w: MatVec inner dims %d vs %d", ErrShape, k, x.shape[0])
	}
	y := New(m)
	matVecRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y.data[i] = dot(a.data[i*k:i*k+k], x.data)
		}
	}
	if m > 1 && parallel.Worth(m*k) {
		parallel.Do(m, grainRows(k), matVecRows)
	} else {
		matVecRows(0, m)
	}
	return y, nil
}

// Transpose returns a new tensor that is the transpose of the 2-D tensor a.
// It walks 32×32 tiles so reads and writes both stay within L1 instead of
// thrashing a cache line per element on the strided side.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose needs a 2-D tensor, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	transposeInto(t.data, a.data, m, n)
	return t, nil
}

// TransposeInto computes dst = aᵀ reusing dst's storage (dst must be n×m
// for a m×n). Layers cache the destination so per-step re-transposes of
// mutating weights cost no allocation.
func TransposeInto(dst, a *Tensor) error {
	if a.Dims() != 2 || dst.Dims() != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != a.shape[0] {
		return fmt.Errorf("%w: TransposeInto %v -> %v", ErrShape, a.shape, dst.shape)
	}
	transposeInto(dst.data, a.data, a.shape[0], a.shape[1])
	return nil
}

// transposeInto walks 32×32 tiles so reads and writes both stay within L1
// instead of thrashing a cache line per element on the strided side.
func transposeInto(t, a []float32, m, n int) {
	const tile = 32
	for ii := 0; ii < m; ii += tile {
		iEnd := min(ii+tile, m)
		for jj := 0; jj < n; jj += tile {
			jEnd := min(jj+tile, n)
			for i := ii; i < iEnd; i++ {
				src := a[i*n+jj : i*n+jEnd]
				for j, v := range src {
					t[(jj+j)*m+i] = v
				}
			}
		}
	}
}

// AddBiasRows adds the 1-D bias (length n) to each row of the 2-D tensor
// a (m×n) in place.
func AddBiasRows(a, bias *Tensor) error {
	if a.Dims() != 2 || bias.Dims() != 1 || a.shape[1] != bias.shape[0] {
		return fmt.Errorf("%w: AddBiasRows %v += %v", ErrShape, a.shape, bias.shape)
	}
	n := a.shape[1]
	for i := 0; i < a.shape[0]; i++ {
		row := a.data[i*n : i*n+n]
		for j := range row {
			row[j] += bias.data[j]
		}
	}
	return nil
}

// SumRows accumulates the rows of the 2-D tensor a (m×n) into a 1-D tensor
// of length n (used for bias gradients).
func SumRows(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: SumRows needs 2-D, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : i*n+n]
		for j := range row {
			out.data[j] += row[j]
		}
	}
	return out, nil
}
