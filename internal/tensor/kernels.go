package tensor

// Kernel-dispatch introspection: the names the serving metrics surface
// per model, so an operator can see from /ei_metrics which code path a
// deployment actually executes (and in particular whether the
// OPENEI_FORCE_SCALAR override or missing CPU features demoted it).

// KernelGEMM names the float32 GEMM kernel this process dispatches to:
// "packed-fma" for the packed cache-blocked FMA microkernel, "scalar"
// when the hardware lacks AVX2+FMA3 or OPENEI_FORCE_SCALAR is set.
func KernelGEMM() string {
	if useFMA {
		return "packed-fma"
	}
	return "scalar"
}

// KernelQGEMM names the int8 GEMM/conv kernel: "qgemm-avx2" for the
// VPMADDWD paths, "scalar" otherwise.
func KernelQGEMM() string {
	if useAVX2 {
		return "qgemm-avx2"
	}
	return "scalar"
}

// DirectConv3x3 reports whether the given conv shape dispatches to the
// direct stencil kernels (skipping im2col materialization) — true for
// the 3×3/stride-1 shapes with at least one full vector of output
// columns, on both the float32 and quantized paths.
func DirectConv3x3(s Conv2DSpec) bool { return directConv3x3OK(s) }
