package tensor

import (
	"fmt"
	"math"

	"openei/internal/parallel"
)

// QTensor is an int8 symmetric-quantized tensor with a single per-tensor
// scale: real ≈ scale * int8. This mirrors the quantized-kernel design of
// TF-Lite and QNNPACK that the paper cites as the core edge optimization.
type QTensor struct {
	shape []int
	Scale float32
	Data  []int8
}

// Quantize converts t to an int8 tensor using symmetric per-tensor
// quantization. A zero tensor quantizes with scale 1 to avoid division by
// zero.
func Quantize(t *Tensor) *QTensor {
	scale := t.AbsMax() / 127
	if scale == 0 {
		scale = 1
	}
	return QuantizeCalibrated(t, scale)
}

// QuantizeCalibrated converts t to int8 with a caller-supplied scale —
// the calibrated-activation path, where the scale comes from a min/max
// sweep over a calibration batch rather than from t itself. Values beyond
// ±127·scale saturate.
func QuantizeCalibrated(t *Tensor, scale float32) *QTensor {
	if scale <= 0 {
		scale = 1
	}
	q := &QTensor{shape: t.Shape(), Scale: scale, Data: make([]int8, t.Len())}
	QuantizeCalibratedInto(q.Data, t.data, scale)
	return q
}

// QRound8 maps one prepared float to the saturating int8 grid, rounding
// half away from zero — math.Round's semantics without its cost: amd64
// has no half-away rounding instruction and math.Round is not
// intrinsified there, so the hot requant epilogues spend their time in
// its bit-twiddling. A truncating convert of the sign-matched t±½ is
// bitwise identical for every float32-derived input: below the ±126.5
// clamp guards the sum spans at most 24 significand bits across
// exponents [2⁻¹,2⁷), exact in float64, and truncation toward zero of
// the shifted value IS round-half-away. Every quantization site must go through
// this one function — the fused-epilogue bitwise guarantee depends on
// all paths sharing one rounding expression.
func QRound8(v float32) int8 {
	t := float64(v)
	if t >= 0 {
		if t >= 126.5 {
			return 127
		}
		return int8(int32(t + 0.5))
	}
	if t <= -126.5 {
		return -127
	}
	return int8(int32(t - 0.5))
}

// QuantizeCalibratedInto quantizes src into dst (len(dst) ≥ len(src))
// with the given scale, saturating at ±127. It is the allocation-free
// core the compiled int8 execution plans use to requantize activations
// between layers.
func QuantizeCalibratedInto(dst []int8, src []float32, scale float32) {
	inv := 1 / scale
	for i, v := range src {
		dst[i] = QRound8(v * inv)
	}
}

// qDequantRow is the int8 kernel epilogue: rescale the int32
// accumulators, add the (per-channel) bias, clamp negatives when the
// producer fused a ReLU.
func qDequantRow(dst []float32, acc []int32, scale, bv float32, relu bool) {
	for i, v := range acc {
		f := float32(v)*scale + bv
		if relu && f < 0 {
			f = 0
		}
		dst[i] = f
	}
}

// qRequantRow is the fused form: the identical float expression followed
// immediately by the consumer's requantization — QuantizeCalibratedInto's
// exact arithmetic with invOut = 1/consumerScale — so a quantized op
// writes final int8 activations in one pass, bitwise identical to
// dequantize-then-requantize.
func qRequantRow(qdst []int8, acc []int32, scale, bv, invOut float32, relu bool) {
	for i, v := range acc {
		f := float32(v)*scale + bv
		if relu && f < 0 {
			f = 0
		}
		qdst[i] = QRound8(f * invOut)
	}
}

// Dequantize converts q back to a float32 tensor.
func (q *QTensor) Dequantize() *Tensor {
	t := New(q.shape...)
	for i, v := range q.Data {
		t.data[i] = float32(v) * q.Scale
	}
	return t
}

// Shape returns a copy of the quantized tensor's shape.
func (q *QTensor) Shape() []int { return append([]int(nil), q.shape...) }

// Len returns the element count.
func (q *QTensor) Len() int { return len(q.Data) }

// SizeBytes returns the storage footprint of the quantized payload.
func (q *QTensor) SizeBytes() int { return len(q.Data) + 4 }

// QMatMul computes C = A·B where both operands are int8 quantized 2-D
// tensors. B is repacked once into row-major Bᵀ, then each output row is
// produced by the four-column dot kernel QGemmRowT: int8×int8 products
// accumulated in four register-resident int32 accumulators with a single
// float32 scale multiply at the end — the quantized-kernel shape TF-Lite
// and QNNPACK use. Rows of C shard across the parallel runtime; integer
// accumulation makes the result exact regardless of pool width.
func QMatMul(a, b *QTensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("%w: QMatMul needs 2-D operands, got %v × %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: QMatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	c := New(m, n)
	scale := a.Scale * b.Scale
	btp := i8Scratch(k * n)
	defer i8Release(btp)
	bt := *btp
	for p := 0; p < k; p++ {
		bp := b.Data[p*n : p*n+n]
		for j, v := range bp {
			bt[j*k+p] = v
		}
	}
	rows := func(lo, hi int) {
		accP := i32Scratch(n)
		defer i32Release(accP)
		acc := *accP
		for i := lo; i < hi; i++ {
			QGemmRowT(acc, a.Data[i*k:i*k+k], bt, k, n)
			ci := c.data[i*n : i*n+n]
			for j, v := range acc[:n] {
				ci[j] = float32(v) * scale
			}
		}
	}
	if m > 1 && parallel.Worth(m*k*n) {
		parallel.Do(m, grainRows(k*n), rows)
	} else {
		rows(0, m)
	}
	return c, nil
}

// QGemmRowT computes one GEMM output row in int32 against a transposed
// right-hand side: acc[j] = Σ_p a[p]·bt[j·k+p] for a single left row a
// (length k) and bt holding Bᵀ row-major (n rows of length k). The
// transposed layout keeps every QDot streaming two contiguous vectors —
// the shape the AVX2 kernel wants.
func QGemmRowT(acc []int32, a, bt []int8, k, n int) {
	a = a[:k]
	for j := 0; j < n; j++ {
		acc[j] = QDot(a, bt[j*k:j*k+k])
	}
}

// QDot is the int8 dot product behind every quantized kernel, exported
// so the compiled int8 execution plans build their dense and conv
// epilogues on the same reduction QMatMul uses. On amd64 with AVX2 the
// bulk runs sixteen 16-bit multiply-adds per instruction (VPMOVSXBW +
// VPMADDWD — the reason int8 backends beat float on real hardware); the
// scalar remainder (and other architectures) use four int32 accumulators
// mirroring the float kernel's unroll. int32 cannot overflow: each lane
// would need more than 2³¹/127² ≈ 133K terms, orders of magnitude beyond
// any inner dimension these models use. Integer accumulation is exact,
// so vector and scalar paths return identical results.
func QDot(a, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s int32
	i := 0
	if useAVX2 && n >= 32 {
		m := n &^ 31
		s = qdotAsm(&a[0], &b[0], m)
		i = m
	}
	var s0, s1, s2, s3 int32
	for ; i+3 < n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s + s0 + s1 + s2 + s3
}

// QuantizeError returns the mean absolute error introduced by quantizing t.
func QuantizeError(t *Tensor) float64 {
	if t.Len() == 0 {
		return 0
	}
	q := Quantize(t)
	d := q.Dequantize()
	var s float64
	for i := range t.data {
		s += math.Abs(float64(t.data[i] - d.data[i]))
	}
	return s / float64(t.Len())
}
