package tensor

import (
	"fmt"
	"math"
)

// QTensor is an int8 symmetric-quantized tensor with a single per-tensor
// scale: real ≈ scale * int8. This mirrors the quantized-kernel design of
// TF-Lite and QNNPACK that the paper cites as the core edge optimization.
type QTensor struct {
	shape []int
	Scale float32
	Data  []int8
}

// Quantize converts t to an int8 tensor using symmetric per-tensor
// quantization. A zero tensor quantizes with scale 1 to avoid division by
// zero.
func Quantize(t *Tensor) *QTensor {
	m := t.AbsMax()
	scale := m / 127
	if scale == 0 {
		scale = 1
	}
	q := &QTensor{shape: t.Shape(), Scale: scale, Data: make([]int8, t.Len())}
	inv := 1 / scale
	for i, v := range t.data {
		x := math.Round(float64(v * inv))
		if x > 127 {
			x = 127
		} else if x < -127 {
			x = -127
		}
		q.Data[i] = int8(x)
	}
	return q
}

// Dequantize converts q back to a float32 tensor.
func (q *QTensor) Dequantize() *Tensor {
	t := New(q.shape...)
	for i, v := range q.Data {
		t.data[i] = float32(v) * q.Scale
	}
	return t
}

// Shape returns a copy of the quantized tensor's shape.
func (q *QTensor) Shape() []int { return append([]int(nil), q.shape...) }

// Len returns the element count.
func (q *QTensor) Len() int { return len(q.Data) }

// SizeBytes returns the storage footprint of the quantized payload.
func (q *QTensor) SizeBytes() int { return len(q.Data) + 4 }

// QMatMul computes C = A·B where both operands are int8 quantized 2-D
// tensors; accumulation is in int32 and the result is rescaled to float32.
// This is the "quantized kernel" path that optimized edge packages use.
func QMatMul(a, b *QTensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("%w: QMatMul needs 2-D operands, got %v × %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: QMatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	c := New(m, n)
	scale := a.Scale * b.Scale
	acc := make([]int32, n)
	for i := 0; i < m; i++ {
		for j := range acc {
			acc[j] = 0
		}
		ai := a.Data[i*k : i*k+k]
		for p := 0; p < k; p++ {
			av := int32(ai[p])
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : p*n+n]
			for j := range bp {
				acc[j] += av * int32(bp[j])
			}
		}
		ci := c.data[i*n : i*n+n]
		for j, v := range acc {
			ci[j] = float32(v) * scale
		}
	}
	return c, nil
}

// QuantizeError returns the mean absolute error introduced by quantizing t.
func QuantizeError(t *Tensor) float64 {
	if t.Len() == 0 {
		return 0
	}
	q := Quantize(t)
	d := q.Dequantize()
	var s float64
	for i := range t.data {
		s += math.Abs(float64(t.data[i] - d.data[i]))
	}
	return s / float64(t.Len())
}
