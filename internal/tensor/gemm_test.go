package tensor

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"openei/internal/parallel"
)

// refGemm is the naive triple loop in float64 — the correctness oracle
// for every float32 GEMM path. bt selects B stored transposed (n×k).
func refGemm(a, b []float32, m, k, n int, bt bool) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				bv := float64(0)
				if bt {
					bv = float64(b[j*k+p])
				} else {
					bv = float64(b[p*n+j])
				}
				s += float64(a[i*k+p]) * bv
			}
			c[i*n+j] = float32(s)
		}
	}
	return c
}

func requireClose(t *testing.T, name string, got, want []float32, k int) {
	t.Helper()
	tol := 1e-4 * float64(k+1)
	for i := range want {
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > tol || math.IsNaN(float64(got[i])) {
			t.Fatalf("%s: element %d = %v, want %v (|Δ|=%g > %g)", name, i, got[i], want[i], d, tol)
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

// TestPackedGemmMatchesReference drives the packed cache-blocked driver
// directly — bypassing the packedWorth size gate — across random shapes
// including single rows, sub-tile edges, and multi-block sizes, for both
// the row-major-B and transposed-B packers, against the float64 oracle.
func TestPackedGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	shapes := [][3]int{
		{1, 1, 1}, {4, 16, 16}, {3, 5, 7}, {5, 17, 31}, {1, 300, 1},
		{fMR, fKC, fNR}, {fMC + 3, fKC + 9, fNC/8 + 5}, {64, 256, 64},
	}
	for trial := 0; trial < 24; trial++ {
		var m, k, n int
		if trial < len(shapes) {
			m, k, n = shapes[trial][0], shapes[trial][1], shapes[trial][2]
		} else {
			m, k, n = 1+rng.Intn(70), 1+rng.Intn(300), 1+rng.Intn(70)
		}
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		btData := make([]float32, k*n)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				btData[j*k+p] = b[p*n+j]
			}
		}
		want := refGemm(a, b, m, k, n, false)

		c := make([]float32, m*n)
		fgemmRows(c, a, b, 0, m, k, n, false)
		requireClose(t, "fgemmRows", c, want, k)

		for i := range c {
			c[i] = 0
		}
		fgemmRows(c, a, btData, 0, m, k, n, true)
		requireClose(t, "fgemmRows(bt)", c, want, k)

		// The accumulate contract: running the driver twice must double.
		fgemmRows(c, a, btData, 0, m, k, n, true)
		for i := range c {
			c[i] /= 2
		}
		requireClose(t, "fgemmRows accumulate", c, want, k)

		// And the public entry points, whatever path they dispatch to.
		ta := New(m, k)
		copy(ta.data, a)
		tb := New(k, n)
		copy(tb.data, b)
		tbt := New(n, k)
		copy(tbt.data, btData)
		mm, err := MatMul(ta, tb)
		if err != nil {
			t.Fatal(err)
		}
		requireClose(t, "MatMul", mm.data, want, k)
		mmbt, err := MatMulBT(ta, tbt)
		if err != nil {
			t.Fatal(err)
		}
		requireClose(t, "MatMulBT", mmbt.data, want, k)
	}
}

// TestPackedGemmPoolWidthBitwise pins the determinism property at sizes
// where the packed driver spans many row tiles and several KC/NC blocks:
// pool width must not change a single bit.
func TestPackedGemmPoolWidthBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for _, d := range [][3]int{{128, 128, 128}, {67, 300, 150}, {fMC * 2, fKC + 1, fNC + 17}} {
		m, k, n := d[0], d[1], d[2]
		a, b := New(m, k), New(k, n)
		a.Rand(rng, 1)
		b.Rand(rng, 1)
		s, p := serialThenParallel(t, func() *Tensor {
			c, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
		requireBitwise(t, "packed MatMul", s, p)
	}
}

// TestDotMatchesReference covers the FMA dot (and its Go shape) across
// lengths straddling the 32-element assembly threshold and its tails.
func TestDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for _, n := range []int{1, 7, 31, 32, 33, 63, 64, 97, 256, 300} {
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := dot(a, b)
		if d := math.Abs(float64(got) - want); d > 1e-4*float64(n+1) {
			t.Fatalf("dot(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestPackedGemmFaster is the directional acceptance assertion: at
// 256³ single-threaded the packed FMA driver must be at least 2× faster
// than the kernel it replaced (the per-row four-accumulator dot loop of
// the old matMulBTRows). Runs in bench-smoke; skipped under -short and
// off AVX2 hardware.
func TestPackedGemmFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	if !useFMA {
		t.Skip("no FMA hardware (or scalar override); directional claim is about the AVX2 path")
	}
	const d = 256
	rng := rand.New(rand.NewSource(204))
	a := randSlice(rng, d*d)
	bt := randSlice(rng, d*d)
	c := make([]float32, d*d)
	parallel.SetProcs(1)
	defer parallel.SetProcs(0)

	// The pre-packing baseline: row-major dots with four scalar
	// accumulators, exactly the old matMulBTRows/dot pair.
	baseline := func() {
		for i := 0; i < d; i++ {
			ai := a[i*d : i*d+d]
			ci := c[i*d : i*d+d]
			for j := 0; j < d; j++ {
				bj := bt[j*d : j*d+d]
				var s0, s1, s2, s3 float32
				for p := 0; p+3 < d; p += 4 {
					s0 += ai[p] * bj[p]
					s1 += ai[p+1] * bj[p+1]
					s2 += ai[p+2] * bj[p+2]
					s3 += ai[p+3] * bj[p+3]
				}
				ci[j] = s0 + s1 + s2 + s3
			}
		}
	}
	packed := func() {
		for i := range c {
			c[i] = 0
		}
		fgemmRows(c, a, bt, 0, d, d, d, true)
	}
	best := func(f func()) time.Duration {
		b := time.Duration(math.MaxInt64)
		for r := 0; r < 5; r++ {
			start := time.Now()
			f()
			if el := time.Since(start); el < b {
				b = el
			}
		}
		return b
	}
	packed() // warm pack pools
	tOld := best(baseline)
	tNew := best(packed)
	t.Logf("256³ single-threaded: old %v, packed %v (%.2fx)", tOld, tNew, float64(tOld)/float64(tNew))
	if float64(tOld) < 2*float64(tNew) {
		t.Fatalf("packed GEMM %v not 2x faster than old path %v", tNew, tOld)
	}
}
