package tensor

import (
	"fmt"

	"openei/internal/parallel"
)

// Int8 convolution: the quantized twin of conv2DForward. The input image
// is quantized once with a calibrated activation scale, lowered by an
// int8 im2col that emits the column matrix already transposed (one
// contiguous patch row per output position), and reduced against the
// int8 weight rows with the four-column dot kernel QGemmRowT — streaming
// one quarter of the column-matrix bytes the float kernel does, which is
// where the int8 backend's speedup comes from on bandwidth-bound convs.

// QIm2ColT lowers a quantized image (inC, inH, inW as a flat int8 slice)
// into the TRANSPOSED column matrix colsT of shape (outH*outW, inC*kH*kW):
// row p holds the receptive-field patch of output position p, the layout
// the dot-form GEMM streams. Padding contributes exact zeros (symmetric
// quantization maps 0.0 → 0).
func QIm2ColT(qimg []int8, s Conv2DSpec, colsT []int8) {
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	p := 0
	for oh := 0; oh < outH; oh++ {
		for ow := 0; ow < outW; ow++ {
			row := colsT[p*colRows : (p+1)*colRows]
			p++
			idx := 0
			for c := 0; c < s.InC; c++ {
				chanBase := c * s.InH * s.InW
				for kh := 0; kh < s.KH; kh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						for kw := 0; kw < s.KW; kw++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*s.InW
					for kw := 0; kw < s.KW; kw++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw < 0 || iw >= s.InW {
							row[idx] = 0
						} else {
							row[idx] = qimg[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// QMaxPool2DInto max-pools a batched int8 activation (batch, C, H, W as
// flat slices) into dst, applying the fused ReLU clamp when relu is set.
// The int8 quantization map — round, scale, clamp, and the zero-clamp of
// ReLU — is monotone nondecreasing, and max commutes with any monotone
// map, so pooling quantized activations is bitwise identical to pooling
// the float activations and quantizing the result. That passthrough is
// what lets a conv→pool→conv chain stay int8 end to end.
func QMaxPool2DInto(dst, src []int8, p PoolSpec, batch int, relu bool) {
	outH, outW := p.OutH(), p.OutW()
	imgLen := p.C * p.H * p.W
	planeLen := outH * outW
	planes := func(lo, hi int) {
		for plane := lo; plane < hi; plane++ {
			b, c := plane/p.C, plane%p.C
			ch := src[b*imgLen+c*p.H*p.W : b*imgLen+(c+1)*p.H*p.W]
			i := plane * planeLen
			if p.K == 2 && p.Stride == 2 {
				// The ubiquitous 2×2/stride-2 window: flat pair-max walk
				// over two rows at a time, no inner kernel loops.
				for oh := 0; oh < outH; oh++ {
					r0 := ch[(2*oh)*p.W : (2*oh)*p.W+2*outW]
					r1 := ch[(2*oh+1)*p.W : (2*oh+1)*p.W+2*outW]
					for ow := 0; ow < outW; ow++ {
						best := r0[2*ow]
						if v := r0[2*ow+1]; v > best {
							best = v
						}
						if v := r1[2*ow]; v > best {
							best = v
						}
						if v := r1[2*ow+1]; v > best {
							best = v
						}
						if relu && best < 0 {
							best = 0
						}
						dst[i] = best
						i++
					}
				}
				continue
			}
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := ch[(oh*p.Stride)*p.W+ow*p.Stride]
					for kh := 0; kh < p.K; kh++ {
						row := ch[(oh*p.Stride+kh)*p.W+ow*p.Stride:]
						for kw := 0; kw < p.K; kw++ {
							if row[kw] > best {
								best = row[kw]
							}
						}
					}
					if relu && best < 0 {
						best = 0
					}
					dst[i] = best
					i++
				}
			}
		}
	}
	n := batch * p.C
	perPlane := planeLen * p.K * p.K
	if n > 1 && parallel.Worth(n*perPlane) {
		parallel.Do(n, parallel.GrainItems(perPlane), planes)
	} else {
		planes(0, n)
	}
}

// QConv2D applies the convolution described by s to a batched float input
// (batch, inC, inH, inW) using int8 arithmetic: activations are quantized
// with the calibrated scale xScale, the kernel qw is the int8 weight
// artifact stored matmul-ready as (outC, inC*kH*kW), and each output
// element is an int8×int8 dot product accumulated in int32 with a single
// float rescale (xScale·qw.Scale) plus bias at the end.
func QConv2D(x *Tensor, qw *QTensor, bias *Tensor, s Conv2DSpec, xScale float32) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: QConv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	out := New(x.shape[0], s.OutC, s.OutH(), s.OutW())
	if err := QConv2DInto(out, x, qw, bias, s, xScale, false); err != nil {
		return nil, err
	}
	return out, nil
}

// QConv2DInto is QConv2D reusing dst's storage (dst need not be zeroed);
// dst must be (batch, outC, outH, outW). relu clamps negatives in the
// epilogue — the fused activation the execution plans compile in.
func QConv2DInto(dst, x *Tensor, qw *QTensor, bias *Tensor, s Conv2DSpec, xScale float32, relu bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return fmt.Errorf("%w: QConv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	if qw.Len() != s.OutC*s.InC*s.KH*s.KW {
		return fmt.Errorf("%w: QConv2D kernel %v does not match spec %+v", ErrShape, qw.shape, s)
	}
	if bias != nil && bias.Len() != s.OutC {
		return fmt.Errorf("%w: QConv2D bias %v, want %d", ErrShape, bias.shape, s.OutC)
	}
	batch := x.shape[0]
	if dst.Dims() != 4 || dst.shape[0] != batch || dst.shape[1] != s.OutC || dst.shape[2] != s.OutH() || dst.shape[3] != s.OutW() {
		return fmt.Errorf("%w: QConv2D output %v does not match spec %+v", ErrShape, dst.shape, s)
	}
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	qconv2DForward(dst.data, nil, x.data, nil, qw, biasData, s, batch, xScale, 0, relu, nil)
	return nil
}

// QConv2DExec is the compiled-plan entry to the int8 convolution with
// fusion on both sides: the input is either the float image x (quantized
// per image with xScale) or the pre-quantized qin a producing op's fused
// epilogue emitted, and the output is either float dst or int8 qout
// requantized with the consuming op's activation scale outScale — so a
// chain of quantized ops passes int8 activations end to end,
// materializing float only where a float consumer needs it. The fused
// requantization applies exactly QuantizeCalibratedInto's arithmetic to
// exactly the float the unfused epilogue would have written, so fused
// and unfused plans are bitwise identical. Shapes are the caller's
// contract (the plan validated them at compile time).
func QConv2DExec(dst []float32, qout []int8, x []float32, qin []int8, qw *QTensor, bias []float32, s Conv2DSpec, batch int, xScale, outScale float32, relu bool) {
	qconv2DForward(dst, qout, x, qin, qw, bias, s, batch, xScale, outScale, relu, nil)
}

// QConv2DExec4 is QConv2DExec for a nibble-packed int4 weight artifact:
// the kernel is unpacked to int8 in pooled scratch once per call (conv
// kernels are small — the packed form is what stays resident) and runs
// through the identical int8 convolution with q4's per-row scales in the
// epilogue. Everything else — fused input/output quantization, direct
// kernels, batch sharding — is shared.
func QConv2DExec4(dst []float32, qout []int8, x []float32, qin []int8, q4 *Q4Tensor, bias []float32, s Conv2DSpec, batch int, xScale, outScale float32, relu bool) {
	wp := i8Scratch(q4.Len())
	defer i8Release(wp)
	w := (*wp)[:q4.Len()]
	q4.UnpackInto(w)
	qconv2DForward(dst, qout, x, qin, &QTensor{Scale: 1, Data: w}, bias, s, batch, xScale, outScale, relu, q4.Scales)
}

// qconv2DForward is the shared int8 convolution core. Output memory need
// not be zeroed. qin, when non-nil, is the already-quantized input (the
// upstream op's fused epilogue); qout, when non-nil, receives int8
// activations requantized with outScale instead of float into out.
// Multi-image batches shard across the parallel runtime with per-shard
// quantized-image and column scratch; each image's integer arithmetic is
// exact, so results are bitwise pool-width-independent. rowScales, when
// non-nil, supplies per-output-channel weight scales (the int4 artifact's
// per-row quantization) in place of the uniform qw.Scale.
func qconv2DForward(out []float32, qout []int8, x []float32, qin []int8, qw *QTensor, bias []float32, s Conv2DSpec, batch int, xScale, outScale float32, relu bool, rowScales []float32) {
	if xScale <= 0 {
		xScale = 1
	}
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	imgLen := s.InC * s.InH * s.InW
	outLen := s.OutC * colW
	// Per-channel effective rescale factors, computed once: the epilogue
	// multiplies accumulator oc by scales[oc].
	scalesP := f32Scratch(s.OutC)
	defer f32Release(scalesP)
	scales := (*scalesP)[:s.OutC]
	for oc := range scales {
		if rowScales != nil {
			scales[oc] = xScale * rowScales[oc]
		} else {
			scales[oc] = xScale * qw.Scale
		}
	}
	var invOut float32
	if qout != nil {
		invOut = 1 / outScale
	}
	perImage := s.OutC * colRows * colW
	gemmRows := func(dst []float32, qdst []int8, colsT []int8, acc []int32, lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			QGemmRowT(acc, qw.Data[oc*colRows:(oc+1)*colRows], colsT, colRows, colW)
			var bv float32
			if bias != nil {
				bv = bias[oc]
			}
			if qdst != nil {
				qRequantRow(qdst[oc*colW:(oc+1)*colW], acc[:colW], scales[oc], bv, invOut, relu)
			} else {
				qDequantRow(dst[oc*colW:(oc+1)*colW], acc[:colW], scales[oc], bv, relu)
			}
		}
	}
	// The direct stencil walk reads 1/9th of the bytes im2col
	// materializes and is bitwise identical (integer accumulation is
	// associative), so the dispatcher picks purely on speed: with AVX2
	// the VPMADDWD stencil kernels run on the padded image directly;
	// without it the scalar stencil still beats scalar im2col+GEMM.
	directAsm := useAVX2 && directConv3x3OK(s)
	direct := !useAVX2 && directConv3x3OK(s)
	var wp []int32
	if directAsm {
		wpP := i32Scratch(s.OutC * s.InC * 6)
		defer i32Release(wpP)
		wp = (*wpP)[:s.OutC*s.InC*6]
		qpackWeights3x3(wp, qw.Data, s.OutC, s.InC)
	}
	image := func(b int, qimg, colsT []int8, acc []int32, rowParallel bool) {
		if qin != nil {
			qimg = qin[b*imgLen : (b+1)*imgLen]
		} else if !directAsm {
			QuantizeCalibratedInto(qimg, x[b*imgLen:(b+1)*imgLen], xScale)
		}
		var dst []float32
		var qdst []int8
		if qout != nil {
			qdst = qout[b*outLen : (b+1)*outLen]
		} else {
			dst = out[b*outLen : (b+1)*outLen]
		}
		if directAsm {
			// The column scratch doubles as the padded-image buffer: for
			// every directConv3x3OK shape 9·InC·outH·outW exceeds
			// InC·(InH+2P)·(InW+2P)+1 (the +1 is the kernels' slack byte).
			var pimg []int8
			if qin != nil {
				pimg = qpadImage3x3(colsT, qimg, s)
			} else {
				pimg = quantizePad3x3(colsT, x[b*imgLen:(b+1)*imgLen], s, xScale)
			}
			if rowParallel && s.OutC > 1 && parallel.Worth(perImage) {
				parallel.Do(s.OutC, parallel.GrainItems(colRows*colW), func(lo, hi int) {
					accP := i32Scratch(colW)
					defer i32Release(accP)
					qconvDirect3x3AVX2(dst, qdst, pimg, wp, bias, s, scales, invOut, relu, *accP, lo, hi)
				})
				return
			}
			qconvDirect3x3AVX2(dst, qdst, pimg, wp, bias, s, scales, invOut, relu, acc, 0, s.OutC)
			return
		}
		if direct {
			if rowParallel && s.OutC > 1 && parallel.Worth(perImage) {
				parallel.Do(s.OutC, parallel.GrainItems(colRows*colW), func(lo, hi int) {
					accP := i32Scratch(colW)
					defer i32Release(accP)
					qconvDirect3x3(dst, qdst, qimg, qw.Data, bias, s, scales, invOut, relu, *accP, lo, hi)
				})
				return
			}
			qconvDirect3x3(dst, qdst, qimg, qw.Data, bias, s, scales, invOut, relu, acc, 0, s.OutC)
			return
		}
		QIm2ColT(qimg, s, colsT)
		if rowParallel && s.OutC > 1 && parallel.Worth(perImage) {
			parallel.Do(s.OutC, parallel.GrainItems(colRows*colW), func(lo, hi int) {
				accP := i32Scratch(colW)
				defer i32Release(accP)
				gemmRows(dst, qdst, colsT, *accP, lo, hi)
			})
			return
		}
		gemmRows(dst, qdst, colsT, acc, 0, s.OutC)
	}
	if batch > 1 && parallel.Worth(batch*perImage) {
		parallel.Do(batch, parallel.GrainItems(perImage), func(lo, hi int) {
			qimgP := i8Scratch(imgLen)
			colsP := i8Scratch(colRows * colW)
			accP := i32Scratch(colW)
			defer i8Release(qimgP)
			defer i8Release(colsP)
			defer i32Release(accP)
			for b := lo; b < hi; b++ {
				image(b, *qimgP, *colsP, *accP, false)
			}
		})
		return
	}
	// Serial batch walk; a single large image instead lets the GEMM shard
	// its output-channel rows, mirroring conv2DForward's split.
	qimgP := i8Scratch(imgLen)
	colsP := i8Scratch(colRows * colW)
	accP := i32Scratch(colW)
	defer i8Release(qimgP)
	defer i8Release(colsP)
	defer i32Release(accP)
	for b := 0; b < batch; b++ {
		image(b, *qimgP, *colsP, *accP, true)
	}
}
