package tensor

import (
	"fmt"

	"openei/internal/parallel"
)

// Int8 convolution: the quantized twin of conv2DForward. The input image
// is quantized once with a calibrated activation scale, lowered by an
// int8 im2col that emits the column matrix already transposed (one
// contiguous patch row per output position), and reduced against the
// int8 weight rows with the four-column dot kernel QGemmRowT — streaming
// one quarter of the column-matrix bytes the float kernel does, which is
// where the int8 backend's speedup comes from on bandwidth-bound convs.

// QIm2ColT lowers a quantized image (inC, inH, inW as a flat int8 slice)
// into the TRANSPOSED column matrix colsT of shape (outH*outW, inC*kH*kW):
// row p holds the receptive-field patch of output position p, the layout
// the dot-form GEMM streams. Padding contributes exact zeros (symmetric
// quantization maps 0.0 → 0).
func QIm2ColT(qimg []int8, s Conv2DSpec, colsT []int8) {
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	p := 0
	for oh := 0; oh < outH; oh++ {
		for ow := 0; ow < outW; ow++ {
			row := colsT[p*colRows : (p+1)*colRows]
			p++
			idx := 0
			for c := 0; c < s.InC; c++ {
				chanBase := c * s.InH * s.InW
				for kh := 0; kh < s.KH; kh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						for kw := 0; kw < s.KW; kw++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + ih*s.InW
					for kw := 0; kw < s.KW; kw++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw < 0 || iw >= s.InW {
							row[idx] = 0
						} else {
							row[idx] = qimg[rowBase+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// QConv2D applies the convolution described by s to a batched float input
// (batch, inC, inH, inW) using int8 arithmetic: activations are quantized
// with the calibrated scale xScale, the kernel qw is the int8 weight
// artifact stored matmul-ready as (outC, inC*kH*kW), and each output
// element is an int8×int8 dot product accumulated in int32 with a single
// float rescale (xScale·qw.Scale) plus bias at the end.
func QConv2D(x *Tensor, qw *QTensor, bias *Tensor, s Conv2DSpec, xScale float32) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: QConv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	out := New(x.shape[0], s.OutC, s.OutH(), s.OutW())
	if err := QConv2DInto(out, x, qw, bias, s, xScale, false); err != nil {
		return nil, err
	}
	return out, nil
}

// QConv2DInto is QConv2D reusing dst's storage (dst need not be zeroed);
// dst must be (batch, outC, outH, outW). relu clamps negatives in the
// epilogue — the fused activation the execution plans compile in.
func QConv2DInto(dst, x *Tensor, qw *QTensor, bias *Tensor, s Conv2DSpec, xScale float32, relu bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return fmt.Errorf("%w: QConv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	if qw.Len() != s.OutC*s.InC*s.KH*s.KW {
		return fmt.Errorf("%w: QConv2D kernel %v does not match spec %+v", ErrShape, qw.shape, s)
	}
	if bias != nil && bias.Len() != s.OutC {
		return fmt.Errorf("%w: QConv2D bias %v, want %d", ErrShape, bias.shape, s.OutC)
	}
	batch := x.shape[0]
	if dst.Dims() != 4 || dst.shape[0] != batch || dst.shape[1] != s.OutC || dst.shape[2] != s.OutH() || dst.shape[3] != s.OutW() {
		return fmt.Errorf("%w: QConv2D output %v does not match spec %+v", ErrShape, dst.shape, s)
	}
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	qconv2DForward(dst.data, x.data, qw, biasData, s, batch, xScale, relu)
	return nil
}

// qconv2DForward is the shared int8 convolution core. Output memory need
// not be zeroed. Multi-image batches shard across the parallel runtime
// with per-shard quantized-image and column scratch; each image's integer
// arithmetic is exact, so results are bitwise pool-width-independent.
func qconv2DForward(out, x []float32, qw *QTensor, bias []float32, s Conv2DSpec, batch int, xScale float32, relu bool) {
	if xScale <= 0 {
		xScale = 1
	}
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	imgLen := s.InC * s.InH * s.InW
	outLen := s.OutC * colW
	scale := xScale * qw.Scale
	perImage := s.OutC * colRows * colW
	gemmRows := func(dst []float32, colsT []int8, acc []int32, lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			QGemmRowT(acc, qw.Data[oc*colRows:(oc+1)*colRows], colsT, colRows, colW)
			var bv float32
			if bias != nil {
				bv = bias[oc]
			}
			ch := dst[oc*colW : (oc+1)*colW]
			for p, v := range acc[:colW] {
				f := float32(v)*scale + bv
				if relu && f < 0 {
					f = 0
				}
				ch[p] = f
			}
		}
	}
	image := func(b int, qimg, colsT []int8, acc []int32, rowParallel bool) {
		QuantizeCalibratedInto(qimg, x[b*imgLen:(b+1)*imgLen], xScale)
		QIm2ColT(qimg, s, colsT)
		dst := out[b*outLen : (b+1)*outLen]
		if rowParallel && s.OutC > 1 && parallel.Worth(perImage) {
			parallel.Do(s.OutC, parallel.GrainItems(colRows*colW), func(lo, hi int) {
				accP := i32Scratch(colW)
				defer i32Release(accP)
				gemmRows(dst, colsT, *accP, lo, hi)
			})
			return
		}
		gemmRows(dst, colsT, acc, 0, s.OutC)
	}
	if batch > 1 && parallel.Worth(batch*perImage) {
		parallel.Do(batch, parallel.GrainItems(perImage), func(lo, hi int) {
			qimgP := i8Scratch(imgLen)
			colsP := i8Scratch(colRows * colW)
			accP := i32Scratch(colW)
			defer i8Release(qimgP)
			defer i8Release(colsP)
			defer i32Release(accP)
			for b := lo; b < hi; b++ {
				image(b, *qimgP, *colsP, *accP, false)
			}
		})
		return
	}
	// Serial batch walk; a single large image instead lets the GEMM shard
	// its output-channel rows, mirroring conv2DForward's split.
	qimgP := i8Scratch(imgLen)
	colsP := i8Scratch(colRows * colW)
	accP := i32Scratch(colW)
	defer i8Release(qimgP)
	defer i8Release(colsP)
	defer i32Release(accP)
	for b := 0; b < batch; b++ {
		image(b, *qimgP, *colsP, *accP, true)
	}
}
