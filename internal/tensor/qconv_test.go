package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.Float32()*2 - 1
	}
	return t
}

func TestQuantizeCalibratedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 5, 7)
	scale := x.AbsMax() / 127
	q := QuantizeCalibrated(x, scale)
	if q.Scale != scale {
		t.Fatalf("scale %v, want %v", q.Scale, scale)
	}
	d := q.Dequantize()
	for i := range x.data {
		if diff := math.Abs(float64(x.data[i] - d.data[i])); diff > float64(scale)/2+1e-7 {
			t.Fatalf("elem %d: %v vs %v (beyond half-step %v)", i, x.data[i], d.data[i], scale/2)
		}
	}
}

func TestQuantizeCalibratedSaturates(t *testing.T) {
	x := MustFrom([]float32{10, -10, 0.5}, 3)
	q := QuantizeCalibrated(x, 0.01) // range ±1.27 → ±10 saturates
	if q.Data[0] != 127 || q.Data[1] != -127 {
		t.Fatalf("saturation: got %d, %d, want ±127", q.Data[0], q.Data[1])
	}
	if q.Data[2] != 50 {
		t.Fatalf("in-range value: got %d, want 50", q.Data[2])
	}
}

func TestQuantizeCalibratedMatchesQuantize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 9, 4)
	a := Quantize(x)
	b := QuantizeCalibrated(x, x.AbsMax()/127)
	if a.Scale != b.Scale {
		t.Fatalf("scales differ: %v vs %v", a.Scale, b.Scale)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("elem %d: %d vs %d", i, a.Data[i], b.Data[i])
		}
	}
}

// QIm2ColT must emit exactly the transpose of the float Im2Col lowering
// applied to the quantized image.
func TestQIm2ColTMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range []Conv2DSpec{
		{InC: 3, InH: 8, InW: 8, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 7, InW: 5, OutC: 1, KH: 3, KW: 2, Stride: 2, Pad: 0},
		{InC: 1, InH: 6, InW: 6, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0},
	} {
		x := randTensor(rng, s.InC, s.InH, s.InW)
		q := Quantize(x)
		colRows := s.InC * s.KH * s.KW
		colW := s.OutH() * s.OutW()

		qf := q.Dequantize()
		cols := make([]float32, colRows*colW)
		Im2Col(qf.data, s, cols)

		colsT := make([]int8, colW*colRows)
		QIm2ColT(q.Data, s, colsT)
		for r := 0; r < colRows; r++ {
			for p := 0; p < colW; p++ {
				want := cols[r*colW+p]
				got := float32(colsT[p*colRows+r]) * q.Scale
				if want != got {
					t.Fatalf("spec %+v (%d,%d): %v vs %v", s, r, p, want, got)
				}
			}
		}
	}
}

// The int8 convolution must agree with dequantize-then-float convolution
// within quantization tolerance: the integer path computes the exact same
// products as Conv2D over the dequantized operands, so the only
// difference is float summation order (the int path sums exactly).
func TestQConv2DMatchesDequantizedFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, s := range []Conv2DSpec{
		{InC: 3, InH: 10, InW: 10, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 4, InH: 9, InW: 7, OutC: 5, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 2, InH: 6, InW: 6, OutC: 7, KH: 1, KW: 1, Stride: 1, Pad: 0},
	} {
		for _, batch := range []int{1, 3} {
			x := randTensor(rng, batch, s.InC, s.InH, s.InW)
			w := randTensor(rng, s.OutC, s.InC*s.KH*s.KW)
			bias := randTensor(rng, s.OutC)

			qw := Quantize(w)
			xScale := x.AbsMax() / 127
			got, err := QConv2D(x, qw, bias, s, xScale)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: float conv over the dequantized operands.
			qx := QuantizeCalibrated(x, xScale)
			want, err := Conv2D(qx.Dequantize(), qw.Dequantize(), bias, s)
			if err != nil {
				t.Fatal(err)
			}
			colRows := s.InC * s.KH * s.KW
			// Integer accumulation is exact; the float reference may lose
			// up to ~K ulps of its running sum. Bound the difference by a
			// tolerance scaled to the reduction depth.
			tol := float64(colRows) * float64(xScale) * float64(qw.Scale) * 4
			for i := range want.data {
				if diff := math.Abs(float64(got.data[i] - want.data[i])); diff > tol {
					t.Fatalf("spec %+v batch %d elem %d: int8 %v vs float %v (tol %v)",
						s, batch, i, got.data[i], want.data[i], tol)
				}
			}
		}
	}
}

// Against the raw float convolution (unquantized operands) the int8 path
// must stay within quantization tolerance: half a step per operand times
// the reduction depth.
func TestQConv2DWithinQuantizationTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Conv2DSpec{InC: 3, InH: 12, InW: 12, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := randTensor(rng, 2, s.InC, s.InH, s.InW)
	w := randTensor(rng, s.OutC, s.InC*s.KH*s.KW)
	bias := randTensor(rng, s.OutC)

	qw := Quantize(w)
	xScale := x.AbsMax() / 127
	got, err := QConv2D(x, qw, bias, s, xScale)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Conv2D(x, w, bias, s)
	if err != nil {
		t.Fatal(err)
	}
	colRows := float64(s.InC * s.KH * s.KW)
	// Each product can be off by ~(|a|·Δw + |w|·Δa); operands are in
	// (-1,1) so a conservative per-term error is Δw + Δa.
	tol := colRows * (float64(xScale) + float64(qw.Scale))
	var worst float64
	for i := range want.data {
		if diff := math.Abs(float64(got.data[i] - want.data[i])); diff > worst {
			worst = diff
		}
	}
	if worst > tol {
		t.Fatalf("worst abs error %v beyond quantization tolerance %v", worst, tol)
	}
}

func TestQConv2DFusedReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := Conv2DSpec{InC: 2, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := randTensor(rng, 2, s.InC, s.InH, s.InW)
	w := randTensor(rng, s.OutC, s.InC*s.KH*s.KW)
	qw := Quantize(w)
	xScale := x.AbsMax() / 127

	plain, err := QConv2D(x, qw, nil, s, xScale)
	if err != nil {
		t.Fatal(err)
	}
	fused := New(2, s.OutC, s.OutH(), s.OutW())
	if err := QConv2DInto(fused, x, qw, nil, s, xScale, true); err != nil {
		t.Fatal(err)
	}
	for i, v := range plain.data {
		want := v
		if want < 0 {
			want = 0
		}
		if fused.data[i] != want {
			t.Fatalf("elem %d: fused %v, want relu(%v)", i, fused.data[i], v)
		}
	}
}
