package tensor

import (
	"math/rand"
	"testing"

	"openei/internal/parallel"
)

// The property the whole parallel runtime rests on: sharded kernels must
// produce bitwise-identical results to the serial kernels, for any shape —
// including odd sizes smaller than the shard grain, where Do degenerates
// to the serial fallback. Per-row (and per-image, per-plane) accumulation
// order is unchanged by sharding, so no float tolerance is needed; the
// sole exception is conv-backward weight/bias gradients, whose cross-shard
// merge order varies and is checked to a tolerance instead.

// serialThenParallel runs fn twice — once on a width-1 pool and once on a
// width-4 pool with grain 1 (every kernel parallelizes, even tiny ones) —
// and returns both results.
func serialThenParallel(t *testing.T, fn func() *Tensor) (serial, par *Tensor) {
	t.Helper()
	parallel.SetProcs(1)
	parallel.SetGrainWork(0)
	serial = fn()
	parallel.SetProcs(4)
	parallel.SetGrainWork(1)
	par = fn()
	parallel.SetProcs(0)
	parallel.SetGrainWork(0)
	return serial, par
}

func requireBitwise(t *testing.T, name string, serial, par *Tensor) {
	t.Helper()
	if !SameShape(serial, par) {
		t.Fatalf("%s: shape %v (serial) vs %v (parallel)", name, serial.Shape(), par.Shape())
	}
	for i := range serial.data {
		if serial.data[i] != par.data[i] {
			t.Fatalf("%s: element %d = %v (serial) vs %v (parallel); sharded kernels must be bitwise identical",
				name, i, serial.data[i], par.data[i])
		}
	}
}

func TestParallelMatMulBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(65), 1+rng.Intn(65), 1+rng.Intn(65)
		a, b := New(m, k), New(k, n)
		a.Rand(rng, 1)
		b.Rand(rng, 1)
		// Sprinkle zeros to exercise the sparsity shortcut on both paths.
		for i := range a.data {
			if rng.Float32() < 0.2 {
				a.data[i] = 0
			}
		}
		s, p := serialThenParallel(t, func() *Tensor {
			c, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
		requireBitwise(t, "MatMul", s, p)
	}
}

func TestParallelMatMulBTBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(65), 1+rng.Intn(65), 1+rng.Intn(65)
		a, b := New(m, k), New(n, k)
		a.Rand(rng, 1)
		b.Rand(rng, 1)
		s, p := serialThenParallel(t, func() *Tensor {
			c, err := MatMulBT(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
		requireBitwise(t, "MatMulBT", s, p)
	}
}

func TestParallelMatVecBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		m, k := 1+rng.Intn(200), 1+rng.Intn(200)
		a, x := New(m, k), New(k)
		a.Rand(rng, 1)
		x.Rand(rng, 1)
		s, p := serialThenParallel(t, func() *Tensor {
			y, err := MatVec(a, x)
			if err != nil {
				t.Fatal(err)
			}
			return y
		})
		requireBitwise(t, "MatVec", s, p)
	}
}

func TestParallelQMatMulBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(65), 1+rng.Intn(65), 1+rng.Intn(65)
		a, b := New(m, k), New(k, n)
		a.Rand(rng, 2)
		b.Rand(rng, 2)
		qa, qb := Quantize(a), Quantize(b)
		s, p := serialThenParallel(t, func() *Tensor {
			c, err := QMatMul(qa, qb)
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
		requireBitwise(t, "QMatMul", s, p)
	}
}

func randConvCase(rng *rand.Rand) (Conv2DSpec, *Tensor, *Tensor, *Tensor) {
	s := Conv2DSpec{
		InC: 1 + rng.Intn(4), InH: 4 + rng.Intn(13), InW: 4 + rng.Intn(13),
		OutC: 1 + rng.Intn(6), KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
		Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
	}
	batch := 1 + rng.Intn(5)
	x := New(batch, s.InC, s.InH, s.InW)
	w := New(s.OutC, s.InC, s.KH, s.KW)
	bias := New(s.OutC)
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	bias.Rand(rng, 1)
	return s, x, w, bias
}

func TestParallelConv2DBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 15; trial++ {
		s, x, w, bias := randConvCase(rng)
		if s.Validate() != nil {
			continue
		}
		ser, par := serialThenParallel(t, func() *Tensor {
			out, err := Conv2D(x, w, bias, s)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		requireBitwise(t, "Conv2D", ser, par)
	}
}

func TestParallelDepthwiseConv2DBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 15; trial++ {
		s, x, _, _ := randConvCase(rng)
		s.OutC = s.InC
		if s.Validate() != nil {
			continue
		}
		w := New(s.InC, s.KH, s.KW)
		bias := New(s.InC)
		w.Rand(rng, 1)
		bias.Rand(rng, 1)
		ser, par := serialThenParallel(t, func() *Tensor {
			out, err := DepthwiseConv2D(x, w, bias, s)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		requireBitwise(t, "DepthwiseConv2D", ser, par)
	}
}

func TestParallelPoolingBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		batch, c := 1+rng.Intn(4), 1+rng.Intn(6)
		k := 2 + rng.Intn(2)
		h := k + rng.Intn(14)
		w := k + rng.Intn(14)
		p := PoolSpec{C: c, H: h, W: w, K: k, Stride: 1 + rng.Intn(2)}
		x := New(batch, c, h, w)
		x.Rand(rng, 1)

		serMax, parMax := serialThenParallel(t, func() *Tensor {
			out, _, err := MaxPool2D(x, p)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		requireBitwise(t, "MaxPool2D", serMax, parMax)

		serAvg, parAvg := serialThenParallel(t, func() *Tensor {
			out, err := AvgPool2D(x, p)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		requireBitwise(t, "AvgPool2D", serAvg, parAvg)

		serGap, parGap := serialThenParallel(t, func() *Tensor {
			out, err := GlobalAvgPool2D(x)
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		requireBitwise(t, "GlobalAvgPool2D", serGap, parGap)
	}
}

// MaxPool argmax routing must also be shard-independent (backprop uses it).
func TestParallelMaxPoolArgBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	p := PoolSpec{C: 3, H: 12, W: 12, K: 2, Stride: 2}
	x := New(4, 3, 12, 12)
	x.Rand(rng, 1)
	run := func() []int {
		_, arg, err := MaxPool2D(x, p)
		if err != nil {
			t.Fatal(err)
		}
		return arg
	}
	parallel.SetProcs(1)
	serial := run()
	parallel.SetProcs(4)
	parallel.SetGrainWork(1)
	par := run()
	parallel.SetProcs(0)
	parallel.SetGrainWork(0)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("argmax %d: %d (serial) vs %d (parallel)", i, serial[i], par[i])
		}
	}
}

// Conv backward: dx is written per image and must be bitwise identical;
// dW/dB merge shard partials in nondeterministic order, so they are held
// to a tight relative tolerance instead.
func TestParallelConv2DBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 10; trial++ {
		s, x, w, _ := randConvCase(rng)
		if s.Validate() != nil {
			continue
		}
		batch := x.Dim(0)
		grad := New(batch, s.OutC, s.OutH(), s.OutW())
		grad.Rand(rng, 1)
		colRows := s.InC * s.KH * s.KW
		w2 := w.MustReshape(s.OutC, colRows)
		run := func() (*Tensor, *Tensor, *Tensor) {
			wt, err := Transpose(w2)
			if err != nil {
				t.Fatal(err)
			}
			dx := New(x.Shape()...)
			dW := New(s.OutC, colRows)
			dB := New(s.OutC)
			Conv2DBackward(x.Data(), grad.Data(), wt.Data(), dx.Data(), dW.Data(), dB.Data(), s, batch)
			return dx, dW, dB
		}
		parallel.SetProcs(1)
		parallel.SetGrainWork(0)
		sdx, sdW, sdB := run()
		parallel.SetProcs(4)
		parallel.SetGrainWork(1)
		pdx, pdW, pdB := run()
		parallel.SetProcs(0)
		parallel.SetGrainWork(0)
		requireBitwise(t, "Conv2DBackward dx", sdx, pdx)
		for i := range sdW.data {
			if d := sdW.data[i] - pdW.data[i]; d > 1e-4 || d < -1e-4 {
				t.Fatalf("dW element %d: %v vs %v", i, sdW.data[i], pdW.data[i])
			}
		}
		for i := range sdB.data {
			if d := sdB.data[i] - pdB.data[i]; d > 1e-4 || d < -1e-4 {
				t.Fatalf("dB element %d: %v vs %v", i, sdB.data[i], pdB.data[i])
			}
		}
	}
}
