//go:build amd64

package tensor

import "os"

// forceScalar disables every assembly kernel in the package when the
// OPENEI_FORCE_SCALAR environment variable is set. CI runs one test leg
// with it on so the pure-Go fallbacks of the FMA GEMM, the direct
// convolutions, and the int8/int4 kernels are exercised on every push,
// not only on machines without AVX2.
var forceScalar = os.Getenv("OPENEI_FORCE_SCALAR") != ""

// useFMA gates the float32 FMA kernels: AVX2+FMA3 present, YMM state
// OS-enabled, and no scalar override. The packed GEMM wins because a
// 4×16 tile issues eight VFMADD231PS per k step from registers, not
// because the blocking alone is faster — without FMA the pure-Go
// microkernel still runs behind the same packed driver.
var useFMA = cpuHasFMA() && !forceScalar

// cpuHasFMA reports FMA3+AVX2 support: OSXSAVE+AVX+FMA (CPUID.1:ECX),
// YMM state enabled in XCR0 (XGETBV), and AVX2 (CPUID.7.0:EBX bit 5).
func cpuHasFMA() bool

// fgemmKernelAsm is the 4×16 float32 FMA microkernel: it accumulates
// pa (kc×4, k-major) times pb (kc×16, k-major) into the 4×16 tile of C
// at c with row stride ldc floats. C is updated, not overwritten
// (C += A·B), so the driver's KC blocks chain without an intermediate
// buffer. kc ≥ 1; no alignment requirements.
//
//go:noescape
func fgemmKernelAsm(pa, pb, c *float32, kc, ldc int)

// fdotAsm computes the float32 dot product a[0:k]·b[0:k] with four YMM
// FMA accumulators. k must be a multiple of 32 and ≥ 32; callers handle
// the tail in Go.
//
//go:noescape
func fdotAsm(a, b *float32, k int) float32

// fconv3x3Asm8 computes 8 complete 3×3 convolution outputs from a
// padded image:
//
//	dst[j] = bias + Σ_{ic<inC} Σ_{r<3} Σ_{t<3} w[ic*9+r*3+t] · src[ic*chanStride + r*rowStride + t + j]
//
// The whole input-channel reduction runs inside one call — a single YMM
// accumulator, two instructions per tap — so call overhead amortizes
// over inC·9 FMAs instead of 3. Writes are complete sums (not
// accumulations), so row tails may overlap a previous call's span.
//
//go:noescape
func fconv3x3Asm8(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32)

// fconv3x3Asm16 is the 16-output variant (two YMM accumulators): the
// nine weight broadcasts per input channel amortize over twice the
// outputs, cutting load-port pressure by a third on full-width rows.
//
//go:noescape
func fconv3x3Asm16(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32)
