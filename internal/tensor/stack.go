package tensor

import "fmt"

// Stack copies n same-shaped sample tensors into one batch tensor of shape
// [n, sampleShape...]. It is the coalescing primitive of the serving
// engine's micro-batcher: single-sample requests are stacked into one
// forward pass. Samples must all share the shape of ts[0]; the inputs are
// not retained.
func Stack(ts []*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: cannot stack zero tensors", ErrShape)
	}
	first := ts[0]
	for i, t := range ts[1:] {
		if !sameShape(first.shape, t.shape) {
			return nil, fmt.Errorf("%w: stack operand %d has shape %v, want %v", ErrShape, i+1, t.shape, first.shape)
		}
	}
	out := New(append([]int{len(ts)}, first.shape...)...)
	stride := first.Len()
	for i, t := range ts {
		copy(out.data[i*stride:(i+1)*stride], t.data)
	}
	return out, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
