package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantize4RoundTrip: every unpacked value sits on the [-7, 7] grid,
// matches the scalar rounding oracle against the row scale, and the
// dequantized matrix is within half a quantization step per element.
func TestQuantize4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(33) // exercises odd widths (ragged last nibble)
		w := New(rows, cols)
		w.Rand(rng, float32(rng.Intn(3))+0.5)
		if trial == 0 {
			for i := range w.data {
				w.data[i] = 0 // zero matrix: scale must fall back to 1
			}
		}
		q := Quantize4(w, rows)
		if q.Rows() != rows || q.Cols() != cols || q.Len() != rows*cols {
			t.Fatalf("shape bookkeeping: %d×%d vs %d×%d", q.Rows(), q.Cols(), rows, cols)
		}
		wantBytes := rows*((cols+1)/2) + 4*rows
		if q.SizeBytes() != wantBytes {
			t.Fatalf("SizeBytes %d, want %d", q.SizeBytes(), wantBytes)
		}
		row := make([]int8, cols)
		for r := 0; r < rows; r++ {
			scale := q.Scales[r]
			if scale <= 0 {
				t.Fatalf("row %d scale %v", r, scale)
			}
			q.UnpackRowInto(row, r)
			for c, v := range row {
				if v < -7 || v > 7 {
					t.Fatalf("row %d col %d unpacked %d outside int4 grid", r, c, v)
				}
				if want := qRound4(w.data[r*cols+c] / scale); v != want {
					t.Fatalf("row %d col %d: unpacked %d, rounding oracle %d", r, c, v, want)
				}
			}
		}
		d := q.Dequantize()
		for i, v := range d.Data() {
			step := float64(q.Scales[i/cols])
			if diff := math.Abs(float64(v - w.data[i])); diff > step/2+1e-6 {
				t.Fatalf("elem %d: dequant %v vs %v exceeds half-step %v", i, v, w.data[i], step/2)
			}
		}
	}
}

// TestQuantize4UnpackIntoMatchesRows: the whole-matrix unpack is exactly
// the row unpacks concatenated — the invariant the dense execution path
// (one UnpackInto per call) relies on.
func TestQuantize4UnpackIntoMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	w := New(5, 7)
	w.Rand(rng, 2)
	q := Quantize4(w, 5)
	all := make([]int8, q.Len())
	q.UnpackInto(all)
	row := make([]int8, q.Cols())
	for r := 0; r < q.Rows(); r++ {
		q.UnpackRowInto(row, r)
		for c, v := range row {
			if all[r*q.Cols()+c] != v {
				t.Fatalf("row %d col %d: UnpackInto %d vs UnpackRowInto %d", r, c, all[r*q.Cols()+c], v)
			}
		}
	}
}

// TestQuantize4PerRowBeatsPerTensor: per-row scales are the reason int4
// stays in tolerance — a matrix with one wide row and one narrow row
// must dequantize the narrow row far better than a single shared scale
// could.
func TestQuantize4PerRowBeatsPerTensor(t *testing.T) {
	w := New(2, 8)
	for c := 0; c < 8; c++ {
		w.data[c] = float32(c-4) * 10 // wide row: |max| = 40
		w.data[8+c] = float32(c-4) * 0.01
	}
	q := Quantize4(w, 2)
	d := q.Dequantize()
	var narrowErr float64
	for c := 0; c < 8; c++ {
		narrowErr += math.Abs(float64(d.Data()[8+c] - w.data[8+c]))
	}
	// Under a shared scale (40/7 ≈ 5.7) every narrow value would collapse
	// to 0 — total error ≈ Σ|v| = 0.16. Per-row scales bound it at the
	// row's half-step (0.04/7/2 ≈ 0.003) per element.
	if narrowErr > 8*0.003 {
		t.Fatalf("narrow-row dequant error %v — per-row scales not applied", narrowErr)
	}
}

// TestQConv2DExec4MatchesUnpackedInt8: the int4 conv execution path is
// the int8 path run on the unpacked weights with per-row scales —
// bitwise, since both share kernels and the one rounding expression.
func TestQConv2DExec4MatchesUnpackedInt8(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 8; trial++ {
		s := Conv2DSpec{
			InC: 1 + rng.Intn(3), InH: 10 + rng.Intn(6), InW: 10 + rng.Intn(6),
			OutC: 1 + rng.Intn(5), KH: 3, KW: 3, Stride: 1, Pad: rng.Intn(2),
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		batch := 1 + rng.Intn(2)
		x := New(batch, s.InC, s.InH, s.InW)
		w := New(s.OutC, s.InC, 3, 3)
		bias := New(s.OutC)
		x.Rand(rng, 1)
		w.Rand(rng, 1)
		bias.Rand(rng, 1)
		q4 := Quantize4(w, s.OutC)
		xScale := x.AbsMax() / 127
		relu := trial%2 == 0
		outLen := batch * s.OutC * s.OutH() * s.OutW()

		got := make([]float32, outLen)
		QConv2DExec4(got, nil, x.data, nil, q4, bias.data, s, batch, xScale, 0, relu)

		// Reference: dequantize the int4 artifact to float, requantize it
		// as a unit-scale int8 tensor carrying the row scales externally —
		// i.e. run the int8 kernels on the exact unpacked values.
		unpacked := make([]int8, q4.Len())
		q4.UnpackInto(unpacked)
		want := make([]float32, outLen)
		qw := &QTensor{Scale: 1, Data: unpacked}
		qconv2DForward(want, nil, x.data, nil, qw, bias.data, s, batch, xScale, 0, relu, q4.Scales)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d elem %d: QConv2DExec4 %v vs reference %v", trial, i, got[i], want[i])
			}
		}
	}
}
