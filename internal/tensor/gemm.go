package tensor

import "openei/internal/parallel"

// BLIS-style packed, cache-blocked float32 GEMM. The driver walks
// NC×KC×MC blocks, packing each operand block once into contiguous
// k-major panels (A in fMR-row panels, B in fNR-column panels) so the
// 4×16 microkernel streams both from L1/L2 with unit stride and spends
// its cycles in FMAs instead of TLB walks. Edge tiles are zero-padded
// into the same panel layout and run the same microkernel into a stack
// tile, so accumulation order per element — k ascending within each KC
// block, KC blocks ascending — never depends on where a tile falls or
// which worker runs it: results are bitwise independent of pool width.
const (
	fMR = 4   // microkernel rows (broadcast operand)
	fNR = 16  // microkernel cols (two YMM vectors)
	fKC = 256 // k block: one A panel (fKC×fMR floats) stays L1-resident
	fMC = 64  // m block: A panels packed per pass, fMC×fKC×4B = 64 KiB
	fNC = 512 // n block: B panel footprint fKC×fNC×4B = 512 KiB (L2)
)

// packedWorth reports whether the packed driver beats the register-blocked
// loops: packing costs O(mk + kn) and pays off once each packed element is
// reused across a tile dimension. Small or skinny products stay on the
// streaming kernels (which also keep the sparsity shortcut).
func packedWorth(m, k, n int) bool {
	return m >= fMR && n >= fNR && k >= 16 && m*k*n >= 1<<14
}

// packA writes the mc×kc block of a at (ic, pc) into pa as consecutive
// k-major fMR-row panels: panel[p*fMR+i] = a[(ic+ir+i)*lda + pc+p]. The
// last panel zero-pads rows past mc so the microkernel never branches on
// tile height.
func packA(pa, a []float32, ic, pc, mc, kc, lda int) {
	np := 0
	for ir := 0; ir < mc; ir += fMR {
		mr := min(fMR, mc-ir)
		panel := pa[np : np+kc*fMR]
		for i := 0; i < mr; i++ {
			row := a[(ic+ir+i)*lda+pc : (ic+ir+i)*lda+pc+kc]
			for p, v := range row {
				panel[p*fMR+i] = v
			}
		}
		for i := mr; i < fMR; i++ {
			for p := 0; p < kc; p++ {
				panel[p*fMR+i] = 0
			}
		}
		np += kc * fMR
	}
}

// packB writes the kc×nc block of row-major b (k×n) at (pc, jc) into pb
// as consecutive k-major fNR-column panels, zero-padding columns past nc.
func packB(pb, b []float32, pc, jc, kc, nc, ldb int) {
	np := 0
	for jr := 0; jr < nc; jr += fNR {
		nr := min(fNR, nc-jr)
		panel := pb[np : np+kc*fNR]
		if nr == fNR {
			for p := 0; p < kc; p++ {
				copy(panel[p*fNR:p*fNR+fNR], b[(pc+p)*ldb+jc+jr:])
			}
		} else {
			for p := 0; p < kc; p++ {
				base := p * fNR
				off := (pc+p)*ldb + jc + jr
				copy(panel[base:base+nr], b[off:off+nr])
				for j := nr; j < fNR; j++ {
					panel[base+j] = 0
				}
			}
		}
		np += kc * fNR
	}
}

// packBT is packB for a transpose-stored B: b holds Bᵀ row-major (n×k),
// so B[p][j] = b[(jc+jr+j)*ldb + pc+p]. Dense layers store weights
// (out, in); this packs them without materializing the transpose.
func packBT(pb, b []float32, pc, jc, kc, nc, ldb int) {
	np := 0
	for jr := 0; jr < nc; jr += fNR {
		nr := min(fNR, nc-jr)
		panel := pb[np : np+kc*fNR]
		for j := 0; j < nr; j++ {
			row := b[(jc+jr+j)*ldb+pc : (jc+jr+j)*ldb+pc+kc]
			for p, v := range row {
				panel[p*fNR+j] = v
			}
		}
		for j := nr; j < fNR; j++ {
			for p := 0; p < kc; p++ {
				panel[p*fNR+j] = 0
			}
		}
		np += kc * fNR
	}
}

// fgemmKernelGo is the pure-Go microkernel behind the same packed
// panels: a 4×16 stack accumulator over kc steps, added into C at the
// end — the exact contract of fgemmKernelAsm, so the driver above it is
// identical on every architecture.
func fgemmKernelGo(pa, pb, c []float32, kc, ldc int) {
	var acc [fMR * fNR]float32
	for p := 0; p < kc; p++ {
		bp := pb[p*fNR : p*fNR+fNR]
		ap := pa[p*fMR : p*fMR+fMR]
		for i, av := range ap {
			row := acc[i*fNR : i*fNR+fNR]
			for j, bv := range bp {
				row[j] += av * bv
			}
		}
	}
	for i := 0; i < fMR; i++ {
		crow := c[i*ldc : i*ldc+fNR]
		arow := acc[i*fNR : i*fNR+fNR]
		for j, v := range arow {
			crow[j] += v
		}
	}
}

// fgemmTile runs one microtile: full tiles update C in place; edge tiles
// run the same kernel into a zeroed stack tile (panels are zero-padded,
// so real elements accumulate identically) and add the live sub-block.
func fgemmTile(pa, pb, c []float32, kc, ldc, mr, nr int) {
	if mr == fMR && nr == fNR {
		if useFMA {
			fgemmKernelAsm(&pa[0], &pb[0], &c[0], kc, ldc)
		} else {
			fgemmKernelGo(pa, pb, c, kc, ldc)
		}
		return
	}
	var tile [fMR * fNR]float32
	if useFMA {
		fgemmKernelAsm(&pa[0], &pb[0], &tile[0], kc, fNR)
	} else {
		fgemmKernelGo(pa, pb, tile[:], kc, fNR)
	}
	for i := 0; i < mr; i++ {
		crow := c[i*ldc : i*ldc+nr]
		trow := tile[i*fNR : i*fNR+nr]
		for j, v := range trow {
			crow[j] += v
		}
	}
}

// fgemmRows accumulates a·b (or a·bᵀ when bt) into rows [rlo, rhi) of c.
// c must hold prior values to accumulate onto (callers zero it for plain
// assignment). Pack buffers come from the scratch pool, so steady-state
// serving allocates nothing here.
func fgemmRows(c, a, b []float32, rlo, rhi, k, n int, bt bool) {
	pa := f32Scratch(fMC * fKC)
	pb := f32Scratch(fKC * fNC)
	for jc := 0; jc < n; jc += fNC {
		nc := min(fNC, n-jc)
		for pc := 0; pc < k; pc += fKC {
			kc := min(fKC, k-pc)
			if bt {
				packBT(*pb, b, pc, jc, kc, nc, k)
			} else {
				packB(*pb, b, pc, jc, kc, nc, n)
			}
			for ic := rlo; ic < rhi; ic += fMC {
				mc := min(fMC, rhi-ic)
				packA(*pa, a, ic, pc, mc, kc, k)
				for jr := 0; jr < nc; jr += fNR {
					nr := min(fNR, nc-jr)
					pbp := (*pb)[(jr/fNR)*kc*fNR:]
					for ir := 0; ir < mc; ir += fMR {
						mr := min(fMR, mc-ir)
						pap := (*pa)[(ir/fMR)*kc*fMR:]
						coff := (ic+ir)*n + jc + jr
						fgemmTile(pap, pbp, c[coff:], kc, n, mr, nr)
					}
				}
			}
		}
	}
	f32Release(pa)
	f32Release(pb)
}

// fgemmParallel shards the packed driver across the pool by row tiles,
// so shard boundaries always fall on fMR multiples and every worker runs
// the identical serial driver over its rows. Each shard packs its own
// panels from the pool — no cross-worker coordination.
func fgemmParallel(c, a, b []float32, m, k, n int, bt bool) {
	mb := (m + fMR - 1) / fMR
	if mb > 1 && parallel.Worth(m*k*n) {
		parallel.Do(mb, parallel.GrainItems(fMR*k*n), func(lo, hi int) {
			fgemmRows(c, a, b, lo*fMR, min(hi*fMR, m), k, n, bt)
		})
		return
	}
	fgemmRows(c, a, b, 0, m, k, n, bt)
}

// gemmSerial accumulates a·b into c without touching the parallel
// runtime — for call sites already running inside a parallel shard
// (per-image convolution lowering, backward passes).
func gemmSerial(c, a, b []float32, m, k, n int) {
	if packedWorth(m, k, n) {
		fgemmRows(c, a, b, 0, m, k, n, false)
		return
	}
	matmulRows(c, a, b, 0, m, k, n)
}
