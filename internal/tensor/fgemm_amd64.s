//go:build amd64

#include "textflag.h"

// func cpuHasFMA() bool
//
// FMA kernels need OSXSAVE+AVX+FMA3 (CPUID.1:ECX), OS-enabled YMM state
// (XGETBV), and AVX2 (CPUID.7.0:EBX bit 5) for the register broadcasts.
TEXT ·cpuHasFMA(SB), NOSPLIT, $0-1
	// CPUID.1: ECX bit 12 = FMA, bit 27 = OSXSAVE, bit 28 = AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<12 | 1<<27 | 1<<28), DX
	CMPL DX, $(1<<12 | 1<<27 | 1<<28)
	JNE  no

	// XGETBV(0): XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// CPUID.7.0: EBX bit 5 = AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func fgemmKernelAsm(pa, pb, c *float32, kc, ldc int)
//
// 4×16 FMA microkernel. pa is a packed A panel (kc steps × 4 rows,
// k-major), pb a packed B panel (kc steps × 16 cols, k-major). The 4×16
// accumulator lives in Y0–Y7 (two YMM per row); each k step loads one
// 16-wide B vector pair and broadcasts the four A values, issuing eight
// VFMADD231PS. The epilogue adds the accumulator into C (C += A·B).
TEXT ·fgemmKernelAsm(SB), NOSPLIT, $0-40
	MOVQ pa+0(FP), SI
	MOVQ pb+8(FP), DI
	MOVQ c+16(FP), DX
	MOVQ kc+24(FP), CX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8               // row stride in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loopk:
	VMOVUPS      (DI), Y8     // b[0:8]
	VMOVUPS      32(DI), Y9   // b[8:16]
	VBROADCASTSS (SI), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS  Y8, Y10, Y2
	VFMADD231PS  Y9, Y10, Y3
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS  Y8, Y10, Y6
	VFMADD231PS  Y9, Y10, Y7
	ADDQ         $16, SI
	ADDQ         $64, DI
	DECQ         CX
	JNZ          loopk

	// C += accumulator, row by row (row stride R8 bytes).
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS Y0, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y1, Y1
	VMOVUPS Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y2, Y2
	VMOVUPS Y2, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y3, Y3
	VMOVUPS Y3, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y4, Y4
	VMOVUPS Y4, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y5, Y5
	VMOVUPS Y5, 32(DX)
	ADDQ    R8, DX
	VMOVUPS (DX), Y8
	VADDPS  Y8, Y6, Y6
	VMOVUPS Y6, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS  Y9, Y7, Y7
	VMOVUPS Y7, 32(DX)

	VZEROUPPER
	RET

// func fdotAsm(a, b *float32, k int) float32
//
// Float32 dot product over k elements (k a multiple of 32, ≥ 32): four
// independent YMM accumulators break the FMA latency chain, then a
// horizontal reduction folds 8 lanes to one.
TEXT ·fdotAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ k+16(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	SHRQ   $5, CX             // 32-element blocks

loop32:
	VMOVUPS     (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	VMOVUPS     32(SI), Y5
	VFMADD231PS 32(DI), Y5, Y1
	VMOVUPS     64(SI), Y6
	VFMADD231PS 64(DI), Y6, Y2
	VMOVUPS     96(SI), Y7
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        CX
	JNZ         loop32

	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func fconv3x3Asm8(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32)
//
// Eight complete 3×3 outputs from a padded image: the accumulator
// starts at the broadcast bias and folds all inC channels × 9 taps in
// one call (each tap: one weight broadcast + one FMA with a memory
// operand). Taps walk three image rows per channel (stride rowStride
// floats), channels advance by chanStride floats and 9 weights.
TEXT ·fconv3x3Asm8(SB), NOSPLIT, $0-52
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         inC+16(FP), CX
	MOVQ         chanStride+24(FP), R8
	SHLQ         $2, R8
	MOVQ         rowStride+32(FP), R9
	SHLQ         $2, R9
	MOVQ         w+40(FP), DX
	VBROADCASTSS bias+48(FP), Y0

chan8:
	MOVQ SI, AX               // kernel-row pointer within this channel

	VBROADCASTSS (DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VBROADCASTSS 4(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VBROADCASTSS 8(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0
	ADDQ         R9, AX

	VBROADCASTSS 12(DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VBROADCASTSS 16(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VBROADCASTSS 20(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0
	ADDQ         R9, AX

	VBROADCASTSS 24(DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VBROADCASTSS 28(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VBROADCASTSS 32(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0

	ADDQ R8, SI
	ADDQ $36, DX
	DECQ CX
	JNZ  chan8

	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func fconv3x3Asm16(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32)
//
// Sixteen-output variant: two YMM accumulators share each weight
// broadcast, so the load ports see 3 loads per 2 taps instead of 2 per
// tap.
TEXT ·fconv3x3Asm16(SB), NOSPLIT, $0-52
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         inC+16(FP), CX
	MOVQ         chanStride+24(FP), R8
	SHLQ         $2, R8
	MOVQ         rowStride+32(FP), R9
	SHLQ         $2, R9
	MOVQ         w+40(FP), DX
	VBROADCASTSS bias+48(FP), Y0
	VMOVAPS      Y0, Y1

chan16:
	MOVQ SI, AX               // kernel-row pointer within this channel

	VBROADCASTSS (DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VFMADD231PS  32(AX), Y10, Y1
	VBROADCASTSS 4(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VFMADD231PS  36(AX), Y10, Y1
	VBROADCASTSS 8(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0
	VFMADD231PS  40(AX), Y10, Y1
	ADDQ         R9, AX

	VBROADCASTSS 12(DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VFMADD231PS  32(AX), Y10, Y1
	VBROADCASTSS 16(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VFMADD231PS  36(AX), Y10, Y1
	VBROADCASTSS 20(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0
	VFMADD231PS  40(AX), Y10, Y1
	ADDQ         R9, AX

	VBROADCASTSS 24(DX), Y10
	VFMADD231PS  (AX), Y10, Y0
	VFMADD231PS  32(AX), Y10, Y1
	VBROADCASTSS 28(DX), Y10
	VFMADD231PS  4(AX), Y10, Y0
	VFMADD231PS  36(AX), Y10, Y1
	VBROADCASTSS 32(DX), Y10
	VFMADD231PS  8(AX), Y10, Y0
	VFMADD231PS  40(AX), Y10, Y1

	ADDQ R8, SI
	ADDQ $36, DX
	DECQ CX
	JNZ  chan16

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET
