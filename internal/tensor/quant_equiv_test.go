package tensor

import (
	"math/rand"
	"testing"
)

// naiveQMatMul is the reference quantized product: plain triple loop,
// int32 accumulation, one scale multiply. QMatMul must match it exactly —
// integer arithmetic leaves no rounding latitude.
func naiveQMatMul(a, b *QTensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	c := New(m, n)
	scale := a.Scale * b.Scale
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a.Data[i*k+p]) * int32(b.Data[p*n+j])
			}
			c.data[i*n+j] = float32(acc) * scale
		}
	}
	return c
}

func TestQMatMulMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 31, 17}, {64, 100, 33}} {
		m, k, n := dims[0], dims[1], dims[2]
		x, y := New(m, k), New(k, n)
		x.Rand(rng, 2)
		y.Rand(rng, 2)
		qx, qy := Quantize(x), Quantize(y)
		got, err := QMatMul(qx, qy)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveQMatMul(qx, qy)
		for i := range want.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("%dx%dx%d: element %d = %v, want %v (int kernels must agree exactly)",
					m, k, n, i, got.data[i], want.data[i])
			}
		}
	}
}

// The quantized kernel must track the float path to within quantization
// error: each int8 value is off by at most half a step (scale/2), so a
// k-term dot product of values bounded by each operand's AbsMax deviates
// by O(k · scale · |operand|).
func TestQMatMulMatchesFloatPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const m, k, n = 16, 64, 12
	x, y := New(m, k), New(k, n)
	x.Rand(rng, 1.5)
	y.Rand(rng, 0.8)
	qx, qy := Quantize(x), Quantize(y)
	got, err := QMatMul(qx, qy)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Error budget: each product term carries quantization noise of about
	// scaleX·|y| + scaleY·|x|; sum over k terms with headroom 2.
	tol := float32(k) * (qx.Scale*y.AbsMax() + qy.Scale*x.AbsMax()) * 2
	for i := range want.data {
		d := got.data[i] - want.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("element %d: quantized %v vs float %v (|diff| %v > tol %v)",
				i, got.data[i], want.data[i], d, tol)
		}
	}
}
