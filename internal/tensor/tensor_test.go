package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"scalar", nil, 1},
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"batch image", []int{2, 3, 8, 8}, 384},
		{"zero dim", []int{0, 7}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Len(); got != tt.want {
				t.Errorf("Len() = %d, want %d", got, tt.want)
			}
			if got := x.Dims(); got != len(tt.shape) {
				t.Errorf("Dims() = %d, want %d", got, len(tt.shape))
			}
		})
	}
}

func TestNewFromErrors(t *testing.T) {
	if _, err := NewFrom([]float32{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Errorf("NewFrom mismatched length: err = %v, want ErrShape", err)
	}
	if _, err := NewFrom([]float32{1}, -1); !errors.Is(err, ErrShape) {
		t.Errorf("NewFrom negative dim: err = %v, want ErrShape", err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At(1,2,3) = %v, want 42", got)
	}
	// Row-major layout: offset of (1,2,3) in (2,3,4) is 1*12+2*4+3 = 23.
	if got := x.Data()[23]; got != 42 {
		t.Fatalf("flat offset = %v, want 42 at index 23", got)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := MustFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.MustReshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share backing data")
	}
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Errorf("Reshape to wrong size: err = %v, want ErrShape", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := MustFrom([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFrom([]float32{1, 2, 3}, 3)
	b := MustFrom([]float32{4, 5, 6}, 3)
	dst := New(3)
	if err := Add(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, MustFrom([]float32{5, 7, 9}, 3), 0) {
		t.Errorf("Add = %v", dst)
	}
	if err := Sub(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, MustFrom([]float32{-3, -3, -3}, 3), 0) {
		t.Errorf("Sub = %v", dst)
	}
	if err := Mul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, MustFrom([]float32{4, 10, 18}, 3), 0) {
		t.Errorf("Mul = %v", dst)
	}
	if err := Add(dst, a, New(2)); !errors.Is(err, ErrShape) {
		t.Errorf("Add shape mismatch: err = %v, want ErrShape", err)
	}
}

func TestScaleApplySum(t *testing.T) {
	x := MustFrom([]float32{1, -2, 3}, 3)
	x.Scale(2)
	if got := x.Sum(); got != 4 {
		t.Errorf("Sum after Scale = %v, want 4", got)
	}
	x.Apply(func(v float32) float32 { return v * v })
	if got := x.Sum(); got != 4+16+36 {
		t.Errorf("Sum after square = %v, want 56", got)
	}
}

func TestMaxAbsMax(t *testing.T) {
	x := MustFrom([]float32{-7, 3, 5, -1}, 4)
	v, i := x.Max()
	if v != 5 || i != 2 {
		t.Errorf("Max = (%v, %d), want (5, 2)", v, i)
	}
	if got := x.AbsMax(); got != 7 {
		t.Errorf("AbsMax = %v, want 7", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFrom([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFrom([]float32{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want, 1e-5) {
		t.Errorf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulErrors(t *testing.T) {
	a := New(2, 3)
	if _, err := MatMul(a, New(4, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("inner dim mismatch: err = %v, want ErrShape", err)
	}
	if _, err := MatMul(a, New(3)); !errors.Is(err, ErrShape) {
		t.Errorf("1-D operand: err = %v, want ErrShape", err)
	}
}

func TestMatVec(t *testing.T) {
	a := MustFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := MustFrom([]float32{1, 0, -1}, 3)
	y, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(y, MustFrom([]float32{-2, -2}, 2), 1e-6) {
		t.Errorf("MatVec = %v", y)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 7)
	a.Rand(rng, 1)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	att, err := Transpose(at)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, att, 0) {
		t.Fatal("Transpose(Transpose(A)) != A")
	}
}

func TestAddBiasRowsAndSumRows(t *testing.T) {
	a := MustFrom([]float32{1, 2, 3, 4}, 2, 2)
	bias := MustFrom([]float32{10, 20}, 2)
	if err := AddBiasRows(a, bias); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, MustFrom([]float32{11, 22, 13, 24}, 2, 2), 0) {
		t.Errorf("AddBiasRows = %v", a)
	}
	s, err := SumRows(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s, MustFrom([]float32{24, 46}, 2), 0) {
		t.Errorf("SumRows = %v", s)
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := New(m, k), New(k, n), New(n, p)
		a.Rand(r, 1)
		b.Rand(r, 1)
		c.Rand(r, 1)
		ab, _ := MatMul(a, b)
		abc1, _ := MatMul(ab, c)
		bc, _ := MatMul(b, c)
		abc2, _ := MatMul(a, bc)
		return Equal(abc1, abc2, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over Add.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b1, b2 := New(m, k), New(k, n), New(k, n)
		a.Rand(r, 1)
		b1.Rand(r, 1)
		b2.Rand(r, 1)
		sum := New(k, n)
		if err := Add(sum, b1, b2); err != nil {
			return false
		}
		lhs, _ := MatMul(a, sum)
		p1, _ := MatMul(a, b1)
		p2, _ := MatMul(a, b2)
		rhs := New(m, n)
		if err := Add(rhs, p1, p2); err != nil {
			return false
		}
		return Equal(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1×1 identity kernel with one channel must reproduce the input.
	s := Conv2DSpec{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0}
	x := New(1, 1, 4, 4)
	rng := rand.New(rand.NewSource(3))
	x.Rand(rng, 1)
	w := MustFrom([]float32{1}, 1, 1, 1, 1)
	out, err := Conv2D(x, w, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, x, 1e-6) {
		t.Fatal("1x1 identity conv must reproduce input")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3×3 input, 2×2 kernel of ones, stride 1, no pad → 2×2 output of window sums.
	s := Conv2DSpec{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1, Pad: 0}
	x := MustFrom([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := MustFrom([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	bias := MustFrom([]float32{1}, 1)
	out, err := Conv2D(x, w, bias, s)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFrom([]float32{13, 17, 25, 29}, 1, 1, 2, 2)
	if !Equal(out, want, 1e-6) {
		t.Errorf("Conv2D = %v, want %v", out, want)
	}
}

func TestConv2DPadding(t *testing.T) {
	// With pad 1 and 3×3 kernel the output keeps the input size.
	s := Conv2DSpec{InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if s.OutH() != 5 || s.OutW() != 5 {
		t.Fatalf("same-padding output = %dx%d, want 5x5", s.OutH(), s.OutW())
	}
	x := New(2, 2, 5, 5)
	w := New(3, 2, 3, 3)
	rng := rand.New(rand.NewSource(11))
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	out, err := Conv2D(x, w, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	wantShape := []int{2, 3, 5, 5}
	got := out.Shape()
	for i := range wantShape {
		if got[i] != wantShape[i] {
			t.Fatalf("Conv2D shape = %v, want %v", got, wantShape)
		}
	}
}

func TestConv2DSpecValidate(t *testing.T) {
	bad := []Conv2DSpec{
		{InC: 0, InH: 1, InW: 1, OutC: 1, KH: 1, KW: 1, Stride: 1},
		{InC: 1, InH: 1, InW: 1, OutC: 1, KH: 1, KW: 1, Stride: 0},
		{InC: 1, InH: 1, InW: 1, OutC: 1, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 2, KW: 2, Stride: 1, Pad: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v): Validate() = nil, want error", i, s)
		}
		// The kernels must surface the same errors, not panic computing
		// output dims (a zero stride divides by zero if checked late).
		x := New(1, 2, 4, 4)
		if _, err := Conv2D(x, New(1), nil, s); err == nil {
			t.Errorf("spec %d: Conv2D accepted invalid spec", i)
		}
		if _, err := DepthwiseConv2D(x, New(1), nil, s); err == nil {
			t.Errorf("spec %d: DepthwiseConv2D accepted invalid spec", i)
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// Col2Im(Im2Col(x)) with a 1×1 kernel and stride 1 must equal x.
	s := Conv2DSpec{InC: 2, InH: 3, InW: 3, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0}
	x := make([]float32, 2*3*3)
	for i := range x {
		x[i] = float32(i)
	}
	cols := make([]float32, s.InC*s.KH*s.KW*s.OutH()*s.OutW())
	Im2Col(x, s, cols)
	back := make([]float32, len(x))
	Col2Im(cols, s, back)
	for i := range x {
		if x[i] != back[i] {
			t.Fatalf("Col2Im∘Im2Col identity failed at %d: %v vs %v", i, x[i], back[i])
		}
	}
}

func TestDepthwiseConvMatchesFullConvForOneChannel(t *testing.T) {
	// With one channel, depthwise conv equals regular conv.
	s := Conv2DSpec{InC: 1, InH: 6, InW: 6, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(5))
	x := New(2, 1, 6, 6)
	x.Rand(rng, 1)
	w := New(1, 1, 3, 3)
	w.Rand(rng, 1)
	full, err := Conv2D(x, w, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	dwW := w.MustReshape(1, 3, 3)
	dw, err := DepthwiseConv2D(x, dwW, nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(full, dw, 1e-5) {
		t.Fatal("depthwise conv must equal full conv for a single channel")
	}
}

func TestMaxPool2D(t *testing.T) {
	p := PoolSpec{C: 1, H: 4, W: 4, K: 2, Stride: 2}
	x := MustFrom([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg, err := MaxPool2D(x, p)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFrom([]float32{6, 8, 14, 16}, 1, 1, 2, 2)
	if !Equal(out, want, 0) {
		t.Errorf("MaxPool2D = %v, want %v", out, want)
	}
	wantArg := []int{5, 7, 13, 15}
	for i := range wantArg {
		if arg[i] != wantArg[i] {
			t.Errorf("argmax[%d] = %d, want %d", i, arg[i], wantArg[i])
		}
	}
}

func TestAvgPoolAndGlobalAvgPool(t *testing.T) {
	p := PoolSpec{C: 1, H: 2, W: 2, K: 2, Stride: 2}
	x := MustFrom([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out, err := AvgPool2D(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 2.5 {
		t.Errorf("AvgPool2D = %v, want 2.5", out.At(0, 0, 0, 0))
	}
	g, err := GlobalAvgPool2D(x)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 2.5 {
		t.Errorf("GlobalAvgPool2D = %v, want 2.5", g.At(0, 0))
	}
}

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := New(100)
	x.Rand(rng, 3)
	q := Quantize(x)
	d := q.Dequantize()
	// Max round-trip error is half a quantization step.
	maxErr := q.Scale / 2 * 1.0001
	for i := range x.Data() {
		diff := float64(x.Data()[i] - d.Data()[i])
		if math.Abs(diff) > float64(maxErr) {
			t.Fatalf("round-trip error %v exceeds half-step %v", diff, maxErr)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	q := Quantize(New(4))
	d := q.Dequantize()
	if d.Sum() != 0 {
		t.Fatal("quantized zero tensor must dequantize to zero")
	}
}

// Property: quantized matmul approximates float matmul within a few steps.
func TestQMatMulApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(8), 1+r.Intn(5)
		a, b := New(m, k), New(k, n)
		a.Rand(r, 1)
		b.Rand(r, 1)
		exact, _ := MatMul(a, b)
		qc, err := QMatMul(Quantize(a), Quantize(b))
		if err != nil {
			return false
		}
		// Error bound: k accumulated products, each within ~2 quantization
		// steps of ~(1/127)² relative error on unit-scale data.
		tol := float32(k) * 0.05
		return Equal(exact, qc, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTruncatedSVDExactForLowRank(t *testing.T) {
	// Build an exactly rank-2 matrix and verify near-zero reconstruction error.
	rng := rand.New(rand.NewSource(21))
	u := New(8, 2)
	v := New(2, 6)
	u.Randn(rng, 1)
	v.Randn(rng, 1)
	a, err := MatMul(u, v)
	if err != nil {
		t.Fatal(err)
	}
	u2, v2, err := TruncatedSVD(a, 2, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	relErr, err := ReconstructionError(a, u2, v2)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 1e-3 {
		t.Errorf("rank-2 SVD of rank-2 matrix: rel err = %v, want ~0", relErr)
	}
}

func TestTruncatedSVDErrorDecreasesWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := New(12, 10)
	a.Randn(rng, 1)
	prev := math.Inf(1)
	for _, rank := range []int{1, 3, 6, 10} {
		u, v, err := TruncatedSVD(a, rank, 25, rng)
		if err != nil {
			t.Fatal(err)
		}
		relErr, err := ReconstructionError(a, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if relErr > prev+1e-3 {
			t.Errorf("rank %d: rel err %v did not decrease from %v", rank, relErr, prev)
		}
		prev = relErr
	}
	if prev > 1e-2 {
		t.Errorf("full-rank SVD rel err = %v, want ~0", prev)
	}
}

func TestTruncatedSVDBadRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	if _, _, err := TruncatedSVD(a, 0, 10, rng); !errors.Is(err, ErrShape) {
		t.Errorf("rank 0: err = %v, want ErrShape", err)
	}
	if _, _, err := TruncatedSVD(a, 5, 10, rng); !errors.Is(err, ErrShape) {
		t.Errorf("rank > dims: err = %v, want ErrShape", err)
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := New(64, 64)
	w.GlorotInit(rng, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128.0))
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
	if w.AbsMax() == 0 {
		t.Fatal("Glorot init produced all zeros")
	}
}

func TestMatMulIntoAndSubErrors(t *testing.T) {
	a := MustFrom([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFrom([]float32{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, want, 1e-6) {
		t.Errorf("MatMulInto = %v, want %v", dst, want)
	}
	// Reuse must reset dst, not accumulate.
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, want, 1e-6) {
		t.Error("MatMulInto accumulated across calls")
	}
	if err := MatMulInto(New(3, 3), a, b); !errors.Is(err, ErrShape) {
		t.Errorf("wrong dst: err = %v", err)
	}
	if err := MatMulInto(dst, New(2), b); !errors.Is(err, ErrShape) {
		t.Errorf("1-D operand: err = %v", err)
	}
}

func TestAddScaledErrors(t *testing.T) {
	a := New(3)
	if err := a.AddScaled(New(4), 1); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
	b := MustFrom([]float32{1, 2, 3}, 3)
	if err := a.AddScaled(b, 2); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, MustFrom([]float32{2, 4, 6}, 3), 0) {
		t.Errorf("AddScaled = %v", a)
	}
}

func TestSumRowsAndMatVecErrors(t *testing.T) {
	if _, err := SumRows(New(3)); !errors.Is(err, ErrShape) {
		t.Errorf("SumRows 1-D: err = %v", err)
	}
	if _, err := MatVec(New(2, 3), New(4)); !errors.Is(err, ErrShape) {
		t.Errorf("MatVec inner mismatch: err = %v", err)
	}
	if _, err := Transpose(New(2)); !errors.Is(err, ErrShape) {
		t.Errorf("Transpose 1-D: err = %v", err)
	}
}

func TestL2NormAndString(t *testing.T) {
	x := MustFrom([]float32{3, 4}, 2)
	if got := x.L2Norm(); got != 5 {
		t.Errorf("L2Norm = %v, want 5", got)
	}
	if s := x.String(); s == "" {
		t.Error("empty String for small tensor")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Error("empty String for large tensor")
	}
}
