//go:build amd64

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// On amd64 the assembly gates are variables, so the suite can flip them
// in-process and prove the pure-Go fallbacks agree with the vector
// kernels on the same machine — the same property the CI leg with
// OPENEI_FORCE_SCALAR=1 checks across the whole module.

func withScalarKernels(t *testing.T, f func()) {
	t.Helper()
	fma, avx2 := useFMA, useAVX2
	useFMA, useAVX2 = false, false
	defer func() { useFMA, useAVX2 = fma, avx2 }()
	f()
}

func TestScalarFallbackGemmParity(t *testing.T) {
	if !cpuHasFMA() {
		t.Skip("no FMA hardware; nothing to compare against")
	}
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 12; trial++ {
		m, k, n := 1+rng.Intn(60), 1+rng.Intn(200), 1+rng.Intn(60)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		vec := make([]float32, m*n)
		fgemmRows(vec, a, b, 0, m, k, n, false)
		scalar := make([]float32, m*n)
		withScalarKernels(t, func() {
			fgemmRows(scalar, a, b, 0, m, k, n, false)
		})
		// FMA keeps the infinitely-precise product before each add, so
		// the two paths differ only by rounding — never by structure.
		for i := range vec {
			if d := math.Abs(float64(vec[i]) - float64(scalar[i])); d > 1e-4*float64(k+1) {
				t.Fatalf("element %d: asm %v vs go %v", i, vec[i], scalar[i])
			}
		}
	}
}

func TestScalarFallbackDotParity(t *testing.T) {
	if !cpuHasFMA() {
		t.Skip("no FMA hardware; nothing to compare against")
	}
	rng := rand.New(rand.NewSource(302))
	for _, n := range []int{32, 33, 64, 100, 257} {
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		vec := dot(a, b)
		var scalar float32
		withScalarKernels(t, func() { scalar = dot(a, b) })
		if d := math.Abs(float64(vec) - float64(scalar)); d > 1e-4*float64(n+1) {
			t.Fatalf("dot(%d): asm %v vs go %v", n, vec, scalar)
		}
	}
}

// TestFconv3x3AsmParity checks the 8- and 16-output stencil microkernels
// against the Go row kernel on a padded image: same complete-sum layout,
// same tap order, so they may differ only by FMA rounding.
func TestFconv3x3AsmParity(t *testing.T) {
	if !cpuHasFMA() {
		t.Skip("no FMA hardware; nothing to compare against")
	}
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 8; trial++ {
		inC := 1 + rng.Intn(8)
		pW := 18 + rng.Intn(10)
		chanStride := pW * (4 + rng.Intn(4))
		src := randSlice(rng, inC*chanStride)
		ker := randSlice(rng, inC*9)
		bias := rng.Float32()

		want := make([]float32, 16)
		for i := range want {
			want[i] = bias
		}
		convDirect3x3RowGo(want, src, ker, inC, chanStride, pW)

		got8 := make([]float32, 16)
		fconv3x3Asm8(&got8[0], &src[0], inC, chanStride, pW, &ker[0], bias)
		fconv3x3Asm8(&got8[8], &src[8], inC, chanStride, pW, &ker[0], bias)
		got16 := make([]float32, 16)
		fconv3x3Asm16(&got16[0], &src[0], inC, chanStride, pW, &ker[0], bias)

		tol := 1e-4 * float64(inC*9+1)
		for i := range want {
			if d := math.Abs(float64(got8[i]) - float64(want[i])); d > tol {
				t.Fatalf("fconv3x3Asm8 element %d: asm %v vs go %v", i, got8[i], want[i])
			}
			if d := math.Abs(float64(got16[i]) - float64(want[i])); d > tol {
				t.Fatalf("fconv3x3Asm16 element %d: asm %v vs go %v", i, got16[i], want[i])
			}
		}
	}
}

// TestScalarFallbackQDotParity: the integer kernels must agree bitwise —
// int32 accumulation has no rounding, so any difference is a bug.
func TestScalarFallbackQDotParity(t *testing.T) {
	if !cpuHasAVX2() {
		t.Skip("no AVX2 hardware; nothing to compare against")
	}
	rng := rand.New(rand.NewSource(304))
	for _, n := range []int{32, 64, 96, 131, 257} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		vec := QDot(a, b)
		var scalar int32
		withScalarKernels(t, func() { scalar = QDot(a, b) })
		if vec != scalar {
			t.Fatalf("QDot(%d): asm %d vs go %d", n, vec, scalar)
		}
	}
}
