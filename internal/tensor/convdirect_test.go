package tensor

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"openei/internal/parallel"
)

// refConv is the naive float64 convolution oracle.
func refConv(x, w, bias []float32, s Conv2DSpec, batch int) []float32 {
	outH, outW := s.OutH(), s.OutW()
	out := make([]float32, batch*s.OutC*outH*outW)
	imgLen := s.InC * s.InH * s.InW
	p := 0
	for b := 0; b < batch; b++ {
		img := x[b*imgLen : (b+1)*imgLen]
		for oc := 0; oc < s.OutC; oc++ {
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var acc float64
					if bias != nil {
						acc = float64(bias[oc])
					}
					for ic := 0; ic < s.InC; ic++ {
						for kh := 0; kh < s.KH; kh++ {
							ih := oh*s.Stride - s.Pad + kh
							if ih < 0 || ih >= s.InH {
								continue
							}
							for kw := 0; kw < s.KW; kw++ {
								iw := ow*s.Stride - s.Pad + kw
								if iw < 0 || iw >= s.InW {
									continue
								}
								acc += float64(w[((oc*s.InC+ic)*s.KH+kh)*s.KW+kw]) *
									float64(img[(ic*s.InH+ih)*s.InW+iw])
							}
						}
					}
					out[p] = float32(acc)
					p++
				}
			}
		}
	}
	return out
}

// TestDirectConvMatchesReference covers the 3×3/stride-1 direct kernel
// (and the 1×1 identity lowering) against the float64 oracle across
// random shapes — padded and unpadded, edge-heavy small images and
// interior-heavy wide ones, batches 1 and >1.
func TestDirectConvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 20; trial++ {
		s := Conv2DSpec{
			InC: 1 + rng.Intn(4), InH: 10 + rng.Intn(14), InW: 10 + rng.Intn(14),
			OutC: 1 + rng.Intn(8), KH: 3, KW: 3, Stride: 1, Pad: rng.Intn(3),
		}
		if trial%4 == 0 {
			s.KH, s.KW, s.Pad = 1, 1, 0 // exercise the identity lowering
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		batch := 1 + rng.Intn(3)
		x := New(batch, s.InC, s.InH, s.InW)
		w := New(s.OutC, s.InC, s.KH, s.KW)
		bias := New(s.OutC)
		x.Rand(rng, 1)
		w.Rand(rng, 1)
		bias.Rand(rng, 1)
		out, err := Conv2D(x, w, bias, s)
		if err != nil {
			t.Fatal(err)
		}
		want := refConv(x.data, w.data, bias.data, s, batch)
		k := s.InC * s.KH * s.KW
		requireClose(t, "Conv2D direct", out.data, want, k)
	}
}

// TestQConvDirectBitwise pins the integer claim: the direct int8 stencil
// and the im2col+QGemmRowT lowering produce bit-identical outputs (both
// equal the naive int32 reference), so dispatching between them can
// never change a prediction.
func TestQConvDirectBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 12; trial++ {
		s := Conv2DSpec{
			InC: 1 + rng.Intn(3), InH: 10 + rng.Intn(8), InW: 10 + rng.Intn(8),
			OutC: 1 + rng.Intn(6), KH: 3, KW: 3, Stride: 1, Pad: rng.Intn(2),
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		x := New(1, s.InC, s.InH, s.InW)
		w := New(s.OutC, s.InC, 3, 3)
		bias := New(s.OutC)
		x.Rand(rng, 1)
		w.Rand(rng, 1)
		bias.Rand(rng, 1)
		qw := Quantize(w.MustReshape(s.OutC, s.InC*9))
		xScale := x.AbsMax() / 127
		relu := trial%2 == 0

		// Whatever path QConv2DInto dispatched on this machine…
		got := New(1, s.OutC, s.OutH(), s.OutW())
		if err := QConv2DInto(got, x, qw, bias, s, xScale, relu); err != nil {
			t.Fatal(err)
		}
		// …must match the direct kernel invoked explicitly…
		imgLen := s.InC * s.InH * s.InW
		qimg := make([]int8, imgLen)
		QuantizeCalibratedInto(qimg, x.data, xScale)
		direct := make([]float32, got.Len())
		acc := make([]int32, s.OutH()*s.OutW())
		scales := make([]float32, s.OutC)
		for i := range scales {
			scales[i] = xScale * qw.Scale
		}
		qconvDirect3x3(direct, nil, qimg, qw.Data, bias.data, s, scales, 0, relu, acc, 0, s.OutC)
		for i := range direct {
			if direct[i] != got.data[i] {
				t.Fatalf("element %d: direct %v vs dispatched %v — int8 paths must be bitwise identical",
					i, direct[i], got.data[i])
			}
		}
	}
}

// TestIm2ColTMatchesTranspose: the fused transposed lowering must equal
// materialize-then-transpose bit for bit.
func TestIm2ColTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 10; trial++ {
		s := Conv2DSpec{
			InC: 1 + rng.Intn(4), InH: 4 + rng.Intn(12), InW: 4 + rng.Intn(12),
			OutC: 1, KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		if s.Validate() != nil {
			continue
		}
		x := New(1, s.InC, s.InH, s.InW)
		x.Rand(rng, 1)
		colRows := s.InC * s.KH * s.KW
		colW := s.OutH() * s.OutW()
		cols := make([]float32, colRows*colW)
		colsT := make([]float32, colW*colRows)
		want := make([]float32, colW*colRows)
		Im2Col(x.data, s, cols)
		transposeInto(want, cols, colRows, colW)
		Im2ColT(x.data, s, colsT)
		for i := range want {
			if colsT[i] != want[i] {
				t.Fatalf("Im2ColT element %d: %v vs %v", i, colsT[i], want[i])
			}
		}
	}
}

// TestDirectConvFasterThanIm2Col is the directional acceptance
// assertion: on the alexnet-m middle layer shape (16→32 channels, 3×3
// stride 1 pad 1 on a 16×16 feature map after the first pool), the
// direct kernel must beat materializing the column matrix and running
// the GEMM. Runs in bench-smoke; skipped under -short and off AVX2.
func TestDirectConvFasterThanIm2Col(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	if !useFMA {
		t.Skip("no FMA hardware (or scalar override); directional claim is about the AVX2 path")
	}
	s := Conv2DSpec{InC: 16, InH: 16, InW: 16, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(404))
	x := New(1, s.InC, s.InH, s.InW)
	w := New(s.OutC, s.InC, 3, 3)
	bias := New(s.OutC)
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	bias.Rand(rng, 1)
	colRows := s.InC * 9
	colW := s.OutH() * s.OutW()
	cols := make([]float32, colRows*colW)
	pbuf := make([]float32, s.InC*(s.InH+2*s.Pad)*(s.InW+2*s.Pad))
	dst := make([]float32, s.OutC*colW)
	parallel.SetProcs(1)
	defer parallel.SetProcs(0)

	im2col := func() {
		Im2Col(x.data, s, cols)
		for i := range dst {
			dst[i] = 0
		}
		gemmSerial(dst, w.data, cols, s.OutC, colRows, colW)
		for oc := 0; oc < s.OutC; oc++ {
			bv := bias.data[oc]
			ch := dst[oc*colW : (oc+1)*colW]
			for i := range ch {
				ch[i] += bv
			}
		}
	}
	direct := func() {
		pimg := padImage3x3(pbuf, x.data, s)
		convDirect3x3(dst, pimg, w.data, bias.data, s, 0, s.OutC)
	}
	const reps = 50
	best := func(f func()) time.Duration {
		f() // warm
		b := time.Duration(math.MaxInt64)
		for r := 0; r < 7; r++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			if el := time.Since(start); el < b {
				b = el
			}
		}
		return b
	}
	tCols := best(im2col)
	tDirect := best(direct)
	t.Logf("alexnet-m layer (1×16×16×16 → 32): im2col+GEMM %v, direct %v (%.2fx)", tCols, tDirect, float64(tCols)/float64(tDirect))
	if tDirect >= tCols {
		t.Fatalf("direct conv %v not faster than im2col+GEMM %v", tDirect, tCols)
	}
}
