//go:build !amd64

package tensor

// Non-amd64 builds run the portable scalar kernels; the int8 backend
// still shrinks weights 4× but wins latency only where memory bandwidth
// dominates.
const useAVX2 = false

func qdotAsm(a, b *int8, k int) int32 { panic("tensor: qdotAsm without SIMD support") }

func qconv3x3Asm16(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32) {
	panic("tensor: qconv3x3Asm16 without SIMD support")
}

func qconv3x3Asm8(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32) {
	panic("tensor: qconv3x3Asm8 without SIMD support")
}
