package tensor

import (
	"fmt"
	"sync"

	"openei/internal/parallel"
)

// Conv2DSpec describes a 2-D convolution. Tensors are NCHW: input is
// (batch, inC, inH, inW); kernels are (outC, inC, kH, kW).
type Conv2DSpec struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	Stride        int
	Pad           int
}

// OutH returns the output height for the spec.
func (s Conv2DSpec) OutH() int { return (s.InH+2*s.Pad-s.KH)/s.Stride + 1 }

// OutW returns the output width for the spec.
func (s Conv2DSpec) OutW() int { return (s.InW+2*s.Pad-s.KW)/s.Stride + 1 }

// Validate checks that the spec is internally consistent.
func (s Conv2DSpec) Validate() error {
	switch {
	case s.InC <= 0 || s.InH <= 0 || s.InW <= 0:
		return fmt.Errorf("%w: conv spec input dims %d×%d×%d", ErrShape, s.InC, s.InH, s.InW)
	case s.OutC <= 0:
		return fmt.Errorf("%w: conv spec outC %d", ErrShape, s.OutC)
	case s.KH <= 0 || s.KW <= 0:
		return fmt.Errorf("%w: conv spec kernel %d×%d", ErrShape, s.KH, s.KW)
	case s.Stride <= 0:
		return fmt.Errorf("%w: conv spec stride %d", ErrShape, s.Stride)
	case s.Pad < 0:
		return fmt.Errorf("%w: conv spec pad %d", ErrShape, s.Pad)
	case s.OutH() <= 0 || s.OutW() <= 0:
		return fmt.Errorf("%w: conv spec produces empty output %d×%d", ErrShape, s.OutH(), s.OutW())
	}
	return nil
}

// Im2Col lowers the input image x (inC, inH, inW as a flat slice) into a
// column matrix of shape (inC*kH*kW, outH*outW) stored into cols. This turns
// convolution into a single matmul, the standard trick used by all of the
// "packages" the paper discusses.
func Im2Col(x []float32, s Conv2DSpec, cols []float32) {
	outH, outW := s.OutH(), s.OutW()
	colW := outH * outW
	idx := 0
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := cols[idx*colW : (idx+1)*colW]
				idx++
				p := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						for ow := 0; ow < outW; ow++ {
							row[p] = 0
							p++
						}
						continue
					}
					rowBase := chanBase + ih*s.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw < 0 || iw >= s.InW {
							row[p] = 0
						} else {
							row[p] = x[rowBase+iw]
						}
						p++
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters the column matrix back into
// an image, accumulating where patches overlap. Used for convolution
// backprop with respect to the input.
func Col2Im(cols []float32, s Conv2DSpec, x []float32) {
	outH, outW := s.OutH(), s.OutW()
	colW := outH * outW
	for i := range x {
		x[i] = 0
	}
	idx := 0
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := cols[idx*colW : (idx+1)*colW]
				idx++
				p := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						p += outW
						continue
					}
					rowBase := chanBase + ih*s.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw >= 0 && iw < s.InW {
							x[rowBase+iw] += row[p]
						}
						p++
					}
				}
			}
		}
	}
}

// Conv2D applies the convolution described by s to a batched input
// (batch, inC, inH, inW) with kernel w (outC, inC, kH, kW) and bias
// (outC), returning (batch, outC, outH, outW).
func Conv2D(x, w, bias *Tensor, s Conv2DSpec) (*Tensor, error) {
	// Validate before touching OutH/OutW: a zero stride would otherwise
	// panic on integer division instead of returning ErrShape.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: Conv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	out := New(x.shape[0], s.OutC, s.OutH(), s.OutW())
	if err := Conv2DInto(out, x, w, bias, s); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2DInto is Conv2D reusing dst's storage (dst need not be zeroed);
// dst must be (batch, outC, outH, outW).
func Conv2DInto(dst, x, w, bias *Tensor, s Conv2DSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return fmt.Errorf("%w: Conv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	if w.Len() != s.OutC*s.InC*s.KH*s.KW {
		return fmt.Errorf("%w: Conv2D kernel %v does not match spec %+v", ErrShape, w.shape, s)
	}
	if bias != nil && bias.Len() != s.OutC {
		return fmt.Errorf("%w: Conv2D bias %v, want %d", ErrShape, bias.shape, s.OutC)
	}
	batch := x.shape[0]
	if dst.Dims() != 4 || dst.shape[0] != batch || dst.shape[1] != s.OutC || dst.shape[2] != s.OutH() || dst.shape[3] != s.OutW() {
		return fmt.Errorf("%w: Conv2D output %v does not match spec %+v", ErrShape, dst.shape, s)
	}
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	conv2DForward(dst.data, x.data, w.data, biasData, s, batch)
	return nil
}

// conv2DForward is the shared convolution core (alloc-path Conv2D and the
// arena inference path both land here). Output memory need not be zeroed.
// Multi-image batches shard across the parallel runtime with per-shard
// im2col scratch; a single large image instead lets the inner GEMM shard
// its output-channel rows. Either way each image's arithmetic matches the
// serial kernel exactly, so results are bitwise pool-width-independent.
func conv2DForward(out, x, w, bias []float32, s Conv2DSpec, batch int) {
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	imgLen := s.InC * s.InH * s.InW
	outLen := s.OutC * colW
	perImage := s.OutC * colRows * colW // fused ops of one image's GEMM
	direct := directConv3x3OK(s)
	image := func(b int, cols []float32, gemmRowParallel bool) {
		dst := out[b*outLen : (b+1)*outLen]
		if direct {
			// Pad once per image into the im2col scratch (the padded copy
			// is far smaller than the 9× column matrix would be), then
			// every microkernel call is a full 9-tap interior stencil.
			pimg := padImage3x3(cols, x[b*imgLen:(b+1)*imgLen], s)
			if gemmRowParallel && s.OutC > 1 && parallel.Worth(perImage) {
				parallel.Do(s.OutC, parallel.GrainItems(colRows*colW), func(lo, hi int) {
					convDirect3x3(dst, pimg, w, bias, s, lo, hi)
				})
			} else {
				convDirect3x3(dst, pimg, w, bias, s, 0, s.OutC)
			}
			return
		}
		if conv1x1OK(s) {
			cols = x[b*imgLen : (b+1)*imgLen] // identity lowering
		} else {
			Im2Col(x[b*imgLen:(b+1)*imgLen], s, cols)
		}
		for i := range dst {
			dst[i] = 0
		}
		if gemmRowParallel {
			matmulInto(dst, w, cols, s.OutC, colRows, colW)
		} else {
			gemmSerial(dst, w, cols, s.OutC, colRows, colW)
		}
		if bias != nil {
			for oc := 0; oc < s.OutC; oc++ {
				bv := bias[oc]
				ch := dst[oc*colW : (oc+1)*colW]
				for i := range ch {
					ch[i] += bv
				}
			}
		}
	}
	if batch > 1 && parallel.Worth(batch*perImage) {
		parallel.Do(batch, parallel.GrainItems(perImage), func(lo, hi int) {
			cols := f32Scratch(colRows * colW)
			defer f32Release(cols)
			for b := lo; b < hi; b++ {
				image(b, *cols, false)
			}
		})
		return
	}
	cols := f32Scratch(colRows * colW)
	defer f32Release(cols)
	for b := 0; b < batch; b++ {
		image(b, *cols, true)
	}
}

// DepthwiseConv2D applies a depthwise convolution (the MobileNet building
// block): each input channel is convolved with its own kH×kW filter.
// x is (batch, C, H, W); w is (C, kH, kW); bias is (C) or nil.
func DepthwiseConv2D(x, w, bias *Tensor, s Conv2DSpec) (*Tensor, error) {
	// Validate before touching OutH/OutW (see Conv2D).
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: DepthwiseConv2D input %v vs spec %+v", ErrShape, x.shape, s)
	}
	out := New(x.shape[0], s.InC, s.OutH(), s.OutW())
	if err := DepthwiseConv2DInto(out, x, w, bias, s); err != nil {
		return nil, err
	}
	return out, nil
}

// DepthwiseConv2DInto is DepthwiseConv2D reusing dst's storage (dst need
// not be zeroed); dst must be (batch, C, outH, outW).
func DepthwiseConv2DInto(dst, x, w, bias *Tensor, s Conv2DSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.OutC != s.InC {
		return fmt.Errorf("%w: depthwise conv needs OutC==InC, got %d/%d", ErrShape, s.OutC, s.InC)
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return fmt.Errorf("%w: DepthwiseConv2D input %v vs spec %+v", ErrShape, x.shape, s)
	}
	if w.Len() != s.InC*s.KH*s.KW {
		return fmt.Errorf("%w: DepthwiseConv2D kernel %v vs spec %+v", ErrShape, w.shape, s)
	}
	batch := x.shape[0]
	outH, outW := s.OutH(), s.OutW()
	if dst.Dims() != 4 || dst.shape[0] != batch || dst.shape[1] != s.InC || dst.shape[2] != outH || dst.shape[3] != outW {
		return fmt.Errorf("%w: DepthwiseConv2D output %v vs spec %+v", ErrShape, dst.shape, s)
	}
	out := dst
	imgLen := s.InC * s.InH * s.InW
	outLen := s.InC * outH * outW
	// Each (image, channel) pair writes a disjoint output plane, so the
	// flat b*c index space shards freely across the pool.
	perPlane := outH * outW * s.KH * s.KW
	planes := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			b, c := idx/s.InC, idx%s.InC
			src := x.data[b*imgLen+c*s.InH*s.InW : b*imgLen+(c+1)*s.InH*s.InW]
			ker := w.data[c*s.KH*s.KW : (c+1)*s.KH*s.KW]
			dst := out.data[b*outLen+c*outH*outW : b*outLen+(c+1)*outH*outW]
			var bv float32
			if bias != nil {
				bv = bias.data[c]
			}
			p := 0
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s32 float32
					for kh := 0; kh < s.KH; kh++ {
						ih := oh*s.Stride - s.Pad + kh
						if ih < 0 || ih >= s.InH {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							iw := ow*s.Stride - s.Pad + kw
							if iw < 0 || iw >= s.InW {
								continue
							}
							s32 += src[ih*s.InW+iw] * ker[kh*s.KW+kw]
						}
					}
					dst[p] = s32 + bv
					p++
				}
			}
		}
	}
	n := batch * s.InC
	if n > 1 && parallel.Worth(n*perPlane) {
		parallel.Do(n, grainRows(perPlane), planes)
	} else {
		planes(0, n)
	}
	return nil
}

// Conv2DBackward computes the gradients of the convolution described by s
// for a whole batch: dx (input gradient, overwritten), dW (outC×inC·kH·kW,
// accumulated into) and dB (outC, accumulated into). x and grad are the
// forward input and output gradient as flat NCHW slices; wt is the
// transposed weight matrix (inC·kH·kW × outC), which the layer caches and
// refreshes with TransposeInto so no per-call transpose allocation occurs.
//
// Images shard across the parallel runtime. Each shard accumulates weight
// and bias gradients into pooled partial buffers merged under a lock, so
// dW/dB match the serial sums to rounding (addition order varies with the
// pool width); dx is written per image and is bitwise width-independent.
func Conv2DBackward(x, grad, wt, dx, dW, dB []float32, s Conv2DSpec, batch int) {
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	imgLen := s.InC * s.InH * s.InW
	gradLen := s.OutC * colW
	var mu sync.Mutex
	images := func(lo, hi int) {
		colsTP := f32Scratch(colW * colRows)
		dcolsP := f32Scratch(colRows * colW)
		dwP := f32Scratch(s.OutC * colRows)
		dbP := f32Scratch(s.OutC)
		defer f32Release(colsTP)
		defer f32Release(dcolsP)
		defer f32Release(dwP)
		defer f32Release(dbP)
		colsT, dcols, dw, db := *colsTP, *dcolsP, *dwP, *dbP
		for i := range dw {
			dw[i] = 0
		}
		for i := range db {
			db[i] = 0
		}
		for b := lo; b < hi; b++ {
			// Lower straight into patch-row layout: the dW GEMM's
			// right-hand side. The old path materialized the column
			// matrix and transposed it per image; Im2ColT writes the
			// transposed form once, through the same pooled scratch.
			Im2ColT(x[b*imgLen:(b+1)*imgLen], s, colsT)
			gb := grad[b*gradLen : (b+1)*gradLen]

			// dW += grad_b · colsᵀ (the packed driver accumulates, so the
			// whole shard's contribution lands in dw without an
			// intermediate).
			gemmSerial(dw, gb, colsT, s.OutC, colW, colRows)

			// dB += per-channel sums of grad_b.
			for oc := 0; oc < s.OutC; oc++ {
				var sum float32
				for _, v := range gb[oc*colW : (oc+1)*colW] {
					sum += v
				}
				db[oc] += sum
			}

			// dcols = Wᵀ · grad_b ; dx_b = col2im(dcols).
			for i := range dcols {
				dcols[i] = 0
			}
			gemmSerial(dcols, wt, gb, colRows, s.OutC, colW)
			Col2Im(dcols, s, dx[b*imgLen:(b+1)*imgLen])
		}
		mu.Lock()
		for i, v := range dw {
			dW[i] += v
		}
		for i, v := range db {
			dB[i] += v
		}
		mu.Unlock()
	}
	perImage := 4 * s.OutC * colRows * colW // two GEMMs per image
	if batch > 1 && parallel.Worth(batch*perImage) {
		parallel.Do(batch, parallel.GrainItems(perImage), images)
	} else {
		images(0, batch)
	}
}

// PoolSpec describes a pooling operation over NCHW input.
type PoolSpec struct {
	C, H, W int
	K       int // window size (square)
	Stride  int
}

// OutH returns the pooled output height.
func (p PoolSpec) OutH() int { return (p.H-p.K)/p.Stride + 1 }

// OutW returns the pooled output width.
func (p PoolSpec) OutW() int { return (p.W-p.K)/p.Stride + 1 }

// MaxPool2D applies max pooling and also returns the flat argmax indices
// (into each image) used for backprop routing.
func MaxPool2D(x *Tensor, p PoolSpec) (*Tensor, []int, error) {
	out := New(x.Dim(0), p.C, p.OutH(), p.OutW())
	arg := make([]int, out.Len())
	if err := MaxPool2DInto(out, x, p, arg); err != nil {
		return nil, nil, err
	}
	return out, arg, nil
}

// MaxPool2DInto pools x into dst, reusing dst's storage (dst need not be
// zeroed). arg, when non-nil, must have dst.Len() entries and receives the
// flat argmax indices; inference callers pass nil and skip that work.
func MaxPool2DInto(dst, x *Tensor, p PoolSpec, arg []int) error {
	if x.Dims() != 4 || x.shape[1] != p.C || x.shape[2] != p.H || x.shape[3] != p.W {
		return fmt.Errorf("%w: MaxPool2D input %v vs spec %+v", ErrShape, x.shape, p)
	}
	batch := x.shape[0]
	outH, outW := p.OutH(), p.OutW()
	if dst.Dims() != 4 || dst.shape[0] != batch || dst.shape[1] != p.C || dst.shape[2] != outH || dst.shape[3] != outW {
		return fmt.Errorf("%w: MaxPool2D output %v vs spec %+v", ErrShape, dst.shape, p)
	}
	if arg != nil && len(arg) != dst.Len() {
		return fmt.Errorf("%w: MaxPool2D arg length %d, want %d", ErrShape, len(arg), dst.Len())
	}
	imgLen := p.C * p.H * p.W
	planeLen := outH * outW
	planes := func(lo, hi int) {
		for plane := lo; plane < hi; plane++ {
			b, c := plane/p.C, plane%p.C
			ch := x.data[b*imgLen+c*p.H*p.W : b*imgLen+(c+1)*p.H*p.W]
			i := plane * planeLen
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					bestIdx := (oh*p.Stride)*p.W + ow*p.Stride
					best := ch[bestIdx]
					for kh := 0; kh < p.K; kh++ {
						for kw := 0; kw < p.K; kw++ {
							idx := (oh*p.Stride+kh)*p.W + ow*p.Stride + kw
							if ch[idx] > best {
								best, bestIdx = ch[idx], idx
							}
						}
					}
					dst.data[i] = best
					if arg != nil {
						arg[i] = b*imgLen + c*p.H*p.W + bestIdx
					}
					i++
				}
			}
		}
	}
	n := batch * p.C
	perPlane := planeLen * p.K * p.K
	if n > 1 && parallel.Worth(n*perPlane) {
		parallel.Do(n, grainRows(perPlane), planes)
	} else {
		planes(0, n)
	}
	return nil
}

// AvgPool2D applies average pooling (no argmax needed: gradient spreads
// uniformly).
func AvgPool2D(x *Tensor, p PoolSpec) (*Tensor, error) {
	if x.Dims() != 4 || x.shape[1] != p.C || x.shape[2] != p.H || x.shape[3] != p.W {
		return nil, fmt.Errorf("%w: AvgPool2D input %v vs spec %+v", ErrShape, x.shape, p)
	}
	batch := x.shape[0]
	outH, outW := p.OutH(), p.OutW()
	out := New(batch, p.C, outH, outW)
	imgLen := p.C * p.H * p.W
	planeLen := outH * outW
	inv := 1 / float32(p.K*p.K)
	planes := func(lo, hi int) {
		for plane := lo; plane < hi; plane++ {
			b, c := plane/p.C, plane%p.C
			ch := x.data[b*imgLen+c*p.H*p.W : b*imgLen+(c+1)*p.H*p.W]
			i := plane * planeLen
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s float32
					for kh := 0; kh < p.K; kh++ {
						for kw := 0; kw < p.K; kw++ {
							s += ch[(oh*p.Stride+kh)*p.W+ow*p.Stride+kw]
						}
					}
					out.data[i] = s * inv
					i++
				}
			}
		}
	}
	n := batch * p.C
	perPlane := planeLen * p.K * p.K
	if n > 1 && parallel.Worth(n*perPlane) {
		parallel.Do(n, grainRows(perPlane), planes)
	} else {
		planes(0, n)
	}
	return out, nil
}

// GlobalAvgPool2D reduces (batch, C, H, W) to (batch, C) by averaging each
// channel, as used before the classifier head in SqueezeNet/MobileNet.
func GlobalAvgPool2D(x *Tensor) (*Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: GlobalAvgPool2D needs 4-D input, got %v", ErrShape, x.shape)
	}
	out := New(x.shape[0], x.shape[1])
	if err := GlobalAvgPool2DInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// GlobalAvgPool2DInto reduces x (batch, C, H, W) into dst (batch, C),
// reusing dst's storage.
func GlobalAvgPool2DInto(dst, x *Tensor) error {
	if x.Dims() != 4 {
		return fmt.Errorf("%w: GlobalAvgPool2D needs 4-D input, got %v", ErrShape, x.shape)
	}
	batch, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if dst.Dims() != 2 || dst.shape[0] != batch || dst.shape[1] != c {
		return fmt.Errorf("%w: GlobalAvgPool2D output %v, want [%d %d]", ErrShape, dst.shape, batch, c)
	}
	plane := h * w
	inv := 1 / float32(plane)
	planes := func(lo, hi int) {
		for p := lo; p < hi; p++ {
			base := p * plane
			var s float32
			for i := 0; i < plane; i++ {
				s += x.data[base+i]
			}
			dst.data[p] = s * inv
		}
	}
	n := batch * c
	if n > 1 && parallel.Worth(n*plane) {
		parallel.Do(n, grainRows(plane), planes)
	} else {
		planes(0, n)
	}
	return nil
}
