package tensor

import "fmt"

// Conv2DSpec describes a 2-D convolution. Tensors are NCHW: input is
// (batch, inC, inH, inW); kernels are (outC, inC, kH, kW).
type Conv2DSpec struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	Stride        int
	Pad           int
}

// OutH returns the output height for the spec.
func (s Conv2DSpec) OutH() int { return (s.InH+2*s.Pad-s.KH)/s.Stride + 1 }

// OutW returns the output width for the spec.
func (s Conv2DSpec) OutW() int { return (s.InW+2*s.Pad-s.KW)/s.Stride + 1 }

// Validate checks that the spec is internally consistent.
func (s Conv2DSpec) Validate() error {
	switch {
	case s.InC <= 0 || s.InH <= 0 || s.InW <= 0:
		return fmt.Errorf("%w: conv spec input dims %d×%d×%d", ErrShape, s.InC, s.InH, s.InW)
	case s.OutC <= 0:
		return fmt.Errorf("%w: conv spec outC %d", ErrShape, s.OutC)
	case s.KH <= 0 || s.KW <= 0:
		return fmt.Errorf("%w: conv spec kernel %d×%d", ErrShape, s.KH, s.KW)
	case s.Stride <= 0:
		return fmt.Errorf("%w: conv spec stride %d", ErrShape, s.Stride)
	case s.Pad < 0:
		return fmt.Errorf("%w: conv spec pad %d", ErrShape, s.Pad)
	case s.OutH() <= 0 || s.OutW() <= 0:
		return fmt.Errorf("%w: conv spec produces empty output %d×%d", ErrShape, s.OutH(), s.OutW())
	}
	return nil
}

// Im2Col lowers the input image x (inC, inH, inW as a flat slice) into a
// column matrix of shape (inC*kH*kW, outH*outW) stored into cols. This turns
// convolution into a single matmul, the standard trick used by all of the
// "packages" the paper discusses.
func Im2Col(x []float32, s Conv2DSpec, cols []float32) {
	outH, outW := s.OutH(), s.OutW()
	colW := outH * outW
	idx := 0
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := cols[idx*colW : (idx+1)*colW]
				idx++
				p := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						for ow := 0; ow < outW; ow++ {
							row[p] = 0
							p++
						}
						continue
					}
					rowBase := chanBase + ih*s.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw < 0 || iw >= s.InW {
							row[p] = 0
						} else {
							row[p] = x[rowBase+iw]
						}
						p++
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters the column matrix back into
// an image, accumulating where patches overlap. Used for convolution
// backprop with respect to the input.
func Col2Im(cols []float32, s Conv2DSpec, x []float32) {
	outH, outW := s.OutH(), s.OutW()
	colW := outH * outW
	for i := range x {
		x[i] = 0
	}
	idx := 0
	for c := 0; c < s.InC; c++ {
		chanBase := c * s.InH * s.InW
		for kh := 0; kh < s.KH; kh++ {
			for kw := 0; kw < s.KW; kw++ {
				row := cols[idx*colW : (idx+1)*colW]
				idx++
				p := 0
				for oh := 0; oh < outH; oh++ {
					ih := oh*s.Stride - s.Pad + kh
					if ih < 0 || ih >= s.InH {
						p += outW
						continue
					}
					rowBase := chanBase + ih*s.InW
					for ow := 0; ow < outW; ow++ {
						iw := ow*s.Stride - s.Pad + kw
						if iw >= 0 && iw < s.InW {
							x[rowBase+iw] += row[p]
						}
						p++
					}
				}
			}
		}
	}
}

// Conv2D applies the convolution described by s to a batched input
// (batch, inC, inH, inW) with kernel w (outC, inC, kH, kW) and bias
// (outC), returning (batch, outC, outH, outW).
func Conv2D(x, w, bias *Tensor, s Conv2DSpec) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return nil, fmt.Errorf("%w: Conv2D input %v does not match spec %+v", ErrShape, x.shape, s)
	}
	if w.Len() != s.OutC*s.InC*s.KH*s.KW {
		return nil, fmt.Errorf("%w: Conv2D kernel %v does not match spec %+v", ErrShape, w.shape, s)
	}
	if bias != nil && bias.Len() != s.OutC {
		return nil, fmt.Errorf("%w: Conv2D bias %v, want %d", ErrShape, bias.shape, s.OutC)
	}
	batch := x.shape[0]
	outH, outW := s.OutH(), s.OutW()
	colRows := s.InC * s.KH * s.KW
	colW := outH * outW
	cols := make([]float32, colRows*colW)
	out := New(batch, s.OutC, outH, outW)
	imgLen := s.InC * s.InH * s.InW
	outLen := s.OutC * colW
	for b := 0; b < batch; b++ {
		Im2Col(x.data[b*imgLen:(b+1)*imgLen], s, cols)
		dst := out.data[b*outLen : (b+1)*outLen]
		matmulInto(dst, w.data, cols, s.OutC, colRows, colW)
		if bias != nil {
			for oc := 0; oc < s.OutC; oc++ {
				bv := bias.data[oc]
				ch := dst[oc*colW : (oc+1)*colW]
				for i := range ch {
					ch[i] += bv
				}
			}
		}
	}
	return out, nil
}

// DepthwiseConv2D applies a depthwise convolution (the MobileNet building
// block): each input channel is convolved with its own kH×kW filter.
// x is (batch, C, H, W); w is (C, kH, kW); bias is (C) or nil.
func DepthwiseConv2D(x, w, bias *Tensor, s Conv2DSpec) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.OutC != s.InC {
		return nil, fmt.Errorf("%w: depthwise conv needs OutC==InC, got %d/%d", ErrShape, s.OutC, s.InC)
	}
	if x.Dims() != 4 || x.shape[1] != s.InC || x.shape[2] != s.InH || x.shape[3] != s.InW {
		return nil, fmt.Errorf("%w: DepthwiseConv2D input %v vs spec %+v", ErrShape, x.shape, s)
	}
	if w.Len() != s.InC*s.KH*s.KW {
		return nil, fmt.Errorf("%w: DepthwiseConv2D kernel %v vs spec %+v", ErrShape, w.shape, s)
	}
	batch := x.shape[0]
	outH, outW := s.OutH(), s.OutW()
	out := New(batch, s.InC, outH, outW)
	imgLen := s.InC * s.InH * s.InW
	outLen := s.InC * outH * outW
	for b := 0; b < batch; b++ {
		for c := 0; c < s.InC; c++ {
			src := x.data[b*imgLen+c*s.InH*s.InW : b*imgLen+(c+1)*s.InH*s.InW]
			ker := w.data[c*s.KH*s.KW : (c+1)*s.KH*s.KW]
			dst := out.data[b*outLen+c*outH*outW : b*outLen+(c+1)*outH*outW]
			var bv float32
			if bias != nil {
				bv = bias.data[c]
			}
			p := 0
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s32 float32
					for kh := 0; kh < s.KH; kh++ {
						ih := oh*s.Stride - s.Pad + kh
						if ih < 0 || ih >= s.InH {
							continue
						}
						for kw := 0; kw < s.KW; kw++ {
							iw := ow*s.Stride - s.Pad + kw
							if iw < 0 || iw >= s.InW {
								continue
							}
							s32 += src[ih*s.InW+iw] * ker[kh*s.KW+kw]
						}
					}
					dst[p] = s32 + bv
					p++
				}
			}
		}
	}
	return out, nil
}

// PoolSpec describes a pooling operation over NCHW input.
type PoolSpec struct {
	C, H, W int
	K       int // window size (square)
	Stride  int
}

// OutH returns the pooled output height.
func (p PoolSpec) OutH() int { return (p.H-p.K)/p.Stride + 1 }

// OutW returns the pooled output width.
func (p PoolSpec) OutW() int { return (p.W-p.K)/p.Stride + 1 }

// MaxPool2D applies max pooling and also returns the flat argmax indices
// (into each image) used for backprop routing.
func MaxPool2D(x *Tensor, p PoolSpec) (*Tensor, []int, error) {
	if x.Dims() != 4 || x.shape[1] != p.C || x.shape[2] != p.H || x.shape[3] != p.W {
		return nil, nil, fmt.Errorf("%w: MaxPool2D input %v vs spec %+v", ErrShape, x.shape, p)
	}
	batch := x.shape[0]
	outH, outW := p.OutH(), p.OutW()
	out := New(batch, p.C, outH, outW)
	arg := make([]int, out.Len())
	imgLen := p.C * p.H * p.W
	i := 0
	for b := 0; b < batch; b++ {
		img := x.data[b*imgLen : (b+1)*imgLen]
		for c := 0; c < p.C; c++ {
			ch := img[c*p.H*p.W : (c+1)*p.H*p.W]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					bestIdx := (oh*p.Stride)*p.W + ow*p.Stride
					best := ch[bestIdx]
					for kh := 0; kh < p.K; kh++ {
						for kw := 0; kw < p.K; kw++ {
							idx := (oh*p.Stride+kh)*p.W + ow*p.Stride + kw
							if ch[idx] > best {
								best, bestIdx = ch[idx], idx
							}
						}
					}
					out.data[i] = best
					arg[i] = b*imgLen + c*p.H*p.W + bestIdx
					i++
				}
			}
		}
	}
	return out, arg, nil
}

// AvgPool2D applies average pooling (no argmax needed: gradient spreads
// uniformly).
func AvgPool2D(x *Tensor, p PoolSpec) (*Tensor, error) {
	if x.Dims() != 4 || x.shape[1] != p.C || x.shape[2] != p.H || x.shape[3] != p.W {
		return nil, fmt.Errorf("%w: AvgPool2D input %v vs spec %+v", ErrShape, x.shape, p)
	}
	batch := x.shape[0]
	outH, outW := p.OutH(), p.OutW()
	out := New(batch, p.C, outH, outW)
	imgLen := p.C * p.H * p.W
	inv := 1 / float32(p.K*p.K)
	i := 0
	for b := 0; b < batch; b++ {
		img := x.data[b*imgLen : (b+1)*imgLen]
		for c := 0; c < p.C; c++ {
			ch := img[c*p.H*p.W : (c+1)*p.H*p.W]
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var s float32
					for kh := 0; kh < p.K; kh++ {
						for kw := 0; kw < p.K; kw++ {
							s += ch[(oh*p.Stride+kh)*p.W+ow*p.Stride+kw]
						}
					}
					out.data[i] = s * inv
					i++
				}
			}
		}
	}
	return out, nil
}

// GlobalAvgPool2D reduces (batch, C, H, W) to (batch, C) by averaging each
// channel, as used before the classifier head in SqueezeNet/MobileNet.
func GlobalAvgPool2D(x *Tensor) (*Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: GlobalAvgPool2D needs 4-D input, got %v", ErrShape, x.shape)
	}
	batch, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(batch, c)
	inv := 1 / float32(h*w)
	for b := 0; b < batch; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			var s float32
			for i := 0; i < h*w; i++ {
				s += x.data[base+i]
			}
			out.data[b*c+ch] = s * inv
		}
	}
	return out, nil
}
