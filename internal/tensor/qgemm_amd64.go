//go:build amd64

package tensor

// useAVX2 gates the vector int8 dot kernel: set once at init when the
// CPU reports AVX2 and the OS has enabled YMM state. The int8 backend's
// hardware story is exactly this — quantized kernels win because eight
// 16-bit multiply-adds issue per VPMADDWD, not because int8 arithmetic
// is cheaper scalar-for-scalar.
var useAVX2 = cpuHasAVX2() && !forceScalar

// cpuHasAVX2 reports AVX2 support: OSXSAVE+AVX (CPUID.1:ECX), YMM state
// enabled in XCR0 (XGETBV), and AVX2 (CPUID.7.0:EBX bit 5).
func cpuHasAVX2() bool

// qdotAsm computes the int8 dot product of a[0:k]·b[0:k] with AVX2
// (VPMOVSXBW sign-extension, VPMADDWD pairwise multiply-add, int32
// accumulation). k must be a multiple of 32; callers handle the tail in
// Go.
//
//go:noescape
func qdotAsm(a, b *int8, k int) int32

// qconv3x3Asm16 computes 16 complete 3×3 int8 convolution outputs from a
// padded quantized image, writing the int32 sums
//
//	acc[j] = Σ_{ic<inC} Σ_{r<3} Σ_{t<3} w[ic*9+r*3+t] · src[ic*chanStride + r*rowStride + t + j]
//
// into acc. wp is the packed weight layout of qpackWeights3x3: per
// (ic, kernel-row) the dword pairs (w0,w1) and (w2,0) VPMADDWD consumes.
// Stride-1 outputs need overlapping pairs, so even and odd outputs
// accumulate in separate registers (source shifted one byte) and
// interleave once at the end. The shifted pair loads read one byte past
// the last image row — multiplied by the zero weight, but the buffer
// must carry one byte of slack. Complete sums: overlapping tail calls
// are idempotent.
//
//go:noescape
func qconv3x3Asm16(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32)

// qconv3x3Asm8 is the 8-output variant for narrow rows (XMM registers,
// same layout and slack contract).
//
//go:noescape
func qconv3x3Asm8(acc *int32, src *int8, inC, chanStride, rowStride int, wp *int32)
