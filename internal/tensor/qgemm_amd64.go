//go:build amd64

package tensor

// useAVX2 gates the vector int8 dot kernel: set once at init when the
// CPU reports AVX2 and the OS has enabled YMM state. The int8 backend's
// hardware story is exactly this — quantized kernels win because eight
// 16-bit multiply-adds issue per VPMADDWD, not because int8 arithmetic
// is cheaper scalar-for-scalar.
var useAVX2 = cpuHasAVX2()

// cpuHasAVX2 reports AVX2 support: OSXSAVE+AVX (CPUID.1:ECX), YMM state
// enabled in XCR0 (XGETBV), and AVX2 (CPUID.7.0:EBX bit 5).
func cpuHasAVX2() bool

// qdotAsm computes the int8 dot product of a[0:k]·b[0:k] with AVX2
// (VPMOVSXBW sign-extension, VPMADDWD pairwise multiply-add, int32
// accumulation). k must be a multiple of 32; callers handle the tail in
// Go.
//
//go:noescape
func qdotAsm(a, b *int8, k int) int32
