// Package tensor implements the dense float32 tensor algebra that underpins
// the OpenEI deep-learning substrate. It is deliberately small: row-major
// dense tensors, the handful of kernels neural-network inference and
// training need (matmul, im2col convolution, pooling, elementwise maps),
// and int8 post-training quantization used by the optimized edge packages.
//
// The package is pure Go and allocation-conscious rather than SIMD-tuned;
// the hardware cost model in internal/hardware, not wall-clock time of this
// code, is what the paper's latency/energy figures are derived from.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrShape is returned (wrapped) by operations whose operands have
// incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// scalar-less tensor; use New or NewFrom to construct usable values.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. New panics if any
// dimension is negative; a tensor with no dimensions has one element (a
// scalar), matching NumPy semantics.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// NewFrom wraps data in a tensor of the given shape. The slice is used
// directly (not copied). It returns an error if len(data) does not match
// the shape's element count.
func NewFrom(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension %d in %v", ErrShape, d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d does not fit shape %v (%d elements)", ErrShape, len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFrom is NewFrom that panics on error; intended for tests and
// compile-time-known literals.
func MustFrom(data []float32, shape ...int) *Tensor {
	t, err := NewFrom(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor;
// callers that need isolation should use Clone.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. It returns an
// error if the element count differs. The returned tensor shares data with t.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elems) to %v (%d elems)", ErrShape, t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// MustReshape is Reshape that panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// Rand fills the tensor with uniform values in [-scale, scale) drawn from rng.
func (t *Tensor) Rand(rng *rand.Rand, scale float32) {
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Randn fills the tensor with normal(0, std) values drawn from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float32) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()) * std
	}
}

// GlorotInit fills the tensor using Glorot/Xavier uniform initialization for
// a layer with the given fan-in and fan-out.
func (t *Tensor) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	t.Rand(rng, limit)
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elems, first=%v...]", t.shape, len(t.data), t.data[:4])
}

// Add computes dst = a + b elementwise. dst may alias a or b. It returns an
// error if shapes differ.
func Add(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: Add %v + %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return nil
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: Sub %v - %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return nil
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: Mul %v * %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
	return nil
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled computes t += s*other in place (axpy).
func (t *Tensor) AddScaled(other *Tensor, s float32) error {
	if !SameShape(t, other) {
		return fmt.Errorf("%w: AddScaled %v += %v", ErrShape, t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] += s * other.data[i]
	}
	return nil
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Max returns the maximum element and its flat index. It panics on an empty
// tensor.
func (t *Tensor) Max() (float32, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return best, arg
}

// AbsMax returns the maximum absolute value of any element (0 for empty).
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Tensor, tol float32) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
