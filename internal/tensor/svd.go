package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// TruncatedSVD computes a rank-r approximation A ≈ U·V where U is m×r and
// V is r×n, using orthogonal (power) iteration on A·Aᵀ. The singular values
// are folded into V, so the low-rank replacement of a Dense layer is simply
// two stacked Dense layers — exactly the factorization trick of Denton et
// al. [25] that the paper's Table I lists as "low-rank factorization".
//
// iters controls the number of subspace iterations; 15–30 is plenty for the
// layer sizes in this repo.
func TruncatedSVD(a *Tensor, rank, iters int, rng *rand.Rand) (u, v *Tensor, err error) {
	if a.Dims() != 2 {
		return nil, nil, fmt.Errorf("%w: TruncatedSVD needs a 2-D tensor, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	if rank <= 0 || rank > m || rank > n {
		return nil, nil, fmt.Errorf("%w: TruncatedSVD rank %d out of range for %d×%d", ErrShape, rank, m, n)
	}
	if iters <= 0 {
		iters = 20
	}

	// Q: m×rank orthonormal basis, initialized randomly.
	q := New(m, rank)
	q.Randn(rng, 1)
	orthonormalize(q)

	at, err := Transpose(a)
	if err != nil {
		return nil, nil, err
	}
	for it := 0; it < iters; it++ {
		// Z = Aᵀ·Q (n×rank), then Q = A·Z (m×rank), re-orthonormalized.
		z, err := MatMul(at, q)
		if err != nil {
			return nil, nil, err
		}
		orthonormalize(z)
		q, err = MatMul(a, z)
		if err != nil {
			return nil, nil, err
		}
		orthonormalize(q)
	}

	// V = Qᵀ·A (rank×n) carries the singular values; U = Q.
	qt, err := Transpose(q)
	if err != nil {
		return nil, nil, err
	}
	v, err = MatMul(qt, a)
	if err != nil {
		return nil, nil, err
	}
	return q, v, nil
}

// orthonormalize applies modified Gram–Schmidt to the columns of the 2-D
// tensor q in place. Columns that collapse to (near) zero are re-seeded
// with a deterministic basis vector so the basis keeps full rank.
func orthonormalize(q *Tensor) {
	m, r := q.shape[0], q.shape[1]
	for j := 0; j < r; j++ {
		// Subtract projections onto previous columns.
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < m; i++ {
				dot += float64(q.data[i*r+j]) * float64(q.data[i*r+p])
			}
			for i := 0; i < m; i++ {
				q.data[i*r+j] -= float32(dot) * q.data[i*r+p]
			}
		}
		var norm float64
		for i := 0; i < m; i++ {
			norm += float64(q.data[i*r+j]) * float64(q.data[i*r+j])
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate column: replace with e_{j mod m}.
			for i := 0; i < m; i++ {
				q.data[i*r+j] = 0
			}
			q.data[(j%m)*r+j] = 1
			continue
		}
		inv := float32(1 / norm)
		for i := 0; i < m; i++ {
			q.data[i*r+j] *= inv
		}
	}
}

// ReconstructionError returns ‖A − U·V‖F / ‖A‖F, the relative Frobenius
// error of a low-rank factorization.
func ReconstructionError(a, u, v *Tensor) (float64, error) {
	uv, err := MatMul(u, v)
	if err != nil {
		return 0, err
	}
	if !SameShape(a, uv) {
		return 0, fmt.Errorf("%w: reconstruction %v vs original %v", ErrShape, uv.shape, a.shape)
	}
	var num, den float64
	for i := range a.data {
		d := float64(a.data[i] - uv.data[i])
		num += d * d
		den += float64(a.data[i]) * float64(a.data[i])
	}
	if den == 0 {
		return 0, nil
	}
	return math.Sqrt(num) / math.Sqrt(den), nil
}
