//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go kernels unconditionally; the consts
// let the compiler drop the assembly dispatch branches entirely.
const (
	forceScalar = false
	useFMA      = false
)

func fgemmKernelAsm(pa, pb, c *float32, kc, ldc int) {
	panic("tensor: fgemmKernelAsm without FMA support")
}

func fdotAsm(a, b *float32, k int) float32 {
	panic("tensor: fdotAsm without FMA support")
}

func fconv3x3Asm8(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32) {
	panic("tensor: fconv3x3Asm8 without FMA support")
}

func fconv3x3Asm16(dst, src *float32, inC, chanStride, rowStride int, w *float32, bias float32) {
	panic("tensor: fconv3x3Asm16 without FMA support")
}
