package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"openei/internal/parallel"
)

// benchPool pins the kernel pool to the given width (grain 1 so every
// kernel in the benchmark actually shards) and restores defaults on
// cleanup. Width 1 is the serial baseline the speedup is measured against.
func benchPool(b *testing.B, procs int) {
	b.Helper()
	parallel.SetProcs(procs)
	if procs > 1 {
		parallel.SetGrainWork(1)
	}
	b.Cleanup(func() {
		parallel.SetProcs(0)
		parallel.SetGrainWork(0)
	})
}

// BenchmarkParallelMatMul compares the serial kernel against the sharded
// kernel at increasing widths on a GEMM big enough to amortize dispatch.
func BenchmarkParallelMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const n = 256
	x, y := New(n, n), New(n, n)
	x.Rand(rng, 1)
	y.Rand(rng, 1)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchPool(b, procs)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := MatMul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelConv2D is the acceptance workload: a batch-8
// convolution forward, serial vs sharded across the pool.
func BenchmarkParallelConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	s := Conv2DSpec{InC: 16, InH: 32, InW: 32, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const batch = 8
	x := New(batch, s.InC, s.InH, s.InW)
	w := New(s.OutC, s.InC, s.KH, s.KW)
	bias := New(s.OutC)
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchPool(b, procs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Conv2D(x, w, bias, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelConv2DBackward measures the training-side gradient
// kernel, whose images shard with per-worker partial accumulators.
func BenchmarkParallelConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	s := Conv2DSpec{InC: 16, InH: 32, InW: 32, OutC: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const batch = 8
	colRows := s.InC * s.KH * s.KW
	x := New(batch, s.InC, s.InH, s.InW)
	grad := New(batch, s.OutC, s.OutH(), s.OutW())
	w := New(s.OutC, colRows)
	x.Rand(rng, 1)
	grad.Rand(rng, 1)
	w.Rand(rng, 1)
	wt, err := Transpose(w)
	if err != nil {
		b.Fatal(err)
	}
	dx := New(batch, s.InC, s.InH, s.InW)
	dW := New(s.OutC, colRows)
	dB := New(s.OutC)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchPool(b, procs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Conv2DBackward(x.Data(), grad.Data(), wt.Data(), dx.Data(), dW.Data(), dB.Data(), s, batch)
			}
		})
	}
}

// BenchmarkParallelQMatMul measures the int8 row-dot kernel.
func BenchmarkParallelQMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	const n = 256
	x, y := New(n, n), New(n, n)
	x.Rand(rng, 1)
	y.Rand(rng, 1)
	qx, qy := Quantize(x), Quantize(y)
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchPool(b, procs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := QMatMul(qx, qy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 64, 256} {
		x := New(n, n)
		y := New(n, n)
		x.Rand(rng, 1)
		y.Rand(rng, 1)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				if _, err := MatMul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatMulSparse(b *testing.B) {
	// The pruning payoff: the kernel skips zero weights, so a 90%-sparse
	// left operand should be much faster.
	rng := rand.New(rand.NewSource(2))
	const n = 128
	dense := New(n, n)
	dense.Rand(rng, 1)
	sparse := dense.Clone()
	for i, v := range sparse.Data() {
		if v < 0.4 && v > -0.4 { // ~80-90% of uniform(-1,1)
			sparse.Data()[i] = 0
		}
	}
	y := New(n, n)
	y.Rand(rng, 1)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(dense, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(sparse, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkQMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 128
	x := New(n, n)
	y := New(n, n)
	x.Rand(rng, 1)
	y.Rand(rng, 1)
	qx, qy := Quantize(x), Quantize(y)
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QMatMul(qx, qy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s := Conv2DSpec{InC: 8, InH: 16, InW: 16, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(1, 8, 16, 16)
	w := New(16, 8, 3, 3)
	bias := New(16)
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(x, w, bias, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseVsFullConv(b *testing.B) {
	// The MobileNet premise: depthwise separable ≪ full convolution.
	rng := rand.New(rand.NewSource(5))
	full := Conv2DSpec{InC: 16, InH: 16, InW: 16, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(1, 16, 16, 16)
	x.Rand(rng, 1)
	wf := New(16, 16, 3, 3)
	wf.Rand(rng, 1)
	wd := New(16, 3, 3)
	wd.Rand(rng, 1)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Conv2D(x, wf, nil, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("depthwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DepthwiseConv2D(x, wd, nil, full); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTruncatedSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := New(128, 96)
	a.Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TruncatedSVD(a, 16, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := New(64 * 1024)
	x.Rand(rng, 2)
	b.SetBytes(int64(4 * x.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Quantize(x)
		_ = q.Dequantize()
	}
}
