package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 64, 256} {
		x := New(n, n)
		y := New(n, n)
		x.Rand(rng, 1)
		y.Rand(rng, 1)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * n))
			for i := 0; i < b.N; i++ {
				if _, err := MatMul(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatMulSparse(b *testing.B) {
	// The pruning payoff: the kernel skips zero weights, so a 90%-sparse
	// left operand should be much faster.
	rng := rand.New(rand.NewSource(2))
	const n = 128
	dense := New(n, n)
	dense.Rand(rng, 1)
	sparse := dense.Clone()
	for i, v := range sparse.Data() {
		if v < 0.4 && v > -0.4 { // ~80-90% of uniform(-1,1)
			sparse.Data()[i] = 0
		}
	}
	y := New(n, n)
	y.Rand(rng, 1)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(dense, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(sparse, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkQMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 128
	x := New(n, n)
	y := New(n, n)
	x.Rand(rng, 1)
	y.Rand(rng, 1)
	qx, qy := Quantize(x), Quantize(y)
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatMul(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QMatMul(qx, qy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	s := Conv2DSpec{InC: 8, InH: 16, InW: 16, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(1, 8, 16, 16)
	w := New(16, 8, 3, 3)
	bias := New(16)
	x.Rand(rng, 1)
	w.Rand(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(x, w, bias, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseVsFullConv(b *testing.B) {
	// The MobileNet premise: depthwise separable ≪ full convolution.
	rng := rand.New(rand.NewSource(5))
	full := Conv2DSpec{InC: 16, InH: 16, InW: 16, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := New(1, 16, 16, 16)
	x.Rand(rng, 1)
	wf := New(16, 16, 3, 3)
	wf.Rand(rng, 1)
	wd := New(16, 3, 3)
	wd.Rand(rng, 1)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Conv2D(x, wf, nil, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("depthwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DepthwiseConv2D(x, wd, nil, full); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTruncatedSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := New(128, 96)
	a.Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TruncatedSVD(a, 16, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantizeRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := New(64 * 1024)
	x.Rand(rng, 2)
	b.SetBytes(int64(4 * x.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Quantize(x)
		_ = q.Dequantize()
	}
}
