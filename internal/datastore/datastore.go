// Package datastore is the edge data layer behind libei's /ei_data API
// (Figure 6): per-sensor streams with a bounded real-time window and a
// timestamp-indexed historical log, queryable by time range — "developers
// will get the data over a period of time by the start and end which are
// provided by the timestamp argument".
package datastore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Errors returned by the store.
var (
	// ErrUnknownSensor is returned for reads from unregistered sensors.
	ErrUnknownSensor = errors.New("datastore: unknown sensor")
	// ErrEmpty is returned when a realtime read finds no samples.
	ErrEmpty = errors.New("datastore: no samples")
	// ErrBadRange is returned for inverted time ranges.
	ErrBadRange = errors.New("datastore: bad time range")
)

// Sample is one sensor reading: a timestamp and a payload vector (camera
// frames are flattened pixel vectors; meters are single values; IMUs are
// triples).
type Sample struct {
	At      time.Time
	Payload []float32
}

// SizeBytes returns the wire size of the sample payload.
func (s Sample) SizeBytes() int64 { return int64(4 * len(s.Payload)) }

// SensorInfo describes a registered sensor.
type SensorInfo struct {
	ID string
	// Kind is a free-form type tag ("camera", "power-meter", "imu").
	Kind string
	// Dim is the payload vector length.
	Dim int
}

// Store holds all sensor streams of one edge node. The zero value is not
// usable; construct with New. Store is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	window   int
	sensors  map[string]SensorInfo
	realtime map[string][]Sample // ring-ish: trimmed to window
	history  map[string][]Sample // append-only, sorted by At
}

// New returns a store keeping the most recent `window` samples per sensor
// in the real-time view (history is unbounded).
func New(window int) *Store {
	if window <= 0 {
		window = 64
	}
	return &Store{
		window:   window,
		sensors:  map[string]SensorInfo{},
		realtime: map[string][]Sample{},
		history:  map[string][]Sample{},
	}
}

// Register adds (or re-registers) a sensor.
func (s *Store) Register(info SensorInfo) error {
	if info.ID == "" || info.Dim <= 0 {
		return fmt.Errorf("datastore: invalid sensor info %+v", info)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sensors[info.ID] = info
	return nil
}

// Sensors lists registered sensors sorted by ID.
func (s *Store) Sensors() []SensorInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SensorInfo, 0, len(s.sensors))
	for _, info := range s.sensors {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Append stores a sample for the sensor. The payload is copied. Samples
// must be appended in non-decreasing timestamp order per sensor; out-of-
// order samples are still stored but range queries then use sort order.
func (s *Store) Append(sensorID string, sample Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.sensors[sensorID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSensor, sensorID)
	}
	if len(sample.Payload) != info.Dim {
		return fmt.Errorf("datastore: sensor %q payload dim %d, want %d", sensorID, len(sample.Payload), info.Dim)
	}
	cp := Sample{At: sample.At, Payload: append([]float32(nil), sample.Payload...)}
	rt := append(s.realtime[sensorID], cp)
	if len(rt) > s.window {
		rt = rt[len(rt)-s.window:]
	}
	s.realtime[sensorID] = rt
	h := s.history[sensorID]
	// Keep history sorted; the common case is append-at-end.
	if n := len(h); n > 0 && cp.At.Before(h[n-1].At) {
		i := sort.Search(n, func(i int) bool { return !h[i].At.Before(cp.At) })
		h = append(h, Sample{})
		copy(h[i+1:], h[i:])
		h[i] = cp
	} else {
		h = append(h, cp)
	}
	s.history[sensorID] = h
	return nil
}

// Latest returns the most recent sample of the sensor.
func (s *Store) Latest(sensorID string) (Sample, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sensors[sensorID]; !ok {
		return Sample{}, fmt.Errorf("%w: %q", ErrUnknownSensor, sensorID)
	}
	rt := s.realtime[sensorID]
	if len(rt) == 0 {
		return Sample{}, fmt.Errorf("%w: sensor %q", ErrEmpty, sensorID)
	}
	return rt[len(rt)-1], nil
}

// Realtime returns up to n most recent samples (oldest first).
func (s *Store) Realtime(sensorID string, n int) ([]Sample, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sensors[sensorID]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSensor, sensorID)
	}
	rt := s.realtime[sensorID]
	if n <= 0 || n > len(rt) {
		n = len(rt)
	}
	out := make([]Sample, n)
	copy(out, rt[len(rt)-n:])
	return out, nil
}

// Range returns historical samples with start ≤ At ≤ end (inclusive),
// oldest first.
func (s *Store) Range(sensorID string, start, end time.Time) ([]Sample, error) {
	if end.Before(start) {
		return nil, fmt.Errorf("%w: %v after %v", ErrBadRange, start, end)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.sensors[sensorID]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSensor, sensorID)
	}
	h := s.history[sensorID]
	lo := sort.Search(len(h), func(i int) bool { return !h[i].At.Before(start) })
	hi := sort.Search(len(h), func(i int) bool { return h[i].At.After(end) })
	out := make([]Sample, hi-lo)
	copy(out, h[lo:hi])
	return out, nil
}

// Count returns the number of historical samples for the sensor.
func (s *Store) Count(sensorID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.history[sensorID])
}

// BytesStored returns the total payload bytes held in history — the "data
// generated at the edge" numerator of the E1 experiment.
func (s *Store) BytesStored() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, h := range s.history {
		for _, smp := range h {
			n += smp.SizeBytes()
		}
	}
	return n
}
