package datastore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New(4)
	if err := s.Register(SensorInfo{ID: "cam1", Kind: "camera", Dim: 3}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterValidation(t *testing.T) {
	s := New(0)
	if err := s.Register(SensorInfo{ID: "", Dim: 3}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := s.Register(SensorInfo{ID: "x", Dim: 0}); err == nil {
		t.Error("zero dim should fail")
	}
}

func TestAppendAndLatest(t *testing.T) {
	s := newStore(t)
	if _, err := s.Latest("cam1"); !errors.Is(err, ErrEmpty) {
		t.Errorf("Latest on empty: err = %v, want ErrEmpty", err)
	}
	if err := s.Append("cam1", Sample{At: t0, Payload: []float32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Latest("cam1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[2] != 3 || !got.At.Equal(t0) {
		t.Errorf("Latest = %+v", got)
	}
	if _, err := s.Latest("nope"); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("unknown sensor: err = %v, want ErrUnknownSensor", err)
	}
}

func TestAppendValidation(t *testing.T) {
	s := newStore(t)
	if err := s.Append("nope", Sample{Payload: []float32{1, 2, 3}}); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("unknown sensor: err = %v", err)
	}
	if err := s.Append("cam1", Sample{Payload: []float32{1}}); err == nil {
		t.Error("wrong dim should fail")
	}
}

func TestAppendCopiesPayload(t *testing.T) {
	s := newStore(t)
	p := []float32{1, 2, 3}
	if err := s.Append("cam1", Sample{At: t0, Payload: p}); err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	got, err := s.Latest("cam1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[0] != 1 {
		t.Error("Append must copy the payload")
	}
}

func TestRealtimeWindowTrims(t *testing.T) {
	s := newStore(t) // window = 4
	for i := 0; i < 10; i++ {
		if err := s.Append("cam1", Sample{At: t0.Add(time.Duration(i) * time.Second), Payload: []float32{float32(i), 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := s.Realtime("cam1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != 4 {
		t.Fatalf("realtime window = %d samples, want 4", len(rt))
	}
	if rt[0].Payload[0] != 6 || rt[3].Payload[0] != 9 {
		t.Errorf("window contents = %v..%v, want 6..9", rt[0].Payload[0], rt[3].Payload[0])
	}
	// History keeps everything.
	if s.Count("cam1") != 10 {
		t.Errorf("history count = %d, want 10", s.Count("cam1"))
	}
	// Realtime with n smaller than window.
	rt, err = s.Realtime("cam1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != 2 || rt[1].Payload[0] != 9 {
		t.Errorf("Realtime(2) = %v", rt)
	}
}

func TestRangeQuery(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		if err := s.Append("cam1", Sample{At: t0.Add(time.Duration(i) * time.Minute), Payload: []float32{float32(i), 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Range("cam1", t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("Range = %d samples, want 4 (inclusive)", len(got))
	}
	if got[0].Payload[0] != 2 || got[3].Payload[0] != 5 {
		t.Errorf("Range contents wrong: %v..%v", got[0].Payload[0], got[3].Payload[0])
	}
	// Empty range within data.
	got, err = s.Range("cam1", t0.Add(20*time.Minute), t0.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("out-of-data range returned %d samples", len(got))
	}
	if _, err := s.Range("cam1", t0.Add(time.Hour), t0); !errors.Is(err, ErrBadRange) {
		t.Errorf("inverted range: err = %v, want ErrBadRange", err)
	}
	if _, err := s.Range("nope", t0, t0); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("unknown sensor: err = %v", err)
	}
}

func TestOutOfOrderAppendKeepsHistorySorted(t *testing.T) {
	s := newStore(t)
	times := []int{5, 1, 3, 2, 4}
	for _, m := range times {
		if err := s.Append("cam1", Sample{At: t0.Add(time.Duration(m) * time.Minute), Payload: []float32{float32(m), 0, 0}}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Range("cam1", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At.Before(got[i-1].At) {
			t.Fatal("history not sorted after out-of-order appends")
		}
	}
	if len(got) != 5 {
		t.Errorf("got %d samples, want 5", len(got))
	}
}

func TestSensorsListing(t *testing.T) {
	s := New(8)
	for _, id := range []string{"z", "a", "m"} {
		if err := s.Register(SensorInfo{ID: id, Kind: "k", Dim: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Sensors()
	if len(got) != 3 || got[0].ID != "a" || got[2].ID != "z" {
		t.Errorf("Sensors = %v, want sorted a,m,z", got)
	}
}

func TestBytesStored(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Append("cam1", Sample{At: t0.Add(time.Duration(i) * time.Second), Payload: []float32{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.BytesStored(); got != 5*3*4 {
		t.Errorf("BytesStored = %d, want 60", got)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := New(16)
	if err := s.Register(SensorInfo{ID: "x", Kind: "k", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Append("x", Sample{At: t0.Add(time.Duration(g*100+i) * time.Millisecond), Payload: []float32{1}})
				_, _ = s.Realtime("x", 4)
				_, _ = s.Range("x", t0, t0.Add(time.Hour))
			}
		}(g)
	}
	wg.Wait()
	if s.Count("x") != 800 {
		t.Errorf("count = %d, want 800", s.Count("x"))
	}
}

// Property: for any in-order append sequence, Range(start, end) returns
// exactly the samples whose timestamps fall in [start, end].
func TestRangeExactnessProperty(t *testing.T) {
	f := func(offsets []uint8, loRaw, hiRaw uint8) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New(4)
		if err := s.Register(SensorInfo{ID: "p", Kind: "k", Dim: 1}); err != nil {
			return false
		}
		at := t0
		var all []time.Time
		for i, off := range offsets {
			at = at.Add(time.Duration(off%16) * time.Second)
			if err := s.Append("p", Sample{At: at, Payload: []float32{float32(i)}}); err != nil {
				return false
			}
			all = append(all, at)
		}
		lo, hi := int(loRaw%64), int(hiRaw%64)
		if lo > hi {
			lo, hi = hi, lo
		}
		start := t0.Add(time.Duration(lo) * time.Second)
		end := t0.Add(time.Duration(hi) * time.Second)
		got, err := s.Range("p", start, end)
		if err != nil {
			return false
		}
		want := 0
		for _, ts := range all {
			if !ts.Before(start) && !ts.After(end) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefaultWindow(t *testing.T) {
	s := New(0)
	if err := s.Register(SensorInfo{ID: "d", Kind: "k", Dim: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Append("d", Sample{At: t0.Add(time.Duration(i) * time.Second), Payload: []float32{0}}); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := s.Realtime("d", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) != 64 {
		t.Errorf("default window = %d, want 64", len(rt))
	}
}

func ExampleStore() {
	s := New(8)
	_ = s.Register(SensorInfo{ID: "camera1", Kind: "camera", Dim: 2})
	_ = s.Append("camera1", Sample{At: t0, Payload: []float32{0.5, 0.25}})
	latest, _ := s.Latest("camera1")
	fmt.Println(len(latest.Payload))
	// Output: 2
}
