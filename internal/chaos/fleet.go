package chaos

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"openei/internal/alem"
	"openei/internal/gateway"
	"openei/internal/hardware"
	"openei/internal/libei"
	"openei/internal/netsim"
	"openei/internal/nn"
	"openei/internal/obs"
	"openei/internal/pkgmgr"
	"openei/internal/serving"
)

// Node is one in-process fleet member: the same pkgmgr → serving →
// libei stack openei-server runs, listening on a loopback httptest
// server, reached by the gateway only through its NodeLink.
type Node struct {
	ID   string
	URL  string
	link *NodeLink

	srv    *httptest.Server
	eng    *serving.Engine
	mgr    *pkgmgr.Manager
	killed atomic.Bool
}

// Kill stops the node's listener mid-flight — the process-crash fault.
// Idempotent; a killed node stays dead for the rest of the run.
func (n *Node) Kill() {
	if n.killed.CompareAndSwap(false, true) {
		n.srv.CloseClientConnections()
		n.srv.Close()
	}
}

// Killed reports whether the node has been killed.
func (n *Node) Killed() bool { return n.killed.Load() }

// TenantStats reads the node's per-tenant counters in-process, so the
// report can include nodes whose listener is already dead.
func (n *Node) TenantStats() []serving.TenantStats { return n.eng.TenantStats() }

// FleetConfig sizes the fleet under test.
type FleetConfig struct {
	// Nodes is the fleet size (default 4).
	Nodes int
	// Tenants is every node's serving.Config.Tenants — the admission and
	// priority classes the scenario exercises.
	Tenants []serving.TenantConfig
	// InputDim is the identity model's sample width (default 4).
	InputDim int
	// Replicas/MaxBatch/QueueDepth tune each node's serving engine
	// (defaults 2 / 8 / 64 — a deliberately small queue so overload
	// actually sheds).
	Replicas   int
	MaxBatch   int
	QueueDepth int
	// Link and SlowProfile are the healthy and degraded gateway→node
	// paths (defaults netsim.LAN and a 10× thinner, 20× slower profile).
	Link        netsim.Link
	SlowProfile netsim.Link
	// Gateway overrides the failover knobs; Nodes and Transport are
	// always set by the fleet builder.
	Gateway gateway.Config
	// Seed drives every random source in the fleet (links, traffic).
	Seed int64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.InputDim <= 0 {
		c.InputDim = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Link.BandwidthBPS == 0 {
		c.Link = netsim.LAN
	}
	if c.SlowProfile.BandwidthBPS == 0 {
		c.SlowProfile = netsim.Link{
			Name:         c.Link.Name + "-degraded",
			BandwidthBPS: c.Link.BandwidthBPS / 10,
			RTT:          c.Link.RTT * 20,
		}
	}
	return c
}

// Fleet is the running system under test: N nodes, their links, and the
// gateway fronting them.
type Fleet struct {
	cfg   FleetConfig
	Nodes []*Node
	GW    *gateway.Gateway
	Front *httptest.Server // the gateway's public face; clients hit this

	mu     sync.Mutex
	byHost map[string]*Node

	closeOnce sync.Once
}

// NewFleet boots the fleet: every node runs a real package manager, an
// identity model (one-hot input → hot index, so every answer is
// checkable), and a tenant-configured serving engine. The gateway
// reaches nodes only through the chaos transport, so link faults hit
// the genuine request path, health probes included.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg, byHost: map[string]*Node{}}
	pkg, err := alem.PackageByName("eipkg")
	if err != nil {
		return nil, err
	}
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		return nil, err
	}
	ident, err := nn.NewModel("ident", []int{cfg.InputDim}, []nn.LayerSpec{{Type: "flatten"}})
	if err != nil {
		return nil, err
	}
	urls := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("edge-%d", i+1)
		mgr := pkgmgr.New(pkg, dev)
		if err := mgr.Load(ident, pkgmgr.LoadOptions{}); err != nil {
			f.Close()
			mgr.Close()
			return nil, fmt.Errorf("chaos: load model on %s: %w", id, err)
		}
		eng := serving.NewEngine(mgr, serving.Config{
			Replicas:   cfg.Replicas,
			MaxBatch:   cfg.MaxBatch,
			QueueDepth: cfg.QueueDepth,
			Tenants:    cfg.Tenants,
		})
		lib := libei.NewServer(id, nil, mgr)
		lib.SetEngine(eng)
		// Rate-0 tracing still keeps errors and p99-tail requests, and
		// every infer answer reports its trace_id — what the report's
		// worst-traces and failure-trace stamps resolve against.
		lib.SetTracer(obs.NewTracer(obs.Config{Source: id}))
		srv := httptest.NewServer(lib)
		n := &Node{
			ID:   id,
			URL:  srv.URL,
			link: newNodeLink(cfg.Link, cfg.SlowProfile, cfg.Seed+int64(i)*7919),
			srv:  srv,
			eng:  eng,
			mgr:  mgr,
		}
		u, _ := url.Parse(srv.URL)
		f.byHost[u.Host] = n
		f.Nodes = append(f.Nodes, n)
		urls[i] = srv.URL
	}
	gwCfg := cfg.Gateway
	gwCfg.Nodes = urls
	gwCfg.Transport = &fleetTransport{f: f, next: defaultTransport()}
	if gwCfg.HealthInterval <= 0 {
		gwCfg.HealthInterval = 50 * time.Millisecond
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.GW = gw
	gw.Start()
	f.Front = httptest.NewServer(gw)
	return f, nil
}

// defaultTransport is the real HTTP layer under the modelled links; a
// clone keeps chaos connection churn out of http.DefaultTransport's
// shared pools.
func defaultTransport() http.RoundTripper {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = 64
	return t
}

// nodeByHost resolves the fleet member behind a host:port.
func (f *Fleet) nodeByHost(host string) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byHost[host]
}

// Close tears the fleet down: front, gateway, then every surviving node.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		if f.Front != nil {
			f.Front.Close()
		}
		if f.GW != nil {
			f.GW.Close()
		}
		for _, n := range f.Nodes {
			n.Kill()
			n.eng.Close()
			n.mgr.Close()
		}
	})
}
