package chaos

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"openei/internal/netsim"
	"openei/internal/serving"
)

func TestNodeLinkFaults(t *testing.T) {
	l := newNodeLink(netsim.LAN, netsim.Link{Name: "slow", BandwidthBPS: 1e6, RTT: 40 * time.Millisecond}, 1)

	if d, err := l.transit(1 << 10); err != nil || d <= 0 {
		t.Fatalf("healthy transit: d=%v err=%v", d, err)
	}
	healthy, _ := l.transit(1 << 10)

	l.Partition()
	if _, err := l.transit(1 << 10); err == nil {
		t.Fatal("partitioned link transferred")
	}
	if !l.Partitioned() {
		t.Fatal("Partitioned() = false after Partition()")
	}
	l.Heal()
	if _, err := l.transit(1 << 10); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}

	l.SlowLink(true)
	slow, err := l.transit(1 << 10)
	if err != nil {
		t.Fatalf("slow link failed: %v", err)
	}
	if slow <= healthy {
		t.Errorf("slow transit %v not slower than healthy %v", slow, healthy)
	}
	l.SlowLink(false)

	// A fully deterministic dice: rate just below 1 fails almost every
	// attempt; rate 0 never fails.
	l.SetFlaky(0.99)
	failures := 0
	for i := 0; i < 100; i++ {
		if _, err := l.transit(64); err != nil {
			failures++
		}
	}
	if failures < 90 {
		t.Errorf("flaky at 0.99 failed only %d/100", failures)
	}
	l.SetFlaky(0)
	if _, err := l.transit(64); err != nil {
		t.Errorf("flaky at 0 failed: %v", err)
	}
}

func TestDiurnalRate(t *testing.T) {
	period := time.Minute
	valley := diurnalRate(10, 3, 0, period)
	peak := diurnalRate(10, 3, period/2, period)
	back := diurnalRate(10, 3, period, period)
	if math.Abs(valley-10) > 0.01 || math.Abs(back-10) > 0.01 {
		t.Errorf("valley rate = %v / %v, want 10", valley, back)
	}
	if math.Abs(peak-30) > 0.01 {
		t.Errorf("peak rate = %v, want 30 (10×burst 3)", peak)
	}
	if flat := diurnalRate(10, 1, period/2, period); math.Abs(flat-10) > 0.01 {
		t.Errorf("burst 1 not flat: %v", flat)
	}
}

// TestFleetServesThroughChaosTransport boots a small fleet and checks a
// clean request round-trips the netsim transport, and that a report
// carries the right shape.
func TestFleetServesThroughChaosTransport(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Nodes: 2,
		Seed:  42,
		Tenants: []serving.TenantConfig{
			{Name: "gold", Priority: 5},
			{Name: "bronze", Priority: 0, RatePerSec: 5, Burst: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	h := &Harness{
		Fleet:    f,
		Duration: 500 * time.Millisecond,
		Traffic: []TenantTraffic{
			{Tenant: "gold", Model: "ident", RPS: 40, BurstFactor: 2, Deadline: time.Second},
			{Tenant: "bronze", Model: "ident", RPS: 40, BurstFactor: 1},
		},
	}
	rep, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	gold, bronze := rep.Tenant("gold"), rep.Tenant("bronze")
	if gold == nil || bronze == nil {
		t.Fatalf("missing tenant outcomes: %+v", rep.Tenants)
	}
	if gold.Sent == 0 || gold.OK == 0 {
		t.Errorf("gold sent=%d ok=%d, want traffic", gold.Sent, gold.OK)
	}
	if gold.Other != 0 || bronze.Other != 0 {
		t.Errorf("protocol failures: gold=%v bronze=%v", gold.OtherSamples, bronze.OtherSamples)
	}
	// Bronze offers ~40 rps against a 5/s bucket: most of it must shed,
	// and the per-node counters must agree it was bronze that shed.
	if bronze.Overloaded == 0 {
		t.Error("bronze rate limit never shed")
	}
	var bronzeShed, goldShed uint64
	for _, stats := range rep.NodeTenants {
		for _, ts := range stats {
			switch ts.Tenant {
			case "bronze":
				bronzeShed += ts.ShedThrottle + ts.ShedQueue
			case "gold":
				goldShed += ts.ShedThrottle + ts.ShedQueue
			}
		}
	}
	if bronzeShed == 0 {
		t.Error("node counters show no bronze shed")
	}
	if goldShed != 0 {
		t.Errorf("gold shed %d on-node; admission must not touch the unlimited class", goldShed)
	}
}

func TestKilledNodeStillReports(t *testing.T) {
	f, err := NewFleet(FleetConfig{Nodes: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Nodes[0].Kill()
	if !f.Nodes[0].Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	f.Nodes[0].Kill() // idempotent
	if stats := f.Nodes[0].TenantStats(); len(stats) == 0 {
		t.Error("killed node lost its tenant counters")
	}
}

func TestReportWriteFile(t *testing.T) {
	rep := &Report{Seed: 9, Tenants: []TenantOutcome{{Tenant: "t", Sent: 1, OK: 1}}}
	path := filepath.Join(t.TempDir(), "chaos.json")
	t.Setenv("CHAOS_REPORT", path)
	if err := rep.WriteEnv(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty report file")
	}
	t.Setenv("CHAOS_REPORT", "")
	if err := rep.WriteEnv(); err != nil {
		t.Fatalf("unset CHAOS_REPORT must no-op, got %v", err)
	}
}
