package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"openei/internal/gateway"
	"openei/internal/libei"
	"openei/internal/serving"
)

// TenantTraffic is one tenant's workload: a diurnal/bursty open-loop
// arrival process against one model, with an optional per-request
// deadline and the latency SLO attainment is judged against.
type TenantTraffic struct {
	// Tenant is the admission class requests are sent as.
	Tenant string
	// Model is the target model (the fleet's identity model by default).
	Model string
	// RPS is the baseline arrival rate; the instantaneous rate swings
	// between RPS and RPS×BurstFactor over each Period (a compressed
	// diurnal cycle), so a run covers both the valley and the peak.
	RPS float64
	// BurstFactor ≥ 1 scales the peak (1 = flat).
	BurstFactor float64
	// Period is the diurnal cycle length (default: the run duration, one
	// full valley-peak-valley swing per run).
	Period time.Duration
	// Deadline is the per-request deadline_ms sent on the wire (0 = none).
	Deadline time.Duration
	// SLO is the end-to-end latency bound a successful answer must beat
	// to count toward attainment (default: Deadline, else 1s).
	SLO time.Duration
}

// EventAction is one scheduled fault (or repair).
type EventAction string

// The fault vocabulary: kill a node, cut or heal its link, make the
// link lossy, or degrade its bandwidth/RTT profile.
const (
	Kill      EventAction = "kill"
	Partition EventAction = "partition"
	Heal      EventAction = "heal"
	Flaky     EventAction = "flaky"
	Slow      EventAction = "slow"
	Restore   EventAction = "restore" // undo Slow
)

// Event is one scheduled fault injection.
type Event struct {
	// At is the offset from run start.
	At time.Duration
	// Node indexes Fleet.Nodes.
	Node int
	// Action is what happens.
	Action EventAction
	// Rate parameterizes Flaky (per-attempt failure probability).
	Rate float64
}

// TenantOutcome is one tenant's client-side tally for the run.
type TenantOutcome struct {
	Tenant string `json:"tenant"`
	Sent   int    `json:"sent"`
	OK     int    `json:"ok"`
	// Overloaded counts 429 admission verdicts (token bucket or full
	// queue); Deadline counts 408s (queue expiry or gateway budget stop).
	Overloaded int `json:"overloaded"`
	Deadline   int `json:"deadline"`
	// Other counts everything else — the chaos contract demands zero.
	Other        int      `json:"other"`
	OtherSamples []string `json:"other_samples,omitempty"`
	// FailureTraces are trace IDs stamped on failed or shed requests (the
	// X-Openei-Trace the gateway echoes even on errors), capped at 10 —
	// each resolvable at /gw_trace?id= while the fleet is up.
	FailureTraces []string `json:"failure_traces,omitempty"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	// SLOAttainment is the fraction of sent requests answered OK within
	// the tenant's SLO latency.
	SLOAttainment float64 `json:"slo_attainment"`
}

// Report is a finished run: per-tenant client-side outcomes, the
// gateway's counters, and every node's per-tenant serving counters
// (read in-process, so killed nodes report too).
type Report struct {
	Seed       int64           `json:"seed"`
	DurationMS float64         `json:"duration_ms"`
	Tenants    []TenantOutcome `json:"tenants"`
	Gateway    gateway.Metrics `json:"gateway"`
	// NodeTenants maps node ID → that node's per-tenant serving counters.
	NodeTenants map[string][]serving.TenantStats `json:"node_tenants"`
	// WorstTraces are the run's 10 slowest answered requests with their
	// trace IDs — the p99-tail the tracer keeps even unsampled, so each
	// can be decomposed at /gw_trace?id= into queue/batch/exec time.
	WorstTraces []WorstTrace `json:"worst_traces,omitempty"`
}

// WorstTrace is one of the run's slowest answered requests.
type WorstTrace struct {
	Tenant    string  `json:"tenant"`
	TraceID   string  `json:"trace_id,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
}

// Tenant returns the named tenant's outcome (nil when absent).
func (r *Report) Tenant(name string) *TenantOutcome {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON — the CI soak workflow's
// artifact format.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteEnv writes the report to $CHAOS_REPORT when set; a no-op
// otherwise. Scenario tests call it unconditionally so local runs stay
// quiet and CI gets its artifact.
func (r *Report) WriteEnv() error {
	path := os.Getenv("CHAOS_REPORT")
	if path == "" {
		return nil
	}
	return r.WriteFile(path)
}

// Harness drives one soak: traffic + events over a fleet for Duration.
type Harness struct {
	Fleet    *Fleet
	Traffic  []TenantTraffic
	Events   []Event
	Duration time.Duration
}

// tally is one tenant's mutable counters during the run.
type tally struct {
	mu        sync.Mutex
	out       TenantOutcome
	latencies []time.Duration
	sloOK     int
	worst     []WorstTrace // slowest answered requests, kept to worstKeep
}

// worstKeep bounds the slowest-request list (per tenant during the run,
// and the merged report list).
const worstKeep = 10

// stampFailure records a failed/shed request's trace ID (when the
// responder echoed one); callers hold tl.mu.
func (tl *tally) stampFailure(traceID string) {
	if traceID != "" && len(tl.out.FailureTraces) < worstKeep {
		tl.out.FailureTraces = append(tl.out.FailureTraces, traceID)
	}
}

// observeWorst records an answered request into the tenant's
// slowest-request list; callers hold tl.mu.
func (tl *tally) observeWorst(traceID string, elapsed time.Duration) {
	tl.worst = append(tl.worst, WorstTrace{
		Tenant: tl.out.Tenant, TraceID: traceID,
		LatencyMS: float64(elapsed) / 1e6,
	})
	if len(tl.worst) > 4*worstKeep {
		sort.Slice(tl.worst, func(a, b int) bool { return tl.worst[a].LatencyMS > tl.worst[b].LatencyMS })
		tl.worst = tl.worst[:worstKeep]
	}
}

// Run executes the soak: one goroutine per tenant generates open-loop
// arrivals (each request on its own goroutine, so a slow answer never
// throttles the arrival process), one goroutine replays the fault
// schedule, and everything stops at Duration. The fleet stays up so the
// caller can make further assertions; Close it when done.
func (h *Harness) Run() (*Report, error) {
	if h.Fleet == nil {
		return nil, errors.New("chaos: harness has no fleet")
	}
	if h.Duration <= 0 {
		return nil, errors.New("chaos: non-positive duration")
	}
	start := time.Now()
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(h.Duration))
	defer cancel()

	// The fault schedule replays on its own clock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.replay(ctx, start)
	}()

	client := libei.NewClient(h.Fleet.Front.URL)
	tallies := make([]*tally, len(h.Traffic))
	var reqWG sync.WaitGroup
	for i, tt := range h.Traffic {
		tallies[i] = &tally{out: TenantOutcome{Tenant: tt.Tenant}}
		wg.Add(1)
		go func(tt TenantTraffic, tl *tally, seed int64) {
			defer wg.Done()
			h.generate(ctx, start, client, tt, tl, seed, &reqWG)
		}(tt, tallies[i], h.Fleet.cfg.Seed+int64(i)*104729)
	}
	wg.Wait()    // arrival processes and schedule done at Duration
	reqWG.Wait() // last in-flight requests answered

	rep := &Report{
		Seed:        h.Fleet.cfg.Seed,
		DurationMS:  float64(time.Since(start)) / 1e6,
		Gateway:     h.Fleet.GW.Metrics(),
		NodeTenants: map[string][]serving.TenantStats{},
	}
	for _, n := range h.Fleet.Nodes {
		rep.NodeTenants[n.ID] = n.TenantStats()
	}
	var worst []WorstTrace
	for _, tl := range tallies {
		tl.mu.Lock()
		o := tl.out
		if o.Sent > 0 {
			o.SLOAttainment = float64(tl.sloOK) / float64(o.Sent)
		}
		if len(tl.latencies) > 0 {
			sort.Slice(tl.latencies, func(a, b int) bool { return tl.latencies[a] < tl.latencies[b] })
			o.P50MS = float64(tl.latencies[len(tl.latencies)/2]) / 1e6
			o.P95MS = float64(tl.latencies[len(tl.latencies)*95/100]) / 1e6
		}
		worst = append(worst, tl.worst...)
		tl.mu.Unlock()
		rep.Tenants = append(rep.Tenants, o)
	}
	sort.Slice(rep.Tenants, func(a, b int) bool { return rep.Tenants[a].Tenant < rep.Tenants[b].Tenant })
	sort.Slice(worst, func(a, b int) bool { return worst[a].LatencyMS > worst[b].LatencyMS })
	if len(worst) > worstKeep {
		worst = worst[:worstKeep]
	}
	rep.WorstTraces = worst
	return rep, nil
}

// replay fires the fault schedule in At order.
func (h *Harness) replay(ctx context.Context, start time.Time) {
	events := append([]Event(nil), h.Events...)
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	for _, ev := range events {
		if ev.Node < 0 || ev.Node >= len(h.Fleet.Nodes) {
			continue
		}
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
		n := h.Fleet.Nodes[ev.Node]
		switch ev.Action {
		case Kill:
			n.Kill()
		case Partition:
			n.link.Partition()
		case Heal:
			n.link.Heal()
		case Flaky:
			n.link.SetFlaky(ev.Rate)
		case Slow:
			n.link.SlowLink(true)
		case Restore:
			n.link.SlowLink(false)
		}
	}
}

// generate is one tenant's open-loop arrival process: exponential
// inter-arrival gaps at the instantaneous diurnal rate, every request
// fired on its own goroutine and classified into the tally.
func (h *Harness) generate(ctx context.Context, start time.Time, client *libei.Client, tt TenantTraffic, tl *tally, seed int64, reqWG *sync.WaitGroup) {
	rng := rand.New(rand.NewSource(seed))
	period := tt.Period
	if period <= 0 {
		period = h.Duration
	}
	slo := tt.SLO
	if slo <= 0 {
		slo = tt.Deadline
		if slo <= 0 {
			slo = time.Second
		}
	}
	input := make([]float32, h.Fleet.cfg.InputDim)
	for {
		rate := diurnalRate(tt.RPS, tt.BurstFactor, time.Since(start), period)
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if gap > period/2 {
			gap = period / 2
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(gap):
		}
		class := rng.Intn(len(input))
		for i := range input {
			input[i] = 0
		}
		input[class] = 1
		sample := append([]float32(nil), input...)
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			t0 := time.Now()
			res, err := client.InferAs(context.Background(), tt.Tenant, tt.Model, sample, tt.Deadline)
			elapsed := time.Since(t0)
			tl.mu.Lock()
			defer tl.mu.Unlock()
			tl.out.Sent++
			traceID := res.TraceID
			if err != nil {
				var se *libei.StatusError
				if errors.As(err, &se) {
					traceID = se.TraceID
				}
			}
			switch {
			case err == nil:
				tl.out.OK++
				tl.latencies = append(tl.latencies, elapsed)
				tl.observeWorst(traceID, elapsed)
				if elapsed <= slo {
					tl.sloOK++
				}
				if res.Class != class {
					// The identity model makes every answer checkable; a
					// wrong class is a protocol-level failure.
					tl.out.Other++
					tl.out.OK--
					if len(tl.out.OtherSamples) < 5 {
						tl.out.OtherSamples = append(tl.out.OtherSamples,
							fmt.Sprintf("wrong class %d for one-hot %d", res.Class, class))
					}
				}
			case errors.Is(err, libei.ErrOverloaded):
				tl.out.Overloaded++
				tl.stampFailure(traceID)
			case errors.Is(err, libei.ErrDeadline):
				tl.out.Deadline++
				tl.stampFailure(traceID)
			default:
				tl.out.Other++
				tl.stampFailure(traceID)
				if len(tl.out.OtherSamples) < 5 {
					tl.out.OtherSamples = append(tl.out.OtherSamples, err.Error())
				}
			}
		}()
	}
}

// diurnalRate is the instantaneous arrival rate at offset t: a sinusoid
// from rps (valley) to rps×burst (peak) over one period — the
// compressed day/night cycle of an example vertical's camera or sensor
// fleet.
func diurnalRate(rps, burst float64, t, period time.Duration) float64 {
	if rps <= 0 {
		rps = 1
	}
	if burst < 1 {
		burst = 1
	}
	phase := (1 - math.Cos(2*math.Pi*float64(t)/float64(period))) / 2 // 0 at valley, 1 at peak
	return rps * (1 + (burst-1)*phase)
}
