// Package chaos is the in-process fault-injection soak harness: it boots
// a multi-node OpenEI fleet (real pkgmgr + serving + libei stacks behind
// a real gateway), drives per-tenant diurnal/bursty traffic at it over
// netsim-modelled links, and injects scheduled faults — node kills,
// partitions, flaky links, slow links — while recording every request's
// outcome per tenant. A run ends in a Report asserting the robustness
// contract: high-priority tenants keep their SLO, shedding stays
// confined to the tenants the admission policy targets, and nothing
// fails with anything but an admission (429) or deadline (408) verdict.
//
// Everything is seedable: the same Config.Seed replays the same fault
// dice and the same traffic arrival pattern.
package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"openei/internal/netsim"
)

// NodeLink is the modelled network path between the gateway and one
// node: a netsim.PartitionLink for correlated outages, a FlakyLink dice
// roll per attempt, and a swappable base link so a "slow link" fault
// degrades bandwidth and RTT without dropping packets.
type NodeLink struct {
	part *netsim.PartitionLink

	mu     sync.Mutex // guards rng (netsim rands are not thread-safe), fail, slow
	rng    *rand.Rand
	fail   float64
	base   netsim.Link
	slow   netsim.Link
	slowed bool
}

// newNodeLink builds a healthy link over base; slow is the degraded
// profile SlowLink switches to.
func newNodeLink(base, slow netsim.Link, seed int64) *NodeLink {
	return &NodeLink{
		part: netsim.NewPartitionLink(base),
		rng:  rand.New(rand.NewSource(seed)),
		base: base,
		slow: slow,
	}
}

// Partition cuts the link until Heal; every transfer fails like a
// switch losing the segment.
func (l *NodeLink) Partition() { l.part.Partition() }

// Heal restores a partitioned link.
func (l *NodeLink) Heal() { l.part.Heal() }

// Partitioned reports the partition state.
func (l *NodeLink) Partitioned() bool { return l.part.Partitioned() }

// SetFlaky sets the per-attempt failure probability in [0,1).
func (l *NodeLink) SetFlaky(rate float64) {
	l.mu.Lock()
	l.fail = rate
	l.mu.Unlock()
}

// SlowLink degrades (or restores) the link profile.
func (l *NodeLink) SlowLink(on bool) {
	l.mu.Lock()
	l.slowed = on
	l.mu.Unlock()
}

// transit models moving n bytes to the node now: partition beats
// everything, then the flaky dice, then the fluid-flow transfer time of
// whichever profile is active.
func (l *NodeLink) transit(n int64) (time.Duration, error) {
	if l.part.Partitioned() {
		return l.part.Transfer(n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	link := l.base
	if l.slowed {
		link = l.slow
	}
	fl := netsim.FlakyLink{Link: link, FailureRate: l.fail, Rand: l.rng}
	return fl.Transfer(n)
}

// fleetTransport routes gateway→node HTTP traffic through each node's
// NodeLink: the modelled transfer time is slept (bounded by the request
// context) and a modelled failure surfaces as a transport error, exactly
// what a real flaky or partitioned network hands the gateway's client.
type fleetTransport struct {
	f    *Fleet
	next http.RoundTripper
}

func (t *fleetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.f.nodeByHost(req.URL.Host)
	if n == nil {
		return t.next.RoundTrip(req)
	}
	if n.killed.Load() {
		return nil, fmt.Errorf("chaos: node %s is down: connection refused", n.ID)
	}
	// Charge one modelled transfer for the round trip (request out +
	// response back share the dice roll and the fluid-flow time).
	d, err := n.link.transit(reqBytes)
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", n.ID, err)
	}
	return t.next.RoundTrip(req)
}

// reqBytes is the modelled payload of one infer round trip: a short GET
// with a CSV sample plus its JSON answer.
const reqBytes = 2 << 10
