package sensors

import (
	"testing"
	"time"

	"openei/internal/datastore"
)

var t0 = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func TestCameraProducesFrames(t *testing.T) {
	cam, err := NewCamera("cam1", 16, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	info := cam.Info()
	if info.Dim != 256 || info.Kind != "camera" {
		t.Errorf("Info = %+v", info)
	}
	s := cam.Next(t0)
	if len(s.Payload) != 256 {
		t.Fatalf("frame size = %d, want 256", len(s.Payload))
	}
	if cam.LastLabel() < 0 || cam.LastLabel() >= 6 {
		t.Errorf("label %d out of range", cam.LastLabel())
	}
	// Frames are not all zero (a glyph plus noise was drawn).
	var nonzero int
	for _, v := range s.Payload {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 16 {
		t.Errorf("frame has only %d nonzero pixels", nonzero)
	}
}

func TestCameraConfigValidation(t *testing.T) {
	if _, err := NewCamera("", 16, 6, 1); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewCamera("c", 4, 6, 1); err == nil {
		t.Error("tiny size should fail")
	}
	if _, err := NewCamera("c", 16, 1, 1); err == nil {
		t.Error("single class should fail")
	}
}

func TestPowerMeterStatesDwell(t *testing.T) {
	pm, err := NewPowerMeter("meter1", 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		s := pm.Next(t0.Add(time.Duration(i) * time.Second))
		if len(s.Payload) != 32 {
			t.Fatalf("window size = %d", len(s.Payload))
		}
		seen[pm.LastLabel()] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d appliance states seen in 60 windows", len(seen))
	}
}

func TestIMUBias(t *testing.T) {
	plain, err := NewIMU("imu1", 16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := NewIMU("imu2", 16, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sumP, sumB float64
	for i := 0; i < 20; i++ {
		for _, v := range plain.Next(t0).Payload {
			sumP += float64(v)
		}
		for _, v := range biased.Next(t0).Payload {
			sumB += float64(v)
		}
	}
	if sumB-sumP < 100 { // 20 windows × 48 values × bias 1.0 ≈ 960
		t.Errorf("bias did not shift the signal: Δ=%v", sumB-sumP)
	}
}

func TestFeedPopulatesStore(t *testing.T) {
	store := datastore.New(8)
	cam, err := NewCamera("cam1", 12, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Feed(store, cam, 20, t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 20 {
		t.Fatalf("labels = %d, want 20", len(labels))
	}
	if store.Count("cam1") != 20 {
		t.Errorf("store count = %d, want 20", store.Count("cam1"))
	}
	// Timestamps spaced by the period.
	all, err := store.Range("cam1", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if all[1].At.Sub(all[0].At) != time.Second {
		t.Errorf("sample spacing = %v, want 1s", all[1].At.Sub(all[0].At))
	}
}

func TestFeedDeterministicWithSeed(t *testing.T) {
	s1 := datastore.New(8)
	s2 := datastore.New(8)
	c1, err := NewCamera("c", 12, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCamera("c", 12, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := Feed(s1, c1, 10, t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Feed(s2, c2, 10, t0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed produced different label streams")
		}
	}
}
