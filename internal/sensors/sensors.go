// Package sensors provides synthetic sensor drivers that feed the
// datastore — the IoT layer of Figure 1. Each driver generates the same
// kind of payload its real counterpart would (camera frames as pixel
// vectors, power meters as watt readings, IMUs as 3-axis samples), using
// the procedural generators of internal/dataset where a labelled signal is
// needed.
package sensors

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"openei/internal/datastore"
)

// ErrBadConfig is returned for invalid driver configurations.
var ErrBadConfig = errors.New("sensors: bad config")

// Driver generates samples for one sensor.
type Driver interface {
	// Info describes the sensor this driver emits for.
	Info() datastore.SensorInfo
	// Next produces the sample for the given timestamp.
	Next(at time.Time) datastore.Sample
}

// Camera renders 1×Size×Size frames containing a glyph of a random class
// (the driver also exposes the ground-truth label of the last frame so
// examples can score detections).
type Camera struct {
	ID      string
	Size    int
	Classes int
	rng     *rand.Rand

	lastLabel int
}

// NewCamera returns a camera driver.
func NewCamera(id string, size, classes int, seed int64) (*Camera, error) {
	if id == "" || size < 8 || classes < 2 {
		return nil, fmt.Errorf("%w: camera %q size %d classes %d", ErrBadConfig, id, size, classes)
	}
	return &Camera{ID: id, Size: size, Classes: classes, rng: rand.New(rand.NewSource(seed))}, nil
}

// Info implements Driver.
func (c *Camera) Info() datastore.SensorInfo {
	return datastore.SensorInfo{ID: c.ID, Kind: "camera", Dim: c.Size * c.Size}
}

// Next implements Driver.
func (c *Camera) Next(at time.Time) datastore.Sample {
	cls := c.rng.Intn(c.Classes)
	c.lastLabel = cls
	frame := renderFrame(c.Size, cls, c.rng)
	return datastore.Sample{At: at, Payload: frame}
}

// LastLabel returns the ground-truth class of the most recent frame.
func (c *Camera) LastLabel() int { return c.lastLabel }

// renderFrame draws a glyph like internal/dataset does (kept local so the
// sensor does not depend on the training package).
func renderFrame(size, cls int, rng *rand.Rand) []float32 {
	img := make([]float32, size*size)
	cx := float64(size)/2 + rng.Float64()*float64(size)/4 - float64(size)/8
	cy := float64(size)/2 + rng.Float64()*float64(size)/4 - float64(size)/8
	r := float64(size) * (0.22 + rng.Float64()*0.12)
	set := func(x, y int) {
		if x >= 0 && x < size && y >= 0 && y < size {
			img[y*size+x] = 1
		}
	}
	switch cls % 6 {
	case 0:
		for t := 0.0; t < 2*math.Pi; t += 0.05 {
			set(int(cx+r*math.Cos(t)), int(cy+r*math.Sin(t)))
		}
	case 1:
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				set(int(cx+dx), int(cy+dy))
			}
		}
	case 2:
		for t := 0.0; t <= 1.0; t += 0.02 {
			set(int(cx+(0-r)*t+r*(1-t)*0), int(cy-r+2*r*t)) // left edge
			set(int(cx-r+2*r*t), int(cy+r))                 // bottom
			set(int(cx+r-r*t), int(cy-r+2*r*t))             // right
		}
	case 3:
		for d := -r; d <= r; d++ {
			set(int(cx+d), int(cy))
			set(int(cx), int(cy+d))
		}
	case 4:
		for dy := -r; dy <= r; dy += 3 {
			for dx := -r; dx <= r; dx++ {
				set(int(cx+dx), int(cy+dy))
			}
		}
	case 5:
		for dx := -r; dx <= r; dx += 3 {
			for dy := -r; dy <= r; dy++ {
				set(int(cx+dx), int(cy+dy))
			}
		}
	}
	for i := range img {
		img[i] += float32(rng.NormFloat64() * 0.2)
	}
	return img
}

// PowerMeter emits windows of appliance power draw; the appliance cycles
// through states with dwell times, mimicking a household circuit.
type PowerMeter struct {
	ID     string
	Window int
	rng    *rand.Rand
	state  int
	dwell  int

	lastLabel int
}

// NewPowerMeter returns a power meter driver.
func NewPowerMeter(id string, window int, seed int64) (*PowerMeter, error) {
	if id == "" || window < 8 {
		return nil, fmt.Errorf("%w: power meter %q window %d", ErrBadConfig, id, window)
	}
	return &PowerMeter{ID: id, Window: window, rng: rand.New(rand.NewSource(seed))}, nil
}

// Info implements Driver.
func (p *PowerMeter) Info() datastore.SensorInfo {
	return datastore.SensorInfo{ID: p.ID, Kind: "power-meter", Dim: p.Window}
}

// Next implements Driver.
func (p *PowerMeter) Next(at time.Time) datastore.Sample {
	if p.dwell <= 0 {
		p.state = p.rng.Intn(5)
		p.dwell = 2 + p.rng.Intn(5)
	}
	p.dwell--
	p.lastLabel = p.state
	row := make([]float32, p.Window)
	phase := p.rng.Float64() * 2 * math.Pi
	for j := range row {
		t := float64(j)
		var v float64
		switch p.state {
		case 0:
			v = 0.02
		case 1:
			v = 0.15 + 0.1*math.Sin(t/6+phase)
		case 2:
			if j < p.Window*2/3 {
				v = 0.9
			} else {
				v = 0.05
			}
		case 3:
			v = 0.45 + 0.3*math.Sin(t/2+phase)
		case 4:
			if math.Mod(t/8+phase, 2) < 1 {
				v = 0.75
			} else {
				v = 0.2
			}
		}
		row[j] = float32(v + p.rng.NormFloat64()*0.08)
	}
	return datastore.Sample{At: at, Payload: row}
}

// LastLabel returns the appliance state of the most recent window.
func (p *PowerMeter) LastLabel() int { return p.lastLabel }

// IMU emits 3-axis accelerometer windows for the health scenario.
type IMU struct {
	ID     string
	Window int
	// Bias models per-user sensor placement (Dataflow 3 personalization).
	Bias float64
	rng  *rand.Rand

	lastLabel int
}

// NewIMU returns an accelerometer driver.
func NewIMU(id string, window int, bias float64, seed int64) (*IMU, error) {
	if id == "" || window < 8 {
		return nil, fmt.Errorf("%w: imu %q window %d", ErrBadConfig, id, window)
	}
	return &IMU{ID: id, Window: window, Bias: bias, rng: rand.New(rand.NewSource(seed))}, nil
}

// Info implements Driver.
func (m *IMU) Info() datastore.SensorInfo {
	return datastore.SensorInfo{ID: m.ID, Kind: "imu", Dim: 3 * m.Window}
}

// Next implements Driver.
func (m *IMU) Next(at time.Time) datastore.Sample {
	cls := m.rng.Intn(4)
	m.lastLabel = cls
	row := make([]float32, 3*m.Window)
	phase := m.rng.Float64() * 2 * math.Pi
	for j := 0; j < m.Window; j++ {
		t := float64(j)
		var ax, ay, az float64
		switch cls {
		case 0:
			ax, ay, az = 0, 0, 1
		case 1:
			ax = 0.3 * math.Sin(t/2+phase)
			ay = 0.2 * math.Cos(t/2+phase)
			az = 1 + 0.15*math.Sin(t+phase)
		case 2:
			ax = 0.8 * math.Sin(t+phase)
			ay = 0.6 * math.Cos(t+phase)
			az = 1 + 0.5*math.Sin(2*t+phase)
		case 3:
			if j == m.Window/2 {
				ax, ay, az = 2.5, 2.0, -1
			} else if j > m.Window/2 {
				ax, ay, az = 1, 0, 0.1
			} else {
				ax, ay, az = 0.1, 0.1, 1
			}
		}
		row[j] = float32(ax + m.Bias + m.rng.NormFloat64()*0.15)
		row[m.Window+j] = float32(ay + m.Bias + m.rng.NormFloat64()*0.15)
		row[2*m.Window+j] = float32(az + m.Bias + m.rng.NormFloat64()*0.15)
	}
	return datastore.Sample{At: at, Payload: row}
}

// LastLabel returns the activity class of the most recent window.
func (m *IMU) LastLabel() int { return m.lastLabel }

// Feed registers the driver's sensor and appends n samples spaced by
// period, starting at start. It returns the ground-truth labels emitted
// (for drivers that expose them) in order.
func Feed(store *datastore.Store, d Driver, n int, start time.Time, period time.Duration) ([]int, error) {
	if err := store.Register(d.Info()); err != nil {
		return nil, err
	}
	labels := make([]int, 0, n)
	at := start
	for i := 0; i < n; i++ {
		if err := store.Append(d.Info().ID, d.Next(at)); err != nil {
			return nil, err
		}
		switch t := d.(type) {
		case *Camera:
			labels = append(labels, t.LastLabel())
		case *PowerMeter:
			labels = append(labels, t.LastLabel())
		case *IMU:
			labels = append(labels, t.LastLabel())
		}
		at = at.Add(period)
	}
	return labels, nil
}
